// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per exhibit, backed by internal/exp) plus micro-benchmarks of
// the substrate. Benchmarks run at a reduced workload scale so the full
// suite completes in minutes; use cmd/dcpbench -scale for paper-sized
// runs. The correctness of each exhibit's *shape* is asserted in
// internal/exp's tests; here the point is regeneration and cost.
package dcpsim_test

import (
	"testing"

	"dcpsim/internal/analytic"
	"dcpsim/internal/exp"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/units"
	"dcpsim/internal/wire"
)

// benchCfg is the reduced scale used by the benchmark suite.
func benchCfg() exp.Config { return exp.Config{Seed: 42, Scale: 0.02} }

// runExp executes one experiment b.N times and reports the emitted rows.
func runExp(b *testing.B, id string) {
	b.Helper()
	e := exp.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	rows := 0
	for i := 0; i < b.N; i++ {
		tables := e.Run(benchCfg())
		rows = 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
		if rows == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable1LosslessDistance(b *testing.B) { runExp(b, "table1") }
func BenchmarkFig1SpuriousRetrans(b *testing.B)    { runExp(b, "fig1") }
func BenchmarkFig2Timeouts(b *testing.B)           { runExp(b, "fig2") }
func BenchmarkTable2Requirements(b *testing.B)     { runExp(b, "table2") }
func BenchmarkFig7PacketRate(b *testing.B)         { runExp(b, "fig7") }
func BenchmarkTable3TrackingMemory(b *testing.B)   { runExp(b, "table3") }
func BenchmarkTable4Resources(b *testing.B)        { runExp(b, "table4") }
func BenchmarkFig8BasicValidation(b *testing.B)    { runExp(b, "fig8") }
func BenchmarkFig10LossRecovery(b *testing.B)      { runExp(b, "fig10") }
func BenchmarkFig11AdaptiveRouting(b *testing.B)   { runExp(b, "fig11") }
func BenchmarkFig12TestbedAI(b *testing.B)         { runExp(b, "fig12") }
func BenchmarkLongHaul(b *testing.B)               { runExp(b, "longhaul") }
func BenchmarkFig13WebSearch(b *testing.B)         { runExp(b, "fig13") }
func BenchmarkFig14AIWorkloads(b *testing.B)       { runExp(b, "fig14") }
func BenchmarkFig15CrossDC(b *testing.B)           { runExp(b, "fig15") }
func BenchmarkFig16IncastCC(b *testing.B)          { runExp(b, "fig16") }
func BenchmarkTable5HOLoss(b *testing.B)           { runExp(b, "table5") }
func BenchmarkFig17LossSchemes(b *testing.B)       { runExp(b, "fig17") }

// Design-choice ablations called out in DESIGN.md.
func BenchmarkAblationWRRWeight(b *testing.B)     { runExp(b, "ab-wrr") }
func BenchmarkAblationRetransBatch(b *testing.B)  { runExp(b, "ab-batch") }
func BenchmarkAblationTracking(b *testing.B)      { runExp(b, "ab-track") }
func BenchmarkAblationTrimThreshold(b *testing.B) { runExp(b, "ab-trim") }
func BenchmarkAblationCCRetrans(b *testing.B)     { runExp(b, "ab-ccretx") }

// --- substrate micro-benchmarks ---

// BenchmarkEngineEvents measures raw event throughput of the simulator.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(units.Nanosecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(0, tick)
	eng.Run(0)
}

// BenchmarkWireDataRoundTrip measures DCP header encode+decode.
func BenchmarkWireDataRoundTrip(b *testing.B) {
	p := &wire.DataPacket{
		IP:      wire.IPv4{Tag: wire.TagData, TTL: 64},
		BTH:     wire.BTH{OpCode: wire.OpWriteMiddle, DestQP: 77, PSN: 1234},
		MSN:     5,
		HasRETH: true,
		RETH:    wire.RETH{VA: 1 << 40, RKey: 9, Length: 1 << 20},
		Payload: make([]byte, packet.DefaultMTU),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := p.Marshal()
		if _, err := wire.UnmarshalDataPacket(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireTrimBounce measures the switch trim + receiver bounce path.
func BenchmarkWireTrimBounce(b *testing.B) {
	p := &wire.DataPacket{
		IP:      wire.IPv4{Tag: wire.TagData, TTL: 64},
		BTH:     wire.BTH{OpCode: wire.OpWriteMiddle, DestQP: 77, PSN: 1234},
		MSN:     5,
		HasRETH: true,
		RETH:    wire.RETH{VA: 1 << 40, RKey: 9, Length: 1 << 20},
		Payload: make([]byte, packet.DefaultMTU),
	}
	enc := p.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ho, err := wire.TrimToHO(enc)
		if err != nil {
			b.Fatal(err)
		}
		if err := wire.BounceHO(ho, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrackingModels evaluates the Fig. 7 analytic model across OOO
// degrees.
func BenchmarkTrackingModels(b *testing.B) {
	p := analytic.DefaultPPS()
	var sink float64
	for i := 0; i < b.N; i++ {
		for d := 0; d <= 448; d += 64 {
			dcp, bm, ch := p.PPS(d)
			sink += dcp + bm + ch
		}
	}
	_ = sink
}

// BenchmarkPercentile measures the stats hot path.
func BenchmarkPercentile(b *testing.B) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i * 7919 % 10007)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Percentile(vals, 99)
	}
}

func BenchmarkAblationBackToSender(b *testing.B) { runExp(b, "ab-b2s") }

func BenchmarkExtensionNDP(b *testing.B) { runExp(b, "ext-ndp") }

// Failure-recovery experiment family (internal/faults).
func BenchmarkFaultRecovery(b *testing.B)   { runExp(b, "fault-flap") }
func BenchmarkFaultDegrade(b *testing.B)    { runExp(b, "fault-degrade") }
func BenchmarkFaultPauseStorm(b *testing.B) { runExp(b, "fault-pause") }
