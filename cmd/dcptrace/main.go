// Command dcptrace walks through the DCP data path at the byte level: it
// encodes a full DCP data packet (Fig. 4 header layout), performs the
// switch's trimming operation to produce the 57-byte header-only packet,
// bounces it at the receiver as the real RNIC would, and decodes the
// result — then runs a small forced-loss simulation and reports the
// workflow counters of Fig. 3.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dcpsim"
	"dcpsim/internal/wire"
)

func main() {
	pcapPath := flag.String("pcap", "", "write a Wireshark-readable capture of the simulation to this file")
	flap := flag.Bool("flap", false, "also demo fault injection: flap the cross link mid-transfer")
	jsonOut := flag.Bool("json", false, "emit the walkthrough and run counters as one JSON object instead of prose")
	autopsy := flag.Bool("autopsy", false, "run the forced-loss transfer under the flight-recorder checker and print its recovery autopsy (with -json: the byte-stable JSON report)")
	flag.Parse()
	if *autopsy {
		if err := runAutopsy(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := runJSON(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Println("=== DCP wire formats (Fig. 4) ===")
	data := &wire.DataPacket{
		IP: wire.IPv4{Tag: wire.TagData, ECN: wire.ECNECT0, TTL: 64,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		UDP:     wire.UDP{SrcPort: 49152},
		BTH:     wire.BTH{OpCode: wire.OpWriteMiddle, DestQP: 0x1234, PSN: 1001, SRetryNo: 0},
		MSN:     7,
		HasRETH: true,
		RETH:    wire.RETH{VA: 0x7f0000400000, RKey: 0xbeef, Length: 1 << 20},
		Payload: make([]byte, 64),
	}
	enc := data.Marshal()
	fmt.Printf("DCP data packet: %d bytes (header %d + payload %d)\n",
		len(enc), data.HeaderSize(), len(data.Payload))
	fmt.Println(hex.Dump(enc[:data.HeaderSize()]))

	ho, err := wire.TrimToHO(enc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after switch trimming: %d-byte header-only packet (DCP tag -> 11)\n", len(ho))
	fmt.Println(hex.Dump(ho))

	if err := wire.BounceHO(ho, 0x4321); err != nil {
		panic(err)
	}
	dec, err := wire.UnmarshalDataPacket(ho)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bounced at receiver: src=%v dst=%v destQP=%#x psn=%d msn=%d (HO=%v)\n\n",
		dec.IP.Src, dec.IP.Dst, dec.BTH.DestQP, dec.BTH.PSN, dec.MSN, dec.IsHO())

	fmt.Println("=== DCP workflow under 1% forced loss (Fig. 3) ===")
	c := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology: dcpsim.Dumbbell, Hosts: 2, Transport: dcpsim.DCP, LossRate: 0.01,
	})
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			panic(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				panic(err)
			}
		}()
		if err := c.Capture(f); err != nil {
			panic(err)
		}
		fmt.Printf("(capturing all ports to %s)\n", *pcapPath)
	}
	h := c.Send(0, 1, 32<<20)
	c.Run()
	fs := c.Fabric()
	fmt.Printf("32 MB transfer: fct=%.1fus goodput=%.1fGbps\n", h.FCTMicros(), h.Goodput())
	fmt.Printf("switch: trimmed=%d HO enqueued=%d HO lost=%d data dropped=%d\n",
		fs.TrimmedPackets, fs.HOPackets, fs.DroppedHO, fs.DroppedData)
	fmt.Printf("sender: retransmissions=%d (each named by a bounced HO packet), timeouts=%d\n",
		h.Retransmissions(), h.Timeouts())

	if *flap {
		fmt.Println("\n=== fault injection: 200us cross-link flap mid-transfer ===")
		fc := dcpsim.NewCluster(dcpsim.ClusterSpec{
			Topology: dcpsim.Dumbbell, Hosts: 2, Transport: dcpsim.DCP,
		})
		fmt.Printf("injectable links: %v\n", fc.LinkNames())
		plan := dcpsim.NewFaultPlan(1).LinkDown("cross0", 100_000, 200_000)
		if err := fc.Inject(plan); err != nil {
			panic(err)
		}
		fh := fc.Send(0, 1, 32<<20)
		fc.Run()
		ffs := fc.Fabric()
		fmt.Printf("32 MB transfer across the outage: fct=%.1fus goodput=%.1fGbps done=%v\n",
			fh.FCTMicros(), fh.Goodput(), fh.Done())
		fmt.Printf("switch: trimmed=%d link-down flushes=%d; sender: retrans=%d timeouts=%d\n",
			ffs.TrimmedPackets, ffs.LinkDownDrops, fh.Retransmissions(), fh.Timeouts())
	}
}

// runAutopsy reruns the Fig. 3 forced-loss transfer with the flight
// recorder attached: every trim → HO bounce → RetransQ fetch → retransmit
// chain is reconstructed online, the paper's correctness claims are checked
// as invariants, and the autopsy (recovery-stage latency percentiles,
// per-flow waterfall, violations with causal chains) is printed. The run is
// deterministic, so the report is reproducible byte for byte.
func runAutopsy(asJSON bool) error {
	c := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology: dcpsim.Dumbbell, Hosts: 2, Transport: dcpsim.DCP, LossRate: 0.01,
	})
	ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
	c.Send(0, 1, 32<<20)
	c.Run()
	if asJSON {
		return ob.WriteAutopsyJSON(os.Stdout)
	}
	return ob.WriteAutopsyText(os.Stdout)
}

// jsonReport is the -json output: the byte-level walkthrough of Fig. 4 plus
// the Fig. 3 workflow counters from an observed forced-loss run. Field
// names are stable; scripts may depend on them.
type jsonReport struct {
	Wire struct {
		DataPacketBytes int    `json:"data_packet_bytes"`
		HeaderBytes     int    `json:"header_bytes"`
		PayloadBytes    int    `json:"payload_bytes"`
		HOBytes         int    `json:"ho_bytes"`
		BouncedSrc      string `json:"bounced_src"`
		BouncedDst      string `json:"bounced_dst"`
		BouncedDestQP   uint32 `json:"bounced_dest_qp"`
		PSN             uint32 `json:"psn"`
		MSN             uint32 `json:"msn"`
		IsHO            bool   `json:"is_ho"`
	} `json:"wire"`
	Run struct {
		Bytes          int64            `json:"bytes"`
		LossRate       float64          `json:"loss_rate"`
		FCTMicros      float64          `json:"fct_us"`
		GoodputGbps    float64          `json:"goodput_gbps"`
		Retransmits    int64            `json:"retransmissions"`
		Timeouts       int64            `json:"timeouts"`
		Trimmed        int64            `json:"trimmed"`
		HOEnqueued     int64            `json:"ho_enqueued"`
		HODropped      int64            `json:"ho_dropped"`
		DataDropped    int64            `json:"data_dropped"`
		TraceEvents    int              `json:"trace_events"`
		EventCounts    map[string]int64 `json:"event_counts"`
		RetransChains  int              `json:"retrans_chains"`
		MetricsSamples int              `json:"metrics_samples"`
	} `json:"run"`
}

// runJSON reruns the same walkthrough and forced-loss simulation as the
// prose mode, with the observability layer attached, and prints one JSON
// object (the only output in -json mode).
func runJSON() error {
	var rep jsonReport

	data := &wire.DataPacket{
		IP: wire.IPv4{Tag: wire.TagData, ECN: wire.ECNECT0, TTL: 64,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		UDP:     wire.UDP{SrcPort: 49152},
		BTH:     wire.BTH{OpCode: wire.OpWriteMiddle, DestQP: 0x1234, PSN: 1001, SRetryNo: 0},
		MSN:     7,
		HasRETH: true,
		RETH:    wire.RETH{VA: 0x7f0000400000, RKey: 0xbeef, Length: 1 << 20},
		Payload: make([]byte, 64),
	}
	enc := data.Marshal()
	rep.Wire.DataPacketBytes = len(enc)
	rep.Wire.HeaderBytes = data.HeaderSize()
	rep.Wire.PayloadBytes = len(data.Payload)
	ho, err := wire.TrimToHO(enc)
	if err != nil {
		return err
	}
	rep.Wire.HOBytes = len(ho)
	if err := wire.BounceHO(ho, 0x4321); err != nil {
		return err
	}
	dec, err := wire.UnmarshalDataPacket(ho)
	if err != nil {
		return err
	}
	rep.Wire.BouncedSrc = fmt.Sprintf("%d.%d.%d.%d", dec.IP.Src[0], dec.IP.Src[1], dec.IP.Src[2], dec.IP.Src[3])
	rep.Wire.BouncedDst = fmt.Sprintf("%d.%d.%d.%d", dec.IP.Dst[0], dec.IP.Dst[1], dec.IP.Dst[2], dec.IP.Dst[3])
	rep.Wire.BouncedDestQP = dec.BTH.DestQP
	rep.Wire.PSN = dec.BTH.PSN
	rep.Wire.MSN = dec.MSN
	rep.Wire.IsHO = dec.IsHO()

	c := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology: dcpsim.Dumbbell, Hosts: 2, Transport: dcpsim.DCP, LossRate: 0.01,
	})
	ob := c.Observe(dcpsim.ObserveSpec{})
	h := c.Send(0, 1, 32<<20)
	c.Run()
	fs := c.Fabric()
	rep.Run.Bytes = 32 << 20
	rep.Run.LossRate = 0.01
	rep.Run.FCTMicros = h.FCTMicros()
	rep.Run.GoodputGbps = h.Goodput()
	rep.Run.Retransmits = h.Retransmissions()
	rep.Run.Timeouts = h.Timeouts()
	rep.Run.Trimmed = fs.TrimmedPackets
	rep.Run.HOEnqueued = fs.HOPackets
	rep.Run.HODropped = fs.DroppedHO
	rep.Run.DataDropped = fs.DroppedData
	rep.Run.TraceEvents = ob.Events()
	rep.Run.EventCounts = ob.CountsByType()
	rep.Run.RetransChains = ob.TrimChains()
	rep.Run.MetricsSamples = ob.MetricsSamples()

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
