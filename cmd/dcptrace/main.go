// Command dcptrace walks through the DCP data path at the byte level: it
// encodes a full DCP data packet (Fig. 4 header layout), performs the
// switch's trimming operation to produce the 57-byte header-only packet,
// bounces it at the receiver as the real RNIC would, and decodes the
// result — then runs a small forced-loss simulation and reports the
// workflow counters of Fig. 3.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"dcpsim"
	"dcpsim/internal/wire"
)

func main() {
	pcapPath := flag.String("pcap", "", "write a Wireshark-readable capture of the simulation to this file")
	flap := flag.Bool("flap", false, "also demo fault injection: flap the cross link mid-transfer")
	flag.Parse()
	fmt.Println("=== DCP wire formats (Fig. 4) ===")
	data := &wire.DataPacket{
		IP: wire.IPv4{Tag: wire.TagData, ECN: wire.ECNECT0, TTL: 64,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		UDP:     wire.UDP{SrcPort: 49152},
		BTH:     wire.BTH{OpCode: wire.OpWriteMiddle, DestQP: 0x1234, PSN: 1001, SRetryNo: 0},
		MSN:     7,
		HasRETH: true,
		RETH:    wire.RETH{VA: 0x7f0000400000, RKey: 0xbeef, Length: 1 << 20},
		Payload: make([]byte, 64),
	}
	enc := data.Marshal()
	fmt.Printf("DCP data packet: %d bytes (header %d + payload %d)\n",
		len(enc), data.HeaderSize(), len(data.Payload))
	fmt.Println(hex.Dump(enc[:data.HeaderSize()]))

	ho, err := wire.TrimToHO(enc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after switch trimming: %d-byte header-only packet (DCP tag -> 11)\n", len(ho))
	fmt.Println(hex.Dump(ho))

	if err := wire.BounceHO(ho, 0x4321); err != nil {
		panic(err)
	}
	dec, err := wire.UnmarshalDataPacket(ho)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bounced at receiver: src=%v dst=%v destQP=%#x psn=%d msn=%d (HO=%v)\n\n",
		dec.IP.Src, dec.IP.Dst, dec.BTH.DestQP, dec.BTH.PSN, dec.MSN, dec.IsHO())

	fmt.Println("=== DCP workflow under 1% forced loss (Fig. 3) ===")
	c := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology: dcpsim.Dumbbell, Hosts: 2, Transport: dcpsim.DCP, LossRate: 0.01,
	})
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			panic(err)
		}
		defer f.Close()
		if err := c.Capture(f); err != nil {
			panic(err)
		}
		fmt.Printf("(capturing all ports to %s)\n", *pcapPath)
	}
	h := c.Send(0, 1, 32<<20)
	c.Run()
	fs := c.Fabric()
	fmt.Printf("32 MB transfer: fct=%.1fus goodput=%.1fGbps\n", h.FCTMicros(), h.Goodput())
	fmt.Printf("switch: trimmed=%d HO enqueued=%d HO lost=%d data dropped=%d\n",
		fs.TrimmedPackets, fs.HOPackets, fs.DroppedHO, fs.DroppedData)
	fmt.Printf("sender: retransmissions=%d (each named by a bounced HO packet), timeouts=%d\n",
		h.Retransmissions(), h.Timeouts())

	if *flap {
		fmt.Println("\n=== fault injection: 200us cross-link flap mid-transfer ===")
		fc := dcpsim.NewCluster(dcpsim.ClusterSpec{
			Topology: dcpsim.Dumbbell, Hosts: 2, Transport: dcpsim.DCP,
		})
		fmt.Printf("injectable links: %v\n", fc.LinkNames())
		plan := dcpsim.NewFaultPlan(1).LinkDown("cross0", 100_000, 200_000)
		if err := fc.Inject(plan); err != nil {
			panic(err)
		}
		fh := fc.Send(0, 1, 32<<20)
		fc.Run()
		ffs := fc.Fabric()
		fmt.Printf("32 MB transfer across the outage: fct=%.1fus goodput=%.1fGbps done=%v\n",
			fh.FCTMicros(), fh.Goodput(), fh.Done())
		fmt.Printf("switch: trimmed=%d link-down flushes=%d; sender: retrans=%d timeouts=%d\n",
			ffs.TrimmedPackets, ffs.LinkDownDrops, fh.Retransmissions(), fh.Timeouts())
	}
}
