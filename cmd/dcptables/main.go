// Command dcptables prints the paper's analytic tables (Tables 1–4 and the
// Fig. 7 packet-rate model) — the results that follow from closed-form
// models rather than simulation.
package main

import (
	"flag"
	"fmt"

	"dcpsim/internal/analytic"
)

func main() {
	table := flag.Int("table", 0, "print only table N (1-4), 7 for Fig 7; 0 = all")
	flag.Parse()

	all := map[int]func() string{
		1: func() string { return analytic.Table1().String() },
		2: func() string { return analytic.Table2().String() },
		3: func() string { return analytic.Table3(analytic.DefaultTracking()).String() },
		4: func() string { return analytic.Table4(analytic.DefaultResources()).String() },
		7: func() string { return analytic.Fig7(analytic.DefaultPPS(), nil).String() },
	}
	if *table != 0 {
		if f, ok := all[*table]; ok {
			fmt.Println(f())
		} else {
			fmt.Println("unknown table; choose 1, 2, 3, 4 or 7")
		}
		return
	}
	for _, k := range []int{1, 2, 3, 4, 7} {
		fmt.Println(all[k]())
	}
}
