// Command dcptables prints the paper's analytic tables (Tables 1–4 and the
// Fig. 7 packet-rate model) — the results that follow from closed-form
// models rather than simulation. With -run it additionally renders
// simulation-backed experiment tables through the same parallel experiment
// engine as cmd/dcpbench (byte-identical output at any -workers count).
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpsim/internal/analytic"
	"dcpsim/internal/exp"
	"dcpsim/internal/exp/pool"
)

func main() {
	table := flag.Int("table", 0, "print only table N (1-4), 7 for Fig 7; 0 = all")
	run := flag.String("run", "", "also render simulation experiment tables: id, 'all', or 'quick'")
	seed := flag.Int64("seed", 42, "simulation seed for -run")
	scale := flag.Float64("scale", 0.25, "workload scale for -run (1.0 ≈ paper-sized)")
	workers := flag.Int("workers", pool.DefaultWorkers(), "worker goroutines for -run (1 = serial; output bytes are identical at any count)")
	flag.Parse()

	all := map[int]func() string{
		1: func() string { return analytic.Table1().String() },
		2: func() string { return analytic.Table2().String() },
		3: func() string { return analytic.Table3(analytic.DefaultTracking()).String() },
		4: func() string { return analytic.Table4(analytic.DefaultResources()).String() },
		7: func() string { return analytic.Fig7(analytic.DefaultPPS(), nil).String() },
	}
	switch {
	case *table != 0:
		if f, ok := all[*table]; ok {
			fmt.Println(f())
		} else {
			fmt.Println("unknown table; choose 1, 2, 3, 4 or 7")
		}
	case *run == "":
		for _, k := range []int{1, 2, 3, 4, 7} {
			fmt.Println(all[k]())
		}
	}

	if *run == "" {
		return
	}
	var todo []exp.Experiment
	switch *run {
	case "all":
		todo = exp.All()
	case "quick":
		for _, e := range exp.All() {
			if !e.Heavy {
				todo = append(todo, e)
			}
		}
	default:
		e := exp.ByID(*run)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try dcpbench -list)\n", *run)
			os.Exit(1)
		}
		todo = []exp.Experiment{*e}
	}
	cfg := exp.Config{Seed: *seed, Scale: *scale}.WithWorkers(*workers)
	for _, r := range exp.RunRegistry(cfg, todo) {
		fmt.Printf("### %s — %s (seed=%d scale=%.2f)\n\n", r.ID, r.Desc, *seed, *scale)
		for _, t := range r.Tables {
			fmt.Println(t.String())
		}
	}
}
