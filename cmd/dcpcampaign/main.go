// Command dcpcampaign executes declarative experiment campaigns: a TOML
// (or JSON) document describing topology, transports, workload, sweep
// axes, fault plans and observability, validated and compiled onto the
// experiment engine, executed headlessly with per-unit checkpoints, and
// rendered into a self-contained artifact bundle.
//
//	dcpcampaign -validate examples/campaigns/*.toml   # lint only, exit 1 on diagnostics
//	dcpcampaign -list doc.toml                        # show the compiled unit plan
//	dcpcampaign doc.toml                              # ephemeral run, tables to stdout
//	dcpcampaign -out run/ -workers 8 doc.toml         # checkpointed run + bundle
//	dcpcampaign -out run/ doc.toml                    # again: resumes, skipping checkpoints
//	dcpcampaign -out run/ -recheck wan/c003 doc.toml  # re-verify one unit against the manifest
//	dcpcampaign -diff runA/ runB/                     # structured drift report, exit 1 on drift
//	dcpcampaign -diff -json runA/ runB/               # same comparison as a JSON artifact
//
// A run interrupted at any point (kill, crash, or the deterministic
// -abort-after test hook, exit code 3) resumes from its checkpoint
// directory and produces a bundle byte-identical to an uninterrupted
// run at any -workers count. See DESIGN.md "Campaign runner" and
// "Differential observability".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dcpsim/internal/campaign"
	"dcpsim/internal/exp/pool"
	"dcpsim/internal/obs/diff"
)

func main() {
	var (
		validate   = flag.Bool("validate", false, "parse and lint the documents, print line-anchored diagnostics, exit 1 on any")
		list       = flag.Bool("list", false, "print the compiled unit plan without running")
		out        = flag.String("out", "", "run directory: checkpoints during the run, artifact bundle on completion (empty = ephemeral)")
		workers    = flag.Int("workers", pool.DefaultWorkers(), "worker goroutines (1 = serial; bundle bytes are identical at any count)")
		abortAfter = flag.Int("abort-after", 0, "abort after N freshly executed units (deterministic kill for resume testing; exit 3)")
		recheck    = flag.String("recheck", "", "re-execute one unit by id and compare its digest against the bundle manifest")
		doDiff     = flag.Bool("diff", false, "compare two bundle directories (baseline current) and report drift; exit 1 on drift")
		jsonOut    = flag.Bool("json", false, "with -diff: emit the full report as JSON instead of text")
		th         = diff.DefaultThresholds()
	)
	flag.Float64Var(&th.Stats, "drift-stats", th.Stats, "with -diff: relative window for statistics and numeric table cells")
	flag.Float64Var(&th.Comps, "drift-comps", th.Comps, "with -diff: relative window for per-component event counts")
	flag.Float64Var(&th.Events, "drift-events", th.Events, "with -diff: relative window for per-unit total event counts")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dcpcampaign [-validate|-list|-out dir [-workers N] [-abort-after N] [-recheck unit]] doc.toml...\n       dcpcampaign -diff [-json] [-drift-stats X] [-drift-comps X] [-drift-events X] baseDir curDir")
		os.Exit(2)
	}

	if *doDiff {
		os.Exit(diffBundles(flag.Args(), th, *jsonOut))
	}
	if *validate {
		os.Exit(validateDocs(flag.Args()))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "exactly one campaign document expected (use -validate for batches)")
		os.Exit(2)
	}
	path := flag.Arg(0)
	doc, c, docBytes := mustLoad(path)

	switch {
	case *list:
		fmt.Printf("campaign %s: %d units (seed=%d scale=%.2f)\n", doc.Name, len(c.Units), doc.Seed, doc.Scale)
		for _, u := range c.Units {
			fmt.Printf("  %-20s %-10s %s\n", u.ID, u.Kind, u.Desc)
		}
	case *recheck != "":
		if *out == "" {
			fmt.Fprintln(os.Stderr, "-recheck needs the bundle's -out directory")
			os.Exit(2)
		}
		r, err := campaign.Recheck(c, *out, *recheck)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !r.Match {
			fmt.Printf("recheck %s: MISMATCH recorded=%s recomputed=%s\n", r.UnitID, r.Recorded, r.Recomputed)
			os.Exit(1)
		}
		fmt.Printf("recheck %s: ok (%s)\n", r.UnitID, r.Recomputed)
	default:
		runCampaign(c, docBytes, campaign.Options{Dir: *out, Workers: *workers, AbortAfter: *abortAfter})
	}
}

// diffBundles loads two bundle directories and writes the drift report.
// Exit codes: 0 no drift, 1 drift (or unloadable bundle), 2 usage.
func diffBundles(args []string, th diff.Thresholds, jsonOut bool) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "-diff expects exactly two bundle directories: baseline current")
		return 2
	}
	base, err := diff.LoadBundle(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cur, err := diff.LoadBundle(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	r := diff.Compare(base, cur, th)
	if jsonOut {
		err = diff.WriteJSON(os.Stdout, r)
	} else {
		err = diff.WriteText(os.Stdout, r)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if r.Drift() {
		return 1
	}
	return 0
}

// validateDocs lints every document; diagnostics print as
// "path:line: message" so editors can jump to them.
func validateDocs(paths []string) int {
	exit := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		doc, diags := campaign.Parse(data, campaign.FormatForPath(path))
		for _, d := range diags {
			fmt.Printf("%s:%d: %s\n", path, d.Line, d.Msg)
			exit = 1
		}
		if len(diags) > 0 || doc == nil {
			continue
		}
		if _, err := campaign.Compile(doc); err != nil {
			fmt.Printf("%s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	return exit
}

func mustLoad(path string) (*campaign.Doc, *campaign.Campaign, []byte) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	doc, diags := campaign.Parse(data, campaign.FormatForPath(path))
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, d.Line, d.Msg)
		}
		os.Exit(1)
	}
	c, err := campaign.Compile(doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(1)
	}
	return doc, c, data
}

func runCampaign(c *campaign.Campaign, docBytes []byte, opts campaign.Options) {
	//lint:allow detcheck wall-clock measures real elapsed time, not sim state
	start := time.Now()
	rep, err := campaign.Run(c, docBytes, opts)
	if err == campaign.ErrAborted {
		// Timing goes to stderr: stdout stays byte-stable across workers.
		fmt.Fprintf(os.Stderr, "campaign %s aborted after %d units (resumable from %s)\n",
			rep.Name, rep.Executed, opts.Dir)
		os.Exit(3)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if opts.Dir == "" {
		fmt.Print(campaign.RenderTables(c, rep.Results))
	} else {
		fmt.Printf("campaign %s: %d units done (%d cached, %d executed), violations=%d\n",
			rep.Name, len(rep.Results), rep.Cached, rep.Executed, rep.Violations)
		fmt.Printf("bundle: %s\n", opts.Dir)
	}
	for _, f := range rep.ExpectFailures {
		fmt.Printf("expect FAILED: %s\n", f)
	}
	//lint:allow detcheck wall-clock measures real elapsed time, not sim state
	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(os.Stderr, "(%d units, workers=%d, %s wall-clock)\n",
		len(rep.Results), opts.Workers, elapsed)
	if len(rep.ExpectFailures) > 0 {
		os.Exit(1)
	}
}
