// Command dcplint is the repository's multichecker: it runs the four
// dcpsim analyzers (detcheck, unitcheck, seqcheck, aliascheck — see
// internal/lint) over the given package patterns and exits non-zero when
// any finding survives the //lint:allow directives.
//
// Usage:
//
//	go run ./cmd/dcplint ./...
//
// It is a required CI step; the tree must stay clean.
package main

import (
	"flag"
	"fmt"
	"os"

	"dcpsim/internal/lint"
	"dcpsim/internal/lint/aliascheck"
	"dcpsim/internal/lint/detcheck"
	"dcpsim/internal/lint/seqcheck"
	"dcpsim/internal/lint/unitcheck"
)

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		detcheck.Analyzer,
		unitcheck.Analyzer,
		seqcheck.Analyzer,
		aliascheck.Analyzer,
	}
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := lint.NewLoader()
	pkgs, err := ld.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcplint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcplint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dcplint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
