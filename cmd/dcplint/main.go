// Command dcplint is the repository's multichecker: it runs the eight
// dcpsim analyzers (detcheck, unitcheck, seqcheck, aliascheck, purecheck,
// sharecheck, iocheck, ownercheck — see internal/lint) over the given
// package patterns and exits non-zero when any finding survives the
// //lint:allow directives. Stale directives that suppress nothing are
// findings in their own right.
//
// Usage:
//
//	go run ./cmd/dcplint ./...           # human-readable findings
//	go run ./cmd/dcplint -json ./...     # machine-readable report on stdout
//	go run ./cmd/dcplint -selfcheck      # assert each analyzer still fires
//	go run ./cmd/dcplint -list           # analyzer inventory
//
// Under GitHub Actions (GITHUB_ACTIONS=true, or -gh anywhere) active
// findings additionally surface as ::error workflow commands on stderr,
// anchoring annotations to the offending lines in the diff view.
//
// It is a required CI step; the tree must stay clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dcpsim/internal/lint"
	"dcpsim/internal/lint/aliascheck"
	"dcpsim/internal/lint/dataflow"
	"dcpsim/internal/lint/detcheck"
	"dcpsim/internal/lint/iocheck"
	"dcpsim/internal/lint/ownercheck"
	"dcpsim/internal/lint/purecheck"
	"dcpsim/internal/lint/seqcheck"
	"dcpsim/internal/lint/sharecheck"
	"dcpsim/internal/lint/unitcheck"
)

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		detcheck.Analyzer,
		unitcheck.Analyzer,
		seqcheck.Analyzer,
		aliascheck.Analyzer,
		purecheck.Analyzer,
		sharecheck.Analyzer,
		iocheck.Analyzer,
		ownercheck.Analyzer,
	}
}

// fixtures maps each analyzer to its fixture package: the path under the
// analyzer's testdata/src tree that -selfcheck loads and on which the
// analyzer must report at least one (raw) finding. An analyzer that goes
// silent on its own fixture has regressed to a no-op.
var fixtures = map[string]string{
	"detcheck":   "dcpsim/internal/sim/detfix",
	"unitcheck":  "dcpsim/internal/exp/unitfix",
	"seqcheck":   "dcpsim/internal/transport/seqfix",
	"aliascheck": "dcpsim/internal/fabric/aliasfix",
	"purecheck":  "dcpsim/internal/exp/purefix",
	"sharecheck": "dcpsim/internal/exp/sharefix",
	"iocheck":    "dcpsim/internal/campaign/iofix",
	"ownercheck": "dcpsim/internal/sim/ownfix",
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit the machine-readable report on stdout")
	gh := flag.Bool("gh", false, "emit GitHub ::error annotations for active findings (implied by GITHUB_ACTIONS=true)")
	selfcheck := flag.Bool("selfcheck", false, "run each analyzer over its own fixture and require at least one finding")
	flag.Parse()

	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *selfcheck {
		os.Exit(runSelfcheck())
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := lint.NewLoader()
	pkgs, err := ld.LoadPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.RunWith(dataflow.Build(pkgs), pkgs, analyzers())
	if err != nil {
		fatal(err)
	}

	baseDir := ""
	if root, _, err := lint.ModuleRoot(); err == nil {
		baseDir = root
	}
	active := lint.Active(diags)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags, baseDir); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range active {
			fmt.Println(d)
		}
	}
	if *gh || os.Getenv("GITHUB_ACTIONS") == "true" {
		if err := lint.WriteGitHubAnnotations(os.Stderr, diags, baseDir); err != nil {
			fatal(err)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "dcplint: %d finding(s)\n", len(active))
		os.Exit(1)
	}
}

// runSelfcheck loads each analyzer's fixture and asserts the analyzer
// still produces raw findings there — the CI leg that catches an analyzer
// silently degrading into a no-op while the real tree stays green.
func runSelfcheck() int {
	root, _, err := lint.ModuleRoot()
	if err != nil {
		fatal(err)
	}
	failed := 0
	for _, a := range analyzers() {
		fixture, ok := fixtures[a.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "dcplint selfcheck: %s: no fixture registered\n", a.Name)
			failed++
			continue
		}
		dir := filepath.Join(root, "internal", "lint", a.Name, "testdata", "src", filepath.FromSlash(fixture))
		ld := lint.NewLoader()
		pkg, err := ld.Load(dir, fixture)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcplint selfcheck: %s: loading %s: %v\n", a.Name, dir, err)
			failed++
			continue
		}
		pkgs := []*lint.Package{pkg}
		diags, err := lint.RunWith(dataflow.Build(pkgs), pkgs, []*lint.Analyzer{a})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcplint selfcheck: %s: %v\n", a.Name, err)
			failed++
			continue
		}
		n := 0
		for _, d := range diags {
			if d.Analyzer == a.Name {
				n++
			}
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "dcplint selfcheck: %s: no findings on its own fixture %s — analyzer regressed to a no-op\n", a.Name, fixture)
			failed++
			continue
		}
		fmt.Printf("selfcheck %-12s ok (%d finding(s) on %s)\n", a.Name, n, fixture)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dcplint selfcheck: %d analyzer(s) failed\n", failed)
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcplint:", err)
	os.Exit(2)
}
