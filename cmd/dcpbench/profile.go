package main

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"dcpsim/internal/exp"
	"dcpsim/internal/obs/perf"
)

// profileOpts is the -profile flag surface.
type profileOpts struct {
	jsonOut string // -profile-json: also write the report as JSON to this file
	wall    bool   // -profile-wall: add the machine-varying wall-time section
}

// runProfile executes the selected experiments with the engine profiler
// attached to every cell and writes the hierarchical attribution report to
// stdout (tables are rendered but not printed — the report is the output).
// Without -profile-wall the report holds only deterministic event counts
// and is byte-identical across runs and worker counts; -profile-wall
// injects the host clock and adds a wall-time section labelled
// machine-varying.
func runProfile(cfg exp.Config, todo []exp.Experiment, o profileOpts) error {
	opt := perf.Options{}
	if o.wall {
		//lint:allow detcheck wall-clock injection for profiler self-measurement only; sim state never reads it
		opt.Wall = func() int64 { return time.Now().UnixNano() }
	}
	prof := perf.New(opt)
	prev := cfg.Hook
	cfg.Hook = func(key exp.CellKey, s *exp.Sim) {
		if prev != nil {
			prev(key, s)
		}
		prof.Attach(key.String(), s.Scheme, s.Eng)
	}

	prof.Phase("simulate")
	results := exp.RunRegistry(cfg, todo)
	prof.Phase("render")
	var rendered int
	for _, r := range results {
		for _, t := range r.Tables {
			rendered += len(t.String())
		}
	}
	prof.EndPhases()

	rep := prof.Report()
	w := bufio.NewWriter(os.Stdout)
	if err := rep.WriteText(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// Run shape goes to stderr: stdout stays byte-identical across -workers.
	fmt.Fprintf(os.Stderr, "(%d experiments profiled, %d table bytes rendered, workers=%d)\n",
		len(results), rendered, cfg.Workers())

	if o.jsonOut != "" {
		j, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonOut, append(j, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote profile JSON: %s\n", o.jsonOut)
	}
	return nil
}
