// Command dcpbench regenerates the paper's tables and figures.
//
//	dcpbench -list                 # show available experiments
//	dcpbench -run fig10            # one experiment
//	dcpbench -run all -scale 0.25  # everything, scaled
//	dcpbench -run quick            # everything except the heavy CLOS runs
//	dcpbench -run all -workers 8   # same bytes, sharded across 8 workers
//	dcpbench -run quick -stats-csv stats.csv   # merged per-experiment stats
//	dcpbench -trace t.json -metrics m.csv   # observed incast demo run
//	dcpbench -check                # invariant-checked incast+link-flap smoke
//	dcpbench -check -run quick     # every non-heavy experiment under the checker
//	dcpbench -bench-json artifacts # BENCH_*.json perf snapshots
//	dcpbench -bench-json artifacts -bench-repeat 3   # median-of-3 wall numbers
//	dcpbench -bench-history artifacts/BENCH_HISTORY.jsonl   # append records
//	dcpbench -bench-compare artifacts/BENCH_BASELINE.jsonl  # regression fence
//	dcpbench -profile -run quick   # engine-dispatch attribution report
//	dcpbench -profile -profile-wall -profile-json p.json    # + host wall section
//
// Output is the same rows/series the paper reports; absolute values differ
// from the authors' testbed (this substrate is a simulator) but the shapes
// and orderings are the reproduction target. See EXPERIMENTS.md.
//
// The -trace/-metrics family runs an observed DCP incast on the dumbbell at
// 1% forced loss and exports the packet-lifecycle trace (Chrome trace-event
// JSON for Perfetto, or JSONL) and the sampled queue/rate time series
// (CSV). See DESIGN.md "Observability".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"dcpsim"
	"dcpsim/internal/exp"
	"dcpsim/internal/exp/pool"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments")
		run      = flag.String("run", "", "experiment id, 'all', or 'quick'")
		seed     = flag.Int64("seed", 42, "simulation seed")
		scale    = flag.Float64("scale", 0.25, "workload scale (1.0 ≈ paper-sized)")
		fault    = flag.Bool("fault", false, "run the failure-recovery experiment family")
		severity = flag.Float64("fault-severity", 0, "pin fault experiments to one severity multiplier (0 = built-in sweep)")
		workers  = flag.Int("workers", pool.DefaultWorkers(), "worker goroutines for the experiment engine (1 = serial; output bytes are identical at any count)")
		statsCSV = flag.String("stats-csv", "", "write merged per-experiment run statistics (flows, bytes, retransmissions, FCT/slowdown percentiles) as CSV to this file")

		check    = flag.Bool("check", false, "run under the flight-recorder invariant checker; exit 1 on any violation (alone: incast+link-flap smoke; with -run/-fault: those experiments)")
		campDoc  = flag.String("campaign", "", "run a declarative campaign document ephemerally (same spec as dcpcampaign; tables to stdout, no bundle)")
		benchDir = flag.String("bench-json", "", "run the perf workloads and write one BENCH_<name>.json record per workload into this directory")

		benchReps = flag.Int("bench-repeat", 1, "repetitions per benchmark workload; wall numbers report the median, the spread becomes the record's noise figure")
		benchHist = flag.String("bench-history", "", "append this bench run's records to this JSONL history file (skipped for handicapped runs)")
		benchCmp  = flag.String("bench-compare", "", "run the noise-aware regression fence against this JSONL baseline; exit 1 on regression")
		benchHand = flag.Float64("bench-handicap", 1, "artificial wall-time multiplier for fence self-tests; handicapped records never enter the history")

		profile     = flag.Bool("profile", false, "run the selected experiments (default: all) under the engine profiler and print the per-component attribution report")
		profileJSON = flag.String("profile-json", "", "with -profile: also write the report as JSON to this file")
		profileWall = flag.Bool("profile-wall", false, "with -profile: inject the host clock to add the machine-varying wall-time and phase section")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the observed demo run to this file")
		jsonlOut   = flag.String("trace-jsonl", "", "write the observed demo run's trace events as JSON lines to this file")
		metricsOut = flag.String("metrics", "", "write the observed demo run's metrics time series as CSV to this file")
		metricsInt = flag.Float64("metrics-interval", 10, "metrics probe cadence in simulated microseconds")
	)
	flag.Parse()

	if *traceOut != "" || *jsonlOut != "" || *metricsOut != "" {
		if err := observeDemo(*seed, *metricsInt, *traceOut, *jsonlOut, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *campDoc != "" {
		if err := runCampaignDoc(*campDoc, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *benchDir != "" || *benchHist != "" || *benchCmp != "" {
		err := runBench(benchOpts{
			dir: *benchDir, seed: *seed, reps: *benchReps,
			history: *benchHist, compare: *benchCmp, handicap: *benchHand,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *profile && *run == "" && !*fault {
		*run = "all"
	}

	if *check && *run == "" && !*fault {
		if n := checkSmoke(*seed); n > 0 {
			fmt.Fprintf(os.Stderr, "invariant check FAILED: %d violations\n", n)
			os.Exit(1)
		}
		fmt.Println("invariant check passed")
		return
	}

	if *list || (*run == "" && !*fault) {
		fmt.Println("experiments:")
		for _, e := range exp.All() {
			heavy := ""
			if e.Heavy {
				heavy = " [heavy]"
			}
			fmt.Printf("  %-10s %s%s\n", e.ID, e.Desc, heavy)
		}
		if *run == "" {
			fmt.Println("\nusage: dcpbench -run <id>|all|quick [-scale 0.25] [-seed 42] [-workers N] [-stats-csv out.csv]")
			fmt.Println("       dcpbench -fault [-fault-severity 1] [-scale 0.25]")
			fmt.Println("       dcpbench -check [-run <id>|all|quick]")
			fmt.Println("       dcpbench -bench-json <dir> [-bench-repeat N] [-bench-history h.jsonl] [-bench-compare base.jsonl]")
			fmt.Println("       dcpbench -profile [-run <id>|all|quick] [-profile-json p.json] [-profile-wall]")
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Scale: *scale, FaultSeverity: *severity}.WithWorkers(*workers)
	if *statsCSV != "" {
		cfg.Stats = exp.NewStatsAccumulator()
	}
	var todo []exp.Experiment
	switch {
	case *fault && *run == "":
		for _, e := range exp.All() {
			if len(e.ID) > 6 && e.ID[:6] == "fault-" {
				todo = append(todo, e)
			}
		}
	case *run == "all":
		todo = exp.All()
	case *run == "quick":
		for _, e := range exp.All() {
			if !e.Heavy {
				todo = append(todo, e)
			}
		}
	default:
		e := exp.ByID(*run)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		todo = []exp.Experiment{*e}
	}

	if *profile {
		if err := runProfile(cfg, todo, profileOpts{jsonOut: *profileJSON, wall: *profileWall}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *check {
		n := runChecked(cfg, todo)
		if err := writeStatsCSV(*statsCSV, cfg.Stats); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "invariant check FAILED: %d violations\n", n)
			os.Exit(1)
		}
		fmt.Println("invariant check passed")
		return
	}

	//lint:allow detcheck wall-clock measures real elapsed time, not sim state
	start := time.Now()
	results := exp.RunRegistry(cfg, todo)
	for _, r := range results {
		fmt.Printf("### %s — %s (seed=%d scale=%.2f)\n\n", r.ID, r.Desc, *seed, *scale)
		for _, t := range r.Tables {
			fmt.Println(t.String())
		}
	}
	// Timing goes to stderr: stdout must be byte-identical across -workers.
	//lint:allow detcheck wall-clock measures real elapsed time, not sim state
	elapsed := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(os.Stderr, "(%d experiments, workers=%d, %s wall-clock)\n",
		len(results), cfg.Workers(), elapsed)
	if err := writeStatsCSV(*statsCSV, cfg.Stats); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeStatsCSV exports the accumulated per-experiment run summaries. The
// bytes are independent of worker count: summaries merge commutatively and
// the export sorts experiment ids.
func writeStatsCSV(path string, acc *exp.StatsAccumulator) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := acc.WriteCSV(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// observeDemo runs a 12→1 DCP incast on the 16-host dumbbell at 1% forced
// loss — enough to saturate the receiver port's data queue and trim — with
// the observability layer attached, then writes the requested exports. The
// simulated run itself is fully deterministic; only the injected wall clock
// (engine self-profiling) varies between invocations.
func observeDemo(seed int64, intervalUs float64, traceOut, jsonlOut, metricsOut string) error {
	cluster := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology:  dcpsim.Dumbbell,
		Hosts:     16,
		Transport: dcpsim.DCP,
		Seed:      seed,
		LossRate:  0.01,
	})
	spec := dcpsim.ObserveSpec{
		MetricsIntervalUs: intervalUs,
		//lint:allow detcheck wall-clock injection for engine self-profiling only; sim state never reads it
		WallNanos: func() int64 { return time.Now().UnixNano() },
	}
	var jsonlFile *os.File
	var jsonlBuf *bufio.Writer
	if jsonlOut != "" {
		f, err := os.Create(jsonlOut)
		if err != nil {
			return err
		}
		jsonlFile, jsonlBuf = f, bufio.NewWriter(f)
		spec.JSONL = jsonlBuf
	}
	ob := cluster.Observe(spec)

	// 12 senders × 8 MB into host 15: ~12 flows' worth of BDP converging on
	// one egress port exceeds the 1 MB trim threshold, so the data queue
	// saturates and trims while the HO control queue stays bounded.
	for src := 0; src < 12; src++ {
		cluster.Send(src, 15, 8<<20)
	}
	unfinished := cluster.Run()

	if jsonlBuf != nil {
		if err := jsonlBuf.Flush(); err != nil {
			return err
		}
		if err := jsonlFile.Close(); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		if err := ob.WriteChromeTrace(bw); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		if err := ob.WriteMetricsCSV(bw); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	fab := cluster.Fabric()
	fmt.Printf("observed incast demo: seed=%d sim_time=%.1fms unfinished=%d\n",
		seed, cluster.NowNanos()/1e6, unfinished)
	fmt.Printf("  trace: %d events buffered, %d dropped, %d trim→HO→retransmit chains\n",
		ob.Events(), ob.DroppedEvents(), ob.TrimChains())
	fmt.Printf("  fabric: %d trimmed, %d HO enqueued, %d HO dropped, max buffer %d B\n",
		fab.TrimmedPackets, fab.HOPackets, fab.DroppedHO, fab.MaxBufferBytes)
	fmt.Printf("  metrics: %d samples at %g µs cadence\n", ob.MetricsSamples(), intervalUs)
	for _, out := range []struct{ path, kind string }{
		{traceOut, "chrome trace (open in ui.perfetto.dev)"},
		{jsonlOut, "JSONL events"},
		{metricsOut, "metrics CSV"},
	} {
		if out.path != "" {
			fmt.Printf("  wrote %s: %s\n", out.kind, out.path)
		}
	}
	return nil
}
