// Command dcpbench regenerates the paper's tables and figures.
//
//	dcpbench -list                 # show available experiments
//	dcpbench -run fig10            # one experiment
//	dcpbench -run all -scale 0.25  # everything, scaled
//	dcpbench -run quick            # everything except the heavy CLOS runs
//
// Output is the same rows/series the paper reports; absolute values differ
// from the authors' testbed (this substrate is a simulator) but the shapes
// and orderings are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dcpsim/internal/exp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments")
		run      = flag.String("run", "", "experiment id, 'all', or 'quick'")
		seed     = flag.Int64("seed", 42, "simulation seed")
		scale    = flag.Float64("scale", 0.25, "workload scale (1.0 ≈ paper-sized)")
		fault    = flag.Bool("fault", false, "run the failure-recovery experiment family")
		severity = flag.Float64("fault-severity", 0, "pin fault experiments to one severity multiplier (0 = built-in sweep)")
	)
	flag.Parse()

	if *list || (*run == "" && !*fault) {
		fmt.Println("experiments:")
		for _, e := range exp.All() {
			heavy := ""
			if e.Heavy {
				heavy = " [heavy]"
			}
			fmt.Printf("  %-10s %s%s\n", e.ID, e.Desc, heavy)
		}
		if *run == "" {
			fmt.Println("\nusage: dcpbench -run <id>|all|quick [-scale 0.25] [-seed 42]")
			fmt.Println("       dcpbench -fault [-fault-severity 1] [-scale 0.25]")
		}
		return
	}

	cfg := exp.Config{Seed: *seed, Scale: *scale, FaultSeverity: *severity}
	var todo []exp.Experiment
	switch {
	case *fault && *run == "":
		for _, e := range exp.All() {
			if len(e.ID) > 6 && e.ID[:6] == "fault-" {
				todo = append(todo, e)
			}
		}
	case *run == "all":
		todo = exp.All()
	case *run == "quick":
		for _, e := range exp.All() {
			if !e.Heavy {
				todo = append(todo, e)
			}
		}
	default:
		e := exp.ByID(*run)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		todo = []exp.Experiment{*e}
	}

	for _, e := range todo {
		//lint:allow detcheck wall-clock banner measures real elapsed time, not sim state
		start := time.Now()
		fmt.Printf("### %s — %s (seed=%d scale=%.2f)\n\n", e.ID, e.Desc, *seed, *scale)
		for _, t := range e.Run(cfg) {
			fmt.Println(t.String())
		}
		//lint:allow detcheck wall-clock banner measures real elapsed time, not sim state
		fmt.Printf("(%s wall-clock)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
