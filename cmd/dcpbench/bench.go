package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dcpsim"
	"dcpsim/internal/bench"
	"dcpsim/internal/exp"
	"dcpsim/internal/exp/pool"
)

// benchOpts is the -bench-* flag surface.
type benchOpts struct {
	dir      string  // -bench-json: write one BENCH_<name>.json per record here ("" = skip)
	seed     int64   // -seed
	reps     int     // -bench-repeat: repetitions per workload; wall numbers are medians
	history  string  // -bench-history: JSONL file to append honest records to
	compare  string  // -bench-compare: JSONL baseline the regression fence runs against
	handicap float64 // -bench-handicap: artificial wall multiplier (fence self-test)
}

// benchScenario builds a cluster and its workload; Run and measurement
// happen in benchScenarioRecord.
type benchScenario struct {
	name  string
	setup func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation)
}

func benchScenarios() []benchScenario {
	return []benchScenario{
		{"incast", func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation) {
			c := dcpsim.NewCluster(dcpsim.ClusterSpec{
				Topology: dcpsim.Dumbbell, Hosts: 16,
				Transport: dcpsim.DCP, Seed: seed, LossRate: 0.01,
			})
			ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
			for src := 0; src < 12; src++ {
				c.Send(src, 15, 8<<20)
			}
			return c, ob
		}},
		{"linkflap", func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation) {
			c := dcpsim.NewCluster(dcpsim.ClusterSpec{
				Topology: dcpsim.Dumbbell, Hosts: 2,
				Transport: dcpsim.DCP, Seed: seed,
			})
			ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
			plan := dcpsim.NewFaultPlan(seed).LinkDown("cross0", 100_000, 200_000)
			if err := c.Inject(plan); err != nil {
				panic(err)
			}
			c.Send(0, 1, 32<<20)
			return c, ob
		}},
	}
}

// finishRecord folds the per-rep host-side samples into the record:
// medians for wall/heap/alloc, relative spread as the noise figure, and
// the derived throughput ratios.
func finishRecord(rec *bench.Record, walls, peaks, allocs []float64) {
	rec.WallMillis = bench.Median(walls)
	rec.Noise = bench.Spread(walls)
	if rec.WallMillis > 0 {
		rec.EventsPerSec = float64(rec.Events) / rec.WallMillis * 1e3
		if rec.SimMillis > 0 {
			rec.SimPerWall = rec.SimMillis / rec.WallMillis
		}
	}
	rec.PeakHeapBytes = uint64(bench.Median(peaks))
	rec.TotalAllocBytes = uint64(bench.Median(allocs))
}

// benchScenarioRecord runs one scenario o.reps times and folds the runs
// into a single record. The deterministic half (engine events, simulated
// time, violations) must be identical across reps — any drift is a
// determinism bug, not noise — while the wall and heap numbers take the
// median with the spread recorded as Noise.
func benchScenarioRecord(sc benchScenario, o benchOpts, host bench.Host) (bench.Record, error) {
	var rec bench.Record
	var walls, peaks, allocs []float64
	for r := 0; r < o.reps; r++ {
		c, ob := sc.setup(o.seed)
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		//lint:allow detcheck wall clock measures simulator speed; sim state never reads it
		start := time.Now()
		c.Run()
		//lint:allow detcheck wall clock measures simulator speed; sim state never reads it
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)

		es := c.EngineStats()
		if r == 0 {
			rec = bench.Record{
				Schema: bench.SchemaVersion, Name: sc.name, Kind: "scenario",
				Host: host, Seed: o.seed, Workers: 1, Reps: o.reps,
				Events: es.Events, SimMillis: c.NowNanos() / 1e6,
				Violations: ob.Violations(),
			}
			if o.handicap != 1 {
				rec.Handicap = o.handicap
			}
		} else if es.Events != rec.Events || ob.Violations() != rec.Violations {
			return rec, fmt.Errorf("bench %s: rep %d diverged (%d events, %d violations vs %d, %d) — determinism bug",
				sc.name, r+1, es.Events, ob.Violations(), rec.Events, rec.Violations)
		}
		walls = append(walls, float64(wall.Nanoseconds())/1e6*o.handicap)
		peaks = append(peaks, float64(after.HeapSys))
		allocs = append(allocs, float64(after.TotalAlloc-before.TotalAlloc))
	}
	finishRecord(&rec, walls, peaks, allocs)
	return rec, nil
}

// registryBenchIDs is the registry smoke matrix: cheap experiments covering
// both testbed and CLOS sweeps, ablations, and fault scenarios — enough
// cells (a few hundred sims) for the pool to shard meaningfully.
func registryBenchIDs() []string {
	return []string{
		"fig8", "fig10", "fig11", "fig12", "longhaul", "fig17",
		"ab-batch", "ab-track", "ab-b2s", "ext-ndp",
		"fault-flap", "fault-pause",
	}
}

// benchRegistry runs the registry smoke serially and across the default
// worker count o.reps times each, verifies every run renders byte-identical
// tables and dispatches the same event count, and returns the
// registry_serial / registry_parallel records. It fails if any parallel run
// diverges from the serial bytes or (with ≥2 cores) the parallel median is
// slower than the serial median — the wall-clock guard CI relies on.
func benchRegistry(o benchOpts, host bench.Host) ([]bench.Record, error) {
	const scale = 0.02
	ids := registryBenchIDs()
	var exps []exp.Experiment
	for _, id := range ids {
		e := exp.ByID(id)
		if e == nil {
			return nil, fmt.Errorf("bench registry: unknown experiment %q", id)
		}
		exps = append(exps, *e)
	}

	run := func(workers int) (out string, wallMs float64, events uint64, peak, alloc float64) {
		cfg := exp.Config{Seed: o.seed, Scale: scale}.WithWorkers(workers)
		cfg.Stats = exp.NewStatsAccumulator()
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		//lint:allow detcheck wall clock measures engine speed; sim state never reads it
		start := time.Now()
		results := exp.RunRegistry(cfg, exps)
		//lint:allow detcheck wall clock measures engine speed; sim state never reads it
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		var b strings.Builder
		for _, r := range results {
			b.WriteString("### " + r.ID + "\n")
			for _, t := range r.Tables {
				b.WriteString(t.String())
				b.WriteString("\n")
			}
		}
		for _, id := range ids {
			if s := cfg.Stats.Summary(id); s != nil {
				events += uint64(s.Events)
			}
		}
		return b.String(), float64(wall.Nanoseconds()) / 1e6 * o.handicap, events,
			float64(after.HeapSys), float64(after.TotalAlloc - before.TotalAlloc)
	}

	workers := pool.DefaultWorkers()
	var refOut string
	var refEvents uint64
	var serialWalls, serialPeaks, serialAllocs []float64
	var parWalls, parPeaks, parAllocs []float64
	for r := 0; r < o.reps; r++ {
		sOut, sWall, sEvents, sPeak, sAlloc := run(1)
		pOut, pWall, pEvents, pPeak, pAlloc := run(workers)
		if r == 0 {
			refOut, refEvents = sOut, sEvents
		} else if sOut != refOut || sEvents != refEvents {
			return nil, fmt.Errorf("bench registry: serial rep %d diverged from rep 1 — determinism bug", r+1)
		}
		if pOut != refOut {
			return nil, fmt.Errorf("bench registry: parallel output diverged from serial bytes (rep %d)", r+1)
		}
		if pEvents != refEvents {
			return nil, fmt.Errorf("bench registry: parallel dispatched %d events, serial %d (rep %d)",
				pEvents, refEvents, r+1)
		}
		serialWalls = append(serialWalls, sWall)
		serialPeaks = append(serialPeaks, sPeak)
		serialAllocs = append(serialAllocs, sAlloc)
		parWalls = append(parWalls, pWall)
		parPeaks = append(parPeaks, pPeak)
		parAllocs = append(parAllocs, pAlloc)
	}

	mk := func(name string, w int) bench.Record {
		rec := bench.Record{
			Schema: bench.SchemaVersion, Name: name, Kind: "registry",
			Host: host, Seed: o.seed, Scale: scale, Workers: w, Reps: o.reps,
			Events: refEvents, Experiments: len(exps),
			OutputBytes: len(refOut), Identical: true,
		}
		if o.handicap != 1 {
			rec.Handicap = o.handicap
		}
		return rec
	}
	serial := mk("registry_serial", 1)
	finishRecord(&serial, serialWalls, serialPeaks, serialAllocs)
	serial.Speedup = 1
	par := mk("registry_parallel", workers)
	finishRecord(&par, parWalls, parPeaks, parAllocs)
	if par.WallMillis > 0 {
		par.Speedup = serial.WallMillis / par.WallMillis
	}

	if workers >= 2 && par.WallMillis > serial.WallMillis {
		return nil, fmt.Errorf("bench registry: parallel median (%.0fms) slower than serial (%.0fms) on %d workers",
			par.WallMillis, serial.WallMillis, workers)
	}
	return []bench.Record{serial, par}, nil
}

// runBench is the -bench-* entry point: measure every workload, write the
// per-record JSON snapshots, append honest records to the history, and run
// the regression fence. The fence baseline is loaded before anything is
// appended, so a run that both appends and compares never fences against
// itself.
func runBench(o benchOpts) error {
	if o.reps < 1 {
		o.reps = 1
	}
	if o.handicap <= 0 {
		o.handicap = 1
	}
	host := bench.LocalHost()

	var baseline []bench.Record
	if o.compare != "" {
		var err error
		baseline, err = bench.Load(o.compare)
		if err != nil {
			return err
		}
	}

	var recs []bench.Record
	for _, sc := range benchScenarios() {
		rec, err := benchScenarioRecord(sc, o, host)
		if err != nil {
			return err
		}
		fmt.Printf("bench %-17s sim=%.1fms wall=%.1fms ±%.0f%% sim/wall=%.2f events/s=%.0f violations=%d\n",
			rec.Name, rec.SimMillis, rec.WallMillis, 100*rec.Noise,
			rec.SimPerWall, rec.EventsPerSec, rec.Violations)
		if rec.Violations > 0 {
			return fmt.Errorf("bench %s: %d invariant violations", rec.Name, rec.Violations)
		}
		recs = append(recs, rec)
	}
	regRecs, err := benchRegistry(o, host)
	if err != nil {
		return err
	}
	for _, rec := range regRecs {
		fmt.Printf("bench %-17s workers=%d wall=%.0fms ±%.0f%% speedup=%.2fx identical=%v\n",
			rec.Name, rec.Workers, rec.WallMillis, 100*rec.Noise, rec.Speedup, rec.Identical)
	}
	recs = append(recs, regRecs...)

	if o.dir != "" {
		if err := os.MkdirAll(o.dir, 0o755); err != nil {
			return err
		}
		for _, rec := range recs {
			out, err := json.MarshalIndent(&rec, "", "  ")
			if err != nil {
				return err
			}
			out = append(out, '\n')
			path := filepath.Join(o.dir, "BENCH_"+rec.Name+".json")
			if err := os.WriteFile(path, out, 0o644); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}

	if o.history != "" {
		if o.handicap != 1 {
			fmt.Fprintln(os.Stderr, "bench: handicapped run — not appending to history")
		} else {
			stamped := append([]bench.Record(nil), recs...)
			//lint:allow detcheck record timestamp is informational metadata; the comparator ignores it
			now := time.Now().Unix()
			for i := range stamped {
				stamped[i].UnixSec = now
			}
			if err := bench.Append(o.history, stamped...); err != nil {
				return err
			}
			fmt.Printf("bench: appended %d records to %s\n", len(stamped), o.history)
		}
	}

	if o.compare != "" {
		vs := bench.Fence(baseline, recs, bench.DefaultThresholds())
		if err := bench.WriteVerdicts(os.Stdout, vs); err != nil {
			return err
		}
		if bench.HasRegression(vs) {
			return fmt.Errorf("bench fence: performance regression against %s", o.compare)
		}
	}
	return nil
}
