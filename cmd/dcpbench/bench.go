package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dcpsim"
	"dcpsim/internal/exp"
	"dcpsim/internal/exp/pool"
)

// benchSnapshot is one BENCH_*.json performance record: simulator speed
// (events/sec, sim-time per wall-time) and memory high-water marks for a
// fixed, seeded scenario. The sim results are deterministic; only the
// wall-clock and heap numbers vary between hosts, which is exactly what a
// perf-tracking artifact wants.
type benchSnapshot struct {
	Name          string  `json:"name"`
	Seed          int64   `json:"seed"`
	SimMillis     float64 `json:"sim_ms"`
	WallMillis    float64 `json:"wall_ms"`
	SimPerWall    float64 `json:"sim_per_wall"`
	TraceEvents   int64   `json:"trace_events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Violations    int64   `json:"violations"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	TotalAlloc    uint64  `json:"total_alloc_bytes"`
	GoVersion     string  `json:"go_version"`
}

// benchScenario builds a cluster and its workload; Run and measurement
// happen in benchOne.
type benchScenario struct {
	name  string
	setup func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation)
}

func benchScenarios() []benchScenario {
	return []benchScenario{
		{"incast", func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation) {
			c := dcpsim.NewCluster(dcpsim.ClusterSpec{
				Topology: dcpsim.Dumbbell, Hosts: 16,
				Transport: dcpsim.DCP, Seed: seed, LossRate: 0.01,
			})
			ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
			for src := 0; src < 12; src++ {
				c.Send(src, 15, 8<<20)
			}
			return c, ob
		}},
		{"linkflap", func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation) {
			c := dcpsim.NewCluster(dcpsim.ClusterSpec{
				Topology: dcpsim.Dumbbell, Hosts: 2,
				Transport: dcpsim.DCP, Seed: seed,
			})
			ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
			plan := dcpsim.NewFaultPlan(seed).LinkDown("cross0", 100_000, 200_000)
			if err := c.Inject(plan); err != nil {
				panic(err)
			}
			c.Send(0, 1, 32<<20)
			return c, ob
		}},
	}
}

// benchOne runs a scenario and measures it.
func benchOne(sc benchScenario, seed int64) benchSnapshot {
	c, ob := sc.setup(seed)
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	//lint:allow detcheck wall clock measures simulator speed; sim state never reads it
	start := time.Now()
	c.Run()
	//lint:allow detcheck wall clock measures simulator speed; sim state never reads it
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	events := int64(ob.Events()) + int64(ob.DroppedEvents())
	snap := benchSnapshot{
		Name:          sc.name,
		Seed:          seed,
		SimMillis:     c.NowNanos() / 1e6,
		WallMillis:    float64(wall.Nanoseconds()) / 1e6,
		TraceEvents:   events,
		Violations:    ob.Violations(),
		PeakHeapBytes: after.HeapSys,
		TotalAlloc:    after.TotalAlloc - before.TotalAlloc,
		GoVersion:     runtime.Version(),
	}
	if wall > 0 {
		snap.SimPerWall = snap.SimMillis / snap.WallMillis
		snap.EventsPerSec = float64(events) / wall.Seconds()
	}
	return snap
}

// benchJSON runs every scenario and writes one BENCH_<name>.json per
// scenario into dir.
func benchJSON(dir string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range benchScenarios() {
		snap := benchOne(sc, seed)
		out, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		path := filepath.Join(dir, "BENCH_"+sc.name+".json")
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench %-10s sim=%.1fms wall=%.1fms sim/wall=%.2f events/s=%.0f violations=%d → %s\n",
			sc.name, snap.SimMillis, snap.WallMillis, snap.SimPerWall,
			snap.EventsPerSec, snap.Violations, path)
		if snap.Violations > 0 {
			return fmt.Errorf("bench %s: %d invariant violations", sc.name, snap.Violations)
		}
	}
	return benchRegistry(dir, seed)
}

// registrySnapshot is the BENCH_registry_*.json record: one registry smoke
// run through the parallel experiment engine at a fixed worker count. The
// serial and parallel variants share a seed and scale, so their rendered
// tables must be byte-identical; only the wall-clock differs.
type registrySnapshot struct {
	Name        string  `json:"name"`
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Workers     int     `json:"workers"`
	Experiments int     `json:"experiments"`
	WallMillis  float64 `json:"wall_ms"`
	// Speedup is serial wall-clock divided by this run's wall-clock
	// (1.0 for the serial record itself).
	Speedup     float64 `json:"speedup_vs_serial"`
	OutputBytes int     `json:"output_bytes"`
	// Identical records the byte-comparison of this run's rendered tables
	// against the serial run's — the deterministic-merge contract.
	Identical bool   `json:"identical_to_serial"`
	Cores     int    `json:"cores"`
	GoVersion string `json:"go_version"`
}

// registryBenchIDs is the registry smoke matrix: cheap experiments covering
// both testbed and CLOS sweeps, ablations, and fault scenarios — enough
// cells (a few hundred sims) for the pool to shard meaningfully.
func registryBenchIDs() []string {
	return []string{
		"fig8", "fig10", "fig11", "fig12", "longhaul", "fig17",
		"ab-batch", "ab-track", "ab-b2s", "ext-ndp",
		"fault-flap", "fault-pause",
	}
}

// benchRegistry runs the registry smoke serially and across the default
// worker count, verifies the outputs are byte-identical, and writes
// BENCH_registry_serial.json and BENCH_registry_parallel.json. It fails if
// the parallel run diverges from the serial bytes or (with ≥2 cores) is
// slower than the serial run — the wall-clock guard CI relies on.
func benchRegistry(dir string, seed int64) error {
	const scale = 0.02
	var exps []exp.Experiment
	for _, id := range registryBenchIDs() {
		e := exp.ByID(id)
		if e == nil {
			return fmt.Errorf("bench registry: unknown experiment %q", id)
		}
		exps = append(exps, *e)
	}

	run := func(workers int) (string, time.Duration) {
		cfg := exp.Config{Seed: seed, Scale: scale}.WithWorkers(workers)
		//lint:allow detcheck wall clock measures engine speed; sim state never reads it
		start := time.Now()
		results := exp.RunRegistry(cfg, exps)
		//lint:allow detcheck wall clock measures engine speed; sim state never reads it
		wall := time.Since(start)
		var b strings.Builder
		for _, r := range results {
			b.WriteString("### " + r.ID + "\n")
			for _, t := range r.Tables {
				b.WriteString(t.String())
				b.WriteString("\n")
			}
		}
		return b.String(), wall
	}

	serialOut, serialWall := run(1)
	workers := pool.DefaultWorkers()
	parOut, parWall := run(workers)

	mk := func(name string, w int, wall time.Duration, out string, identical bool) registrySnapshot {
		snap := registrySnapshot{
			Name: name, Seed: seed, Scale: scale, Workers: w,
			Experiments: len(exps),
			WallMillis:  float64(wall.Nanoseconds()) / 1e6,
			Speedup:     1,
			OutputBytes: len(out),
			Identical:   identical,
			Cores:       runtime.NumCPU(),
			GoVersion:   runtime.Version(),
		}
		if wall > 0 {
			snap.Speedup = float64(serialWall.Nanoseconds()) / float64(wall.Nanoseconds())
		}
		return snap
	}
	snaps := []registrySnapshot{
		mk("registry_serial", 1, serialWall, serialOut, true),
		mk("registry_parallel", workers, parWall, parOut, parOut == serialOut),
	}
	for _, snap := range snaps {
		out, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		path := filepath.Join(dir, "BENCH_"+snap.Name+".json")
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench %-17s workers=%d wall=%.0fms speedup=%.2fx identical=%v → %s\n",
			snap.Name, snap.Workers, snap.WallMillis, snap.Speedup, snap.Identical, path)
	}

	if parOut != serialOut {
		return fmt.Errorf("bench registry: parallel output diverged from serial bytes")
	}
	if workers >= 2 && parWall > serialWall {
		return fmt.Errorf("bench registry: parallel run (%v) slower than serial (%v) on %d workers",
			parWall.Round(time.Millisecond), serialWall.Round(time.Millisecond), workers)
	}
	return nil
}
