package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"dcpsim"
)

// benchSnapshot is one BENCH_*.json performance record: simulator speed
// (events/sec, sim-time per wall-time) and memory high-water marks for a
// fixed, seeded scenario. The sim results are deterministic; only the
// wall-clock and heap numbers vary between hosts, which is exactly what a
// perf-tracking artifact wants.
type benchSnapshot struct {
	Name          string  `json:"name"`
	Seed          int64   `json:"seed"`
	SimMillis     float64 `json:"sim_ms"`
	WallMillis    float64 `json:"wall_ms"`
	SimPerWall    float64 `json:"sim_per_wall"`
	TraceEvents   int64   `json:"trace_events"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Violations    int64   `json:"violations"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	TotalAlloc    uint64  `json:"total_alloc_bytes"`
	GoVersion     string  `json:"go_version"`
}

// benchScenario builds a cluster and its workload; Run and measurement
// happen in benchOne.
type benchScenario struct {
	name  string
	setup func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation)
}

func benchScenarios() []benchScenario {
	return []benchScenario{
		{"incast", func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation) {
			c := dcpsim.NewCluster(dcpsim.ClusterSpec{
				Topology: dcpsim.Dumbbell, Hosts: 16,
				Transport: dcpsim.DCP, Seed: seed, LossRate: 0.01,
			})
			ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
			for src := 0; src < 12; src++ {
				c.Send(src, 15, 8<<20)
			}
			return c, ob
		}},
		{"linkflap", func(seed int64) (*dcpsim.Cluster, *dcpsim.Observation) {
			c := dcpsim.NewCluster(dcpsim.ClusterSpec{
				Topology: dcpsim.Dumbbell, Hosts: 2,
				Transport: dcpsim.DCP, Seed: seed,
			})
			ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
			plan := dcpsim.NewFaultPlan(seed).LinkDown("cross0", 100_000, 200_000)
			if err := c.Inject(plan); err != nil {
				panic(err)
			}
			c.Send(0, 1, 32<<20)
			return c, ob
		}},
	}
}

// benchOne runs a scenario and measures it.
func benchOne(sc benchScenario, seed int64) benchSnapshot {
	c, ob := sc.setup(seed)
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	//lint:allow detcheck wall clock measures simulator speed; sim state never reads it
	start := time.Now()
	c.Run()
	//lint:allow detcheck wall clock measures simulator speed; sim state never reads it
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	events := int64(ob.Events()) + int64(ob.DroppedEvents())
	snap := benchSnapshot{
		Name:          sc.name,
		Seed:          seed,
		SimMillis:     c.NowNanos() / 1e6,
		WallMillis:    float64(wall.Nanoseconds()) / 1e6,
		TraceEvents:   events,
		Violations:    ob.Violations(),
		PeakHeapBytes: after.HeapSys,
		TotalAlloc:    after.TotalAlloc - before.TotalAlloc,
		GoVersion:     runtime.Version(),
	}
	if wall > 0 {
		snap.SimPerWall = snap.SimMillis / snap.WallMillis
		snap.EventsPerSec = float64(events) / wall.Seconds()
	}
	return snap
}

// benchJSON runs every scenario and writes one BENCH_<name>.json per
// scenario into dir.
func benchJSON(dir string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, sc := range benchScenarios() {
		snap := benchOne(sc, seed)
		out, err := json.MarshalIndent(&snap, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		path := filepath.Join(dir, "BENCH_"+sc.name+".json")
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("bench %-10s sim=%.1fms wall=%.1fms sim/wall=%.2f events/s=%.0f violations=%d → %s\n",
			sc.name, snap.SimMillis, snap.WallMillis, snap.SimPerWall,
			snap.EventsPerSec, snap.Violations, path)
		if snap.Violations > 0 {
			return fmt.Errorf("bench %s: %d invariant violations", sc.name, snap.Violations)
		}
	}
	return nil
}
