package main

import (
	"fmt"
	"os"

	"dcpsim/internal/campaign"
)

// runCampaignDoc executes a campaign document ephemerally through the
// same spec type dcpcampaign uses: parse, lint, compile, run with the
// bench worker pool, tables to stdout. No checkpoints or bundle — use
// dcpcampaign -out for those.
func runCampaignDoc(path string, workers int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, diags := campaign.Parse(data, campaign.FormatForPath(path))
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, d.Line, d.Msg)
		}
		return fmt.Errorf("%s: %d diagnostics", path, len(diags))
	}
	c, err := campaign.Compile(doc)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	rep, err := campaign.Run(c, data, campaign.Options{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Print(campaign.RenderTables(c, rep.Results))
	for _, f := range rep.ExpectFailures {
		fmt.Printf("expect FAILED: %s\n", f)
	}
	if len(rep.ExpectFailures) > 0 {
		os.Exit(1)
	}
	return nil
}
