package main

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"dcpsim"
	"dcpsim/internal/exp"
	"dcpsim/internal/obs"
	"dcpsim/internal/obs/flight"
)

// runChecked executes the selected experiments with the invariant checker
// attached to every simulation and prints one verdict line per experiment.
// It returns the total violation count across the whole run.
//
// Checkers are keyed by the registry's deterministic CellKeys (assigned at
// submission time, not completion time) via Config.Hook, so the run works
// identically across any -workers count: the verdict lines follow the
// requested experiment order and autopsies print in CellKey order, making
// the output byte-identical to a serial run.
func runChecked(cfg exp.Config, todo []exp.Experiment) int64 {
	var mu sync.Mutex
	checkers := map[exp.CellKey]*flight.Checker{}
	cfg.Hook = func(key exp.CellKey, s *exp.Sim) {
		tr := obs.NewTracer()
		tr.SetLimit(1) // flat memory: the checker consumes the stream online
		ck := flight.New(flight.Config{})
		tr.Tee(ck)
		s.Attach(tr, nil)
		mu.Lock()
		checkers[key] = ck
		mu.Unlock()
	}
	for _, r := range exp.RunRegistry(cfg, todo) {
		_ = r // -check validates invariants; tables are not printed
	}

	sorted := make([]exp.CellKey, 0, len(checkers))
	for k := range checkers {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	byExp := map[string][]exp.CellKey{}
	for _, k := range sorted {
		byExp[k.Exp] = append(byExp[k.Exp], k)
	}

	var total int64
	for _, e := range todo {
		keys := byExp[e.ID]
		var viol, events int64
		for _, k := range keys {
			viol += checkers[k].Violations()
			events += checkers[k].Events()
		}
		verdict := "ok"
		if viol > 0 {
			verdict = "VIOLATED"
		}
		fmt.Printf("check %-12s %-8s sims=%d events=%d violations=%d\n",
			e.ID, verdict, len(keys), events, viol)
		if viol > 0 {
			for _, k := range keys {
				if ck := checkers[k]; ck.Violations() > 0 {
					fmt.Printf("autopsy %s\n", k)
					if err := ck.Finish().WriteText(os.Stdout); err != nil {
						fmt.Fprintln(os.Stderr, "dcpbench: writing autopsy:", err)
					}
				}
			}
		}
		total += viol
	}
	return total
}

// checkSmoke is the default -check workload (no -run given): the observed
// incast demo plus a mid-transfer link flap, both under the checker — the
// trim/HO/RetransQ pipeline and the timeout/epoch fallback path in one
// cheap pass. Returns the total violation count.
func checkSmoke(seed int64) int64 {
	var total int64

	// 12→1 incast at 1% forced loss: heavy trimming and HO recovery.
	c := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology:  dcpsim.Dumbbell,
		Hosts:     16,
		Transport: dcpsim.DCP,
		Seed:      seed,
		LossRate:  0.01,
	})
	ob := c.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
	for src := 0; src < 12; src++ {
		c.Send(src, 15, 8<<20)
	}
	unfinished := c.Run()
	verdict := "ok"
	if ob.Violations() > 0 {
		verdict = "VIOLATED"
	}
	fmt.Printf("check incast-demo  %-8s unfinished=%d violations=%d\n",
		verdict, unfinished, ob.Violations())
	if ob.Violations() > 0 {
		if err := ob.WriteAutopsyText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dcpbench: writing autopsy:", err)
		}
	}
	total += ob.Violations()

	// Cross-link outage mid-transfer: coarse timeout, epoch fallback,
	// whole-message resend.
	fc := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology:  dcpsim.Dumbbell,
		Hosts:     2,
		Transport: dcpsim.DCP,
		Seed:      seed,
	})
	fob := fc.Observe(dcpsim.ObserveSpec{Check: true, MaxEvents: 1})
	plan := dcpsim.NewFaultPlan(seed).LinkDown("cross0", 100_000, 200_000)
	if err := fc.Inject(plan); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return total + 1
	}
	fc.Send(0, 1, 32<<20)
	unfinished = fc.Run()
	verdict = "ok"
	if fob.Violations() > 0 {
		verdict = "VIOLATED"
	}
	fmt.Printf("check link-flap    %-8s unfinished=%d violations=%d\n",
		verdict, unfinished, fob.Violations())
	if fob.Violations() > 0 {
		if err := fob.WriteAutopsyText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dcpbench: writing autopsy:", err)
		}
	}
	return total + fob.Violations()
}
