package dcpsim

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestPairTransfer(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Pair, Transport: DCP})
	h := c.Send(0, 1, 8<<20)
	if left := c.Run(); left != 0 {
		t.Fatalf("%d unfinished", left)
	}
	if !h.Done() {
		t.Fatal("handle not done")
	}
	if h.Goodput() < 80 {
		t.Fatalf("goodput %.1f", h.Goodput())
	}
	if h.FCTMicros() <= 0 {
		t.Fatal("fct")
	}
	if h.Retransmissions() != 0 || h.Timeouts() != 0 {
		t.Fatal("clean transfer")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := NewCluster(ClusterSpec{})
	if c.Hosts() != 16 {
		t.Fatalf("default dumbbell hosts = %d", c.Hosts())
	}
}

func TestAllTransportsComplete(t *testing.T) {
	for _, tr := range []Transport{DCP, DCPWithCC, IRN, GBN, PFC, MPRDMA, RACKTLP, TimeoutOnly, TCP, NDP} {
		c := NewCluster(ClusterSpec{Topology: Pair, Transport: tr})
		h := c.Send(0, 1, 2<<20)
		if left := c.Run(); left != 0 {
			t.Fatalf("%s: unfinished", tr)
		}
		if !h.Done() {
			t.Fatalf("%s: not done", tr)
		}
	}
}

func TestLossRateTriggersTrimsForDCP(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.01})
	h := c.Send(0, 1, 16<<20)
	c.Run()
	fs := c.Fabric()
	if fs.TrimmedPackets == 0 || fs.HOPackets == 0 {
		t.Fatalf("expected trims: %+v", fs)
	}
	if h.Retransmissions() == 0 {
		t.Fatal("expected retransmissions")
	}
	if h.Timeouts() != 0 {
		t.Fatal("HO path should avoid timeouts")
	}
}

func TestClosCluster(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Clos, Hosts: 32, Transport: DCP})
	if c.Hosts() != 32 {
		t.Fatalf("hosts = %d", c.Hosts())
	}
	h := c.Send(0, 31, 4<<20) // cross-rack
	if c.Run() != 0 {
		t.Fatal("unfinished")
	}
	if !h.Done() {
		t.Fatal("not done")
	}
}

func TestInvalidSpecsPanic(t *testing.T) {
	cases := []ClusterSpec{
		{Transport: "bogus"},
		{Topology: "ring"},
		{Topology: Clos, Hosts: 17},
	}
	for i, spec := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewCluster(spec)
		}()
	}
}

func TestSendAtSchedulesLater(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Pair, Transport: DCP})
	h := c.SendAt(0, 1, 1000, 5000) // start at 5 µs
	c.Run()
	if !h.Done() {
		t.Fatal("not done")
	}
	if c.NowNanos() < 5000 {
		t.Fatal("clock should pass the scheduled start")
	}
}

func TestRunFor(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Pair, Transport: DCP})
	c.Send(0, 1, 64<<20)
	left := c.RunFor(10_000) // 10 µs: nowhere near enough
	if left == 0 {
		t.Fatal("should not complete in 10us")
	}
	if c.Run() != 0 {
		t.Fatal("completion")
	}
}

func TestCollectives(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 8, Transport: DCP})
	res := c.RunAllReduce([]int{0, 2, 4, 6}, 8<<20)
	if res.JCTMillis <= 0 {
		t.Fatalf("JCT %v", res.JCTMillis)
	}
	if res.Flows != 2*3*4 {
		t.Fatalf("ring flows = %d", res.Flows)
	}
	c2 := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 8, Transport: DCP})
	res2 := c2.RunAllToAll([]int{0, 2, 4, 6}, 8<<20)
	if res2.Flows != 4*3 {
		t.Fatalf("alltoall flows = %d", res2.Flows)
	}
}

func TestLongHaulSpec(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LongHaulKm: 10})
	h := c.Send(0, 1, 64<<20)
	c.Run()
	if h.Goodput() < 60 {
		t.Fatalf("long-haul goodput %.1f", h.Goodput())
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 20 {
		t.Fatalf("only %d experiments", len(exps))
	}
	out, err := RunExperiment("table1", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !strings.Contains(out[0], "Tomahawk") {
		t.Fatalf("table1 output: %v", out)
	}
	if _, err := RunExperiment("nope", 1, 1); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.02, Seed: 9})
		h := c.Send(0, 1, 8<<20)
		c.Run()
		return h.FCTMicros()
	}
	if run() != run() {
		t.Fatal("same seed must reproduce exactly")
	}
}

func TestCaptureWritesPcap(t *testing.T) {
	var buf bytes.Buffer
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.02})
	if err := c.Capture(&buf); err != nil {
		t.Fatal(err)
	}
	c.Send(0, 1, 1<<20)
	c.Run()
	if buf.Len() < 24+16+57 {
		t.Fatalf("capture too small: %d bytes", buf.Len())
	}
	if binary.LittleEndian.Uint32(buf.Bytes()) != 0xa1b2c3d4 {
		t.Fatal("bad pcap magic")
	}
}

func TestFaultPlanFacade(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP})
	names := c.LinkNames()
	found := false
	for _, n := range names {
		if n == "cross0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross0 missing from %v", names)
	}
	// Kill the cross link 20 µs in, restore 100 µs later: the transfer must
	// survive the outage and finish.
	fp := NewFaultPlan(1).LinkDown("cross0", 20_000, 100_000)
	if err := c.Inject(fp); err != nil {
		t.Fatal(err)
	}
	h := c.Send(0, 1, 4<<20)
	if left := c.Run(); left != 0 {
		t.Fatal("unfinished after link restored")
	}
	if !h.Done() {
		t.Fatal("not done")
	}
	if h.Retransmissions() == 0 && h.Timeouts() == 0 {
		t.Fatal("a mid-transfer outage should force recovery work")
	}
	if err := c.Inject(NewFaultPlan(1).LinkDown("nope", 1000, 1000)); err == nil {
		t.Fatal("unknown link must error")
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	// Two identically-seeded runs of the same fault plan must agree
	// bit-for-bit on every observable statistic — the repository's core
	// determinism contract, here exercised end-to-end through the facade
	// with both scheduled (flap) and stochastic (burst) fault events.
	run := func() (float64, float64, int64, int64) {
		c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.01, Seed: 7})
		fp := NewFaultPlan(7).
			LinkFlap("cross0", 20_000, 40_000, 0.5, 3).
			LossBursts("cross0", 10_000, 200_000, 4, 2, 6)
		if err := c.Inject(fp); err != nil {
			t.Fatal(err)
		}
		h := c.Send(0, 1, 4<<20)
		if left := c.Run(); left != 0 {
			t.Fatalf("%d flows unfinished", left)
		}
		return h.FCTMicros(), h.Goodput(), h.Retransmissions(), h.Timeouts()
	}
	f1, g1, r1, to1 := run()
	f2, g2, r2, to2 := run()
	if f1 != f2 || g1 != g2 || r1 != r2 || to1 != to2 {
		t.Fatalf("same seed diverged: (%v µs, %v, %d retrans, %d timeouts) vs (%v µs, %v, %d, %d)",
			f1, g1, r1, to1, f2, g2, r2, to2)
	}
}

func TestRunWebSearchFacade(t *testing.T) {
	res := RunWebSearch(WebSearchSpec{Transport: DCP, Flows: 50, Load: 0.2, Seed: 5})
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	if res.P50Slowdown < 1 || res.P95Slowdown < res.P50Slowdown {
		t.Fatalf("slowdowns implausible: %+v", res)
	}
	if res.Timeouts != 0 {
		t.Fatalf("DCP at load 0.2 should not time out: %+v", res)
	}
}
