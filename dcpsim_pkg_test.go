package dcpsim

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
)

func TestPairTransfer(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Pair, Transport: DCP})
	h := c.Send(0, 1, 8<<20)
	if left := c.Run(); left != 0 {
		t.Fatalf("%d unfinished", left)
	}
	if !h.Done() {
		t.Fatal("handle not done")
	}
	if h.Goodput() < 80 {
		t.Fatalf("goodput %.1f", h.Goodput())
	}
	if h.FCTMicros() <= 0 {
		t.Fatal("fct")
	}
	if h.Retransmissions() != 0 || h.Timeouts() != 0 {
		t.Fatal("clean transfer")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := NewCluster(ClusterSpec{})
	if c.Hosts() != 16 {
		t.Fatalf("default dumbbell hosts = %d", c.Hosts())
	}
}

func TestAllTransportsComplete(t *testing.T) {
	for _, tr := range []Transport{DCP, DCPWithCC, IRN, GBN, PFC, MPRDMA, RACKTLP, TimeoutOnly, TCP, NDP} {
		c := NewCluster(ClusterSpec{Topology: Pair, Transport: tr})
		h := c.Send(0, 1, 2<<20)
		if left := c.Run(); left != 0 {
			t.Fatalf("%s: unfinished", tr)
		}
		if !h.Done() {
			t.Fatalf("%s: not done", tr)
		}
	}
}

func TestLossRateTriggersTrimsForDCP(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.01})
	h := c.Send(0, 1, 16<<20)
	c.Run()
	fs := c.Fabric()
	if fs.TrimmedPackets == 0 || fs.HOPackets == 0 {
		t.Fatalf("expected trims: %+v", fs)
	}
	if h.Retransmissions() == 0 {
		t.Fatal("expected retransmissions")
	}
	if h.Timeouts() != 0 {
		t.Fatal("HO path should avoid timeouts")
	}
}

func TestClosCluster(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Clos, Hosts: 32, Transport: DCP})
	if c.Hosts() != 32 {
		t.Fatalf("hosts = %d", c.Hosts())
	}
	h := c.Send(0, 31, 4<<20) // cross-rack
	if c.Run() != 0 {
		t.Fatal("unfinished")
	}
	if !h.Done() {
		t.Fatal("not done")
	}
}

func TestInvalidSpecsPanic(t *testing.T) {
	cases := []ClusterSpec{
		{Transport: "bogus"},
		{Topology: "ring"},
		{Topology: Clos, Hosts: 17},
	}
	for i, spec := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			NewCluster(spec)
		}()
	}
}

func TestSendAtSchedulesLater(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Pair, Transport: DCP})
	h := c.SendAt(0, 1, 1000, 5000) // start at 5 µs
	c.Run()
	if !h.Done() {
		t.Fatal("not done")
	}
	if c.NowNanos() < 5000 {
		t.Fatal("clock should pass the scheduled start")
	}
}

func TestRunFor(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Pair, Transport: DCP})
	c.Send(0, 1, 64<<20)
	left := c.RunFor(10_000) // 10 µs: nowhere near enough
	if left == 0 {
		t.Fatal("should not complete in 10us")
	}
	if c.Run() != 0 {
		t.Fatal("completion")
	}
}

func TestCollectives(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 8, Transport: DCP})
	res := c.RunAllReduce([]int{0, 2, 4, 6}, 8<<20)
	if res.JCTMillis <= 0 {
		t.Fatalf("JCT %v", res.JCTMillis)
	}
	if res.Flows != 2*3*4 {
		t.Fatalf("ring flows = %d", res.Flows)
	}
	c2 := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 8, Transport: DCP})
	res2 := c2.RunAllToAll([]int{0, 2, 4, 6}, 8<<20)
	if res2.Flows != 4*3 {
		t.Fatalf("alltoall flows = %d", res2.Flows)
	}
}

func TestLongHaulSpec(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LongHaulKm: 10})
	h := c.Send(0, 1, 64<<20)
	c.Run()
	if h.Goodput() < 60 {
		t.Fatalf("long-haul goodput %.1f", h.Goodput())
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 20 {
		t.Fatalf("only %d experiments", len(exps))
	}
	out, err := RunExperiment("table1", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || !strings.Contains(out[0], "Tomahawk") {
		t.Fatalf("table1 output: %v", out)
	}
	if _, err := RunExperiment("nope", 1, 1); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.02, Seed: 9})
		h := c.Send(0, 1, 8<<20)
		c.Run()
		return h.FCTMicros()
	}
	if run() != run() {
		t.Fatal("same seed must reproduce exactly")
	}
}

func TestCaptureWritesPcap(t *testing.T) {
	var buf bytes.Buffer
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.02})
	if err := c.Capture(&buf); err != nil {
		t.Fatal(err)
	}
	c.Send(0, 1, 1<<20)
	c.Run()
	if buf.Len() < 24+16+57 {
		t.Fatalf("capture too small: %d bytes", buf.Len())
	}
	if binary.LittleEndian.Uint32(buf.Bytes()) != 0xa1b2c3d4 {
		t.Fatal("bad pcap magic")
	}
}

func TestFaultPlanFacade(t *testing.T) {
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP})
	names := c.LinkNames()
	found := false
	for _, n := range names {
		if n == "cross0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross0 missing from %v", names)
	}
	// Kill the cross link 20 µs in, restore 100 µs later: the transfer must
	// survive the outage and finish.
	fp := NewFaultPlan(1).LinkDown("cross0", 20_000, 100_000)
	if err := c.Inject(fp); err != nil {
		t.Fatal(err)
	}
	h := c.Send(0, 1, 4<<20)
	if left := c.Run(); left != 0 {
		t.Fatal("unfinished after link restored")
	}
	if !h.Done() {
		t.Fatal("not done")
	}
	if h.Retransmissions() == 0 && h.Timeouts() == 0 {
		t.Fatal("a mid-transfer outage should force recovery work")
	}
	if err := c.Inject(NewFaultPlan(1).LinkDown("nope", 1000, 1000)); err == nil {
		t.Fatal("unknown link must error")
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	// Two identically-seeded runs of the same fault plan must agree
	// bit-for-bit on every observable statistic — the repository's core
	// determinism contract, here exercised end-to-end through the facade
	// with both scheduled (flap) and stochastic (burst) fault events.
	run := func() (float64, float64, int64, int64) {
		c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.01, Seed: 7})
		fp := NewFaultPlan(7).
			LinkFlap("cross0", 20_000, 40_000, 0.5, 3).
			LossBursts("cross0", 10_000, 200_000, 4, 2, 6)
		if err := c.Inject(fp); err != nil {
			t.Fatal(err)
		}
		h := c.Send(0, 1, 4<<20)
		if left := c.Run(); left != 0 {
			t.Fatalf("%d flows unfinished", left)
		}
		return h.FCTMicros(), h.Goodput(), h.Retransmissions(), h.Timeouts()
	}
	f1, g1, r1, to1 := run()
	f2, g2, r2, to2 := run()
	if f1 != f2 || g1 != g2 || r1 != r2 || to1 != to2 {
		t.Fatalf("same seed diverged: (%v µs, %v, %d retrans, %d timeouts) vs (%v µs, %v, %d, %d)",
			f1, g1, r1, to1, f2, g2, r2, to2)
	}
}

func TestRunWebSearchFacade(t *testing.T) {
	res := RunWebSearch(WebSearchSpec{Transport: DCP, Flows: 50, Load: 0.2, Seed: 5})
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	if res.P50Slowdown < 1 || res.P95Slowdown < res.P50Slowdown {
		t.Fatalf("slowdowns implausible: %+v", res)
	}
	if res.Timeouts != 0 {
		t.Fatalf("DCP at load 0.2 should not time out: %+v", res)
	}
}

func TestObserveDoesNotPerturbRun(t *testing.T) {
	// The observability determinism contract, end to end: attaching the
	// tracer and metrics probe to a run must leave every flow statistic and
	// fabric counter bit-identical to the unobserved run at the same seed.
	spec := ClusterSpec{Topology: Dumbbell, Hosts: 2, Transport: DCP, LossRate: 0.02, Seed: 11}
	type result struct {
		fct, goodput     float64
		retrans, timeout int64
		fabric           FabricStats
	}
	run := func(observe bool) (result, float64) {
		c := NewCluster(spec)
		if observe {
			c.Observe(ObserveSpec{})
		}
		h := c.Send(0, 1, 8<<20)
		if left := c.Run(); left != 0 {
			t.Fatalf("%d unfinished", left)
		}
		return result{h.FCTMicros(), h.Goodput(), h.Retransmissions(), h.Timeouts(),
			c.Fabric()}, c.NowNanos()
	}
	plain, plainNow := run(false)
	observed, observedNow := run(true)
	if plain != observed {
		t.Fatalf("observation perturbed the run:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
	// The observed run's clock may end on the final probe tick, at most one
	// probe interval (10 µs default) past the last real event.
	if observedNow < plainNow || observedNow > plainNow+10_000 {
		t.Fatalf("final clock %v ns, want within one probe interval of %v ns", observedNow, plainNow)
	}
}

func TestObservedIncastTraceAndMetrics(t *testing.T) {
	// The paper's recovery story, visible in the trace: a 12→1 incast at 1%
	// forced loss trims at the congested egress, HO packets bounce back, and
	// CC-regulated retransmissions repair the loss — while the lossless
	// control queue stays tiny even as the data queue saturates.
	c := NewCluster(ClusterSpec{Topology: Dumbbell, Hosts: 16, Transport: DCP, LossRate: 0.01, Seed: 42})
	ob := c.Observe(ObserveSpec{MetricsIntervalUs: 10})
	for src := 0; src < 12; src++ {
		c.Send(src, 15, 2<<20)
	}
	if left := c.Run(); left != 0 {
		t.Fatalf("%d unfinished", left)
	}
	if ob.Events() == 0 || ob.DroppedEvents() != 0 {
		t.Fatalf("events=%d dropped=%d", ob.Events(), ob.DroppedEvents())
	}
	if ob.TrimChains() == 0 {
		t.Fatal("no complete trim→HO→retransmit chain in the trace")
	}
	counts := ob.CountsByType()
	for _, ev := range []string{"flow-start", "enqueue", "trim", "ho-enqueue", "ho-bounce",
		"ho-return", "retransmit", "deliver", "flow-done"} {
		if counts[ev] == 0 {
			t.Fatalf("no %q events; counts=%v", ev, counts)
		}
	}
	if counts["flow-done"] != 12 {
		t.Fatalf("flow-done count = %d, want 12", counts["flow-done"])
	}
	if ob.MetricsSamples() == 0 {
		t.Fatal("metrics probe never ticked")
	}
	// Host 15 sits behind switch 1's egress 7: its data queue must build
	// toward the trim threshold while the HO control queue stays bounded
	// near a single 57-byte header.
	maxOf := func(name string) float64 {
		vals := ob.SeriesValues(name)
		if vals == nil {
			t.Fatalf("series %q missing", name)
		}
		m := 0.0
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	}
	dataMax, ctrlMax := maxOf("sw1.eg7.dataq_bytes"), maxOf("sw1.eg7.ctrlq_bytes")
	if dataMax < 100_000 {
		t.Fatalf("data queue never saturated: max %v B", dataMax)
	}
	if ctrlMax > 10_000 {
		t.Fatalf("HO control queue not bounded: max %v B", ctrlMax)
	}

	// The Chrome trace export must be valid JSON with the expected shape.
	var buf bytes.Buffer
	if err := ob.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < ob.Events() {
		t.Fatalf("chrome trace has %d entries for %d events", len(doc.TraceEvents), ob.Events())
	}
	// And the CSV export keeps one column per registered series.
	buf.Reset()
	if err := ob.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header, _, ok := strings.Cut(buf.String(), "\n")
	if !ok || !strings.HasPrefix(header, "time_us,") {
		t.Fatalf("CSV header: %q", header)
	}
	if got, want := strings.Count(header, ",")+1, 1+len(ob.SeriesNames()); got != want {
		t.Fatalf("CSV has %d columns, want %d", got, want)
	}
}
