// Package dcpsim is a simulation-backed implementation of DCP, the
// switch/RNIC co-designed RDMA transport for lossy fabrics from
// "Revisiting RDMA Reliability for Lossy Fabrics" (SIGCOMM 2025), together
// with the baselines it is evaluated against (RNIC-GBN/PFC, IRN, MP-RDMA,
// RACK-TLP, timeout-only) and the packet-level network substrate they run
// on.
//
// The package exposes a small facade over the internal engine:
//
//	net := dcpsim.NewCluster(dcpsim.ClusterSpec{Hosts: 8, Transport: dcpsim.DCP})
//	h := net.Send(0, 1, 64<<20) // 64 MB RDMA transfer
//	net.Run()
//	fmt.Println(h.Goodput())
//
// Everything is deterministic given the Spec's Seed. For the paper's
// tables and figures, see RunExperiment and cmd/dcpbench.
package dcpsim

import (
	"fmt"
	"io"

	"dcpsim/internal/exp"
	"dcpsim/internal/fabric"
	"dcpsim/internal/faults"
	"dcpsim/internal/obs"
	"dcpsim/internal/obs/flight"
	"dcpsim/internal/packet"
	"dcpsim/internal/pcap"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Transport selects the endpoint protocol.
type Transport string

// Supported transports.
const (
	DCP         Transport = "dcp"     // the paper's contribution (lossy fabric + trimming + AR)
	DCPWithCC   Transport = "dcp+cc"  // DCP with DCQCN integrated
	IRN         Transport = "irn"     // RNIC-SR baseline (lossy fabric)
	GBN         Transport = "gbn"     // CX5-style Go-Back-N (lossy fabric)
	PFC         Transport = "pfc"     // GBN over a PFC lossless fabric
	MPRDMA      Transport = "mprdma"  // MP-RDMA over a PFC lossless fabric
	RACKTLP     Transport = "racktlp" // RACK-TLP loss detection (lossy)
	TimeoutOnly Transport = "timeout" // timeout-only recovery (lossy)
	TCP         Transport = "tcp"     // software TCP-like endpoint
	NDP         Transport = "ndp"     // receiver-driven NDP over the trimming fabric
)

// scheme maps a Transport to the internal scheme bundle.
func (t Transport) scheme() (exp.Scheme, error) {
	switch t {
	case DCP:
		return exp.SchemeDCP(false), nil
	case DCPWithCC:
		return exp.SchemeDCP(true), nil
	case IRN:
		return exp.SchemeIRN(fabric.LBAdaptive, false), nil
	case GBN:
		return exp.SchemeGBNLossy(fabric.LBECMP), nil
	case PFC:
		return exp.SchemePFC(), nil
	case MPRDMA:
		return exp.SchemeMPRDMA(), nil
	case RACKTLP:
		return exp.SchemeRACK(), nil
	case TimeoutOnly:
		return exp.SchemeTimeout(), nil
	case TCP:
		return exp.SchemeTCP(), nil
	case NDP:
		return exp.SchemeNDP(), nil
	default:
		return exp.Scheme{}, fmt.Errorf("dcpsim: unknown transport %q", t)
	}
}

// Topology selects the network shape.
type Topology string

// Supported topologies.
const (
	// Pair is two hosts back-to-back (Hosts is ignored).
	Pair Topology = "pair"
	// Dumbbell is two switches with Hosts/2 hosts each and parallel cross
	// links (the paper's testbed).
	Dumbbell Topology = "dumbbell"
	// Clos is the two-layer 16×16×256 CLOS scaled to Hosts (must be a
	// multiple of 16).
	Clos Topology = "clos"
)

// ClusterSpec configures a simulated cluster.
type ClusterSpec struct {
	Topology  Topology // default Dumbbell
	Hosts     int      // default 16
	Transport Transport
	Seed      int64
	// LinkRateGbps is the NIC/link speed (default 100).
	LinkRateGbps int
	// LossRate injects uniform random loss at switches (trims for DCP).
	LossRate float64
	// LongHaulKm stretches the switch-to-switch links to the given fiber
	// length (5 µs/km), for cross-DC scenarios.
	LongHaulKm int
}

// Cluster is a running simulated network.
type Cluster struct {
	spec   ClusterSpec
	sim    *exp.Sim
	nextID uint64
}

// FlowHandle tracks one transfer.
type FlowHandle struct {
	c  *Cluster
	id uint64
}

// NewCluster builds a cluster per spec. Invalid specs panic with a
// descriptive message (construction errors are programming errors).
func NewCluster(spec ClusterSpec) *Cluster {
	if spec.Topology == "" {
		spec.Topology = Dumbbell
	}
	if spec.Hosts == 0 {
		spec.Hosts = 16
	}
	if spec.LinkRateGbps == 0 {
		spec.LinkRateGbps = 100
	}
	if spec.Transport == "" {
		spec.Transport = DCP
	}
	sch, err := spec.Transport.scheme()
	if err != nil {
		panic(err)
	}
	rate := units.Rate(spec.LinkRateGbps) * units.Gbps
	build := func(eng *sim.Engine) *topo.Network {
		switch spec.Topology {
		case Pair:
			return topo.Direct(eng, rate, units.Microsecond)
		case Clos:
			c := topo.DefaultClos()
			c.Switch = exp.SwitchConfigFor(sch)
			c.Switch.LossRate = spec.LossRate
			c.HostRate, c.LinkRate = rate, rate
			if spec.Hosts%16 != 0 || spec.Hosts == 0 {
				panic("dcpsim: Clos Hosts must be a positive multiple of 16")
			}
			c.Leaves = spec.Hosts / 16
			c.Spines = c.Leaves
			if spec.LongHaulKm > 0 {
				c.SpineDelay = units.Time(spec.LongHaulKm) * 5 * units.Microsecond
			}
			return topo.Clos(eng, c)
		case Dumbbell:
			c := topo.DefaultDumbbell()
			c.Switch = exp.SwitchConfigFor(sch)
			c.Switch.LossRate = spec.LossRate
			c.HostRate = rate
			c.HostsPerSwitch = spec.Hosts / 2
			if c.HostsPerSwitch < 1 {
				c.HostsPerSwitch = 1
			}
			c.CrossLinks = c.HostsPerSwitch
			if spec.LongHaulKm > 0 {
				for i := 0; i < c.CrossLinks; i++ {
					c.CrossDelays = append(c.CrossDelays, units.Time(spec.LongHaulKm)*5*units.Microsecond)
				}
			}
			return topo.Dumbbell(eng, c)
		default:
			panic(fmt.Sprintf("dcpsim: unknown topology %q", spec.Topology))
		}
	}
	return &Cluster{spec: spec, sim: exp.NewSim(spec.Seed, sch, build)}
}

// Hosts returns the number of hosts.
func (c *Cluster) Hosts() int { return len(c.sim.Net.Hosts) }

// Send schedules a transfer of size bytes from host src to host dst,
// starting at the given offset into simulated time (0 = immediately).
func (c *Cluster) Send(src, dst int, size int64) *FlowHandle {
	return c.SendAt(src, dst, size, 0)
}

// SendAt schedules a transfer starting at time `at` (simulated
// nanoseconds).
func (c *Cluster) SendAt(src, dst int, size int64, at int64) *FlowHandle {
	c.nextID++
	f := &workload.Flow{
		ID:    c.nextID,
		Src:   packet.NodeID(src),
		Dst:   packet.NodeID(dst),
		Size:  size,
		Start: c.sim.Eng.Now() + units.Time(at)*units.Nanosecond,
	}
	c.sim.ScheduleFlows([]*workload.Flow{f})
	return &FlowHandle{c: c, id: f.ID}
}

// Run executes the simulation until all scheduled transfers complete (or
// nothing remains to simulate). It returns the number of unfinished flows
// (0 on success).
func (c *Cluster) Run() int { return c.sim.Run(0) }

// RunFor executes at most d simulated nanoseconds.
func (c *Cluster) RunFor(ns int64) int {
	return c.sim.Run(c.sim.Eng.Now() + units.Time(ns)*units.Nanosecond)
}

// NowNanos returns the simulated clock in nanoseconds.
func (c *Cluster) NowNanos() float64 { return c.sim.Eng.Now().Nanos() }

// EngineStats reports the discrete-event engine's own counters for the run
// so far. All four are deterministic for a given seed — the benchmark
// records use Events as the workload signature that must not drift between
// comparable runs.
type EngineStats struct {
	// Events counts dispatched events.
	Events uint64
	// CancelledDrops counts cancelled events discarded from the queue head
	// (scheduling churn the heap paid for without doing work).
	CancelledDrops uint64
	// MaxHeapDepth is the event-queue high-water mark.
	MaxHeapDepth int
	// MaxLive is the high-water mark of pending not-cancelled events.
	MaxLive int
}

// EngineStats returns the engine's dispatch counters for the run so far.
func (c *Cluster) EngineStats() EngineStats {
	return EngineStats{
		Events:         c.sim.Eng.Executed,
		CancelledDrops: c.sim.Eng.CancelledDrops,
		MaxHeapDepth:   c.sim.Eng.MaxHeapDepth,
		MaxLive:        c.sim.Eng.MaxLive,
	}
}

// FabricStats summarizes switch-side behaviour.
type FabricStats struct {
	TrimmedPackets int64
	DroppedData    int64
	DroppedHO      int64
	HOPackets      int64
	ECNMarked      int64
	PFCPauses      int64
	MaxBufferBytes int
	// BlackoutDrops counts packets lost inside blacked-out switches,
	// LinkDownDrops packets flushed from egress queues when a link died
	// (both zero unless a FaultPlan was injected).
	BlackoutDrops int64
	LinkDownDrops int64
}

// Fabric returns aggregate switch counters.
func (c *Cluster) Fabric() FabricStats {
	sc := c.sim.Net.Counters()
	return FabricStats{
		TrimmedPackets: sc.TrimmedPkts,
		DroppedData:    sc.DroppedData,
		DroppedHO:      sc.DroppedHO,
		HOPackets:      sc.HOEnqueued,
		ECNMarked:      sc.ECNMarked,
		PFCPauses:      sc.PauseOn,
		MaxBufferBytes: sc.MaxBufUsed,
		BlackoutDrops:  sc.BlackoutDrops,
		LinkDownDrops:  sc.LinkDownDrops,
	}
}

// --- fault injection ---

// LinkNames lists the injectable link names of the cluster's topology:
// "host<i>" for host attachments, "cross<i>" for dumbbell cross links,
// "leaf<l>-spine<s>" for CLOS fabric links, "pair" for a back-to-back pair.
func (c *Cluster) LinkNames() []string { return c.sim.Net.LinkNames() }

// FaultPlan is a seeded, deterministic schedule of fault events. Build one
// with NewFaultPlan, chain builder calls (times in simulated nanoseconds),
// then apply it with Cluster.Inject before Run.
type FaultPlan struct{ p *faults.Plan }

// NewFaultPlan returns an empty plan; all stochastic choices (burst
// placement) derive from seed.
func NewFaultPlan(seed int64) *FaultPlan { return &FaultPlan{p: faults.NewPlan(seed)} }

func ns(x int64) units.Time { return units.Time(x) * units.Nanosecond }

// LinkDown takes the named link down at atNs and restores it after durNs.
func (fp *FaultPlan) LinkDown(link string, atNs, durNs int64) *FaultPlan {
	fp.p.LinkDownFor(link, ns(atNs), ns(durNs))
	return fp
}

// LinkFlap schedules count down/up cycles: each periodNs the link spends
// duty×period down.
func (fp *FaultPlan) LinkFlap(link string, startNs, periodNs int64, duty float64, count int) *FaultPlan {
	fp.p.LinkFlap(link, ns(startNs), ns(periodNs), duty, count)
	return fp
}

// LossRamp ramps the link's silent (BER-style) loss probability from 0 up
// to peak and back down over durNs.
func (fp *FaultPlan) LossRamp(link string, startNs, durNs int64, peak float64) *FaultPlan {
	fp.p.LossRamp(link, ns(startNs), ns(durNs), peak, 8)
	return fp
}

// LossBursts schedules n correlated drop bursts of minPkts..maxPkts packets
// at plan-seeded random times within [startNs, startNs+durNs).
func (fp *FaultPlan) LossBursts(link string, startNs, durNs int64, n, minPkts, maxPkts int) *FaultPlan {
	fp.p.LossBursts(link, ns(startNs), ns(durNs), n, minPkts, maxPkts)
	return fp
}

// PauseStorm forces PFC pause on the ports feeding the link for durNs.
func (fp *FaultPlan) PauseStorm(link string, startNs, durNs int64) *FaultPlan {
	fp.p.PauseStorm(link, ns(startNs), ns(durNs), 0, 1)
	return fp
}

// SwitchBlackout crashes switch sw at atNs (buffers flushed, all traffic
// through it lost) and reboots it after durNs.
func (fp *FaultPlan) SwitchBlackout(sw int, atNs, durNs int64) *FaultPlan {
	fp.p.Blackout(sw, ns(atNs), ns(durNs))
	return fp
}

// Inject validates the plan against the cluster's topology and schedules
// its events. Call before Run (events must lie in the simulated future).
func (c *Cluster) Inject(fp *FaultPlan) error {
	_, err := c.sim.Net.Inject(fp.p)
	return err
}

// Done reports whether the transfer completed.
func (h *FlowHandle) Done() bool {
	rec := h.c.sim.Col.Flow(h.id)
	return rec != nil && rec.Done
}

// FCTMicros returns the flow completion time in microseconds (0 if not
// done).
func (h *FlowHandle) FCTMicros() float64 {
	rec := h.c.sim.Col.Flow(h.id)
	if rec == nil || !rec.Done {
		return 0
	}
	return rec.FCT().Micros()
}

// Goodput returns achieved goodput in Gbps (0 if not done).
func (h *FlowHandle) Goodput() float64 {
	rec := h.c.sim.Col.Flow(h.id)
	if rec == nil || !rec.Done {
		return 0
	}
	return stats.Goodput(rec.Size, rec.FCT())
}

// Retransmissions returns the number of retransmitted packets.
func (h *FlowHandle) Retransmissions() int64 {
	rec := h.c.sim.Col.Flow(h.id)
	if rec == nil {
		return 0
	}
	return rec.RetransPkts
}

// Timeouts returns the number of RTO events the flow suffered.
func (h *FlowHandle) Timeouts() int64 {
	rec := h.c.sim.Col.Flow(h.id)
	if rec == nil {
		return 0
	}
	return rec.Timeouts
}

// Experiment names one of the paper's reproducible tables/figures.
type Experiment struct {
	ID    string
	Desc  string
	Heavy bool
}

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment {
	var out []Experiment
	for _, e := range exp.All() {
		out = append(out, Experiment{ID: e.ID, Desc: e.Desc, Heavy: e.Heavy})
	}
	return out
}

// RunExperiment reproduces one table/figure and returns its rendered
// tables. Scale values below 1 shrink workloads proportionally (0 picks a
// default of 0.25).
func RunExperiment(id string, seed int64, scale float64) ([]string, error) {
	e := exp.ByID(id)
	if e == nil {
		return nil, fmt.Errorf("dcpsim: unknown experiment %q", id)
	}
	if scale <= 0 {
		scale = 0.25
	}
	var out []string
	for _, t := range e.Run(exp.Config{Seed: seed, Scale: scale}) {
		out = append(out, t.String())
	}
	return out, nil
}

// CollectiveResult reports one collective operation.
type CollectiveResult struct {
	JCTMillis float64
	Flows     int
}

// RunAllReduce executes a Ring-AllReduce of totalBytes across the given
// member hosts and returns its job completion time. It runs the simulation
// to completion.
func (c *Cluster) RunAllReduce(members []int, totalBytes int64) CollectiveResult {
	return c.runCollective("AllReduce", members, totalBytes)
}

// RunAllToAll executes an AllToAll of totalBytes across the given member
// hosts and returns its job completion time.
func (c *Cluster) RunAllToAll(members []int, totalBytes int64) CollectiveResult {
	return c.runCollective("AllToAll", members, totalBytes)
}

func (c *Cluster) runCollective(kind string, members []int, totalBytes int64) CollectiveResult {
	ids := make([]packet.NodeID, len(members))
	for i, m := range members {
		ids[i] = packet.NodeID(m)
	}
	var cf *workload.Coflow
	base := c.nextID + 1
	if kind == "AllReduce" {
		cf = workload.RingAllReduce(ids, totalBytes, 0, base)
	} else {
		cf = workload.AllToAll(ids, totalBytes, 0, base)
	}
	c.nextID += uint64(cf.NumFlows())
	start := c.sim.Eng.Now()
	var jct units.Time
	c.sim.RunCoflow(cf, start, func(at units.Time) { jct = at - start })
	c.sim.Run(0)
	return CollectiveResult{
		JCTMillis: jct.Millis(),
		Flows:     cf.NumFlows(),
	}
}

// Capture attaches a fabric-wide packet capture (a span port on every NIC
// and switch egress) and streams a standard pcap file to w. Call before
// Run; open the result in Wireshark to inspect DCP headers, trimmed
// 57-byte HO packets and eMSN-bearing ACKs.
func (c *Cluster) Capture(w io.Writer) error {
	pw, err := pcap.NewWriter(w)
	if err != nil {
		return err
	}
	c.sim.Net.TapAll(func(p *packet.Packet) {
		pw.Record(p, c.sim.Eng.Now())
	})
	return nil
}

// --- observability ---

// ObserveSpec configures the observability layer for a cluster run.
type ObserveSpec struct {
	// MetricsIntervalUs is the probe cadence in simulated microseconds
	// (0 picks the 10 µs default).
	MetricsIntervalUs float64
	// MaxEvents bounds the in-memory trace buffer (0 picks the ~1M default).
	// Overflow is counted (see Observation.DroppedEvents), never silent.
	MaxEvents int
	// JSONL, when non-nil, streams every trace event as one JSON line while
	// the simulation runs; the stream is not bounded by MaxEvents.
	JSONL io.Writer
	// WallNanos, when set, supplies monotonic wall-clock nanoseconds for the
	// engine.wall_ms_per_sim_s self-profiling series. The simulator never
	// reads the host clock itself; callers inject it deliberately.
	WallNanos func() int64
	// Check attaches the flight-recorder invariant checker to the trace
	// stream: per-PSN causal recovery chains, online invariant checking
	// (exactly-once placement, eMSN monotonicity, RetransQ fetch
	// provenance, retry-epoch consistency), and the autopsy report. Like
	// every sink it observes only; a checked run stays bit-identical.
	Check bool
	// StrictHO, with Check, promotes control-queue HO drops from a counted
	// warning to an invariant violation.
	StrictHO bool
}

// Observation is a cluster's attached observability sinks: the packet-
// lifecycle trace and the sampled time-series metrics. Sinks only record —
// a run with an Observation attached produces bit-identical flow results
// (FCTs, goodput, retransmissions) to the same seed without one.
type Observation struct {
	tr *obs.Tracer
	m  *obs.Metrics
	ck *flight.Checker
}

// Observe attaches tracing and metrics to the cluster. Call after
// NewCluster and before Run so the series cover the whole simulation.
func (c *Cluster) Observe(spec ObserveSpec) *Observation {
	tr := obs.NewTracer()
	if spec.MaxEvents > 0 {
		tr.SetLimit(spec.MaxEvents)
	}
	if spec.JSONL != nil {
		tr.StreamJSONL(spec.JSONL)
	}
	interval := obs.DefaultMetricsInterval
	if spec.MetricsIntervalUs > 0 {
		interval = units.Scale(units.Microsecond, spec.MetricsIntervalUs)
	}
	m := obs.NewMetrics(c.sim.Eng, interval)
	if spec.WallNanos != nil {
		m.WallNanos = spec.WallNanos
	}
	var ck *flight.Checker
	if spec.Check {
		ck = flight.New(flight.Config{StrictHO: spec.StrictHO})
		tr.Tee(ck)
	}
	c.sim.Attach(tr, m)
	return &Observation{tr: tr, m: m, ck: ck}
}

// Checked reports whether the flight-recorder checker is attached.
func (o *Observation) Checked() bool { return o.ck != nil }

// Violations returns the invariant-violation count (0 when no checker is
// attached).
func (o *Observation) Violations() int64 {
	if o.ck == nil {
		return 0
	}
	return o.ck.Violations()
}

// errNoChecker reports an autopsy request without ObserveSpec.Check.
var errNoChecker = fmt.Errorf("dcpsim: autopsy requires ObserveSpec.Check")

// WriteAutopsyText writes the flight recorder's human-readable autopsy:
// per-flow recovery waterfalls, recovery-stage latency percentiles, and any
// invariant violations with their causal chains. Call after Run.
func (o *Observation) WriteAutopsyText(w io.Writer) error {
	if o.ck == nil {
		return errNoChecker
	}
	return o.ck.Finish().WriteText(w)
}

// WriteAutopsyJSON writes the autopsy as one byte-stable JSON object.
func (o *Observation) WriteAutopsyJSON(w io.Writer) error {
	if o.ck == nil {
		return errNoChecker
	}
	return o.ck.Finish().WriteJSON(w)
}

// WriteChromeTrace writes the buffered events plus metrics counter tracks
// in Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func (o *Observation) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, o.tr.Events(), o.m)
}

// WriteJSONL writes the buffered events as JSON lines.
func (o *Observation) WriteJSONL(w io.Writer) error { return o.tr.WriteJSONL(w) }

// WriteMetricsCSV writes the sampled series as CSV (time_us plus one column
// per series).
func (o *Observation) WriteMetricsCSV(w io.Writer) error { return o.m.WriteCSV(w) }

// WriteMetricsJSON writes the sampled series as one JSON object.
func (o *Observation) WriteMetricsJSON(w io.Writer) error { return o.m.WriteJSON(w) }

// Events returns the number of buffered trace events.
func (o *Observation) Events() int { return o.tr.Len() }

// DroppedEvents returns how many events overflowed the in-memory buffer.
func (o *Observation) DroppedEvents() uint64 { return o.tr.Dropped() }

// MetricsSamples returns the number of probe ticks taken.
func (o *Observation) MetricsSamples() int { return o.m.Samples() }

// CountsByType tallies buffered events per event-type name.
func (o *Observation) CountsByType() map[string]int64 {
	out := make(map[string]int64)
	for _, tc := range obs.CountByType(o.tr.Events()) {
		out[tc.Type.String()] = tc.N
	}
	return out
}

// TrimChains counts completed trim → HO-bounce/return → retransmit
// lifecycle chains in the trace: direct evidence of DCP's HO-based loss
// recovery working end to end.
func (o *Observation) TrimChains() int { return obs.RetransChains(o.tr.Events()) }

// SeriesValues returns the sampled values of a named metrics series (nil if
// the series does not exist). NaN marks ticks before the series existed.
func (o *Observation) SeriesValues(name string) []float64 {
	s := o.m.Lookup(name)
	if s == nil {
		return nil
	}
	return s.Values()
}

// SeriesNames returns the registered metrics series names in registration
// order (the column order of WriteMetricsCSV).
func (o *Observation) SeriesNames() []string {
	series := o.m.Series()
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
	}
	return names
}

// WebSearchSpec configures a WebSearch workload run on the 256-host CLOS
// (the Fig. 13 setting).
type WebSearchSpec struct {
	Transport Transport
	Flows     int
	Load      float64
	Seed      int64
}

// WebSearchResult summarizes one WebSearch run.
type WebSearchResult struct {
	P50Slowdown, P95Slowdown float64
	Retransmissions          int64
	Timeouts                 int64
	Unfinished               int
}

// RunWebSearch executes a WebSearch workload over the full CLOS with the
// given transport and returns aggregate FCT slowdowns.
func RunWebSearch(spec WebSearchSpec) WebSearchResult {
	sch, err := spec.Transport.scheme()
	if err != nil {
		panic(err)
	}
	if spec.Flows == 0 {
		spec.Flows = 150
	}
	if spec.Load == 0 {
		spec.Load = 0.3
	}
	s := exp.RunWebSearch(exp.Config{Seed: spec.Seed, Scale: 1}, sch, spec.Load, spec.Flows)
	var res WebSearchResult
	var slows []float64
	for _, f := range s.Col.FinishedFlows("bg") {
		slows = append(slows, f.Slowdown())
		res.Retransmissions += f.RetransPkts
		res.Timeouts += f.Timeouts
	}
	res.P50Slowdown = stats.Percentile(slows, 50)
	res.P95Slowdown = stats.Percentile(slows, 95)
	res.Unfinished = s.Col.CountUnfinished()
	return res
}
