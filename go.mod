module dcpsim

go 1.22
