// AllReduce: a 16-member Ring-AllReduce on the 256-host CLOS, the workload
// the paper's Fig. 14 evaluates. Packet-level adaptive routing plus DCP's
// order-tolerant reception keeps the synchronized collective off the slow
// path; IRN's spurious retransmissions and PFC's coarse backpressure
// lengthen the tail that gates every step.
package main

import (
	"fmt"

	"dcpsim"
)

func main() {
	const totalMB = 32
	members := make([]int, 16)
	for i := range members {
		members[i] = i * 16 // one member per rack
	}
	fmt.Printf("Ring-AllReduce of %d MB across 16 racks (2x15 synchronized steps):\n", totalMB)
	for _, tr := range []dcpsim.Transport{dcpsim.DCP, dcpsim.IRN, dcpsim.PFC} {
		c := dcpsim.NewCluster(dcpsim.ClusterSpec{
			Topology:  dcpsim.Clos,
			Hosts:     256,
			Transport: tr,
		})
		res := c.RunAllReduce(members, totalMB<<20)
		fmt.Printf("  %-6s JCT = %8.3f ms  (%d flows)\n", tr, res.JCTMillis, res.Flows)
	}

	fmt.Printf("\nAllToAll of %d MB across the same group:\n", totalMB)
	for _, tr := range []dcpsim.Transport{dcpsim.DCP, dcpsim.IRN, dcpsim.PFC} {
		c := dcpsim.NewCluster(dcpsim.ClusterSpec{
			Topology:  dcpsim.Clos,
			Hosts:     256,
			Transport: tr,
		})
		res := c.RunAllToAll(members, totalMB<<20)
		fmt.Printf("  %-6s JCT = %8.3f ms  (%d flows)\n", tr, res.JCTMillis, res.Flows)
	}
}
