// Incast: a 15-to-1 burst through the dumbbell testbed on a lossy fabric.
// Under GBN the congested egress drops packets and Go-Back-N struggles;
// under DCP the switch trims packets to 57-byte headers, the receiver
// bounces them, and every loss is repaired by a precise, RTO-free
// retransmission. Without congestion control the HO-triggered
// retransmissions themselves aggravate the hotspot (the paper's §6.3
// deep-dive); DCP+CC (DCQCN) regulates them and wins.
package main

import (
	"fmt"

	"dcpsim"
)

func main() {
	const (
		senders  = 15
		flowSize = 4 << 20 // 4 MB per sender
	)
	for _, tr := range []dcpsim.Transport{dcpsim.GBN, dcpsim.DCP, dcpsim.DCPWithCC} {
		c := dcpsim.NewCluster(dcpsim.ClusterSpec{
			Topology:  dcpsim.Dumbbell,
			Hosts:     16,
			Transport: tr,
		})
		victim := c.Hosts() - 1 // a host on the far switch
		var handles []*dcpsim.FlowHandle
		for s := 0; s < senders; s++ {
			handles = append(handles, c.Send(s, victim, flowSize))
		}
		if c.Run() != 0 {
			panic("incast did not complete")
		}
		var worst float64
		var retrans, timeouts int64
		for _, h := range handles {
			if f := h.FCTMicros(); f > worst {
				worst = f
			}
			retrans += h.Retransmissions()
			timeouts += h.Timeouts()
		}
		fs := c.Fabric()
		fmt.Printf("%-8s %d-to-1 incast of %d MB flows:\n", tr, senders, flowSize>>20)
		fmt.Printf("  last flow done at %.0f us; retransmissions=%d timeouts=%d\n",
			worst, retrans, timeouts)
		fmt.Printf("  fabric: trimmed=%d HO=%d (lost %d) dropped_data=%d max_buffer=%.1f KB\n\n",
			fs.TrimmedPackets, fs.HOPackets, fs.DroppedHO, fs.DroppedData,
			float64(fs.MaxBufferBytes)/1000)
	}
}
