// Capture: record a DCP transfer under forced loss as a Wireshark-readable
// pcap file. Open trimmed.pcap and filter on `ip.dsfield & 3 == 3` to see
// the 57-byte header-only packets the switch produced, or follow a PSN
// through trim → bounce → retransmission.
package main

import (
	"fmt"
	"os"

	"dcpsim"
)

func main() {
	const path = "trimmed.pcap"
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()

	c := dcpsim.NewCluster(dcpsim.ClusterSpec{
		Topology:  dcpsim.Dumbbell,
		Hosts:     2,
		Transport: dcpsim.DCP,
		LossRate:  0.02, // 2% of data packets are trimmed in the fabric
	})
	if err := c.Capture(f); err != nil {
		panic(err)
	}
	h := c.Send(0, 1, 8<<20)
	if c.Run() != 0 {
		panic("transfer did not complete")
	}
	st, _ := f.Stat()
	fs := c.Fabric()
	fmt.Printf("transferred 8 MB at %.1f Gbps with %d trims, %d HO packets, %d retransmissions\n",
		h.Goodput(), fs.TrimmedPackets, fs.HOPackets, h.Retransmissions())
	fmt.Printf("wrote %s (%.1f MB) — every port's traffic, real RoCEv2+DCP headers\n",
		path, float64(st.Size())/1e6)
	fmt.Println(`try: tshark -r trimmed.pcap -Y "ip.dsfield.dscp == 0 && data.len == 0" | head`)
}
