// Quickstart: two hosts back-to-back, one RDMA transfer per transport,
// comparing offloaded transports against software TCP — the minimal tour
// of the public API (and a miniature Fig. 8).
package main

import (
	"fmt"

	"dcpsim"
)

func main() {
	fmt.Println("64 MB transfer between two directly connected 100 Gbps hosts:")
	fmt.Printf("%-10s %12s %14s\n", "transport", "goodput", "64B latency")
	for _, tr := range []dcpsim.Transport{dcpsim.DCP, dcpsim.GBN, dcpsim.TCP} {
		c := dcpsim.NewCluster(dcpsim.ClusterSpec{Topology: dcpsim.Pair, Transport: tr})
		h := c.Send(0, 1, 64<<20)
		if c.Run() != 0 {
			panic("transfer did not complete")
		}

		lat := dcpsim.NewCluster(dcpsim.ClusterSpec{Topology: dcpsim.Pair, Transport: tr})
		probe := lat.Send(0, 1, 64)
		lat.Run()

		fmt.Printf("%-10s %9.1f Gbps %11.1f us\n", tr, h.Goodput(), probe.FCTMicros())
	}
	fmt.Println("\nDCP and GBN are hardware-offloaded (line-rate, microsecond latency);")
	fmt.Println("the TCP endpoint pays the modeled host-stack cost the paper's Fig. 8 shows.")
}
