// Cross-DC: transfers over long inter-switch spans. PFC needs switch
// headroom proportional to distance × bandwidth (Table 1: commodity ASICs
// top out at a few km), so once the long link is contended and PAUSE
// triggers, in-flight data overruns the buffer and the "lossless" fabric
// drops — collapsing Go-Back-N. DCP only needs the 57-byte control plane
// to be lossless, so ordinary 32 MB buffers carry it to 1000 km.
package main

import (
	"fmt"

	"dcpsim"
)

func main() {
	const size = 128 << 20
	fmt.Println("Single flow over a 10 km (50 us) span — the paper's long-haul validation:")
	for _, tr := range []dcpsim.Transport{dcpsim.DCP, dcpsim.PFC} {
		c := dcpsim.NewCluster(dcpsim.ClusterSpec{
			Topology: dcpsim.Dumbbell, Hosts: 2, Transport: tr, LongHaulKm: 10,
		})
		h := c.Send(0, 1, size)
		c.Run()
		fmt.Printf("  %-4s goodput=%6.1f Gbps\n", tr, h.Goodput())
	}

	fmt.Println("\nContended 1000 km span (4 senders converging on 1 receiver, 32 MB buffers):")
	fmt.Println("PFC must absorb a full delay-bandwidth product of in-flight data after PAUSE;")
	fmt.Println("at 1000 km that is ~62 MB per link, far beyond the buffer (Table 1).")
	for _, tr := range []dcpsim.Transport{dcpsim.DCPWithCC, dcpsim.PFC} {
		c := dcpsim.NewCluster(dcpsim.ClusterSpec{
			Topology: dcpsim.Dumbbell, Hosts: 8, Transport: tr, LongHaulKm: 1000,
		})
		// Hosts 0-3 sit in DC A; host 4 in DC B receives all four flows.
		var hs []*dcpsim.FlowHandle
		for s := 0; s < 4; s++ {
			hs = append(hs, c.Send(s, 4, size/4))
		}
		left := c.Run()
		var worstMs float64
		for _, h := range hs {
			if f := h.FCTMicros() / 1000; f > worstMs {
				worstMs = f
			}
		}
		fs := c.Fabric()
		fmt.Printf("  %-6s last_flow=%8.1f ms  unfinished=%d  pauses=%d  dropped_in_'lossless'_fabric=%d  trims=%d\n",
			tr, worstMs, left, fs.PFCPauses, fs.DroppedData, fs.TrimmedPackets)
	}
	fmt.Println("\nThe PFC fabric breaks its lossless contract at this distance (drops > 0):")
	fmt.Println("production RoCE relies on that contract, so cross-DC PFC needs GB-scale")
	fmt.Println("buffers (Fig. 15 grants it 6 GB). DCP only keeps 57-byte headers lossless,")
	fmt.Println("so commodity 32 MB buffers suffice.")
}
