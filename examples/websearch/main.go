// WebSearch: a miniature Fig. 13 — the WebSearch workload on the 256-host
// CLOS, comparing tail FCT slowdown across the paper's scheme lineup.
// Run with -flows/-load to scale.
package main

import (
	"flag"
	"fmt"

	"dcpsim"
)

func main() {
	flows := flag.Int("flows", 150, "number of background flows")
	load := flag.Float64("load", 0.3, "offered load fraction")
	flag.Parse()

	fmt.Printf("WebSearch load %.1f, %d flows, 256-host CLOS:\n", *load, *flows)
	fmt.Printf("%-8s %8s %8s %10s %10s\n", "scheme", "P50", "P95", "retrans", "timeouts")
	for _, tr := range []dcpsim.Transport{dcpsim.PFC, dcpsim.IRN, dcpsim.MPRDMA, dcpsim.DCP} {
		p50, p95, retrans, timeouts := run(tr, *flows, *load)
		fmt.Printf("%-8s %8.2f %8.2f %10d %10d\n", tr, p50, p95, retrans, timeouts)
	}
	fmt.Println("\nSlowdown = FCT / unloaded FCT. DCP pairs packet-level adaptive routing")
	fmt.Println("with HO-based loss recovery, so its tail holds without retransmission storms.")
}

func run(tr dcpsim.Transport, flows int, load float64) (p50, p95 float64, retrans, timeouts int64) {
	res := dcpsim.RunWebSearch(dcpsim.WebSearchSpec{
		Transport: tr, Flows: flows, Load: load, Seed: 42,
	})
	return res.P50Slowdown, res.P95Slowdown, res.Retransmissions, res.Timeouts
}
