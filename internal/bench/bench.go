// Package bench defines the versioned benchmark-record schema, the
// append-only BENCH history, and the noise-aware regression comparator
// behind `dcpbench -bench-*` and the CI regression fence.
//
// A Record separates two kinds of fields. The deterministic half — event
// counts, simulated time, violations — depends only on the seed and must
// be identical on every host; the comparator treats any drift there as a
// workload change, not a perf delta. The host half — wall time, events/sec,
// heap — varies by machine, so every record carries a host fingerprint and
// records are only ever compared against baselines from the same
// fingerprint. Wall-clock timestamps are injected by callers (this package
// never reads the host clock; the detcheck contract applies module-wide).
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// SchemaVersion identifies the record layout. Version 1 was the pair of
// ad-hoc benchSnapshot shapes cmd/dcpbench wrote before the history
// existed; version 2 is this unified schema. The comparator refuses
// cross-version comparisons.
const SchemaVersion = 2

// Host is the machine fingerprint attached to every record. Two records
// are comparable only when their fingerprints are equal — an events/sec
// delta between different machines is a hardware review, not a perf
// regression.
type Host struct {
	Cores     int    `json:"cores"`
	MaxProcs  int    `json:"maxprocs"`
	GoVersion string `json:"go_version"`
	CPU       string `json:"cpu,omitempty"`
}

// Equal reports whether two fingerprints identify the same execution
// environment.
func (h Host) Equal(o Host) bool { return h == o }

// LocalHost fingerprints the current process: core count, GOMAXPROCS, Go
// version, and (best-effort, Linux) the CPU model from /proc/cpuinfo.
func LocalHost() Host {
	h := Host{
		Cores:     runtime.NumCPU(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion: runtime.Version(),
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				h.CPU = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	return h
}

// Record is one benchmark measurement: a named workload, the machine it
// ran on, the deterministic workload signature, and the median host-side
// numbers over Reps repetitions.
type Record struct {
	Schema int    `json:"schema"`
	Name   string `json:"name"`
	Kind   string `json:"kind"` // "scenario" or "registry"
	// UnixSec is the caller-stamped record time; informational only (the
	// comparator ignores it, keeping records themselves deterministic to
	// construct).
	UnixSec int64 `json:"unix_sec,omitempty"`
	Host    Host  `json:"host"`

	// Workload signature: two records compare only when these match.
	Seed    int64   `json:"seed"`
	Scale   float64 `json:"scale,omitempty"`
	Workers int     `json:"workers"`
	Reps    int     `json:"reps"`
	// Handicap is the artificial wall-time multiplier applied to this
	// record's host half (`-bench-handicap`), the CI fence's self-test
	// lever: a handicapped record must be classified as a regression
	// against an honest same-host baseline. Handicapped records are never
	// appended to the history. 0 or 1 means no handicap.
	Handicap float64 `json:"handicap,omitempty"`

	// Deterministic half — identical for a given seed on every host.
	Events      uint64  `json:"events"` // engine-dispatched events
	SimMillis   float64 `json:"sim_millis"`
	Violations  int64   `json:"violations"`
	Experiments int     `json:"experiments,omitempty"`
	OutputBytes int     `json:"output_bytes,omitempty"`
	Identical   bool    `json:"identical,omitempty"` // registry: parallel bytes == serial bytes

	// Host half — medians over Reps runs; varies by machine.
	WallMillis float64 `json:"wall_millis"`
	// Noise is the relative spread (max−min)/median of wall time across
	// reps; the comparator widens its threshold by the baseline's and the
	// candidate's noise so a wide-spread sample cannot fake a regression.
	Noise           float64 `json:"noise"`
	EventsPerSec    float64 `json:"events_per_sec"`
	SimPerWall      float64 `json:"sim_per_wall"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Speedup         float64 `json:"speedup,omitempty"` // registry: serial wall / parallel wall
}

// Median returns the median of xs (mean of the middle pair for even
// lengths); 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Spread returns the relative spread (max−min)/median of xs; 0 when there
// are fewer than two samples or the median is zero.
func Spread(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	med := Median(xs)
	if med == 0 {
		return 0
	}
	return (max - min) / med
}

// Append appends records to the JSONL history at path (one canonical JSON
// object per line), creating the file and its directory as needed.
func Append(path string, recs ...Record) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("bench: creating history dir: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("bench: opening history: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			f.Close()
			return fmt.Errorf("bench: encoding record %q: %w", r.Name, err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			f.Close()
			return fmt.Errorf("bench: writing history: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("bench: flushing history: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench: closing history: %w", err)
	}
	return nil
}

// Load reads a JSONL history. Blank lines are skipped; a malformed line is
// an error naming its line number. Records of any schema version load (the
// comparator decides comparability).
func Load(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading history: %w", err)
	}
	var recs []Record
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("bench: %s:%d: %w", path, i+1, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// Baseline picks the most recent comparable baseline for cur from recs:
// same name, same schema version, same host fingerprint, not handicapped.
// Later records win (a history file is appended chronologically).
func Baseline(recs []Record, cur Record) (Record, bool) {
	var best Record
	found := false
	for _, r := range recs {
		if r.Name != cur.Name || r.Schema != cur.Schema {
			continue
		}
		if !r.Host.Equal(cur.Host) {
			continue
		}
		if r.Handicap != 0 && r.Handicap != 1 {
			continue
		}
		best, found = r, true
	}
	return best, found
}
