package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseRecord() Record {
	return Record{
		Schema: SchemaVersion, Name: "incast", Kind: "scenario",
		Host: Host{Cores: 8, MaxProcs: 8, GoVersion: "go1.24", CPU: "testcpu"},
		Seed: 42, Workers: 1, Reps: 3,
		Events: 1_000_000, SimMillis: 12.5, WallMillis: 100, Noise: 0.02,
		EventsPerSec: 10_000_000, SimPerWall: 0.125,
		PeakHeapBytes: 64 << 20, TotalAllocBytes: 512 << 20,
	}
}

func TestCompareWithinNoise(t *testing.T) {
	base := baseRecord()
	cur := base
	cur.EventsPerSec = base.EventsPerSec * 0.95 // −5%, inside 10%+noise window
	v := Compare(base, cur, DefaultThresholds())
	if v.Class != WithinNoise {
		t.Fatalf("class = %v, want within-noise: %+v", v.Class, v)
	}
	if v.Window <= 0.10 {
		t.Fatalf("window %v should include both records' noise", v.Window)
	}
}

func TestCompareRegression(t *testing.T) {
	base := baseRecord()
	cur := base
	cur.EventsPerSec = base.EventsPerSec * 0.5 // −50%
	v := Compare(base, cur, DefaultThresholds())
	if v.Class != Regression {
		t.Fatalf("class = %v, want regression: %+v", v.Class, v)
	}
	if !v.Deltas[0].Flagged {
		t.Fatalf("events/sec delta not flagged: %+v", v.Deltas)
	}
}

func TestCompareImprovement(t *testing.T) {
	base := baseRecord()
	cur := base
	cur.EventsPerSec = base.EventsPerSec * 1.5
	v := Compare(base, cur, DefaultThresholds())
	if v.Class != Improvement {
		t.Fatalf("class = %v, want improvement: %+v", v.Class, v)
	}
}

// A regression hiding inside wide spread must not fire: the window widens
// by the measured noise of both records.
func TestCompareNoiseConsumesSpread(t *testing.T) {
	base := baseRecord()
	base.Noise = 0.15
	cur := base
	cur.Noise = 0.10
	cur.EventsPerSec = base.EventsPerSec * 0.70 // −30% < 10%+15%+10% window
	v := Compare(base, cur, DefaultThresholds())
	if v.Class != WithinNoise {
		t.Fatalf("class = %v, want within-noise with window %.2f", v.Class, v.Window)
	}
	cur.EventsPerSec = base.EventsPerSec * 0.60 // −40% > 35% window
	if v := Compare(base, cur, DefaultThresholds()); v.Class != Regression {
		t.Fatalf("class = %v, want regression beyond widened window", v.Class)
	}
}

func TestComparePeakHeapRegression(t *testing.T) {
	base := baseRecord()
	cur := base
	cur.PeakHeapBytes = base.PeakHeapBytes * 2
	v := Compare(base, cur, DefaultThresholds())
	if v.Class != Regression {
		t.Fatalf("class = %v, want regression on heap growth", v.Class)
	}
	if !v.Deltas[1].Flagged {
		t.Fatalf("heap delta not flagged: %+v", v.Deltas)
	}
}

func TestCompareHostMismatch(t *testing.T) {
	base := baseRecord()
	cur := base
	cur.Host.Cores = 2
	v := Compare(base, cur, DefaultThresholds())
	if v.Class != Incomparable {
		t.Fatalf("class = %v, want incomparable across hosts", v.Class)
	}
	if len(v.Notes) == 0 || !strings.Contains(v.Notes[0], "host fingerprint") {
		t.Fatalf("missing host note: %+v", v.Notes)
	}
}

func TestCompareSchemaSkew(t *testing.T) {
	base := baseRecord()
	base.Schema = 1
	v := Compare(base, baseRecord(), DefaultThresholds())
	if v.Class != Incomparable || !strings.Contains(v.Notes[0], "schema skew") {
		t.Fatalf("want schema-skew incomparable, got %+v", v)
	}
}

func TestCompareWorkloadDrift(t *testing.T) {
	base := baseRecord()
	cur := base
	cur.Events = base.Events * 2 // deterministic count moved → workload changed
	v := Compare(base, cur, DefaultThresholds())
	if v.Class != Incomparable || !strings.Contains(v.Notes[0], "workload drift") {
		t.Fatalf("want workload-drift incomparable, got %+v", v)
	}
	cur = base
	cur.Seed = 7
	if v := Compare(base, cur, DefaultThresholds()); v.Class != Incomparable {
		t.Fatalf("seed change must be incomparable, got %v", v.Class)
	}
}

func TestFenceMissingBaseline(t *testing.T) {
	cur := baseRecord()
	vs := Fence(nil, []Record{cur}, DefaultThresholds())
	if len(vs) != 1 || vs[0].Class != Incomparable {
		t.Fatalf("want incomparable for empty history, got %+v", vs)
	}
	if HasRegression(vs) {
		t.Fatal("missing baseline must not be a regression")
	}

	// A history with only foreign-host records is as good as empty.
	foreign := baseRecord()
	foreign.Host.CPU = "othercpu"
	vs = Fence([]Record{foreign}, []Record{cur}, DefaultThresholds())
	if vs[0].Class != Incomparable {
		t.Fatalf("foreign-host baseline must be skipped, got %+v", vs[0])
	}
}

// The fence picks the latest comparable baseline and skips handicapped
// self-test records.
func TestBaselineSelection(t *testing.T) {
	old := baseRecord()
	old.EventsPerSec = 1
	newer := baseRecord()
	newer.EventsPerSec = 2
	handicapped := baseRecord()
	handicapped.Handicap = 2
	handicapped.EventsPerSec = 3
	got, ok := Baseline([]Record{old, newer, handicapped}, baseRecord())
	if !ok || got.EventsPerSec != 2 {
		t.Fatalf("Baseline = %+v ok=%v, want the latest honest record", got, ok)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "BENCH_HISTORY.jsonl")
	r1 := baseRecord()
	r2 := baseRecord()
	r2.Name = "linkflap"
	if err := Append(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, r2); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] != r1 || recs[1] != r2 {
		t.Fatalf("round trip lost data: %+v", recs)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	if err := Append(path, baseRecord()); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("want line-numbered parse error, got %v", err)
	}
}

// TestClassifyMatchesCompare pins that the exported classification
// plumbing (RelChange/Window/Classify) agrees with the full Compare path
// on fixture pairs — the bundle diff engine calls the exported helpers
// directly, and a divergence here would mean the two callers could
// classify the same pair differently.
func TestClassifyMatchesCompare(t *testing.T) {
	th := DefaultThresholds()
	for _, factor := range []float64{0.5, 0.85, 0.95, 1.0, 1.05, 1.2, 1.5} {
		base := baseRecord()
		cur := base
		cur.EventsPerSec = base.EventsPerSec * factor
		full := Compare(base, cur, th)
		window := Window(th.EventsPerSec, base.Noise, cur.Noise)
		direct := Classify(RelChange(base.EventsPerSec, cur.EventsPerSec), window)
		if full.Window != window {
			t.Errorf("factor %g: Compare window %v != Window() %v", factor, full.Window, window)
		}
		if full.Class != direct {
			t.Errorf("factor %g: Compare class %v != Classify %v", factor, full.Class, direct)
		}
	}
}

func TestClassifyBoundaries(t *testing.T) {
	// Exactly on the window edge is within noise; strictly beyond is not.
	if got := Classify(-0.10, 0.10); got != WithinNoise {
		t.Errorf("Classify(-0.10, 0.10) = %v, want within-noise", got)
	}
	if got := Classify(-0.1001, 0.10); got != Regression {
		t.Errorf("Classify(-0.1001, 0.10) = %v, want regression", got)
	}
	if got := Classify(0.1001, 0.10); got != Improvement {
		t.Errorf("Classify(0.1001, 0.10) = %v, want improvement", got)
	}
	if got := Classify(0, 0); got != WithinNoise {
		t.Errorf("Classify(0, 0) = %v, want within-noise", got)
	}
}

func TestMedianSpread(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Fatalf("Median empty = %v", got)
	}
	if got := Spread([]float64{90, 100, 110}); got != 0.2 {
		t.Fatalf("Spread = %v, want 0.2", got)
	}
	if got := Spread([]float64{100}); got != 0 {
		t.Fatalf("Spread single = %v", got)
	}
}

func TestWriteVerdicts(t *testing.T) {
	base := baseRecord()
	cur := base
	cur.EventsPerSec = base.EventsPerSec * 0.5
	var buf bytes.Buffer
	vs := []Verdict{Compare(base, cur, DefaultThresholds())}
	if err := WriteVerdicts(&buf, vs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "! events_per_sec") {
		t.Fatalf("verdict rendering missing pieces:\n%s", out)
	}
}
