package bench

import (
	"fmt"
	"io"
	"math"
)

// Thresholds are the relative-change limits the comparator applies. Each
// is a fraction: 0.10 flags a >10% drop in events/sec. The events/sec
// threshold is additionally widened by the measured noise of both records.
type Thresholds struct {
	EventsPerSec float64 // relative slowdown in events/sec that flags a regression
	PeakHeap     float64 // relative growth in peak heap that flags a regression
	TotalAlloc   float64 // relative growth in total allocations that flags a regression
}

// DefaultThresholds: 10% throughput, 30% heap, 30% allocations. Heap and
// alloc limits are looser because they are near-deterministic — a real
// growth there is a code change, not scheduler noise.
func DefaultThresholds() Thresholds {
	return Thresholds{EventsPerSec: 0.10, PeakHeap: 0.30, TotalAlloc: 0.30}
}

// Class is the comparator's verdict for one record.
type Class uint8

const (
	// Incomparable: no verdict — schema skew, host mismatch, workload
	// drift, or a baseline without wall measurements. The fence treats it
	// as a soft pass with an explanatory note.
	Incomparable Class = iota
	WithinNoise
	Improvement
	Regression
)

func (c Class) String() string {
	switch c {
	case Incomparable:
		return "incomparable"
	case WithinNoise:
		return "within-noise"
	case Improvement:
		return "improvement"
	case Regression:
		return "REGRESSION"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Delta is one metric's relative change against baseline.
type Delta struct {
	Metric  string  `json:"metric"`
	Base    float64 `json:"base"`
	Cur     float64 `json:"cur"`
	Rel     float64 `json:"rel"` // (cur−base)/base; sign convention per metric
	Flagged bool    `json:"flagged"`
}

// Verdict is the comparison result for one record.
type Verdict struct {
	Name   string   `json:"name"`
	Class  Class    `json:"-"`
	ClassS string   `json:"class"`
	Window float64  `json:"window"` // effective events/sec noise window applied
	Deltas []Delta  `json:"deltas,omitempty"`
	Notes  []string `json:"notes,omitempty"`
}

func incomparable(name string, format string, args ...any) Verdict {
	return Verdict{Name: name, Class: Incomparable, ClassS: Incomparable.String(),
		Notes: []string{fmt.Sprintf(format, args...)}}
}

func relChange(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base
}

// RelChange returns the signed relative change (cur−base)/base, 0 when
// base is 0. Exported so the bundle diff engine (internal/obs/diff)
// computes deltas with exactly the comparator's arithmetic.
func RelChange(base, cur float64) float64 { return relChange(base, cur) }

// Window returns the effective noise window for a symmetric metric: the
// configured threshold widened by the measured noise of both records. A
// fully deterministic metric (campaign bundles) passes zero noise and
// gets the bare threshold.
func Window(threshold, baseNoise, curNoise float64) float64 {
	return threshold + baseNoise + curNoise
}

// Classify places a signed relative change against a symmetric window:
// below −window is a Regression, above +window an Improvement, inside is
// WithinNoise. This is the single classification rule shared by the BENCH
// fence (events/sec, where negative means slower) and the campaign bundle
// diff (deterministic per-unit deltas, where either sign beyond the
// window is drift); a test pins that both callers agree on fixtures.
func Classify(rel, window float64) Class {
	switch {
	case rel < -window:
		return Regression
	case rel > window:
		return Improvement
	default:
		return WithinNoise
	}
}

// Compare classifies cur against base. The events/sec threshold widens by
// both records' measured noise: window = threshold + base.Noise +
// cur.Noise — a single noisy sample cannot fake (or hide behind) a
// regression larger than the combined spread plus the configured margin.
func Compare(base, cur Record, th Thresholds) Verdict {
	if base.Name != cur.Name {
		return incomparable(cur.Name, "baseline is %q, not %q", base.Name, cur.Name)
	}
	if base.Schema != cur.Schema {
		return incomparable(cur.Name, "schema skew: baseline v%d vs current v%d", base.Schema, cur.Schema)
	}
	if !base.Host.Equal(cur.Host) {
		return incomparable(cur.Name, "host fingerprint differs (baseline %d cores %s %q, current %d cores %s %q)",
			base.Host.Cores, base.Host.GoVersion, base.Host.CPU,
			cur.Host.Cores, cur.Host.GoVersion, cur.Host.CPU)
	}
	if base.Seed != cur.Seed || base.Scale != cur.Scale || base.Workers != cur.Workers {
		return incomparable(cur.Name, "workload drift: seed/scale/workers %d/%g/%d vs %d/%g/%d",
			base.Seed, base.Scale, base.Workers, cur.Seed, cur.Scale, cur.Workers)
	}
	if base.Events > 0 && math.Abs(relChange(float64(base.Events), float64(cur.Events))) > 0.01 {
		return incomparable(cur.Name, "workload drift: deterministic event count moved %d → %d (the workload changed; re-baseline)",
			base.Events, cur.Events)
	}
	if base.EventsPerSec == 0 || cur.EventsPerSec == 0 {
		return incomparable(cur.Name, "missing wall measurements (baseline %.0f ev/s, current %.0f ev/s)",
			base.EventsPerSec, cur.EventsPerSec)
	}

	v := Verdict{Name: cur.Name, Window: Window(th.EventsPerSec, base.Noise, cur.Noise)}

	eps := relChange(base.EventsPerSec, cur.EventsPerSec)
	epsDelta := Delta{Metric: "events_per_sec", Base: base.EventsPerSec, Cur: cur.EventsPerSec, Rel: eps}
	regressed, improved := false, false
	switch Classify(eps, v.Window) {
	case Regression:
		epsDelta.Flagged = true
		regressed = true
	case Improvement:
		epsDelta.Flagged = true
		improved = true
	}
	v.Deltas = append(v.Deltas, epsDelta)

	heap := relChange(float64(base.PeakHeapBytes), float64(cur.PeakHeapBytes))
	heapDelta := Delta{Metric: "peak_heap_bytes", Base: float64(base.PeakHeapBytes), Cur: float64(cur.PeakHeapBytes), Rel: heap}
	if base.PeakHeapBytes > 0 && heap > th.PeakHeap {
		heapDelta.Flagged = true
		regressed = true
	}
	v.Deltas = append(v.Deltas, heapDelta)

	alloc := relChange(float64(base.TotalAllocBytes), float64(cur.TotalAllocBytes))
	allocDelta := Delta{Metric: "total_alloc_bytes", Base: float64(base.TotalAllocBytes), Cur: float64(cur.TotalAllocBytes), Rel: alloc}
	if base.TotalAllocBytes > 0 && alloc > th.TotalAlloc {
		allocDelta.Flagged = true
		regressed = true
	}
	v.Deltas = append(v.Deltas, allocDelta)

	switch {
	case regressed:
		v.Class = Regression
	case improved:
		v.Class = Improvement
	default:
		v.Class = WithinNoise
	}
	v.ClassS = v.Class.String()
	return v
}

// Fence compares each current record against its best baseline in history.
// A record with no comparable baseline yields an Incomparable verdict (a
// fresh machine or a fresh workload is not a regression).
func Fence(history, current []Record, th Thresholds) []Verdict {
	out := make([]Verdict, 0, len(current))
	for _, cur := range current {
		base, ok := Baseline(history, cur)
		if !ok {
			out = append(out, incomparable(cur.Name, "no comparable baseline in history (name, schema v%d, host fingerprint)", cur.Schema))
			continue
		}
		out = append(out, Compare(base, cur, th))
	}
	return out
}

// HasRegression reports whether any verdict is a Regression.
func HasRegression(vs []Verdict) bool {
	for _, v := range vs {
		if v.Class == Regression {
			return true
		}
	}
	return false
}

// WriteVerdicts renders one line per verdict plus flagged deltas and notes.
func WriteVerdicts(w io.Writer, vs []Verdict) error {
	for _, v := range vs {
		if _, err := fmt.Fprintf(w, "fence %-24s %-12s window=±%.1f%%\n", v.Name, v.Class, 100*v.Window); err != nil {
			return err
		}
		for _, d := range v.Deltas {
			mark := " "
			if d.Flagged {
				mark = "!"
			}
			if _, err := fmt.Fprintf(w, "  %s %-18s %14.1f → %14.1f  (%+.1f%%)\n", mark, d.Metric, d.Base, d.Cur, 100*d.Rel); err != nil {
				return err
			}
		}
		for _, n := range v.Notes {
			if _, err := fmt.Fprintf(w, "    note: %s\n", n); err != nil {
				return err
			}
		}
	}
	return nil
}
