package cc

import (
	"testing"

	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

const dcqcnLink = 100 * units.Gbps

func newDCQCN(eng *sim.Engine) *DCQCN {
	return NewDCQCNFactory(DefaultDCQCNConfig())(eng, dcqcnLink, 10*units.Microsecond).(*DCQCN)
}

// tick fires one increase-timer period (the alpha timer shares the period;
// alpha changes do not affect rc between CNPs).
func tick(eng *sim.Engine, d *DCQCN) {
	eng.Run(eng.Now() + d.cfg.IncreaseTimer)
}

func TestDCQCNCutPreservesTargetRate(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDCQCN(eng)
	d.OnCongestion(0)
	// alpha starts at 1: the first cut is exactly half, and the target
	// remembers the pre-cut rate.
	if d.rc != dcqcnLink/2 {
		t.Fatalf("rc after first CNP = %v, want %v", d.rc, dcqcnLink/2)
	}
	if d.rt != dcqcnLink {
		t.Fatalf("rt after first CNP = %v, want pre-cut %v", d.rt, dcqcnLink)
	}
	if d.timerStage != 0 || d.byteStage != 0 || d.bytes != 0 {
		t.Fatal("CNP must reset increase stages and the byte counter")
	}
}

func TestDCQCNSecondCutScaledByAlpha(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDCQCN(eng)
	d.OnCongestion(0)
	alpha := d.alpha
	rc := d.rc
	d.OnCongestion(0)
	want := units.Rate(float64(rc) * (1 - alpha/2))
	if d.rc != want {
		t.Fatalf("rc after second CNP = %v, want %v (alpha-scaled cut)", d.rc, want)
	}
	if d.rt != rc {
		t.Fatalf("rt = %v, want previous rc %v", d.rt, rc)
	}
}

func TestDCQCNFastRecoveryHalvesTowardTarget(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDCQCN(eng)
	d.OnCongestion(0)
	rt := d.rt
	gap := rt - d.rc
	for i := 0; i < d.cfg.FastStages-1; i++ {
		tick(eng, d)
		gap /= 2
		if d.rt != rt {
			t.Fatalf("stage %d: fast recovery moved the target (rt=%v)", i+1, d.rt)
		}
		if diff := (rt - d.rc) - gap; diff < -1 || diff > 1 {
			t.Fatalf("stage %d: rc=%v, want target-gap %v", i+1, d.rc, rt-gap)
		}
	}
}

func TestDCQCNAdditiveIncreaseStage(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDCQCN(eng)
	// Two CNPs push rc and rt well below the link so the cap cannot mask
	// the increase steps.
	d.OnCongestion(0)
	d.OnCongestion(0)
	for d.timerStage < d.cfg.FastStages {
		tick(eng, d)
	}
	// Timer stage has left fast recovery while the byte stage has not:
	// each further tick is additive increase on the target.
	rt := d.rt
	tick(eng, d)
	if got := d.rt - rt; got != d.cfg.RateAI {
		t.Fatalf("AI step moved rt by %v, want RateAI %v", got, d.cfg.RateAI)
	}
	if d.rc >= d.rt {
		t.Fatalf("rc %v should still trail the target %v", d.rc, d.rt)
	}
}

func TestDCQCNHyperIncreaseStage(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDCQCN(eng)
	d.OnCongestion(0)
	d.OnCongestion(0)
	// Drive both stage counters past FastStages: timer ticks plus enough
	// sent bytes to trip the byte counter each round.
	for d.timerStage <= d.cfg.FastStages {
		tick(eng, d)
	}
	for d.byteStage <= d.cfg.FastStages {
		d.OnSent(eng.Now(), d.cfg.ByteCounter)
	}
	rt := d.rt
	tick(eng, d)
	if got := d.rt - rt; got != d.cfg.RateHAI {
		t.Fatalf("HAI step moved rt by %v, want RateHAI %v", got, d.cfg.RateHAI)
	}
}

func TestDCQCNMinRateFloor(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDCQCN(eng)
	for i := 0; i < 20; i++ {
		d.OnCongestion(0)
	}
	if d.rc != d.cfg.MinRate {
		t.Fatalf("rc = %v after repeated CNPs, want MinRate floor %v", d.rc, d.cfg.MinRate)
	}
}

func TestDCQCNTargetCappedAtLink(t *testing.T) {
	eng := sim.NewEngine(1)
	d := newDCQCN(eng)
	d.OnCongestion(0)
	for i := 0; i < 100; i++ {
		tick(eng, d)
	}
	if d.rt > dcqcnLink || d.rc > dcqcnLink {
		t.Fatalf("rates exceed link: rt=%v rc=%v", d.rt, d.rc)
	}
	if d.rc < dcqcnLink*99/100 {
		t.Fatalf("rc = %v, want recovery back to ~line rate", d.rc)
	}
}
