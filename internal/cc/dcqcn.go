package cc

import (
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// DCQCNConfig holds the reaction-point parameters of DCQCN (Zhu et al.,
// SIGCOMM'15), with the defaults used by public RDMA simulators at 100 Gbps.
type DCQCNConfig struct {
	G             float64    // alpha EWMA gain
	AlphaTimer    units.Time // alpha decay interval when no CNP arrives
	IncreaseTimer units.Time // rate-increase timer period
	ByteCounter   int        // rate-increase byte threshold
	RateAI        units.Rate // additive increase step
	RateHAI       units.Rate // hyper increase step
	FastStages    int        // stages of fast recovery before additive increase
	MinRate       units.Rate
	// CNPInterval is the notification-point minimum gap between CNPs per
	// flow; receivers use it (exported here so both ends share config).
	CNPInterval units.Time
}

// DefaultDCQCNConfig returns parameters scaled for 100 Gbps fabrics.
func DefaultDCQCNConfig() DCQCNConfig {
	return DCQCNConfig{
		G:             1.0 / 256,
		AlphaTimer:    55 * units.Microsecond,
		IncreaseTimer: 55 * units.Microsecond,
		ByteCounter:   10 * units.MB,
		RateAI:        400 * units.Mbps,
		RateHAI:       4 * units.Gbps,
		FastStages:    5,
		MinRate:       100 * units.Mbps,
		CNPInterval:   50 * units.Microsecond,
	}
}

// DCQCN is the reaction-point state machine: the current rate Rc is cut
// multiplicatively on each CNP (scaled by alpha) and recovered through fast
// recovery, additive increase and hyper increase phases driven by a timer
// and a byte counter.
type DCQCN struct {
	cfg  DCQCNConfig
	eng  *sim.Engine
	link units.Rate

	rc, rt   units.Rate
	alpha    float64
	nextSend units.Time

	bytes      int // byte counter since last stage bump
	timerStage int // increase events from the timer
	byteStage  int // increase events from the byte counter

	alphaT *sim.Timer
	incT   *sim.Timer
	closed bool

	// trace, when non-nil, observes every change to the current rate Rc
	// (cuts and recovery steps). Set via cc.SetTrace.
	trace TraceFunc
}

// NewDCQCNFactory returns a Factory producing DCQCN controllers starting at
// line rate.
func NewDCQCNFactory(cfg DCQCNConfig) Factory {
	return func(eng *sim.Engine, link units.Rate, rtt units.Time) Controller {
		d := &DCQCN{cfg: cfg, eng: eng, link: link, rc: link, rt: link, alpha: 1}
		d.alphaT = sim.NewTimer(eng, d.alphaTick)
		d.incT = sim.NewTimer(eng, d.timerTick)
		// Rate-machine ticks profile as congestion-control work, not as
		// generic timer expiries.
		d.alphaT.Comp = sim.CompCC
		d.incT.Comp = sim.CompCC
		return d
	}
}

// NewDCQCNWindowFactory composes DCQCN with a BDP window cap, the
// configuration the paper calls "DCP+CC" / "IRN+CC".
func NewDCQCNWindowFactory(cfg DCQCNConfig, windowMult float64) Factory {
	return Combine(NewDCQCNFactory(cfg), NewBDPFactory(windowMult))
}

// CanSend implements Controller: pure rate pacing.
func (d *DCQCN) CanSend(now units.Time, _, _ int) (bool, units.Time) {
	if now >= d.nextSend {
		return true, 0
	}
	return false, d.nextSend
}

// OnSent implements Controller.
func (d *DCQCN) OnSent(now units.Time, bytes int) {
	start := d.nextSend
	if now > start {
		start = now
	}
	d.nextSend = start + units.TxTime(bytes, d.rc)
	d.bytes += bytes
	if d.bytes >= d.cfg.ByteCounter {
		d.bytes = 0
		d.byteStage++
		d.increase()
	}
}

// OnAck implements Controller.
func (d *DCQCN) OnAck(units.Time, int, units.Time) {}

// OnCongestion implements Controller: the multiplicative decrease on CNP.
func (d *DCQCN) OnCongestion(now units.Time) {
	if d.closed {
		return
	}
	d.rt = d.rc
	d.rc = units.ScaleRate(d.rc, 1-d.alpha/2)
	if d.rc < d.cfg.MinRate {
		d.rc = d.cfg.MinRate
	}
	d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G
	d.bytes = 0
	d.timerStage = 0
	d.byteStage = 0
	d.alphaT.Reset(d.cfg.AlphaTimer)
	d.incT.Reset(d.cfg.IncreaseTimer)
	if d.trace != nil {
		d.trace(now, d.rc)
	}
}

func (d *DCQCN) alphaTick() {
	d.alpha *= 1 - d.cfg.G
	if !d.closed {
		d.alphaT.Reset(d.cfg.AlphaTimer)
	}
}

func (d *DCQCN) timerTick() {
	d.timerStage++
	d.increase()
	if !d.closed {
		d.incT.Reset(d.cfg.IncreaseTimer)
	}
}

// increase advances one stage of rate recovery. The stage counters follow
// the DCQCN paper: fast recovery while both counters are below FastStages,
// then additive increase, then hyper increase once both exceed it.
func (d *DCQCN) increase() {
	f := d.cfg.FastStages
	switch {
	case d.timerStage < f && d.byteStage < f:
		// Fast recovery: halve toward target.
	case d.timerStage > f && d.byteStage > f:
		d.rt += d.cfg.RateHAI
	default:
		d.rt += d.cfg.RateAI
	}
	if d.rt > d.link {
		d.rt = d.link
	}
	d.rc = (d.rc + d.rt) / 2
	if d.rc < d.cfg.MinRate {
		d.rc = d.cfg.MinRate
	}
	if d.trace != nil {
		d.trace(d.eng.Now(), d.rc)
	}
}

// Rate implements Controller.
func (d *DCQCN) Rate() units.Rate { return d.rc }

// Close implements Controller.
func (d *DCQCN) Close() {
	d.closed = true
	d.alphaT.Stop()
	d.incT.Stop()
}
