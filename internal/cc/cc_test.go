package cc

import (
	"testing"

	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

func TestWindowAdmitsUpToLimit(t *testing.T) {
	w := &Window{Limit: 10000}
	if ok, _ := w.CanSend(0, 0, 1000); !ok {
		t.Fatal("empty window must admit")
	}
	if ok, _ := w.CanSend(0, 9000, 1000); !ok {
		t.Fatal("exactly at limit must admit")
	}
	if ok, _ := w.CanSend(0, 9500, 1000); ok {
		t.Fatal("over limit must refuse")
	}
	// A stalled QP with zero inflight must always be allowed to make
	// progress, even with a pathological limit.
	w2 := &Window{Limit: 10}
	if ok, _ := w2.CanSend(0, 0, 1000); !ok {
		t.Fatal("zero inflight must always admit one packet")
	}
}

func TestBDPFactorySizesWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewBDPFactory(1)(eng, 100*units.Gbps, 10*units.Microsecond)
	w := ctl.(*Window)
	// BDP = 125 KB plus one-MTU slack.
	if w.Limit != 125000+2000 {
		t.Fatalf("window = %d", w.Limit)
	}
	ctl2 := NewBDPFactory(2)(eng, 100*units.Gbps, 10*units.Microsecond)
	if ctl2.(*Window).Limit != 250000+2000 {
		t.Fatal("multiplier not applied")
	}
}

func TestStaticRatePaces(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewLineRateFactory()(eng, 100*units.Gbps, 0)
	if ok, _ := ctl.CanSend(0, 0, 1000); !ok {
		t.Fatal("first packet immediate")
	}
	ctl.OnSent(0, 1000)
	ok, at := ctl.CanSend(0, 0, 1000)
	if ok {
		t.Fatal("must pace")
	}
	want := units.TxTime(1000, 100*units.Gbps)
	if at != want {
		t.Fatalf("eligible at %v, want %v", at, want)
	}
	if ok, _ := ctl.CanSend(want, 0, 1000); !ok {
		t.Fatal("eligible after pacing gap")
	}
	if ctl.Rate() != 100*units.Gbps {
		t.Fatal("rate")
	}
}

func TestDCQCNDecreaseOnCNP(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewDCQCNFactory(DefaultDCQCNConfig())(eng, 100*units.Gbps, 10*units.Microsecond)
	d := ctl.(*DCQCN)
	if d.Rate() != 100*units.Gbps {
		t.Fatal("starts at line rate")
	}
	d.OnCongestion(0)
	// alpha starts at 1: first cut halves the rate.
	if d.Rate() != 50*units.Gbps {
		t.Fatalf("rate after first CNP = %v", d.Rate())
	}
	r1 := d.Rate()
	d.OnCongestion(0)
	if d.Rate() >= r1 {
		t.Fatal("rate must keep decreasing under CNPs")
	}
	if d.Rate() < DefaultDCQCNConfig().MinRate {
		t.Fatal("rate must respect the floor")
	}
}

func TestDCQCNRecoversTowardLineRate(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultDCQCNConfig()
	ctl := NewDCQCNFactory(cfg)(eng, 100*units.Gbps, 10*units.Microsecond)
	d := ctl.(*DCQCN)
	d.OnCongestion(eng.Now())
	low := d.Rate()
	// Let the increase timers run for a while with no further congestion.
	eng.Run(5 * units.Millisecond)
	if d.Rate() <= low {
		t.Fatalf("rate did not recover: %v -> %v", low, d.Rate())
	}
	if d.Rate() > 100*units.Gbps {
		t.Fatal("rate must not exceed line rate")
	}
	d.Close()
	if eng.Run(0); d.Rate() > 100*units.Gbps {
		t.Fatal("close must stop growth")
	}
}

func TestDCQCNAlphaDecays(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultDCQCNConfig()
	ctl := NewDCQCNFactory(cfg)(eng, 100*units.Gbps, 10*units.Microsecond)
	d := ctl.(*DCQCN)
	d.OnCongestion(eng.Now())
	a0 := d.alpha
	eng.Run(eng.Now() + 10*cfg.AlphaTimer)
	if d.alpha >= a0 {
		t.Fatalf("alpha did not decay: %v -> %v", a0, d.alpha)
	}
	d.Close()
}

func TestDCQCNByteCounterTriggersIncrease(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultDCQCNConfig()
	cfg.ByteCounter = 10000
	ctl := NewDCQCNFactory(cfg)(eng, 100*units.Gbps, 10*units.Microsecond)
	d := ctl.(*DCQCN)
	d.OnCongestion(0)
	low := d.Rate()
	for i := 0; i < 20; i++ {
		d.OnSent(eng.Now(), 1000)
	}
	if d.Rate() <= low {
		t.Fatal("byte-counter stages must raise the rate")
	}
	d.Close()
}

func TestDCQCNPacing(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewDCQCNFactory(DefaultDCQCNConfig())(eng, 100*units.Gbps, 10*units.Microsecond)
	ctl.OnSent(0, 1000)
	ok, at := ctl.CanSend(0, 0, 1000)
	if ok || at == 0 {
		t.Fatal("DCQCN must pace at Rc")
	}
	ctl.Close()
}

func TestCombinedRequiresAll(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Combine(NewLineRateFactory(), NewBDPFactory(1))
	ctl := f(eng, 100*units.Gbps, 10*units.Microsecond)
	// Window open, rate busy:
	ctl.OnSent(0, 1000)
	if ok, at := ctl.CanSend(0, 0, 1000); ok || at == 0 {
		t.Fatal("rate member must gate")
	}
	// Rate free, window full:
	later := units.TxTime(1000, 100*units.Gbps)
	if ok, _ := ctl.CanSend(later, 1<<20, 1000); ok {
		t.Fatal("window member must gate")
	}
	if ok, _ := ctl.CanSend(later, 0, 1000); !ok {
		t.Fatal("both open must admit")
	}
	ctl.OnAck(later, 1000, 0)
	ctl.OnCongestion(later)
	if ctl.Rate() != 100*units.Gbps {
		t.Fatalf("combined rate = %v", ctl.Rate())
	}
	ctl.Close()
}

func TestDCQCNWindowFactoryComposes(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewDCQCNWindowFactory(DefaultDCQCNConfig(), 1)(eng, 100*units.Gbps, 10*units.Microsecond)
	c, ok := ctl.(*Combined)
	if !ok || len(c.Ctls) != 2 {
		t.Fatal("expected two members")
	}
	if ok2, _ := ctl.CanSend(0, 1<<20, 1000); ok2 {
		t.Fatal("window cap must hold inside composition")
	}
	ctl.Close()
}
