// Package cc implements congestion control for the simulated RNICs. DCP's
// retransmission logic is decoupled from CC (§4.3); transports consult a
// Controller for send eligibility only. Provided controllers: a BDP-based
// flow-control window (IRN's and DCP's default), DCQCN (the paper's CC
// integration), a static rate, and composition.
package cc

import (
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// Controller gates packet transmission for one QP.
type Controller interface {
	// CanSend reports whether pktBytes may be sent now with inflight
	// unacknowledged bytes outstanding. If not, eligibleAt hints when to
	// retry (0 means "wait for an acknowledgment or other event").
	CanSend(now units.Time, inflight, pktBytes int) (ok bool, eligibleAt units.Time)
	// OnSent informs the controller a packet left the NIC.
	OnSent(now units.Time, bytes int)
	// OnAck informs the controller of acknowledged bytes and a measured
	// RTT (0 if unknown).
	OnAck(now units.Time, bytes int, rtt units.Time)
	// OnCongestion delivers a congestion signal (CNP arrival).
	OnCongestion(now units.Time)
	// Rate reports the current sending rate for diagnostics.
	Rate() units.Rate
	// Close stops any internal timers.
	Close()
}

// Factory builds a Controller for a QP whose bottleneck link runs at rate
// with base round-trip time rtt.
type Factory func(eng *sim.Engine, link units.Rate, rtt units.Time) Controller

// TraceFunc observes rate changes: called with the simulated time and the
// new current rate whenever an adaptive controller adjusts it. Trace
// functions must only record — never mutate simulation state.
type TraceFunc func(now units.Time, r units.Rate)

// SetTrace attaches fn to every rate-adaptive controller reachable from c
// (descending through Combined). Controllers without internal rate dynamics
// (Window, StaticRate) have nothing to report and are skipped. Returns true
// if at least one controller accepted the hook.
func SetTrace(c Controller, fn TraceFunc) bool {
	switch ctl := c.(type) {
	case *DCQCN:
		ctl.trace = fn
		return true
	case *Combined:
		hooked := false
		for _, sub := range ctl.Ctls {
			if SetTrace(sub, fn) {
				hooked = true
			}
		}
		return hooked
	}
	return false
}

// Window caps unacknowledged bytes, the "BDP-based flow control" both IRN
// and DCP employ when no CC is integrated.
type Window struct {
	Limit int
}

// NewBDPFactory returns a Factory producing a window of mult×BDP (+1 MTU so
// a full window still admits the next packet).
func NewBDPFactory(mult float64) Factory {
	return func(eng *sim.Engine, link units.Rate, rtt units.Time) Controller {
		w := int(float64(units.BDP(link, rtt)) * mult)
		return &Window{Limit: w + 2000}
	}
}

// CanSend implements Controller.
func (w *Window) CanSend(_ units.Time, inflight, pktBytes int) (bool, units.Time) {
	if inflight+pktBytes <= w.Limit || inflight == 0 {
		return true, 0
	}
	return false, 0
}

// OnSent implements Controller.
func (w *Window) OnSent(units.Time, int) {}

// OnAck implements Controller.
func (w *Window) OnAck(units.Time, int, units.Time) {}

// OnCongestion implements Controller.
func (w *Window) OnCongestion(units.Time) {}

// Rate implements Controller.
func (w *Window) Rate() units.Rate { return 0 }

// Close implements Controller.
func (w *Window) Close() {}

// StaticRate paces packets at a fixed rate with no window (line-rate RoCE
// under PFC).
type StaticRate struct {
	R        units.Rate
	nextSend units.Time
}

// NewLineRateFactory returns a Factory pacing at the link rate.
func NewLineRateFactory() Factory {
	return func(eng *sim.Engine, link units.Rate, rtt units.Time) Controller {
		return &StaticRate{R: link}
	}
}

// CanSend implements Controller.
func (s *StaticRate) CanSend(now units.Time, _, _ int) (bool, units.Time) {
	if now >= s.nextSend {
		return true, 0
	}
	return false, s.nextSend
}

// OnSent implements Controller.
func (s *StaticRate) OnSent(now units.Time, bytes int) {
	start := s.nextSend
	if now > start {
		start = now
	}
	s.nextSend = start + units.TxTime(bytes, s.R)
}

// OnAck implements Controller.
func (s *StaticRate) OnAck(units.Time, int, units.Time) {}

// OnCongestion implements Controller.
func (s *StaticRate) OnCongestion(units.Time) {}

// Rate implements Controller.
func (s *StaticRate) Rate() units.Rate { return s.R }

// Close implements Controller.
func (s *StaticRate) Close() {}

// Combined requires every sub-controller to admit a packet (e.g. DCQCN rate
// + BDP window).
type Combined struct {
	Ctls []Controller
}

// Combine composes factories.
func Combine(fs ...Factory) Factory {
	return func(eng *sim.Engine, link units.Rate, rtt units.Time) Controller {
		c := &Combined{}
		for _, f := range fs {
			c.Ctls = append(c.Ctls, f(eng, link, rtt))
		}
		return c
	}
}

// CanSend implements Controller.
func (c *Combined) CanSend(now units.Time, inflight, pktBytes int) (bool, units.Time) {
	var when units.Time
	ok := true
	for _, ctl := range c.Ctls {
		o, at := ctl.CanSend(now, inflight, pktBytes)
		if !o {
			ok = false
			if at > when {
				when = at
			}
		}
	}
	return ok, when
}

// OnSent implements Controller.
func (c *Combined) OnSent(now units.Time, bytes int) {
	for _, ctl := range c.Ctls {
		ctl.OnSent(now, bytes)
	}
}

// OnAck implements Controller.
func (c *Combined) OnAck(now units.Time, bytes int, rtt units.Time) {
	for _, ctl := range c.Ctls {
		ctl.OnAck(now, bytes, rtt)
	}
}

// OnCongestion implements Controller.
func (c *Combined) OnCongestion(now units.Time) {
	for _, ctl := range c.Ctls {
		ctl.OnCongestion(now)
	}
}

// Rate implements Controller.
func (c *Combined) Rate() units.Rate {
	var r units.Rate
	for _, ctl := range c.Ctls {
		if cr := ctl.Rate(); r == 0 || (cr > 0 && cr < r) {
			r = cr
		}
	}
	return r
}

// Close implements Controller.
func (c *Combined) Close() {
	for _, ctl := range c.Ctls {
		ctl.Close()
	}
}
