// Package pcap renders simulated DCP traffic as standard libpcap capture
// files, using the real on-the-wire encodings from package wire. Attach a
// Writer to any fabric.Port tap and open the result in Wireshark: DCP tags
// ride the IP ToS bits, HO packets appear as 57-byte RoCEv2 headers, and
// sRetryNo occupies the BTH reserved byte exactly as Fig. 4 specifies.
package pcap

import (
	"encoding/binary"
	"io"

	"dcpsim/internal/packet"
	"dcpsim/internal/units"
	"dcpsim/internal/wire"
)

// Classic pcap file constants.
const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	linkEthernet = 1
	// SnapLen caps how many bytes of each packet are stored.
	SnapLen = 256
)

// Writer emits a pcap stream. It is not safe for concurrent use — the
// simulator is single-threaded, so it never needs to be.
type Writer struct {
	w       io.Writer
	err     error
	Packets int64
}

// NewWriter writes the pcap global header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:], SnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkEthernet)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// Record writes one simulated packet observed at simulated time at.
func (pw *Writer) Record(p *packet.Packet, at units.Time) {
	if pw.err != nil {
		return
	}
	frame := Encode(p)
	capLen := len(frame)
	if capLen > SnapLen {
		capLen = SnapLen
	}
	rec := make([]byte, 16, 16+capLen)
	us := at.Picos() / int64(units.Microsecond)
	binary.LittleEndian.PutUint32(rec[0:], uint32(us/1_000_000))
	binary.LittleEndian.PutUint32(rec[4:], uint32(us%1_000_000))
	binary.LittleEndian.PutUint32(rec[8:], uint32(capLen))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(frame)))
	rec = append(rec, frame[:capLen]...)
	if _, err := pw.w.Write(rec); err != nil {
		pw.err = err
		return
	}
	pw.Packets++
}

// Err returns the first write error, if any.
func (pw *Writer) Err() error { return pw.err }

// Encode renders a simulated packet into its on-the-wire bytes. Payloads
// are zero-filled (the simulator carries sizes, not contents); every header
// field is real.
func Encode(p *packet.Packet) []byte {
	switch p.Kind {
	case packet.KindAck, packet.KindCNP:
		a := &wire.AckPacket{
			Eth: ethFor(p),
			IP: wire.IPv4{
				Tag: wire.DCPTag(p.Tag), TTL: 64,
				Src: addrFor(p.Src), Dst: addrFor(p.Dst),
			},
			UDP:  wire.UDP{SrcPort: srcPortFor(p)},
			BTH:  wire.BTH{DestQP: p.DstQP & 0xFFFFFF, PSN: p.EPSN & 0xFFFFFF},
			AETH: wire.AETH{MSN: p.EMSN & 0xFFFFFF},
		}
		return a.Marshal()
	default:
		d := &wire.DataPacket{
			Eth: ethFor(p),
			IP: wire.IPv4{
				Tag: wire.DCPTag(p.Tag), TTL: 64,
				Src: addrFor(p.Src), Dst: addrFor(p.Dst),
			},
			UDP: wire.UDP{SrcPort: srcPortFor(p)},
			BTH: wire.BTH{
				OpCode:   wire.OpWriteMiddle,
				DestQP:   p.DstQP & 0xFFFFFF,
				PSN:      p.PSN & 0xFFFFFF,
				SRetryNo: p.SRetryNo,
			},
			MSN: p.MSN & 0xFFFFFF,
		}
		if p.ECN {
			d.IP.ECN = wire.ECNCE
		}
		if p.Kind == packet.KindHO {
			// Header-only: exactly the 57-byte prefix (no RETH, no payload).
			return d.Marshal()
		}
		d.HasRETH = true
		d.RETH = wire.RETH{
			VA:     uint64(p.MSN)<<32 | uint64(p.MsgOffset)*uint64(p.PayloadBytes),
			RKey:   uint32(p.FlowID),
			Length: p.MsgLen * uint32(packet.DefaultMTU),
		}
		d.Payload = make([]byte, p.PayloadBytes)
		return d.Marshal()
	}
}

func addrFor(n packet.NodeID) [4]byte {
	return [4]byte{10, 0, byte(uint32(n) >> 8), byte(n)}
}

func ethFor(p *packet.Packet) wire.Ethernet {
	var e wire.Ethernet
	e.Src = [6]byte{0x02, 0, 0, 0, byte(uint32(p.Src) >> 8), byte(p.Src)}
	e.Dst = [6]byte{0x02, 0, 0, 0, byte(uint32(p.Dst) >> 8), byte(p.Dst)}
	return e
}

// srcPortFor derives a stable UDP source port from the flow (and the
// MP-RDMA virtual path), the entropy field real fabrics hash on.
func srcPortFor(p *packet.Packet) uint16 {
	return uint16(49152 + (p.FlowID^uint64(p.PathKey)*2654435761)%16384)
}
