package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dcpsim/internal/packet"
	"dcpsim/internal/units"
	"dcpsim/internal/wire"
)

// readAll parses the writer's output back with a minimal pcap reader.
func readAll(t *testing.T, buf []byte) [][]byte {
	t.Helper()
	if len(buf) < 24 {
		t.Fatal("missing global header")
	}
	if binary.LittleEndian.Uint32(buf) != magicMicros {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(buf[20:]) != linkEthernet {
		t.Fatal("bad linktype")
	}
	var frames [][]byte
	off := 24
	for off < len(buf) {
		if off+16 > len(buf) {
			t.Fatal("truncated record header")
		}
		capLen := int(binary.LittleEndian.Uint32(buf[off+8:]))
		origLen := int(binary.LittleEndian.Uint32(buf[off+12:]))
		if capLen > origLen || capLen > SnapLen {
			t.Fatalf("caplen %d origlen %d", capLen, origLen)
		}
		off += 16
		if off+capLen > len(buf) {
			t.Fatal("truncated record")
		}
		frames = append(frames, buf[off:off+capLen])
		off += capLen
	}
	return frames
}

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data := packet.DataPacket(7, 1, 2, 100, 3, 64)
	data.SRetryNo = 2
	w.Record(data, 5*units.Microsecond)

	ho := packet.DataPacket(7, 1, 2, 101, 3, 1000)
	ho.Trim()
	w.Record(ho, 6*units.Microsecond)

	ack := packet.AckPacket(7, 2, 1, 55)
	ack.EMSN = 4
	w.Record(ack, 7*units.Microsecond)

	if w.Err() != nil || w.Packets != 3 {
		t.Fatalf("err=%v packets=%d", w.Err(), w.Packets)
	}
	frames := readAll(t, buf.Bytes())
	if len(frames) != 3 {
		t.Fatalf("%d frames", len(frames))
	}

	// Frame 0: a data packet decodable by the wire parser.
	d, err := wire.UnmarshalDataPacket(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.BTH.PSN != 100 || d.MSN != 3 || d.BTH.SRetryNo != 2 {
		t.Fatalf("data fields: %+v", d.BTH)
	}
	if d.IP.Tag != wire.TagData {
		t.Fatal("data tag")
	}

	// Frame 1: the HO packet is exactly 57 bytes with tag 11.
	if len(frames[1]) != wire.HOSize {
		t.Fatalf("HO frame %d bytes", len(frames[1]))
	}
	h, err := wire.UnmarshalDataPacket(frames[1])
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsHO() || h.BTH.PSN != 101 {
		t.Fatal("HO decode")
	}

	// Frame 2: the ACK carries the eMSN.
	a, err := wire.UnmarshalAckPacket(frames[2])
	if err != nil {
		t.Fatal(err)
	}
	if a.AETH.MSN != 4 || a.BTH.PSN != 55 {
		t.Fatalf("ack fields: %+v", a)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	big := packet.DataPacket(1, 1, 2, 0, 0, 1000) // 1073-byte frame
	w.Record(big, 0)
	frames := readAll(t, buf.Bytes())
	if len(frames[0]) != SnapLen {
		t.Fatalf("expected snaplen truncation, got %d", len(frames[0]))
	}
}

func TestAddrDerivation(t *testing.T) {
	if addrFor(0x0102) != [4]byte{10, 0, 1, 2} {
		t.Fatal("addr mapping")
	}
	p := packet.DataPacket(5, 3, 4, 0, 0, 10)
	e := Encode(p)
	d, err := wire.UnmarshalDataPacket(e)
	if err != nil {
		t.Fatal(err)
	}
	if d.IP.Src != addrFor(3) || d.IP.Dst != addrFor(4) {
		t.Fatal("IP addresses")
	}
}

func TestStableSrcPortPerFlow(t *testing.T) {
	a := packet.DataPacket(42, 0, 1, 0, 0, 10)
	b := packet.DataPacket(42, 0, 1, 9, 0, 10)
	pa, _ := wire.UnmarshalDataPacket(Encode(a))
	pb, _ := wire.UnmarshalDataPacket(Encode(b))
	if pa.UDP.SrcPort != pb.UDP.SrcPort {
		t.Fatal("same flow must keep its UDP source port")
	}
	c := packet.DataPacket(43, 0, 1, 0, 0, 10)
	pc, _ := wire.UnmarshalDataPacket(Encode(c))
	if pc.UDP.SrcPort == pa.UDP.SrcPort {
		t.Fatal("different flows should (almost surely) differ")
	}
	// MP-RDMA virtual paths change the entropy.
	d := packet.DataPacket(42, 0, 1, 0, 0, 10)
	d.PathKey = 3
	pd, _ := wire.UnmarshalDataPacket(Encode(d))
	if pd.UDP.SrcPort == pa.UDP.SrcPort {
		t.Fatal("path key must change the source port")
	}
}

func TestCNPEncodesAsAck(t *testing.T) {
	cnp := &packet.Packet{Kind: packet.KindCNP, Tag: packet.TagAck, FlowID: 1, Src: 1, Dst: 2, Size: 57}
	if _, err := wire.UnmarshalAckPacket(Encode(cnp)); err != nil {
		t.Fatal(err)
	}
}
