package exp

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dcpsim/internal/nic"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// The cross-transport differential suite: every registered transport, run
// over the same topology with the same seed and flow set, must deliver the
// exact same application byte-stream per flow. Transports differ wildly in
// wire behaviour — trimming, PFC pauses, SACKs, receiver pulls — but the
// chunks handed to the application are addressed the same way everywhere:
// a flow-wide PSN with deterministic MTU chunking (base.PayloadAt). So the
// set {(PSN, payloadBytes)} delivered per flow is a transport-invariant
// fingerprint of the reassembled stream, and any transport whose fingerprint
// diverges is misdelivering bytes regardless of how plausible its FCTs look.

// chunkKey addresses one delivered application chunk.
type chunkKey struct {
	flow uint64
	psn  uint32
}

// deliveryRecorder wraps a receiving NIC's transport and records every
// distinct data chunk that arrives, flagging payload-size conflicts
// (two deliveries of one PSN with different sizes = corruption).
type deliveryRecorder struct {
	inner     nic.Transport
	chunks    map[chunkKey]int
	dups      int
	conflicts []string
}

func (r *deliveryRecorder) Handle(p *packet.Packet) {
	if p.Kind == packet.KindData {
		k := chunkKey{p.FlowID, p.PSN}
		if old, ok := r.chunks[k]; ok {
			r.dups++
			if old != p.PayloadBytes {
				r.conflicts = append(r.conflicts,
					fmt.Sprintf("flow %d psn %d: %d bytes then %d bytes", k.flow, k.psn, old, p.PayloadBytes))
			}
		} else {
			r.chunks[k] = p.PayloadBytes
		}
	}
	r.inner.Handle(p)
}

func (r *deliveryRecorder) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return r.inner.Dequeue(now, dataPaused)
}

// differentialSchemes is the full transport lineup under test: every
// registry entry, deduplicated by display name (aliases like cx5/gbn
// resolve to one scheme), so a newly registered transport joins the matrix
// on day one instead of waiting for a hand-edit here.
func differentialSchemes() []Scheme {
	var out []Scheme
	seen := map[string]bool{}
	for _, name := range SchemeNames() {
		sch, ok := SchemeByName(name)
		if !ok {
			panic("SchemeNames listed a name SchemeByName rejects: " + name)
		}
		if seen[sch.Name] {
			continue
		}
		seen[sch.Name] = true
		out = append(out, sch)
	}
	return out
}

// TestDifferentialCoversRegistry fails when a registered scheme is missing
// from the differential matrix — the "new transport silently skips the
// suite" gap this suite exists to close.
func TestDifferentialCoversRegistry(t *testing.T) {
	covered := map[string]bool{}
	for _, sch := range differentialSchemes() {
		covered[sch.Name] = true
	}
	for _, name := range SchemeNames() {
		sch, ok := SchemeByName(name)
		if !ok {
			t.Fatalf("SchemeNames lists %q but SchemeByName rejects it", name)
		}
		if !covered[sch.Name] {
			t.Errorf("registered scheme %q (%s) is missing from the differential matrix", name, sch.Name)
		}
	}
}

// differentialFlows is the shared workload: cross-switch flows with sizes
// chosen to exercise chunking edge cases — sub-MTU, exactly MTU, MTU+1,
// multi-packet with a short tail, and larger-than-message sizes.
func differentialFlows() []*workload.Flow {
	sizes := []int64{1, 999, 1000, 1001, 2500, 64<<10 + 7, 1<<20 + 123}
	flows := make([]*workload.Flow, len(sizes))
	for i, size := range sizes {
		flows[i] = &workload.Flow{
			ID:  uint64(i + 1),
			Src: packet.NodeID(i), Dst: packet.NodeID(8 + i),
			Size: size,
		}
	}
	return flows
}

// runDifferential runs one scheme over the shared dumbbell + flow set and
// returns the recorded delivery fingerprint.
func runDifferential(t *testing.T, sch Scheme, lossRate float64, seed int64) (map[chunkKey]int, int) {
	t.Helper()
	s := NewSim(seed, sch, func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.Switch = SwitchConfigFor(sch)
		c.Switch.LossRate = lossRate
		return topo.Dumbbell(eng, c)
	})
	rec := &deliveryRecorder{chunks: make(map[chunkKey]int)}
	for _, h := range s.Net.Hosts {
		inner := h.Transport()
		h.SetTransport(&deliveryRecorder{inner: inner, chunks: rec.chunks})
	}
	// All receivers share one chunk map (flows have distinct IDs), but
	// conflicts/dups live per wrapper; re-wrap with the shared recorder so
	// diagnostics aggregate.
	flows := differentialFlows()
	s.ScheduleFlows(flows)
	unfinished := s.Run(10 * units.Second)
	for _, h := range s.Net.Hosts {
		w := h.Transport().(*deliveryRecorder)
		rec.dups += w.dups
		rec.conflicts = append(rec.conflicts, w.conflicts...)
	}
	if len(rec.conflicts) > 0 {
		t.Fatalf("%s: payload conflicts: %v", sch.Name, rec.conflicts)
	}
	return rec.chunks, unfinished
}

// fingerprint renders a chunk map canonically for comparison.
func fingerprint(chunks map[chunkKey]int) string {
	keys := make([]chunkKey, 0, len(chunks))
	for k := range chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].flow != keys[j].flow {
			return keys[i].flow < keys[j].flow
		}
		return keys[i].psn < keys[j].psn
	})
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%d/%d:%d\n", k.flow, k.psn, chunks[k])
	}
	return b.String()
}

// checkCoverage asserts the distinct delivered chunks of every flow sum to
// exactly the flow's size — no byte lost, none invented.
func checkCoverage(t *testing.T, name string, chunks map[chunkKey]int) {
	t.Helper()
	sums := map[uint64]int64{}
	for k, v := range chunks {
		sums[k.flow] += int64(v)
	}
	for _, f := range differentialFlows() {
		if got := sums[f.ID]; got != f.Size {
			t.Errorf("%s: flow %d delivered %d distinct bytes, want %d", name, f.ID, got, f.Size)
		}
	}
}

// TestDifferentialZeroLoss: identical seed/topology/workload and zero
// faults — every transport completes every message and delivers the exact
// same application byte-stream per flow.
func TestDifferentialZeroLoss(t *testing.T) {
	var refName, ref string
	for _, sch := range differentialSchemes() {
		chunks, unfinished := runDifferential(t, sch, 0, 42)
		if unfinished != 0 {
			t.Fatalf("%s: %d flows unfinished on a faultless fabric", sch.Name, unfinished)
		}
		checkCoverage(t, sch.Name, chunks)
		fp := fingerprint(chunks)
		if ref == "" {
			refName, ref = sch.Name, fp
			continue
		}
		if fp != ref {
			t.Errorf("%s delivered a different byte-stream than %s:\n%s", sch.Name, refName, diffFingerprints(ref, fp))
		}
	}
}

// TestDifferentialUnderLoss: with forced random loss the wire traffic
// diverges wildly across transports (retransmissions, trims, timeouts),
// but the distinct delivered bytes must still be the identical complete
// stream once every flow finishes.
func TestDifferentialUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy differential sweep is slow")
	}
	for _, lossRate := range []float64{0.001, 0.01} {
		var refName, ref string
		for _, sch := range differentialSchemes() {
			chunks, unfinished := runDifferential(t, sch, lossRate, 42)
			if unfinished != 0 {
				t.Fatalf("%s: %d flows unfinished under %.3f loss", sch.Name, unfinished, lossRate)
			}
			checkCoverage(t, sch.Name, chunks)
			fp := fingerprint(chunks)
			if ref == "" {
				refName, ref = sch.Name, fp
				continue
			}
			if fp != ref {
				t.Errorf("loss %.3f: %s delivered a different byte-stream than %s:\n%s",
					lossRate, sch.Name, refName, diffFingerprints(ref, fp))
			}
		}
	}
}

// diffFingerprints summarizes the first few differing lines of two
// canonical chunk listings.
func diffFingerprints(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	var out []string
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			out = append(out, fmt.Sprintf("ref %q vs got %q", x, y))
			if len(out) >= 10 {
				out = append(out, "...")
				break
			}
		}
	}
	return strings.Join(out, "\n")
}
