package exp

import (
	"fmt"

	"dcpsim/internal/faults"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// The ML-collective family treats the tail of step-completion time — not
// mean goodput — as the headline metric, following the "RDMA through the
// lens of ML" framing: a ring all-reduce step finishes when its SLOWEST
// member flow finishes, so one straggler (a flapping host link) stretches
// every step it touches and the damage shows up at p99/p99.9, not p50.
// The family compares how DCP's HO-driven recovery, SDR's SACK-bitmap
// recovery and IRN's episode recovery bound that tail, and reports the
// per-flow tracking state each design pays for it.

// collectiveMembers is the ring size: hosts 0..7 of a 4+4 dumbbell, so the
// ring crosses the inter-switch links twice per step.
const collectiveMembers = 8

// collectiveSchemes is the lineup tail latency is compared across.
func collectiveSchemes() []Scheme {
	return []Scheme{SchemeDCP(false), SchemeSDR(), SchemeIRN(0, false)}
}

// collectiveNet is the 4+4 dumbbell the ring runs on.
func collectiveNet(sch Scheme) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.HostsPerSwitch = collectiveMembers / 2
		c.Switch = SwitchConfigFor(sch)
		return topo.Dumbbell(eng, c)
	}
}

// collectiveRun drives iters chained ring all-reduces (each 2(N-1) steps)
// of total bytes per member under sch, flapping the straggler's host link,
// and returns the sim after the horizon.
func collectiveRun(sub Config, sch Scheme, total int64, iters int, mkPlan func(stepT units.Time) *faults.Plan) (*Sim, int) {
	s := NewSimCfg(sub, sch, collectiveNet(sch))
	members := make([]packet.NodeID, collectiveMembers)
	for i := range members {
		members[i] = packet.NodeID(i)
	}
	slice := total / collectiveMembers
	// Nominal unloaded step time: one slice serialized (~8% header
	// overhead) plus a round trip — the yardstick fault timing and the
	// horizon scale from.
	stepT := units.TxTime(int(float64(slice)*1.08), 100*units.Gbps) + 50*units.Microsecond
	var launch func(iter int, at units.Time)
	launch = func(iter int, at units.Time) {
		if iter >= iters {
			return
		}
		cf := workload.RingAllReduce(members, total, iter+1,
			uint64(iter)*uint64(collectiveMembers)*uint64(2*(collectiveMembers-1))+1)
		s.RunCoflow(cf, at, func(end units.Time) { launch(iter+1, end) })
	}
	launch(0, 0)
	mustInject(s.Net, mkPlan(stepT))
	nsteps := int64(iters * 2 * (collectiveMembers - 1))
	horizon := units.Mul(8*stepT, nsteps) + 200*units.Millisecond
	unfinished := s.Run(horizon)
	return s, unfinished
}

// collectiveCell is one (severity, scheme) measurement.
type collectiveCell struct {
	steps               int
	p50, p99, p999, max float64
	stateB              int64
	retrans, timeouts   int64
	unfinished          int
}

// MLCollective runs the straggler-flap ring all-reduce per scheme and
// severity: the straggler's host link flaps periodically while the ring
// turns, and the table reports the step-completion tail (p50/p99/p99.9/max
// in µs), recovery-event counts, and mean per-flow tracking state.
func MLCollective(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name: "ML collective: ring all-reduce step-completion tail under straggler link flap",
		Columns: []string{"severity", "scheme", "steps", "step_p50_us",
			"step_p99_us", "step_p99.9_us", "step_max_us",
			"retrans_pkts", "timeouts", "state_B_per_flow", "unfinished"},
	}
	total := cfg.bytes(16 << 20)
	iters := cfg.events(3)
	sevs := severities(cfg)
	schemes := collectiveSchemes()
	cells := grid(cfg, len(sevs), len(schemes), func(sub Config, vi, si int) collectiveCell {
		sev, sch := sevs[vi], schemes[si]
		s, unfinished := collectiveRun(sub, sch, total, iters, func(stepT units.Time) *faults.Plan {
			// The straggler: host2's link flaps with severity-scaled
			// millisecond outages — long enough that a scheme's
			// step-completion tail reveals whether it is bound by the
			// outage itself or by its own recovery timer.
			period := units.Scale(5*units.Millisecond, sev)
			return faults.NewPlan(sub.Seed).LinkFlap("host2", stepT, period, 0.5, 3)
		})
		c := collectiveCell{unfinished: unfinished}
		var vals []float64
		for _, d := range s.Col.StepTimes() {
			vals = append(vals, d.Micros())
		}
		c.steps = len(vals)
		if len(vals) > 0 {
			c.p50 = stats.Percentile(vals, 50)
			c.p99 = stats.Percentile(vals, 99)
			c.p999 = stats.Percentile(vals, 99.9)
			c.max = stats.Percentile(vals, 100)
		}
		flows := s.Col.Flows()
		for _, f := range flows {
			c.stateB += f.SendStateBytes + f.RecvStateBytes
			c.retrans += f.RetransPkts
			c.timeouts += f.Timeouts
		}
		if len(flows) > 0 {
			c.stateB /= int64(len(flows))
		}
		return c
	})
	for vi, sev := range sevs {
		for si, sch := range schemes {
			c := cells[vi][si]
			t.AddRow(fmt.Sprintf("%.2g", sev), sch.Name, c.steps,
				c.p50, c.p99, c.p999, c.max,
				c.retrans, c.timeouts, c.stateB, c.unfinished)
		}
	}
	return []*stats.Table{t}
}
