package exp

import (
	"dcpsim/internal/analytic"
	"dcpsim/internal/stats"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID   string
	Desc string
	// Heavy marks experiments needing minutes at full scale.
	Heavy bool
	Run   func(Config) []*stats.Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Max lossless distance with PFC per switching ASIC", false,
			func(Config) []*stats.Table { return []*stats.Table{analytic.Table1()} }},
		{"fig1", "IRN spurious retransmissions vs DCP under AR", true, Fig1},
		{"fig2", "Excessive RTOs: IRN-ECMP / IRN-AR / DCP", true, Fig2},
		{"table2", "Requirement matrix of DCP and related work", false,
			func(Config) []*stats.Table { return []*stats.Table{analytic.Table2()} }},
		{"fig7", "Theoretical packet rate vs OOO degree", false,
			func(Config) []*stats.Table { return []*stats.Table{analytic.Fig7(analytic.DefaultPPS(), nil)} }},
		{"table3", "Memory overhead of packet tracking schemes", false,
			func(Config) []*stats.Table { return []*stats.Table{analytic.Table3(analytic.DefaultTracking())} }},
		{"table4", "Prototype FPGA resource usage (model)", false,
			func(Config) []*stats.Table { return []*stats.Table{analytic.Table4(analytic.DefaultResources())} }},
		{"fig8", "Back-to-back validation: throughput and latency", false, Fig8},
		{"fig10", "Loss recovery efficiency: DCP vs CX5", false, Fig10},
		{"fig11", "Adaptive routing over unequal paths", false, Fig11},
		{"fig12", "Testbed AI workloads (AllReduce/AllToAll)", true, Fig12},
		{"longhaul", "10 km long-haul single-flow throughput", false, LongHaul},
		{"fig13", "CLOS WebSearch FCT slowdown (loads 0.3/0.5)", true, Fig13},
		{"fig14", "CLOS AI workloads JCT + FCT CDF", true, Fig14},
		{"fig15", "Cross-DC (100 km / 1000 km) FCT slowdown", true, Fig15},
		{"fig16", "Incast deep-dive with and without CC", true, Fig16},
		{"table5", "HO loss rate under severe incast", true, Table5},
		{"fig17", "Loss recovery: DCP / RACK-TLP / IRN / Timeout", false, Fig17},
		{"ab-wrr", "Ablation: WRR weight law", true, AblationWRRWeight},
		{"ab-batch", "Ablation: RetransQ batching vs per-HO fetch", false, AblationRetransBatch},
		{"ab-track", "Ablation: counters vs receiver bitmap", false, AblationTracking},
		{"ab-trim", "Ablation: trimming threshold sweep", true, AblationTrimThreshold},
		{"ab-ccretx", "Ablation: CC-regulated retransmission", true, AblationUncontrolledRetrans},
		{"ab-b2s", "Ablation: direct back-to-sender HO return (§7)", false, AblationBackToSender},
		{"ext-ndp", "Extension: DCP vs receiver-driven NDP on trimming fabric", false, ExtensionNDP},
		{"wan-crossover", "WAN: DCP counters vs SDR SACK-bitmap over RTT×BER", false, WANCrossover},
		{"ml-collective", "ML: ring all-reduce step tail under straggler flap", false, MLCollective},
		{"fault-flap", "Fault: mid-transfer link flap, blackout + time-to-recover", false, FaultFlap},
		{"fault-degrade", "Fault: silent wire BER ramp vs visible switch loss", true, FaultDegrade},
		{"fault-pause", "Fault: forced PFC pause storm on cross links", false, FaultPauseStorm},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}
