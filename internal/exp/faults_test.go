package exp

import (
	"fmt"
	"testing"

	"dcpsim/internal/fabric"
	"dcpsim/internal/faults"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
)

// TestFaultFlapHeadline is the acceptance check of the fault subsystem:
// after a mid-transfer link flap on the dumbbell, DCP+AR barely notices
// (its switch rescues the dead link's queue as HO notifications and
// adaptive routing steers around the failure), while the GBN/PFC victim
// flow blackholes for at least the whole outage.
func TestFaultFlapHeadline(t *testing.T) {
	cfg := Config{Seed: 42, Scale: 0.1, FaultSeverity: 1}
	size := cfg.bytes(32 << 20)
	T := nominalT(size)
	bin := faultBin(T)
	faultAt := T / 4
	dur := units.Time(float64(T) / 3)
	horizon := faultAt + dur + 25*units.Millisecond
	victim := fmt.Sprintf("cross%d", fabric.ECMPIndex(1, 0, faultCross))
	mkPlan := func(*topo.Network) *faults.Plan {
		return faults.NewPlan(cfg.Seed).LinkDownFor(victim, faultAt, dur)
	}

	dcp := runFaultScenario(cfg, SchemeDCP(false), size, bin, horizon, mkPlan)
	pfc := runFaultScenario(cfg, SchemePFC(), size, bin, horizon, mkPlan)

	dcpPre, dcpBlackout, _, dcpPost, dcpRecovered := worstRecovery(dcp, faultAt, faultAt+dur)
	_, pfcBlackout, _, _, _ := worstRecovery(pfc, faultAt, faultAt+dur)

	if dcp.Unfinished != 0 {
		t.Fatalf("DCP left %d flows unfinished", dcp.Unfinished)
	}
	if dcpPre < 50 {
		t.Fatalf("DCP pre-fault goodput %.1f Gbps, want near line rate", dcpPre)
	}
	if !dcpRecovered {
		t.Fatal("DCP flows did not recover to 90%% of pre-fault goodput")
	}
	if dcpPost < 90 {
		t.Fatalf("DCP post-fault goodput %.1f%% of pre-fault, want >= 90%%", dcpPost)
	}
	// DCP's worst-flow blackout should be a small fraction of the outage;
	// the PFC victim must at minimum sit out the whole outage.
	if dcpBlackout > dur/4 {
		t.Fatalf("DCP blackout %v, want < outage/4 (%v)", dcpBlackout, dur/4)
	}
	if pfcBlackout < dur {
		t.Fatalf("PFC victim blackout %v shorter than the outage %v", pfcBlackout, dur)
	}
	if pfcBlackout < 4*dcpBlackout {
		t.Fatalf("PFC blackout %v not measurably longer than DCP's %v", pfcBlackout, dcpBlackout)
	}
}

// TestFaultTablesReproducible asserts the result tables are bit-for-bit
// identical across two same-seed runs — fault timing, burst placement and
// every simulation draw derive from Config.Seed.
func TestFaultTablesReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 11, Scale: 0.02, FaultSeverity: 1}
	for _, id := range []string{"fault-flap", "fault-pause"} {
		e := ByID(id)
		render := func() string {
			out := ""
			for _, tb := range e.Run(cfg) {
				out += tb.String()
			}
			return out
		}
		a, b := render(), render()
		if a != b {
			t.Fatalf("%s tables differ between same-seed runs:\n--- run 1\n%s\n--- run 2\n%s", id, a, b)
		}
	}
}
