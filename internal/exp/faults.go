package exp

import (
	"fmt"

	"dcpsim/internal/fabric"
	"dcpsim/internal/faults"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// The failure-recovery experiments run on a 2×4 dumbbell with 8 parallel
// cross links: enough spare cross capacity that a data-plane load balancer
// can route around a single failed link without congestion, which is
// exactly the recovery headroom the paper's trimming fabric assumes.
const (
	faultHosts = 4
	faultCross = 8
)

// faultSeverities is the default severity ladder: each experiment scales
// its fault duration (or peak loss) by these multipliers.
var faultSeverities = []float64{0.5, 1, 2}

func severities(cfg Config) []float64 {
	if cfg.FaultSeverity > 0 {
		return []float64{cfg.FaultSeverity}
	}
	return faultSeverities
}

// nominalT is the unloaded serialization time of size bytes at the testbed
// line rate (~8% header overhead), the yardstick fault timings scale from
// so experiments stay meaningful at any Config.Scale.
func nominalT(size int64) units.Time {
	return units.TxTime(int(float64(size)*1.08), 100*units.Gbps)
}

func mustInject(n *topo.Network, p *faults.Plan) *faults.Injector {
	in, err := n.Inject(p)
	if err != nil {
		panic(err)
	}
	return in
}

// faultRun is one scheme's run of a fault scenario: the sim, the bound
// injector, and one goodput trace per flow (flow i terminates at dst host
// faultHosts+i, the only flow delivering to that NIC).
type faultRun struct {
	Sim    *Sim
	Inj    *faults.Injector
	Traces []*stats.GoodputTrace
	// Unfinished is the number of flows still incomplete at the horizon.
	Unfinished int
}

// runFaultScenario runs faultHosts cross-switch flows (i → faultHosts+i,
// IDs 1..faultHosts) of size bytes each under sch, injects the plan built
// by mkPlan, and samples per-destination goodput every bin until horizon.
func runFaultScenario(cfg Config, sch Scheme, size int64, bin, horizon units.Time, mkPlan func(*topo.Network) *faults.Plan) *faultRun {
	s := NewSimCfg(cfg, sch, func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.HostsPerSwitch = faultHosts
		c.CrossLinks = faultCross
		c.Switch = SwitchConfigFor(sch)
		return topo.Dumbbell(eng, c)
	})
	flows := make([]*workload.Flow, faultHosts)
	for i := range flows {
		flows[i] = &workload.Flow{
			ID:  uint64(i + 1),
			Src: packet.NodeID(i), Dst: packet.NodeID(faultHosts + i),
			Size: size,
		}
	}
	s.ScheduleFlows(flows)
	inj := mustInject(s.Net, mkPlan(s.Net))
	traces := make([]*stats.GoodputTrace, faultHosts)
	for i := range traces {
		traces[i] = stats.NewGoodputTrace(bin)
	}
	var sample func()
	sample = func() {
		for i, tr := range traces {
			tr.Sample(s.Net.Hosts[faultHosts+i].DeliveredBytes)
		}
		if s.Eng.Now() < horizon {
			s.Eng.AfterComp(bin, sim.CompProbe, sample)
		}
	}
	s.Eng.AfterComp(bin, sim.CompProbe, sample)
	unfinished := s.Run(horizon)
	return &faultRun{Sim: s, Inj: inj, Traces: traces, Unfinished: unfinished}
}

// faultBin picks the trace bin width: T/64 resolution, floored at 10 µs so
// tiny-scale runs stay cheap.
func faultBin(t units.Time) units.Time {
	bin := t / 64
	if bin < 10*units.Microsecond {
		bin = 10 * units.Microsecond
	}
	return bin
}

// worstRecovery reduces the per-flow traces to the fault-response summary
// the result tables report: mean pre-fault goodput, the worst (max) blackout
// and time-to-recover across flows, the worst post-fault goodput fraction,
// and whether every flow recovered to 90% of its pre-fault rate.
func worstRecovery(r *faultRun, faultAt, faultEnd units.Time) (pre float64, blackout, recov units.Time, postPct float64, allRecovered bool) {
	allRecovered = true
	postPct = -1
	var preSum float64
	for i, tr := range r.Traces {
		rec := r.Sim.Col.Flow(uint64(i + 1))
		done := rec != nil && rec.Done
		var rep stats.RecoveryReport
		// The final delivering bin of a finished flow is partial (the flow
		// ends mid-bin); leave it out of the post-fault mean.
		last := tr.LastActiveBin() - 1
		if done {
			rep = tr.Recovery(faultAt, 0.1, 0.9)
		} else {
			// Trailing silence of an unfinished flow is starvation.
			rep = tr.RecoveryUnfinished(faultAt, 0.1, 0.9)
			last = tr.NumBins()
		}
		preSum += rep.PreGbps
		if rep.BlackoutDur > blackout {
			blackout = rep.BlackoutDur
		}
		if rep.RecoverDur > recov {
			recov = rep.RecoverDur
		}
		if !rep.Recovered {
			allRecovered = false
		}
		// Post-fault goodput relative to this flow's own pre-fault rate,
		// over the bins between fault end and the flow's last delivery.
		from := int(faultEnd.Picos()/tr.Bin().Picos()) + 1
		pct := 100.0
		if from < last && rep.PreGbps > 0 {
			pct = 100 * tr.MeanRate(from, last) / rep.PreGbps
		}
		if postPct < 0 || pct < postPct {
			postPct = pct
		}
	}
	if postPct < 0 {
		postPct = 0
	}
	return preSum / float64(len(r.Traces)), blackout, recov, postPct, allRecovered
}

// faultFlapSchemes is the recovery lineup: DCP over the trimming fabric
// with adaptive routing, classic lossless RoCE (GBN at line rate over
// PFC+ECMP), IRN over lossy ECMP, and RACK-TLP.
func faultFlapSchemes() []Scheme {
	return []Scheme{SchemeDCP(false), SchemePFC(), SchemeIRN(fabric.LBECMP, false), SchemeRACK()}
}

// FaultFlap injects a mid-transfer link flap on the cross link the ECMP
// hash assigns to flow 1, then measures blackout duration and
// time-to-recover per scheme. DCP's switch rescues the dead link's queued
// data as HO notifications and adaptive routing steers around the failure,
// so its flows barely notice; static-ECMP schemes blackhole the victim flow
// until the link returns and an RTO fires.
func FaultFlap(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name: "Fault flap: single cross-link down/up mid-transfer (worst flow per scheme)",
		Columns: []string{"severity", "down_us", "scheme", "pre_Gbps",
			"blackout_us", "recover_us", "post_pct", "victims", "unfinished"},
	}
	size := cfg.bytes(32 << 20)
	T := nominalT(size)
	bin := faultBin(T)
	victim := fmt.Sprintf("cross%d", fabric.ECMPIndex(1, 0, faultCross))
	sevs := severities(cfg)
	schemes := faultFlapSchemes()
	type cellR struct {
		durUs               float64
		pre, postPct        float64
		blackoutUs, recovUs float64
		victims, unfinished int
	}
	cells := grid(cfg, len(sevs), len(schemes), func(sub Config, vi, si int) cellR {
		sev, sch := sevs[vi], schemes[si]
		faultAt := T / 4
		dur := units.Scale(T/3, sev)
		horizon := faultAt + dur + 25*units.Millisecond
		r := runFaultScenario(sub, sch, size, bin, horizon, func(*topo.Network) *faults.Plan {
			return faults.NewPlan(sub.Seed).LinkDownFor(victim, faultAt, dur)
		})
		pre, blackout, recov, postPct, _ := worstRecovery(r, faultAt, faultAt+dur)
		return cellR{
			durUs: dur.Micros(), pre: pre, postPct: postPct,
			blackoutUs: blackout.Micros(), recovUs: recov.Micros(),
			victims: stats.VictimFlows(r.Sim.Col.Flows()), unfinished: r.Unfinished,
		}
	})
	for vi, sev := range sevs {
		for si, sch := range schemes {
			c := cells[vi][si]
			t.AddRow(fmt.Sprintf("%.2g", sev), c.durUs, sch.Name, c.pre,
				c.blackoutUs, c.recovUs, c.postPct, c.victims, c.unfinished)
		}
	}
	return []*stats.Table{t}
}

// FaultDegrade compares silent wire-level loss (a degrading optic: BER the
// switch cannot see) against the same loss ramp enforced visibly at the
// switch (where a trimming switch converts every victim into an HO
// notification). It is the subsystem's honest experiment: visible loss is
// where DCP's fast recovery shines; silent loss relegates everyone — DCP
// included — to coarse timeouts.
func FaultDegrade(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name: "Fault degrade: triangular loss ramp, silent wire BER vs visible switch loss (goodput, Gbps)",
		Columns: []string{"severity", "peak_loss", "mode",
			"DCP", "CX5", "IRN", "RACK-TLP"},
	}
	size := cfg.bytes(24 << 20)
	T := nominalT(size)
	start, dur := T/4, T/2
	horizon := 4*T + 200*units.Millisecond
	schemes := []Scheme{SchemeDCP(false), SchemeGBNLossy(0), SchemeIRN(0, false), SchemeRACK()}
	sevs := severities(cfg)
	modes := []string{"silent-wire", "visible-switch"}
	// One cell per (severity, mode, scheme): rows are (sev × mode), the
	// scheme axis fills the row's goodput columns.
	cells := grid(cfg, len(sevs)*len(modes), len(schemes), func(sub Config, ri, si int) float64 {
		sev, mode, sch := sevs[ri/len(modes)], modes[ri%len(modes)], schemes[si]
		peak := 0.02 * sev
		s := NewSimCfg(sub, sch, onePathNet(sch, 0))
		s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
		plan := faults.NewPlan(sub.Seed)
		if mode == "silent-wire" {
			plan.LossRamp("cross0", start, dur, peak, 8)
		} else {
			plan.SwitchLossRamp(0, start, dur, peak, 8)
			plan.SwitchLossRamp(1, start, dur, peak, 8)
		}
		mustInject(s.Net, plan)
		s.Run(horizon)
		if rec := s.Col.Flow(1); rec.Done {
			return stats.Goodput(rec.Size, rec.FCT())
		}
		return stats.Goodput(s.Net.Hosts[1].DeliveredBytes, horizon)
	})
	for ri, cell := range cells {
		sev, mode := sevs[ri/len(modes)], modes[ri%len(modes)]
		peak := 0.02 * sev
		row := []any{fmt.Sprintf("%.2g", sev), fmt.Sprintf("%.2f%%", peak*100), mode}
		for _, gp := range cell {
			row = append(row, gp)
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// FaultPauseStorm forces a continuous PFC pause storm on two adjacent cross
// links. On a PFC fabric the storm propagates: the paused egresses back up
// the switch buffer until ingress thresholds pause innocent hosts (HoL
// blocking / congestion spreading, §2.1). DCP's switch instead trims the
// backlog into HO notifications and adaptive routing steers new packets
// onto unpaused links.
func FaultPauseStorm(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name: "Fault pause storm: forced PFC pause on 2 cross links (worst flow per scheme)",
		Columns: []string{"severity", "storm_us", "scheme", "pre_Gbps",
			"blackout_us", "recover_us", "post_pct", "victims", "unfinished"},
	}
	size := cfg.bytes(32 << 20)
	T := nominalT(size)
	bin := faultBin(T)
	k := fabric.ECMPIndex(1, 0, faultCross)
	links := []string{
		fmt.Sprintf("cross%d", k),
		fmt.Sprintf("cross%d", (k+1)%faultCross),
	}
	sevs := severities(cfg)
	schemes := faultFlapSchemes()
	type cellR struct {
		durUs               float64
		pre, postPct        float64
		blackoutUs, recovUs float64
		victims, unfinished int
	}
	cells := grid(cfg, len(sevs), len(schemes), func(sub Config, vi, si int) cellR {
		sev, sch := sevs[vi], schemes[si]
		faultAt := T / 4
		dur := units.Scale(T/3, sev)
		horizon := faultAt + dur + 25*units.Millisecond
		r := runFaultScenario(sub, sch, size, bin, horizon, func(*topo.Network) *faults.Plan {
			p := faults.NewPlan(sub.Seed)
			for _, l := range links {
				p.PauseStorm(l, faultAt, dur, 0, 1)
			}
			return p
		})
		pre, blackout, recov, postPct, _ := worstRecovery(r, faultAt, faultAt+dur)
		return cellR{
			durUs: dur.Micros(), pre: pre, postPct: postPct,
			blackoutUs: blackout.Micros(), recovUs: recov.Micros(),
			victims: stats.VictimFlows(r.Sim.Col.Flows()), unfinished: r.Unfinished,
		}
	})
	for vi, sev := range sevs {
		for si, sch := range schemes {
			c := cells[vi][si]
			t.AddRow(fmt.Sprintf("%.2g", sev), c.durUs, sch.Name, c.pre,
				c.blackoutUs, c.recovUs, c.postPct, c.victims, c.unfinished)
		}
	}
	return []*stats.Table{t}
}
