package exp

import (
	"strings"
	"testing"
)

// TestEveryExperimentRunsTiny executes every registered experiment at a
// minimal scale and validates the output tables: every exhibit must
// produce named tables with consistent, non-empty rows. This is the
// end-to-end guard that cmd/dcpbench -run all cannot break silently.
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; minutes of CPU")
	}
	cfg := Config{Seed: 11, Scale: 0.02}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.Name == "" || len(tb.Columns) == 0 {
					t.Fatalf("malformed table %+v", tb)
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q has no rows", tb.Name)
				}
				for _, r := range tb.Rows {
					if len(r) != len(tb.Columns) {
						t.Fatalf("table %q: row width %d vs %d columns", tb.Name, len(r), len(tb.Columns))
					}
				}
				if !strings.Contains(tb.String(), tb.Name) {
					t.Fatal("render")
				}
			}
		})
	}
}
