package exp

import (
	"strconv"
	"strings"
	"testing"
)

// shapeCfg is small enough for test time but large enough for stable
// orderings.
func shapeCfg() Config { return Config{Seed: 42, Scale: 0.05} }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestFig10Shape asserts the paper's headline result: DCP's loss recovery
// dominates CX5 and the advantage grows with the loss rate (1.6×–72× in
// the paper).
func TestFig10Shape(t *testing.T) {
	tables := Fig10(shapeCfg())
	rows := tables[0].Rows
	if len(rows) != 7 {
		t.Fatalf("%d loss rates", len(rows))
	}
	var prevSpeed float64
	for i, r := range rows {
		cx5, dcp := parseF(t, r[1]), parseF(t, r[2])
		if dcp < cx5-1 {
			t.Fatalf("row %v: DCP below CX5", r)
		}
		if i >= 3 { // ≥0.5% loss
			speed := dcp / cx5
			if speed < 1.3 {
				t.Fatalf("row %v: speedup %.2f too small", r, speed)
			}
			if speed+0.2 < prevSpeed {
				t.Fatalf("speedup should grow with loss: %v", rows)
			}
			prevSpeed = speed
		}
		// DCP must stay within ~25% of line rate across all loss rates.
		if dcp < 70 {
			t.Fatalf("row %v: DCP goodput %.1f collapsed", r, dcp)
		}
	}
	// The paper's extreme: ≥10× at 5% loss.
	last := rows[len(rows)-1]
	if parseF(t, last[2])/parseF(t, last[1]) < 10 {
		t.Fatalf("5%% loss speedup too small: %v", last)
	}
}

// TestFig17Shape asserts the §6.3 ordering: DCP ≥ RACK-TLP ≥ IRN ≥ Timeout
// under loss.
func TestFig17Shape(t *testing.T) {
	tables := Fig17(shapeCfg())
	rows := tables[0].Rows
	for _, r := range rows[3:] { // ≥0.5% loss
		dcp, rack, irn, tmo := parseF(t, r[1]), parseF(t, r[2]), parseF(t, r[3]), parseF(t, r[4])
		if !(dcp >= rack-2) {
			t.Fatalf("DCP (%.1f) must lead RACK (%.1f): %v", dcp, rack, r)
		}
		if !(rack >= irn-2) {
			t.Fatalf("RACK (%.1f) must lead IRN (%.1f): %v", rack, irn, r)
		}
		if !(irn >= tmo-2) {
			t.Fatalf("IRN (%.1f) must lead Timeout (%.1f): %v", irn, tmo, r)
		}
	}
	last := rows[len(rows)-1]
	if parseF(t, last[1]) < 5*parseF(t, last[4]) {
		t.Fatalf("DCP must dominate the timeout scheme at 5%% loss: %v", last)
	}
}

// TestFig8Shape asserts offloaded ≈ line rate ≫ software TCP, with the
// inverse for latency.
func TestFig8Shape(t *testing.T) {
	tables := Fig8(shapeCfg())
	rows := tables[0].Rows
	vals := map[string][2]float64{}
	for _, r := range rows {
		vals[r[0]] = [2]float64{parseF(t, r[1]), parseF(t, r[2])}
	}
	gbn, dcp, tcp := vals["RNIC-GBN"], vals["DCP-RNIC"], vals["TCP"]
	if dcp[0] < 85 || gbn[0] < 85 {
		t.Fatalf("offloaded transports must reach line rate: %v", vals)
	}
	if dcp[0] < gbn[0]*0.95 || dcp[0] > gbn[0]*1.05 {
		t.Fatalf("DCP must match GBN throughput: %v", vals)
	}
	if tcp[0] > 50 {
		t.Fatalf("TCP must be CPU-bound: %v", vals)
	}
	if tcp[1] < 5*dcp[1] {
		t.Fatalf("TCP latency must dwarf RDMA latency: %v", vals)
	}
}

// TestFig11Shape asserts AR adapts to unequal paths while ECMP does not.
func TestFig11Shape(t *testing.T) {
	tables := Fig11(shapeCfg())
	rows := tables[0].Rows
	// At 1:1 both schemes are fine.
	if parseF(t, rows[0][2]) < 60 {
		t.Fatalf("DCP at 1:1 too slow: %v", rows[0])
	}
	// At 1:10 the two flows share 100+10 Gbps of cross capacity (≤55 avg);
	// DCP(AR) must stay near that bound while the colliding CX5(ECMP)
	// flows collapse on the degraded path.
	last := rows[len(rows)-1]
	cx5, dcp := parseF(t, last[1]), parseF(t, last[2])
	if dcp < 40 {
		t.Fatalf("DCP must adapt to 1:10 paths: %v", last)
	}
	if cx5 > dcp/4 {
		t.Fatalf("colliding ECMP flows should collapse: %v", last)
	}
}

// TestLongHaulShape asserts the 10 km validation: DCP holds high goodput.
func TestLongHaulShape(t *testing.T) {
	tables := LongHaul(shapeCfg())
	dcp := parseF(t, tables[0].Rows[0][1])
	if dcp < 70 {
		t.Fatalf("DCP long-haul goodput %.1f", dcp)
	}
}

// TestAblationBatchShape asserts batched RetransQ fetches beat the per-HO
// strawman.
func TestAblationBatchShape(t *testing.T) {
	tables := AblationRetransBatch(shapeCfg())
	for _, r := range tables[0].Rows {
		batched, per := parseF(t, r[1]), parseF(t, r[2])
		if batched < per {
			t.Fatalf("batched must beat per-HO at %s: %v", r[0], r)
		}
	}
	// At 10% loss the gap must be decisive (footnote 9's 4 Gbps ceiling).
	last := tables[0].Rows[len(tables[0].Rows)-1]
	if parseF(t, last[1]) < 1.5*parseF(t, last[2]) {
		t.Fatalf("per-HO fetch should bottleneck recovery: %v", last)
	}
}

// TestAblationTrackingShape asserts the §4.5 orthogonality: identical FCTs.
func TestAblationTrackingShape(t *testing.T) {
	tables := AblationTracking(shapeCfg())
	for _, r := range tables[0].Rows {
		a, b := parseF(t, r[1]), parseF(t, r[2])
		if a != b {
			t.Fatalf("tracking modes diverge at %s: %v", r[0], r)
		}
	}
}

func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Desc == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	// Every table and figure of the evaluation is present.
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5",
		"fig1", "fig2", "fig7", "fig8", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "longhaul"} {
		if !seen[id] {
			t.Fatalf("missing exhibit %s", id)
		}
	}
	if ByID("fig10") == nil || ByID("nope") != nil {
		t.Fatal("ByID")
	}
}

// TestAnalyticExperimentsRender runs all non-simulation experiments.
func TestAnalyticExperimentsRender(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig7"} {
		e := ByID(id)
		tables := e.Run(shapeCfg())
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced nothing", id)
		}
	}
}

// TestAblationBackToSenderShape asserts the §7 trade-off direction: direct
// return can only help (it shortens the notification path by up to half an
// RTT) and both variants recover fully.
func TestAblationBackToSenderShape(t *testing.T) {
	tables := AblationBackToSender(shapeCfg())
	for _, r := range tables[0].Rows {
		via, b2s := parseF(t, r[1]), parseF(t, r[2])
		if via < 50 || b2s < 50 {
			t.Fatalf("both variants must recover well: %v", r)
		}
		if b2s < via*0.95 {
			t.Fatalf("back-to-sender should not be slower: %v", r)
		}
	}
}
