package exp

import (
	"fmt"

	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// AblationWRRWeight sweeps the WRR control-queue weight under heavy incast,
// validating the §4.2 weight law: small weights leak HO packets, larger
// weights keep the control plane lossless.
func AblationWRRWeight(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: WRR weight vs HO loss (255-to-1 incast + WebSearch 0.3, 128 KB control queue)",
		Columns: []string{"wrr_weight", "HO_loss", "trimmed", "bg_P95_slowdown"},
	}
	for _, w := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		o := closOpts{
			load: 0.3, flows: cfg.flows(500),
			incastFanin: 255, incastLoad: 0.1, incastSize: 64 << 10,
			incastCount: cfg.events(6),
			wrrWeight:   w,
			// A shallow control queue makes the drain-rate law visible:
			// below the §4.2 weight the HO arrival rate outruns the
			// control queue's bandwidth share and headers drop.
			ctrlCap: 128 << 10,
		}
		s := runClos(cfg, SchemeDCP(false), o)
		c := s.Net.Counters()
		loss := 0.0
		if tot := c.DroppedHO + c.HOEnqueued; tot > 0 {
			loss = float64(c.DroppedHO) / float64(tot)
		}
		var slows []float64
		for _, f := range s.Col.FinishedFlows("bg") {
			slows = append(slows, f.Slowdown())
		}
		t.AddRow(fmt.Sprintf("%.2f", w), fmt.Sprintf("%.4f%%", loss*100), c.TrimmedPkts, stats.Percentile(slows, 95))
	}
	return []*stats.Table{t}
}

// AblationRetransBatch compares the batched RetransQ fetch against the
// per-HO strawman (challenge #1 of §4.3: two PCIe transactions per HO cap
// recovery throughput).
func AblationRetransBatch(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: RetransQ batched fetch vs per-HO fetch (goodput, Gbps)",
		Columns: []string{"loss_rate", "batched", "per-HO"},
	}
	size := cfg.bytes(40 << 20)
	for _, lr := range []float64{0.01, 0.02, 0.05, 0.1} {
		sch := SchemeDCP(false)
		batched, _ := runSingleFlow(cfg, sch, size, onePathNet(sch, lr))
		per := sch
		per.Tweak = func(e *envT) { e.DCP.PerHOFetch = true }
		perHO, _ := runSingleFlow(cfg, per, size, onePathNet(per, lr))
		t.AddRow(fmt.Sprintf("%.1f%%", lr*100), batched, perHO)
	}
	return []*stats.Table{t}
}

// AblationTracking verifies the orthogonality claim of §4.5: replacing the
// bitmap-free counters with a conventional receiver bitmap leaves behaviour
// unchanged (identical FCT under loss), while the memory model differs
// (Table 3).
func AblationTracking(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: bitmap-free counters vs receiver bitmap (FCT, ms)",
		Columns: []string{"loss_rate", "counters_fct", "bitmap_fct"},
	}
	size := cfg.bytes(20 << 20)
	for _, lr := range []float64{0, 0.01, 0.05} {
		sch := SchemeDCP(false)
		_, rec1 := runSingleFlow(cfg, sch, size, onePathNet(sch, lr))
		bm := sch
		bm.Tweak = func(e *envT) { e.DCP.ReceiverBitmap = true }
		_, rec2 := runSingleFlow(cfg, bm, size, onePathNet(bm, lr))
		t.AddRow(fmt.Sprintf("%.1f%%", lr*100),
			rec1.FCT().Millis(),
			rec2.FCT().Millis())
	}
	return []*stats.Table{t}
}

// AblationTrimThreshold sweeps the egress trimming threshold under the
// WebSearch workload.
func AblationTrimThreshold(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: trimming threshold (WebSearch 0.5, DCP)",
		Columns: []string{"threshold_KB", "trimmed", "bg_P50", "bg_P95"},
	}
	for _, th := range []int{50, 100, 200, 400, 800} {
		o := closOpts{load: 0.5, flows: cfg.flows(800), trimThreshold: th * units.KB}
		s := runClos(cfg, SchemeDCP(false), o)
		var slows []float64
		for _, f := range s.Col.FinishedFlows("bg") {
			slows = append(slows, f.Slowdown())
		}
		c := s.Net.Counters()
		t.AddRow(th, c.TrimmedPkts, stats.Percentile(slows, 50), stats.Percentile(slows, 95))
	}
	return []*stats.Table{t}
}

// AblationUncontrolledRetrans shows why retransmissions must be
// CC-regulated (challenge #2): under incast, HO-rate-driven retransmission
// aggravates congestion.
func AblationUncontrolledRetrans(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: CC-regulated vs HO-rate retransmission (incast, DCP+CC)",
		Columns: []string{"variant", "bg_P50", "bg_P99", "trimmed"},
	}
	o := closOpts{
		load: 0.5, flows: cfg.flows(600),
		incastFanin: 128, incastLoad: 0.05, incastSize: 64 << 10,
		incastCount: cfg.events(6),
	}
	for _, unc := range []bool{false, true} {
		sch := SchemeDCP(true)
		name := "CC-regulated"
		if unc {
			name = "uncontrolled"
			sch.Tweak = func(e *envT) { e.DCP.UncontrolledRetrans = true }
		}
		s := runClos(cfg, sch, o)
		var slows []float64
		for _, f := range s.Col.FinishedFlows("") {
			slows = append(slows, f.Slowdown())
		}
		c := s.Net.Counters()
		t.AddRow(name, stats.Percentile(slows, 50), stats.Percentile(slows, 99), c.TrimmedPkts)
	}
	return []*stats.Table{t}
}

// AblationBackToSender evaluates §7's rejected alternative: the switch
// bounces HO packets directly back to the sender (saving up to half an RTT
// of loss notification) at the cost of per-connection switch state.
func AblationBackToSender(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: HO via receiver vs direct back-to-sender (§7)",
		Columns: []string{"loss_rate", "via_receiver_Gbps", "back_to_sender_Gbps", "via_recv_fct_ms", "b2s_fct_ms"},
	}
	size := cfg.bytes(20 << 20)
	for _, lr := range []float64{0.01, 0.05} {
		sch := SchemeDCP(false)
		viaGp, viaRec := runSingleFlow(cfg, sch, size, onePathNet(sch, lr))
		b2s := sch
		b2sNet := func(e *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.HostsPerSwitch = 1
			c.CrossLinks = 1
			c.Switch = SwitchConfigFor(b2s)
			c.Switch.LossRate = lr
			c.Switch.DirectHOReturn = true
			return topo.Dumbbell(e, c)
		}
		b2sGp, b2sRec := runSingleFlow(cfg, b2s, size, b2sNet)
		t.AddRow(fmt.Sprintf("%.0f%%", lr*100), viaGp, b2sGp,
			viaRec.FCT().Millis(),
			b2sRec.FCT().Millis())
	}
	return []*stats.Table{t}
}

// ExtensionNDP compares DCP against the receiver-driven NDP endpoint over
// the identical trimming fabric (§7's design-space contrast). NDP repairs
// losses in about one RTT too, but its receiver pacing throttles every flow
// to pull-clock speed, while DCP recovers at CC speed — and only DCP fits
// in an RNIC (Table 2, R4).
func ExtensionNDP(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Extension: DCP vs receiver-driven NDP on the same trimming fabric (goodput, Gbps)",
		Columns: []string{"loss_rate", "DCP", "NDP"},
	}
	size := cfg.bytes(20 << 20)
	for _, lr := range []float64{0, 0.01, 0.05} {
		dcpGp, _ := runSingleFlow(cfg, SchemeDCP(false), size, onePathNet(SchemeDCP(false), lr))
		ndpGp, _ := runSingleFlow(cfg, SchemeNDP(), size, onePathNet(SchemeNDP(), lr))
		t.AddRow(fmt.Sprintf("%.0f%%", lr*100), dcpGp, ndpGp)
	}
	inc := &stats.Table{
		Name:    "Extension: 15-to-1 incast, last-flow completion (us)",
		Columns: []string{"scheme", "last_flow_us", "timeouts", "trims"},
	}
	for _, sch := range []Scheme{SchemeDCP(true), SchemeNDP()} {
		s := NewSim(cfg.Seed, sch, func(eng *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.Switch = SwitchConfigFor(sch)
			return topo.Dumbbell(eng, c)
		})
		var flows []*workload.Flow
		for i := uint64(0); i < 15; i++ {
			flows = append(flows, &workload.Flow{ID: i + 1, Src: packet.NodeID(i), Dst: 15, Size: cfg.bytes(4 << 20)})
		}
		s.ScheduleFlows(flows)
		s.Run(20 * units.Second)
		var last units.Time
		var timeouts int64
		for _, f := range s.Col.Flows() {
			if f.End > last {
				last = f.End
			}
			timeouts += f.Timeouts
		}
		inc.AddRow(sch.Name, last.Micros(), timeouts, s.Net.Counters().TrimmedPkts)
	}
	return []*stats.Table{t, inc}
}
