package exp

import (
	"fmt"

	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// AblationWRRWeight sweeps the WRR control-queue weight under heavy incast,
// validating the §4.2 weight law: small weights leak HO packets, larger
// weights keep the control plane lossless.
func AblationWRRWeight(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: WRR weight vs HO loss (255-to-1 incast + WebSearch 0.3, 128 KB control queue)",
		Columns: []string{"wrr_weight", "HO_loss", "trimmed", "bg_P95_slowdown"},
	}
	weights := []float64{0.25, 0.5, 1, 2, 4, 8}
	type cellR struct {
		loss    float64
		trimmed int64
		p95     float64
	}
	cells := sweep(cfg, len(weights), func(sub Config, i int) cellR {
		o := closOpts{
			load: 0.3, flows: sub.flows(500),
			incastFanin: 255, incastLoad: 0.1, incastSize: 64 << 10,
			incastCount: sub.events(6),
			wrrWeight:   weights[i],
			// A shallow control queue makes the drain-rate law visible:
			// below the §4.2 weight the HO arrival rate outruns the
			// control queue's bandwidth share and headers drop.
			ctrlCap: 128 << 10,
		}
		s := runClos(sub, SchemeDCP(false), o)
		c := s.Net.Counters()
		loss := 0.0
		if tot := c.DroppedHO + c.HOEnqueued; tot > 0 {
			loss = float64(c.DroppedHO) / float64(tot)
		}
		var slows []float64
		for _, f := range s.Col.FinishedFlows("bg") {
			slows = append(slows, f.Slowdown())
		}
		return cellR{loss: loss, trimmed: c.TrimmedPkts, p95: stats.Percentile(slows, 95)}
	})
	for i, w := range weights {
		c := cells[i]
		t.AddRow(fmt.Sprintf("%.2f", w), fmt.Sprintf("%.4f%%", c.loss*100), c.trimmed, c.p95)
	}
	return []*stats.Table{t}
}

// AblationRetransBatch compares the batched RetransQ fetch against the
// per-HO strawman (challenge #1 of §4.3: two PCIe transactions per HO cap
// recovery throughput).
func AblationRetransBatch(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: RetransQ batched fetch vs per-HO fetch (goodput, Gbps)",
		Columns: []string{"loss_rate", "batched", "per-HO"},
	}
	size := cfg.bytes(40 << 20)
	rates := []float64{0.01, 0.02, 0.05, 0.1}
	cells := sweep(cfg, len(rates), func(sub Config, i int) [2]float64 {
		lr := rates[i]
		sch := SchemeDCP(false)
		batched, _ := runSingleFlow(sub, sch, size, onePathNet(sch, lr))
		per := sch
		per.Tweak = func(e *envT) { e.DCP.PerHOFetch = true }
		perHO, _ := runSingleFlow(sub, per, size, onePathNet(per, lr))
		return [2]float64{batched, perHO}
	})
	for i, lr := range rates {
		t.AddRow(fmt.Sprintf("%.1f%%", lr*100), cells[i][0], cells[i][1])
	}
	return []*stats.Table{t}
}

// AblationTracking verifies the orthogonality claim of §4.5: replacing the
// bitmap-free counters with a conventional receiver bitmap leaves behaviour
// unchanged (identical FCT under loss), while the memory model differs
// (Table 3).
func AblationTracking(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: bitmap-free counters vs receiver bitmap (FCT, ms)",
		Columns: []string{"loss_rate", "counters_fct", "bitmap_fct"},
	}
	size := cfg.bytes(20 << 20)
	rates := []float64{0, 0.01, 0.05}
	cells := sweep(cfg, len(rates), func(sub Config, i int) [2]float64 {
		lr := rates[i]
		sch := SchemeDCP(false)
		_, rec1 := runSingleFlow(sub, sch, size, onePathNet(sch, lr))
		bm := sch
		bm.Tweak = func(e *envT) { e.DCP.ReceiverBitmap = true }
		_, rec2 := runSingleFlow(sub, bm, size, onePathNet(bm, lr))
		return [2]float64{rec1.FCT().Millis(), rec2.FCT().Millis()}
	})
	for i, lr := range rates {
		t.AddRow(fmt.Sprintf("%.1f%%", lr*100), cells[i][0], cells[i][1])
	}
	return []*stats.Table{t}
}

// AblationTrimThreshold sweeps the egress trimming threshold under the
// WebSearch workload.
func AblationTrimThreshold(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: trimming threshold (WebSearch 0.5, DCP)",
		Columns: []string{"threshold_KB", "trimmed", "bg_P50", "bg_P95"},
	}
	thresholds := []int{50, 100, 200, 400, 800}
	type cellR struct {
		trimmed  int64
		p50, p95 float64
	}
	cells := sweep(cfg, len(thresholds), func(sub Config, i int) cellR {
		o := closOpts{load: 0.5, flows: sub.flows(800), trimThreshold: thresholds[i] * units.KB}
		s := runClos(sub, SchemeDCP(false), o)
		var slows []float64
		for _, f := range s.Col.FinishedFlows("bg") {
			slows = append(slows, f.Slowdown())
		}
		c := s.Net.Counters()
		return cellR{trimmed: c.TrimmedPkts, p50: stats.Percentile(slows, 50), p95: stats.Percentile(slows, 95)}
	})
	for i, th := range thresholds {
		t.AddRow(th, cells[i].trimmed, cells[i].p50, cells[i].p95)
	}
	return []*stats.Table{t}
}

// AblationUncontrolledRetrans shows why retransmissions must be
// CC-regulated (challenge #2): under incast, HO-rate-driven retransmission
// aggravates congestion.
func AblationUncontrolledRetrans(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: CC-regulated vs HO-rate retransmission (incast, DCP+CC)",
		Columns: []string{"variant", "bg_P50", "bg_P99", "trimmed"},
	}
	variants := []bool{false, true}
	type cellR struct {
		p50, p99 float64
		trimmed  int64
	}
	cells := sweep(cfg, len(variants), func(sub Config, i int) cellR {
		o := closOpts{
			load: 0.5, flows: sub.flows(600),
			incastFanin: 128, incastLoad: 0.05, incastSize: 64 << 10,
			incastCount: sub.events(6),
		}
		sch := SchemeDCP(true)
		if variants[i] {
			sch.Tweak = func(e *envT) { e.DCP.UncontrolledRetrans = true }
		}
		s := runClos(sub, sch, o)
		var slows []float64
		for _, f := range s.Col.FinishedFlows("") {
			slows = append(slows, f.Slowdown())
		}
		c := s.Net.Counters()
		return cellR{p50: stats.Percentile(slows, 50), p99: stats.Percentile(slows, 99), trimmed: c.TrimmedPkts}
	})
	for i, unc := range variants {
		name := "CC-regulated"
		if unc {
			name = "uncontrolled"
		}
		t.AddRow(name, cells[i].p50, cells[i].p99, cells[i].trimmed)
	}
	return []*stats.Table{t}
}

// AblationBackToSender evaluates §7's rejected alternative: the switch
// bounces HO packets directly back to the sender (saving up to half an RTT
// of loss notification) at the cost of per-connection switch state.
func AblationBackToSender(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Ablation: HO via receiver vs direct back-to-sender (§7)",
		Columns: []string{"loss_rate", "via_receiver_Gbps", "back_to_sender_Gbps", "via_recv_fct_ms", "b2s_fct_ms"},
	}
	size := cfg.bytes(20 << 20)
	rates := []float64{0.01, 0.05}
	cells := sweep(cfg, len(rates), func(sub Config, i int) [4]float64 {
		lr := rates[i]
		sch := SchemeDCP(false)
		viaGp, viaRec := runSingleFlow(sub, sch, size, onePathNet(sch, lr))
		b2s := sch
		b2sNet := func(e *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.HostsPerSwitch = 1
			c.CrossLinks = 1
			c.Switch = SwitchConfigFor(b2s)
			c.Switch.LossRate = lr
			c.Switch.DirectHOReturn = true
			return topo.Dumbbell(e, c)
		}
		b2sGp, b2sRec := runSingleFlow(sub, b2s, size, b2sNet)
		return [4]float64{viaGp, b2sGp, viaRec.FCT().Millis(), b2sRec.FCT().Millis()}
	})
	for i, lr := range rates {
		c := cells[i]
		t.AddRow(fmt.Sprintf("%.0f%%", lr*100), c[0], c[1], c[2], c[3])
	}
	return []*stats.Table{t}
}

// ExtensionNDP compares DCP against the receiver-driven NDP endpoint over
// the identical trimming fabric (§7's design-space contrast). NDP repairs
// losses in about one RTT too, but its receiver pacing throttles every flow
// to pull-clock speed, while DCP recovers at CC speed — and only DCP fits
// in an RNIC (Table 2, R4).
func ExtensionNDP(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Extension: DCP vs receiver-driven NDP on the same trimming fabric (goodput, Gbps)",
		Columns: []string{"loss_rate", "DCP", "NDP"},
	}
	size := cfg.bytes(20 << 20)
	rates := []float64{0, 0.01, 0.05}
	lossCells := sweep(cfg, len(rates), func(sub Config, i int) [2]float64 {
		lr := rates[i]
		dcpGp, _ := runSingleFlow(sub, SchemeDCP(false), size, onePathNet(SchemeDCP(false), lr))
		ndpGp, _ := runSingleFlow(sub, SchemeNDP(), size, onePathNet(SchemeNDP(), lr))
		return [2]float64{dcpGp, ndpGp}
	})
	for i, lr := range rates {
		t.AddRow(fmt.Sprintf("%.0f%%", lr*100), lossCells[i][0], lossCells[i][1])
	}
	inc := &stats.Table{
		Name:    "Extension: 15-to-1 incast, last-flow completion (us)",
		Columns: []string{"scheme", "last_flow_us", "timeouts", "trims"},
	}
	schemes := []Scheme{SchemeDCP(true), SchemeNDP()}
	type incR struct {
		lastUs   float64
		timeouts int64
		trims    int64
	}
	incCells := sweep(cfg, len(schemes), func(sub Config, i int) incR {
		sch := schemes[i]
		s := NewSimCfg(sub, sch, func(eng *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.Switch = SwitchConfigFor(sch)
			return topo.Dumbbell(eng, c)
		})
		var flows []*workload.Flow
		for i := uint64(0); i < 15; i++ {
			flows = append(flows, &workload.Flow{ID: i + 1, Src: packet.NodeID(i), Dst: 15, Size: sub.bytes(4 << 20)})
		}
		s.ScheduleFlows(flows)
		s.Run(20 * units.Second)
		var last units.Time
		var timeouts int64
		for _, f := range s.Col.Flows() {
			if f.End > last {
				last = f.End
			}
			timeouts += f.Timeouts
		}
		return incR{lastUs: last.Micros(), timeouts: timeouts, trims: s.Net.Counters().TrimmedPkts}
	})
	for i, sch := range schemes {
		inc.AddRow(sch.Name, incCells[i].lastUs, incCells[i].timeouts, incCells[i].trims)
	}
	return []*stats.Table{t, inc}
}
