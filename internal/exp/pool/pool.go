// Package pool is the parallel execution layer for experiment sweeps: it
// runs independent simulation cells across a bounded set of worker
// goroutines and delivers their results in submission order, never in
// completion order.
//
// The determinism contract: a cell is a closure that builds and runs its
// own isolated simulation (engine, topology, collector, sinks) and shares
// no mutable state with any other cell. Under that contract the pool is
// invisible in the output — a run with workers=8 is byte-identical to
// workers=1, because every merge point (Future.Wait, Map) consumes results
// by submission index, and the cells themselves are bit-deterministic.
// The goroutines below carry //lint:allow detcheck escapes: they never
// touch simulation state directly, they only schedule whole cells, each of
// which owns its sim.Engine for the cell's entire lifetime.
//
// A Pool with one worker (or a nil *Pool) degenerates to the serial path:
// cells run inline on the caller's goroutine at submission time, with no
// goroutines, channels, or locks involved.
package pool

import "runtime"

// Pool bounds how many cells execute concurrently. The zero worker count
// and a nil *Pool both mean "serial".
type Pool struct {
	workers int
	sem     chan struct{}
}

// New returns a pool running at most workers cells at once. workers < 1 is
// clamped to 1 (the serial path).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// DefaultWorkers is the worker count the -workers flags default to: one
// per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Workers returns the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Serial reports whether the pool runs cells inline on the caller's
// goroutine (the -workers 1 fallback path).
func (p *Pool) Serial() bool { return p == nil || p.workers <= 1 }

// Future is the pending result of one submitted cell. The zero value is
// not useful; Go and GoFree construct them.
type Future[T any] struct {
	done chan struct{} // nil when the cell ran inline
	val  T
	pan  any // recovered panic, re-raised at Wait
}

// Go submits a cell for execution on a worker slot and returns its future.
// On a serial pool the cell runs inline before Go returns. Cells must be
// self-contained: they may not submit nested Go work (a cell waiting on a
// worker slot while holding one deadlocks a saturated pool); coordinators
// that fan out cells and merge belong in GoFree.
func Go[T any](p *Pool, fn func() T) *Future[T] {
	if p.Serial() {
		return &Future[T]{val: fn()}
	}
	f := &Future[T]{done: make(chan struct{})}
	//lint:allow detcheck worker goroutine runs one isolated cell; results are merged in submission order, never completion order
	go func() {
		defer close(f.done)
		//lint:allow sharecheck future completion handoff: the write happens-before close(f.done), and Wait reads only after <-f.done
		defer func() { f.pan = recover() }()
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		//lint:allow sharecheck future completion handoff: the write happens-before close(f.done), and Wait reads only after <-f.done
		f.val = fn()
	}()
	return f
}

// GoFree runs fn concurrently without occupying a worker slot. It is for
// coordinators — code that only submits cells via Go/Map and merges their
// results — so that a registry's worth of experiments can fan out without
// their bookkeeping goroutines starving the cells of slots. On a serial
// pool fn runs inline.
func GoFree[T any](p *Pool, fn func() T) *Future[T] {
	if p.Serial() {
		return &Future[T]{val: fn()}
	}
	f := &Future[T]{done: make(chan struct{})}
	//lint:allow detcheck coordinator goroutine only submits cells and merges results in submission order
	go func() {
		defer close(f.done)
		//lint:allow sharecheck future completion handoff: the write happens-before close(f.done), and Wait reads only after <-f.done
		defer func() { f.pan = recover() }()
		//lint:allow sharecheck future completion handoff: the write happens-before close(f.done), and Wait reads only after <-f.done
		f.val = fn()
	}()
	return f
}

// Wait blocks until the cell completes and returns its result. A panic
// inside the cell is re-raised here, on the waiting goroutine, so failures
// surface at the deterministic merge point rather than crashing the
// process from a worker.
func (f *Future[T]) Wait() T {
	if f.done != nil {
		<-f.done
	}
	if f.pan != nil {
		panic(f.pan)
	}
	return f.val
}

// Map runs fn for every index 0..n-1 across the pool and returns the
// results ordered by index — the deterministic merge primitive experiment
// sweeps are built on.
func Map[R any](p *Pool, n int, fn func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	if p.Serial() {
		out := make([]R, n)
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	futs := make([]*Future[R], n)
	for i := range futs {
		i := i
		futs[i] = Go(p, func() R { return fn(i) })
	}
	out := make([]R, n)
	for i, f := range futs {
		out[i] = f.Wait()
	}
	return out
}
