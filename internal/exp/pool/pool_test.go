package pool

import (
	"sync/atomic"
	"testing"
)

// TestMapOrder asserts Map returns results by submission index for every
// worker count, including heavy oversubscription.
func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		p := New(workers)
		got := Map(p, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestNilPoolIsSerial asserts the nil pool runs cells inline.
func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if !p.Serial() || p.Workers() != 1 {
		t.Fatal("nil pool must be serial with one worker")
	}
	ran := false
	f := Go(p, func() int { ran = true; return 7 })
	if !ran {
		t.Fatal("serial Go must run inline at submission")
	}
	if f.Wait() != 7 {
		t.Fatal("wrong result")
	}
}

// TestWorkerBound asserts no more than Workers() cells run concurrently.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak atomic.Int32
	Map(p, 64, func(i int) struct{} {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		// Busy-spin briefly so cells overlap; no wall clock involved.
		for j := 0; j < 1000; j++ {
			_ = j
		}
		cur.Add(-1)
		return struct{}{}
	})
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent cells, bound is %d", got, workers)
	}
}

// TestPanicPropagation asserts a panicking cell re-raises at Wait on the
// merging goroutine, for both the serial and parallel paths.
func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			if workers == 1 {
				// Serial: the panic surfaces at submission.
				Go(p, func() int { panic("boom") })
			} else {
				f := Go(p, func() int { panic("boom") })
				f.Wait()
			}
			t.Fatalf("workers=%d: panic did not propagate", workers)
		}()
	}
}

// TestGoFreeCoordinators asserts coordinators can fan out nested cells on a
// saturated pool without deadlock: more coordinators than worker slots,
// each waiting on its own batch of bounded cells.
func TestGoFreeCoordinators(t *testing.T) {
	p := New(2)
	futs := make([]*Future[int], 8)
	for i := range futs {
		i := i
		futs[i] = GoFree(p, func() int {
			parts := Map(p, 4, func(j int) int { return i*10 + j })
			sum := 0
			for _, v := range parts {
				sum += v
			}
			return sum
		})
	}
	for i, f := range futs {
		want := i*40 + 6
		if got := f.Wait(); got != want {
			t.Fatalf("coordinator %d: got %d, want %d", i, got, want)
		}
	}
}
