package exp

import (
	"testing"

	"dcpsim/internal/fabric"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/workload"
)

// runDetSim runs a small multi-flow dumbbell under a scheme and returns the
// fabric counters plus a per-flow fingerprint.
func runDetSim(seed int64, sch Scheme) (fabric.SwitchCounters, []stats.FlowRecord) {
	s := NewSim(seed, sch, func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.HostsPerSwitch = 2
		c.CrossLinks = 2
		c.Switch = SwitchConfigFor(sch)
		return topo.Dumbbell(eng, c)
	})
	s.ScheduleFlows([]*workload.Flow{
		{ID: 1, Src: 0, Dst: 2, Size: 2 << 20},
		{ID: 2, Src: 1, Dst: 3, Size: 2 << 20},
		{ID: 3, Src: 2, Dst: 0, Size: 1 << 20},
	})
	s.Run(0)
	var flows []stats.FlowRecord
	for _, f := range s.Col.Flows() {
		flows = append(flows, *f)
	}
	return s.Net.Counters(), flows
}

// TestSeedDeterminism asserts that two runs with the same seed produce
// identical switch counters and identical per-flow results — the property
// every experiment table (and the fault-injection subsystem) relies on.
func TestSeedDeterminism(t *testing.T) {
	for _, sch := range []Scheme{SchemeDCP(true), SchemePFC(), SchemeIRN(fabric.LBSpray, false)} {
		c1, f1 := runDetSim(7, sch)
		c2, f2 := runDetSim(7, sch)
		if c1 != c2 {
			t.Fatalf("%s: switch counters differ across same-seed runs:\n%+v\n%+v", sch.Name, c1, c2)
		}
		if len(f1) != len(f2) {
			t.Fatalf("%s: flow count differs", sch.Name)
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("%s: flow %d differs across same-seed runs:\n%+v\n%+v", sch.Name, f1[i].ID, f1[i], f2[i])
			}
		}
	}
}

// TestFig10Reproducible renders a cheap experiment twice with the same
// config and asserts bit-for-bit identical tables.
func TestFig10Reproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 11, Scale: 0.02}
	render := func() string {
		out := ""
		for _, tb := range Fig10(cfg) {
			out += tb.String()
		}
		return out
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("Fig10 tables differ between same-seed runs:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}
