package exp

import (
	"testing"

	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// TestSmokeDirect sends one flow between two back-to-back hosts for every
// scheme and verifies completion.
func TestSmokeDirect(t *testing.T) {
	schemes := []Scheme{SchemeDCP(false), SchemeDCP(true), SchemeIRN(0, false),
		SchemeGBNLossy(0), SchemeMPRDMA(), SchemeRACK(), SchemeTimeout(), SchemeTCP(),
		SchemeSDR()}
	for _, sch := range schemes {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			s := NewSim(1, sch, func(eng *sim.Engine) *topo.Network {
				return topo.Direct(eng, 100*units.Gbps, units.Microsecond)
			})
			f := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: 3 << 20, Start: 0}
			s.ScheduleFlows([]*workload.Flow{f})
			if left := s.Run(units.Second); left != 0 {
				t.Fatalf("%d flows unfinished at %v", left, s.Eng.Now())
			}
			rec := s.Col.Flow(1)
			gp := stats.Goodput(rec.Size, rec.FCT())
			min := 50.0
			if sch.Name == "TCP" {
				min = 20 // CPU-bound by the stack-cost model
			}
			if gp < min {
				t.Fatalf("goodput %.1f Gbps too low (fct=%v)", gp, rec.FCT())
			}
		})
	}
}

// TestSmokeSwitchTrim drives DCP through a congested single switch with
// forced loss and verifies the HO path recovers everything without
// timeouts.
func TestSmokeSwitchTrim(t *testing.T) {
	sch := SchemeDCP(false)
	s := NewSim(2, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = SwitchConfigFor(sch)
		cfg.Switch.LossRate = 0.01
		return topo.Dumbbell(eng, cfg)
	})
	f := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: 20 << 20, Start: 0}
	s.ScheduleFlows([]*workload.Flow{f})
	if left := s.Run(units.Second); left != 0 {
		t.Fatalf("%d flows unfinished at %v", left, s.Eng.Now())
	}
	rec := s.Col.Flow(1)
	if rec.RetransPkts == 0 {
		t.Fatal("expected retransmissions under 1% forced loss")
	}
	if rec.Timeouts != 0 {
		t.Fatalf("DCP should recover via HO packets, saw %d timeouts", rec.Timeouts)
	}
	c := s.Net.Counters()
	if c.TrimmedPkts == 0 {
		t.Fatal("expected trims")
	}
	t.Logf("fct=%v retrans=%d trims=%d ho=%d goodput=%.1fGbps",
		rec.FCT(), rec.RetransPkts, c.TrimmedPkts, rec.HOTriggers, stats.Goodput(rec.Size, rec.FCT()))
}
