package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"dcpsim/internal/exp/pool"
	"dcpsim/internal/stats"
)

// This file is the execution side of the experiment engine: the registry
// and every per-experiment sweep are split into pure cell-builders (the
// experiment functions construct closures; see testbed.go, clos.go,
// ablation.go, faults.go) and the sharded execution below.
//
// The merge-ordering contract: results are always delivered by
// (experiment index, cell index, sim index) — keys assigned at submission
// time on a single goroutine — never by completion time. Combined with the
// cell-isolation contract (each cell owns its engine, topology, collector
// and sinks for the cell's whole lifetime) this makes a parallel run
// byte-identical to the serial runner: tables, autopsies, stats exports.

// CellKey deterministically identifies one simulation inside a run:
// which experiment, which cell of its sweep, which sim within the cell.
// Keys depend only on submission order, never on scheduling, so they are
// stable across worker counts and give post-hoc merges (checker autopsies,
// stats) a canonical order.
type CellKey struct {
	Exp  string
	Cell int
	Sim  int
}

func (k CellKey) String() string { return fmt.Sprintf("%s/c%03d/s%02d", k.Exp, k.Cell, k.Sim) }

// Less orders keys (experiment, cell, sim).
func (k CellKey) Less(o CellKey) bool {
	if k.Exp != o.Exp {
		return k.Exp < o.Exp
	}
	if k.Cell != o.Cell {
		return k.Cell < o.Cell
	}
	return k.Sim < o.Sim
}

// cellCtx is the per-cell context a sweep threads through Config. It lives
// on exactly one worker goroutine for the duration of the cell, so its
// mutation (sim counter, sim list) needs no synchronization.
type cellCtx struct {
	exp  string
	cell int
	simN int
	sims []*Sim
}

// StatsAccumulator collects mergeable per-cell run summaries keyed by
// experiment. Cells fold their partials in from worker goroutines (the
// one synchronization point of the engine); because RunSummary.Merge is
// commutative — property-tested in internal/stats — the accumulated state
// is independent of completion order, and the CSV export sorts keys, so
// the output is byte-identical across worker counts.
type StatsAccumulator struct {
	mu    sync.Mutex
	byExp map[string]*stats.RunSummary
}

// NewStatsAccumulator returns an empty accumulator.
func NewStatsAccumulator() *StatsAccumulator {
	return &StatsAccumulator{byExp: make(map[string]*stats.RunSummary)}
}

func (a *StatsAccumulator) add(exp string, s *stats.RunSummary) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.byExp[exp]
	if cur == nil {
		cur = &stats.RunSummary{}
		a.byExp[exp] = cur
	}
	cur.Merge(s)
}

// Summary returns the merged summary for one experiment (nil if absent).
func (a *StatsAccumulator) Summary(exp string) *stats.RunSummary {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byExp[exp]
}

// WriteCSV renders every experiment's summary plus a total row, sorted by
// experiment id — byte-stable for a given simulated workload regardless
// of worker count.
func (a *StatsAccumulator) WriteCSV(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := fmt.Fprintln(w, stats.RunSummaryCSVHeader); err != nil {
		return err
	}
	ids := make([]string, 0, len(a.byExp))
	for id := range a.byExp {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var total stats.RunSummary
	for _, id := range ids {
		s := a.byExp[id]
		total.Merge(s)
		if err := s.WriteCSVRow(w, id); err != nil {
			return err
		}
	}
	return total.WriteCSVRow(w, "TOTAL")
}

// sweep is the cell-execution primitive every simulation experiment runs
// its parameter sweep through: n independent cells, each handed a Config
// carrying a fresh single-goroutine cell context, executed across the
// configured pool, results returned in cell-index order. After a cell
// returns, the sims it constructed are digested into the run's stats
// accumulator and released.
func sweep[R any](cfg Config, n int, cell func(Config, int) R) []R {
	// Claim a contiguous block of cell numbers for this sweep. cellSeq is
	// owned by the experiment's coordinator goroutine (nil when the
	// experiment is driven directly without WithExperiment/RunRegistry), so
	// consecutive sweeps in one experiment never reuse a CellKey.
	base := 0
	if cfg.cellSeq != nil {
		base = *cfg.cellSeq
		*cfg.cellSeq += n
	}
	return pool.Map(cfg.pool, n, func(i int) R {
		sub := cfg
		sub.cell = &cellCtx{exp: cfg.expID, cell: base + i}
		r := cell(sub, i)
		if cfg.Stats != nil {
			var sum stats.RunSummary
			for _, s := range sub.cell.sims {
				sum.AddCollector(s.Col)
				sum.Events += int64(s.Eng.Executed)
			}
			cfg.Stats.add(cfg.expID, &sum)
		}
		sub.cell.sims = nil
		return r
	})
}

// Cell runs fn as one explicitly-indexed, isolated sweep cell: fn's
// Config carries a fresh cell context, so every sim it builds through
// NewSimCfg gets the deterministic CellKey {cfg's experiment id, cell,
// sim#}, cfg.Hook fires per sim, and the sims' collectors are digested
// into cfg.Stats when fn returns — exactly the contract sweep() gives
// registry cells. It is the compilation hook internal/campaign lowers
// declarative scenario cells onto: the campaign enumerates its own cell
// indices (transport × sweep-axis cross product) and calls Cell once per
// index from a pool worker, keeping campaign output on the same
// CellKey-ordered deterministic-merge contract as the registry. The
// Config must be labelled via WithExperiment first.
func Cell(cfg Config, cell int, fn func(Config)) {
	sub := cfg
	sub.cell = &cellCtx{exp: cfg.expID, cell: cell}
	fn(sub)
	if cfg.Stats != nil {
		var sum stats.RunSummary
		for _, s := range sub.cell.sims {
			sum.AddCollector(s.Col)
			sum.Events += int64(s.Eng.Executed)
		}
		cfg.Stats.add(cfg.expID, &sum)
	}
	sub.cell.sims = nil
}

// grid flattens a two-axis sweep (outer × inner cells) and returns results
// as [outer][inner], preserving deterministic ordering on both axes.
func grid[R any](cfg Config, outer, inner int, cell func(Config, int, int) R) [][]R {
	flat := sweep(cfg, outer*inner, func(sub Config, i int) R {
		return cell(sub, i/inner, i%inner)
	})
	out := make([][]R, outer)
	for i := range out {
		out[i] = flat[i*inner : (i+1)*inner]
	}
	return out
}

// Result is one experiment's rendered output.
type Result struct {
	ID     string
	Desc   string
	Tables []*stats.Table
}

// RunRegistry executes the given experiments through cfg's worker pool:
// each experiment fans its sweep cells into the shared pool (bounded by
// WithWorkers), experiments themselves overlap via slot-free coordinator
// goroutines, and results are returned in input order — never completion
// order — so the rendered output is byte-identical to running the
// experiments one by one on a single goroutine. With a serial Config
// (no WithWorkers, or WithWorkers(1)) everything runs inline on the
// caller's goroutine.
func RunRegistry(cfg Config, exps []Experiment) []Result {
	futs := make([]*pool.Future[[]*stats.Table], len(exps))
	for i, e := range exps {
		e := e
		sub := cfg.WithExperiment(e.ID)
		futs[i] = pool.GoFree(cfg.pool, func() []*stats.Table { return e.Run(sub) })
	}
	out := make([]Result, len(exps))
	for i, f := range futs {
		out[i] = Result{ID: exps[i].ID, Desc: exps[i].Desc, Tables: f.Wait()}
	}
	return out
}
