package exp

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"dcpsim/internal/obs"
	"dcpsim/internal/obs/flight"
)

// equivalenceIDs is the reduced registry the parallel-vs-serial tests run:
// cheap experiments covering both testbed sweeps and fault scenarios. The
// -race CI leg runs the same set in short mode with a smaller matrix.
func equivalenceIDs(short bool) []string {
	if short {
		return []string{"fig8", "fig10", "longhaul", "ab-track", "fault-flap"}
	}
	return []string{
		"fig8", "fig10", "fig11", "fig12", "longhaul", "fig17",
		"ab-batch", "ab-track", "ab-b2s", "ext-ndp",
		"wan-crossover", "ml-collective",
		"fault-flap", "fault-pause",
	}
}

func equivalenceExps(t *testing.T, short bool) []Experiment {
	t.Helper()
	var exps []Experiment
	for _, id := range equivalenceIDs(short) {
		e := ByID(id)
		if e == nil {
			t.Fatalf("unknown experiment id %q", id)
		}
		exps = append(exps, *e)
	}
	return exps
}

// checkedRun is one full registry execution with every observer the engine
// supports attached: rendered tables, per-cell flight-recorder autopsies
// merged in CellKey order, and the mergeable stats CSV.
type checkedRun struct {
	tables    string
	autopsies string
	csv       string
}

// runEquivalence executes the reduced registry at the given worker count
// with per-cell checkers and the stats accumulator attached.
func runEquivalence(t *testing.T, workers int, short bool) checkedRun {
	t.Helper()
	var mu sync.Mutex
	checkers := map[CellKey]*flight.Checker{}
	cfg := Config{Seed: 11, Scale: 0.02}.WithWorkers(workers)
	cfg.Stats = NewStatsAccumulator()
	cfg.Hook = func(key CellKey, s *Sim) {
		tr := obs.NewTracer()
		tr.SetLimit(1)
		ck := flight.New(flight.Config{})
		tr.Tee(ck)
		s.Attach(tr, nil)
		mu.Lock()
		defer mu.Unlock()
		if _, dup := checkers[key]; dup {
			t.Errorf("duplicate CellKey %v", key)
		}
		checkers[key] = ck
	}

	results := RunRegistry(cfg, equivalenceExps(t, short))

	var out checkedRun
	var tb strings.Builder
	for _, r := range results {
		tb.WriteString("### " + r.ID + "\n")
		for _, tab := range r.Tables {
			tb.WriteString(tab.String())
			tb.WriteString("\n")
		}
	}
	out.tables = tb.String()

	// Merge autopsies post-hoc in canonical CellKey order — the merged
	// document must not depend on which worker finished first.
	keys := make([]CellKey, 0, len(checkers))
	for k := range checkers {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	var ab strings.Builder
	for _, k := range keys {
		ab.WriteString(k.String())
		ab.WriteString(" ")
		if err := checkers[k].Finish().WriteJSON(&ab); err != nil {
			t.Fatal(err)
		}
		ab.WriteString("\n")
	}
	out.autopsies = ab.String()

	var cb strings.Builder
	if err := cfg.Stats.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	out.csv = cb.String()
	return out
}

// TestParallelMatchesSerial is the engine's core acceptance test: the same
// registry run serially (-workers 1) and across 8 workers must produce
// byte-identical rendered tables, byte-identical CellKey-ordered autopsy
// JSON, and a byte-identical stats CSV.
func TestParallelMatchesSerial(t *testing.T) {
	short := testing.Short()
	serial := runEquivalence(t, 1, short)
	parallel := runEquivalence(t, 8, short)

	if serial.tables != parallel.tables {
		t.Errorf("rendered tables differ between workers=1 and workers=8:\n%s",
			firstDiff(serial.tables, parallel.tables))
	}
	if serial.autopsies != parallel.autopsies {
		t.Errorf("autopsy JSON differs between workers=1 and workers=8:\n%s",
			firstDiff(serial.autopsies, parallel.autopsies))
	}
	if serial.csv != parallel.csv {
		t.Errorf("stats CSV differs between workers=1 and workers=8:\n%s",
			firstDiff(serial.csv, parallel.csv))
	}
	if serial.tables == "" || serial.autopsies == "" || serial.csv == "" {
		t.Fatal("equivalence run produced empty artifacts — the comparison is vacuous")
	}
}

// TestWorkerCountInvariance sweeps additional worker counts over a smaller
// matrix: every count must reproduce the serial bytes.
func TestWorkerCountInvariance(t *testing.T) {
	serial := runEquivalence(t, 1, true)
	for _, workers := range []int{2, 3, 16} {
		got := runEquivalence(t, workers, true)
		if got.tables != serial.tables || got.autopsies != serial.autopsies || got.csv != serial.csv {
			t.Errorf("workers=%d diverged from serial output", workers)
		}
	}
}

// firstDiff locates the first differing line of two strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return "line " + itoa(i+1) + ":\n  a: " + x + "\n  b: " + y
		}
	}
	return "(no line diff — lengths differ?)"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
