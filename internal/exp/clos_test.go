package exp

import (
	"testing"

	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// TestClosIntegrationTiny runs a miniature WebSearch workload over the full
// 256-host CLOS for the three main scheme families and checks the
// invariants each one promises. Scale is small to keep the suite fast; the
// orderings themselves are asserted by the shape tests and EXPERIMENTS.md.
func TestClosIntegrationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("CLOS integration is seconds-long")
	}
	cfg := Config{Seed: 42, Scale: 0.02}
	o := closOpts{load: 0.3, flows: 60}

	t.Run("DCP", func(t *testing.T) {
		s := runClos(cfg, SchemeDCP(false), o)
		if u := s.Col.CountUnfinished(); u != 0 {
			t.Fatalf("%d flows unfinished", u)
		}
		var timeouts int64
		for _, f := range s.Col.FinishedFlows("bg") {
			timeouts += f.Timeouts
		}
		if timeouts != 0 {
			t.Fatalf("DCP should not time out at load 0.3 (Fig 2), saw %d", timeouts)
		}
		c := s.Net.Counters()
		if c.DroppedHO != 0 {
			t.Fatalf("lossless control plane violated: %d HO drops", c.DroppedHO)
		}
	})

	t.Run("PFC", func(t *testing.T) {
		s := runClos(cfg, SchemePFC(), o)
		if u := s.Col.CountUnfinished(); u != 0 {
			t.Fatalf("%d flows unfinished", u)
		}
		c := s.Net.Counters()
		if c.DroppedData != 0 {
			t.Fatalf("PFC fabric dropped %d packets", c.DroppedData)
		}
		for _, f := range s.Col.FinishedFlows("bg") {
			if f.RetransPkts != 0 {
				t.Fatal("lossless GBN must not retransmit")
			}
		}
	})

	t.Run("IRN", func(t *testing.T) {
		s := runClos(cfg, SchemeIRN(1, false), o)
		if u := s.Col.CountUnfinished(); u != 0 {
			t.Fatalf("%d flows unfinished", u)
		}
	})

	t.Run("MP-RDMA", func(t *testing.T) {
		s := runClos(cfg, SchemeMPRDMA(), o)
		if u := s.Col.CountUnfinished(); u != 0 {
			t.Fatalf("%d flows unfinished", u)
		}
		if s.Net.Counters().DroppedData != 0 {
			t.Fatal("MP-RDMA runs over a lossless fabric")
		}
	})
}

// TestIdenticalWorkloadAcrossSchemes guards the experimental methodology:
// every scheme must be offered byte-identical flow sets.
func TestIdenticalWorkloadAcrossSchemes(t *testing.T) {
	cfg := Config{Seed: 7, Scale: 0.02}
	o := closOpts{load: 0.3, flows: 50}
	sig := func(flows []*stats.FlowRecord) []int64 {
		var out []int64
		for _, f := range flows {
			out = append(out, f.Size, int64(f.Src), int64(f.Dst), int64(f.Start))
		}
		return out
	}
	a := runClos(cfg, SchemeDCP(false), o)
	b := runClos(cfg, SchemePFC(), o)
	sa, sb := sig(a.Col.Flows()), sig(b.Col.Flows())
	if len(sa) != len(sb) {
		t.Fatal("different flow counts")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("workloads diverge at %d", i)
		}
	}
}

// TestIdealFCTSane checks the slowdown denominator: at 100 Gbps, a 1 MB
// transfer's ideal FCT is ~86 µs (serialization + overhead + half RTT).
func TestIdealFCTSane(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.02}
	s := runClos(cfg, SchemeDCP(false), closOpts{load: 0.1, flows: 40})
	for _, f := range s.Col.Flows() {
		if f.IdealFCT <= 0 {
			t.Fatal("ideal FCT must be positive")
		}
		if f.Done && f.FCT() < f.IdealFCT/2 {
			t.Fatalf("flow %d finished at %v, below half-ideal %v — denominator wrong",
				f.ID, f.FCT(), f.IdealFCT)
		}
	}
}

// TestRunCoflowDependencies checks the collective scheduler: step k+1 must
// not start before every flow of step k completed.
func TestRunCoflowDependencies(t *testing.T) {
	sch := SchemeDCP(false)
	s := NewSim(3, sch, func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.Switch = SwitchConfigFor(sch)
		return topo.Dumbbell(eng, c)
	})
	members := []packet.NodeID{0, 4, 8, 12}
	cf := workload.RingAllReduce(members, 8<<20, 0, 1)
	var jct units.Time
	s.RunCoflow(cf, 0, func(at units.Time) { jct = at })
	if left := s.Run(10 * units.Second); left != 0 {
		t.Fatalf("%d flows unfinished", left)
	}
	if jct == 0 {
		t.Fatal("completion callback not invoked")
	}
	// Verify the barrier: the earliest start of step k+1 equals the latest
	// end of step k.
	for i := 1; i < len(cf.Steps); i++ {
		var prevEnd, thisStart units.Time
		for _, f := range cf.Steps[i-1] {
			if r := s.Col.Flow(f.ID); r.End > prevEnd {
				prevEnd = r.End
			}
		}
		thisStart = units.Time(1) << 62
		for _, f := range cf.Steps[i] {
			if r := s.Col.Flow(f.ID); r.Start < thisStart {
				thisStart = r.Start
			}
		}
		if thisStart < prevEnd {
			t.Fatalf("step %d started at %v before step %d finished at %v",
				i, thisStart, i-1, prevEnd)
		}
	}
}
