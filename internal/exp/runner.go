// Package exp defines one reproducible experiment per table and figure of
// the paper's evaluation, built on the simulator substrate. Each experiment
// returns printable tables; cmd/dcpbench and the root bench_test.go drive
// them.
package exp

import (
	"fmt"

	"dcpsim/internal/cc"
	"dcpsim/internal/exp/pool"
	"dcpsim/internal/fabric"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/transport/dcp"
	"dcpsim/internal/transport/gbn"
	"dcpsim/internal/transport/irn"
	"dcpsim/internal/transport/mprdma"
	"dcpsim/internal/transport/ndp"
	"dcpsim/internal/transport/racktlp"
	"dcpsim/internal/transport/sdr"
	"dcpsim/internal/transport/tcpish"
	"dcpsim/internal/transport/timeoutonly"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Config scales experiments. Scale 1.0 approximates paper-sized runs; the
// default benchmarks use smaller scales for wall-clock sanity. Every
// stochastic choice derives from Seed.
type Config struct {
	Seed  int64
	Scale float64
	// FaultSeverity, when > 0, pins the fault-injection experiments to a
	// single severity multiplier instead of their built-in sweep
	// (cmd/dcpbench -fault-severity).
	FaultSeverity float64

	// Hook, when non-nil, is called with every Sim a sweep cell constructs,
	// keyed by its deterministic CellKey. Unlike the global NewSimHook it is
	// safe under parallel execution: the hook may run concurrently from
	// several cells, but each call's key is assigned at submission time, so
	// hook state indexed by CellKey can be merged in canonical order
	// afterwards. Hooks must only attach observing sinks.
	Hook func(CellKey, *Sim)
	// Stats, when non-nil, accumulates a mergeable RunSummary per experiment
	// from every cell's collectors (cmd/dcpbench -stats-csv).
	Stats *StatsAccumulator

	// pool is the execution pool sweep cells run on; nil means serial.
	pool *pool.Pool
	// expID is the id of the experiment this Config was handed to, set by
	// RunRegistry (or WithExperiment) before Run is called.
	expID string
	// cellSeq numbers cells across every sweep an experiment issues, so an
	// experiment with two consecutive sweeps (e.g. ext-ndp) still hands out
	// unique CellKeys. Only the experiment's own coordinator goroutine
	// touches it; WithExperiment allocates it.
	cellSeq *int
	// cell is the per-cell context sweep installs; NewSimCfg registers the
	// sims it builds here.
	cell *cellCtx
}

// WithWorkers returns a copy of c whose sweeps execute across n workers
// (n <= 1 selects the inline serial path). The worker count never affects
// output bytes, only wall-clock time.
func (c Config) WithWorkers(n int) Config {
	if n <= 1 {
		c.pool = nil
	} else {
		c.pool = pool.New(n)
	}
	return c
}

// Workers reports the concurrency bound sweeps run at (1 = serial).
func (c Config) Workers() int { return c.pool.Workers() }

// WithPool returns a copy of c whose sweeps run on a caller-owned pool.
// The campaign runner uses it to shard many experiment units over ONE
// worker budget: every unit's Config shares the pool, so a campaign with
// -workers 8 runs at most 8 cells at once no matter how many experiments
// it spans. A nil pool selects the inline serial path.
func (c Config) WithPool(p *pool.Pool) Config {
	c.pool = p
	return c
}

// WithExperiment returns a copy of c labelled with an experiment id, the
// first component of the CellKeys its sweeps assign. RunRegistry does this
// automatically; tests driving a single Experiment.Run directly use it to
// get fully-qualified keys.
func (c Config) WithExperiment(id string) Config {
	c.expID = id
	c.cellSeq = new(int)
	return c
}

// DefaultConfig returns a medium-scale configuration.
func DefaultConfig() Config { return Config{Seed: 42, Scale: 0.25} }

func (c Config) flows(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 40 {
		n = 40
	}
	return n
}

// events scales discrete event counts (e.g. incast bursts) without the
// 40-flow floor that background workloads use.
func (c Config) events(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) bytes(base int64) int64 {
	b := int64(float64(base) * c.Scale)
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

// Scheme bundles a transport with the fabric configuration it assumes.
type Scheme struct {
	Name     string
	Factory  base.Factory
	Lossless bool            // PFC fabric (no drops, pause instead)
	Trimming bool            // DCP switch behaviour
	LB       fabric.LBPolicy // load balancing in the fabric
	CC       cc.Factory      // nil → BDP window
	ECN      bool            // the transport consumes ECN marks itself
	// Tweak optionally adjusts the transport environment.
	Tweak func(*base.Env)
}

// The paper's scheme lineup.
func SchemeDCP(withCC bool) Scheme {
	s := Scheme{Name: "DCP(AR)", Factory: dcp.New, Trimming: true, LB: fabric.LBAdaptive}
	if withCC {
		s.Name = "DCP+CC(AR)"
		s.CC = cc.NewDCQCNWindowFactory(cc.DefaultDCQCNConfig(), 1)
	}
	return s
}

func SchemeIRN(lb fabric.LBPolicy, withCC bool) Scheme {
	s := Scheme{Name: "IRN(" + lb.String() + ")", Factory: irn.New, LB: lb}
	if withCC {
		s.Name = "IRN+CC(" + lb.String() + ")"
		s.CC = cc.NewDCQCNWindowFactory(cc.DefaultDCQCNConfig(), 1)
	}
	return s
}

// SchemePFC is traditional lossless RoCE: GBN NICs sending at line rate
// (no window — PFC backpressure is the only brake, which is exactly what
// produces HoL blocking and congestion spreading) over a PFC fabric with
// ECMP.
func SchemePFC() Scheme {
	return Scheme{Name: "PFC(ECMP)", Factory: gbn.New, Lossless: true, LB: fabric.LBECMP,
		CC: cc.NewLineRateFactory()}
}

// SchemeGBNLossy is a CX5-style NIC on a lossy fabric (the §6.1 testbed
// comparisons).
func SchemeGBNLossy(lb fabric.LBPolicy) Scheme {
	return Scheme{Name: "CX5(" + lb.String() + ")", Factory: gbn.New, LB: lb}
}

// SchemeMPRDMA runs over a PFC fabric (Table 2: R1 unmet) with ECMP hashing
// that its per-packet PathKey turns into multipath.
func SchemeMPRDMA() Scheme {
	return Scheme{Name: "MP-RDMA", Factory: mprdma.New, Lossless: true, LB: fabric.LBECMP, ECN: true}
}

func SchemeRACK() Scheme {
	return Scheme{Name: "RACK-TLP", Factory: racktlp.New, LB: fabric.LBECMP}
}

func SchemeTimeout() Scheme {
	return Scheme{Name: "Timeout", Factory: timeoutonly.New, LB: fabric.LBECMP}
}

func SchemeTCP() Scheme {
	return Scheme{Name: "TCP", Factory: tcpish.New, LB: fabric.LBECMP}
}

// SchemeNDP is the receiver-driven extension (§7 / Table 2): NDP endpoints
// over the same trimming fabric DCP uses, with per-packet spraying.
func SchemeNDP() Scheme {
	return Scheme{Name: "NDP", Factory: ndp.New, Trimming: true, LB: fabric.LBAdaptive}
}

// SchemeSDR is the SDR-RDMA-style receiver-driven SACK-bitmap baseline: a
// fixed sliding-window bitmap at both endpoints over a plain lossy ECMP
// fabric — the bitmap-tracking design point the WAN and ML-collective
// families compare against DCP's counters.
func SchemeSDR() Scheme {
	return Scheme{Name: "SDR", Factory: sdr.New, LB: fabric.LBECMP}
}

// schemeCatalog maps the campaign-facing transport names to scheme
// constructors. Names are deliberately short and stable — campaign
// documents reference them — while Scheme.Name keeps the paper's display
// form ("DCP(AR)", "CX5(ECMP)", ...).
var schemeCatalog = []struct {
	name string
	mk   func() Scheme
}{
	{"dcp", func() Scheme { return SchemeDCP(false) }},
	{"dcp+cc", func() Scheme { return SchemeDCP(true) }},
	{"cx5", func() Scheme { return SchemeGBNLossy(fabric.LBECMP) }},
	{"gbn", func() Scheme { return SchemeGBNLossy(fabric.LBECMP) }},
	{"irn", func() Scheme { return SchemeIRN(fabric.LBECMP, false) }},
	{"irn+cc", func() Scheme { return SchemeIRN(fabric.LBECMP, true) }},
	{"pfc", SchemePFC},
	{"mprdma", SchemeMPRDMA},
	{"rack-tlp", SchemeRACK},
	{"timeout", SchemeTimeout},
	{"tcp", SchemeTCP},
	{"ndp", SchemeNDP},
	{"sdr", SchemeSDR},
}

// SchemeByName resolves a campaign transport name ("dcp", "cx5", "irn",
// "pfc", "mprdma", "rack-tlp", "timeout", "tcp", "ndp", plus the "+cc"
// variants) to its Scheme. The lookup is the single point campaign
// documents bind transports through, so an unknown name is a document
// error, not a silent default.
func SchemeByName(name string) (Scheme, bool) {
	for _, e := range schemeCatalog {
		if e.name == name {
			return e.mk(), true
		}
	}
	return Scheme{}, false
}

// SchemeNames lists the names SchemeByName accepts, in catalog order.
func SchemeNames() []string {
	out := make([]string, len(schemeCatalog))
	for i, e := range schemeCatalog {
		out[i] = e.name
	}
	return out
}

// envT aliases the transport environment for concise Tweak closures.
type envT = base.Env

// Sim owns one simulation run: engine, network, collector, environment.
type Sim struct {
	Eng *sim.Engine
	Net *topo.Network
	Col *stats.Collector
	Env *base.Env

	// Scheme is the transport scheme name this sim was wired with
	// (NewSimCfg records it); the perf profiler groups attribution by it.
	Scheme string

	listeners map[uint64]func(*stats.FlowRecord)
}

// NewSimHook, when non-nil, is called with every Sim constructed by NewSim
// before any flow is scheduled. It is the opt-in attachment point for
// run-wide observers — the flight-recorder tests use it to Tee an
// invariant checker onto every experiment in the registry without the
// experiments knowing. Hooks must only attach observing sinks: the
// determinism contract requires a hooked run to stay bit-identical to an
// unhooked one.
//
// The global hook is for SERIAL runs only: it carries no cell identity and
// typically closes over shared state. Parallel runs attach observers
// through Config.Hook, which is keyed by deterministic CellKeys.
var NewSimHook func(*Sim)

// NewSim wires a network built by build with the scheme's transport. It is
// the context-free entry point the transport tests use; experiment sweeps
// call NewSimCfg so their sims register with the cell context.
func NewSim(seed int64, sch Scheme, build func(*sim.Engine) *topo.Network) *Sim {
	return NewSimCfg(Config{Seed: seed}, sch, build)
}

// NewSimCfg wires a network built by build with the scheme's transport,
// seeded from cfg, and registers the sim with the enclosing sweep cell:
// the cell context assigns the sim's deterministic CellKey, fires
// cfg.Hook, and later digests the sim's collector into the run's stats
// accumulator. Outside a sweep (no cell context) it behaves exactly like
// NewSim.
func NewSimCfg(cfg Config, sch Scheme, build func(*sim.Engine) *topo.Network) *Sim {
	seed := cfg.Seed
	eng := sim.NewEngine(seed)
	net := build(eng)
	col := stats.NewCollector()
	env := &base.Env{Collector: col, BaseRTT: net.BaseRTT}
	if sch.CC != nil {
		env.CC = sch.CC
	}
	if sch.Tweak != nil {
		env.Defaults()
		sch.Tweak(env)
	}
	net.Install(sch.Factory, env)
	s := &Sim{Eng: eng, Net: net, Col: col, Env: env, Scheme: sch.Name,
		listeners: make(map[uint64]func(*stats.FlowRecord))}
	col.OnDone = func(f *stats.FlowRecord) {
		if cb := s.listeners[f.ID]; cb != nil {
			delete(s.listeners, f.ID)
			cb(f)
		}
	}
	if NewSimHook != nil {
		NewSimHook(s)
	}
	if ctx := cfg.cell; ctx != nil {
		key := CellKey{Exp: ctx.exp, Cell: ctx.cell, Sim: ctx.simN}
		ctx.simN++
		ctx.sims = append(ctx.sims, s)
		if cfg.Hook != nil {
			cfg.Hook(key, s)
		}
	}
	return s
}

// Attach wires the observability sinks into the run: the tracer reaches the
// transport environment, every switch and host NIC, and future fault
// injections; the metrics registry (when non-nil) gains the fabric gauges,
// engine self-profiling, and starts its probe. Either argument may be nil.
// Sinks observe only — they never mutate simulation state, so an attached
// run produces bit-identical flow results to an unobserved one. Call before
// Run.
func (s *Sim) Attach(tr *obs.Tracer, m *obs.Metrics) {
	s.Env.Trace = tr
	s.Env.Metrics = m
	s.Net.Observe(tr, m)
	if m != nil {
		m.ProfileEngine()
		m.Start()
	}
}

// SwitchConfigFor returns the fabric config matching a scheme.
func SwitchConfigFor(sch Scheme) fabric.SwitchConfig {
	cfg := fabric.DefaultSwitchConfig()
	cfg.LB = sch.LB
	cfg.Trimming = sch.Trimming
	if sch.Lossless {
		cfg.Lossless = true
		cfg.Trimming = false
	}
	if sch.CC == nil && !sch.ECN {
		// Without DCQCN nobody consumes ECN marks.
		cfg.ECNKmax = 0
	}
	return cfg
}

// IdealFCT estimates the unloaded completion time of a flow: full-rate
// serialization with per-packet header overhead plus one-way base delay.
func (s *Sim) IdealFCT(f *workload.Flow) units.Time {
	n := int64(base.NumPackets(f.Size, packet.DefaultMTU))
	wire := f.Size + n*(packet.DataHeaderSize+packet.RETHSize)
	return units.TxTime(int(wire), s.Net.HostRate) + s.Net.BaseRTT/2
}

// ScheduleFlows registers records and schedules StartFlow calls.
func (s *Sim) ScheduleFlows(flows []*workload.Flow) {
	for _, f := range flows {
		f := f
		rec := s.Col.Add(f.ID, f.Src, f.Dst, f.Size, f.Start)
		rec.Class = f.Class
		rec.Group = f.Group
		rec.IdealFCT = s.IdealFCT(f)
		s.Eng.AtComp(f.Start, sim.CompWorkload, func() {
			s.Net.Transports[f.Src].StartFlow(f)
		})
	}
}

// OnFlowDone registers a one-shot completion listener.
func (s *Sim) OnFlowDone(id uint64, cb func(*stats.FlowRecord)) {
	s.listeners[id] = cb
}

// RunCoflow schedules a dependency-structured coflow starting at start and
// invokes done with the completion time of the last flow.
func (s *Sim) RunCoflow(cf *workload.Coflow, start units.Time, done func(at units.Time)) {
	var startStep func(i int, at units.Time)
	startStep = func(i int, at units.Time) {
		if i >= len(cf.Steps) {
			if done != nil {
				done(at)
			}
			return
		}
		step := cf.Steps[i]
		remaining := len(step)
		var last units.Time
		for _, f := range step {
			f := f
			f.Start = at
			rec := s.Col.Add(f.ID, f.Src, f.Dst, f.Size, at)
			rec.Class = f.Class
			rec.Group = f.Group
			rec.IdealFCT = s.IdealFCT(f)
			s.OnFlowDone(f.ID, func(r *stats.FlowRecord) {
				remaining--
				if r.End > last {
					last = r.End
				}
				if remaining == 0 {
					s.Col.AddStepTime(last - at)
					startStep(i+1, last)
				}
			})
			s.Eng.AtComp(at, sim.CompWorkload, func() { s.Net.Transports[f.Src].StartFlow(f) })
		}
	}
	startStep(0, start)
}

// Run executes until all registered flows finish or maxTime elapses;
// returns the number of unfinished flows.
func (s *Sim) Run(maxTime units.Time) int {
	for {
		s.Eng.Run(maxTime)
		if s.Col.AllDone() {
			return 0
		}
		if maxTime > 0 && s.Eng.Now() >= maxTime {
			return s.Col.CountUnfinished()
		}
		if s.Eng.Pending() == 0 {
			return s.Col.CountUnfinished()
		}
	}
}

// HostIDs returns the node ids of all hosts.
func (s *Sim) HostIDs() []packet.NodeID {
	ids := make([]packet.NodeID, len(s.Net.Hosts))
	for i, h := range s.Net.Hosts {
		ids[i] = h.ID()
	}
	return ids
}

// slowdownSeries renders P50/P95/P99 slowdowns per size bucket for a set of
// scheme results over identical workloads.
func slowdownSeries(name string, buckets int, results map[string][]*stats.FlowRecord, order []string) *stats.Table {
	t := &stats.Table{Name: name}
	t.Columns = []string{"avg_size_KB"}
	for _, s := range order {
		t.Columns = append(t.Columns, s+"_P50", s+"_P95", s+"_P99")
	}
	series := make(map[string][]stats.SizeBucket)
	var n int
	for _, sname := range order {
		b := stats.BucketizeBySize(results[sname], buckets, (*stats.FlowRecord).Slowdown)
		series[sname] = b
		if len(b) > n {
			n = len(b)
		}
	}
	for i := 0; i < n; i++ {
		row := []any{""}
		for _, sname := range order {
			b := series[sname]
			if i >= len(b) {
				row = append(row, "", "", "")
				continue
			}
			if row[0] == "" {
				row[0] = fmt.Sprintf("%.1f", b[i].AvgSizeKB)
			}
			row = append(row, b[i].P50, b[i].P95, b[i].P99)
		}
		t.Rows = append(t.Rows, toStrings(row))
	}
	return t
}

func toStrings(cells []any) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.3g", v)
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	return out
}
