package exp

import (
	"fmt"

	"dcpsim/internal/faults"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// The WAN crossover family: DCP's counter-based reliability against the
// SDR SACK-bitmap design over long-fat lossy paths. The two schemes fail
// in opposite directions. DCP tracks per-message counters and recovers
// dropped packets from switch HO notifications — but silent wire BER
// produces no HO, so its only fallback is the coarse whole-message timeout
// resend, whose per-attempt success probability (1-p)^N collapses once
// p×N gets large. SDR recovers any hole the SACK ranges expose within
// ~1 RTT regardless of where the loss happened, but its fixed tracking
// window caps the rate at WindowPkts×MTU per RTT, which on a 100 ms path
// is far below the line rate DCP sustains when nothing is lost. Sweeping
// RTT × BER makes the crossover a table row rather than an argument.

const (
	// wanWindowPkts sizes SDR's tracking window for the WAN family: 4096
	// packets ≈ 4 MB of tracked span — 3.3 Gbps at 10 ms RTT but only
	// 330 Mbps at 100 ms, the state-vs-rate trade-off the table reports
	// alongside goodput.
	wanWindowPkts = 4096
	wanRate       = 10 * units.Gbps
)

// wanRTTsMs and wanBERs are the sweep axes: metro to intercontinental
// RTTs, and silent wire BER from zero through the 0.1–1 % regime.
var (
	wanRTTsMs = []float64{10, 50, 100}
	wanBERs   = []float64{0, 0.001, 0.01}
)

// wanSchemes returns the two contenders with their WAN tuning: DCP's
// coarse timeout scaled to the path RTT (the stock 10 ms default would
// fire mid-flight on a 100 ms path), SDR with the WAN tracking window.
func wanSchemes() []Scheme {
	dcp := SchemeDCP(false)
	dcp.Tweak = func(e *envT) {
		if t := 4 * e.BaseRTT; t > e.DCP.Timeout {
			e.DCP.Timeout = t
		}
	}
	sdr := SchemeSDR()
	sdr.Tweak = func(e *envT) {
		e.SDR.WindowPkts = wanWindowPkts
		// RTT-proportional timeouts: the LAN-tuned defaults (20×RTT)
		// would stall a lost retransmission for seconds on a 100 ms path.
		e.RTOLow = 2 * e.BaseRTT
		e.RTOHigh = 4 * e.BaseRTT
	}
	return []Scheme{dcp, sdr}
}

// wanNet builds the long-haul pipeline: host—switch—switch—host with one
// cross link carrying the full one-way path delay.
func wanNet(sch Scheme, rtt units.Time) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.HostsPerSwitch = 1
		c.CrossLinks = 1
		c.HostRate = wanRate
		c.CrossDelays = []units.Time{rtt / 2}
		c.Switch = SwitchConfigFor(sch)
		return topo.Dumbbell(eng, c)
	}
}

// wanCap returns the window-imposed rate ceiling of an SDR sender on this
// path (never above the line rate).
func wanCap(rtt units.Time) units.Rate {
	// The sender can keep the wire busy for at most one window's
	// serialization time out of every RTT.
	windowTx := units.TxTime(wanWindowPkts*packet.DefaultMTU, wanRate)
	if windowTx >= rtt {
		return wanRate
	}
	return units.ScaleRate(wanRate, windowTx.Seconds()/rtt.Seconds())
}

// wanCell is one (rtt, ber, scheme) measurement.
type wanCell struct {
	goodput    float64
	stateBytes int64
	unfinished int
}

// WANCrossover sweeps RTT × silent-wire BER for DCP and SDR over the
// long-haul pipeline, reporting application goodput (zero when the
// transfer never completes — an unfinished WAN bulk transfer has delivered
// nothing the application can use) and the peak per-flow tracking state of
// both endpoints.
func WANCrossover(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name: "WAN crossover: DCP counters vs SDR SACK-bitmap, silent wire BER on a long-haul path",
		Columns: []string{"rtt_ms", "ber", "DCP_Gbps", "SDR_Gbps",
			"DCP_state_B", "SDR_state_B", "DCP_unfin", "SDR_unfin"},
	}
	// Floor the transfer at twice the SDR window span so the window cap is
	// visible (and the loss-free crossover cell exists) at every Scale.
	size := cfg.bytes(64 << 20)
	if size < 8<<20 {
		size = 8 << 20
	}
	schemes := wanSchemes()
	cells := grid(cfg, len(wanRTTsMs)*len(wanBERs), len(schemes), func(sub Config, ri, si int) wanCell {
		rtt := units.Scale(units.Millisecond, wanRTTsMs[ri/len(wanBERs)])
		ber := wanBERs[ri%len(wanBERs)]
		sch := schemes[si]
		s := NewSimCfg(sub, sch, wanNet(sch, rtt))
		s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
		if ber > 0 {
			// Silent wire BER on the long-haul span: invisible to both
			// switches, so no trimming/HO signal ever fires.
			mustInject(s.Net, faults.NewPlan(sub.Seed).Add(faults.Event{
				Kind: faults.LinkLoss, Link: "cross0", Rate: ber,
			}))
		}
		// Horizon: generous multiple of the window-capped serialization
		// time plus timeout headroom, so a healthy transfer always fits.
		horizon := 10*units.TxTime(int(size), wanCap(rtt)) + 100*rtt + 500*units.Millisecond
		unfinished := s.Run(horizon)
		c := wanCell{unfinished: unfinished}
		rec := s.Col.Flow(1)
		if rec.Done {
			c.goodput = stats.Goodput(rec.Size, rec.FCT())
		}
		c.stateBytes = rec.SendStateBytes + rec.RecvStateBytes
		return c
	})
	for ri, cell := range cells {
		rttMs, ber := wanRTTsMs[ri/len(wanBERs)], wanBERs[ri%len(wanBERs)]
		t.AddRow(fmt.Sprintf("%g", rttMs), fmt.Sprintf("%.3f", ber),
			cell[0].goodput, cell[1].goodput,
			cell[0].stateBytes, cell[1].stateBytes,
			cell[0].unfinished, cell[1].unfinished)
	}
	return []*stats.Table{t}
}
