package exp

import (
	"fmt"

	"dcpsim/internal/fabric"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// onePathNet builds host—switch—switch—host with a single cross link, the
// Fig. 10/17 forced-loss pipeline.
func onePathNet(sch Scheme, lossRate float64) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = SwitchConfigFor(sch)
		cfg.Switch.LossRate = lossRate
		return topo.Dumbbell(eng, cfg)
	}
}

// runSingleFlow measures the goodput of one size-byte flow under a scheme.
func runSingleFlow(cfg Config, sch Scheme, size int64, build func(*sim.Engine) *topo.Network) (float64, *stats.FlowRecord) {
	s := NewSim(cfg.Seed, sch, build)
	f := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	s.ScheduleFlows([]*workload.Flow{f})
	s.Run(0)
	rec := s.Col.Flow(1)
	if !rec.Done {
		return 0, rec
	}
	return stats.Goodput(rec.Size, rec.FCT()), rec
}

// Fig8 reproduces the basic prototype validation: back-to-back throughput
// (long flow of 512 KB messages) and small-message latency for RNIC-GBN,
// DCP-RNIC and software TCP.
func Fig8(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 8: basic validation of DCP-RNIC (back-to-back)",
		Columns: []string{"scheme", "throughput_Gbps", "latency_us"},
	}
	size := cfg.bytes(64 << 20)
	for _, sch := range []Scheme{SchemeGBNLossy(0), SchemeDCP(false), SchemeTCP()} {
		direct := func(eng *sim.Engine) *topo.Network {
			return topo.Direct(eng, 100*units.Gbps, units.Microsecond)
		}
		// Throughput: one long flow posted as 512 KB messages.
		sch := sch
		s := NewSim(cfg.Seed, sch, direct)
		s.Env.MessageSize = 512 * units.KB
		f := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
		s.ScheduleFlows([]*workload.Flow{f})
		s.Run(0)
		gp := 0.0
		if rec := s.Col.Flow(1); rec.Done {
			gp = stats.Goodput(rec.Size, rec.FCT())
		}
		// Latency: a 64 B message on an idle pair.
		s2 := NewSim(cfg.Seed, sch, direct)
		f2 := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: 64}
		s2.ScheduleFlows([]*workload.Flow{f2})
		s2.Run(0)
		lat := 0.0
		if rec := s2.Col.Flow(1); rec.Done {
			lat = rec.FCT().Micros()
		}
		name := map[string]string{"CX5(ECMP)": "RNIC-GBN", "DCP(AR)": "DCP-RNIC", "TCP": "TCP"}[sch.Name]
		t.AddRow(name, gp, lat)
	}
	return []*stats.Table{t}
}

// fig10LossRates are the enforced loss rates of Figs. 10 and 17.
var fig10LossRates = []float64{0, 0.0001, 0.001, 0.005, 0.01, 0.02, 0.05}

// Fig10 reproduces the loss recovery efficiency comparison: goodput of a
// long flow under enforced loss, DCP (switch trims) vs CX5 (switch drops).
func Fig10(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 10: loss recovery efficiency (goodput, Gbps)",
		Columns: []string{"loss_rate", "CX5", "DCP", "speedup"},
	}
	size := cfg.bytes(40 << 20)
	for _, lr := range fig10LossRates {
		cx5, _ := runSingleFlow(cfg, SchemeGBNLossy(0), size, onePathNet(SchemeGBNLossy(0), lr))
		d, rec := runSingleFlow(cfg, SchemeDCP(false), size, onePathNet(SchemeDCP(false), lr))
		speed := 0.0
		if cx5 > 0 {
			speed = d / cx5
		}
		_ = rec
		t.AddRow(fmt.Sprintf("%.2f%%", lr*100), cx5, d, speed)
	}
	return []*stats.Table{t}
}

// Fig11 reproduces the unequal-path adaptive-routing experiment: two
// cross-switch flows over two parallel paths with capacity ratios 1:1, 1:4,
// 1:10; DCP+AR adapts, CX5+ECMP does not.
func Fig11(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 11: goodput under unequal parallel paths (avg of 2 flows, Gbps)",
		Columns: []string{"capacity_ratio", "CX5(ECMP)", "DCP(AR)"},
	}
	size := cfg.bytes(40 << 20)
	// ECMP collisions are inevitable at scale (§2.2); reproduce the
	// worst case deterministically: both flows hash onto the second
	// (degraded) cross link. Cross egress index 1 on the first switch is
	// that link (index 0 is the host-facing port... candidates exclude it).
	var ids []uint64
	for id := uint64(1); len(ids) < 2; id++ {
		if fabric.ECMPIndex(id, 0, 2) == 1 {
			ids = append(ids, id)
		}
	}
	for _, ratio := range []int{1, 4, 10} {
		row := []float64{}
		for _, sch := range []Scheme{SchemeGBNLossy(0), SchemeDCP(false)} {
			sch := sch
			build := func(eng *sim.Engine) *topo.Network {
				c := topo.DefaultDumbbell()
				c.HostsPerSwitch = 2
				c.CrossLinks = 2
				c.Switch = SwitchConfigFor(sch)
				c.CrossRates = []units.Rate{100 * units.Gbps, units.DivRate(100*units.Gbps, int64(ratio))}
				return topo.Dumbbell(eng, c)
			}
			s := NewSim(cfg.Seed, sch, build)
			flows := []*workload.Flow{
				{ID: ids[0], Src: 0, Dst: 2, Size: size},
				{ID: ids[1], Src: 1, Dst: 3, Size: size},
			}
			s.ScheduleFlows(flows)
			s.Run(0)
			var sum float64
			for _, f := range flows {
				if rec := s.Col.Flow(f.ID); rec.Done {
					sum += stats.Goodput(rec.Size, rec.FCT())
				}
			}
			row = append(row, sum/2)
		}
		t.AddRow(fmt.Sprintf("1:%d", ratio), row[0], row[1])
	}
	return []*stats.Table{t}
}

// Fig12 reproduces the testbed AI workload: 16 NICs in 4 groups of 4 (each
// group spanning both switches), each group running an AllReduce or
// AllToAll; JCT per group for DCP+AR vs CX5+ECMP.
func Fig12(cfg Config) []*stats.Table {
	var tables []*stats.Table
	total := cfg.bytes(300 << 20)
	for _, coll := range []string{"AllReduce", "AllToAll"} {
		t := &stats.Table{
			Name:    "Fig 12 (" + coll + "): testbed JCT per group (ms)",
			Columns: []string{"group", "CX5(ECMP)", "DCP(AR)"},
		}
		jcts := map[string][]float64{}
		var order []string
		for _, sch := range []Scheme{SchemeGBNLossy(0), SchemeDCP(false)} {
			sch := sch
			order = append(order, sch.Name)
			build := func(eng *sim.Engine) *topo.Network {
				c := topo.DefaultDumbbell()
				c.Switch = SwitchConfigFor(sch)
				return topo.Dumbbell(eng, c)
			}
			s := NewSim(cfg.Seed, sch, build)
			done := make([]units.Time, 4)
			var id uint64 = 1
			for g := 0; g < 4; g++ {
				members := []packet.NodeID{}
				for k := 0; k < 4; k++ {
					members = append(members, packet.NodeID(g+4*k))
				}
				var cf *workload.Coflow
				if coll == "AllReduce" {
					cf = workload.RingAllReduce(members, total, g, id)
				} else {
					cf = workload.AllToAll(members, total, g, id)
				}
				id += uint64(cf.NumFlows())
				g := g
				s.RunCoflow(cf, 0, func(at units.Time) { done[g] = at })
			}
			s.Run(0)
			for _, d := range done {
				jcts[sch.Name] = append(jcts[sch.Name], d.Millis())
			}
		}
		for g := 0; g < 4; g++ {
			t.AddRow(g+1, jcts[order[0]][g], jcts[order[1]][g])
		}
		tables = append(tables, t)
	}
	return tables
}

// LongHaul reproduces the §6.1 long-haul validation: one flow across a
// 10 km (50 µs) link; DCP should hold a high stable goodput with 32 MB
// switch buffers.
func LongHaul(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Long-haul: 10 km cross link, single flow goodput (Gbps)",
		Columns: []string{"scheme", "goodput_Gbps"},
	}
	size := cfg.bytes(200 << 20)
	for _, sch := range []Scheme{SchemeDCP(false), SchemeGBNLossy(0)} {
		sch := sch
		build := func(eng *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.HostsPerSwitch = 1
			c.CrossLinks = 1
			c.CrossDelays = []units.Time{50 * units.Microsecond}
			c.Switch = SwitchConfigFor(sch)
			return topo.Dumbbell(eng, c)
		}
		gp, _ := runSingleFlow(cfg, sch, size, build)
		t.AddRow(sch.Name, gp)
	}
	return []*stats.Table{t}
}

// Fig17 compares loss recovery schemes under enforced loss on a single
// ECMP path: DCP, RACK-TLP, IRN, and timeout-only.
func Fig17(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 17: loss recovery efficiency of DCP/RACK-TLP/IRN/Timeout (goodput, Gbps)",
		Columns: []string{"loss_rate", "DCP", "RACK-TLP", "IRN", "Timeout"},
	}
	size := cfg.bytes(40 << 20)
	for _, lr := range fig10LossRates {
		row := []any{fmt.Sprintf("%.2f%%", lr*100)}
		for _, sch := range []Scheme{SchemeDCP(false), SchemeRACK(), SchemeIRN(0, false), SchemeTimeout()} {
			gp, _ := runSingleFlow(cfg, sch, size, onePathNet(sch, lr))
			row = append(row, gp)
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}
