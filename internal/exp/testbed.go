package exp

import (
	"fmt"

	"dcpsim/internal/fabric"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// The experiments in this file (and clos.go, ablation.go, faults.go) are
// structured as pure cell-builders over the sweep/grid primitives in
// parallel.go: the parameter axes are enumerated up front, each cell builds
// and runs its own isolated Sim(s) from the cell-scoped Config, and the
// table rendering below the sweep consumes cell results in axis order.
// Cells share nothing mutable, so worker count never changes output bytes.

// onePathNet builds host—switch—switch—host with a single cross link, the
// Fig. 10/17 forced-loss pipeline.
func onePathNet(sch Scheme, lossRate float64) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = SwitchConfigFor(sch)
		cfg.Switch.LossRate = lossRate
		return topo.Dumbbell(eng, cfg)
	}
}

// runSingleFlow measures the goodput of one size-byte flow under a scheme.
func runSingleFlow(cfg Config, sch Scheme, size int64, build func(*sim.Engine) *topo.Network) (float64, *stats.FlowRecord) {
	s := NewSimCfg(cfg, sch, build)
	f := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	s.ScheduleFlows([]*workload.Flow{f})
	s.Run(0)
	rec := s.Col.Flow(1)
	if !rec.Done {
		return 0, rec
	}
	return stats.Goodput(rec.Size, rec.FCT()), rec
}

// Fig8 reproduces the basic prototype validation: back-to-back throughput
// (long flow of 512 KB messages) and small-message latency for RNIC-GBN,
// DCP-RNIC and software TCP.
func Fig8(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 8: basic validation of DCP-RNIC (back-to-back)",
		Columns: []string{"scheme", "throughput_Gbps", "latency_us"},
	}
	size := cfg.bytes(64 << 20)
	schemes := []Scheme{SchemeGBNLossy(0), SchemeDCP(false), SchemeTCP()}
	type cellR struct{ gp, lat float64 }
	cells := sweep(cfg, len(schemes), func(sub Config, i int) cellR {
		sch := schemes[i]
		direct := func(eng *sim.Engine) *topo.Network {
			return topo.Direct(eng, 100*units.Gbps, units.Microsecond)
		}
		// Throughput: one long flow posted as 512 KB messages.
		s := NewSimCfg(sub, sch, direct)
		s.Env.MessageSize = 512 * units.KB
		f := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
		s.ScheduleFlows([]*workload.Flow{f})
		s.Run(0)
		var r cellR
		if rec := s.Col.Flow(1); rec.Done {
			r.gp = stats.Goodput(rec.Size, rec.FCT())
		}
		// Latency: a 64 B message on an idle pair.
		s2 := NewSimCfg(sub, sch, direct)
		f2 := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: 64}
		s2.ScheduleFlows([]*workload.Flow{f2})
		s2.Run(0)
		if rec := s2.Col.Flow(1); rec.Done {
			r.lat = rec.FCT().Micros()
		}
		return r
	})
	for i, sch := range schemes {
		name := map[string]string{"CX5(ECMP)": "RNIC-GBN", "DCP(AR)": "DCP-RNIC", "TCP": "TCP"}[sch.Name]
		t.AddRow(name, cells[i].gp, cells[i].lat)
	}
	return []*stats.Table{t}
}

// fig10LossRates are the enforced loss rates of Figs. 10 and 17.
var fig10LossRates = []float64{0, 0.0001, 0.001, 0.005, 0.01, 0.02, 0.05}

// Fig10 reproduces the loss recovery efficiency comparison: goodput of a
// long flow under enforced loss, DCP (switch trims) vs CX5 (switch drops).
func Fig10(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 10: loss recovery efficiency (goodput, Gbps)",
		Columns: []string{"loss_rate", "CX5", "DCP", "speedup"},
	}
	size := cfg.bytes(40 << 20)
	type cellR struct{ cx5, dcp float64 }
	cells := sweep(cfg, len(fig10LossRates), func(sub Config, i int) cellR {
		lr := fig10LossRates[i]
		cx5, _ := runSingleFlow(sub, SchemeGBNLossy(0), size, onePathNet(SchemeGBNLossy(0), lr))
		d, _ := runSingleFlow(sub, SchemeDCP(false), size, onePathNet(SchemeDCP(false), lr))
		return cellR{cx5: cx5, dcp: d}
	})
	for i, lr := range fig10LossRates {
		speed := 0.0
		if cells[i].cx5 > 0 {
			speed = cells[i].dcp / cells[i].cx5
		}
		t.AddRow(fmt.Sprintf("%.2f%%", lr*100), cells[i].cx5, cells[i].dcp, speed)
	}
	return []*stats.Table{t}
}

// Fig11 reproduces the unequal-path adaptive-routing experiment: two
// cross-switch flows over two parallel paths with capacity ratios 1:1, 1:4,
// 1:10; DCP+AR adapts, CX5+ECMP does not.
func Fig11(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 11: goodput under unequal parallel paths (avg of 2 flows, Gbps)",
		Columns: []string{"capacity_ratio", "CX5(ECMP)", "DCP(AR)"},
	}
	size := cfg.bytes(40 << 20)
	// ECMP collisions are inevitable at scale (§2.2); reproduce the
	// worst case deterministically: both flows hash onto the second
	// (degraded) cross link. Cross egress index 1 on the first switch is
	// that link (index 0 is the host-facing port... candidates exclude it).
	var ids []uint64
	for id := uint64(1); len(ids) < 2; id++ {
		if fabric.ECMPIndex(id, 0, 2) == 1 {
			ids = append(ids, id)
		}
	}
	ratios := []int{1, 4, 10}
	schemes := []Scheme{SchemeGBNLossy(0), SchemeDCP(false)}
	cells := grid(cfg, len(ratios), len(schemes), func(sub Config, ri, si int) float64 {
		ratio, sch := ratios[ri], schemes[si]
		build := func(eng *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.HostsPerSwitch = 2
			c.CrossLinks = 2
			c.Switch = SwitchConfigFor(sch)
			c.CrossRates = []units.Rate{100 * units.Gbps, units.DivRate(100*units.Gbps, int64(ratio))}
			return topo.Dumbbell(eng, c)
		}
		s := NewSimCfg(sub, sch, build)
		flows := []*workload.Flow{
			{ID: ids[0], Src: 0, Dst: 2, Size: size},
			{ID: ids[1], Src: 1, Dst: 3, Size: size},
		}
		s.ScheduleFlows(flows)
		s.Run(0)
		var sum float64
		for _, f := range flows {
			if rec := s.Col.Flow(f.ID); rec.Done {
				sum += stats.Goodput(rec.Size, rec.FCT())
			}
		}
		return sum / 2
	})
	for ri, ratio := range ratios {
		t.AddRow(fmt.Sprintf("1:%d", ratio), cells[ri][0], cells[ri][1])
	}
	return []*stats.Table{t}
}

// Fig12 reproduces the testbed AI workload: 16 NICs in 4 groups of 4 (each
// group spanning both switches), each group running an AllReduce or
// AllToAll; JCT per group for DCP+AR vs CX5+ECMP.
func Fig12(cfg Config) []*stats.Table {
	total := cfg.bytes(300 << 20)
	colls := []string{"AllReduce", "AllToAll"}
	schemes := []Scheme{SchemeGBNLossy(0), SchemeDCP(false)}
	cells := grid(cfg, len(colls), len(schemes), func(sub Config, ci, si int) []float64 {
		coll, sch := colls[ci], schemes[si]
		build := func(eng *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.Switch = SwitchConfigFor(sch)
			return topo.Dumbbell(eng, c)
		}
		s := NewSimCfg(sub, sch, build)
		done := make([]units.Time, 4)
		var id uint64 = 1
		for g := 0; g < 4; g++ {
			members := []packet.NodeID{}
			for k := 0; k < 4; k++ {
				members = append(members, packet.NodeID(g+4*k))
			}
			var cf *workload.Coflow
			if coll == "AllReduce" {
				cf = workload.RingAllReduce(members, total, g, id)
			} else {
				cf = workload.AllToAll(members, total, g, id)
			}
			id += uint64(cf.NumFlows())
			g := g
			s.RunCoflow(cf, 0, func(at units.Time) { done[g] = at })
		}
		s.Run(0)
		jcts := make([]float64, 4)
		for g, d := range done {
			jcts[g] = d.Millis()
		}
		return jcts
	})
	var tables []*stats.Table
	for ci, coll := range colls {
		t := &stats.Table{
			Name:    "Fig 12 (" + coll + "): testbed JCT per group (ms)",
			Columns: []string{"group", "CX5(ECMP)", "DCP(AR)"},
		}
		for g := 0; g < 4; g++ {
			t.AddRow(g+1, cells[ci][0][g], cells[ci][1][g])
		}
		tables = append(tables, t)
	}
	return tables
}

// LongHaul reproduces the §6.1 long-haul validation: one flow across a
// 10 km (50 µs) link; DCP should hold a high stable goodput with 32 MB
// switch buffers.
func LongHaul(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Long-haul: 10 km cross link, single flow goodput (Gbps)",
		Columns: []string{"scheme", "goodput_Gbps"},
	}
	size := cfg.bytes(200 << 20)
	schemes := []Scheme{SchemeDCP(false), SchemeGBNLossy(0)}
	cells := sweep(cfg, len(schemes), func(sub Config, i int) float64 {
		sch := schemes[i]
		build := func(eng *sim.Engine) *topo.Network {
			c := topo.DefaultDumbbell()
			c.HostsPerSwitch = 1
			c.CrossLinks = 1
			c.CrossDelays = []units.Time{50 * units.Microsecond}
			c.Switch = SwitchConfigFor(sch)
			return topo.Dumbbell(eng, c)
		}
		gp, _ := runSingleFlow(sub, sch, size, build)
		return gp
	})
	for i, sch := range schemes {
		t.AddRow(sch.Name, cells[i])
	}
	return []*stats.Table{t}
}

// Fig17 compares loss recovery schemes under enforced loss on a single
// ECMP path: DCP, RACK-TLP, IRN, and timeout-only.
func Fig17(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Fig 17: loss recovery efficiency of DCP/RACK-TLP/IRN/Timeout (goodput, Gbps)",
		Columns: []string{"loss_rate", "DCP", "RACK-TLP", "IRN", "Timeout"},
	}
	size := cfg.bytes(40 << 20)
	schemes := []Scheme{SchemeDCP(false), SchemeRACK(), SchemeIRN(0, false), SchemeTimeout()}
	cells := grid(cfg, len(fig10LossRates), len(schemes), func(sub Config, li, si int) float64 {
		sch := schemes[si]
		gp, _ := runSingleFlow(sub, sch, size, onePathNet(sch, fig10LossRates[li]))
		return gp
	})
	for li, lr := range fig10LossRates {
		row := []any{fmt.Sprintf("%.2f%%", lr*100)}
		for si := range schemes {
			row = append(row, cells[li][si])
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}
