package exp

import (
	"fmt"
	"math/rand"

	"dcpsim/internal/fabric"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// closOpts parameterizes one CLOS run.
type closOpts struct {
	load          float64
	flows         int
	incastFanin   int
	incastLoad    float64
	incastSize    int64
	incastCount   int
	spineDelay    units.Time
	buffer        int // lossless-scheme buffer override (cross-DC)
	wrrWeight     float64
	ctrlCap       int
	trimThreshold int
	msgSize       int
	maxTime       units.Time
}

// runClos executes one scheme over the CLOS with a WebSearch (+ optional
// incast) workload. The workload is drawn from a dedicated RNG seeded only
// by cfg.Seed so every scheme sees the identical flow set.
func runClos(cfg Config, sch Scheme, o closOpts) *Sim {
	s := NewSimCfg(cfg, sch, func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultClos()
		c.Switch = SwitchConfigFor(sch)
		if o.spineDelay > 0 {
			c.SpineDelay = o.spineDelay
		}
		if o.buffer > 0 && sch.Lossless {
			c.Switch.BufferBytes = o.buffer
		}
		if o.wrrWeight > 0 {
			c.Switch.WRRWeight = o.wrrWeight
		}
		if o.trimThreshold > 0 {
			c.Switch.TrimThreshold = o.trimThreshold
		}
		if o.ctrlCap > 0 {
			c.Switch.CtrlQueueCap = o.ctrlCap
		}
		return topo.Clos(eng, c)
	})
	if o.msgSize > 0 {
		s.Env.MessageSize = o.msgSize
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	hosts := s.HostIDs()
	var flows []*workload.Flow
	if o.load > 0 {
		flows = workload.GeneratePoisson(rng, workload.PoissonConfig{
			Load: o.load, Hosts: hosts, HostRate: s.Net.HostRate,
			Dist: workload.WebSearch(), Count: o.flows, Class: "bg", BaseID: 1,
		})
	}
	if o.incastFanin > 0 {
		inc := workload.GenerateIncast(rng, workload.IncastConfig{
			Load: o.incastLoad, Fanin: o.incastFanin, FlowSize: o.incastSize,
			Hosts: hosts, HostRate: s.Net.HostRate, Events: o.incastCount,
			Class: "incast", BaseID: 1 << 32,
		})
		flows = append(flows, inc...)
	}
	s.ScheduleFlows(flows)
	maxT := o.maxTime
	if maxT == 0 {
		maxT = 2 * units.Second
	}
	s.Run(maxT)
	return s
}

// Fig1 reproduces the spurious-retransmission motivation: IRN vs DCP under
// adaptive routing with no real packet loss.
func Fig1(cfg Config) []*stats.Table {
	o := closOpts{load: 0.3, flows: cfg.flows(2000)}
	schemes := []Scheme{SchemeIRN(1, false), SchemeDCP(false)} // LBAdaptive == 1
	ratio := &stats.Table{
		Name:    "Fig 1a: retransmission ratio vs flow size (AR, no loss)",
		Columns: []string{"avg_size_KB", "IRN_mean", "IRN_max", "DCP_mean", "DCP_max"},
	}
	cdf := &stats.Table{
		Name:    "Fig 1b: share of flows with spurious retransmissions, by size class",
		Columns: []string{"class", "IRN", "DCP"},
	}
	type classStat struct{ irn, dcp float64 }
	classes := []string{"small(<50KB)", "medium(50KB-2MB)", "large(>2MB)"}
	frac := map[string]*classStat{}
	for _, c := range classes {
		frac[c] = &classStat{}
	}
	type cellR struct {
		flows []*stats.FlowRecord
		drops int64
	}
	cells := sweep(cfg, len(schemes), func(sub Config, i int) cellR {
		s := runClos(sub, schemes[i], o)
		c := s.Net.Counters()
		return cellR{
			flows: s.Col.FinishedFlows("bg"),
			drops: c.DroppedData + c.TrimmedPkts + c.ForcedLosses,
		}
	})
	var buckets [][]stats.SizeBucket
	var drops []int64
	for i, cell := range cells {
		flows := cell.flows
		buckets = append(buckets, stats.BucketizeBySize(flows, 12, (*stats.FlowRecord).RetransRatio))
		drops = append(drops, cell.drops)
		for _, f := range flows {
			cls := classes[0]
			if f.Size > 2<<20 {
				cls = classes[2]
			} else if f.Size >= 50<<10 {
				cls = classes[1]
			}
			hit := 0.0
			if f.RetransPkts > 0 {
				hit = 1
			}
			if i == 0 {
				frac[cls].irn += hit
			} else {
				frac[cls].dcp += hit
			}
		}
		// Normalize per class.
		counts := map[string]float64{}
		for _, f := range flows {
			cls := classes[0]
			if f.Size > 2<<20 {
				cls = classes[2]
			} else if f.Size >= 50<<10 {
				cls = classes[1]
			}
			counts[cls]++
		}
		for _, cls := range classes {
			if counts[cls] == 0 {
				continue
			}
			if i == 0 {
				frac[cls].irn /= counts[cls]
			} else {
				frac[cls].dcp /= counts[cls]
			}
		}
	}
	// Max-based series: recompute max per bucket via metric over buckets.
	for i := 0; i < len(buckets[0]) && i < len(buckets[1]); i++ {
		b0, b1 := buckets[0][i], buckets[1][i]
		ratio.AddRow(fmt.Sprintf("%.1f", b0.AvgSizeKB), b0.Mean, b0.P99, b1.Mean, b1.P99)
	}
	for _, cls := range classes {
		cdf.AddRow(cls, frac[cls].irn, frac[cls].dcp)
	}
	note := &stats.Table{
		Name:    "Fig 1 note: real packet drops observed (should be ~0 for IRN's run)",
		Columns: []string{"scheme", "drops+trims"},
	}
	note.AddRow("IRN(AR)", drops[0])
	note.AddRow("DCP(AR)", drops[1])
	return []*stats.Table{ratio, cdf, note}
}

// Fig2 reproduces the excessive-RTO motivation: timeout counts for
// background and incast flows under IRN-ECMP, IRN-AR and DCP.
func Fig2(cfg Config) []*stats.Table {
	o := closOpts{
		load: 0.3, flows: cfg.flows(1500),
		incastFanin: 128, incastLoad: 0.1, incastSize: 64 << 10,
		incastCount: cfg.events(10),
	}
	t := &stats.Table{
		Name:    "Fig 2: number of timeouts (mean per flow / % flows with RTO)",
		Columns: []string{"scheme", "bg_mean", "bg_pct", "bg_max", "incast_mean", "incast_pct", "incast_max"},
	}
	schemes := []Scheme{SchemeIRN(0, false), SchemeIRN(1, false), SchemeDCP(false)}
	cells := sweep(cfg, len(schemes), func(sub Config, i int) [6]float64 {
		s := runClos(sub, schemes[i], o)
		var out [6]float64
		for ci, class := range []string{"bg", "incast"} {
			flows := s.Col.FinishedFlows(class)
			var sum, hit, max float64
			for _, f := range flows {
				v := float64(f.Timeouts)
				sum += v
				if v > 0 {
					hit++
				}
				if v > max {
					max = v
				}
			}
			n := float64(len(flows))
			if n == 0 {
				n = 1
			}
			out[ci*3], out[ci*3+1], out[ci*3+2] = sum/n, 100*hit/n, max
		}
		return out
	})
	for i, sch := range schemes {
		c := cells[i]
		t.AddRow(sch.Name, c[0], c[1], c[2], c[3], c[4], c[5])
	}
	return []*stats.Table{t}
}

// fig13Schemes is the §6.2 lineup.
func fig13Schemes(withCC bool) []Scheme {
	return []Scheme{SchemePFC(), SchemeIRN(1, withCC), SchemeMPRDMA(), SchemeDCP(withCC)}
}

// Fig13 reproduces the WebSearch FCT-slowdown comparison at loads 0.3 and
// 0.5.
func Fig13(cfg Config) []*stats.Table {
	loads := []float64{0.3, 0.5}
	schemes := fig13Schemes(false)
	cells := grid(cfg, len(loads), len(schemes), func(sub Config, li, si int) []*stats.FlowRecord {
		o := closOpts{load: loads[li], flows: sub.flows(2000)}
		return runClos(sub, schemes[si], o).Col.FinishedFlows("bg")
	})
	var tables []*stats.Table
	for li, load := range loads {
		results := map[string][]*stats.FlowRecord{}
		var order []string
		for si, sch := range schemes {
			results[sch.Name] = cells[li][si]
			order = append(order, sch.Name)
		}
		tables = append(tables, slowdownSeries(
			fmt.Sprintf("Fig 13: WebSearch load %.1f FCT slowdown", load), 20, results, order))
	}
	return tables
}

// Fig14 reproduces the CLOS AI workloads: 16 groups of 16 hosts (one per
// rack) running AllReduce / AllToAll; JCT per group plus the FCT
// distribution, against an analytic ideal.
func Fig14(cfg Config) []*stats.Table {
	total := cfg.bytes(60 << 20) // paper: 300 MB; scaled for wall-clock
	const groups, members = 16, 16
	colls := []string{"AllReduce", "AllToAll"}
	schemes := fig13Schemes(false)
	type cellR struct {
		jcts [groups]float64
		fcts []float64
	}
	cells := grid(cfg, len(colls), len(schemes), func(sub Config, ci, si int) cellR {
		coll, sch := colls[ci], schemes[si]
		s := NewSimCfg(sub, sch, func(eng *sim.Engine) *topo.Network {
			c := topo.DefaultClos()
			c.Switch = SwitchConfigFor(sch)
			return topo.Clos(eng, c)
		})
		done := make([]units.Time, groups)
		var id uint64 = 1
		for g := 0; g < groups; g++ {
			var mem []packet.NodeID
			for l := 0; l < members; l++ {
				mem = append(mem, packet.NodeID(l*16+g))
			}
			var cf *workload.Coflow
			if coll == "AllReduce" {
				cf = workload.RingAllReduce(mem, total, g, id)
			} else {
				cf = workload.AllToAll(mem, total, g, id)
			}
			id += uint64(cf.NumFlows())
			g := g
			s.RunCoflow(cf, 0, func(at units.Time) { done[g] = at })
		}
		s.Run(30 * units.Second)
		var r cellR
		for _, f := range s.Col.FinishedFlows("coll") {
			r.fcts = append(r.fcts, f.FCT().Millis())
		}
		for g := 0; g < groups; g++ {
			r.jcts[g] = done[g].Millis()
		}
		return r
	})
	var tables []*stats.Table
	for ci, coll := range colls {
		jct := &stats.Table{
			Name:    "Fig 14 (" + coll + "): JCT per group (ms)",
			Columns: []string{"group"},
		}
		cdfT := &stats.Table{
			Name:    "Fig 14 (" + coll + "): FCT distribution (ms)",
			Columns: []string{"scheme", "P25", "P50", "P75", "P95", "P99"},
		}
		rows := make([][]any, groups)
		for g := range rows {
			rows[g] = []any{g + 1}
		}
		for si, sch := range schemes {
			jct.Columns = append(jct.Columns, sch.Name)
			cell := cells[ci][si]
			for g := 0; g < groups; g++ {
				rows[g] = append(rows[g], cell.jcts[g])
			}
			fcts := cell.fcts
			cdfT.AddRow(sch.Name,
				stats.Percentile(fcts, 25), stats.Percentile(fcts, 50),
				stats.Percentile(fcts, 75), stats.Percentile(fcts, 95), stats.Percentile(fcts, 99))
		}
		// Analytic ideal JCT.
		jct.Columns = append(jct.Columns, "Ideal")
		ideal := idealJCT(coll, total, members, 100*units.Gbps)
		for g := 0; g < groups; g++ {
			rows[g] = append(rows[g], ideal.Millis())
			jct.AddRow(rows[g]...)
		}
		tables = append(tables, jct, cdfT)
	}
	return tables
}

// idealJCT is the zero-contention completion time of one collective.
func idealJCT(coll string, total int64, members int, rate units.Rate) units.Time {
	slice := total / int64(members)
	wire := slice + int64(pktsFor(slice))*(packet.DataHeaderSize+packet.RETHSize)
	per := units.TxTime(int(wire), rate)
	if coll == "AllReduce" {
		//lint:allow unitcheck packet-count scalar times per-packet duration, exact in integer arithmetic
		return units.Time(2*(members-1)) * per
	}
	// AllToAll: every host sends (members-1) slices out of one NIC.
	//lint:allow unitcheck packet-count scalar times per-packet duration, exact in integer arithmetic
	return units.Time(members-1) * per
}

func pktsFor(size int64) uint32 {
	n := (size + packet.DefaultMTU - 1) / packet.DefaultMTU
	return uint32(n)
}

// Fig15 reproduces the cross-DC comparison: 100 km (500 µs) and 1000 km
// (5 ms) leaf-spine links; lossless schemes get enlarged buffers for PFC
// headroom, IRN and DCP keep 32 MB.
func Fig15(cfg Config) []*stats.Table {
	cases := []struct {
		name   string
		delay  units.Time
		buffer int
	}{
		{"100km (500us)", 500 * units.Microsecond, 600 * units.MB},
		{"1000km (5ms)", 5 * units.Millisecond, 6 * units.GB},
	}
	schemes := fig13Schemes(false)
	cells := grid(cfg, len(cases), len(schemes), func(sub Config, ci, si int) []*stats.FlowRecord {
		c := cases[ci]
		o := closOpts{
			load: 0.5, flows: sub.flows(800),
			spineDelay: c.delay, buffer: c.buffer,
			msgSize: 4 * units.MB,
			maxTime: 60 * units.Second,
		}
		return runClos(sub, schemes[si], o).Col.FinishedFlows("bg")
	})
	var tables []*stats.Table
	for ci, c := range cases {
		results := map[string][]*stats.FlowRecord{}
		var order []string
		for si, sch := range schemes {
			results[sch.Name] = cells[ci][si]
			order = append(order, sch.Name)
		}
		tables = append(tables, slowdownSeries("Fig 15: cross-DC "+c.name+" FCT slowdown", 12, results, order))
	}
	return tables
}

// Fig16 reproduces the deep-dive incast study: WebSearch 0.5 plus 128-to-1
// incast at 5% load, with and without DCQCN.
func Fig16(cfg Config) []*stats.Table {
	ccCases := []bool{false, true}
	const schemesPerCase = 3
	cells := grid(cfg, len(ccCases), schemesPerCase, func(sub Config, ci, si int) []*stats.FlowRecord {
		withCC := ccCases[ci]
		o := closOpts{
			load: 0.5, flows: sub.flows(1200),
			incastFanin: 128, incastLoad: 0.05, incastSize: 64 << 10,
			incastCount: sub.events(8),
		}
		sch := []Scheme{SchemeIRN(1, withCC), SchemeMPRDMA(), SchemeDCP(withCC)}[si]
		s := runClos(sub, sch, o)
		return append(s.Col.FinishedFlows("bg"), s.Col.FinishedFlows("incast")...)
	})
	var tables []*stats.Table
	for ci, withCC := range ccCases {
		schemes := []Scheme{SchemeIRN(1, withCC), SchemeMPRDMA(), SchemeDCP(withCC)}
		results := map[string][]*stats.FlowRecord{}
		var order []string
		for si, sch := range schemes {
			results[sch.Name] = cells[ci][si]
			order = append(order, sch.Name)
		}
		label := "w/o CC"
		if withCC {
			label = "with CC"
		}
		tables = append(tables, slowdownSeries("Fig 16: incast deep-dive ("+label+") FCT slowdown", 12, results, order))
	}
	return tables
}

// Table5 measures the robustness of the lossless control plane: HO packet
// loss ratio under extreme incast with the WRR weight derived from N=22 and
// N=16.
func Table5(cfg Config) []*stats.Table {
	t := &stats.Table{
		Name:    "Table 5: HO packet loss rate under severe incast",
		Columns: []string{"setting", "HO_loss_w/o_CC", "HO_loss_w/_CC"},
	}
	// r: data-packet to HO size ratio.
	r := float64(packet.DataHeaderSize+packet.RETHSize+packet.DefaultMTU) / float64(packet.HOSize)
	type setting struct {
		n, fanin int
	}
	var settings []setting
	for _, n := range []int{22, 16} {
		for _, fanin := range []int{128, 255} {
			settings = append(settings, setting{n, fanin})
		}
	}
	ccCases := []bool{false, true}
	cells := grid(cfg, len(settings), len(ccCases), func(sub Config, si, ci int) string {
		set, withCC := settings[si], ccCases[ci]
		sch := SchemeDCP(withCC)
		o := closOpts{
			load: 0.3, flows: sub.flows(600),
			incastFanin: set.fanin, incastLoad: 0.1, incastSize: 64 << 10,
			incastCount: sub.events(6),
			wrrWeight:   wrrWeightFor(set.n, r),
		}
		s := runClos(sub, sch, o)
		c := s.Net.Counters()
		loss := 0.0
		if tot := c.DroppedHO + c.HOEnqueued; tot > 0 {
			loss = float64(c.DroppedHO) / float64(tot)
		}
		return fmt.Sprintf("%.4f%%", loss*100)
	})
	for si, set := range settings {
		t.AddRow(fmt.Sprintf("N=%d; %d-to-1", set.n, set.fanin), cells[si][0], cells[si][1])
	}
	return []*stats.Table{t}
}

func wrrWeightFor(n int, r float64) float64 {
	// Delegate to the fabric law with the paper's fallback clamp.
	return fabricWRRWeight(n, r)
}

// fabricWRRWeight adapts fabric.WRRWeight with the default clamp.
func fabricWRRWeight(n int, r float64) float64 {
	return fabric.WRRWeight(n, r, 8)
}

// RunWebSearch is the exported entry for facade users: one scheme over the
// 256-host CLOS with a WebSearch workload.
func RunWebSearch(cfg Config, sch Scheme, load float64, flows int) *Sim {
	return runClos(cfg, sch, closOpts{load: load, flows: flows})
}
