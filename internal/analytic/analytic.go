// Package analytic reproduces the paper's closed-form results: the PFC
// lossless-distance budget (Table 1), the requirement matrix (Table 2), the
// packet-tracking memory comparison (Table 3), the FPGA resource model
// (Table 4 — a documented estimate, since the FPGA itself is hardware-
// gated), and the theoretical packet-rate-vs-OOO-degree curves (Fig. 7).
package analytic

import (
	"fmt"
	"math"

	"dcpsim/internal/stats"
	"dcpsim/internal/units"
)

// ASIC describes one commodity switching chip from Table 1.
type ASIC struct {
	Name        string
	Ports       int
	PortRate    units.Rate
	BufferBytes int64
}

// Table1ASICs lists the chips of Table 1.
func Table1ASICs() []ASIC {
	const MB = 1 << 20 // vendor buffer sizes are quoted in MiB
	return []ASIC{
		{"Tomahawk 3", 32, 400 * units.Gbps, 64 * MB},
		{"Tomahawk 5", 64, 800 * units.Gbps, 165 * MB},
		{"Tofino 1", 32, 100 * units.Gbps, 20 * MB},
		{"Tofino 2", 32, 400 * units.Gbps, 64 * MB},
		{"Spectrum", 32, 100 * units.Gbps, 16 * MB},
		{"Spectrum-4", 64, 800 * units.Gbps, 160 * MB},
	}
}

// fiberDelayPerKm is the one-hop propagation delay of 1 km of fiber
// (light at 2×10^8 m/s).
const fiberDelayPerKm = 5 * units.Microsecond

// BufferPer100G returns the buffer available per port per 100 Gbps in
// bytes.
func (a ASIC) BufferPer100G() float64 {
	units100G := float64(a.Ports) * a.PortRate.Gigabits() / 100
	return float64(a.BufferBytes) / units100G
}

// LosslessKm evaluates Eq. 1: the maximum distance at which PFC headroom
// still covers 2× the in-flight bytes, with the per-port buffer split
// across queues.
func (a ASIC) LosslessKm(queues int) float64 {
	buf := a.BufferPer100G() / float64(queues)
	// L = buffer / (bandwidth × delay-per-km × 2); bandwidth is the
	// normalized 100 Gbps.
	bytesPerKm := float64(units.BytesIn(fiberDelayPerKm, 100*units.Gbps))
	return buf / (bytesPerKm * 2)
}

// Table1 renders Table 1.
func Table1() *stats.Table {
	t := &stats.Table{
		Name:    "Table 1: max lossless distance with PFC",
		Columns: []string{"ASIC", "capacity", "buffer", "buf/port/100G", "max km (1q)", "max m (8q)"},
	}
	for _, a := range Table1ASICs() {
		t.AddRow(
			a.Name,
			fmt.Sprintf("%dx%s", a.Ports, a.PortRate),
			fmt.Sprintf("%dMB", a.BufferBytes>>20),
			fmt.Sprintf("%.2fMB", a.BufferPer100G()/(1<<20)),
			fmt.Sprintf("%.2f", a.LosslessKm(1)),
			fmt.Sprintf("%.0f", a.LosslessKm(8)*1000),
		)
	}
	return t
}

// Scheme capability flags for Table 2.
type Scheme struct {
	Name                            string
	PFCFree, PktLB, FastRetx, HWFit bool
}

// Table2Schemes returns the requirement matrix of Table 2.
func Table2Schemes() []Scheme {
	return []Scheme{
		{"RNIC-GBN", false, false, false, true},
		{"RNIC-SR (IRN)", true, false, false, true},
		{"MPTCP", true, true, false, false},
		{"NDP", true, true, true, false},
		{"CP", true, true, true, false},
		{"MP-RDMA", false, true, false, true},
		{"DCP", true, true, true, true},
	}
}

// Table2 renders Table 2.
func Table2() *stats.Table {
	t := &stats.Table{
		Name:    "Table 2: DCP vs closely related works (R1 PFC-free, R2 packet-LB, R3 fast retx, R4 HW)",
		Columns: []string{"scheme", "R1", "R2", "R3", "R4"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, s := range Table2Schemes() {
		t.AddRow(s.Name, mark(s.PFCFree), mark(s.PktLB), mark(s.FastRetx), mark(s.HWFit))
	}
	return t
}

// TrackingParams fixes the Table 3 / Fig. 7 scenario.
type TrackingParams struct {
	Bandwidth units.Rate
	RTT       units.Time
	MTU       int
	// Bitmaps is how many per-QP bitmaps an SR RNIC keeps (SRNIC-style
	// designs track acked/sacked/retransmitted/... separately).
	Bitmaps int
	// ChunkBits is the linked-chunk granularity.
	ChunkBits int
	// Messages and CounterBits size DCP's per-message tracking.
	Messages    int
	CounterBits int
	QPs         int
}

// DefaultTracking matches §4.5: 400 Gbps, 10 µs RTT, 1 KB MTU, 5 bitmaps,
// 128-bit chunks, 8 messages × 14-bit counters (+2 flag bits), 10k QPs.
func DefaultTracking() TrackingParams {
	return TrackingParams{
		Bandwidth:   400 * units.Gbps,
		RTT:         10 * units.Microsecond,
		MTU:         1000,
		Bitmaps:     5,
		ChunkBits:   128,
		Messages:    8,
		CounterBits: 14,
		QPs:         10000,
	}
}

// BDPPackets returns the bandwidth-delay product in packets.
func (p TrackingParams) BDPPackets() int {
	return units.BDP(p.Bandwidth, p.RTT) / p.MTU
}

// BitmapBytesPerQP returns the BDP-sized bitmap footprint per QP, rounded
// up to 64-byte SRAM lines.
func (p TrackingParams) BitmapBytesPerQP() int {
	bits := p.BDPPackets() * p.Bitmaps
	return (bits/8 + 63) / 64 * 64
}

// ChunkBytesPerQP returns the linked-chunk footprint range [min, max] per
// QP: one chunk when in order, up to the BDP-sized footprint under heavy
// reordering.
func (p TrackingParams) ChunkBytesPerQP() (int, int) {
	min := p.ChunkBits / 8 * p.Bitmaps
	return min, p.BitmapBytesPerQP()
}

// DCPBytesPerQP returns the bitmap-free footprint per QP: per-message
// counter + mcf + cf, plus QPC-resident eMSN/rRetryNo bytes.
func (p TrackingParams) DCPBytesPerQP() int {
	perMsg := (p.CounterBits + 2 + 7) / 8 // counter + mcf + cf bits
	const qpcExtra = 16                   // eMSN, rRetryNo, unaMSN, timers
	return p.Messages*perMsg + qpcExtra
}

// Table3 renders Table 3.
func Table3(p TrackingParams) *stats.Table {
	t := &stats.Table{
		Name:    "Table 3: memory overhead for packet tracking",
		Columns: []string{"scheme", "per-QP", "10k QPs"},
	}
	mb := func(b int) string { return fmt.Sprintf("%.2fMB", float64(b)*float64(p.QPs)/1e6) }
	bd := p.BitmapBytesPerQP()
	cmin, cmax := p.ChunkBytesPerQP()
	dcp := p.DCPBytesPerQP()
	t.AddRow("BDP-sized bitmap", fmt.Sprintf("%dB", bd), mb(bd))
	t.AddRow("Linked chunk", fmt.Sprintf("%dB~%dB", cmin, cmax), mb(cmin)+"~"+mb(cmax))
	t.AddRow("DCP (bitmap-free)", fmt.Sprintf("%dB", dcp), mb(dcp))
	return t
}

// PPSParams fixes the Fig. 7 pipeline model.
type PPSParams struct {
	ClockHz float64
	// Cycles per packet for each scheme; the linked chunk adds
	// ChainCycles per traversed chunk.
	DCPCycles, BitmapCycles, ChainBase, ChainCycles float64
	ChunkBits                                       int
}

// DefaultPPS matches the 300 MHz prototype clock.
func DefaultPPS() PPSParams {
	return PPSParams{
		ClockHz:      300e6,
		DCPCycles:    5, // address the counter, increment, compare
		BitmapCycles: 6, // compute slot address, read-modify-write
		ChainBase:    3,
		ChainCycles:  3,
		ChunkBits:    128,
	}
}

// PPS returns the theoretical packet rate (Mpps) of each scheme at the
// given out-of-order degree.
func (p PPSParams) PPS(oooDegree int) (dcp, bitmap, chunk float64) {
	dcp = p.ClockHz / p.DCPCycles / 1e6
	bitmap = p.ClockHz / p.BitmapCycles / 1e6
	chains := math.Ceil(float64(oooDegree+1) / float64(p.ChunkBits))
	chunk = p.ClockHz / (p.ChainBase + p.ChainCycles*chains) / 1e6
	return
}

// Fig7 renders the packet-rate series.
func Fig7(p PPSParams, degrees []int) *stats.Table {
	if degrees == nil {
		degrees = []int{0, 64, 128, 192, 256, 320, 384, 448}
	}
	t := &stats.Table{
		Name:    "Fig 7: theoretical packet rate vs OOO degree (Mpps)",
		Columns: []string{"ooo", "BDP-sized", "DCP", "linked-chunk"},
	}
	for _, d := range degrees {
		dcp, bm, ch := p.PPS(d)
		t.AddRow(d, bm, dcp, ch)
	}
	return t
}

// ResourceModel estimates FPGA resource usage (Table 4). The baseline
// numbers are the paper's RNIC-GBN measurements; DCP deltas come from a
// per-module cost model of what §4 adds (RetransQ DMA engine, per-message
// counters, header extension mux). This is a substitution for the
// hardware-gated measurement, documented in DESIGN.md.
type ResourceModel struct {
	BaseLUT, BaseReg, BaseBRAM, BaseURAM     int
	TotalLUT, TotalReg, TotalBRAM, TotalURAM int
	DeltaLUT, DeltaReg, DeltaBRAM, DeltaURAM int
}

// DefaultResources returns the Table 4 model.
func DefaultResources() ResourceModel {
	return ResourceModel{
		BaseLUT: 66000, BaseReg: 102000, BaseBRAM: 408, BaseURAM: 38,
		TotalLUT: 1216000, TotalReg: 2880000, TotalBRAM: 2016, TotalURAM: 960,
		// DCP adds: HO parse/bounce path (+400 LUT), RetransQ DMA +
		// batching (+500 LUT, +800 reg), message counters in BRAM (+4),
		// and removes the BDP bitmap URAM bank (−1 URAM).
		DeltaLUT: 1000, DeltaReg: 1000, DeltaBRAM: 4, DeltaURAM: -1,
	}
}

// Table4 renders Table 4.
func Table4(m ResourceModel) *stats.Table {
	t := &stats.Table{
		Name:    "Table 4: prototype resource usage (model)",
		Columns: []string{"scheme", "LUT", "Registers", "BRAM", "URAM"},
	}
	row := func(name string, lut, reg, bram, uram int) {
		t.AddRow(name,
			fmt.Sprintf("%dk (%.1f%%)", lut/1000, 100*float64(lut)/float64(m.TotalLUT)),
			fmt.Sprintf("%dk (%.1f%%)", reg/1000, 100*float64(reg)/float64(m.TotalReg)),
			fmt.Sprintf("%d (%.0f%%)", bram, 100*float64(bram)/float64(m.TotalBRAM)),
			fmt.Sprintf("%d (%.1f%%)", uram, 100*float64(uram)/float64(m.TotalURAM)),
		)
	}
	row("RNIC-GBN", m.BaseLUT, m.BaseReg, m.BaseBRAM, m.BaseURAM)
	row("DCP-RNIC", m.BaseLUT+m.DeltaLUT, m.BaseReg+m.DeltaReg, m.BaseBRAM+m.DeltaBRAM, m.BaseURAM+m.DeltaURAM)
	return t
}
