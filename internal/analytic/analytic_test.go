package analytic

import (
	"math"
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	// The paper's Table 1 values (km at 1 queue / m at 8 queues), allowing
	// rounding slack from MB conventions.
	want := map[string]float64{
		"Tomahawk 3": 4.1, "Tomahawk 5": 2.62, "Tofino 1": 5.08,
		"Tofino 2": 4.1, "Spectrum": 4.1, "Spectrum-4": 2.56,
	}
	for _, a := range Table1ASICs() {
		got := a.LosslessKm(1)
		if math.Abs(got-want[a.Name])/want[a.Name] > 0.05 {
			t.Errorf("%s: %0.2f km, paper says %.2f", a.Name, got, want[a.Name])
		}
		// 8 queues divide the distance by 8.
		if math.Abs(a.LosslessKm(8)*8-got) > 1e-9 {
			t.Errorf("%s: queue division broken", a.Name)
		}
	}
}

func TestBufferPer100G(t *testing.T) {
	// Tomahawk 3: 64 MiB over 32x400G = 128 units of 100G -> 0.5 MiB.
	a := Table1ASICs()[0]
	if math.Abs(a.BufferPer100G()-0.5*(1<<20)) > 1 {
		t.Fatalf("buf/100G = %v", a.BufferPer100G())
	}
}

func TestTable2Matrix(t *testing.T) {
	byName := map[string]Scheme{}
	for _, s := range Table2Schemes() {
		byName[s.Name] = s
	}
	dcp := byName["DCP"]
	if !(dcp.PFCFree && dcp.PktLB && dcp.FastRetx && dcp.HWFit) {
		t.Fatal("DCP must satisfy all four requirements")
	}
	gbn := byName["RNIC-GBN"]
	if gbn.PFCFree || gbn.PktLB || gbn.FastRetx || !gbn.HWFit {
		t.Fatal("RNIC-GBN row wrong")
	}
	mp := byName["MP-RDMA"]
	if mp.PFCFree || !mp.PktLB || mp.FastRetx || !mp.HWFit {
		t.Fatal("MP-RDMA row wrong")
	}
	ndp := byName["NDP"]
	if !ndp.PFCFree || !ndp.PktLB || !ndp.FastRetx || ndp.HWFit {
		t.Fatal("NDP row wrong")
	}
	// Only DCP satisfies everything.
	for _, s := range Table2Schemes() {
		if s.Name != "DCP" && s.PFCFree && s.PktLB && s.FastRetx && s.HWFit {
			t.Fatalf("%s must not satisfy all requirements", s.Name)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	p := DefaultTracking()
	if p.BDPPackets() != 500 {
		t.Fatalf("BDP packets = %d, want 500", p.BDPPackets())
	}
	if got := p.BitmapBytesPerQP(); got != 320 {
		t.Fatalf("BDP-sized bitmap per QP = %dB, paper says 320B", got)
	}
	min, max := p.ChunkBytesPerQP()
	if min != 80 || max != 320 {
		t.Fatalf("linked chunk = %d~%dB, paper says 80~320B", min, max)
	}
	if got := p.DCPBytesPerQP(); got != 32 {
		t.Fatalf("DCP per QP = %dB, paper says 32B", got)
	}
}

func TestFig7Shape(t *testing.T) {
	p := DefaultPPS()
	dcp0, bm0, ch0 := p.PPS(0)
	// DCP and BDP-sized bitmaps are constant in OOO degree; DCP is faster.
	dcp448, bm448, ch448 := p.PPS(448)
	if dcp0 != dcp448 || bm0 != bm448 {
		t.Fatal("constant-time schemes must not vary with OOO degree")
	}
	if dcp0 <= bm0 {
		t.Fatal("DCP counting must beat bitmap access")
	}
	// Linked chunk decays monotonically.
	prev := ch0
	for d := 64; d <= 448; d += 64 {
		_, _, ch := p.PPS(d)
		if ch > prev {
			t.Fatalf("linked-chunk pps must decay, rose at %d", d)
		}
		prev = ch
	}
	if ch448 >= ch0/2 {
		t.Fatalf("expected ≥2x degradation at 448 OOO: %v vs %v", ch448, ch0)
	}
	// 300 MHz / 5 cycles = 60 Mpps for DCP.
	if math.Abs(dcp0-60) > 1e-9 {
		t.Fatalf("DCP pps = %v", dcp0)
	}
}

func TestTable4Deltas(t *testing.T) {
	m := DefaultResources()
	// The paper: DCP adds ~1.7% LUT, ~1.1% BRAM over GBN and slightly
	// fewer URAM.
	lutPct := float64(m.DeltaLUT) / float64(m.BaseLUT)
	if lutPct < 0.005 || lutPct > 0.03 {
		t.Fatalf("LUT delta %.3f%% out of the paper's ballpark", lutPct*100)
	}
	if m.DeltaURAM >= 0 {
		t.Fatal("DCP should shed URAM (bitmap bank removed)")
	}
	tbl := Table4(m)
	if len(tbl.Rows) != 2 {
		t.Fatal("two schemes")
	}
	if !strings.Contains(tbl.Rows[0][0], "GBN") || !strings.Contains(tbl.Rows[1][0], "DCP") {
		t.Fatal("row names")
	}
}

func TestRenderedTables(t *testing.T) {
	for name, s := range map[string]string{
		"t1":   Table1().String(),
		"t2":   Table2().String(),
		"t3":   Table3(DefaultTracking()).String(),
		"t4":   Table4(DefaultResources()).String(),
		"fig7": Fig7(DefaultPPS(), nil).String(),
	} {
		if len(s) < 50 || !strings.Contains(s, "##") {
			t.Errorf("%s renders poorly:\n%s", name, s)
		}
	}
	// Fig 7 with custom degrees.
	tbl := Fig7(DefaultPPS(), []int{0, 1})
	if len(tbl.Rows) != 2 {
		t.Fatal("custom degrees")
	}
}
