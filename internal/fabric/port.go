// Package fabric models the network data plane: wires (propagation),
// ports (serialization, PFC pause), queue schedulers (FIFO,
// strict-priority, the DCP byte-weighted WRR), and the switch itself
// (shared buffer, packet trimming, ECN marking, PFC, load balancing).
package fabric

import (
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// Receiver consumes packets delivered by a wire. Switches and NICs
// implement it.
type Receiver interface {
	Receive(p *packet.Packet, ingress int)
}

// Wire is one direction of a link: after the source port finishes
// serializing a packet, the wire delivers it to the destination's ingress
// after the propagation delay. Wires also carry PFC pause indications back
// to their source port (modeled without serialization, as PFC frames are
// link-local and tiny).
type Wire struct {
	eng     *sim.Engine
	delay   units.Time
	dst     Receiver
	ingress int      // ingress index at dst
	src     *Port    // the port that transmits onto this wire
	comp    sim.Comp // profiler attribution of delivery events at dst

	// Fault-injection state (package faults drives these): an admin-down
	// wire silently discards everything handed to it; lossRate models
	// time-varying BER loss; burstDrop discards the next N packets (a
	// correlated error burst); dupNext delivers the next N data packets
	// twice (a misbehaving fabric — the fault the exactly-once invariant
	// exists to catch).
	adminDown bool
	lossRate  float64
	burstDrop int
	dupNext   int

	// Delivered counts packets carried, for tests.
	Delivered uint64
	// FaultDrops counts packets discarded by injected faults (admin-down,
	// BER loss, bursts). These losses are silent: no trim, no notification.
	FaultDrops uint64
	// DupInjected counts data packets the wire delivered twice.
	DupInjected uint64
}

// NewWire creates a wire with the given propagation delay, terminating at
// dst's ingress index.
func NewWire(eng *sim.Engine, delay units.Time, dst Receiver, ingress int) *Wire {
	return &Wire{eng: eng, delay: delay, dst: dst, ingress: ingress, comp: sim.CompFabric}
}

// IngressNode is a receiver that tracks its arriving wires (switches need
// the wire to send PFC pause upstream).
type IngressNode interface {
	Receiver
	AddIngress(w *Wire) int
}

// Attach creates a wire into dst and registers it as an ingress, returning
// the wire ready to be used as a port's output.
func Attach(eng *sim.Engine, delay units.Time, dst IngressNode) *Wire {
	w := &Wire{eng: eng, delay: delay, dst: dst, comp: sim.CompFabric}
	w.ingress = dst.AddIngress(w)
	return w
}

// SetDeliverComp overrides the profiler component delivery events at this
// wire's destination are attributed to. Wires default to CompFabric; a NIC
// registering an arriving wire retags it CompNIC so host-side receive
// processing (transport Handle and everything it causes) is attributed to
// the host, not the fabric.
func (w *Wire) SetDeliverComp(c sim.Comp) { w.comp = c }

// Delay returns the propagation delay.
func (w *Wire) Delay() units.Time { return w.delay }

// Deliver schedules the packet's arrival at the destination. Packets
// handed to a faulted wire are lost silently — the transmitter has no way
// to know, which is exactly what distinguishes wire-level faults from the
// switch-visible losses DCP turns into trim notifications. Packets already
// propagating when a fault hits still arrive (the cut happens at the
// transmitter end).
func (w *Wire) Deliver(p *packet.Packet) {
	if w.adminDown {
		w.FaultDrops++
		return
	}
	if w.burstDrop > 0 {
		w.burstDrop--
		w.FaultDrops++
		return
	}
	if w.lossRate > 0 && w.eng.Rand().Float64() < w.lossRate {
		w.FaultDrops++
		return
	}
	w.Delivered++
	if w.dupNext > 0 && p.Kind == packet.KindData {
		w.dupNext--
		w.DupInjected++
		// Packet structs are all value fields, so a shallow copy is a full
		// duplicate. The original arrives first, the copy right behind it
		// (same arrival time, FIFO event order).
		cp := *p
		w.eng.AfterComp(w.delay, w.comp, func() { w.dst.Receive(p, w.ingress) })
		w.eng.AfterComp(w.delay, w.comp, func() { w.dst.Receive(&cp, w.ingress) })
		return
	}
	w.eng.AfterComp(w.delay, w.comp, func() { w.dst.Receive(p, w.ingress) })
}

// SetAdminDown takes the wire administratively down or up. While down,
// every packet handed to the wire is silently discarded.
func (w *Wire) SetAdminDown(down bool) { w.adminDown = down }

// AdminDown reports whether the wire is administratively down.
func (w *Wire) AdminDown() bool { return w.adminDown }

// SetLossRate sets the wire's instantaneous random loss probability
// (0 disables). Draws come from the engine's seeded random source, so a
// given seed reproduces the same losses.
func (w *Wire) SetLossRate(r float64) { w.lossRate = r }

// LossRate returns the current injected loss probability.
func (w *Wire) LossRate() float64 { return w.lossRate }

// InjectBurst discards the next n packets handed to the wire — a
// correlated error burst.
func (w *Wire) InjectBurst(n int) {
	if n > 0 {
		w.burstDrop += n
	}
}

// InjectDup makes the wire deliver the next n data packets twice — a
// duplicating fabric (mis-wired multicast, a flaky retimer). DCP's
// receiver must reject the copies; the flight recorder's exactly-once
// invariant uses this to prove it notices when something double-counts.
func (w *Wire) InjectDup(n int) {
	if n > 0 {
		w.dupNext += n
	}
}

// Src returns the port transmitting onto this wire (nil before NewPort).
func (w *Wire) Src() *Port { return w.src }

// PauseSource asserts or clears PFC pause on the port feeding this wire,
// after one propagation delay (the time a real PAUSE frame would take to
// travel upstream on the reverse wire).
func (w *Wire) PauseSource(on bool) {
	if w.src == nil {
		return
	}
	w.eng.AfterComp(w.delay, sim.CompFabric, func() { w.src.SetDataPaused(on) })
}

// Scheduler is a port's queue discipline. Next returns the next packet to
// transmit or nil. When dataPaused is true (PFC PAUSE asserted by the
// downstream ingress) only control-plane packets (ACK/CNP/HO, which ride a
// separate priority in real deployments) may be returned.
type Scheduler interface {
	Next(dataPaused bool) *packet.Packet
	// Backlog returns the queued bytes (all queues), used by tests and
	// adaptive routing on NIC-less ports.
	Backlog() int
}

// Port serializes packets from its scheduler onto its wire at a fixed rate.
// It is work-conserving: Kick must be called whenever new work may be
// available (after an enqueue, unpause, or pacing deadline).
type Port struct {
	eng   *sim.Engine
	rate  units.Rate
	wire  *Wire
	sched Scheduler
	comp  sim.Comp // profiler attribution of tx-completion events

	busy        bool
	dataPaused  bool
	forcedPause bool // fault injection: held paused regardless of PFC

	// OnDequeue, if set, is invoked when a packet starts transmission
	// (switches use it to credit buffer accounting).
	OnDequeue func(p *packet.Packet)

	// Tap, if set, observes every packet as it begins serialization —
	// the hook packet capture and tracing attach to.
	Tap func(p *packet.Packet)

	// TxBytes and TxPackets count transmitted traffic.
	TxBytes   int64
	TxPackets int64
	// PausedTime accumulates time spent paused, for PFC statistics.
	PausedTime  units.Time
	pausedSince units.Time
}

// NewPort creates a port transmitting at rate onto wire, fed by sched.
func NewPort(eng *sim.Engine, rate units.Rate, wire *Wire, sched Scheduler) *Port {
	p := &Port{eng: eng, rate: rate, wire: wire, sched: sched, comp: sim.CompFabric}
	if wire != nil {
		wire.src = p
	}
	return p
}

// SetComp overrides the profiler component this port's tx-completion
// events are attributed to (a host NIC's egress port tags CompNIC — the
// completion closure pulls the next packet from the transport, which is
// host work).
func (p *Port) SetComp(c sim.Comp) { p.comp = c }

// Rate returns the port's line rate.
func (p *Port) Rate() units.Rate { return p.rate }

// SetRate changes the line rate (used to model unequal parallel paths).
func (p *Port) SetRate(r units.Rate) { p.rate = r }

// DataPaused reports whether PFC pause is asserted.
func (p *Port) DataPaused() bool { return p.dataPaused }

// ForcedPause reports whether a fault-injected pause is asserted.
func (p *Port) ForcedPause() bool { return p.forcedPause }

// paused is the effective pause state: PFC pause OR a forced (injected)
// pause storm.
func (p *Port) paused() bool { return p.dataPaused || p.forcedPause }

// SetDataPaused asserts or clears PFC pause for data traffic. The packet
// currently being serialized (if any) completes, as with real PFC.
func (p *Port) SetDataPaused(on bool) {
	if p.dataPaused == on {
		return
	}
	was := p.paused()
	p.dataPaused = on
	p.pauseEdge(was)
}

// SetForcedPause asserts or clears a fault-injected pause (a pause storm:
// the port behaves as if the peer kept it XOFF'd). It ORs with PFC pause.
func (p *Port) SetForcedPause(on bool) {
	if p.forcedPause == on {
		return
	}
	was := p.paused()
	p.forcedPause = on
	p.pauseEdge(was)
}

// pauseEdge accounts a transition of the effective pause state.
func (p *Port) pauseEdge(was bool) {
	now := p.paused()
	if was == now {
		return
	}
	if now {
		p.pausedSince = p.eng.Now()
	} else {
		p.PausedTime += p.eng.Now() - p.pausedSince
		p.Kick()
	}
}

// Kick attempts to start transmitting the next packet. Idempotent.
func (p *Port) Kick() {
	if p.busy {
		return
	}
	pkt := p.sched.Next(p.paused())
	if pkt == nil {
		return
	}
	if p.OnDequeue != nil {
		p.OnDequeue(pkt)
	}
	if p.Tap != nil {
		p.Tap(pkt)
	}
	p.busy = true
	tx := units.TxTime(pkt.Size, p.rate)
	p.TxBytes += int64(pkt.Size)
	p.TxPackets++
	p.eng.AfterComp(tx, p.comp, func() {
		p.busy = false
		p.wire.Deliver(pkt)
		p.Kick()
	})
}

// Busy reports whether a packet is currently being serialized.
func (p *Port) Busy() bool { return p.busy }

// fifoQueue is a simple byte-counted FIFO of packets.
type fifoQueue struct {
	pkts  []*packet.Packet
	head  int
	bytes int
}

func (q *fifoQueue) push(p *packet.Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
}

func (q *fifoQueue) pop() *packet.Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return p
}

func (q *fifoQueue) len() int     { return len(q.pkts) - q.head }
func (q *fifoQueue) byteLen() int { return q.bytes }
func (q *fifoQueue) empty() bool  { return q.len() == 0 }

// drainInto appends every queued packet to out and empties the queue.
func (q *fifoQueue) drainInto(out []*packet.Packet) []*packet.Packet {
	for !q.empty() {
		out = append(out, q.pop())
	}
	return out
}

// FIFOScheduler is a single FIFO queue; pause holds everything but
// control-plane packets at the head (sufficient for host-facing ports in
// tests).
type FIFOScheduler struct {
	q fifoQueue
}

// Enqueue adds a packet.
func (s *FIFOScheduler) Enqueue(p *packet.Packet) { s.q.push(p) }

// Next implements Scheduler.
func (s *FIFOScheduler) Next(dataPaused bool) *packet.Packet {
	if s.q.empty() {
		return nil
	}
	if dataPaused {
		// Only a control packet at the head may pass; we do not reorder.
		if head := s.q.pkts[s.q.head]; head.Kind == packet.KindData {
			return nil
		}
	}
	return s.q.pop()
}

// Backlog implements Scheduler.
func (s *FIFOScheduler) Backlog() int { return s.q.byteLen() }

// Len returns queued packets.
func (s *FIFOScheduler) Len() int { return s.q.len() }

// PullScheduler adapts a pull function (a NIC asking its transport for the
// next packet) to the Scheduler interface.
type PullScheduler struct {
	Pull func(dataPaused bool) *packet.Packet
}

// Next implements Scheduler.
func (s *PullScheduler) Next(dataPaused bool) *packet.Packet { return s.Pull(dataPaused) }

// Backlog implements Scheduler; pull sources have no local queue.
func (s *PullScheduler) Backlog() int { return 0 }
