package fabric

import (
	"fmt"
	"math/rand"

	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// LBPolicy selects among equal-cost egress ports.
type LBPolicy int

// Load-balancing policies.
const (
	// LBECMP hashes the flow (and PathKey) to one path: flow-level.
	LBECMP LBPolicy = iota
	// LBAdaptive picks the candidate egress with the least queued data
	// bytes, per packet — the in-network adaptive routing the paper
	// implements in the switch ingress pipeline (§5).
	LBAdaptive
	// LBSpray picks a uniformly random candidate per packet.
	LBSpray
)

func (l LBPolicy) String() string {
	switch l {
	case LBECMP:
		return "ECMP"
	case LBAdaptive:
		return "AR"
	case LBSpray:
		return "Spray"
	default:
		return fmt.Sprintf("LB(%d)", int(l))
	}
}

// SwitchConfig parameterizes a switch.
type SwitchConfig struct {
	// BufferBytes is the shared packet buffer.
	BufferBytes int
	// Lossless enables PFC: nothing is dropped or trimmed; per-ingress
	// occupancy beyond XOFF pauses the upstream port.
	Lossless bool
	// PFCXoff / PFCXon are the per-ingress pause thresholds in bytes.
	PFCXoff, PFCXon int
	// Trimming enables the DCP packet trimming module: over-threshold DCP
	// data packets become header-only packets in the control queue.
	Trimming bool
	// TrimThreshold is the egress data-queue depth (bytes) beyond which
	// packets are trimmed (DCP data) or dropped (everything else).
	TrimThreshold int
	// CtrlQueueCap bounds the control queue (bytes); overflow drops HO
	// packets (the Table 5 loss mode).
	CtrlQueueCap int
	// WRRWeight is the control:data byte-share ratio of the DCP WRR
	// scheduler. Ignored when Lossless (strict priority is used).
	WRRWeight float64
	// ECNKmin/ECNKmax/ECNPmax configure RED-style ECN marking on the data
	// queue (for DCQCN). Zero Kmax disables marking.
	ECNKmin, ECNKmax int
	ECNPmax          float64
	// LB is the load-balancing policy across equal-cost paths.
	LB LBPolicy
	// LossRate injects uniform random loss on data packets at egress
	// enqueue (the Fig. 10/17 "enforced loss" switch behaviour): DCP data
	// is trimmed, everything else is dropped.
	LossRate float64
	// DirectHOReturn implements the §7 "back-to-sender" alternative: the
	// switch maintains the sender↔receiver QPN mapping and bounces trimmed
	// HO packets straight back to the sender, skipping the receiver. Saves
	// up to half an RTT of loss-notification latency at the cost of
	// per-connection switch state (which is why the paper rejects it).
	DirectHOReturn bool
}

// DefaultSwitchConfig returns the configuration used by the paper's lossy
// simulations: 32 MB shared buffer, trimming at a 1 MB egress data-queue
// depth (the per-port share of the shared buffer — deep enough that
// WebSearch at load 0.3 sees no loss, matching Fig. 1's observation, while
// incast bursts trim), DCQCN-compatible ECN thresholds, control queue
// capped at 2 MB.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{
		BufferBytes:   32 * units.MB,
		Trimming:      true,
		TrimThreshold: 1 * units.MB,
		CtrlQueueCap:  2 * units.MB,
		WRRWeight:     4,
		ECNKmin:       100 * units.KB,
		ECNKmax:       400 * units.KB,
		ECNPmax:       0.2,
		LB:            LBAdaptive,
	}
}

// SwitchCounters aggregates per-switch statistics.
type SwitchCounters struct {
	RxPackets    int64
	TrimmedPkts  int64 // data packets converted to HO
	DroppedData  int64 // data packets dropped (non-DCP or buffer full)
	DroppedAck   int64 // ACK/CNP drops
	DroppedHO    int64 // HO packets lost (control queue overflow)
	HOEnqueued   int64 // HO packets entering a control queue
	ECNMarked    int64
	ForcedLosses int64 // injected by LossRate
	PauseOn      int64 // PFC pause assertions
	// BlackoutDrops counts packets lost to an injected switch blackout:
	// the buffered packets flushed when the switch goes dark plus every
	// arrival discarded while it is down.
	BlackoutDrops int64
	// LinkDownDrops counts packets flushed from a dead egress that could
	// not be rescued by trimming (trimmed rescues count as TrimmedPkts).
	LinkDownDrops int64
	MaxBufUsed    int
}

// Egress is one switch output port: the line-rate serializer plus the
// data/control queues.
type Egress struct {
	Port  *Port
	sched switchScheduler
	idx   int32 // this egress's index on its switch, for tracing
	down  bool  // link-down fault: data-plane port status
}

// LinkDown reports whether the egress link is marked down.
func (e *Egress) LinkDown() bool { return e.down }

// QueuedDataBytes returns the egress data-queue depth (the signal adaptive
// routing and trimming use).
func (e *Egress) QueuedDataBytes() int { return e.sched.dataBytes() }

// QueuedCtrlBytes returns the control-queue depth.
func (e *Egress) QueuedCtrlBytes() int { return e.sched.ctrlBytes() }

// Switch is an output-queued shared-buffer switch.
type Switch struct {
	eng *sim.Engine
	id  packet.NodeID
	cfg SwitchConfig
	rng *rand.Rand

	egress  []*Egress
	ingress []*Wire // ingress index -> arriving wire (for PFC pause)

	ingressBytes  []int
	ingressPaused []bool

	bufUsed  int
	blackout bool

	// routes[dst] lists candidate egress port indices for destination
	// host dst. Built by package topo.
	routes [][]int

	// trace, when non-nil, receives packet-lifecycle events (enqueue, trim,
	// drops, ECN, pause). Every emission site nil-checks first so the
	// disabled hot path is a single comparison.
	trace *obs.Tracer

	Counters SwitchCounters
}

// NewSwitch creates a switch with the given node id and config.
func NewSwitch(eng *sim.Engine, id packet.NodeID, cfg SwitchConfig) *Switch {
	return &Switch{eng: eng, id: id, cfg: cfg, rng: eng.Rand()}
}

// ID returns the switch's node id.
func (s *Switch) ID() packet.NodeID { return s.id }

// Config returns the switch configuration.
func (s *Switch) Config() SwitchConfig { return s.cfg }

// AddEgress attaches an output port transmitting at rate onto wire and
// returns its index.
func (s *Switch) AddEgress(rate units.Rate, wire *Wire) int {
	var sched switchScheduler
	if s.cfg.Lossless {
		sched = &prioScheduler{}
	} else {
		sched = newDRRScheduler(s.cfg.WRRWeight)
	}
	port := NewPort(s.eng, rate, wire, sched)
	port.OnDequeue = s.onDequeue
	s.egress = append(s.egress, &Egress{Port: port, sched: sched, idx: int32(len(s.egress))})
	return len(s.egress) - 1
}

// SetTrace attaches (or with nil detaches) the observability trace sink.
// The sink only observes: attaching one never changes switch behaviour.
func (s *Switch) SetTrace(tr *obs.Tracer) { s.trace = tr }

// AddIngress registers an arriving wire and returns the ingress index the
// wire must deliver with.
func (s *Switch) AddIngress(w *Wire) int {
	s.ingress = append(s.ingress, w)
	s.ingressBytes = append(s.ingressBytes, 0)
	s.ingressPaused = append(s.ingressPaused, false)
	return len(s.ingress) - 1
}

// SetRoutes installs the destination → candidate egress table.
func (s *Switch) SetRoutes(routes [][]int) { s.routes = routes }

// EgressAt returns egress port i.
func (s *Switch) EgressAt(i int) *Egress { return s.egress[i] }

// NumEgress returns the number of output ports.
func (s *Switch) NumEgress() int { return len(s.egress) }

// Receive implements Receiver: route, then enqueue at the chosen egress.
func (s *Switch) Receive(p *packet.Packet, ingress int) {
	if s.blackout {
		// A dark switch forwards nothing; arrivals vanish silently.
		s.Counters.BlackoutDrops++
		if s.trace != nil {
			s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvDataDrop, Node: s.id, Port: -1,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Note: "blackout"})
		}
		return
	}
	s.Counters.RxPackets++
	p.Hops++
	out := s.pickEgress(p)
	if out < 0 {
		panic(fmt.Sprintf("fabric: switch %d has no route to %d", s.id, p.Dst))
	}
	s.enqueue(out, p, ingress)
}

func (s *Switch) pickEgress(p *packet.Packet) int {
	if int(p.Dst) >= len(s.routes) || len(s.routes[p.Dst]) == 0 {
		return -1
	}
	cands := s.routes[p.Dst]
	if len(cands) == 1 {
		return cands[0]
	}
	// Per-packet policies (adaptive, spray) are data-plane: they see port
	// status and skip dead links immediately. ECMP is static routing — it
	// keeps hashing onto a dead port (blackholing) until the link returns,
	// which is the failure mode the fault experiments measure.
	switch s.cfg.LB {
	case LBECMP:
		h := hash64(p.FlowID ^ uint64(p.PathKey)<<32)
		return cands[h%uint64(len(cands))]
	case LBSpray:
		up := 0
		for _, c := range cands {
			if !s.egress[c].down {
				up++
			}
		}
		if up == 0 {
			return cands[s.rng.Intn(len(cands))]
		}
		k := s.rng.Intn(up)
		for _, c := range cands {
			if s.egress[c].down {
				continue
			}
			if k == 0 {
				return c
			}
			k--
		}
		return cands[0] // unreachable
	default: // LBAdaptive: least queued data bytes, random tie-break
		best, bestQ, ties := -1, 0, 0
		for _, c := range cands {
			if s.egress[c].down {
				continue
			}
			q := s.egress[c].sched.dataBytes()
			switch {
			case best < 0 || q < bestQ:
				best, bestQ, ties = c, q, 1
			case q == bestQ:
				// Reservoir-sample among equals so idle ports don't all
				// resolve to the lowest index.
				ties++
				if s.rng.Intn(ties) == 0 {
					best = c
				}
			}
		}
		if best < 0 {
			// Every candidate is down: blackhole onto the hash choice.
			h := hash64(p.FlowID ^ uint64(p.PathKey)<<32)
			return cands[h%uint64(len(cands))]
		}
		return best
	}
}

// ECMPIndex returns the candidate index ECMP picks for a flow among n
// equal-cost paths (exported so experiments can construct deterministic
// hash collisions, which are the phenomenon Fig. 11 studies).
func ECMPIndex(flowID uint64, pathKey uint32, n int) int {
	return int(hash64(flowID^uint64(pathKey)<<32) % uint64(n))
}

// hash64 is a splitmix64-style mixer: deterministic flow hashing.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

func (s *Switch) enqueue(out int, p *packet.Packet, ingress int) {
	e := s.egress[out]
	if s.cfg.Lossless {
		s.enqueueLossless(e, p, ingress)
		return
	}

	// Forced random loss (Fig. 10 / Fig. 17): the P4 switch trims DCP
	// traffic where it would drop other traffic.
	if s.cfg.LossRate > 0 && p.Kind == packet.KindData && s.rng.Float64() < s.cfg.LossRate {
		s.Counters.ForcedLosses++
		if p.Tag == packet.TagData && s.cfg.Trimming {
			s.trimInto(e, p, ingress)
		} else {
			s.Counters.DroppedData++
			if s.trace != nil {
				s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvDataDrop, Node: s.id, Port: e.idx,
					Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Note: "forced-loss"})
			}
		}
		return
	}

	switch p.Kind {
	case packet.KindHO:
		s.ctrlEnqueue(e, p, ingress)
		return
	case packet.KindData:
		over := e.sched.dataBytes() > s.cfg.TrimThreshold || s.bufUsed+p.Size > s.cfg.BufferBytes
		if over {
			if p.Tag == packet.TagData && s.cfg.Trimming {
				s.trimInto(e, p, ingress)
			} else {
				s.Counters.DroppedData++
				if s.trace != nil {
					s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvDataDrop, Node: s.id, Port: e.idx,
						Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: int64(e.sched.dataBytes()), Note: "overflow"})
				}
			}
			return
		}
		s.maybeMarkECN(e, p)
		s.charge(p, ingress)
		if s.trace != nil {
			s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvEnqueue, Node: s.id, Port: e.idx,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: int64(e.sched.dataBytes() + p.Size)})
		}
		e.sched.pushData(p)
	case packet.KindAck, packet.KindCNP:
		// DCP ACK packets (tag 01) and non-DCP control are dropped over
		// threshold (§4.2).
		if e.sched.dataBytes() > s.cfg.TrimThreshold || s.bufUsed+p.Size > s.cfg.BufferBytes {
			s.Counters.DroppedAck++
			if s.trace != nil {
				s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvAckDrop, Node: s.id, Port: e.idx,
					Flow: p.FlowID, Size: int32(p.Size), Aux: int64(e.sched.dataBytes())})
			}
			return
		}
		s.charge(p, ingress)
		e.sched.pushData(p)
	default:
		// PFC frames never reach routing in this model.
		s.Counters.DroppedData++
		return
	}
	e.Port.Kick()
}

func (s *Switch) trimInto(e *Egress, p *packet.Packet, ingress int) {
	p.Trim()
	s.Counters.TrimmedPkts++
	if s.trace != nil {
		s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvTrim, Node: s.id, Port: e.idx,
			Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: int64(e.sched.dataBytes())})
	}
	if s.cfg.DirectHOReturn {
		// Back-to-sender (§7): swap endpoints here and re-route the HO
		// packet toward the sender. The fabric-wide QPN mapping a real
		// switch would need is implicit in the simulator's packet state.
		p.Bounce()
		out := s.pickEgress(p)
		if out >= 0 {
			s.ctrlEnqueue(s.egress[out], p, ingress)
			return
		}
	}
	s.ctrlEnqueue(e, p, ingress)
}

func (s *Switch) ctrlEnqueue(e *Egress, p *packet.Packet, ingress int) {
	if e.sched.ctrlBytes()+p.Size > s.cfg.CtrlQueueCap || s.bufUsed+p.Size > s.cfg.BufferBytes {
		s.Counters.DroppedHO++
		if s.trace != nil {
			s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvHODrop, Node: s.id, Port: e.idx,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: int64(e.sched.ctrlBytes())})
		}
		return
	}
	s.Counters.HOEnqueued++
	s.charge(p, ingress)
	if s.trace != nil {
		s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvHOEnqueue, Node: s.id, Port: e.idx,
			Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: int64(e.sched.ctrlBytes() + p.Size)})
	}
	e.sched.pushCtrl(p)
	e.Port.Kick()
}

func (s *Switch) enqueueLossless(e *Egress, p *packet.Packet, ingress int) {
	if s.bufUsed+p.Size > s.cfg.BufferBytes {
		// PFC mis-configuration (insufficient headroom): account and drop.
		s.Counters.DroppedData++
		return
	}
	if p.Kind == packet.KindData {
		s.maybeMarkECN(e, p)
		s.charge(p, ingress)
		e.sched.pushData(p)
	} else {
		s.charge(p, ingress)
		e.sched.pushCtrl(p)
	}
	s.checkPause(ingress)
	e.Port.Kick()
}

func (s *Switch) maybeMarkECN(e *Egress, p *packet.Packet) {
	if s.cfg.ECNKmax <= 0 {
		return
	}
	q := e.sched.dataBytes()
	if q <= s.cfg.ECNKmin {
		return
	}
	var mark bool
	if q >= s.cfg.ECNKmax {
		mark = true
	} else {
		frac := float64(q-s.cfg.ECNKmin) / float64(s.cfg.ECNKmax-s.cfg.ECNKmin)
		mark = s.rng.Float64() < frac*s.cfg.ECNPmax
	}
	if mark {
		p.ECN = true
		s.Counters.ECNMarked++
		if s.trace != nil {
			s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvECNMark, Node: s.id, Port: e.idx,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: int64(q)})
		}
	}
}

func (s *Switch) charge(p *packet.Packet, ingress int) {
	s.bufUsed += p.Size
	if s.bufUsed > s.Counters.MaxBufUsed {
		s.Counters.MaxBufUsed = s.bufUsed
	}
	p.BufIngress = int32(ingress)
	if ingress >= 0 && ingress < len(s.ingressBytes) {
		s.ingressBytes[ingress] += p.Size
	}
}

func (s *Switch) onDequeue(p *packet.Packet) {
	s.bufUsed -= p.Size
	in := int(p.BufIngress)
	if in >= 0 && in < len(s.ingressBytes) {
		s.ingressBytes[in] -= p.Size
		if s.cfg.Lossless {
			s.checkPause(in)
		}
	}
}

// checkPause asserts or clears PFC pause toward the upstream feeding
// ingress i based on its buffered bytes.
func (s *Switch) checkPause(i int) {
	if !s.cfg.Lossless || i < 0 || i >= len(s.ingressBytes) {
		return
	}
	if !s.ingressPaused[i] && s.ingressBytes[i] > s.cfg.PFCXoff {
		s.ingressPaused[i] = true
		s.Counters.PauseOn++
		if s.trace != nil {
			s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvPause, Node: s.id, Port: int32(i),
				Aux: int64(s.ingressBytes[i])})
		}
		s.ingress[i].PauseSource(true)
	} else if s.ingressPaused[i] && s.ingressBytes[i] < s.cfg.PFCXon {
		s.ingressPaused[i] = false
		s.ingress[i].PauseSource(false)
	}
}

// BufUsed returns the current shared-buffer occupancy in bytes.
func (s *Switch) BufUsed() int { return s.bufUsed }

// SetLossRate changes the enforced-loss probability at egress enqueue
// (time-varying degraded-switch faults). Unlike wire loss this is visible
// loss: DCP data packets are trimmed into HO notifications.
func (s *Switch) SetLossRate(r float64) { s.cfg.LossRate = r }

// Blackout reports whether the switch is dark.
func (s *Switch) Blackout() bool { return s.blackout }

// SetBlackout takes the switch dark (a crash/reboot) or brings it back.
// Going dark flushes every queued packet — they are gone, exactly as a
// power-cycled ASIC loses its buffer — and stops asserting PFC pause
// upstream (a dead switch sends no PAUSE refreshes). While dark, all
// arriving traffic is discarded. Coming back restores an empty switch;
// routing tables are static configuration and survive the reboot.
func (s *Switch) SetBlackout(on bool) {
	if s.blackout == on {
		return
	}
	s.blackout = on
	if !on {
		return
	}
	for _, e := range s.egress {
		for _, p := range e.sched.drain() {
			s.uncharge(p)
			s.Counters.BlackoutDrops++
			if s.trace != nil {
				s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvDataDrop, Node: s.id, Port: e.idx,
					Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Note: "blackout"})
			}
		}
	}
	for i := range s.ingressPaused {
		if s.ingressPaused[i] {
			s.ingressPaused[i] = false
			s.ingress[i].PauseSource(false)
		}
	}
}

// SetEgressLinkDown marks egress i's link down or up. On down the egress
// queues are flushed the way a real switch flushes a dead port — but a
// trimming (DCP) switch rescues the queued DCP data packets: it trims them
// into header-only packets and re-routes them through the surviving ports,
// so the losses stay visible to senders. Everything else is dropped.
// Packets mid-flight on the wire itself are the transmitter's problem (see
// Wire.SetAdminDown). Marking the egress down also steers adaptive routing
// and spraying away from it; ECMP keeps blackholing (static routes).
func (s *Switch) SetEgressLinkDown(i int, down bool) {
	e := s.egress[i]
	if e.down == down {
		return
	}
	e.down = down
	if !down {
		return
	}
	for _, p := range e.sched.drain() {
		s.uncharge(p)
		if p.Tag == packet.TagData && s.cfg.Trimming && !s.cfg.Lossless {
			p.Trim()
			s.Counters.TrimmedPkts++
			if s.trace != nil {
				s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvTrim, Node: s.id, Port: e.idx,
					Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Note: "linkdown-rescue"})
			}
			if out := s.pickEgress(p); out >= 0 && out != i && !s.egress[out].down {
				s.ctrlEnqueue(s.egress[out], p, int(p.BufIngress))
				continue
			}
			s.Counters.DroppedHO++
			if s.trace != nil {
				s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvHODrop, Node: s.id, Port: e.idx,
					Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Note: "linkdown"})
			}
			continue
		}
		s.Counters.LinkDownDrops++
		if s.trace != nil {
			s.trace.Emit(obs.Event{At: s.eng.Now(), Type: obs.EvDataDrop, Node: s.id, Port: e.idx,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Note: "linkdown"})
		}
	}
	if s.cfg.Lossless {
		// Flushing freed per-ingress buffer credit; release stale pauses.
		for in := range s.ingressBytes {
			s.checkPause(in)
		}
	}
}

// uncharge reverses charge for a packet flushed from a queue (it will
// never reach onDequeue).
func (s *Switch) uncharge(p *packet.Packet) {
	s.bufUsed -= p.Size
	if in := int(p.BufIngress); in >= 0 && in < len(s.ingressBytes) {
		s.ingressBytes[in] -= p.Size
	}
}
