package fabric

import (
	"testing"

	"dcpsim/internal/packet"
)

// dataPkt is shared with fabric_test.go.

func edgeCtrlPkt() *packet.Packet {
	p := packet.DataPacket(1, 0, 1, 0, 0, 0)
	p.Trim()
	return p
}

// Zero or negative WRR weight must degrade to 1:1, not a zero quantum that
// starves the control queue forever.
func TestDRRZeroWeightDefaultsToOne(t *testing.T) {
	for _, w := range []float64{0, -3} {
		s := newDRRScheduler(w)
		if s.ctrlQ != drrBaseQuantum {
			t.Fatalf("weight %v: ctrl quantum %d, want %d", w, s.ctrlQ, drrBaseQuantum)
		}
		s.pushCtrl(edgeCtrlPkt())
		s.pushData(dataPkt(1000))
		if p := s.Next(false); p == nil || !p.IsControl() {
			t.Fatalf("weight %v: control packet not served first", w)
		}
	}
}

// An empty control queue must never stall data (and vice versa): the
// deficit loop has to terminate by serving the sole backlogged queue.
func TestDRRSingleQueueDegenerate(t *testing.T) {
	s := newDRRScheduler(2)
	for i := 0; i < 3; i++ {
		s.pushData(dataPkt(1500))
	}
	for i := 0; i < 3; i++ {
		if p := s.Next(false); p == nil || p.IsControl() {
			t.Fatal("data-only backlog not drained")
		}
	}
	if s.Next(false) != nil {
		t.Fatal("empty scheduler returned a packet")
	}
	for i := 0; i < 3; i++ {
		s.pushCtrl(edgeCtrlPkt())
	}
	for i := 0; i < 3; i++ {
		if p := s.Next(false); p == nil || !p.IsControl() {
			t.Fatal("control-only backlog not drained")
		}
	}
}

// With data paused, a DRR port may only emit control packets, and the data
// deficit must not bank credit while paused.
func TestDRRPausedDataBanksNoCredit(t *testing.T) {
	s := newDRRScheduler(1)
	s.pushData(dataPkt(1500))
	for i := 0; i < 4; i++ {
		s.pushCtrl(edgeCtrlPkt())
	}
	for i := 0; i < 4; i++ {
		if p := s.Next(true); p == nil || !p.IsControl() {
			t.Fatal("paused scheduler must serve control only")
		}
	}
	if s.dataDef != 0 {
		t.Fatalf("paused data queue banked %d bytes of deficit", s.dataDef)
	}
	if p := s.Next(false); p == nil || p.IsControl() {
		t.Fatal("unpaused data packet not served")
	}
}

// drain must return every queued packet, control first, and reset deficits
// so a revived port starts a clean round.
func TestDRRDrainReturnsEverythingCtrlFirst(t *testing.T) {
	s := newDRRScheduler(2)
	for i := 0; i < 2; i++ {
		s.pushCtrl(edgeCtrlPkt())
	}
	for i := 0; i < 3; i++ {
		s.pushData(dataPkt(1000))
	}
	s.Next(false) // start a round so deficits are nonzero
	out := s.drain()
	if len(out) != 4 { // Next consumed one of the five
		t.Fatalf("drain returned %d packets, want 4", len(out))
	}
	if !out[0].IsControl() {
		t.Fatal("drain must return control packets first")
	}
	if s.Backlog() != 0 {
		t.Fatalf("backlog %d after drain, want 0", s.Backlog())
	}
	if s.ctrlDef != 0 || s.dataDef != 0 {
		t.Fatal("drain must reset deficit counters")
	}
	if s.Next(false) != nil {
		t.Fatal("drained scheduler returned a packet")
	}
}

func TestPrioDrainReturnsEverything(t *testing.T) {
	s := &prioScheduler{}
	s.pushData(dataPkt(1000))
	s.pushCtrl(edgeCtrlPkt())
	out := s.drain()
	if len(out) != 2 || !out[0].IsControl() {
		t.Fatalf("prio drain = %d packets (ctrl-first=%v), want 2 ctrl-first", len(out), len(out) > 0 && out[0].IsControl())
	}
	if s.Backlog() != 0 {
		t.Fatal("backlog after prio drain")
	}
}

// WRRWeight clamps: an infeasible ratio (r <= N-1) returns maxW, and the
// weight never drops below 0.1.
func TestWRRWeightClamps(t *testing.T) {
	if w := WRRWeight(64, 28, 8); w != 8 {
		t.Fatalf("infeasible ratio: weight %v, want maxW 8", w)
	}
	if w := WRRWeight(2, 1000, 8); w != 0.1 {
		t.Fatalf("tiny weight not floored: %v, want 0.1", w)
	}
	if w := WRRWeight(16, 28, 8); w <= 0.1 || w >= 8 {
		t.Fatalf("feasible ratio clamped: %v", w)
	}
}
