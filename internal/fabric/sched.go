package fabric

import (
	"math"

	"dcpsim/internal/packet"
)

// switchScheduler is the egress discipline of one switch port: a data queue
// plus a control queue, drained either by byte-weighted WRR (the DCP
// switch, §4.2) or by strict priority (the PFC/lossless configuration,
// where the control queue carries ACK/CNP on an unpausable priority).
type switchScheduler interface {
	Scheduler
	pushData(p *packet.Packet)
	pushCtrl(p *packet.Packet)
	dataBytes() int
	ctrlBytes() int
	// drain removes and returns every queued packet (control first), used
	// when a port's link dies or the whole switch blacks out.
	drain() []*packet.Packet
}

// drrScheduler implements the DCP weighted round-robin as a byte-based
// deficit round robin between the control and data queues. With quanta in
// ratio w:1 the control queue receives a w/(1+w) bandwidth share when both
// queues are backlogged, matching the paper's drain-rate analysis.
type drrScheduler struct {
	ctrl, data       fifoQueue
	ctrlQ, dataQ     int // quanta in bytes
	ctrlDef, dataDef int // deficit counters
}

// drrBaseQuantum is the data-queue quantum; one full-size frame so that a
// single round never bursts more than a packet per queue beyond its share.
const drrBaseQuantum = 1600

func newDRRScheduler(weight float64) *drrScheduler {
	if weight <= 0 {
		weight = 1
	}
	return &drrScheduler{
		ctrlQ: int(math.Ceil(weight * drrBaseQuantum)),
		dataQ: drrBaseQuantum,
	}
}

func (s *drrScheduler) pushData(p *packet.Packet) { s.data.push(p) }
func (s *drrScheduler) pushCtrl(p *packet.Packet) { s.ctrl.push(p) }
func (s *drrScheduler) dataBytes() int            { return s.data.byteLen() }
func (s *drrScheduler) ctrlBytes() int            { return s.ctrl.byteLen() }
func (s *drrScheduler) Backlog() int              { return s.data.byteLen() + s.ctrl.byteLen() }

func (s *drrScheduler) drain() []*packet.Packet {
	s.ctrlDef, s.dataDef = 0, 0
	return s.data.drainInto(s.ctrl.drainInto(nil))
}

func (s *drrScheduler) Next(dataPaused bool) *packet.Packet {
	ctrlEmpty := s.ctrl.empty()
	dataEmpty := s.data.empty() || dataPaused
	if ctrlEmpty && dataEmpty {
		// Idle: reset deficits so an idle queue does not bank credit.
		s.ctrlDef, s.dataDef = 0, 0
		return nil
	}
	for {
		if !s.ctrl.empty() {
			if head := s.ctrl.pkts[s.ctrl.head]; s.ctrlDef >= head.Size {
				s.ctrlDef -= head.Size
				return s.ctrl.pop()
			}
		}
		if !s.data.empty() && !dataPaused {
			if head := s.data.pkts[s.data.head]; s.dataDef >= head.Size {
				s.dataDef -= head.Size
				return s.data.pop()
			}
		}
		// Neither head fits its deficit: start a new round.
		if s.ctrl.empty() {
			s.ctrlDef = 0
		} else {
			s.ctrlDef += s.ctrlQ
		}
		if s.data.empty() || dataPaused {
			s.dataDef = 0
		} else {
			s.dataDef += s.dataQ
		}
	}
}

// prioScheduler serves the control queue with strict priority; the data
// queue is subject to PFC pause. Used by lossless (PFC) switch ports.
type prioScheduler struct {
	ctrl, data fifoQueue
}

func (s *prioScheduler) pushData(p *packet.Packet) { s.data.push(p) }
func (s *prioScheduler) pushCtrl(p *packet.Packet) { s.ctrl.push(p) }
func (s *prioScheduler) dataBytes() int            { return s.data.byteLen() }
func (s *prioScheduler) ctrlBytes() int            { return s.ctrl.byteLen() }
func (s *prioScheduler) Backlog() int              { return s.data.byteLen() + s.ctrl.byteLen() }

func (s *prioScheduler) drain() []*packet.Packet {
	return s.data.drainInto(s.ctrl.drainInto(nil))
}

func (s *prioScheduler) Next(dataPaused bool) *packet.Packet {
	if !s.ctrl.empty() {
		return s.ctrl.pop()
	}
	if dataPaused {
		return nil
	}
	return s.data.pop()
}

// WRRWeight returns the control-queue WRR weight of §4.2 for a switch with
// radix n and a data:HO size ratio r: w = (N-1)/(r-N+1). The law only holds
// for r > N-1; beyond that no weight guarantees losslessness, so the weight
// is clamped to maxW (the paper observes a small weight still handles
// extreme incast in practice).
func WRRWeight(n int, r float64, maxW float64) float64 {
	den := r - float64(n) + 1
	if den <= 0 {
		return maxW
	}
	w := float64(n-1) / den
	if w > maxW {
		return maxW
	}
	if w < 0.1 {
		return 0.1
	}
	return w
}
