package fabric

import (
	"testing"

	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// collector gathers delivered packets.
type collector struct {
	pkts []*packet.Packet
	at   []units.Time
	eng  *sim.Engine
}

func (c *collector) Receive(p *packet.Packet, _ int) {
	c.pkts = append(c.pkts, p)
	c.at = append(c.at, c.eng.Now())
}

func (c *collector) AddIngress(w *Wire) int { return 0 }

func dataPkt(size int) *packet.Packet {
	p := packet.DataPacket(1, 0, 1, 0, 0, size-packet.DataHeaderSize-packet.RETHSize)
	return p
}

func TestPortSerializesAtRate(t *testing.T) {
	eng := sim.NewEngine(1)
	dst := &collector{eng: eng}
	w := NewWire(eng, units.Microsecond, dst, 0)
	fifo := &FIFOScheduler{}
	port := NewPort(eng, 100*units.Gbps, w, fifo)
	for i := 0; i < 3; i++ {
		fifo.Enqueue(dataPkt(1000))
	}
	port.Kick()
	eng.Run(0)
	if len(dst.pkts) != 3 {
		t.Fatalf("delivered %d", len(dst.pkts))
	}
	// Packet i arrives at (i+1)*tx + prop.
	tx := units.TxTime(1000, 100*units.Gbps)
	for i, at := range dst.at {
		want := units.Time(i+1)*tx + units.Microsecond
		if at != want {
			t.Fatalf("pkt %d at %v, want %v", i, at, want)
		}
	}
	if port.TxPackets != 3 || port.TxBytes != 3000 {
		t.Fatalf("counters: %d pkts %d bytes", port.TxPackets, port.TxBytes)
	}
}

func TestPortPauseFinishesCurrentPacket(t *testing.T) {
	eng := sim.NewEngine(1)
	dst := &collector{eng: eng}
	w := NewWire(eng, 0, dst, 0)
	fifo := &FIFOScheduler{}
	port := NewPort(eng, 100*units.Gbps, w, fifo)
	fifo.Enqueue(dataPkt(1000))
	fifo.Enqueue(dataPkt(1000))
	port.Kick()
	// Pause mid-first-packet: first completes, second held.
	eng.After(10*units.Nanosecond, func() { port.SetDataPaused(true) })
	eng.Run(units.Microsecond)
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d under pause, want 1", len(dst.pkts))
	}
	if !port.DataPaused() {
		t.Fatal("pause flag")
	}
	port.SetDataPaused(false)
	eng.Run(0)
	if len(dst.pkts) != 2 {
		t.Fatal("resume must drain the queue")
	}
	if port.PausedTime == 0 {
		t.Fatal("paused time must accumulate")
	}
}

func TestFIFOPauseHoldsDataPassesControl(t *testing.T) {
	s := &FIFOScheduler{}
	d := dataPkt(1000)
	s.Enqueue(d)
	if got := s.Next(true); got != nil {
		t.Fatal("paused FIFO must hold data at head")
	}
	if got := s.Next(false); got != d {
		t.Fatal("unpaused FIFO serves data")
	}
	ack := packet.AckPacket(1, 0, 1, 0)
	s.Enqueue(ack)
	if got := s.Next(true); got != ack {
		t.Fatal("control at head passes under pause")
	}
	if s.Len() != 0 || s.Backlog() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestDRRSharesBandwidthByWeight(t *testing.T) {
	// With weight w, a backlogged control queue must receive ≈ w/(1+w) of
	// the served bytes.
	for _, w := range []float64{0.5, 1, 4} {
		s := newDRRScheduler(w)
		// Backlog both queues heavily (enough that neither runs dry while
		// we sample 500 KB of service).
		for i := 0; i < 20000; i++ {
			s.pushCtrl(&packet.Packet{Kind: packet.KindHO, Size: 57})
		}
		for i := 0; i < 1000; i++ {
			s.pushData(dataPkt(1073))
		}
		var ctrlBytes, dataBytes int
		for {
			p := s.Next(false)
			if p == nil || ctrlBytes+dataBytes > 500000 {
				break
			}
			if p.Kind == packet.KindHO {
				ctrlBytes += p.Size
			} else {
				dataBytes += p.Size
			}
		}
		share := float64(ctrlBytes) / float64(ctrlBytes+dataBytes)
		want := w / (1 + w)
		if share < want-0.05 || share > want+0.05 {
			t.Errorf("w=%v: control share %.3f, want ≈ %.3f", w, share, want)
		}
	}
}

func TestDRRServesSoleBackloggedQueue(t *testing.T) {
	s := newDRRScheduler(4)
	for i := 0; i < 10; i++ {
		s.pushData(dataPkt(1000))
	}
	for i := 0; i < 10; i++ {
		if s.Next(false) == nil {
			t.Fatal("data-only backlog must be served at full rate")
		}
	}
	if s.Next(false) != nil {
		t.Fatal("queue should be empty")
	}
	for i := 0; i < 10; i++ {
		s.pushCtrl(&packet.Packet{Kind: packet.KindHO, Size: 57})
	}
	for i := 0; i < 10; i++ {
		if s.Next(false) == nil {
			t.Fatal("control-only backlog must be served")
		}
	}
}

func TestDRRPauseServesControlOnly(t *testing.T) {
	s := newDRRScheduler(1)
	s.pushData(dataPkt(1000))
	s.pushCtrl(&packet.Packet{Kind: packet.KindHO, Size: 57})
	if p := s.Next(true); p == nil || p.Kind != packet.KindHO {
		t.Fatal("pause must still serve control")
	}
	if p := s.Next(true); p != nil {
		t.Fatal("paused data must be held")
	}
}

func TestPrioSchedulerStrictPriority(t *testing.T) {
	s := &prioScheduler{}
	s.pushData(dataPkt(1000))
	s.pushCtrl(packet.AckPacket(1, 0, 1, 0))
	if p := s.Next(false); p.Kind != packet.KindAck {
		t.Fatal("control first")
	}
	if p := s.Next(true); p != nil {
		t.Fatal("paused data held")
	}
	if p := s.Next(false); p.Kind != packet.KindData {
		t.Fatal("then data")
	}
}

func TestWRRWeightLaw(t *testing.T) {
	// §4.2: w = (N-1)/(r-N+1) when r > N-1.
	r := 1073.0 / 57.0 // ≈ 18.8
	w := WRRWeight(16, r, 8)
	want := 15.0 / (r - 15)
	if w < want-1e-9 || w > want+1e-9 {
		t.Fatalf("WRRWeight(16) = %v, want %v", w, want)
	}
	// Beyond validity (r < N-1) the weight clamps.
	if got := WRRWeight(22, r, 8); got != 8 {
		t.Fatalf("clamp: got %v", got)
	}
	// Tiny weights floor at 0.1.
	if got := WRRWeight(2, 1000, 8); got != 0.1 {
		t.Fatalf("floor: got %v", got)
	}
}

// buildSwitch wires src collector -> switch -> dst collector.
func buildSwitch(eng *sim.Engine, cfg SwitchConfig) (*Switch, *collector, func(*packet.Packet)) {
	dst := &collector{eng: eng}
	sw := NewSwitch(eng, 100, cfg)
	out := sw.AddEgress(100*units.Gbps, NewWire(eng, 0, dst, 0))
	routes := make([][]int, 2)
	routes[1] = []int{out}
	sw.SetRoutes(routes)
	in := sw.AddIngress(nil)
	inject := func(p *packet.Packet) { sw.Receive(p, in) }
	return sw, dst, inject
}

func TestSwitchForwards(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	sw, dst, inject := buildSwitch(eng, cfg)
	inject(dataPkt(1000))
	eng.Run(0)
	if len(dst.pkts) != 1 {
		t.Fatal("packet not forwarded")
	}
	if sw.Counters.RxPackets != 1 {
		t.Fatal("rx counter")
	}
	if dst.pkts[0].Hops != 1 {
		t.Fatal("hop count")
	}
}

func TestSwitchTrimsDCPOverThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.TrimThreshold = 3000
	sw, dst, inject := buildSwitch(eng, cfg)
	for i := 0; i < 10; i++ {
		inject(dataPkt(1073))
	}
	eng.Run(0)
	if sw.Counters.TrimmedPkts == 0 {
		t.Fatal("expected trims over threshold")
	}
	var ho, data int
	for _, p := range dst.pkts {
		if p.Kind == packet.KindHO {
			ho++
			if p.Size != packet.HOSize {
				t.Fatalf("HO size %d", p.Size)
			}
			if p.Tag != packet.TagHO {
				t.Fatal("HO tag")
			}
		} else {
			data++
		}
	}
	if ho != int(sw.Counters.TrimmedPkts) || ho+data != 10 {
		t.Fatalf("ho=%d data=%d trims=%d", ho, data, sw.Counters.TrimmedPkts)
	}
}

func TestSwitchDropsNonDCPOverThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.TrimThreshold = 3000
	sw, dst, inject := buildSwitch(eng, cfg)
	for i := 0; i < 10; i++ {
		p := dataPkt(1073)
		p.Tag = packet.TagNonDCP
		inject(p)
	}
	eng.Run(0)
	if sw.Counters.DroppedData == 0 {
		t.Fatal("non-DCP traffic must be dropped, not trimmed")
	}
	if sw.Counters.TrimmedPkts != 0 {
		t.Fatal("no trims for non-DCP")
	}
	if len(dst.pkts)+int(sw.Counters.DroppedData) != 10 {
		t.Fatal("conservation")
	}
}

func TestSwitchHOGoesToControlQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.TrimThreshold = 500 // immediately congested for data
	sw, dst, inject := buildSwitch(eng, cfg)
	// Pre-fill data queue over threshold.
	inject(dataPkt(1073))
	// An HO packet must pass even though data is over threshold.
	ho := dataPkt(1073)
	ho.Trim()
	inject(ho)
	eng.Run(0)
	found := false
	for _, p := range dst.pkts {
		if p.Kind == packet.KindHO && !p.Trimmed == false {
			found = true
		}
	}
	_ = found
	if sw.Counters.DroppedHO != 0 {
		t.Fatal("HO must not drop below control cap")
	}
	if len(dst.pkts) < 2 {
		t.Fatalf("delivered %d", len(dst.pkts))
	}
}

func TestSwitchControlQueueCapDropsHO(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.CtrlQueueCap = 100 // effectively one HO packet
	sw, _, inject := buildSwitch(eng, cfg)
	for i := 0; i < 5; i++ {
		ho := dataPkt(1073)
		ho.Trim()
		inject(ho)
	}
	eng.Run(0)
	if sw.Counters.DroppedHO == 0 {
		t.Fatal("overflowing control queue must drop HO (Table 5 mode)")
	}
}

func TestSwitchAckDroppedOverThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.TrimThreshold = 500
	sw, _, inject := buildSwitch(eng, cfg)
	// Fill past the threshold; the first packet starts serializing
	// immediately, so inject several to keep the queue occupied.
	for i := 0; i < 3; i++ {
		inject(dataPkt(1073))
	}
	inject(packet.AckPacket(1, 0, 1, 5))
	eng.Run(0)
	if sw.Counters.DroppedAck != 1 {
		t.Fatalf("ACK over threshold must drop (§4.2), got %d", sw.Counters.DroppedAck)
	}
}

func TestSwitchECNMarking(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.ECNKmin = 1000
	cfg.ECNKmax = 3000
	cfg.ECNPmax = 1.0
	cfg.TrimThreshold = 1 << 30
	sw, dst, inject := buildSwitch(eng, cfg)
	for i := 0; i < 20; i++ {
		inject(dataPkt(1073))
	}
	eng.Run(0)
	if sw.Counters.ECNMarked == 0 {
		t.Fatal("expected ECN marks above Kmin")
	}
	marked := 0
	for _, p := range dst.pkts {
		if p.ECN {
			marked++
		}
	}
	if marked != int(sw.Counters.ECNMarked) {
		t.Fatal("mark accounting")
	}
	// Deep queue (≥ Kmax) must always mark: the last enqueued packets saw
	// ≥ 3000 queued bytes.
	if !dst.pkts[len(dst.pkts)-1].ECN {
		t.Fatal("packet enqueued above Kmax must be marked")
	}
}

func TestSwitchForcedLossTrimsDCPDropsOthers(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.LossRate = 1.0 // drop/trim everything
	sw, dst, inject := buildSwitch(eng, cfg)
	inject(dataPkt(1073)) // DCP data -> trim
	p := dataPkt(1073)
	p.Tag = packet.TagNonDCP
	inject(p) // non-DCP -> drop
	eng.Run(0)
	if sw.Counters.ForcedLosses != 2 {
		t.Fatalf("forced losses = %d", sw.Counters.ForcedLosses)
	}
	if sw.Counters.TrimmedPkts != 1 || sw.Counters.DroppedData != 1 {
		t.Fatalf("trim/drop split wrong: %+v", sw.Counters)
	}
	if len(dst.pkts) != 1 || dst.pkts[0].Kind != packet.KindHO {
		t.Fatal("only the HO survivor should arrive")
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.LB = LBECMP
	dst := &collector{eng: eng}
	sw := NewSwitch(eng, 100, cfg)
	var outs []int
	for i := 0; i < 4; i++ {
		outs = append(outs, sw.AddEgress(100*units.Gbps, NewWire(eng, 0, dst, 0)))
	}
	routes := make([][]int, 2)
	routes[1] = outs
	sw.SetRoutes(routes)
	in := sw.AddIngress(nil)

	// Same flow → same egress; different PathKey → possibly different.
	pick := make(map[uint64]int64)
	for trial := 0; trial < 3; trial++ {
		for f := uint64(1); f <= 8; f++ {
			p := dataPkt(1000)
			p.FlowID = f
			sw.Receive(p, in)
			key := f
			tx := sw.EgressAt(0).Port.TxPackets // not meaningful; rely on queue inspection below
			_ = tx
			_ = key
		}
	}
	eng.Run(0)
	_ = pick
	// Distribution check: with 8 flows and 4 ports, at least 2 ports used.
	used := 0
	for _, o := range outs {
		if sw.EgressAt(o).Port.TxPackets > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("ECMP used %d ports for 8 flows", used)
	}
}

func TestAdaptiveRoutingPicksShortestQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.LB = LBAdaptive
	dst := &collector{eng: eng}
	sw := NewSwitch(eng, 100, cfg)
	slow := sw.AddEgress(1*units.Gbps, NewWire(eng, 0, dst, 0))
	fast := sw.AddEgress(100*units.Gbps, NewWire(eng, 0, dst, 0))
	routes := make([][]int, 2)
	routes[1] = []int{slow, fast}
	sw.SetRoutes(routes)
	in := sw.AddIngress(nil)
	// Offer packets over time: queue-length-based AR steers traffic away
	// from the slow port as its queue persists.
	for i := 0; i < 200; i++ {
		i := i
		eng.At(units.Time(i)*100*units.Nanosecond, func() {
			sw.Receive(dataPkt(1000), in)
		})
	}
	eng.Run(0)
	fastTx := sw.EgressAt(fast).Port.TxPackets
	slowTx := sw.EgressAt(slow).Port.TxPackets
	if fastTx <= slowTx*5 {
		t.Fatalf("AR should prefer the fast port: fast=%d slow=%d", fastTx, slowTx)
	}
}

func TestUnknownDestinationPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, 100, DefaultSwitchConfig())
	sw.SetRoutes(make([][]int, 1))
	in := sw.AddIngress(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unroutable packet")
		}
	}()
	p := dataPkt(100)
	p.Dst = 0
	sw.Receive(p, in)
}

func TestLosslessPFCPausesUpstream(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.Lossless = true
	cfg.Trimming = false
	cfg.PFCXoff = 5000
	cfg.PFCXon = 2000

	dst := &collector{eng: eng}
	sw := NewSwitch(eng, 100, cfg)
	out := sw.AddEgress(1*units.Gbps, NewWire(eng, 0, dst, 0)) // slow drain
	routes := make([][]int, 2)
	routes[1] = []int{out}
	sw.SetRoutes(routes)

	// Upstream port feeding the switch.
	upFifo := &FIFOScheduler{}
	upWire := Attach(eng, units.Microsecond, sw)
	up := NewPort(eng, 100*units.Gbps, upWire, upFifo)
	for i := 0; i < 40; i++ {
		upFifo.Enqueue(dataPkt(1000))
	}
	up.Kick()
	eng.Run(200 * units.Microsecond)
	if sw.Counters.PauseOn == 0 {
		t.Fatal("ingress over XOFF must pause upstream")
	}
	if sw.Counters.DroppedData != 0 {
		t.Fatal("lossless fabric must not drop")
	}
	if !up.DataPaused() && up.PausedTime == 0 {
		t.Fatal("upstream port never paused")
	}
	// Draining must eventually resume and deliver everything.
	eng.Run(0)
	if len(dst.pkts) != 40 {
		t.Fatalf("delivered %d/40 after resume", len(dst.pkts))
	}
}

func TestLosslessBufferAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.Lossless = true
	cfg.PFCXoff = 1 << 30 // never pause; we only check accounting
	cfg.PFCXon = 1 << 29
	sw, _, inject := buildSwitch(eng, cfg)
	for i := 0; i < 5; i++ {
		inject(dataPkt(1000))
	}
	if sw.BufUsed() == 0 {
		t.Fatal("buffer must be charged while queued")
	}
	eng.Run(0)
	if sw.BufUsed() != 0 {
		t.Fatalf("buffer leak: %d bytes", sw.BufUsed())
	}
	if sw.Counters.MaxBufUsed < 4000 {
		t.Fatalf("max buffer %d", sw.Counters.MaxBufUsed)
	}
}

func TestSprayUsesAllPorts(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.LB = LBSpray
	dst := &collector{eng: eng}
	sw := NewSwitch(eng, 100, cfg)
	var outs []int
	for i := 0; i < 4; i++ {
		outs = append(outs, sw.AddEgress(100*units.Gbps, NewWire(eng, 0, dst, 0)))
	}
	routes := make([][]int, 2)
	routes[1] = outs
	sw.SetRoutes(routes)
	in := sw.AddIngress(nil)
	for i := 0; i < 200; i++ {
		p := dataPkt(1000)
		p.FlowID = 1 // single flow still sprays
		sw.Receive(p, in)
	}
	eng.Run(0)
	for _, o := range outs {
		if sw.EgressAt(o).Port.TxPackets == 0 {
			t.Fatal("spray must use every port")
		}
	}
}

func TestBufferFullDropsEvenDCP(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.BufferBytes = 2500
	cfg.TrimThreshold = 1 << 30
	cfg.CtrlQueueCap = 1 << 30
	sw, _, inject := buildSwitch(eng, cfg)
	for i := 0; i < 10; i++ {
		inject(dataPkt(1073))
	}
	eng.Run(0)
	// Over-buffer DCP data is trimmed; the resulting HOs fit (57 B each).
	if sw.Counters.TrimmedPkts == 0 {
		t.Fatal("full shared buffer must trigger trims for DCP data")
	}
}

func TestDirectHOReturn(t *testing.T) {
	// §7 back-to-sender: with DirectHOReturn the trimmed header leaves via
	// the route to the *sender*, already marked Echoed.
	eng := sim.NewEngine(1)
	cfg := DefaultSwitchConfig()
	cfg.TrimThreshold = 500
	cfg.DirectHOReturn = true

	toDst := &collector{eng: eng}
	toSrc := &collector{eng: eng}
	sw := NewSwitch(eng, 100, cfg)
	outDst := sw.AddEgress(100*units.Gbps, NewWire(eng, 0, toDst, 0))
	outSrc := sw.AddEgress(100*units.Gbps, NewWire(eng, 0, toSrc, 0))
	routes := make([][]int, 2)
	routes[1] = []int{outDst} // toward the receiver
	routes[0] = []int{outSrc} // back toward the sender
	sw.SetRoutes(routes)
	in := sw.AddIngress(nil)

	// Saturate: the first packet serializes immediately, the second
	// queues past the 500 B threshold, the third trims.
	sw.Receive(dataPkt(1073), in)
	sw.Receive(dataPkt(1073), in)
	sw.Receive(dataPkt(1073), in)
	eng.Run(0)
	if sw.Counters.TrimmedPkts == 0 {
		t.Fatalf("trims = %d", sw.Counters.TrimmedPkts)
	}
	var echoed int64
	for _, p := range toSrc.pkts {
		if p.Kind == packet.KindHO && p.Echoed {
			echoed++
		}
	}
	if echoed != sw.Counters.TrimmedPkts {
		t.Fatalf("HO must return directly to the sender: %d of %d", echoed, sw.Counters.TrimmedPkts)
	}
	for _, p := range toDst.pkts {
		if p.Kind == packet.KindHO {
			t.Fatal("no HO should travel to the receiver in back-to-sender mode")
		}
	}
}

func TestPortTapObservesTransmissions(t *testing.T) {
	eng := sim.NewEngine(1)
	dst := &collector{eng: eng}
	fifo := &FIFOScheduler{}
	port := NewPort(eng, 100*units.Gbps, NewWire(eng, 0, dst, 0), fifo)
	var tapped int
	port.Tap = func(p *packet.Packet) { tapped++ }
	for i := 0; i < 5; i++ {
		fifo.Enqueue(dataPkt(500))
	}
	port.Kick()
	eng.Run(0)
	if tapped != 5 {
		t.Fatalf("tap saw %d of 5 packets", tapped)
	}
}

func TestECMPIndexDeterministic(t *testing.T) {
	for f := uint64(0); f < 100; f++ {
		a := ECMPIndex(f, 0, 4)
		b := ECMPIndex(f, 0, 4)
		if a != b || a < 0 || a >= 4 {
			t.Fatalf("flow %d: %d/%d", f, a, b)
		}
	}
	// PathKey perturbs the choice for at least some flows.
	diff := 0
	for f := uint64(0); f < 100; f++ {
		if ECMPIndex(f, 1, 4) != ECMPIndex(f, 0, 4) {
			diff++
		}
	}
	if diff < 30 {
		t.Fatalf("path key barely changes hashing: %d/100", diff)
	}
}
