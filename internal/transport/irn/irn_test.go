package irn_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/fabric"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

func onePath(sch exp.Scheme, mutate func(*fabric.SwitchConfig), cross int) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = cross
		cfg.Switch = exp.SwitchConfigFor(sch)
		if mutate != nil {
			mutate(&cfg.Switch)
		}
		return topo.Dumbbell(eng, cfg)
	}
}

func runFlow(t *testing.T, sch exp.Scheme, size int64, mutate func(*fabric.SwitchConfig), cross int) (*exp.Sim, *stats.FlowRecord) {
	t.Helper()
	s := exp.NewSim(5, sch, onePath(sch, mutate, cross))
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
	if left := s.Run(60 * units.Second); left != 0 {
		t.Fatalf("unfinished at %v", s.Eng.Now())
	}
	return s, s.Col.Flow(1)
}

func TestCleanSinglePathNoRetrans(t *testing.T) {
	// On a single path with no loss, IRN behaves perfectly.
	_, rec := runFlow(t, exp.SchemeIRN(fabric.LBECMP, false), 20<<20, nil, 1)
	if rec.RetransPkts != 0 || rec.Timeouts != 0 {
		t.Fatalf("clean run: retrans=%d timeouts=%d", rec.RetransPkts, rec.Timeouts)
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 85 {
		t.Fatalf("goodput %.1f", gp)
	}
}

func TestSelectiveRepairUnderLoss(t *testing.T) {
	s, rec := runFlow(t, exp.SchemeIRN(fabric.LBECMP, false), 20<<20,
		func(c *fabric.SwitchConfig) { c.LossRate = 0.01 }, 1)
	drops := s.Net.Counters().DroppedData
	if rec.RetransPkts == 0 {
		t.Fatal("expected retransmissions")
	}
	// Selective repeat: retransmissions stay within a small factor of
	// actual drops (unlike GBN's window-sized rewinds).
	if rec.RetransPkts > 3*drops+10 {
		t.Fatalf("SR should not amplify: %d retrans for %d drops", rec.RetransPkts, drops)
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 40 {
		t.Fatalf("goodput %.1f under 1%% loss", gp)
	}
}

func TestSpuriousRetransUnderSpray(t *testing.T) {
	// Issue #1 (§2.2): packet-level LB reorders; IRN misreads OOO as loss
	// and retransmits spuriously even with zero drops.
	sch := exp.SchemeIRN(fabric.LBSpray, false)
	s := exp.NewSim(5, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 4
		// Unequal path rates make spraying reorder heavily.
		cfg.CrossRates = []units.Rate{100 * units.Gbps, 50 * units.Gbps, 25 * units.Gbps, 100 * units.Gbps}
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 20 << 20}})
	if left := s.Run(60 * units.Second); left != 0 {
		t.Fatal("unfinished")
	}
	rec := s.Col.Flow(1)
	if d := s.Net.Counters().DroppedData; d != 0 {
		t.Fatalf("setup broken: %d real drops", d)
	}
	if rec.RetransPkts == 0 {
		t.Fatal("reordering must cause spurious retransmissions in IRN")
	}
}

func TestTailLossNeedsTimeout(t *testing.T) {
	// Issue #2 (§2.2): if only the tail packet drops there is no SACK
	// trigger, so recovery must come from an RTO.
	sch := exp.SchemeIRN(fabric.LBECMP, false)
	sch.Tweak = nil
	// Tiny flow with high loss: with 3 packets, a tail drop is likely
	// across seeds; assert that *some* run needs a timeout.
	sawTimeout := false
	for seed := int64(0); seed < 10 && !sawTimeout; seed++ {
		s := exp.NewSim(seed, sch, onePath(sch, func(c *fabric.SwitchConfig) { c.LossRate = 0.3 }, 1))
		s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 3000}})
		if s.Run(60*units.Second) != 0 {
			t.Fatal("unfinished")
		}
		if s.Col.Flow(1).Timeouts > 0 {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatal("tail losses should require RTOs in IRN")
	}
}

func TestRecoveryEpisodeSingleRetransmit(t *testing.T) {
	// Within one loss-recovery episode each packet is retransmitted at
	// most once: under persistent heavy loss the retransmissions are
	// bounded by episodes × window, not unbounded.
	s, rec := runFlow(t, exp.SchemeIRN(fabric.LBECMP, false), 4<<20,
		func(c *fabric.SwitchConfig) { c.LossRate = 0.05 }, 1)
	total := rec.DataPkts + rec.RetransPkts
	if rec.RetransPkts > rec.DataPkts {
		t.Fatalf("retransmissions exceed data: %d > %d", rec.RetransPkts, rec.DataPkts)
	}
	_ = s
	_ = total
}

func TestBidirectionalWithLoss(t *testing.T) {
	sch := exp.SchemeIRN(fabric.LBECMP, false)
	s := exp.NewSim(5, sch, onePath(sch, func(c *fabric.SwitchConfig) { c.LossRate = 0.01 }, 1))
	s.ScheduleFlows([]*workload.Flow{
		{ID: 1, Src: 0, Dst: 1, Size: 4 << 20},
		{ID: 2, Src: 1, Dst: 0, Size: 4 << 20},
	})
	if s.Run(60*units.Second) != 0 {
		t.Fatal("unfinished")
	}
}
