// Package irn implements the IRN baseline (Mittal et al., SIGCOMM'18), the
// paper's representative RNIC-SR scheme: BDP-bounded transmission, per-QP
// bitmaps, SACK-triggered loss recovery episodes (each lost packet
// retransmitted at most once per episode), and the RTOlow/RTOhigh timeout
// pair. Its two failure modes under packet-level load balancing — spurious
// retransmissions on reordering and excessive RTOs for tail/retransmitted
// losses — are exactly what the paper's Figs. 1, 2, 13–17 measure.
package irn

import (
	"dcpsim/internal/cc"
	"dcpsim/internal/nic"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// rtoLowThreshold is IRN's N: with fewer than N packets outstanding the
// short timeout applies (there may be no later packet to trigger a SACK).
const rtoLowThreshold = 3

// Host is an IRN endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds an IRN endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "irn" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	if h.Env.Trace != nil {
		h.Env.Trace.Flow(h.Eng.Now(), obs.EvFlowStart, f.Src, f.ID, f.Size)
	}
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onAck(p)
		}
	case packet.KindCNP:
		if qp := h.send[p.FlowID]; qp != nil && !qp.done {
			qp.ctl.OnCongestion(h.Eng.Now())
		}
	}
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

// bitset is a fixed-size bitmap, the per-QP tracking structure whose
// memory/processing trade-offs §4.5 discusses.
type bitset struct {
	words []uint64
	count int
}

func newBitset(n uint32) *bitset { return &bitset{words: make([]uint64, (n+63)/64)} }

func (b *bitset) set(i uint32) bool {
	w, m := i/64, uint64(1)<<(i%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

func (b *bitset) get(i uint32) bool {
	return b.words[i/64]&(uint64(1)<<(i%64)) != 0
}

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord
	ctl  cc.Controller

	totalPkts uint32
	lastPay   int

	una      uint32
	nextPSN  uint32
	sacked   *bitset
	highSack uint32 // highest SACKed PSN + 1 (0 = none)

	// Loss recovery episode state (§2.2 issue #2): entered once, left only
	// when una passes recoverPSN; each packet retransmitted at most once
	// per episode.
	inRecovery    bool
	timeoutMode   bool // entered via RTO: all unSACKed count as lost
	recoverPSN    uint32
	retransmitted *bitset
	scan          uint32 // retransmission scan cursor

	timer     *sim.Timer
	sackedOut int // SACKed PSNs at or above una (outstanding window credit)
	done      bool
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.ctl = env.CC(h.Eng, h.NIC.Rate(), env.BaseRTT)
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	qp.sacked = newBitset(qp.totalPkts)
	qp.timer = sim.NewTimer(h.Eng, qp.onTimeout)
	qp.resetTimer()
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

// inflightBytes approximates IRN's BDP flow control: the span of
// outstanding (sent, neither cumulatively nor selectively acknowledged)
// packets. Retransmissions do not widen it, so spurious retransmissions
// cannot starve the window.
func (qp *senderQP) inflightBytes() int {
	n := int(base.SeqDiff(qp.nextPSN, qp.una)) - qp.sackedOut
	if n < 0 {
		n = 0
	}
	return n * qp.h.Env.MTU
}

func (qp *senderQP) resetTimer() {
	if base.SeqDiff(qp.nextPSN, qp.una) < rtoLowThreshold {
		qp.timer.Reset(qp.h.Env.RTOLow)
	} else {
		qp.timer.Reset(qp.h.Env.RTOHigh)
	}
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP: retransmissions (while in a recovery episode)
// take priority over new data; both share the BDP window.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done {
		return nil, 0
	}
	if qp.inRecovery {
		if psn, ok := qp.nextLost(); ok {
			size := qp.payloadAt(psn)
			// BDP-FC caps the un-acked span; a retransmission stays inside
			// that span, so only rate pacing applies (inflight 0). Charging
			// the window here deadlocks after a whole-window loss (link
			// flap): no ACK ever arrives to reopen it.
			ok2, at := qp.ctl.CanSend(now, 0, size)
			if !ok2 {
				return nil, at
			}
			qp.retransmitted.set(psn)
			qp.scan = psn + 1
			qp.rec.RetransPkts++
			if env := qp.h.Env; env.Trace != nil {
				env.Trace.Emit(obs.Event{At: now, Type: obs.EvRetransmit, Node: qp.flow.Src, Port: -1,
					Flow: qp.flow.ID, PSN: psn, Size: int32(size)})
			}
			qp.ctl.OnSent(now, size+packet.DataHeaderSize)
			return qp.emit(now, psn, size, true), 0
		}
	}
	if base.SeqLess(qp.nextPSN, qp.totalPkts) {
		size := qp.payloadAt(qp.nextPSN)
		ok, at := qp.ctl.CanSend(now, qp.inflightBytes(), size)
		if !ok {
			return nil, at
		}
		psn := qp.nextPSN
		qp.nextPSN++
		qp.rec.DataPkts++
		if env := qp.h.Env; env.Trace != nil {
			env.Trace.Emit(obs.Event{At: now, Type: obs.EvSend, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: psn, Size: int32(size)})
		}
		qp.ctl.OnSent(now, size+packet.DataHeaderSize)
		return qp.emit(now, psn, size, false), 0
	}
	return nil, 0
}

func (qp *senderQP) emit(now units.Time, psn uint32, size int, retrans bool) *packet.Packet {
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, size)
	p.Tag = packet.TagNonDCP
	p.MsgLen = qp.totalPkts
	p.SentAt = now
	p.Retransmitted = retrans
	return p
}

// nextLost scans for the next retransmission candidate: unSACKed, not yet
// retransmitted this episode, and (unless the episode began with a timeout)
// below some SACKed PSN.
func (qp *senderQP) nextLost() (uint32, bool) {
	limit := qp.highSack
	if qp.timeoutMode {
		limit = qp.nextPSN
	}
	for psn := max32(qp.scan, qp.una); base.SeqLess(psn, limit) && base.SeqLess(psn, qp.nextPSN); psn++ {
		if !qp.sacked.get(psn) && !qp.retransmitted.get(psn) {
			return psn, true
		}
	}
	return 0, false
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	progressed := false
	if base.SeqLess(qp.una, p.EPSN) {
		var acked int
		for psn := qp.una; base.SeqLess(psn, p.EPSN); psn++ {
			if qp.sacked.get(psn) {
				qp.sackedOut-- // SACKed packets already left the window
			} else {
				acked += qp.payloadAt(psn)
			}
		}
		qp.una = p.EPSN
		if qp.sackedOut < 0 {
			qp.sackedOut = 0
		}
		var rtt units.Time
		if p.SentAt > 0 {
			rtt = now - p.SentAt
		}
		qp.ctl.OnAck(now, acked, rtt)
		progressed = true
	}
	if p.Ack == packet.AckSelective && base.SeqLess(p.SackPSN, qp.totalPkts) {
		if base.SeqGEQ(p.SackPSN, qp.una) && qp.sacked.set(p.SackPSN) {
			qp.sackedOut++
			qp.ctl.OnAck(now, qp.payloadAt(p.SackPSN), 0)
		}
		if base.SeqLess(qp.highSack, p.SackPSN+1) {
			qp.highSack = p.SackPSN + 1
		}
		// A SACK implies out-of-order delivery: enter loss recovery (this
		// is precisely where reordering causes spurious retransmissions).
		if !qp.inRecovery {
			qp.enterRecovery(false)
		}
	}
	if progressed {
		qp.resetTimer()
		if base.SeqGEQ(qp.una, qp.totalPkts) {
			qp.complete(now)
			return
		}
		if qp.inRecovery && base.SeqLess(qp.recoverPSN, qp.una) {
			qp.inRecovery = false
			qp.timeoutMode = false
		}
	}
	qp.h.NIC.Kick()
}

func (qp *senderQP) enterRecovery(timeout bool) {
	qp.inRecovery = true
	qp.timeoutMode = timeout
	if qp.nextPSN > 0 {
		qp.recoverPSN = qp.nextPSN - 1
	}
	qp.retransmitted = newBitset(qp.totalPkts)
	qp.scan = qp.una
}

func (qp *senderQP) complete(now units.Time) {
	qp.done = true
	qp.timer.Stop()
	qp.ctl.Close()
	if env := qp.h.Env; env.Trace != nil {
		env.Trace.Flow(now, obs.EvFlowDone, qp.flow.Src, qp.flow.ID, qp.flow.Size)
	}
	qp.h.Env.Collector.Done(qp.flow.ID, now)
}

func (qp *senderQP) onTimeout() {
	if qp.done {
		return
	}
	if base.SeqLess(qp.una, qp.nextPSN) {
		qp.rec.Timeouts++
		if env := qp.h.Env; env.Trace != nil {
			env.Trace.Emit(obs.Event{At: qp.h.Eng.Now(), Type: obs.EvTimeout, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: qp.una})
		}
		qp.enterRecovery(true)
		qp.h.NIC.Kick()
	}
	qp.resetTimer()
}

type recvQP struct {
	ePSN     uint32
	received *bitset
	lastCNP  units.Time
	cnpSet   bool
}

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{received: newBitset(p.MsgLen)}
		h.recv[p.FlowID] = qp
	}
	now := h.Eng.Now()
	if p.ECN {
		h.maybeCNP(qp, p, now)
	}
	if base.SeqLess(p.PSN, qp.ePSN) || !qp.received.set(p.PSN) {
		// Duplicate (a spurious retransmission): cumulative ACK refreshes
		// the sender.
		h.ack(p, qp, packet.AckCumulative, 0)
		return
	}
	if p.PSN == qp.ePSN {
		for base.SeqLess(qp.ePSN, uint32(len(qp.received.words)*64)) && qp.received.get(qp.ePSN) {
			qp.ePSN++
		}
		h.ack(p, qp, packet.AckCumulative, 0)
		return
	}
	// Out-of-order arrival: SACK with both the cumulative ack and the OOO
	// PSN (§2.2 issue #1).
	h.ack(p, qp, packet.AckSelective, p.PSN)
}

func (h *Host) ack(data *packet.Packet, qp *recvQP, flavor packet.AckFlavor, sack uint32) {
	a := packet.AckPacket(data.FlowID, data.Dst, data.Src, qp.ePSN)
	a.Tag = packet.TagNonDCP
	a.Ack = flavor
	a.SackPSN = sack
	a.SentAt = data.SentAt
	h.QueueCtrl(a)
}

func (h *Host) maybeCNP(qp *recvQP, data *packet.Packet, now units.Time) {
	if qp.cnpSet && now-qp.lastCNP < h.Env.CNPInterval {
		return
	}
	qp.cnpSet = true
	qp.lastCNP = now
	h.QueueCtrl(&packet.Packet{
		Kind: packet.KindCNP, Tag: packet.TagNonDCP, FlowID: data.FlowID,
		Src: data.Dst, Dst: data.Src, Size: packet.CNPSize,
	})
}
