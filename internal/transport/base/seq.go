package base

// Serial arithmetic on the uint32 PSN/MSN/SSN sequence spaces, in the
// style of RFC 1982. Raw <, >, <=, >= and - on sequence numbers misbehave
// at the 2^32 wrap boundary; every transport must compare through these
// helpers (enforced by the seqcheck analyzer, cmd/dcplint).
//
// A sequence number a precedes b when the forward distance from a to b is
// less than half the space (2^31). At exactly half the space the order is
// undefined: SeqLess(a, b) and SeqLess(b, a) are both false, as RFC 1982
// prescribes. Windows in this simulator are bounded by BDP (≪ 2^31
// packets), so every comparison two live endpoints make is well inside
// the defined range.

// SeqLess reports whether a precedes b in sequence space.
func SeqLess(a, b uint32) bool { return a != b && b-a < 1<<31 }

// SeqGEQ reports whether a is at or after b in sequence space.
// Note: because the half-space distance is unordered, SeqGEQ is NOT the
// negation of "a strictly after b"; it is the negation of SeqLess(a, b).
func SeqGEQ(a, b uint32) bool { return !SeqLess(a, b) }

// SeqDiff returns the forward distance from b to a: how many sequence
// numbers a is ahead of b, computed with wraparound. The caller must
// ensure SeqGEQ(a, b); the helper exists so that intent is explicit where
// raw subtraction would silently produce a huge count if the operands
// were swapped.
func SeqDiff(a, b uint32) uint32 { return a - b }
