package base

import "testing"

func TestSeqLessBasic(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0, 0, false},
		{5, 100, true},
		{100, 5, false},
		{0, 1<<31 - 1, true},           // largest defined forward distance
		{1<<31 - 1, 0, false},          // ...and its reverse
		{0xFFFFFFFF, 0, true},          // wrap: MAX precedes 0
		{0, 0xFFFFFFFF, false},         // ...and not vice versa
		{0xFFFFFFF0, 0x10, true},       // wrap across the boundary
		{0x10, 0xFFFFFFF0, false},      // reverse
		{0xFFFFFFFF, 0x7FFFFFFE, true}, /* MAX -> 2^31-2: forward distance 2^31-1 */
	}
	for _, c := range cases {
		if got := SeqLess(c.a, c.b); got != c.want {
			t.Errorf("SeqLess(%#x, %#x) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSeqLessAmbiguousDistance(t *testing.T) {
	// Exactly half the space apart: RFC 1982 leaves the order undefined;
	// both directions must report false.
	a, b := uint32(0), uint32(1)<<31
	if SeqLess(a, b) || SeqLess(b, a) {
		t.Errorf("half-space comparison must be unordered: SeqLess(%#x,%#x)=%v SeqLess(%#x,%#x)=%v",
			a, b, SeqLess(a, b), b, a, SeqLess(b, a))
	}
	// SeqGEQ is the negation of SeqLess, so both directions report true.
	if !SeqGEQ(a, b) || !SeqGEQ(b, a) {
		t.Error("SeqGEQ must be !SeqLess even at the ambiguous distance")
	}
}

func TestSeqGEQ(t *testing.T) {
	if !SeqGEQ(5, 5) {
		t.Error("SeqGEQ(5,5) = false, want true")
	}
	if !SeqGEQ(0, 0xFFFFFFFF) {
		t.Error("SeqGEQ(0, MAX) = false, want true (0 is after MAX across the wrap)")
	}
	if SeqGEQ(0xFFFFFFFF, 0) {
		t.Error("SeqGEQ(MAX, 0) = true, want false")
	}
}

func TestSeqDiff(t *testing.T) {
	cases := []struct {
		a, b, want uint32
	}{
		{10, 3, 7},
		{3, 3, 0},
		{0, 0xFFFFFFFF, 1}, // wrap: 0 is one past MAX
		{4, 0xFFFFFFFE, 6}, // wrap spanning the boundary
		{0x80000000, 0, 1 << 31},
	}
	for _, c := range cases {
		if got := SeqDiff(c.a, c.b); got != c.want {
			t.Errorf("SeqDiff(%#x, %#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestSeqLoopIdiom pins the migration idiom used across the transports:
// iterating PSNs from una to an ACK's cumulative edge with SeqLess walks
// the wrap boundary without getting stuck or skipping.
func TestSeqLoopIdiom(t *testing.T) {
	una := uint32(0xFFFFFFFD)
	edge := uint32(3) // six packets acknowledged across the wrap
	var n int
	for psn := una; SeqLess(psn, edge); psn++ {
		n++
		if n > 10 {
			t.Fatal("loop failed to terminate across the wrap boundary")
		}
	}
	if n != 6 {
		t.Errorf("walked %d PSNs across the wrap, want 6", n)
	}
}
