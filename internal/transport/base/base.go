// Package base provides the plumbing shared by every modeled transport:
// the per-host endpoint skeleton (control-packet priority queue,
// round-robin QP scheduling with pacing wake-ups), message segmentation,
// and the environment handed to transport factories.
package base

import (
	"dcpsim/internal/cc"
	"dcpsim/internal/nic"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Transport is what experiment harnesses program against: the NIC pull/push
// interface plus flow admission.
type Transport interface {
	nic.Transport
	// StartFlow begins sending flow from this host (the flow's Src must
	// be this host).
	StartFlow(f *workload.Flow)
	// Name identifies the scheme ("dcp", "irn", ...).
	Name() string
}

// Factory builds a transport endpoint for one NIC.
type Factory func(n *nic.NIC, env *Env) Transport

// Env is the per-experiment environment shared by all endpoints.
type Env struct {
	Collector *stats.Collector
	CC        cc.Factory
	MTU       int
	// BaseRTT is the unloaded round-trip time of the longest path,
	// used to size windows and timeouts.
	BaseRTT units.Time
	// RTOLow/RTOHigh configure retransmission timers (scheme-specific
	// interpretation); zero values let transports pick defaults from
	// BaseRTT.
	RTOLow, RTOHigh units.Time
	// MessageSize caps one RDMA message; larger flows are split into
	// multiple messages (MSNs). Zero means 4 MB (§4.5: NCCL posts
	// messages of several MB, 8 outstanding per QP).
	MessageSize int
	// CNPInterval is the DCQCN notification-point minimum CNP gap.
	CNPInterval units.Time
	// Trace receives endpoint packet-lifecycle events when observability is
	// attached. nil means tracing is off: hooks must nil-check and the
	// disabled path stays allocation-free.
	Trace *obs.Tracer
	// Metrics is the time-series registry when observability is attached
	// (nil = off). Transports register per-flow gauges (in-flight bytes,
	// RetransQ depth, CC rate) against it at flow start.
	Metrics *obs.Metrics
	// Scheme-specific knobs.
	DCP DCPOptions
	MP  MPOptions
	SDR SDROptions
}

// DCPOptions tunes the DCP transport.
type DCPOptions struct {
	// PCIe overrides the PCIe model (zero RTT = default 1 µs).
	PCIe nic.PCIe
	// PerHOFetch disables batched RetransQ fetches: every HO packet costs
	// two PCIe round trips, the paper's inefficient strawman (challenge
	// #1). For ablation.
	PerHOFetch bool
	// ReceiverBitmap replaces bitmap-free counting with a conventional
	// receiver bitmap (orthogonality ablation, §4.5).
	ReceiverBitmap bool
	// UncontrolledRetrans bypasses CC for retransmissions (ablation of
	// challenge #2: retransmission rate tied to HO arrival rate).
	UncontrolledRetrans bool
	// Timeout is the coarse-grained fallback timeout (default 10 ms,
	// doubling on consecutive expiries of the same message).
	Timeout units.Time
	// MaxOutstandingMsgs bounds tracked messages per QP (default 8, the
	// NCCL setting in §4.5).
	MaxOutstandingMsgs int
}

// MPOptions tunes MP-RDMA.
type MPOptions struct {
	// Paths is the number of virtual paths (default 4).
	Paths int
	// OOOWindow L: packets beyond ePSN+L are dropped by the receiver
	// (default 64).
	OOOWindow int
}

// SDROptions tunes the SDR SACK-bitmap transport.
type SDROptions struct {
	// WindowPkts bounds the sliding tracking window in packets: both the
	// receiver's reassembly bitmap and the sender's SACK scoreboard hold
	// WindowPkts bits, so per-flow state is fixed regardless of message
	// size — but so is the achievable rate, WindowPkts×MTU per RTT
	// (default 1024; rounded up to a power of two).
	WindowPkts int
	// MaxRanges caps the selective-ACK ranges carried per ACK (default 8).
	MaxRanges int
}

// Defaults fills zero fields.
func (e *Env) Defaults() {
	if e.MTU == 0 {
		e.MTU = packet.DefaultMTU
	}
	if e.MessageSize == 0 {
		e.MessageSize = 4 * units.MB
	}
	if e.BaseRTT == 0 {
		e.BaseRTT = 10 * units.Microsecond
	}
	if e.RTOLow == 0 {
		e.RTOLow = 20*e.BaseRTT + 100*units.Microsecond
	}
	if e.RTOHigh == 0 {
		e.RTOHigh = 4 * e.RTOLow
	}
	if e.CNPInterval == 0 {
		e.CNPInterval = 50 * units.Microsecond
	}
	if e.CC == nil {
		e.CC = cc.NewBDPFactory(1)
	}
	if e.DCP.PCIe.RTT == 0 {
		e.DCP.PCIe = nic.DefaultPCIe()
	}
	if e.DCP.Timeout == 0 {
		e.DCP.Timeout = 10 * units.Millisecond
	}
	if e.DCP.MaxOutstandingMsgs == 0 {
		e.DCP.MaxOutstandingMsgs = 8
	}
	if e.MP.Paths == 0 {
		e.MP.Paths = 4
	}
	if e.MP.OOOWindow == 0 {
		e.MP.OOOWindow = 64
	}
	if e.SDR.WindowPkts == 0 {
		e.SDR.WindowPkts = 1024
	}
	if e.SDR.MaxRanges == 0 {
		e.SDR.MaxRanges = 8
	}
}

// QP is one sender-side queue pair as seen by the host scheduler.
type QP interface {
	// Next returns the next packet to transmit, or nil. When nil, the
	// second result optionally hints the absolute time the QP becomes
	// eligible (0 = only after an external event).
	Next(now units.Time) (*packet.Packet, units.Time)
	// Finished reports the QP can be removed from scheduling.
	Finished() bool
}

// Host is the endpoint skeleton transports embed.
type Host struct {
	NIC *nic.NIC
	Eng *sim.Engine
	Env *Env

	ctrl []*packet.Packet
	head int

	qps      []QP
	rr       int
	finished int
}

// NewHost binds the skeleton to a NIC and environment.
func NewHost(n *nic.NIC, env *Env) Host {
	return Host{NIC: n, Eng: n.Engine(), Env: env}
}

// QueueCtrl enqueues a control-plane packet (ACK, CNP, bounced HO) for
// strict-priority transmission and kicks the NIC.
func (h *Host) QueueCtrl(p *packet.Packet) {
	h.ctrl = append(h.ctrl, p)
	h.NIC.Kick()
}

// PopCtrl removes the next control packet, or nil.
func (h *Host) PopCtrl() *packet.Packet {
	if h.head >= len(h.ctrl) {
		return nil
	}
	p := h.ctrl[h.head]
	h.ctrl[h.head] = nil
	h.head++
	if h.head == len(h.ctrl) {
		h.ctrl = h.ctrl[:0]
		h.head = 0
	}
	return p
}

// AddQP registers a sender QP and kicks the NIC.
func (h *Host) AddQP(q QP) {
	h.qps = append(h.qps, q)
	h.NIC.Kick()
}

// Dequeue implements the shared pull path: control packets first (they are
// never PFC-paused: ACK/CNP ride a separate priority), then round-robin
// over eligible QPs. If nothing is eligible but a QP reported a pacing
// deadline, a NIC kick is scheduled.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	if p := h.PopCtrl(); p != nil {
		return p
	}
	if dataPaused {
		return nil
	}
	n := len(h.qps)
	var wake units.Time
	for i := 0; i < n; i++ {
		idx := (h.rr + i) % n
		qp := h.qps[idx]
		if qp == nil || qp.Finished() {
			continue
		}
		p, at := qp.Next(now)
		if p != nil {
			h.rr = (idx + 1) % n
			return p
		}
		if at > 0 && (wake == 0 || at < wake) {
			wake = at
		}
	}
	if wake > 0 {
		h.NIC.KickAt(wake)
	}
	h.compact()
	return nil
}

// compact drops finished QPs when they dominate the slice.
func (h *Host) compact() {
	fin := 0
	for _, q := range h.qps {
		if q == nil || q.Finished() {
			fin++
		}
	}
	if fin < 32 || fin*2 < len(h.qps) {
		return
	}
	kept := h.qps[:0]
	for _, q := range h.qps {
		if q != nil && !q.Finished() {
			kept = append(kept, q)
		}
	}
	h.qps = kept
	h.rr = 0
}

// NumPackets returns how many MTU-sized packets carry size bytes.
func NumPackets(size int64, mtu int) uint32 {
	if size <= 0 {
		return 0
	}
	return uint32((size + int64(mtu) - 1) / int64(mtu))
}

// PayloadAt returns the payload length of packet index i (0-based) of a
// size-byte message at the given MTU.
func PayloadAt(size int64, mtu int, i uint32) int {
	n := NumPackets(size, mtu)
	if i >= n {
		return 0
	}
	if i == n-1 {
		last := int(size - int64(n-1)*int64(mtu))
		return last
	}
	return mtu
}

// Messages splits a flow of size bytes into message sizes of at most
// msgSize each (the MSN sequence).
func Messages(size int64, msgSize int) []int64 {
	if size <= 0 {
		return nil
	}
	var out []int64
	for size > 0 {
		m := int64(msgSize)
		if size < m {
			m = size
		}
		out = append(out, m)
		size -= m
	}
	return out
}
