package base

import (
	"testing"
	"testing/quick"

	"dcpsim/internal/fabric"
	"dcpsim/internal/nic"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

func TestNumPackets(t *testing.T) {
	cases := []struct {
		size int64
		want uint32
	}{
		{0, 0}, {1, 1}, {999, 1}, {1000, 1}, {1001, 2}, {30_000_000, 30000},
	}
	for _, c := range cases {
		if got := NumPackets(c.size, 1000); got != c.want {
			t.Errorf("NumPackets(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestPayloadAt(t *testing.T) {
	// 2500 bytes at MTU 1000: payloads 1000, 1000, 500.
	if PayloadAt(2500, 1000, 0) != 1000 || PayloadAt(2500, 1000, 1) != 1000 {
		t.Fatal("full packets")
	}
	if PayloadAt(2500, 1000, 2) != 500 {
		t.Fatal("tail packet")
	}
	if PayloadAt(2500, 1000, 3) != 0 {
		t.Fatal("out of range")
	}
}

func TestPayloadsSumToSizeQuick(t *testing.T) {
	f := func(sz uint32) bool {
		size := int64(sz%10_000_000) + 1
		n := NumPackets(size, 1000)
		var sum int64
		for i := uint32(0); i < n; i++ {
			p := PayloadAt(size, 1000, i)
			if p <= 0 || p > 1000 {
				return false
			}
			sum += int64(p)
		}
		return sum == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMessages(t *testing.T) {
	msgs := Messages(10<<20, 4<<20)
	if len(msgs) != 3 {
		t.Fatalf("%d messages", len(msgs))
	}
	if msgs[0] != 4<<20 || msgs[2] != 2<<20 {
		t.Fatalf("sizes %v", msgs)
	}
	var sum int64
	for _, m := range msgs {
		sum += m
	}
	if sum != 10<<20 {
		t.Fatal("conservation")
	}
	if Messages(0, 1<<20) != nil {
		t.Fatal("empty")
	}
}

func TestEnvDefaults(t *testing.T) {
	e := &Env{}
	e.Defaults()
	if e.MTU != packet.DefaultMTU || e.MessageSize != 4*units.MB {
		t.Fatal("mtu/message defaults")
	}
	if e.RTOLow == 0 || e.RTOHigh != 4*e.RTOLow {
		t.Fatal("RTO defaults")
	}
	if e.CC == nil || e.DCP.PCIe.RTT == 0 || e.DCP.Timeout == 0 {
		t.Fatal("controller/DCP defaults")
	}
	if e.DCP.MaxOutstandingMsgs != 8 || e.MP.Paths != 4 || e.MP.OOOWindow != 64 {
		t.Fatal("scheme defaults")
	}
	// Explicit values survive.
	e2 := &Env{MTU: 500, MessageSize: 1 << 20}
	e2.Defaults()
	if e2.MTU != 500 || e2.MessageSize != 1<<20 {
		t.Fatal("explicit values overridden")
	}
}

// scriptedQP returns packets from a list.
type scriptedQP struct {
	pkts []*packet.Packet
	fin  bool
	at   units.Time
}

func (q *scriptedQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if len(q.pkts) == 0 {
		return nil, q.at
	}
	p := q.pkts[0]
	q.pkts = q.pkts[1:]
	return p, 0
}
func (q *scriptedQP) Finished() bool { return q.fin }

type sinkNode struct{}

func (s *sinkNode) Receive(p *packet.Packet, _ int) {}
func (s *sinkNode) AddIngress(w *fabric.Wire) int   { return 0 }

func newHost(eng *sim.Engine) *Host {
	n := nic.New(eng, 0, 100*units.Gbps)
	n.SetUplink(fabric.Attach(eng, 0, &sinkNode{}))
	env := &Env{}
	env.Defaults()
	h := NewHost(n, env)
	return &h
}

func TestCtrlQueueFIFOAndPriority(t *testing.T) {
	eng := sim.NewEngine(1)
	h := newHost(eng)
	data := packet.DataPacket(1, 0, 1, 0, 0, 100)
	h.AddQP(&scriptedQP{pkts: []*packet.Packet{data}})
	a1 := packet.AckPacket(1, 0, 1, 1)
	a2 := packet.AckPacket(1, 0, 1, 2)
	h.QueueCtrl(a1)
	h.QueueCtrl(a2)
	if got := h.Dequeue(0, false); got != a1 {
		t.Fatal("ctrl served first, FIFO")
	}
	if got := h.Dequeue(0, false); got != a2 {
		t.Fatal("ctrl FIFO order")
	}
	if got := h.Dequeue(0, false); got != data {
		t.Fatal("then data")
	}
}

func TestPauseHoldsDataNotCtrl(t *testing.T) {
	eng := sim.NewEngine(1)
	h := newHost(eng)
	h.AddQP(&scriptedQP{pkts: []*packet.Packet{packet.DataPacket(1, 0, 1, 0, 0, 100)}})
	ack := packet.AckPacket(1, 0, 1, 1)
	h.QueueCtrl(ack)
	if got := h.Dequeue(0, true); got != ack {
		t.Fatal("PFC pause must not hold ACKs")
	}
	if got := h.Dequeue(0, true); got != nil {
		t.Fatal("PFC pause must hold data")
	}
	if got := h.Dequeue(0, false); got == nil {
		t.Fatal("unpaused serves data")
	}
}

func TestRoundRobinAcrossQPs(t *testing.T) {
	eng := sim.NewEngine(1)
	h := newHost(eng)
	mk := func(flow uint64, n int) *scriptedQP {
		q := &scriptedQP{}
		for i := 0; i < n; i++ {
			q.pkts = append(q.pkts, packet.DataPacket(flow, 0, 1, uint32(i), 0, 100))
		}
		return q
	}
	h.AddQP(mk(1, 3))
	h.AddQP(mk(2, 3))
	var order []uint64
	for {
		p := h.Dequeue(0, false)
		if p == nil {
			break
		}
		order = append(order, p.FlowID)
	}
	want := []uint64{1, 2, 1, 2, 1, 2}
	for i, f := range want {
		if order[i] != f {
			t.Fatalf("RR order %v", order)
		}
	}
}

func TestPacingWakeScheduled(t *testing.T) {
	eng := sim.NewEngine(1)
	h := newHost(eng)
	h.AddQP(&scriptedQP{at: 10 * units.Microsecond})
	if h.Dequeue(0, false) != nil {
		t.Fatal("nothing eligible")
	}
	// The host must have scheduled a wake-up kick at the pacing hint.
	if eng.Pending() == 0 {
		t.Fatal("no wake-up scheduled")
	}
}

func TestCompactDropsFinishedQPs(t *testing.T) {
	eng := sim.NewEngine(1)
	h := newHost(eng)
	for i := 0; i < 100; i++ {
		h.AddQP(&scriptedQP{fin: true})
	}
	live := &scriptedQP{pkts: []*packet.Packet{packet.DataPacket(9, 0, 1, 0, 0, 10)}}
	h.AddQP(live)
	if h.Dequeue(0, false) == nil {
		t.Fatal("live QP must be served")
	}
	h.Dequeue(0, false) // triggers compaction sweep
	if len(h.qps) > 2 {
		t.Fatalf("compact left %d QPs", len(h.qps))
	}
}
