package mprdma_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

func multiPath(sch exp.Scheme, cross int) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = cross
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	}
}

func TestCompletesOverLosslessFabric(t *testing.T) {
	sch := exp.SchemeMPRDMA()
	s := exp.NewSim(9, sch, multiPath(sch, 4))
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 20 << 20}})
	if s.Run(10*units.Second) != 0 {
		t.Fatal("unfinished")
	}
	rec := s.Col.Flow(1)
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 50 {
		t.Fatalf("goodput %.1f", gp)
	}
	if s.Net.Counters().DroppedData != 0 {
		t.Fatal("lossless fabric must not drop")
	}
}

func TestUsesMultiplePaths(t *testing.T) {
	// With per-packet virtual paths, ECMP hashing must spread one flow
	// across several cross links.
	sch := exp.SchemeMPRDMA()
	s := exp.NewSim(9, sch, multiPath(sch, 4))
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 8 << 20}})
	if s.Run(10*units.Second) != 0 {
		t.Fatal("unfinished")
	}
	// Cross ports on switch 1 are egress indices 1..4 (0 is host-facing).
	sw := s.Net.Switches[0]
	used := 0
	for i := 0; i < sw.NumEgress(); i++ {
		if sw.EgressAt(i).Port.TxPackets > 100 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("flow used only %d ports; multipath broken", used)
	}
}

func TestOOOWindowTriggersGoBackN(t *testing.T) {
	// A tiny OOO window over many unequal paths forces receiver-side
	// drops and Go-Back-N recovery — the MP-RDMA weakness the paper
	// discusses (§6.2: "fails to effectively control the OOO degree").
	sch := exp.SchemeMPRDMA()
	sch.Tweak = func(e *base.Env) { e.MP.OOOWindow = 4 }
	s := exp.NewSim(9, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 4
		// Heterogeneous path rates maximize reordering.
		cfg.CrossRates = []units.Rate{100 * units.Gbps, 25 * units.Gbps, 50 * units.Gbps, 10 * units.Gbps}
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 8 << 20}})
	if s.Run(30*units.Second) != 0 {
		t.Fatal("unfinished")
	}
	rec := s.Col.Flow(1)
	if rec.RetransPkts == 0 {
		t.Fatal("OOO-window overflow must force retransmissions")
	}
}

func TestECNWindowReduces(t *testing.T) {
	// Congestion (many-to-one) must mark ECN and keep the fabric paused
	// rather than dropping; the adaptive window prevents collapse.
	sch := exp.SchemeMPRDMA()
	s := exp.NewSim(9, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	var flows []*workload.Flow
	for i := uint64(0); i < 6; i++ {
		flows = append(flows, &workload.Flow{ID: i + 1, Src: packet.NodeID(i), Dst: 15, Size: 4 << 20})
	}
	s.ScheduleFlows(flows)
	if s.Run(10*units.Second) != 0 {
		t.Fatal("unfinished")
	}
	if s.Net.Counters().ECNMarked == 0 {
		t.Fatal("incast must mark ECN for MP-RDMA's window")
	}
	if s.Net.Counters().DroppedData != 0 {
		t.Fatal("lossless fabric must not drop")
	}
}
