// Package mprdma implements the MP-RDMA baseline (Lu et al., NSDI'18):
// packet-level multipath transmission over distinct virtual paths (UDP
// source ports), an ECN/ACK-clocked congestion window, a receiver-side
// out-of-order window beyond which packets are dropped, and Go-Back-N loss
// recovery. Per Table 2 it still requires PFC (R1 ✗) and lacks fast loss
// recovery (R3 ✗).
package mprdma

import (
	"dcpsim/internal/nic"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Host is an MP-RDMA endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds an MP-RDMA endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "mprdma" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onAck(p)
		}
	}
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord

	totalPkts uint32
	lastPay   int

	una      uint32
	nextPSN  uint32
	firstTx  uint32
	inflight int // packets in flight (ACK-clocked)

	// cwnd is MP-RDMA's adaptive congestion window in packets: +1/cwnd
	// per unmarked ACK, -1/2 per ECN-marked ACK.
	cwnd float64

	pathRR uint32

	timer *sim.Timer
	done  bool
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	bdpPkts := float64(units.BDP(h.NIC.Rate(), env.BaseRTT)) / float64(env.MTU)
	qp.cwnd = bdpPkts
	if qp.cwnd < 2 {
		qp.cwnd = 2
	}
	qp.timer = sim.NewTimer(h.Eng, qp.onTimeout)
	qp.timer.Reset(env.RTOHigh)
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done || base.SeqGEQ(qp.nextPSN, qp.totalPkts) {
		return nil, 0
	}
	if float64(qp.inflight) >= qp.cwnd {
		return nil, 0 // ACK-clocked
	}
	psn := qp.nextPSN
	qp.nextPSN++
	size := qp.payloadAt(psn)
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, size)
	p.Tag = packet.TagNonDCP
	p.MsgLen = qp.totalPkts
	p.SentAt = now
	// Virtual path selection: round robin across paths, hashed by the
	// fabric like distinct UDP source ports.
	p.PathKey = qp.pathRR%uint32(qp.h.Env.MP.Paths) + 1
	qp.pathRR++
	if base.SeqLess(psn, qp.firstTx) {
		p.Retransmitted = true
		qp.rec.RetransPkts++
	} else {
		qp.firstTx = psn + 1
		qp.rec.DataPkts++
	}
	qp.inflight++
	return p, 0
}

func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	if qp.inflight > 0 {
		qp.inflight--
	}
	// ECN-echo driven window adaptation.
	if p.ECN {
		qp.cwnd -= 0.5
		if qp.cwnd < 1 {
			qp.cwnd = 1
		}
	} else {
		qp.cwnd += 1 / qp.cwnd
	}
	if base.SeqLess(qp.una, p.EPSN) {
		qp.una = p.EPSN
		if base.SeqLess(qp.nextPSN, qp.una) {
			qp.nextPSN = qp.una // a rewind raced this cumulative ACK
		}
		qp.timer.Reset(qp.h.Env.RTOHigh)
		if base.SeqGEQ(qp.una, qp.totalPkts) {
			qp.done = true
			qp.timer.Stop()
			qp.h.Env.Collector.Done(qp.flow.ID, now)
			return
		}
	}
	if p.Ack == packet.AckNak && base.SeqLess(p.EPSN, qp.nextPSN) {
		// OOO-window overflow at the receiver: Go-Back-N.
		qp.nextPSN = p.EPSN
		qp.inflight = 0
	}
	qp.h.NIC.Kick()
}

func (qp *senderQP) onTimeout() {
	if qp.done {
		return
	}
	if base.SeqLess(qp.una, qp.nextPSN) {
		qp.rec.Timeouts++
		qp.nextPSN = qp.una
		qp.inflight = 0
		qp.h.NIC.Kick()
	}
	qp.timer.Reset(qp.h.Env.RTOHigh)
}

type recvQP struct {
	ePSN     uint32
	received []uint64
	total    uint32
	nakSent  bool
}

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{received: make([]uint64, (p.MsgLen+63)/64), total: p.MsgLen}
		h.recv[p.FlowID] = qp
	}
	// Out-of-order window: the receiver bitmap only spans L packets beyond
	// ePSN; packets further ahead are dropped and trigger Go-Back-N. The
	// paper observes MP-RDMA fails to keep the OOO degree below this
	// threshold under adaptive routing, causing its inferior performance.
	if base.SeqGEQ(p.PSN, qp.ePSN+uint32(h.Env.MP.OOOWindow)) {
		if !qp.nakSent {
			qp.nakSent = true
			h.ack(p, qp, packet.AckNak)
		}
		return
	}
	if base.SeqGEQ(p.PSN, qp.ePSN) {
		w, b := p.PSN/64, p.PSN%64
		if qp.received[w]&(1<<b) == 0 {
			qp.received[w] |= 1 << b
			for base.SeqLess(qp.ePSN, qp.total) && qp.received[qp.ePSN/64]&(1<<(qp.ePSN%64)) != 0 {
				qp.ePSN++
				qp.nakSent = false
			}
		}
	}
	h.ack(p, qp, packet.AckCumulative)
}

func (h *Host) ack(data *packet.Packet, qp *recvQP, flavor packet.AckFlavor) {
	a := packet.AckPacket(data.FlowID, data.Dst, data.Src, qp.ePSN)
	a.Tag = packet.TagNonDCP
	a.Ack = flavor
	a.ECN = data.ECN // ECN echo drives the sender's window
	a.SentAt = data.SentAt
	a.PathKey = data.PathKey // ACK returns on the data packet's path
	h.QueueCtrl(a)
}
