// Package dcp implements the paper's DCP-RNIC transport (§4): HO-based
// retransmission fed by the fabric's lossless control plane, order-tolerant
// packet reception, bitmap-free packet tracking with per-message counters
// and eMSN acknowledgments, and a coarse-grained timeout fallback with
// sRetryNo/rRetryNo retry epochs.
package dcp

import (
	"fmt"

	"dcpsim/internal/cc"
	"dcpsim/internal/nic"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Host is a DCP endpoint on one NIC.
type Host struct {
	base.Host

	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds a DCP endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "dcp" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	if h.Env.Trace != nil {
		h.Env.Trace.Flow(h.Eng.Now(), obs.EvFlowStart, f.Src, f.ID, f.Size)
	}
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p)
	case packet.KindHO:
		if p.Echoed {
			// An HO packet bounced back to us: we are the sender.
			if qp := h.send[p.FlowID]; qp != nil {
				qp.onHO(p)
			}
			return
		}
		// Receiver side: swap source and destination and forward the HO
		// packet to the sender (§4.1 step 2).
		if h.Env.Trace != nil {
			h.Env.Trace.Packet(h.Eng.Now(), obs.EvHOBounce, h.NIC.ID(), -1, p, 0)
		}
		p.Bounce()
		h.QueueCtrl(p)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onAck(p)
		}
	case packet.KindCNP:
		if qp := h.send[p.FlowID]; qp != nil && !qp.done {
			qp.ctl.OnCongestion(h.Eng.Now())
		}
	}
}

// Dequeue implements nic.Transport via the base skeleton.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

// ---------- sender ----------

type senderMsg struct {
	size    int64
	basePSN uint32
	npkts   uint32
	retryNo uint8
	acked   bool
}

// Per-QP NIC tracking state, for the bitmap-vs-counter memory accounting
// (§4.5): the sender holds sequence cursors plus one small entry per
// outstanding message; the receiver holds a counter entry per incomplete
// message (plus the bitmap words only in the ReceiverBitmap ablation).
const (
	senderFixedState = 48
	senderMsgState   = 24
	recvFixedState   = 24
	recvMsgState     = 16
)

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord
	ctl  cc.Controller

	msgs      []*senderMsg
	totalPkts uint32

	nextPSN  uint32 // next new-data PSN
	unaMSN   uint32 // oldest unacknowledged message
	inflight int    // payload bytes believed in flight

	sentBytes  int64
	ackedBytes int64

	// RetransQ machinery (§4.3): entries live in host memory; the Tx path
	// fetches batches across PCIe.
	rq         nic.RetransQ
	fetched    []nic.RetransEntry
	fetching   bool
	resend     []uint32 // PSNs queued by the coarse timeout fallback
	resendHead int

	timer   *sim.Timer
	backoff uint // consecutive coarse timeouts (exponential backoff)
	done    bool
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.ctl = env.CC(h.Eng, h.NIC.Rate(), env.BaseRTT)
	var psn uint32
	for _, sz := range base.Messages(f.Size, env.MessageSize) {
		n := base.NumPackets(sz, env.MTU)
		qp.msgs = append(qp.msgs, &senderMsg{size: sz, basePSN: psn, npkts: n})
		psn += n
	}
	qp.totalPkts = psn
	outstanding := len(qp.msgs)
	if outstanding > env.DCP.MaxOutstandingMsgs {
		outstanding = env.DCP.MaxOutstandingMsgs
	}
	qp.rec.NoteSendState(senderFixedState + int64(outstanding)*senderMsgState)
	qp.timer = sim.NewTimer(h.Eng, qp.onTimeout)
	qp.timer.Reset(env.DCP.Timeout)
	if env.Metrics != nil {
		env.Metrics.Gauge(fmt.Sprintf("flow%d.inflight_bytes", f.ID),
			func() float64 { return float64(qp.inflight) })
		env.Metrics.Gauge(fmt.Sprintf("flow%d.retransq_depth", f.ID),
			func() float64 { return float64(qp.rq.Len()) })
		env.Metrics.Gauge(fmt.Sprintf("flow%d.cc_rate_gbps", f.ID),
			func() float64 { return qp.ctl.Rate().Gigabits() })
	}
	if env.Trace != nil {
		tr, node, id := env.Trace, f.Src, f.ID
		cc.SetTrace(qp.ctl, func(now units.Time, r units.Rate) {
			tr.CCRate(now, node, id, r)
		})
	}
	return qp
}

// msgForPSN locates the message containing psn by binary search.
func (qp *senderQP) msgForPSN(psn uint32) (uint32, *senderMsg) {
	lo, hi := 0, len(qp.msgs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if base.SeqGEQ(psn, qp.msgs[mid].basePSN) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return uint32(lo), qp.msgs[lo]
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP: fetched retransmissions first, then
// timeout-fallback resends, then new data, all gated by the CC module.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done {
		return nil, 0
	}
	env := qp.h.Env

	// 1. HO-triggered retransmissions from the fetched batch.
	for len(qp.fetched) > 0 {
		e := qp.fetched[0]
		msn := e.MSN
		m := qp.msgs[msn]
		if m.acked || e.Epoch != m.retryNo {
			qp.fetched = qp.fetched[1:]
			continue
		}
		size := base.PayloadAt(m.size, env.MTU, e.Offset)
		if !env.DCP.UncontrolledRetrans {
			ok, at := qp.ctl.CanSend(now, qp.inflight, size)
			if !ok {
				return nil, at
			}
		}
		qp.fetched = qp.fetched[1:]
		return qp.emit(now, e.PSN, msn, m, e.Offset, true), 0
	}
	qp.maybeFetch()

	// 2. Coarse-timeout resends.
	for qp.resendHead < len(qp.resend) {
		psn := qp.resend[qp.resendHead]
		msn, m := qp.msgForPSN(psn)
		if m.acked {
			qp.resendHead++
			continue
		}
		size := base.PayloadAt(m.size, env.MTU, base.SeqDiff(psn, m.basePSN))
		ok, at := qp.ctl.CanSend(now, qp.inflight, size)
		if !ok {
			return nil, at
		}
		qp.resendHead++
		return qp.emit(now, psn, msn, m, base.SeqDiff(psn, m.basePSN), true), 0
	}
	if qp.resendHead > 0 && qp.resendHead == len(qp.resend) {
		qp.resend = qp.resend[:0]
		qp.resendHead = 0
	}

	// 3. New data, bounded by the outstanding-message cap.
	if base.SeqLess(qp.nextPSN, qp.totalPkts) {
		msn, m := qp.msgForPSN(qp.nextPSN)
		if base.SeqGEQ(msn, qp.unaMSN+uint32(env.DCP.MaxOutstandingMsgs)) {
			return nil, 0 // wait for eMSN to advance
		}
		off := base.SeqDiff(qp.nextPSN, m.basePSN)
		size := base.PayloadAt(m.size, env.MTU, off)
		ok, at := qp.ctl.CanSend(now, qp.inflight, size)
		if !ok {
			return nil, at
		}
		psn := qp.nextPSN
		qp.nextPSN++
		qp.rec.DataPkts++
		p := qp.emit(now, psn, msn, m, off, false)
		p.Retransmitted = false
		return p, 0
	}
	return nil, 0
}

func (qp *senderQP) emit(now units.Time, psn, msn uint32, m *senderMsg, off uint32, retrans bool) *packet.Packet {
	env := qp.h.Env
	size := base.PayloadAt(m.size, env.MTU, off)
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, msn, size)
	p.MsgLen = m.npkts
	p.MsgOffset = off
	p.SSN = msn
	p.SRetryNo = m.retryNo
	p.SentAt = now
	p.Retransmitted = retrans
	if retrans {
		qp.rec.RetransPkts++
		if env.Trace != nil {
			env.Trace.Emit(obs.Event{At: now, Type: obs.EvRetransmit, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: psn, MSN: msn, Size: int32(size), Aux: int64(m.retryNo)})
		}
	} else if env.Trace != nil {
		env.Trace.Emit(obs.Event{At: now, Type: obs.EvSend, Node: qp.flow.Src, Port: -1,
			Flow: qp.flow.ID, PSN: psn, MSN: msn, Size: int32(size), Aux: int64(m.retryNo)})
	}
	qp.inflight += size
	qp.sentBytes += int64(size)
	qp.ctl.OnSent(now, p.Size)
	return p
}

// maybeFetch starts a PCIe batch fetch from the RetransQ when the RNIC has
// no fetched entries in hand (§4.3 steps 1–3).
func (qp *senderQP) maybeFetch() {
	if qp.fetching || len(qp.fetched) > 0 || qp.rq.Len() == 0 || qp.done {
		return
	}
	qp.fetching = true
	env := qp.h.Env
	if env.DCP.PerHOFetch {
		// Strawman: one entry per WQE fetch + data fetch (two PCIe RTTs).
		qp.h.Eng.AfterComp(2*env.DCP.PCIe.RTT, sim.CompTransport, func() {
			qp.fetching = false
			batch := qp.rq.FetchBatch(1)
			qp.fetched = append(qp.fetched, batch...)
			qp.traceFetch(batch)
			qp.h.NIC.Kick()
		})
		return
	}
	qp.h.Eng.AfterComp(env.DCP.PCIe.RTT, sim.CompTransport, func() {
		qp.fetching = false
		batch := qp.rq.FetchBatch(nic.BatchLimit)
		qp.fetched = append(qp.fetched, batch...)
		qp.traceFetch(batch)
		qp.h.NIC.Kick()
	})
}

// traceFetch records one EvRQFetch per entry when its PCIe fetch completes
// (Aux = the entry's retry epoch at push time).
func (qp *senderQP) traceFetch(batch []nic.RetransEntry) {
	env := qp.h.Env
	if env.Trace == nil {
		return
	}
	now := qp.h.Eng.Now()
	for _, e := range batch {
		env.Trace.Emit(obs.Event{At: now, Type: obs.EvRQFetch, Node: qp.flow.Src, Port: -1,
			Flow: qp.flow.ID, PSN: e.PSN, MSN: e.MSN, Aux: int64(e.Epoch)})
	}
}

// onHO receives a bounced HO packet: push a retransmission entry (the
// Rx-path DMA write) and kick the Tx path.
func (qp *senderQP) onHO(p *packet.Packet) {
	if qp.done {
		return
	}
	msn, m := qp.msgForPSN(p.PSN)
	if m.acked || base.SeqLess(msn, qp.unaMSN) {
		return // stale: the message already completed
	}
	qp.rec.HOTriggers++
	// The HO packet is an explicit loss notification: the named packet is
	// no longer in flight, so release its window share before the
	// (CC-regulated) retransmission claims it again.
	off := base.SeqDiff(p.PSN, m.basePSN)
	qp.inflight -= base.PayloadAt(m.size, qp.h.Env.MTU, off)
	if qp.inflight < 0 {
		qp.inflight = 0
	}
	qp.rq.Push(nic.RetransEntry{MSN: msn, PSN: p.PSN, Offset: off, Epoch: m.retryNo})
	if env := qp.h.Env; env.Trace != nil {
		env.Trace.Emit(obs.Event{At: qp.h.Eng.Now(), Type: obs.EvHOReturn, Node: qp.flow.Src, Port: -1,
			Flow: p.FlowID, PSN: p.PSN, MSN: msn, Size: int32(p.Size), Aux: int64(qp.rq.Len())})
	}
	qp.maybeFetch()
	qp.h.NIC.Kick()
}

// onAck processes a DCP ACK: advance unaMSN to the carried eMSN, refresh
// the coarse timer, update flow control, and complete the flow when every
// message is acknowledged.
func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	if p.AckBytes > qp.ackedBytes {
		delta := p.AckBytes - qp.ackedBytes
		qp.ackedBytes = p.AckBytes
		qp.inflight -= int(delta)
		if qp.inflight < 0 {
			qp.inflight = 0
		}
		var rtt units.Time
		if p.SentAt > 0 {
			rtt = now - p.SentAt
		}
		qp.ctl.OnAck(now, int(delta), rtt)
	}
	if base.SeqLess(qp.unaMSN, p.EMSN) {
		for i := qp.unaMSN; base.SeqLess(i, p.EMSN) && i < uint32(len(qp.msgs)); i++ {
			qp.msgs[i].acked = true
		}
		qp.unaMSN = p.EMSN
		qp.backoff = 0
		qp.timer.Reset(qp.h.Env.DCP.Timeout)
		if base.SeqGEQ(qp.unaMSN, uint32(len(qp.msgs))) {
			qp.complete(now)
			return
		}
	}
	qp.h.NIC.Kick()
}

func (qp *senderQP) complete(now units.Time) {
	qp.done = true
	qp.timer.Stop()
	qp.ctl.Close()
	if env := qp.h.Env; env.Trace != nil {
		env.Trace.Flow(now, obs.EvFlowDone, qp.flow.Src, qp.flow.ID, qp.sentBytes)
	}
	qp.h.Env.Collector.Done(qp.flow.ID, now)
}

// onTimeout is the coarse-grained fallback (§4.5): bump the unaMSN-th
// message's retry epoch and resend all of its packets through the normal
// (CC-regulated) send path.
func (qp *senderQP) onTimeout() {
	if qp.done {
		return
	}
	if qp.nextPSN == 0 {
		// Nothing sent yet (flow starved by CC): just re-arm.
		qp.timer.Reset(qp.h.Env.DCP.Timeout)
		return
	}
	m := qp.msgs[qp.unaMSN]
	m.retryNo++
	qp.rec.Timeouts++
	if env := qp.h.Env; env.Trace != nil {
		now := qp.h.Eng.Now()
		env.Trace.Emit(obs.Event{At: now, Type: obs.EvTimeout, Node: qp.flow.Src, Port: -1,
			Flow: qp.flow.ID, MSN: qp.unaMSN, Aux: int64(qp.backoff)})
		env.Trace.Emit(obs.Event{At: now, Type: obs.EvEpochFallback, Node: qp.flow.Src, Port: -1,
			Flow: qp.flow.ID, PSN: m.basePSN, MSN: qp.unaMSN, Aux: int64(m.retryNo)})
	}
	// Conservative restart: consider the window empty.
	qp.inflight = 0
	// Queue every already-sent packet of the message for resending.
	qp.resend = qp.resend[:0]
	qp.resendHead = 0
	end := m.basePSN + m.npkts
	if base.SeqLess(qp.nextPSN, end) {
		end = qp.nextPSN
	}
	for psn := m.basePSN; base.SeqLess(psn, end); psn++ {
		qp.resend = append(qp.resend, psn)
	}
	// Exponential backoff: under sustained congestion each epoch bump
	// discards the receiver's partial count for the message, so retrying
	// at a fixed cadence can livelock. Back off until progress resumes.
	if qp.backoff < 5 {
		qp.backoff++
	}
	qp.timer.Reset(qp.h.Env.DCP.Timeout << qp.backoff)
	qp.h.NIC.Kick()
}

// ---------- receiver ----------

type recvMsg struct {
	total    uint32
	counter  uint32
	retryNo  uint8
	complete bool
	// bitmap is only allocated in the ReceiverBitmap ablation.
	bitmap []uint64
}

type recvQP struct {
	sender  packet.NodeID
	eMSN    uint32
	msgs    map[uint32]*recvMsg
	rxBytes int64

	sinceAck int
	lastCNP  units.Time
	cnpSet   bool
}

// ackEvery is the ACK coalescing factor: one ACK per this many data
// packets, plus an immediate ACK whenever eMSN advances.
const ackEvery = 4

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{sender: p.Src, msgs: make(map[uint32]*recvMsg)}
		h.recv[p.FlowID] = qp
	}
	now := h.Eng.Now()

	if p.ECN {
		h.maybeCNP(qp, p, now)
	}

	if base.SeqLess(p.MSN, qp.eMSN) {
		// Duplicate of a completed message (late timeout retransmission):
		// refresh the sender with the current state.
		h.sendAck(qp, p, now)
		return
	}
	m := qp.msgs[p.MSN]
	if m == nil {
		m = &recvMsg{total: p.MsgLen}
		var bitmapBytes int64
		if h.Env.DCP.ReceiverBitmap {
			m.bitmap = make([]uint64, (p.MsgLen+63)/64)
			bitmapBytes = int64(len(m.bitmap)) * 8
		}
		qp.msgs[p.MSN] = m
		if rec := h.Env.Collector.Flow(p.FlowID); rec != nil {
			rec.NoteRecvState(recvFixedState + int64(len(qp.msgs))*(recvMsgState+bitmapBytes))
		}
	}
	// Retry-epoch check (§4.5). Note rxBytes stays cumulative across the
	// reset: packets of the discarded epoch remain counted, which can
	// over-credit the sender's window slightly after a timeout — the
	// sender compensates by conservatively zeroing its inflight estimate
	// when the timer fires.
	switch {
	case p.SRetryNo > m.retryNo:
		m.retryNo = p.SRetryNo
		m.counter = 0
		for i := range m.bitmap {
			m.bitmap[i] = 0
		}
	case p.SRetryNo < m.retryNo:
		return // stale epoch
	}
	if m.complete {
		return
	}

	if h.Env.DCP.ReceiverBitmap {
		w, b := p.MsgOffset/64, p.MsgOffset%64
		if m.bitmap[w]&(1<<b) != 0 {
			return // duplicate within epoch (only possible in ablations)
		}
		m.bitmap[w] |= 1 << b
	}
	m.counter++
	qp.rxBytes += int64(p.PayloadBytes)
	qp.sinceAck++
	if h.Env.Trace != nil {
		// Aux packs the accepting epoch and the per-message counter after
		// this placement — the flight recorder's exactly-once evidence.
		h.Env.Trace.Emit(obs.Event{At: now, Type: obs.EvPlace, Node: h.NIC.ID(), Port: -1,
			Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.PayloadBytes),
			Aux: int64(m.retryNo)<<32 | int64(m.counter)})
	}

	advanced := false
	if m.counter >= m.total {
		m.complete = true
		if h.Env.Trace != nil {
			h.Env.Trace.Emit(obs.Event{At: now, Type: obs.EvMsgComplete, Node: h.NIC.ID(), Port: -1,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Aux: int64(m.total)})
		}
		// Advance eMSN over consecutively completed messages, releasing
		// their tracking state (the CQE generation point).
		for {
			cm := qp.msgs[qp.eMSN]
			if cm == nil || !cm.complete {
				break
			}
			delete(qp.msgs, qp.eMSN)
			qp.eMSN++
			advanced = true
		}
	}
	if advanced && h.Env.Trace != nil {
		h.Env.Trace.Emit(obs.Event{At: now, Type: obs.EvEMSNAdv, Node: h.NIC.ID(), Port: -1,
			Flow: p.FlowID, MSN: qp.eMSN, Aux: int64(qp.eMSN)})
	}
	if advanced || qp.sinceAck >= ackEvery {
		h.sendAck(qp, p, now)
	}
}

func (h *Host) sendAck(qp *recvQP, data *packet.Packet, now units.Time) {
	qp.sinceAck = 0
	ack := packet.AckPacket(data.FlowID, data.Dst, data.Src, 0)
	ack.EMSN = qp.eMSN
	ack.AckBytes = qp.rxBytes
	ack.SentAt = data.SentAt // echo the data timestamp for RTT estimation
	h.QueueCtrl(ack)
}

// maybeCNP sends a DCQCN congestion notification, rate-limited per QP.
func (h *Host) maybeCNP(qp *recvQP, data *packet.Packet, now units.Time) {
	if qp.cnpSet && now-qp.lastCNP < h.Env.CNPInterval {
		return
	}
	qp.cnpSet = true
	qp.lastCNP = now
	cnp := &packet.Packet{
		Kind:   packet.KindCNP,
		Tag:    packet.TagAck,
		FlowID: data.FlowID,
		Src:    data.Dst,
		Dst:    data.Src,
		Size:   packet.CNPSize,
	}
	h.QueueCtrl(cnp)
}

// RecvState exposes receiver-side tracking for tests: returns the expected
// MSN and number of tracked (outstanding) messages for a flow.
func (h *Host) RecvState(flowID uint64) (eMSN uint32, tracked int, ok bool) {
	qp := h.recv[flowID]
	if qp == nil {
		return 0, 0, false
	}
	return qp.eMSN, len(qp.msgs), true
}

// SenderState exposes sender-side state for tests.
func (h *Host) SenderState(flowID uint64) (unaMSN uint32, retransQLen int, ok bool) {
	qp := h.send[flowID]
	if qp == nil {
		return 0, 0, false
	}
	return qp.unaMSN, qp.rq.Len(), true
}
