package dcp_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/fabric"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/transport/dcp"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// onePath builds host—switch—switch—host with one cross link.
func onePath(sch exp.Scheme, mutate func(*fabric.SwitchConfig)) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = exp.SwitchConfigFor(sch)
		if mutate != nil {
			mutate(&cfg.Switch)
		}
		return topo.Dumbbell(eng, cfg)
	}
}

func runOne(t *testing.T, sch exp.Scheme, size int64, mutate func(*fabric.SwitchConfig), tweak func(*base.Env)) (*exp.Sim, *stats.FlowRecord) {
	t.Helper()
	sch.Tweak = tweak
	s := exp.NewSim(7, sch, onePath(sch, mutate))
	f := &workload.Flow{ID: 1, Src: 0, Dst: 1, Size: size}
	s.ScheduleFlows([]*workload.Flow{f})
	if left := s.Run(20 * units.Second); left != 0 {
		t.Fatalf("flow unfinished at %v", s.Eng.Now())
	}
	return s, s.Col.Flow(1)
}

func TestDeliversAtLineRate(t *testing.T) {
	_, rec := runOne(t, exp.SchemeDCP(false), 20<<20, nil, nil)
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 85 {
		t.Fatalf("goodput %.1f Gbps", gp)
	}
	if rec.RetransPkts != 0 || rec.Timeouts != 0 {
		t.Fatal("clean run must not retransmit")
	}
}

func TestHOPathRecoversWithoutTimeouts(t *testing.T) {
	s, rec := runOne(t, exp.SchemeDCP(false), 20<<20,
		func(c *fabric.SwitchConfig) { c.LossRate = 0.02 }, nil)
	if rec.Timeouts != 0 {
		t.Fatalf("HO-based recovery must avoid RTOs, saw %d", rec.Timeouts)
	}
	if rec.RetransPkts == 0 || rec.HOTriggers == 0 {
		t.Fatal("loss must be repaired via bounced HO packets")
	}
	c := s.Net.Counters()
	if c.TrimmedPkts == 0 {
		t.Fatal("forced loss must trim DCP data")
	}
	// Every retransmission was named by an HO notification.
	if rec.RetransPkts > rec.HOTriggers {
		t.Fatalf("retrans=%d > HO=%d: unsolicited retransmissions", rec.RetransPkts, rec.HOTriggers)
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 60 {
		t.Fatalf("goodput %.1f Gbps under 2%% loss", gp)
	}
}

func TestExactlyOnceAccounting(t *testing.T) {
	// The receiver must see every message exactly complete: eMSN reaches
	// the message count and no tracking state is left behind.
	sch := exp.SchemeDCP(false)
	s := exp.NewSim(7, sch, onePath(sch, func(c *fabric.SwitchConfig) { c.LossRate = 0.01 }))
	size := int64(12 << 20)
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
	if left := s.Run(10 * units.Second); left != 0 {
		t.Fatal("unfinished")
	}
	recvHost := s.Net.Transports[1].(*dcp.Host)
	eMSN, tracked, ok := recvHost.RecvState(1)
	if !ok {
		t.Fatal("no receiver state")
	}
	msgs := len(base.Messages(size, s.Env.MessageSize))
	if eMSN != uint32(msgs) {
		t.Fatalf("eMSN=%d, want %d", eMSN, msgs)
	}
	if tracked != 0 {
		t.Fatalf("%d message trackers leaked", tracked)
	}
	sendHost := s.Net.Transports[0].(*dcp.Host)
	una, rq, _ := sendHost.SenderState(1)
	if una != uint32(msgs) || rq != 0 {
		t.Fatalf("sender state: una=%d rq=%d", una, rq)
	}
}

func TestTimeoutFallbackWhenControlPlaneFails(t *testing.T) {
	// Kill the control plane entirely: every HO packet is dropped, so only
	// the coarse timeout (with sRetryNo epochs) can recover.
	sch := exp.SchemeDCP(false)
	s, rec := runOne(t, sch, 2<<20,
		func(c *fabric.SwitchConfig) {
			c.LossRate = 0.01
			c.CtrlQueueCap = 0 // lossless-CP assumption violated
		},
		func(e *base.Env) { e.DCP.Timeout = 500 * units.Microsecond })
	if rec.Timeouts == 0 {
		t.Fatal("with a dead control plane recovery must come from timeouts")
	}
	if rec.HOTriggers != 0 {
		t.Fatal("no HO should survive a zero-capacity control queue")
	}
	c := s.Net.Counters()
	if c.DroppedHO == 0 {
		t.Fatal("HO drops must be accounted")
	}
}

func TestOrderTolerantReceptionUnderSpray(t *testing.T) {
	// Per-packet spraying reorders heavily; DCP must neither retransmit
	// nor time out (R2).
	sch := exp.SchemeDCP(false)
	sch.LB = fabric.LBSpray
	s := exp.NewSim(7, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 8 // eight parallel paths
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 20 << 20}})
	if left := s.Run(5 * units.Second); left != 0 {
		t.Fatal("unfinished")
	}
	rec := s.Col.Flow(1)
	if rec.RetransPkts != 0 || rec.Timeouts != 0 {
		t.Fatalf("spraying must not cause retransmissions: retrans=%d timeouts=%d",
			rec.RetransPkts, rec.Timeouts)
	}
}

func TestReceiverBitmapAblationEquivalent(t *testing.T) {
	// §4.5 orthogonality: swapping counters for a receiver bitmap leaves
	// behaviour identical.
	_, recCounters := runOne(t, exp.SchemeDCP(false), 8<<20,
		func(c *fabric.SwitchConfig) { c.LossRate = 0.01 }, nil)
	_, recBitmap := runOne(t, exp.SchemeDCP(false), 8<<20,
		func(c *fabric.SwitchConfig) { c.LossRate = 0.01 },
		func(e *base.Env) { e.DCP.ReceiverBitmap = true })
	if recCounters.FCT() != recBitmap.FCT() {
		t.Fatalf("tracking mode changed behaviour: %v vs %v",
			recCounters.FCT(), recBitmap.FCT())
	}
	if recCounters.RetransPkts != recBitmap.RetransPkts {
		t.Fatal("retransmission counts must match")
	}
}

func TestPerHOFetchSlower(t *testing.T) {
	// Challenge #1: fetching per-HO across PCIe throttles loss recovery.
	_, batched := runOne(t, exp.SchemeDCP(false), 20<<20,
		func(c *fabric.SwitchConfig) { c.LossRate = 0.05 }, nil)
	_, perHO := runOne(t, exp.SchemeDCP(false), 20<<20,
		func(c *fabric.SwitchConfig) { c.LossRate = 0.05 },
		func(e *base.Env) { e.DCP.PerHOFetch = true })
	if perHO.FCT() <= batched.FCT() {
		t.Fatalf("per-HO fetch should be slower: %v vs %v", perHO.FCT(), batched.FCT())
	}
}

func TestMessageSegmentation(t *testing.T) {
	// A multi-message flow respects the outstanding-message cap and still
	// completes (eMSN advances in order).
	sch := exp.SchemeDCP(false)
	_, rec := runOne(t, sch, 64<<20, nil,
		func(e *base.Env) {
			e.MessageSize = 1 << 20
			e.DCP.MaxOutstandingMsgs = 2
		})
	if rec.DataPkts != 64<<20/1000+1 && rec.DataPkts < 64000 {
		t.Fatalf("data packets = %d", rec.DataPkts)
	}
}

func TestSmallMessages(t *testing.T) {
	// Single-packet and sub-MTU flows.
	for _, size := range []int64{1, 64, 999, 1000, 1001} {
		sch := exp.SchemeDCP(false)
		s := exp.NewSim(7, sch, onePath(sch, nil))
		s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
		if left := s.Run(units.Second); left != 0 {
			t.Fatalf("size %d unfinished", size)
		}
	}
}

func TestManyConcurrentFlows(t *testing.T) {
	// Both directions, several QPs per host, all complete.
	sch := exp.SchemeDCP(false)
	s := exp.NewSim(7, sch, onePath(sch, func(c *fabric.SwitchConfig) { c.LossRate = 0.005 }))
	var flows []*workload.Flow
	for i := uint64(0); i < 10; i++ {
		src, dst := 0, 1
		if i%2 == 1 {
			src, dst = 1, 0
		}
		flows = append(flows, &workload.Flow{
			ID: i + 1, Src: packet.NodeID(src), Dst: packet.NodeID(dst), Size: 2 << 20,
			Start: units.Time(i) * 10 * units.Microsecond,
		})
	}
	s.ScheduleFlows(flows)
	if left := s.Run(10 * units.Second); left != 0 {
		t.Fatalf("%d flows unfinished", left)
	}
	for _, f := range s.Col.Flows() {
		if f.Timeouts != 0 {
			t.Fatalf("flow %d timed out", f.ID)
		}
	}
}

// TestExactlyOncePropertyAcrossSeeds drives DCP through many random loss
// patterns and checks the §4.5 invariants every time: the flow completes,
// recovery never needs more retransmissions than loss notifications, and
// the receiver's tracking state fully drains.
func TestExactlyOncePropertyAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		sch := exp.SchemeDCP(false)
		s := exp.NewSim(seed, sch, onePath(sch, func(c *fabric.SwitchConfig) {
			c.LossRate = 0.01 + float64(seed)*0.004
		}))
		size := int64(3 << 20)
		s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
		if left := s.Run(30 * units.Second); left != 0 {
			t.Fatalf("seed %d: unfinished", seed)
		}
		rec := s.Col.Flow(1)
		if rec.RetransPkts > rec.HOTriggers+rec.Timeouts*4096 {
			t.Fatalf("seed %d: unsolicited retransmissions", seed)
		}
		recvHost := s.Net.Transports[1].(*dcp.Host)
		if _, tracked, _ := recvHost.RecvState(1); tracked != 0 {
			t.Fatalf("seed %d: %d trackers leaked", seed, tracked)
		}
	}
}

// TestDCQCNIntegration runs DCP+CC through a congested hop and checks that
// ECN marks translate into CNPs that actually reduce the sending rate
// (§4.3's decoupled CC contract).
func TestDCQCNIntegration(t *testing.T) {
	sch := exp.SchemeDCP(true)
	s := exp.NewSim(7, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 4
		cfg.CrossLinks = 1 // 4 senders share one 100G cross link
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	var flows []*workload.Flow
	for i := uint64(0); i < 4; i++ {
		flows = append(flows, &workload.Flow{
			ID: i + 1, Src: packet.NodeID(i), Dst: packet.NodeID(4 + i), Size: 8 << 20,
		})
	}
	s.ScheduleFlows(flows)
	if left := s.Run(10 * units.Second); left != 0 {
		t.Fatalf("%d unfinished", left)
	}
	c := s.Net.Counters()
	if c.ECNMarked == 0 {
		t.Fatal("congestion must mark ECN for DCQCN")
	}
	// DCQCN keeps the shared queue in the ECN band rather than the trim
	// band: trims should be rare relative to the 32k packets sent.
	if c.TrimmedPkts > 2000 {
		t.Fatalf("DCQCN failed to contain the queue: %d trims", c.TrimmedPkts)
	}
}

// TestBounceStateless verifies the receiver bounces HO packets for flows it
// has never seen data from (the bounce must not require receiver QP state).
func TestBounceStateless(t *testing.T) {
	sch := exp.SchemeDCP(false)
	s := exp.NewSim(7, sch, onePath(sch, func(c *fabric.SwitchConfig) {
		c.TrimThreshold = 1 // trim everything beyond the wire
	}))
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 64 << 10}})
	if left := s.Run(10 * units.Second); left != 0 {
		t.Fatal("unfinished — first-packet trims must still recover")
	}
}
