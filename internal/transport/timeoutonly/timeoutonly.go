// Package timeoutonly implements the timeout-based loss recovery scheme of
// Fig. 17 (the NVIDIA Spectrum SuperNIC approach, §6.3): the receiver
// tolerates out-of-order arrivals (Write-Only conversion) and returns only
// cumulative ACKs; the sender has no fast retransmission at all and
// recovers every loss through the retransmission timer.
package timeoutonly

import (
	"dcpsim/internal/cc"
	"dcpsim/internal/nic"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Host is a timeout-only endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds a timeout-only endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "timeout" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onAck(p)
		}
	case packet.KindCNP:
		if qp := h.send[p.FlowID]; qp != nil && !qp.done {
			qp.ctl.OnCongestion(h.Eng.Now())
		}
	}
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord
	ctl  cc.Controller

	totalPkts uint32
	lastPay   int

	una      uint32
	nextPSN  uint32
	firstTx  uint32
	inflight int

	timer *sim.Timer
	done  bool
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.ctl = env.CC(h.Eng, h.NIC.Rate(), env.BaseRTT)
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	qp.timer = sim.NewTimer(h.Eng, qp.onTimeout)
	qp.timer.Reset(env.RTOLow)
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done || base.SeqGEQ(qp.nextPSN, qp.totalPkts) {
		return nil, 0
	}
	size := qp.payloadAt(qp.nextPSN)
	ok, at := qp.ctl.CanSend(now, qp.inflight, size)
	if !ok {
		return nil, at
	}
	psn := qp.nextPSN
	qp.nextPSN++
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, size)
	p.Tag = packet.TagNonDCP
	p.MsgLen = qp.totalPkts
	p.SentAt = now
	if base.SeqLess(psn, qp.firstTx) {
		p.Retransmitted = true
		qp.rec.RetransPkts++
	} else {
		qp.firstTx = psn + 1
		qp.rec.DataPkts++
	}
	qp.inflight += size
	qp.ctl.OnSent(now, p.Size)
	return p, 0
}

func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	if base.SeqLess(qp.una, p.EPSN) {
		var acked int
		for psn := qp.una; base.SeqLess(psn, p.EPSN); psn++ {
			acked += qp.payloadAt(psn)
		}
		qp.una = p.EPSN
		if base.SeqLess(qp.nextPSN, qp.una) {
			qp.nextPSN = qp.una // a rewind raced this cumulative ACK
		}
		qp.inflight -= acked
		if qp.inflight < 0 {
			qp.inflight = 0
		}
		var rtt units.Time
		if p.SentAt > 0 {
			rtt = now - p.SentAt
		}
		qp.ctl.OnAck(now, acked, rtt)
		qp.timer.Reset(qp.h.Env.RTOLow)
		if base.SeqGEQ(qp.una, qp.totalPkts) {
			qp.done = true
			qp.timer.Stop()
			qp.ctl.Close()
			qp.h.Env.Collector.Done(qp.flow.ID, now)
			return
		}
	}
	qp.h.NIC.Kick()
}

func (qp *senderQP) onTimeout() {
	if qp.done {
		return
	}
	if base.SeqLess(qp.una, qp.nextPSN) {
		qp.rec.Timeouts++
		qp.nextPSN = qp.una
		qp.inflight = 0
		qp.h.NIC.Kick()
	}
	qp.timer.Reset(qp.h.Env.RTOLow)
}

type recvQP struct {
	ePSN     uint32
	received []uint64
	total    uint32
}

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{received: make([]uint64, (p.MsgLen+63)/64), total: p.MsgLen}
		h.recv[p.FlowID] = qp
	}
	w, b := p.PSN/64, p.PSN%64
	if qp.received[w]&(1<<b) == 0 {
		qp.received[w] |= 1 << b
		for base.SeqLess(qp.ePSN, qp.total) && qp.received[qp.ePSN/64]&(1<<(qp.ePSN%64)) != 0 {
			qp.ePSN++
		}
	}
	a := packet.AckPacket(p.FlowID, p.Dst, p.Src, qp.ePSN)
	a.Tag = packet.TagNonDCP
	a.SentAt = p.SentAt
	h.QueueCtrl(a)
}
