package timeoutonly_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

func run(t *testing.T, size int64, loss float64) *stats.FlowRecord {
	t.Helper()
	sch := exp.SchemeTimeout()
	s := exp.NewSim(13, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = exp.SwitchConfigFor(sch)
		cfg.Switch.LossRate = loss
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
	if left := s.Run(120 * units.Second); left != 0 {
		t.Fatalf("unfinished at %v", s.Eng.Now())
	}
	return s.Col.Flow(1)
}

func TestCleanTransfer(t *testing.T) {
	rec := run(t, 20<<20, 0)
	if rec.Timeouts != 0 || rec.RetransPkts != 0 {
		t.Fatal("clean run needs no recovery")
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 85 {
		t.Fatalf("goodput %.1f", gp)
	}
}

func TestAllRecoveryViaRTO(t *testing.T) {
	rec := run(t, 8<<20, 0.01)
	if rec.Timeouts == 0 {
		t.Fatal("timeout-only recovery must use RTOs")
	}
	if rec.RetransPkts == 0 {
		t.Fatal("must retransmit")
	}
}

func TestSharpDegradationWithLoss(t *testing.T) {
	// Fig. 17: the timeout-based scheme degrades sharply as loss grows —
	// each loss stalls the pipe for a full RTO.
	clean := run(t, 8<<20, 0)
	lossy := run(t, 8<<20, 0.01)
	gpClean := stats.Goodput(clean.Size, clean.FCT())
	gpLossy := stats.Goodput(lossy.Size, lossy.FCT())
	if gpLossy > gpClean/4 {
		t.Fatalf("expected sharp degradation: %.1f vs %.1f Gbps", gpLossy, gpClean)
	}
}

func TestOrderTolerantReceiver(t *testing.T) {
	// The receiver tracks OOO arrivals in its bitmap (Spectrum Write-Only
	// conversion): after a rewind, duplicates are absorbed and the flow
	// completes exactly.
	rec := run(t, 4<<20, 0.05)
	if !rec.Done {
		t.Fatal("must complete despite heavy loss")
	}
}
