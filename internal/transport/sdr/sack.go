// Package sdr implements an SDR-RDMA-style receiver-driven SACK-bitmap
// reliable transport (Software-Defined Reliability for planetary-scale
// RDMA): the receiver tracks arrivals in a sliding window bitmap and
// answers every data packet with a cumulative ACK plus selective-ACK
// ranges; the sender retransmits straight from the reported holes. Unlike
// IRN's full-message bitmaps, both endpoints bound their tracking state to
// a fixed window — cheap per-flow memory, but the window also caps the
// rate at WindowPkts×MTU per RTT, which is exactly the trade-off the WAN
// crossover experiment measures against DCP's counter-based design.
//
// This file holds the tracking window and the SACK wire codec. The wire
// PSN space is 24 bits (the BTH PSN width); the simulator addresses
// packets with uint32 flow offsets, so the codec masks values onto the
// wire space and Expand lifts them back against the sender's state —
// wrap-safe across the 2^24 boundary via the shared RFC 1982 helpers.
package sdr

import (
	"fmt"
	"math/bits"

	"dcpsim/internal/transport/base"
)

// The 24-bit wire PSN space.
const (
	psnSpace = 1 << 24
	psnMask  = psnSpace - 1
)

// seq24Less reports a < b in the 24-bit wire space, built on the shared
// RFC 1982 helpers by shifting into the top bits of the uint32 space.
func seq24Less(a, b uint32) bool { return base.SeqLess(a<<8, b<<8) }

// seq24Diff returns the forward distance from b to a in the 24-bit space.
func seq24Diff(a, b uint32) uint32 { return base.SeqDiff(a<<8, b<<8) >> 8 }

// Expand lifts a wire-space PSN into the full uint32 sequence space: the
// unique value congruent to v (mod 2^24) within [ref, ref+2^24). Senders
// call it with their cumulative-ack point as ref, so any wire value a live
// peer can legally report expands to the right flow offset even when the
// flow has crossed the 2^24 wrap.
func Expand(ref, v uint32) uint32 { return ref + seq24Diff(v, ref) }

// Range is one SACK block: the receiver holds every PSN in [Lo, Hi).
// On the wire the bounds are 24-bit values; inside the endpoints they are
// full-space PSNs.
type Range struct{ Lo, Hi uint32 }

// Window is a sliding PSN-indexed bitmap of fixed capacity. Bit addressing
// is psn & (size-1): any window of `size` consecutive PSNs maps bijectively
// onto the ring, so sliding the base never moves bits.
type Window struct {
	words []uint64
	size  uint32 // capacity in bits, always a power of two
	mask  uint32
	base  uint32 // lowest tracked PSN (the cumulative point)
	high  uint32 // one past the highest set PSN, never below base
	count int    // set bits in [base, high)
}

// NewWindow returns an empty window of at least `size` bits (rounded up to
// a power of two, floored at 64).
func NewWindow(size int) *Window {
	n := uint32(64)
	for int(n) < size {
		n <<= 1
	}
	return &Window{words: make([]uint64, n/64), size: n, mask: n - 1}
}

// Base returns the lowest tracked PSN (everything below is acknowledged).
func (w *Window) Base() uint32 { return w.base }

// Size returns the window capacity in bits.
func (w *Window) Size() uint32 { return w.size }

// Count returns the number of set bits above the base.
func (w *Window) Count() int { return w.count }

// StateBytes returns the bitmap's memory footprint, the per-flow state
// cost the stats layer accounts.
func (w *Window) StateBytes() int64 { return int64(len(w.words)) * 8 }

// Contains reports whether psn is inside the tracked window.
func (w *Window) Contains(psn uint32) bool {
	return base.SeqGEQ(psn, w.base) && base.SeqLess(psn, w.base+w.size)
}

// Get reports whether psn's bit is set (false outside the window).
func (w *Window) Get(psn uint32) bool {
	if !w.Contains(psn) {
		return false
	}
	i := psn & w.mask
	return w.words[i/64]&(1<<(i%64)) != 0
}

// Set marks psn received. It returns false when psn is outside the window
// or already set.
func (w *Window) Set(psn uint32) bool {
	if !w.Contains(psn) {
		return false
	}
	i := psn & w.mask
	m := uint64(1) << (i % 64)
	if w.words[i/64]&m != 0 {
		return false
	}
	w.words[i/64] |= m
	w.count++
	if base.SeqGEQ(psn, w.high) {
		w.high = psn + 1
	}
	return true
}

func (w *Window) clear(psn uint32) {
	i := psn & w.mask
	m := uint64(1) << (i % 64)
	if w.words[i/64]&m != 0 {
		w.words[i/64] &^= m
		w.count--
	}
}

// nextSet returns the first set PSN in [from, high), scanning word-wise.
func (w *Window) nextSet(from uint32) (uint32, bool) {
	psn := from
	if base.SeqLess(psn, w.base) {
		psn = w.base
	}
	for base.SeqLess(psn, w.high) {
		i := psn & w.mask
		word := w.words[i/64] >> (i % 64)
		if word != 0 {
			cand := psn + uint32(bits.TrailingZeros64(word))
			if base.SeqLess(cand, w.high) {
				return cand, true
			}
			return 0, false
		}
		psn += 64 - (i % 64)
	}
	return 0, false
}

// nextClear returns the first clear PSN in [from, high), or high when the
// span is fully set.
func (w *Window) nextClear(from uint32) uint32 {
	psn := from
	for base.SeqLess(psn, w.high) {
		i := psn & w.mask
		word := (^w.words[i/64]) >> (i % 64)
		if word != 0 {
			cand := psn + uint32(bits.TrailingZeros64(word))
			if base.SeqLess(cand, w.high) {
				return cand
			}
			return w.high
		}
		psn += 64 - (i % 64)
	}
	return w.high
}

// Advance slides the base over the contiguous run of set bits at the
// front, clearing them, and returns the new base — the receiver's
// cumulative-ack point after in-order delivery.
func (w *Window) Advance() uint32 {
	to := w.nextClear(w.base)
	for psn := w.base; base.SeqLess(psn, to); psn++ {
		w.clear(psn)
	}
	w.base = to
	if base.SeqLess(w.high, w.base) {
		w.high = w.base
	}
	return w.base
}

// SlideTo moves the base forward to newBase, clearing every bit below it —
// the sender's scoreboard following a cumulative ACK. A newBase at or
// behind the current base is a no-op.
func (w *Window) SlideTo(newBase uint32) {
	if !base.SeqLess(w.base, newBase) {
		return
	}
	for psn, ok := w.nextSet(w.base); ok && base.SeqLess(psn, newBase); psn, ok = w.nextSet(psn + 1) {
		w.clear(psn)
	}
	w.base = newBase
	if base.SeqLess(w.high, w.base) {
		w.high = w.base
	}
}

// Ranges extracts up to max contiguous set runs above the base — the
// selective-ACK blocks. Runs beyond max are dropped (later ACKs re-report
// them as the cumulative point advances), mirroring a bounded SACK option.
func (w *Window) Ranges(max int) []Range {
	if max <= 0 || w.count == 0 {
		return nil
	}
	var out []Range
	psn := w.base
	for len(out) < max {
		lo, ok := w.nextSet(psn)
		if !ok {
			break
		}
		hi := w.nextClear(lo)
		out = append(out, Range{Lo: lo, Hi: hi})
		psn = hi + 1
	}
	return out
}

// Wire sizes of the SACK extension: a 3-byte cumulative PSN, a 1-byte
// range count, then two 24-bit PSNs per range.
const (
	sackFixedBytes = 4
	sackRangeBytes = 6
	maxWireRanges  = 255
)

func put24(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>16), byte(v>>8), byte(v))
}

func get24(buf []byte) uint32 {
	return uint32(buf[0])<<16 | uint32(buf[1])<<8 | uint32(buf[2])
}

// EncodeSack renders the cumulative PSN and SACK ranges into the wire
// blob. Values are masked onto the 24-bit space; ranges must be sorted,
// disjoint, non-empty, strictly above epsn, and within half the wire space
// of it (guaranteed by any Window smaller than 2^23 bits). At most
// maxWireRanges ranges are encoded.
func EncodeSack(epsn uint32, ranges []Range) []byte {
	if len(ranges) > maxWireRanges {
		ranges = ranges[:maxWireRanges]
	}
	buf := make([]byte, 0, sackFixedBytes+len(ranges)*sackRangeBytes)
	buf = put24(buf, epsn&psnMask)
	buf = append(buf, byte(len(ranges)))
	for _, r := range ranges {
		buf = put24(buf, r.Lo&psnMask)
		buf = put24(buf, r.Hi&psnMask)
	}
	return buf
}

// DecodeSack parses a SACK blob, validating shape and order. Returned PSNs
// are wire-space (24-bit); lift them with Expand against the sender's
// cumulative point.
func DecodeSack(buf []byte) (epsn uint32, ranges []Range, err error) {
	if len(buf) < sackFixedBytes {
		return 0, nil, fmt.Errorf("sdr: sack blob too short (%d bytes)", len(buf))
	}
	epsn = get24(buf)
	n := int(buf[3])
	if len(buf) != sackFixedBytes+n*sackRangeBytes {
		return 0, nil, fmt.Errorf("sdr: sack blob length %d does not fit %d ranges", len(buf), n)
	}
	prev := epsn
	for i := 0; i < n; i++ {
		off := sackFixedBytes + i*sackRangeBytes
		lo := get24(buf[off:])
		hi := get24(buf[off+3:])
		if !seq24Less(prev, lo) || !seq24Less(lo, hi) {
			return 0, nil, fmt.Errorf("sdr: sack ranges must be sorted, disjoint and above the cumulative PSN")
		}
		prev = hi
		ranges = append(ranges, Range{Lo: lo, Hi: hi})
	}
	return epsn, ranges, nil
}
