// This file holds the SDR endpoint state machines. The sender is
// BDP/window-bounded and retransmits straight from SACK holes (each hole
// at most once per recovery episode, IRN-style, with the RTOlow/RTOhigh
// timeout pair as the last resort); the receiver is the driving side: it
// answers every data packet with a cumulative ACK carrying the encoded
// SACK state of its sliding window bitmap.
package sdr

import (
	"dcpsim/internal/cc"
	"dcpsim/internal/nic"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// rtoLowThreshold mirrors IRN's N: with fewer than N packets outstanding
// there may be no later packet to trigger a SACK, so the short timeout
// applies.
const rtoLowThreshold = 3

// senderFixedState approximates the non-bitmap per-QP sender footprint
// (sequence cursors, timer, episode state), for the state-bytes account.
const senderFixedState = 64

// recvFixedState approximates the non-bitmap per-QP receiver footprint.
const recvFixedState = 32

// Host is an SDR endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds an SDR endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "sdr" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	if h.Env.Trace != nil {
		h.Env.Trace.Flow(h.Eng.Now(), obs.EvFlowStart, f.Src, f.ID, f.Size)
	}
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onAck(p)
		}
	case packet.KindCNP:
		if qp := h.send[p.FlowID]; qp != nil && !qp.done {
			qp.ctl.OnCongestion(h.Eng.Now())
		}
	}
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord
	ctl  cc.Controller

	totalPkts uint32
	lastPay   int

	una     uint32
	nextPSN uint32
	// sacked is the SACK scoreboard: a window bitmap whose base follows
	// una. highSack is one past the highest SACKed PSN (0 = none).
	sacked   *Window
	highSack uint32

	// Loss recovery episode: entered on the first SACK that exposes a hole
	// (or on timeout), left when una passes recoverPSN; each hole is
	// retransmitted at most once per episode.
	inRecovery    bool
	timeoutMode   bool
	recoverPSN    uint32
	retransmitted *Window
	scan          uint32

	timer     *sim.Timer
	sackedOut int // SACKed PSNs at or above una (window credit already returned)
	done      bool
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.ctl = env.CC(h.Eng, h.NIC.Rate(), env.BaseRTT)
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	qp.sacked = NewWindow(env.SDR.WindowPkts)
	qp.retransmitted = NewWindow(env.SDR.WindowPkts)
	qp.rec.NoteSendState(qp.sacked.StateBytes() + qp.retransmitted.StateBytes() + senderFixedState)
	qp.timer = sim.NewTimer(h.Eng, qp.onTimeout)
	qp.resetTimer()
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

// inflightBytes is the BDP window charge: the span of outstanding packets,
// minus the ones already SACKed out of it. Retransmissions never widen it.
func (qp *senderQP) inflightBytes() int {
	n := int(base.SeqDiff(qp.nextPSN, qp.una)) - qp.sackedOut
	if n < 0 {
		n = 0
	}
	return n * qp.h.Env.MTU
}

func (qp *senderQP) resetTimer() {
	if base.SeqDiff(qp.nextPSN, qp.una) < rtoLowThreshold {
		qp.timer.Reset(qp.h.Env.RTOLow)
	} else {
		qp.timer.Reset(qp.h.Env.RTOHigh)
	}
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP: retransmissions (while in a recovery episode)
// take priority over new data; new data additionally respects the sliding
// tracking window — the sender never runs more than WindowPkts past una,
// so the receiver's fixed bitmap always covers everything in flight.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done {
		return nil, 0
	}
	if qp.inRecovery {
		if psn, ok := qp.nextLost(); ok {
			size := qp.payloadAt(psn)
			// Retransmissions stay inside the already-charged window span:
			// charging them again deadlocks after a whole-window loss.
			ok2, at := qp.ctl.CanSend(now, 0, size)
			if !ok2 {
				return nil, at
			}
			qp.retransmitted.Set(psn)
			qp.scan = psn + 1
			qp.rec.RetransPkts++
			if env := qp.h.Env; env.Trace != nil {
				env.Trace.Emit(obs.Event{At: now, Type: obs.EvRetransmit, Node: qp.flow.Src, Port: -1,
					Flow: qp.flow.ID, PSN: psn, Size: int32(size)})
			}
			qp.ctl.OnSent(now, size+packet.DataHeaderSize)
			return qp.emit(now, psn, size, true), 0
		}
	}
	if base.SeqLess(qp.nextPSN, qp.totalPkts) &&
		base.SeqLess(qp.nextPSN, qp.una+qp.sacked.Size()) {
		size := qp.payloadAt(qp.nextPSN)
		ok, at := qp.ctl.CanSend(now, qp.inflightBytes(), size)
		if !ok {
			return nil, at
		}
		psn := qp.nextPSN
		qp.nextPSN++
		qp.rec.DataPkts++
		if env := qp.h.Env; env.Trace != nil {
			env.Trace.Emit(obs.Event{At: now, Type: obs.EvSend, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: psn, Size: int32(size)})
		}
		qp.ctl.OnSent(now, size+packet.DataHeaderSize)
		return qp.emit(now, psn, size, false), 0
	}
	return nil, 0
}

func (qp *senderQP) emit(now units.Time, psn uint32, size int, retrans bool) *packet.Packet {
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, size)
	p.Tag = packet.TagNonDCP
	p.MsgLen = qp.totalPkts
	p.SentAt = now
	p.Retransmitted = retrans
	return p
}

// nextLost scans for the next retransmission candidate: unSACKed, not yet
// retransmitted this episode, and (unless the episode began with a
// timeout) below the highest SACKed PSN — a hole the receiver has proven.
func (qp *senderQP) nextLost() (uint32, bool) {
	limit := qp.highSack
	if qp.timeoutMode {
		limit = qp.nextPSN
	}
	psn := qp.scan
	if base.SeqLess(psn, qp.una) {
		psn = qp.una
	}
	for ; base.SeqLess(psn, limit) && base.SeqLess(psn, qp.nextPSN); psn++ {
		if !qp.sacked.Get(psn) && !qp.retransmitted.Get(psn) {
			return psn, true
		}
	}
	return 0, false
}

// onAck consumes one receiver report: the cumulative point and the SACK
// ranges both arrive in the 24-bit wire blob and are expanded against una.
func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	wireEPSN, wireRanges, err := DecodeSack(p.SackBlob)
	if err != nil {
		// A malformed blob cannot happen on the simulated wire; drop it
		// rather than guessing.
		return
	}
	now := qp.h.Eng.Now()
	progressed := false
	epsn := Expand(qp.una, wireEPSN)
	if base.SeqLess(qp.una, epsn) && base.SeqGEQ(qp.totalPkts, epsn) {
		var acked int
		for psn := qp.una; base.SeqLess(psn, epsn); psn++ {
			if qp.sacked.Get(psn) {
				qp.sackedOut-- // already credited when SACKed
			} else {
				acked += qp.payloadAt(psn)
			}
		}
		qp.sacked.SlideTo(epsn)
		qp.retransmitted.SlideTo(epsn)
		qp.una = epsn
		if qp.sackedOut < 0 {
			qp.sackedOut = 0
		}
		var rtt units.Time
		if p.SentAt > 0 {
			rtt = now - p.SentAt
		}
		qp.ctl.OnAck(now, acked, rtt)
		progressed = true
	}
	sawHole := false
	for _, wr := range wireRanges {
		lo, hi := Expand(qp.una, wr.Lo), Expand(qp.una, wr.Hi)
		for psn := lo; base.SeqLess(psn, hi) && base.SeqLess(psn, qp.nextPSN); psn++ {
			if base.SeqGEQ(psn, qp.una) && qp.sacked.Set(psn) {
				qp.sackedOut++
				qp.ctl.OnAck(now, qp.payloadAt(psn), 0)
			}
			if base.SeqLess(qp.highSack, psn+1) {
				qp.highSack = psn + 1
			}
		}
		sawHole = true
	}
	// A SACK range proves at least one hole below it: enter recovery.
	if sawHole && !qp.inRecovery {
		qp.enterRecovery(false)
	}
	if progressed {
		qp.resetTimer()
		if base.SeqGEQ(qp.una, qp.totalPkts) {
			qp.complete(now)
			return
		}
		if qp.inRecovery && base.SeqLess(qp.recoverPSN, qp.una) {
			qp.inRecovery = false
			qp.timeoutMode = false
		}
	}
	qp.h.NIC.Kick()
}

func (qp *senderQP) enterRecovery(timeout bool) {
	qp.inRecovery = true
	qp.timeoutMode = timeout
	if qp.nextPSN > 0 {
		qp.recoverPSN = qp.nextPSN - 1
	}
	// Reset the per-episode retransmit marks by re-basing a fresh window.
	qp.retransmitted = NewWindow(int(qp.sacked.Size()))
	qp.retransmitted.SlideTo(qp.una)
	qp.scan = qp.una
}

func (qp *senderQP) complete(now units.Time) {
	qp.done = true
	qp.timer.Stop()
	qp.ctl.Close()
	if env := qp.h.Env; env.Trace != nil {
		env.Trace.Flow(now, obs.EvFlowDone, qp.flow.Src, qp.flow.ID, qp.flow.Size)
	}
	qp.h.Env.Collector.Done(qp.flow.ID, now)
}

func (qp *senderQP) onTimeout() {
	if qp.done {
		return
	}
	if base.SeqLess(qp.una, qp.nextPSN) {
		qp.rec.Timeouts++
		if env := qp.h.Env; env.Trace != nil {
			env.Trace.Emit(obs.Event{At: qp.h.Eng.Now(), Type: obs.EvTimeout, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: qp.una})
		}
		qp.enterRecovery(true)
		qp.h.NIC.Kick()
	}
	qp.resetTimer()
}

type recvQP struct {
	win     *Window
	lastCNP units.Time
	cnpSet  bool
}

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{win: NewWindow(h.Env.SDR.WindowPkts)}
		h.recv[p.FlowID] = qp
		if rec := h.Env.Collector.Flow(p.FlowID); rec != nil {
			rec.NoteRecvState(qp.win.StateBytes() + recvFixedState)
		}
	}
	now := h.Eng.Now()
	if p.ECN {
		h.maybeCNP(qp, p, now)
	}
	// Duplicates and (never under a compliant sender) beyond-window
	// arrivals change no state; the ACK below still refreshes the sender.
	if qp.win.Set(p.PSN) && p.PSN == qp.win.Base() {
		qp.win.Advance()
	}
	h.ack(p, qp)
}

// ack is the receiver-driven report: every data arrival is answered with
// the cumulative point plus the current SACK ranges, encoded in the wire
// blob (the packet grows by the blob size beyond the base ACK header).
func (h *Host) ack(data *packet.Packet, qp *recvQP) {
	epsn := qp.win.Base()
	ranges := qp.win.Ranges(h.Env.SDR.MaxRanges)
	a := packet.AckPacket(data.FlowID, data.Dst, data.Src, epsn)
	a.Tag = packet.TagNonDCP
	if len(ranges) > 0 {
		a.Ack = packet.AckSelective
	}
	a.SackBlob = EncodeSack(epsn, ranges)
	a.Size += len(a.SackBlob)
	a.SentAt = data.SentAt
	h.QueueCtrl(a)
}

func (h *Host) maybeCNP(qp *recvQP, data *packet.Packet, now units.Time) {
	if qp.cnpSet && now-qp.lastCNP < h.Env.CNPInterval {
		return
	}
	qp.cnpSet = true
	qp.lastCNP = now
	h.QueueCtrl(&packet.Packet{
		Kind: packet.KindCNP, Tag: packet.TagNonDCP, FlowID: data.FlowID,
		Src: data.Dst, Dst: data.Src, Size: packet.CNPSize,
	})
}
