package sdr

import (
	"bytes"
	"math/rand"
	"testing"
)

// ---------- 24-bit sequence space ----------

// TestExpandAcrossWrap pins Expand's contract — the unique full-space value
// congruent to the wire PSN within [ref, ref+2^24) — at references sitting
// right on the 2^24 boundary, deep inside the space, and at the uint32 wrap.
func TestExpandAcrossWrap(t *testing.T) {
	refs := []uint32{0, 1, psnSpace - 1, psnSpace, psnSpace + 1,
		7 * psnSpace, 0xFFFFFFFF - 3, 0xFFFFFFFF}
	for _, ref := range refs {
		for delta := uint32(0); delta < 1<<12; delta += 37 {
			want := ref + delta // may wrap uint32: still the right answer
			wire := want & psnMask
			if got := Expand(ref, wire); got != want {
				t.Fatalf("Expand(%#x, %#x) = %#x, want %#x", ref, wire, got, want)
			}
		}
	}
}

// TestSeq24Order pins the wrap-safe comparison across the 2^24 boundary.
func TestSeq24Order(t *testing.T) {
	cases := []struct {
		a, b uint32
		less bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{psnMask, 0, true},        // wrap: 2^24-1 < 0
		{0, psnMask, false},       // and not the reverse
		{psnMask - 10, 10, true},  // across the boundary
		{10, psnMask - 10, false}, // half-space apart the other way
		{0, 1 << 22, true},        // quarter space
		{0, (1 << 23) - 1, true},  // just under half space
		{(1 << 23) - 1, 0, false}, // mirrored
	}
	for _, c := range cases {
		if got := seq24Less(c.a&psnMask, c.b&psnMask); got != c.less {
			t.Errorf("seq24Less(%#x, %#x) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

// ---------- codec round-trip ----------

// randomSack builds a valid (epsn, ranges) pair: sorted, disjoint,
// non-contiguous ranges strictly above epsn, all within a window-sized span.
func randomSack(rng *rand.Rand) (uint32, []Range) {
	epsn := rng.Uint32()
	n := rng.Intn(9)
	ranges := make([]Range, 0, n)
	cursor := epsn
	for i := 0; i < n; i++ {
		cursor += 1 + uint32(rng.Intn(64)) // gap ≥ 1 keeps ranges above prev
		lo := cursor
		cursor += 1 + uint32(rng.Intn(64)) // width ≥ 1
		ranges = append(ranges, Range{Lo: lo, Hi: cursor})
	}
	return epsn, ranges
}

// TestEncodeDecodeRoundTrip: any valid SACK state encodes to a blob that
// decodes back to the same state once lifted with Expand against a
// reference at or below the cumulative point (the sender's una).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		epsn, ranges := randomSack(rng)
		buf := EncodeSack(epsn, ranges)
		wireE, wireR, err := DecodeSack(buf)
		if err != nil {
			t.Fatalf("case %d: decode failed: %v (epsn=%#x ranges=%v)", i, err, epsn, ranges)
		}
		ref := epsn - uint32(rng.Intn(1<<20)) // una somewhere at/below epsn
		if got := Expand(ref, wireE); got != epsn {
			t.Fatalf("case %d: epsn %#x round-tripped to %#x (ref %#x)", i, epsn, got, ref)
		}
		if len(wireR) != len(ranges) {
			t.Fatalf("case %d: %d ranges round-tripped to %d", i, len(ranges), len(wireR))
		}
		for j, r := range ranges {
			lo, hi := Expand(epsn, wireR[j].Lo), Expand(epsn, wireR[j].Hi)
			if lo != r.Lo || hi != r.Hi {
				t.Fatalf("case %d range %d: [%#x,%#x) round-tripped to [%#x,%#x)",
					i, j, r.Lo, r.Hi, lo, hi)
			}
		}
	}
}

// FuzzDecodeSack: arbitrary bytes must never panic, and any blob that
// decodes successfully must re-encode byte-identically (the codec has one
// canonical form).
func FuzzDecodeSack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeSack(0, nil))
	f.Add(EncodeSack(psnMask, []Range{{Lo: psnSpace + 2, Hi: psnSpace + 5}}))
	f.Add(EncodeSack(100, []Range{{Lo: 102, Hi: 104}, {Lo: 110, Hi: 111}}))
	f.Add([]byte{0, 0, 5, 1, 0, 0, 3, 0, 0, 9}) // range below epsn: invalid
	f.Fuzz(func(t *testing.T, buf []byte) {
		epsn, ranges, err := DecodeSack(buf)
		if err != nil {
			return
		}
		if re := EncodeSack(epsn, ranges); !bytes.Equal(re, buf) {
			t.Fatalf("decode(%x) re-encoded to %x", buf, re)
		}
	})
}

// ---------- window vs naive reference model ----------

// naiveWindow is the obviously-correct model: an explicit PSN set plus a
// base cursor, no rings, no words.
type naiveWindow struct {
	set  map[uint32]bool
	base uint32
	size uint32
}

func (n *naiveWindow) contains(psn uint32) bool {
	d := psn - n.base
	return d < n.size
}

func (n *naiveWindow) setBit(psn uint32) bool {
	if !n.contains(psn) || n.set[psn] {
		return false
	}
	n.set[psn] = true
	return true
}

func (n *naiveWindow) advance() uint32 {
	for n.set[n.base] {
		delete(n.set, n.base)
		n.base++
	}
	return n.base
}

func (n *naiveWindow) slideTo(newBase uint32) {
	if newBase-n.base >= 1<<31 { // behind: no-op, mirroring Window
		return
	}
	for psn := n.base; psn != newBase; psn++ {
		delete(n.set, psn)
	}
	n.base = newBase
}

func (n *naiveWindow) ranges(max int) []Range {
	var out []Range
	psn := n.base
	for len(out) < max {
		// Find the next set PSN within the window span.
		for n.contains(psn) && !n.set[psn] {
			psn++
		}
		if !n.contains(psn) {
			break
		}
		lo := psn
		for n.contains(psn) && n.set[psn] {
			psn++
		}
		out = append(out, Range{Lo: lo, Hi: psn})
	}
	return out
}

func rangesEqual(a, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWindowVsNaive drives the ring-indexed Window and the naive model
// through the same random op sequence — Set, Advance, SlideTo, Ranges —
// from several starting bases, including ones that cross the 2^24 wire
// boundary and the uint32 wrap itself.
func TestWindowVsNaive(t *testing.T) {
	starts := []uint32{0, 1000, psnSpace - 300, 0xFFFFFFFF - 500}
	for _, start := range starts {
		rng := rand.New(rand.NewSource(int64(start) + 7))
		const size = 256
		w := NewWindow(size)
		// Reach the start in two hops: a single slide of >= 2^31 would read
		// as "behind the base" to the wrap-safe comparison and no-op.
		w.SlideTo(start / 2)
		w.SlideTo(start)
		n := &naiveWindow{set: map[uint32]bool{}, base: start, size: w.Size()}
		for op := 0; op < 20000; op++ {
			switch rng.Intn(10) {
			case 0: // cumulative advance over the in-order prefix
				if got, want := w.Advance(), n.advance(); got != want {
					t.Fatalf("start %#x op %d: Advance = %#x, naive %#x", start, op, got, want)
				}
			case 1: // sender-style cumulative slide
				nb := n.base + uint32(rng.Intn(size/2))
				w.SlideTo(nb)
				n.slideTo(nb)
			default: // arrival, sometimes out of window / duplicate
				psn := n.base + uint32(rng.Intn(size+size/4))
				if got, want := w.Set(psn), n.setBit(psn); got != want {
					t.Fatalf("start %#x op %d: Set(%#x) = %v, naive %v", start, op, psn, got, want)
				}
			}
			max := 1 + rng.Intn(9)
			if got, want := w.Ranges(max), n.ranges(max); !rangesEqual(got, want) {
				t.Fatalf("start %#x op %d: Ranges(%d) = %v, naive %v", start, op, max, got, want)
			}
			if w.Base() != n.base {
				t.Fatalf("start %#x op %d: base %#x, naive %#x", start, op, w.Base(), n.base)
			}
			if w.Count() != len(n.set) {
				t.Fatalf("start %#x op %d: count %d, naive %d", start, op, w.Count(), len(n.set))
			}
		}
	}
}

// TestWindowCodecAcrossPSNWrap runs the full receiver→wire→sender path with
// the flow offset crossing the 2^24 boundary: the receiver's window state
// encodes, and a sender whose una trails by up to a window span expands the
// blob back to the exact full-space PSNs.
func TestWindowCodecAcrossPSNWrap(t *testing.T) {
	w := NewWindow(128)
	base := uint32(psnSpace - 40) // receiver cumulative point below the wrap
	w.SlideTo(base)
	for _, off := range []uint32{0, 1, 2, 50, 51, 52, 53, 90} { // holes at 3..49, 54..89
		w.Set(base + off)
	}
	w.Advance() // base moves to psnSpace-37
	blob := EncodeSack(w.Base()&psnMask, w.Ranges(8))
	wireE, wireR, err := DecodeSack(blob)
	if err != nil {
		t.Fatal(err)
	}
	una := base - 10 // sender trails the receiver
	if got, want := Expand(una, wireE), base+3; got != want {
		t.Fatalf("epsn expanded to %#x, want %#x", got, want)
	}
	want := []Range{{Lo: base + 50, Hi: base + 54}, {Lo: base + 90, Hi: base + 91}}
	if len(wireR) != len(want) {
		t.Fatalf("got %d ranges, want %d", len(wireR), len(want))
	}
	for i, r := range want {
		lo, hi := Expand(una, wireR[i].Lo), Expand(una, wireR[i].Hi)
		if lo != r.Lo || hi != r.Hi {
			t.Fatalf("range %d: [%#x,%#x), want [%#x,%#x)", i, lo, hi, r.Lo, r.Hi)
		}
	}
}
