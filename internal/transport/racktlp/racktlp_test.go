package racktlp_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/fabric"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

func run(t *testing.T, sch exp.Scheme, size int64, loss float64, seed int64) *stats.FlowRecord {
	t.Helper()
	s := exp.NewSim(seed, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = exp.SwitchConfigFor(sch)
		cfg.Switch.LossRate = loss
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
	if left := s.Run(120 * units.Second); left != 0 {
		t.Fatalf("unfinished at %v", s.Eng.Now())
	}
	return s.Col.Flow(1)
}

func TestCleanTransfer(t *testing.T) {
	rec := run(t, exp.SchemeRACK(), 20<<20, 0, 11)
	if rec.RetransPkts != 0 {
		t.Fatal("no loss: no retransmissions")
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 85 {
		t.Fatalf("goodput %.1f", gp)
	}
}

func TestRecoversFromLoss(t *testing.T) {
	rec := run(t, exp.SchemeRACK(), 20<<20, 0.01, 11)
	if rec.RetransPkts == 0 {
		t.Fatal("expected RACK retransmissions")
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 30 {
		t.Fatalf("goodput %.1f under 1%% loss", gp)
	}
}

func TestBeatsTimeoutOnlyUnderLoss(t *testing.T) {
	// Fig. 17: RACK-TLP recovers faster than the timeout-only scheme (it
	// retransmits after ~1 RTT instead of an RTO) but slower than DCP.
	rack := run(t, exp.SchemeRACK(), 8<<20, 0.02, 11)
	tmo := run(t, exp.SchemeTimeout(), 8<<20, 0.02, 11)
	dcp := run(t, exp.SchemeDCP(false), 8<<20, 0.02, 11)
	if rack.FCT() >= tmo.FCT() {
		t.Fatalf("RACK (%v) should beat timeout-only (%v)", rack.FCT(), tmo.FCT())
	}
	if dcp.FCT() >= rack.FCT() {
		t.Fatalf("DCP (%v) should beat RACK (%v)", dcp.FCT(), rack.FCT())
	}
}

func TestTailLossProbe(t *testing.T) {
	// Drop-heavy tiny flows: the TLP mechanism (not the full RTO) should
	// usually recover tail losses; assert eventual completion for many
	// seeds without excessive timeouts.
	var totalTimeouts int64
	for seed := int64(0); seed < 8; seed++ {
		rec := run(t, exp.SchemeRACK(), 5000, 0.2, seed)
		totalTimeouts += rec.Timeouts
	}
	if totalTimeouts > 8 {
		t.Fatalf("TLP should absorb most tail losses; %d RTOs across seeds", totalTimeouts)
	}
}

func TestToleratesReordering(t *testing.T) {
	// RACK's reordering window avoids spurious retransmissions for mild
	// reordering (its design goal vs plain dupack counting).
	sch := exp.SchemeRACK()
	sch.LB = fabric.LBSpray
	s := exp.NewSim(11, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 2
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 8 << 20}})
	if s.Run(30*units.Second) != 0 {
		t.Fatal("unfinished")
	}
	rec := s.Col.Flow(1)
	// Equal-rate paths reorder only slightly; the reordering window must
	// suppress nearly all spurious retransmissions.
	if rec.RetransPkts > rec.DataPkts/50 {
		t.Fatalf("too many spurious retransmissions: %d of %d", rec.RetransPkts, rec.DataPkts)
	}
}
