// Package racktlp implements the RACK-TLP loss detection baseline (RFC
// 8985), compared in Fig. 17: per-packet send timestamps, a reordering
// window of min-RTT/4 before declaring loss, a tail loss probe after two
// SRTTs of ACK silence, and an RTO fallback. It tolerates reordering but
// delays every retransmission by about one RTT and needs per-packet
// timestamp state — the trade-off §6.3 discusses.
package racktlp

import (
	"dcpsim/internal/cc"
	"dcpsim/internal/nic"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Host is a RACK-TLP endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds a RACK-TLP endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "racktlp" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onAck(p)
		}
	case packet.KindCNP:
		if qp := h.send[p.FlowID]; qp != nil && !qp.done {
			qp.ctl.OnCongestion(h.Eng.Now())
		}
	}
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

// pktState is the per-packet state RACK requires — the memory overhead the
// paper contrasts with DCP's constant per-message counters.
type pktState struct {
	sentAt  units.Time
	sacked  bool
	queued  bool // queued for retransmission
	retrans bool
}

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord
	ctl  cc.Controller

	totalPkts uint32
	lastPay   int

	una     uint32
	nextPSN uint32
	pkts    []pktState

	srtt   units.Time
	minRTT units.Time

	// rackTime is the send time of the most recently delivered packet;
	// packets sent reoWnd earlier and still unSACKed are lost.
	rackTime units.Time

	retxQ     []uint32
	retxHead  int
	inflight  int
	lastAckAt units.Time

	rackTimer *sim.Timer // reorder-window expiry check
	probe     *sim.Timer // TLP
	rto       *sim.Timer
	done      bool
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.ctl = env.CC(h.Eng, h.NIC.Rate(), env.BaseRTT)
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	qp.pkts = make([]pktState, qp.totalPkts)
	qp.srtt = env.BaseRTT
	qp.minRTT = env.BaseRTT
	qp.rackTimer = sim.NewTimer(h.Eng, qp.rackCheck)
	qp.probe = sim.NewTimer(h.Eng, qp.onProbe)
	qp.rto = sim.NewTimer(h.Eng, qp.onRTO)
	qp.probe.Reset(2 * qp.srtt)
	qp.rto.Reset(env.RTOHigh)
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

func (qp *senderQP) reoWnd() units.Time { return qp.minRTT / 4 }

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done {
		return nil, 0
	}
	// Queued (RACK-marked lost) retransmissions first.
	for qp.retxHead < len(qp.retxQ) {
		psn := qp.retxQ[qp.retxHead]
		st := &qp.pkts[psn]
		if st.sacked || base.SeqLess(psn, qp.una) {
			qp.retxHead++
			continue
		}
		size := qp.payloadAt(psn)
		ok, at := qp.ctl.CanSend(now, qp.inflight, size)
		if !ok {
			return nil, at
		}
		qp.retxHead++
		st.queued = false
		st.retrans = true
		st.sentAt = now
		qp.rec.RetransPkts++
		qp.inflight += size
		qp.ctl.OnSent(now, size)
		return qp.emit(now, psn, size, true), 0
	}
	if qp.retxHead > 0 && qp.retxHead == len(qp.retxQ) {
		qp.retxQ = qp.retxQ[:0]
		qp.retxHead = 0
	}
	if base.SeqLess(qp.nextPSN, qp.totalPkts) {
		size := qp.payloadAt(qp.nextPSN)
		ok, at := qp.ctl.CanSend(now, qp.inflight, size)
		if !ok {
			return nil, at
		}
		psn := qp.nextPSN
		qp.nextPSN++
		qp.pkts[psn].sentAt = now
		qp.rec.DataPkts++
		qp.inflight += size
		qp.ctl.OnSent(now, size)
		return qp.emit(now, psn, size, false), 0
	}
	return nil, 0
}

func (qp *senderQP) emit(now units.Time, psn uint32, size int, retrans bool) *packet.Packet {
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, size)
	p.Tag = packet.TagNonDCP
	p.MsgLen = qp.totalPkts
	p.SentAt = now
	p.Retransmitted = retrans
	return p
}

func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	qp.lastAckAt = now
	if p.SentAt > 0 {
		rtt := now - p.SentAt
		if rtt < qp.minRTT {
			qp.minRTT = rtt
		}
		qp.srtt = (7*qp.srtt + rtt) / 8
	}
	newly := func(psn uint32) {
		st := &qp.pkts[psn]
		if !st.sacked {
			st.sacked = true
			size := qp.payloadAt(psn)
			qp.inflight -= size
			if qp.inflight < 0 {
				qp.inflight = 0
			}
			qp.ctl.OnAck(now, size, 0)
			if st.sentAt > qp.rackTime {
				qp.rackTime = st.sentAt
			}
		}
	}
	if base.SeqLess(qp.una, p.EPSN) {
		for psn := qp.una; base.SeqLess(psn, p.EPSN); psn++ {
			newly(psn)
		}
		qp.una = p.EPSN
		qp.rto.Reset(qp.h.Env.RTOHigh)
		if base.SeqGEQ(qp.una, qp.totalPkts) {
			qp.complete(now)
			return
		}
	}
	if p.Ack == packet.AckSelective && base.SeqLess(p.SackPSN, qp.totalPkts) {
		newly(p.SackPSN)
	}
	qp.probe.Reset(2 * qp.srtt)
	qp.rackDetect(now)
	qp.h.NIC.Kick()
}

// markLost queues psn for retransmission and releases its window share: a
// packet declared lost is no longer in flight (without this, every real
// loss would permanently leak window credit and stall the pipe).
func (qp *senderQP) markLost(psn uint32) {
	st := &qp.pkts[psn]
	if st.sacked || st.queued {
		return
	}
	st.queued = true
	qp.retxQ = append(qp.retxQ, psn)
	qp.inflight -= qp.payloadAt(psn)
	if qp.inflight < 0 {
		qp.inflight = 0
	}
}

// rackDetect marks as lost every unSACKed packet sent more than reoWnd
// before the most recently delivered packet, and arms the reorder timer for
// packets still inside the window.
func (qp *senderQP) rackDetect(now units.Time) {
	reo := qp.reoWnd()
	var nextDeadline units.Time
	limit := qp.nextPSN
	for psn := qp.una; base.SeqLess(psn, limit); psn++ {
		st := &qp.pkts[psn]
		if st.sacked || st.queued || st.sentAt == 0 {
			continue
		}
		if qp.rackTime > st.sentAt+reo {
			qp.markLost(psn)
			continue
		}
		// Not yet declarable: it may become declarable purely by time.
		dl := st.sentAt + qp.srtt + reo
		if dl > now && (nextDeadline == 0 || dl < nextDeadline) {
			nextDeadline = dl
		} else if dl <= now && qp.rackTime >= st.sentAt {
			qp.markLost(psn)
		}
	}
	if nextDeadline > 0 {
		qp.rackTimer.Reset(nextDeadline - now)
	}
}

func (qp *senderQP) rackCheck() {
	if qp.done {
		return
	}
	qp.rackDetect(qp.h.Eng.Now())
	qp.h.NIC.Kick()
}

// onProbe is the tail loss probe: after 2×SRTT without ACKs, retransmit the
// highest outstanding packet to elicit a SACK.
func (qp *senderQP) onProbe() {
	if qp.done || qp.nextPSN == 0 || base.SeqGEQ(qp.una, qp.nextPSN) {
		if !qp.done {
			qp.probe.Reset(2 * qp.srtt)
		}
		return
	}
	for psn := qp.nextPSN; base.SeqLess(qp.una, psn); psn-- {
		st := &qp.pkts[psn-1]
		if !st.sacked && !st.queued {
			qp.markLost(psn - 1)
			break
		}
	}
	qp.probe.Reset(2 * qp.srtt)
	qp.h.NIC.Kick()
}

func (qp *senderQP) onRTO() {
	if qp.done {
		return
	}
	if base.SeqLess(qp.una, qp.nextPSN) {
		qp.rec.Timeouts++
		for psn := qp.una; base.SeqLess(psn, qp.nextPSN); psn++ {
			qp.markLost(psn)
		}
		qp.inflight = 0
		qp.h.NIC.Kick()
	}
	qp.rto.Reset(qp.h.Env.RTOHigh)
}

func (qp *senderQP) complete(now units.Time) {
	qp.done = true
	qp.rackTimer.Stop()
	qp.probe.Stop()
	qp.rto.Stop()
	qp.ctl.Close()
	qp.h.Env.Collector.Done(qp.flow.ID, now)
}

type recvQP struct {
	ePSN     uint32
	received []uint64
	total    uint32
}

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{received: make([]uint64, (p.MsgLen+63)/64), total: p.MsgLen}
		h.recv[p.FlowID] = qp
	}
	w, b := p.PSN/64, p.PSN%64
	dup := qp.received[w]&(1<<b) != 0
	if !dup {
		qp.received[w] |= 1 << b
		for base.SeqLess(qp.ePSN, qp.total) && qp.received[qp.ePSN/64]&(1<<(qp.ePSN%64)) != 0 {
			qp.ePSN++
		}
	}
	a := packet.AckPacket(p.FlowID, p.Dst, p.Src, qp.ePSN)
	a.Tag = packet.TagNonDCP
	a.Ack = packet.AckSelective
	a.SackPSN = p.PSN
	a.SentAt = p.SentAt
	h.QueueCtrl(a)
}
