// Package gbn implements the RNIC-GBN baseline: the Go-Back-N loss
// recovery of traditional RoCEv2 NICs (Mellanox CX5 class). The receiver
// only accepts in-order packets; an out-of-order arrival elicits a NAK
// carrying the expected PSN, and the sender rewinds its transmission to
// that PSN. Deployed with PFC (lossless) in production; over lossy fabrics
// its goodput collapses, which is the paper's Fig. 10/11 comparison.
package gbn

import (
	"dcpsim/internal/cc"
	"dcpsim/internal/nic"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Host is a GBN endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds a GBN endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "gbn" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	if h.Env.Trace != nil {
		h.Env.Trace.Flow(h.Eng.Now(), obs.EvFlowStart, f.Src, f.ID, f.Size)
	}
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onAck(p)
		}
	case packet.KindCNP:
		if qp := h.send[p.FlowID]; qp != nil && !qp.done {
			qp.ctl.OnCongestion(h.Eng.Now())
		}
	}
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord
	ctl  cc.Controller

	totalPkts uint32
	lastPay   int // payload of the final packet

	una     uint32 // cumulative acknowledged PSN
	nextPSN uint32

	firstTx  uint32 // highest PSN ever transmitted (for retrans accounting)
	timer    *sim.Timer
	done     bool
	inflight int
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.ctl = env.CC(h.Eng, h.NIC.Rate(), env.BaseRTT)
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	qp.timer = sim.NewTimer(h.Eng, qp.onTimeout)
	qp.timer.Reset(env.RTOHigh)
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done || base.SeqGEQ(qp.nextPSN, qp.totalPkts) {
		return nil, 0
	}
	size := qp.payloadAt(qp.nextPSN)
	ok, at := qp.ctl.CanSend(now, qp.inflight, size)
	if !ok {
		return nil, at
	}
	psn := qp.nextPSN
	qp.nextPSN++
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, size)
	p.Tag = packet.TagNonDCP // traditional RoCE traffic: dropped, not trimmed
	p.SentAt = now
	if base.SeqLess(psn, qp.firstTx) {
		p.Retransmitted = true
		qp.rec.RetransPkts++
		if env := qp.h.Env; env.Trace != nil {
			env.Trace.Emit(obs.Event{At: now, Type: obs.EvRetransmit, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: psn, Size: int32(size)})
		}
	} else {
		qp.firstTx = psn + 1
		qp.rec.DataPkts++
		if env := qp.h.Env; env.Trace != nil {
			env.Trace.Emit(obs.Event{At: now, Type: obs.EvSend, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: psn, Size: int32(size)})
		}
	}
	qp.inflight += size
	qp.ctl.OnSent(now, p.Size)
	return p, 0
}

func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	if base.SeqLess(qp.una, p.EPSN) {
		var acked int
		for psn := qp.una; base.SeqLess(psn, p.EPSN); psn++ {
			acked += qp.payloadAt(psn)
		}
		qp.una = p.EPSN
		if base.SeqLess(qp.nextPSN, qp.una) {
			qp.nextPSN = qp.una // a rewind raced this cumulative ACK
		}
		qp.inflight -= acked
		if qp.inflight < 0 {
			qp.inflight = 0
		}
		var rtt units.Time
		if p.SentAt > 0 {
			rtt = now - p.SentAt
		}
		qp.ctl.OnAck(now, acked, rtt)
		qp.timer.Reset(qp.h.Env.RTOHigh)
		if base.SeqGEQ(qp.una, qp.totalPkts) {
			qp.done = true
			qp.timer.Stop()
			qp.ctl.Close()
			if env := qp.h.Env; env.Trace != nil {
				env.Trace.Flow(now, obs.EvFlowDone, qp.flow.Src, qp.flow.ID, qp.flow.Size)
			}
			qp.h.Env.Collector.Done(qp.flow.ID, now)
			return
		}
	}
	if p.Ack == packet.AckNak {
		// Go-Back-N: rewind to the expected PSN.
		if base.SeqLess(p.EPSN, qp.nextPSN) {
			qp.rewind(p.EPSN)
		}
	}
	qp.h.NIC.Kick()
}

func (qp *senderQP) rewind(to uint32) {
	qp.nextPSN = to
	// Everything beyond the rewind point is no longer considered in
	// flight; it will be resent.
	var fly int
	for psn := qp.una; base.SeqLess(psn, to); psn++ {
		fly += qp.payloadAt(psn)
	}
	qp.inflight = fly
}

func (qp *senderQP) onTimeout() {
	if qp.done {
		return
	}
	if base.SeqLess(qp.una, qp.nextPSN) {
		qp.rec.Timeouts++
		if env := qp.h.Env; env.Trace != nil {
			env.Trace.Emit(obs.Event{At: qp.h.Eng.Now(), Type: obs.EvTimeout, Node: qp.flow.Src, Port: -1,
				Flow: qp.flow.ID, PSN: qp.una})
		}
		qp.rewind(qp.una)
		qp.inflight = 0
		qp.h.NIC.Kick()
	}
	qp.timer.Reset(qp.h.Env.RTOHigh)
}

type recvQP struct {
	ePSN    uint32
	nakSent bool
	lastCNP units.Time
	cnpSet  bool
}

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{}
		h.recv[p.FlowID] = qp
	}
	now := h.Eng.Now()
	if p.ECN {
		h.maybeCNP(qp, p, now)
	}
	switch {
	case p.PSN == qp.ePSN:
		qp.ePSN++
		qp.nakSent = false
		h.ack(p, qp.ePSN, packet.AckCumulative)
	case base.SeqLess(qp.ePSN, p.PSN):
		// Out of order: GBN has no reorder buffer; drop and NAK once per
		// gap (RoCE NAK-sequence-error semantics).
		if !qp.nakSent {
			qp.nakSent = true
			h.ack(p, qp.ePSN, packet.AckNak)
		}
	default:
		// Duplicate from a rewind: refresh the sender.
		h.ack(p, qp.ePSN, packet.AckCumulative)
	}
}

func (h *Host) ack(data *packet.Packet, epsn uint32, flavor packet.AckFlavor) {
	a := packet.AckPacket(data.FlowID, data.Dst, data.Src, epsn)
	a.Tag = packet.TagNonDCP
	a.Ack = flavor
	a.SentAt = data.SentAt
	h.QueueCtrl(a)
}

func (h *Host) maybeCNP(qp *recvQP, data *packet.Packet, now units.Time) {
	if qp.cnpSet && now-qp.lastCNP < h.Env.CNPInterval {
		return
	}
	qp.cnpSet = true
	qp.lastCNP = now
	h.QueueCtrl(&packet.Packet{
		Kind: packet.KindCNP, Tag: packet.TagNonDCP, FlowID: data.FlowID,
		Src: data.Dst, Dst: data.Src, Size: packet.CNPSize,
	})
}
