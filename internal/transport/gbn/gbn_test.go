package gbn_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/fabric"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

func onePath(sch exp.Scheme, mutate func(*fabric.SwitchConfig)) func(*sim.Engine) *topo.Network {
	return func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = exp.SwitchConfigFor(sch)
		if mutate != nil {
			mutate(&cfg.Switch)
		}
		return topo.Dumbbell(eng, cfg)
	}
}

func TestCleanTransfer(t *testing.T) {
	sch := exp.SchemeGBNLossy(fabric.LBECMP)
	s := exp.NewSim(3, sch, onePath(sch, nil))
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 20 << 20}})
	if s.Run(units.Second) != 0 {
		t.Fatal("unfinished")
	}
	rec := s.Col.Flow(1)
	if rec.RetransPkts != 0 || rec.Timeouts != 0 {
		t.Fatal("no loss: no recovery expected")
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 85 {
		t.Fatalf("goodput %.1f", gp)
	}
}

func TestGoBackNUnderLoss(t *testing.T) {
	sch := exp.SchemeGBNLossy(fabric.LBECMP)
	s := exp.NewSim(3, sch, onePath(sch, func(c *fabric.SwitchConfig) { c.LossRate = 0.01 }))
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 20 << 20}})
	if s.Run(30*units.Second) != 0 {
		t.Fatal("unfinished")
	}
	rec := s.Col.Flow(1)
	if rec.RetransPkts == 0 {
		t.Fatal("loss must rewind")
	}
	// The GBN signature: a single loss retransmits the whole window, so
	// retransmissions far exceed actual drops.
	drops := s.Net.Counters().DroppedData
	if rec.RetransPkts < 3*drops {
		t.Fatalf("GBN amplification missing: %d retrans for %d drops", rec.RetransPkts, drops)
	}
}

func TestGoodputCollapsesAtHighLoss(t *testing.T) {
	// The Fig. 10 claim: CX5 goodput collapses as loss grows.
	run := func(loss float64) float64 {
		sch := exp.SchemeGBNLossy(fabric.LBECMP)
		s := exp.NewSim(3, sch, onePath(sch, func(c *fabric.SwitchConfig) { c.LossRate = loss }))
		s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 8 << 20}})
		if s.Run(60*units.Second) != 0 {
			t.Fatal("unfinished")
		}
		rec := s.Col.Flow(1)
		return stats.Goodput(rec.Size, rec.FCT())
	}
	clean, lossy := run(0), run(0.05)
	if lossy > clean/5 {
		t.Fatalf("5%% loss should collapse GBN: %.1f vs %.1f Gbps", lossy, clean)
	}
}

func TestLosslessPFCNoRetrans(t *testing.T) {
	// Over a PFC fabric GBN never needs recovery, even under incast.
	sch := exp.SchemePFC()
	s := exp.NewSim(3, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	var flows []*workload.Flow
	for i := uint64(0); i < 6; i++ {
		flows = append(flows, &workload.Flow{ID: i + 1, Src: packet.NodeID(i), Dst: 15, Size: 4 << 20})
	}
	s.ScheduleFlows(flows)
	if s.Run(5*units.Second) != 0 {
		t.Fatal("unfinished")
	}
	c := s.Net.Counters()
	if c.DroppedData != 0 {
		t.Fatal("PFC fabric must not drop")
	}
	if c.PauseOn == 0 {
		t.Fatal("incast should trigger PFC pauses")
	}
	for _, f := range s.Col.Flows() {
		if f.RetransPkts != 0 {
			t.Fatal("no retransmissions under PFC")
		}
	}
}

func TestBidirectional(t *testing.T) {
	sch := exp.SchemeGBNLossy(fabric.LBECMP)
	s := exp.NewSim(3, sch, onePath(sch, nil))
	s.ScheduleFlows([]*workload.Flow{
		{ID: 1, Src: 0, Dst: 1, Size: 4 << 20},
		{ID: 2, Src: 1, Dst: 0, Size: 4 << 20},
	})
	if s.Run(units.Second) != 0 {
		t.Fatal("unfinished")
	}
}
