package tcpish_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

func run(t *testing.T, size int64, loss float64) *stats.FlowRecord {
	t.Helper()
	sch := exp.SchemeTCP()
	s := exp.NewSim(17, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = exp.SwitchConfigFor(sch)
		cfg.Switch.LossRate = loss
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
	if left := s.Run(120 * units.Second); left != 0 {
		t.Fatalf("unfinished at %v", s.Eng.Now())
	}
	return s.Col.Flow(1)
}

func TestCPUBoundThroughput(t *testing.T) {
	// The Fig. 8 point: software TCP cannot reach line rate; it is bounded
	// by the modeled host CPU (40 Gbps) and stack latency.
	rec := run(t, 64<<20, 0)
	gp := stats.Goodput(rec.Size, rec.FCT())
	if gp > 45 {
		t.Fatalf("TCP too fast (%.1f Gbps): stack cost not applied", gp)
	}
	if gp < 15 {
		t.Fatalf("TCP too slow (%.1f Gbps)", gp)
	}
}

func TestStackLatencyDominatesSmallMessages(t *testing.T) {
	rec := run(t, 64, 0)
	// Two stack traversals (send + receive) plus wire: ≥ 24 µs.
	if rec.FCT() < 24*units.Microsecond {
		t.Fatalf("latency %v too low for a software stack", rec.FCT())
	}
}

func TestFastRetransmitOnLoss(t *testing.T) {
	rec := run(t, 8<<20, 0.005)
	if rec.RetransPkts == 0 {
		t.Fatal("loss must trigger retransmission")
	}
	if !rec.Done {
		t.Fatal("must complete")
	}
}

func TestSlowStartRampsUp(t *testing.T) {
	// A short flow finishes before slow start fills the pipe, so its
	// achieved goodput must be well below a long flow's.
	short := run(t, 256<<10, 0)
	long := run(t, 64<<20, 0)
	gpShort := stats.Goodput(short.Size, short.FCT())
	gpLong := stats.Goodput(long.Size, long.FCT())
	if gpShort >= gpLong {
		t.Fatalf("slow start missing: short %.1f ≥ long %.1f", gpShort, gpLong)
	}
}
