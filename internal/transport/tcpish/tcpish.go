// Package tcpish implements a software TCP-like endpoint (Reno congestion
// control, cumulative ACKs with duplicate-ACK fast retransmit) including
// the host-stack costs that hardware offload removes: a fixed per-direction
// stack latency and a CPU-bound packet rate. It exists for the Fig. 8
// validation ("offloaded DCP ≈ offloaded GBN ≫ software TCP"); the
// absolute overhead values are a documented model, not a kernel.
package tcpish

import (
	"dcpsim/internal/nic"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Stack cost model: each packet spends StackDelay in the host stack in each
// direction, and the CPU sustains at most CPURate of TCP throughput.
const (
	StackDelay = 12 * units.Microsecond
	CPURate    = 40 * units.Gbps
)

// Host is a TCP-like endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP
}

// New builds a TCP-like endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	return &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
}

// Name implements base.Transport.
func (h *Host) Name() string { return "tcp" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport: arrivals pay the receive-side stack
// delay before protocol processing.
func (h *Host) Handle(p *packet.Packet) {
	h.Eng.AfterComp(StackDelay, sim.CompTransport, func() {
		switch p.Kind {
		case packet.KindData:
			h.recvData(p)
		case packet.KindAck:
			if qp := h.send[p.FlowID]; qp != nil {
				qp.onAck(p)
			}
		}
	})
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord

	totalPkts uint32
	lastPay   int

	una      uint32
	nextPSN  uint32
	firstTx  uint32
	inflight int

	cwnd     float64 // packets
	ssthresh float64
	dupAcks  int

	nextSend units.Time // CPU pacing
	timer    *sim.Timer
	done     bool
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f, cwnd: 10, ssthresh: 1 << 20}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	qp.timer = sim.NewTimer(h.Eng, qp.onTimeout)
	qp.timer.Reset(env.RTOHigh)
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP.
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done || base.SeqGEQ(qp.nextPSN, qp.totalPkts) {
		return nil, 0
	}
	if float64(base.SeqDiff(qp.nextPSN, qp.una)) >= qp.cwnd {
		return nil, 0
	}
	if now < qp.nextSend {
		return nil, qp.nextSend
	}
	psn := qp.nextPSN
	qp.nextPSN++
	size := qp.payloadAt(psn)
	qp.nextSend = now + units.TxTime(size, CPURate)
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, size)
	p.Tag = packet.TagNonDCP
	p.MsgLen = qp.totalPkts
	p.SentAt = now
	if base.SeqLess(psn, qp.firstTx) {
		p.Retransmitted = true
		qp.rec.RetransPkts++
	} else {
		qp.firstTx = psn + 1
		qp.rec.DataPkts++
	}
	return p, 0
}

func (qp *senderQP) onAck(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	switch {
	case base.SeqLess(qp.una, p.EPSN):
		qp.una = p.EPSN
		if base.SeqLess(qp.nextPSN, qp.una) {
			// A rewind raced a straggler cumulative ACK; never send
			// already-acknowledged data (and never let nextPSN-una
			// underflow).
			qp.nextPSN = qp.una
		}
		qp.dupAcks = 0
		if qp.cwnd < qp.ssthresh {
			qp.cwnd++ // slow start
		} else {
			qp.cwnd += 1 / qp.cwnd // congestion avoidance
		}
		qp.timer.Reset(qp.h.Env.RTOHigh)
		if base.SeqGEQ(qp.una, qp.totalPkts) {
			qp.done = true
			qp.timer.Stop()
			qp.h.Env.Collector.Done(qp.flow.ID, now)
			return
		}
	case p.EPSN == qp.una && base.SeqLess(qp.una, qp.nextPSN):
		qp.dupAcks++
		if qp.dupAcks == 3 {
			// Fast retransmit: Reno halves and resends the hole.
			qp.ssthresh = qp.cwnd / 2
			if qp.ssthresh < 2 {
				qp.ssthresh = 2
			}
			qp.cwnd = qp.ssthresh
			qp.nextPSN = qp.una
		}
	}
	qp.h.NIC.Kick()
}

func (qp *senderQP) onTimeout() {
	if qp.done {
		return
	}
	if base.SeqLess(qp.una, qp.nextPSN) {
		qp.rec.Timeouts++
		qp.ssthresh = qp.cwnd / 2
		if qp.ssthresh < 2 {
			qp.ssthresh = 2
		}
		qp.cwnd = 1
		qp.nextPSN = qp.una
		qp.h.NIC.Kick()
	}
	qp.timer.Reset(qp.h.Env.RTOHigh)
}

type recvQP struct {
	ePSN     uint32
	received []uint64
	total    uint32
}

func (h *Host) recvData(p *packet.Packet) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{received: make([]uint64, (p.MsgLen+63)/64), total: p.MsgLen}
		h.recv[p.FlowID] = qp
	}
	w, b := p.PSN/64, p.PSN%64
	if qp.received[w]&(1<<b) == 0 {
		qp.received[w] |= 1 << b
		for base.SeqLess(qp.ePSN, qp.total) && qp.received[qp.ePSN/64]&(1<<(qp.ePSN%64)) != 0 {
			qp.ePSN++
		}
	}
	a := packet.AckPacket(p.FlowID, p.Dst, p.Src, qp.ePSN)
	a.Tag = packet.TagNonDCP
	a.SentAt = p.SentAt
	h.QueueCtrl(a)
}
