package ndp_test

import (
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

func run(t *testing.T, size int64, loss float64, seed int64) (*exp.Sim, *stats.FlowRecord) {
	t.Helper()
	sch := exp.SchemeNDP()
	s := exp.NewSim(seed, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = exp.SwitchConfigFor(sch)
		cfg.Switch.LossRate = loss
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: size}})
	if left := s.Run(60 * units.Second); left != 0 {
		t.Fatalf("unfinished at %v", s.Eng.Now())
	}
	return s, s.Col.Flow(1)
}

func TestCleanTransfer(t *testing.T) {
	_, rec := run(t, 20<<20, 0, 1)
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 70 {
		t.Fatalf("goodput %.1f", gp)
	}
	if rec.RetransPkts != 0 || rec.Timeouts != 0 {
		t.Fatal("clean transfer")
	}
}

func TestPullClockedRecovery(t *testing.T) {
	s, rec := run(t, 20<<20, 0.02, 1)
	if rec.Timeouts != 0 {
		t.Fatalf("trim-triggered NACK+pull should avoid RTOs, saw %d", rec.Timeouts)
	}
	if rec.RetransPkts == 0 {
		t.Fatal("loss must retransmit")
	}
	c := s.Net.Counters()
	if c.TrimmedPkts == 0 {
		t.Fatal("forced loss must trim")
	}
	// Pulled retransmissions are precise: bounded by trims.
	if rec.RetransPkts > c.TrimmedPkts+int64(rec.Timeouts)*2 {
		t.Fatalf("retrans %d exceed trims %d", rec.RetransPkts, c.TrimmedPkts)
	}
	if gp := stats.Goodput(rec.Size, rec.FCT()); gp < 50 {
		t.Fatalf("goodput %.1f under 2%% loss", gp)
	}
}

// TestIncastReceiverPacing: NDP's receiver paces senders after the first
// blind window, so an incast keeps queues bounded to ~one window and
// everything completes without timeouts.
func TestIncastReceiverPacing(t *testing.T) {
	sch := exp.SchemeNDP()
	s := exp.NewSim(2, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, cfg)
	})
	var flows []*workload.Flow
	for i := uint64(0); i < 8; i++ {
		flows = append(flows, &workload.Flow{ID: i + 1, Src: packet.NodeID(i), Dst: 15, Size: 2 << 20})
	}
	s.ScheduleFlows(flows)
	if left := s.Run(10 * units.Second); left != 0 {
		t.Fatalf("%d unfinished", left)
	}
	for _, f := range s.Col.Flows() {
		if f.Timeouts != 0 {
			t.Fatalf("flow %d needed %d timeouts", f.ID, f.Timeouts)
		}
	}
}

func TestSafetyTimerCoversDeadControlPlane(t *testing.T) {
	sch := exp.SchemeNDP()
	s := exp.NewSim(3, sch, func(eng *sim.Engine) *topo.Network {
		cfg := topo.DefaultDumbbell()
		cfg.HostsPerSwitch = 1
		cfg.CrossLinks = 1
		cfg.Switch = exp.SwitchConfigFor(sch)
		cfg.Switch.LossRate = 0.02
		cfg.Switch.CtrlQueueCap = 0 // headers all dropped: NACKs never form
		return topo.Dumbbell(eng, cfg)
	})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 1 << 20}})
	if left := s.Run(120 * units.Second); left != 0 {
		t.Fatal("unfinished")
	}
	if s.Col.Flow(1).Timeouts == 0 {
		t.Fatal("safety timer must carry a dead control plane")
	}
}
