// Package ndp implements a simplified NDP endpoint (Handley et al.,
// SIGCOMM'17) over the same trimming fabric DCP uses — the paper's closest
// software relative (Table 2, §7). The sender blasts one initial window
// blind; afterwards every transmission is granted by a receiver-paced PULL
// credit. Trimmed headers arriving at the receiver become immediate NACKs
// plus high-priority pulls, so losses repair in about one RTT without
// sender timers.
//
// DCP's §7 contrast: NDP is receiver-driven *congestion control* built on
// trimming, whereas DCP keeps sender-driven CC and uses trimming purely as
// a reliability signal, which is what makes it implementable in an RNIC.
// This package exists to make that comparison executable.
package ndp

import (
	"dcpsim/internal/nic"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// Host is an NDP endpoint on one NIC.
type Host struct {
	base.Host
	send map[uint64]*senderQP
	recv map[uint64]*recvQP

	// The pull pacer is shared by every receiving QP on this NIC: NDP
	// grants exactly one packet's worth of credit per MTU-time at the
	// receiver's line rate, round-robin across flows that are owed pulls.
	pullRR   []*recvQP
	pacer    *sim.Timer
	pacerOn  bool
	lastPull units.Time
}

// New builds an NDP endpoint.
func New(n *nic.NIC, env *base.Env) base.Transport {
	h := &Host{
		Host: base.NewHost(n, env),
		send: make(map[uint64]*senderQP),
		recv: make(map[uint64]*recvQP),
	}
	h.pacer = sim.NewTimer(n.Engine(), h.pullTick)
	// The pull pacer is the protocol's clock, not a retransmission timeout.
	h.pacer.Comp = sim.CompTransport
	return h
}

// Name implements base.Transport.
func (h *Host) Name() string { return "ndp" }

// StartFlow implements base.Transport.
func (h *Host) StartFlow(f *workload.Flow) {
	qp := newSenderQP(h, f)
	h.send[f.ID] = qp
	h.AddQP(qp)
}

// Handle implements nic.Transport.
func (h *Host) Handle(p *packet.Packet) {
	switch p.Kind {
	case packet.KindData:
		h.recvData(p, false)
	case packet.KindHO:
		// A trimmed header reaching the receiver is NDP's loss signal.
		h.recvData(p, true)
	case packet.KindAck:
		if qp := h.send[p.FlowID]; qp != nil {
			qp.onCtrl(p)
		}
	}
}

// Dequeue implements nic.Transport.
func (h *Host) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	return h.Host.Dequeue(now, dataPaused)
}

// ---------- sender ----------

type senderQP struct {
	h    *Host
	flow *workload.Flow
	rec  *stats.FlowRecord

	totalPkts uint32
	lastPay   int

	nextPSN uint32 // next never-sent packet
	window  uint32 // initial blind window (packets)
	sent    uint32 // packets sent blind so far
	pulls   int    // unspent pull credits

	retx     []uint32 // NACKed packets awaiting a pull
	retxHead int

	acked   *bitset
	done    bool
	rtoSafe *sim.Timer // last-resort safety timer (pull loss)
}

type bitset struct {
	words []uint64
	count int
}

func newBitset(n uint32) *bitset { return &bitset{words: make([]uint64, (n+63)/64)} }

func (b *bitset) set(i uint32) bool {
	w, m := i/64, uint64(1)<<(i%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

func newSenderQP(h *Host, f *workload.Flow) *senderQP {
	env := h.Env
	qp := &senderQP{h: h, flow: f}
	qp.rec = env.Collector.Flow(f.ID)
	if qp.rec == nil {
		qp.rec = env.Collector.Add(f.ID, f.Src, f.Dst, f.Size, h.Eng.Now())
	}
	qp.totalPkts = base.NumPackets(f.Size, env.MTU)
	qp.lastPay = base.PayloadAt(f.Size, env.MTU, qp.totalPkts-1)
	qp.acked = newBitset(qp.totalPkts)
	iw := uint32(units.BDP(h.NIC.Rate(), env.BaseRTT) / env.MTU)
	if iw < 2 {
		iw = 2
	}
	qp.window = iw
	qp.rtoSafe = sim.NewTimer(h.Eng, qp.onSafety)
	qp.rtoSafe.Reset(env.RTOHigh)
	return qp
}

func (qp *senderQP) payloadAt(psn uint32) int {
	if psn == qp.totalPkts-1 {
		return qp.lastPay
	}
	return qp.h.Env.MTU
}

// Finished implements base.QP.
func (qp *senderQP) Finished() bool { return qp.done }

// Next implements base.QP: blind initial window first, then strictly
// pull-clocked (retransmissions before new data).
func (qp *senderQP) Next(now units.Time) (*packet.Packet, units.Time) {
	if qp.done {
		return nil, 0
	}
	// Initial window: fire-and-forget up to one BDP.
	if qp.sent < qp.window && base.SeqLess(qp.nextPSN, qp.totalPkts) {
		return qp.emitNew(now), 0
	}
	if qp.pulls == 0 {
		return nil, 0
	}
	for qp.retxHead < len(qp.retx) {
		psn := qp.retx[qp.retxHead]
		if qp.acked.words[psn/64]&(1<<(psn%64)) != 0 {
			qp.retxHead++
			continue
		}
		qp.retxHead++
		qp.pulls--
		qp.rec.RetransPkts++
		p := qp.emit(now, psn, true)
		return p, 0
	}
	if qp.retxHead > 0 && qp.retxHead == len(qp.retx) {
		qp.retx = qp.retx[:0]
		qp.retxHead = 0
	}
	if base.SeqLess(qp.nextPSN, qp.totalPkts) {
		qp.pulls--
		return qp.emitNew(now), 0
	}
	return nil, 0
}

func (qp *senderQP) emitNew(now units.Time) *packet.Packet {
	psn := qp.nextPSN
	qp.nextPSN++
	qp.sent++
	qp.rec.DataPkts++
	return qp.emit(now, psn, false)
}

func (qp *senderQP) emit(now units.Time, psn uint32, retrans bool) *packet.Packet {
	p := packet.DataPacket(qp.flow.ID, qp.flow.Src, qp.flow.Dst, psn, 0, qp.payloadAt(psn))
	p.MsgLen = qp.totalPkts
	p.SentAt = now
	p.Retransmitted = retrans
	return p
}

// onCtrl handles ACK / NACK / PULL control packets.
func (qp *senderQP) onCtrl(p *packet.Packet) {
	if qp.done {
		return
	}
	now := qp.h.Eng.Now()
	switch p.Ack {
	case packet.AckPull:
		qp.pulls++
	case packet.AckNak:
		// A trimmed header was seen: queue the named packet for the next
		// pull.
		if base.SeqLess(p.SackPSN, qp.totalPkts) {
			qp.retx = append(qp.retx, p.SackPSN)
		}
	default:
		if base.SeqLess(p.SackPSN, qp.totalPkts) {
			qp.acked.set(p.SackPSN)
		}
	}
	qp.rtoSafe.Reset(qp.h.Env.RTOHigh)
	if uint32(qp.acked.count) >= qp.totalPkts {
		qp.done = true
		qp.rtoSafe.Stop()
		qp.h.Env.Collector.Done(qp.flow.ID, now)
		return
	}
	qp.h.NIC.Kick()
}

// onSafety covers total control-plane loss (pulls and NACKs all gone):
// resend the lowest unacked packet to restart the pull clock.
func (qp *senderQP) onSafety() {
	if qp.done {
		return
	}
	qp.rec.Timeouts++
	for psn := uint32(0); base.SeqLess(psn, qp.nextPSN); psn++ {
		if qp.acked.words[psn/64]&(1<<(psn%64)) == 0 {
			qp.retx = append(qp.retx, psn)
			qp.pulls++ // self-granted credit: the pull clock was lost
			break
		}
	}
	qp.rtoSafe.Reset(qp.h.Env.RTOHigh)
	qp.h.NIC.Kick()
}

// ---------- receiver ----------

type recvQP struct {
	sender   packet.NodeID
	flowID   uint64
	total    uint32
	received *bitset

	pullDue int // pulls owed (one per data/header arrival)
	queued  bool
}

func (h *Host) recvData(p *packet.Packet, trimmed bool) {
	qp := h.recv[p.FlowID]
	if qp == nil {
		qp = &recvQP{sender: p.Src, flowID: p.FlowID, total: p.MsgLen}
		qp.received = newBitset(p.MsgLen)
		h.recv[p.FlowID] = qp
	}
	if trimmed {
		// NACK right away so the retransmission is queued, and owe a pull
		// for the lost payload.
		nack := packet.AckPacket(p.FlowID, p.Dst, p.Src, 0)
		nack.Ack = packet.AckNak
		nack.SackPSN = p.PSN
		h.QueueCtrl(nack)
		qp.pullDue++
	} else {
		if qp.received.set(p.PSN) {
			ack := packet.AckPacket(p.FlowID, p.Dst, p.Src, 0)
			ack.Ack = packet.AckSelective
			ack.SackPSN = p.PSN
			ack.SentAt = p.SentAt
			h.QueueCtrl(ack)
		}
		if uint32(qp.received.count) < qp.total {
			qp.pullDue++
		}
	}
	h.enqueuePull(qp)
}

// enqueuePull registers that qp is owed pulls and arms the shared pacer.
func (h *Host) enqueuePull(qp *recvQP) {
	if qp.pullDue > 0 && !qp.queued {
		qp.queued = true
		h.pullRR = append(h.pullRR, qp)
	}
	h.startPacer()
}

// startPacer arms the NIC-wide pull clock: one pull per MTU-time at the
// receiver's line rate, the NDP pacing rule that keeps the access link
// exactly full regardless of how many flows converge on it.
func (h *Host) startPacer() {
	if h.pacerOn || len(h.pullRR) == 0 {
		return
	}
	h.pacerOn = true
	interval := units.TxTime(h.Env.MTU+packet.DataHeaderSize, h.NIC.Rate())
	next := h.lastPull + interval
	now := h.Eng.Now()
	if next < now {
		next = now
	}
	h.pacer.Reset(next - now)
}

func (h *Host) pullTick() {
	h.pacerOn = false
	for len(h.pullRR) > 0 {
		qp := h.pullRR[0]
		h.pullRR = h.pullRR[1:]
		if qp.pullDue == 0 || uint32(qp.received.count) >= qp.total {
			qp.queued = false
			continue
		}
		qp.pullDue--
		if qp.pullDue > 0 {
			h.pullRR = append(h.pullRR, qp) // stay in the rotation
		} else {
			qp.queued = false
		}
		h.lastPull = h.Eng.Now()
		pull := packet.AckPacket(qp.flowID, 0, qp.sender, 0)
		pull.Src = h.NIC.ID()
		pull.Ack = packet.AckPull
		h.QueueCtrl(pull)
		break
	}
	h.startPacer()
}
