package perf

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dcpsim/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/perf -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run with -update after intentional format changes)\n got: %s\nwant: %s",
			name, got, want)
	}
}

// goldenReport is a fully hand-determined report: every renderable section
// appears (per-scheme rows, engine extremes, a host half with phases), so
// the golden pins both the deterministic and the host formatting.
func goldenReport() *Report {
	r := &Report{Cells: 3, Schemes: 2}
	r.Comps[sim.CompWorkload] = 24
	r.Comps[sim.CompTransport] = 1200
	r.Comps[sim.CompFabric] = 5400
	r.Comps[sim.CompNIC] = 3300
	r.Comps[sim.CompCC] = 420
	r.Comps[sim.CompTimer] = 96
	r.Comps[sim.CompFaults] = 4
	r.Comps[sim.CompProbe] = 51
	r.Comps[sim.CompOther] = 5
	for _, n := range r.Comps {
		r.Events += n
	}
	r.Attributed = r.Events - r.Comps[sim.CompOther]
	dcp := SchemeRow{Scheme: "DCP", Cells: 2}
	dcp.Counts[sim.CompFabric] = 3600
	dcp.Counts[sim.CompNIC] = 2200
	dcp.Counts[sim.CompTransport] = 800
	gbn := SchemeRow{Scheme: "GBN", Cells: 1}
	gbn.Counts[sim.CompFabric] = 1800
	gbn.Counts[sim.CompNIC] = 1100
	gbn.Counts[sim.CompTimer] = 96
	for i := range dcp.Counts {
		dcp.Events += dcp.Counts[i]
		gbn.Events += gbn.Counts[i]
	}
	r.PerScheme = []SchemeRow{dcp, gbn}
	r.Engine = EngineHigh{MaxHeapDepth: 482, MaxHeapCell: "fig10/c003/s00",
		MaxLive: 401, MaxLiveCell: "fig10/c001/s00", CancelledDrops: 1439}
	r.Host = &HostReport{TotalWallNs: 48_000_000}
	r.Host.WallNs[sim.CompFabric] = 21_000_000
	r.Host.WallNs[sim.CompNIC] = 14_500_000
	r.Host.WallNs[sim.CompTransport] = 9_000_000
	r.Host.WallNs[sim.CompCC] = 2_000_000
	r.Host.WallNs[sim.CompTimer] = 1_500_000
	r.Host.Phases = []PhaseRow{
		{Name: "simulate", WallNs: 52_000_000, AllocBytes: 45_000_000},
		{Name: "report", WallNs: 1_200_000, AllocBytes: 300_000},
	}
	return r
}

func TestReportGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenReport().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden.txt", buf.Bytes())
}

func TestReportGoldenJSON(t *testing.T) {
	got, err := goldenReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden.json", got)
}

// deterministic-half golden: no wall clock → no host section, the exact
// shape `dcpbench -profile` promises to keep byte-identical across runs.
func TestReportGoldenDeterministicText(t *testing.T) {
	r := goldenReport()
	r.Host = nil
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("host wall-time")) {
		t.Fatal("counts-only report leaked a host section")
	}
	checkGolden(t, "report_det.golden.txt", buf.Bytes())
}

// TestProfilerAggregation drives synthetic engines through Attach and
// checks grouping, totals, and attach-order independence.
func TestProfilerAggregation(t *testing.T) {
	build := func(p *Profiler, reverse bool) *Report {
		mk := func(label, scheme string, fab, nic int) {
			eng := sim.NewEngine(1)
			p.Attach(label, scheme, eng)
			for i := 0; i < fab; i++ {
				eng.AtComp(1, sim.CompFabric, func() {})
			}
			for i := 0; i < nic; i++ {
				eng.AtComp(2, sim.CompNIC, func() {})
			}
			eng.Run(0)
		}
		if reverse {
			mk("b/c001/s00", "GBN", 3, 1)
			mk("a/c000/s00", "DCP", 5, 2)
		} else {
			mk("a/c000/s00", "DCP", 5, 2)
			mk("b/c001/s00", "GBN", 3, 1)
		}
		return p.Report()
	}
	r1 := build(New(Options{}), false)
	r2 := build(New(Options{}), true)

	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("report depends on attach order:\n%s\nvs\n%s", j1, j2)
	}
	if r1.Cells != 2 || r1.Schemes != 2 || r1.Events != 11 {
		t.Fatalf("aggregation wrong: %+v", r1)
	}
	if r1.Comps[sim.CompFabric] != 8 || r1.Comps[sim.CompNIC] != 3 {
		t.Fatalf("comp totals wrong: %v", r1.Comps)
	}
	if r1.PerScheme[0].Scheme != "DCP" || r1.PerScheme[0].Events != 7 {
		t.Fatalf("per-scheme wrong: %+v", r1.PerScheme)
	}
	if r1.AttributedShare() != 1 {
		t.Fatalf("attributed share = %v, want 1", r1.AttributedShare())
	}
	// MaxLive high water: 7 events queued before the first Run on the DCP
	// cell — and the tie-break keeps a deterministic label.
	if r1.Engine.MaxLive != 7 || r1.Engine.MaxLiveCell != "a/c000/s00" {
		t.Fatalf("engine extremes wrong: %+v", r1.Engine)
	}
}

// TestNilProfiler: the disabled path must be safe on every method.
func TestNilProfiler(t *testing.T) {
	var p *Profiler
	p.Attach("x", "DCP", sim.NewEngine(1))
	p.Phase("simulate")
	p.EndPhases()
	if p.Cells() != 0 {
		t.Fatal("nil profiler reported cells")
	}
	r := p.Report()
	if r.Events != 0 || r.Host != nil {
		t.Fatalf("nil profiler report not empty: %+v", r)
	}
}

// TestPhases: phase brackets measure the injected wall clock; without a
// wall clock Phase is a no-op so the report stays deterministic.
func TestPhases(t *testing.T) {
	var fake int64
	p := New(Options{Wall: func() int64 { fake += 1000; return fake }})
	p.Phase("simulate")
	p.Phase("report")
	r := p.Report()
	if r.Host == nil || len(r.Host.Phases) != 2 {
		t.Fatalf("phases missing: %+v", r.Host)
	}
	for _, ph := range r.Host.Phases {
		if ph.WallNs <= 0 {
			t.Fatalf("phase %q has no wall time", ph.Name)
		}
	}
	if r.Host.Phases[0].Name != "simulate" || r.Host.Phases[1].Name != "report" {
		t.Fatalf("phase order wrong: %+v", r.Host.Phases)
	}

	counts := New(Options{})
	counts.Phase("simulate")
	if r2 := counts.Report(); r2.Host != nil {
		t.Fatal("counts-only profiler grew a host section")
	}
}

// TestWallAttribution end-to-end through Attach: the per-component wall
// totals must come from the engine's dispatch accounting.
func TestWallAttribution(t *testing.T) {
	var fake int64
	p := New(Options{Wall: func() int64 { fake += 7; return fake }})
	eng := sim.NewEngine(1)
	p.Attach("a/c000/s00", "DCP", eng)
	eng.AtComp(1, sim.CompFabric, func() {})
	eng.AtComp(2, sim.CompCC, func() {})
	eng.Run(0)
	r := p.Report()
	if r.Host == nil {
		t.Fatal("no host section with wall clock")
	}
	if r.Host.WallNs[sim.CompFabric] != 7 || r.Host.WallNs[sim.CompCC] != 7 {
		t.Fatalf("wall attribution wrong: %v", r.Host.WallNs)
	}
	if r.Host.TotalWallNs != 14 {
		t.Fatalf("total wall = %d, want 14", r.Host.TotalWallNs)
	}
}
