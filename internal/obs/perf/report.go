package perf

import (
	"encoding/json"
	"fmt"
	"io"

	"dcpsim/internal/sim"
)

// SchemeRow is one transport scheme's aggregated attribution.
type SchemeRow struct {
	Scheme string
	Cells  int
	Events uint64
	Counts [sim.NumComps]uint64
}

// EngineHigh carries engine extremes across all cells: the high-water
// marks name the cell that hit them (ties keep the lexicographically
// smallest label, so the field is deterministic).
type EngineHigh struct {
	MaxHeapDepth   int
	MaxHeapCell    string
	MaxLive        int
	MaxLiveCell    string
	CancelledDrops uint64
}

// PhaseRow is one wall-clock phase bracket.
type PhaseRow struct {
	Name       string
	WallNs     int64
	AllocBytes uint64
}

// HostReport is the machine-varying half: wall attribution and phases.
type HostReport struct {
	TotalWallNs int64
	WallNs      [sim.NumComps]int64
	Phases      []PhaseRow
}

// Report is an aggregated attribution report. Everything outside Host is
// deterministic for a given seed.
type Report struct {
	Cells      int
	Schemes    int
	Events     uint64
	Attributed uint64
	Comps      [sim.NumComps]uint64
	PerScheme  []SchemeRow
	Engine     EngineHigh
	Host       *HostReport
}

// AttributedShare is the fraction of dispatched events attributed to a
// named (non-other) component.
func (r *Report) AttributedShare() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Attributed) / float64(r.Events)
}

// CompOrder lists components for rendering: named components in enum
// order, the unattributed bucket last. Exported so the campaign bundle
// diff renders its component-count matrices in the same order as every
// perf report.
func CompOrder() []sim.Comp {
	out := make([]sim.Comp, 0, sim.NumComps)
	for c := sim.CompOther + 1; c < sim.NumComps; c++ {
		out = append(out, c)
	}
	return append(out, sim.CompOther)
}

func share(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// jsonCompRow / jsonReport mirror Report with named component rows in a
// fixed order, so the JSON encoding is byte-stable.
type jsonCompRow struct {
	Comp   string  `json:"comp"`
	Events uint64  `json:"events"`
	Share  float64 `json:"share_pct"`
}

type jsonSchemeRow struct {
	Scheme string        `json:"scheme"`
	Cells  int           `json:"cells"`
	Events uint64        `json:"events"`
	Comps  []jsonCompRow `json:"comps"`
}

type jsonHostComp struct {
	Comp      string  `json:"comp"`
	WallNs    int64   `json:"wall_ns"`
	Share     float64 `json:"share_pct"`
	NsPerEvnt float64 `json:"ns_per_event"`
}

type jsonPhase struct {
	Name       string `json:"name"`
	WallNs     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

type jsonHost struct {
	TotalWallNs int64          `json:"total_wall_ns"`
	Comps       []jsonHostComp `json:"comps"`
	Phases      []jsonPhase    `json:"phases"`
}

type jsonReport struct {
	Cells          int             `json:"cells"`
	Schemes        int             `json:"schemes"`
	Events         uint64          `json:"events"`
	Attributed     uint64          `json:"attributed"`
	AttributedPct  float64         `json:"attributed_pct"`
	Comps          []jsonCompRow   `json:"comps"`
	PerScheme      []jsonSchemeRow `json:"per_scheme"`
	MaxHeapDepth   int             `json:"max_heap_depth"`
	MaxHeapCell    string          `json:"max_heap_cell"`
	MaxLive        int             `json:"max_live"`
	MaxLiveCell    string          `json:"max_live_cell"`
	CancelledDrops uint64          `json:"cancelled_drops"`
	Host           *jsonHost       `json:"host,omitempty"`
}

// JSON renders the report as indented, byte-stable JSON. The host section
// appears only when a wall clock was injected.
func (r *Report) JSON() ([]byte, error) {
	jr := jsonReport{
		Cells:          r.Cells,
		Schemes:        r.Schemes,
		Events:         r.Events,
		Attributed:     r.Attributed,
		AttributedPct:  share(r.Attributed, r.Events),
		MaxHeapDepth:   r.Engine.MaxHeapDepth,
		MaxHeapCell:    r.Engine.MaxHeapCell,
		MaxLive:        r.Engine.MaxLive,
		MaxLiveCell:    r.Engine.MaxLiveCell,
		CancelledDrops: r.Engine.CancelledDrops,
	}
	for _, c := range CompOrder() {
		jr.Comps = append(jr.Comps, jsonCompRow{Comp: c.String(), Events: r.Comps[c], Share: share(r.Comps[c], r.Events)})
	}
	for _, sr := range r.PerScheme {
		jsr := jsonSchemeRow{Scheme: sr.Scheme, Cells: sr.Cells, Events: sr.Events}
		for _, c := range CompOrder() {
			jsr.Comps = append(jsr.Comps, jsonCompRow{Comp: c.String(), Events: sr.Counts[c], Share: share(sr.Counts[c], sr.Events)})
		}
		jr.PerScheme = append(jr.PerScheme, jsr)
	}
	if r.Host != nil {
		h := &jsonHost{TotalWallNs: r.Host.TotalWallNs}
		for _, c := range CompOrder() {
			row := jsonHostComp{Comp: c.String(), WallNs: r.Host.WallNs[c],
				Share: share(uint64(max64(r.Host.WallNs[c], 0)), uint64(max64(r.Host.TotalWallNs, 0)))}
			if r.Comps[c] > 0 {
				row.NsPerEvnt = float64(r.Host.WallNs[c]) / float64(r.Comps[c])
			}
			h.Comps = append(h.Comps, row)
		}
		for _, ph := range r.Host.Phases {
			h.Phases = append(h.Phases, jsonPhase{Name: ph.Name, WallNs: ph.WallNs, AllocBytes: ph.AllocBytes})
		}
		jr.Host = h
	}
	return json.MarshalIndent(jr, "", "  ")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// errWriter folds the first write error; later writes become no-ops.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// WriteText renders the hierarchical human-readable report. The
// deterministic half is byte-stable for a given seed; the host half (only
// with a wall clock) is labelled machine-varying.
func (r *Report) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("perf profile: %d cells, %d schemes, %d events dispatched\n", r.Cells, r.Schemes, r.Events)
	ew.printf("attributed: %d/%d events (%.2f%%) to named components\n\n", r.Attributed, r.Events, share(r.Attributed, r.Events))

	ew.printf("%-10s %12s %8s\n", "component", "events", "share")
	for _, c := range CompOrder() {
		ew.printf("%-10s %12d %7.2f%%\n", c.String(), r.Comps[c], share(r.Comps[c], r.Events))
	}

	if len(r.PerScheme) > 0 {
		ew.printf("\nper-scheme events by component:\n")
		ew.printf("%-16s %6s %12s", "scheme", "cells", "events")
		for _, c := range CompOrder() {
			ew.printf(" %10s", c.String())
		}
		ew.printf("\n")
		for _, sr := range r.PerScheme {
			ew.printf("%-16s %6d %12d", sr.Scheme, sr.Cells, sr.Events)
			for _, c := range CompOrder() {
				ew.printf(" %10d", sr.Counts[c])
			}
			ew.printf("\n")
		}
	}

	ew.printf("\nengine: max heap %d (%s) · max live %d (%s) · cancelled drops %d (%.2f%% of dispatched)\n",
		r.Engine.MaxHeapDepth, r.Engine.MaxHeapCell, r.Engine.MaxLive, r.Engine.MaxLiveCell,
		r.Engine.CancelledDrops, share(r.Engine.CancelledDrops, r.Events))

	if h := r.Host; h != nil {
		ew.printf("\nhost wall-time (machine-varying; excluded from deterministic comparisons):\n")
		ew.printf("total in-dispatch wall: %.2f ms\n", float64(h.TotalWallNs)/1e6)
		ew.printf("%-10s %12s %8s %12s\n", "component", "wall_ms", "share", "ns/event")
		for _, c := range CompOrder() {
			var nsPer float64
			if r.Comps[c] > 0 {
				nsPer = float64(h.WallNs[c]) / float64(r.Comps[c])
			}
			ew.printf("%-10s %12.3f %7.2f%% %12.1f\n", c.String(),
				float64(h.WallNs[c])/1e6, share(uint64(max64(h.WallNs[c], 0)), uint64(max64(h.TotalWallNs, 0))), nsPer)
		}
		if len(h.Phases) > 0 {
			ew.printf("phases:\n")
			for _, ph := range h.Phases {
				ew.printf("  %-12s %10.2f ms %10.2f MB allocated\n", ph.Name, float64(ph.WallNs)/1e6, float64(ph.AllocBytes)/1e6)
			}
		}
	}
	return ew.err
}
