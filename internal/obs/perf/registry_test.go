package perf_test

import (
	"bytes"
	"strings"
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/obs"
	"dcpsim/internal/obs/flight"
	"dcpsim/internal/obs/perf"
)

// profiledIDs is a cheap cross-section of the registry: testbed sweeps,
// an ablation, and a fault scenario — every component in the taxonomy
// fires somewhere in this set.
func profiledIDs(t *testing.T) []exp.Experiment {
	t.Helper()
	var exps []exp.Experiment
	for _, id := range []string{"fig10", "ab-track", "fault-flap"} {
		e := exp.ByID(id)
		if e == nil {
			t.Fatalf("unknown experiment id %q", id)
		}
		exps = append(exps, *e)
	}
	return exps
}

func profiledRun(t *testing.T, workers int) (*perf.Report, string) {
	t.Helper()
	prof := perf.New(perf.Options{})
	cfg := exp.Config{Seed: 11, Scale: 0.02}.WithWorkers(workers)
	cfg.Hook = func(key exp.CellKey, s *exp.Sim) {
		prof.Attach(key.String(), s.Scheme, s.Eng)
	}
	results := exp.RunRegistry(cfg, profiledIDs(t))
	var tb strings.Builder
	for _, r := range results {
		tb.WriteString("### " + r.ID + "\n")
		for _, tab := range r.Tables {
			tb.WriteString(tab.String())
			tb.WriteString("\n")
		}
	}
	return prof.Report(), tb.String()
}

// TestRegistryAttribution is the acceptance check behind `dcpbench
// -profile`: on a real registry cross-section, ≥95% of dispatched events
// land in a named component, and the counts-only report is byte-identical
// across repeated runs and across worker counts.
func TestRegistryAttribution(t *testing.T) {
	r1, _ := profiledRun(t, 1)
	if r1.Events == 0 || r1.Cells == 0 {
		t.Fatal("profiled run dispatched nothing")
	}
	if got := r1.AttributedShare(); got < 0.95 {
		j, _ := r1.JSON()
		t.Fatalf("attributed share %.4f < 0.95:\n%s", got, j)
	}
	if r1.Schemes < 2 {
		t.Fatalf("expected multiple schemes, got %d", r1.Schemes)
	}

	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := profiledRun(t, 1)
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("profile report not byte-identical across identical runs")
	}

	r4, _ := profiledRun(t, 4)
	j4, err := r4.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j4) {
		t.Fatal("profile report depends on worker count")
	}

	var t1, t2 bytes.Buffer
	if err := r1.WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := r4.WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("text report depends on worker count")
	}
}

// TestProfiledBitIdentity: attaching the profiler — alone or alongside the
// flight-recorder checker — must not change simulation results. This
// extends the checked-vs-unchecked contract to the profiled path.
func TestProfiledBitIdentity(t *testing.T) {
	run := func(hook func(exp.CellKey, *exp.Sim)) string {
		cfg := exp.Config{Seed: 11, Scale: 0.02}.WithWorkers(1)
		cfg.Hook = hook
		results := exp.RunRegistry(cfg, profiledIDs(t))
		var tb strings.Builder
		for _, r := range results {
			for _, tab := range r.Tables {
				tb.WriteString(tab.String())
			}
		}
		return tb.String()
	}

	plain := run(nil)
	if plain == "" {
		t.Fatal("empty tables — comparison is vacuous")
	}

	prof := perf.New(perf.Options{})
	profiled := run(func(key exp.CellKey, s *exp.Sim) {
		prof.Attach(key.String(), s.Scheme, s.Eng)
	})
	if profiled != plain {
		t.Fatal("profiler attachment changed simulation output")
	}

	prof2 := perf.New(perf.Options{})
	var viol int64
	checkedProfiled := run(func(key exp.CellKey, s *exp.Sim) {
		tr := obs.NewTracer()
		tr.SetLimit(1)
		ck := flight.New(flight.Config{})
		tr.Tee(ck)
		s.Attach(tr, nil)
		prof2.Attach(key.String(), s.Scheme, s.Eng)
		viol += ck.Violations()
	})
	if checkedProfiled != plain {
		t.Fatal("checker+profiler attachment changed simulation output")
	}
	if viol != 0 {
		t.Fatalf("checker reported %d violations on the profiled run", viol)
	}
	if prof2.Report().Events != prof.Report().Events {
		t.Fatal("profiler counts differ with checker attached")
	}
}
