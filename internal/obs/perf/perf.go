// Package perf is the engine-dispatch profiler: it attaches sim.Prof
// accounting to every engine in a run and aggregates the per-component
// event counts (and, when a wall clock is injected, wall nanoseconds)
// into an attribution report — "where does an event-second go?".
//
// The report has two halves with different determinism guarantees. The
// deterministic half — per-component and per-scheme event counts, heap
// and live high-water marks, cancelled-drop churn — depends only on the
// seed and is byte-identical across hosts, runs, and worker counts. The
// host half — wall-time attribution, phase timings, allocation deltas —
// exists only when Options.Wall is non-nil and is explicitly labelled as
// machine-varying. The profiler itself never reads the host clock (the
// detcheck contract); callers inject one, exactly like obs.Metrics.
//
// A nil *Profiler is the disabled path: every method no-ops without
// allocating, mirroring the nil *Tracer / *Metrics discipline.
package perf

import (
	"runtime"
	"sort"
	"sync"

	"dcpsim/internal/sim"
)

// Options configures a Profiler.
type Options struct {
	// Wall, when non-nil, supplies monotonic wall-clock nanoseconds. It
	// enables per-component wall attribution and phase timing, and must be
	// safe for concurrent use when cells run on a worker pool.
	Wall func() int64
}

// cell is one profiled engine with its run identity.
type cell struct {
	label  string
	scheme string
	prof   *sim.Prof
	eng    *sim.Engine
}

// phase is one wall-clock phase bracket (only recorded with a wall clock).
type phase struct {
	name    string
	wallNs  int64
	allocB  uint64
	started bool
}

// Profiler aggregates dispatch profiles across the engines of a run.
// Attach is safe to call from worker goroutines (the parallel runner fires
// Config.Hook concurrently); each engine still writes its own *sim.Prof
// without synchronization, preserving the engines' single-goroutine
// ownership contract.
type Profiler struct {
	mu     sync.Mutex
	wall   func() int64
	cells  []cell
	phases []phase
}

// New returns a profiler. New(Options{}) profiles deterministic counts
// only; inject Options.Wall for host wall attribution.
func New(opt Options) *Profiler {
	return &Profiler{wall: opt.Wall}
}

// Attach hooks one engine: allocates its sim.Prof and registers the cell
// under label (its CellKey string) and scheme (the transport name). Call
// it from exp.Config.Hook before the cell runs. Nil-safe no-op.
func (p *Profiler) Attach(label, scheme string, eng *sim.Engine) {
	if p == nil || eng == nil {
		return
	}
	pr := &sim.Prof{Wall: p.wall}
	eng.AttachProf(pr)
	p.mu.Lock()
	p.cells = append(p.cells, cell{label: label, scheme: scheme, prof: pr, eng: eng})
	p.mu.Unlock()
}

// Cells returns the number of engines attached so far.
func (p *Profiler) Cells() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cells)
}

// Phase closes the previous phase (if any) and opens a new wall-clock
// bracket named name. Phases measure host time and allocation between
// marks, so they are recorded only when a wall clock was injected;
// without one (and on a nil profiler) Phase is a no-op, keeping the
// deterministic report free of host-varying data. Call EndPhases (or
// Report, which does it) to close the last bracket.
func (p *Profiler) Phase(name string) {
	if p == nil || p.wall == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closeLastLocked()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.phases = append(p.phases, phase{name: name, wallNs: p.wall(), allocB: ms.TotalAlloc, started: true})
}

// EndPhases closes the currently open phase bracket, if any.
func (p *Profiler) EndPhases() {
	if p == nil || p.wall == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closeLastLocked()
}

func (p *Profiler) closeLastLocked() {
	if n := len(p.phases); n > 0 && p.phases[n-1].started {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		ph := &p.phases[n-1]
		ph.wallNs = p.wall() - ph.wallNs
		ph.allocB = ms.TotalAlloc - ph.allocB
		ph.started = false
	}
}

// Report aggregates everything attached so far. Cells are sorted by label
// before aggregation so the report is independent of worker scheduling
// order. The returned report's deterministic half is byte-stable for a
// given seed; the Host half is present only with an injected wall clock.
func (p *Profiler) Report() *Report {
	r := &Report{}
	if p == nil {
		return r
	}
	p.mu.Lock()
	p.closeLastLocked()
	cells := make([]cell, len(p.cells))
	copy(cells, p.cells)
	phases := make([]phase, len(p.phases))
	copy(phases, p.phases)
	wall := p.wall
	p.mu.Unlock()

	sort.Slice(cells, func(i, j int) bool { return cells[i].label < cells[j].label })

	var total sim.Prof
	perScheme := map[string]*SchemeRow{}
	for _, c := range cells {
		for i := range c.prof.Counts {
			total.Counts[i] += c.prof.Counts[i]
			total.WallNs[i] += c.prof.WallNs[i]
		}
		sr := perScheme[c.scheme]
		if sr == nil {
			sr = &SchemeRow{Scheme: c.scheme}
			perScheme[c.scheme] = sr
		}
		sr.Cells++
		for i := sim.Comp(0); i < sim.NumComps; i++ {
			sr.Counts[i] += c.prof.Counts[i]
			sr.Events += c.prof.Counts[i]
		}
		// Engine extremes: strict > keeps the first (lexicographically
		// smallest, post-sort) label on ties — deterministic.
		if c.eng.MaxHeapDepth > r.Engine.MaxHeapDepth {
			r.Engine.MaxHeapDepth = c.eng.MaxHeapDepth
			r.Engine.MaxHeapCell = c.label
		}
		if c.eng.MaxLive > r.Engine.MaxLive {
			r.Engine.MaxLive = c.eng.MaxLive
			r.Engine.MaxLiveCell = c.label
		}
		r.Engine.CancelledDrops += c.eng.CancelledDrops
	}

	r.Cells = len(cells)
	r.Events = total.Total()
	r.Attributed = r.Events - total.Counts[sim.CompOther]
	for i := sim.Comp(0); i < sim.NumComps; i++ {
		r.Comps[i] = total.Counts[i]
	}
	schemes := make([]string, 0, len(perScheme))
	for s := range perScheme {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, s := range schemes {
		r.PerScheme = append(r.PerScheme, *perScheme[s])
	}
	r.Schemes = len(r.PerScheme)

	if wall != nil {
		h := &HostReport{}
		for i := sim.Comp(0); i < sim.NumComps; i++ {
			h.WallNs[i] = total.WallNs[i]
			h.TotalWallNs += total.WallNs[i]
		}
		for _, ph := range phases {
			h.Phases = append(h.Phases, PhaseRow{Name: ph.name, WallNs: ph.wallNs, AllocBytes: ph.allocB})
		}
		r.Host = h
	}
	return r
}
