package obs

import (
	"io"
	"sort"
	"strconv"

	"dcpsim/internal/packet"
)

// metricsPID is the synthetic process id hosting metrics counter tracks in
// a Chrome trace (real node ids are small non-negative integers).
const metricsPID = 1_000_000

// WriteChromeTrace writes events (and, when m is non-nil, its sampled
// series as counter tracks) in the Chrome trace-event JSON format, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Layout: one process
// per fabric node (switch or host), one thread per egress port (tid 0 is
// the node itself: host events and portless events), instant events for the
// packet lifecycle, and one counter track per metrics series under a
// synthetic "metrics" process. Timestamps are simulated microseconds.
// Output is byte-stable for a given input.
func WriteChromeTrace(w io.Writer, events []Event, m *Metrics) error {
	type track struct {
		node packet.NodeID
		port int32
	}
	seen := make(map[track]bool)
	var tracks []track
	for i := range events {
		tr := track{events[i].Node, events[i].Port}
		if tr.port < 0 {
			tr.port = -1
		}
		if !seen[tr] {
			seen[tr] = true
			tracks = append(tracks, tr)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].node != tracks[j].node {
			return tracks[i].node < tracks[j].node
		}
		return tracks[i].port < tracks[j].port
	})

	var b []byte
	flush := func() error {
		if len(b) == 0 {
			return nil
		}
		_, err := w.Write(b)
		b = b[:0]
		return err
	}

	b = append(b, `{"displayTimeUnit":"ms","traceEvents":[`...)
	first := true
	comma := func() {
		if !first {
			b = append(b, ',')
		}
		first = false
	}

	// Metadata: name each node's process and each port's thread.
	lastNode := packet.NodeID(-1 << 30)
	for _, tr := range tracks {
		if tr.node != lastNode {
			lastNode = tr.node
			comma()
			b = append(b, `{"name":"process_name","ph":"M","pid":`...)
			b = strconv.AppendInt(b, int64(tr.node), 10)
			b = append(b, `,"args":{"name":"node`...)
			b = strconv.AppendInt(b, int64(tr.node), 10)
			b = append(b, `"}}`...)
		}
		comma()
		b = append(b, `{"name":"thread_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(tr.node), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(tr.port)+1, 10)
		b = append(b, `,"args":{"name":"`...)
		if tr.port < 0 {
			b = append(b, "endpoint"...)
		} else {
			b = append(b, "eg"...)
			b = strconv.AppendInt(b, int64(tr.port), 10)
		}
		b = append(b, `"}}`...)
	}
	if m != nil && len(m.Series()) > 0 {
		comma()
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, metricsPID, 10)
		b = append(b, `,"args":{"name":"metrics"}}`...)
	}

	// Instant events, one per trace record.
	for i := range events {
		e := &events[i]
		port := e.Port
		if port < 0 {
			port = -1
		}
		comma()
		b = append(b, `{"name":"`...)
		b = append(b, e.Type.String()...)
		b = append(b, `","cat":"pkt","ph":"i","s":"t","ts":`...)
		b = strconv.AppendFloat(b, e.At.Micros(), 'f', 6, 64)
		b = append(b, `,"pid":`...)
		b = strconv.AppendInt(b, int64(e.Node), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(port)+1, 10)
		b = append(b, `,"args":{"flow":`...)
		b = strconv.AppendUint(b, e.Flow, 10)
		b = append(b, `,"psn":`...)
		b = strconv.AppendUint(b, uint64(e.PSN), 10)
		b = append(b, `,"msn":`...)
		b = strconv.AppendUint(b, uint64(e.MSN), 10)
		b = append(b, `,"size":`...)
		b = strconv.AppendInt(b, int64(e.Size), 10)
		b = append(b, `,"aux":`...)
		b = strconv.AppendInt(b, e.Aux, 10)
		if e.Note != "" {
			b = append(b, `,"note":`...)
			b = strconv.AppendQuote(b, e.Note)
		}
		b = append(b, "}}"...)
		if len(b) > 1<<16 {
			if err := flush(); err != nil {
				return err
			}
		}
	}

	// Counter tracks from the metrics registry.
	if m != nil {
		times := m.Times()
		for _, s := range m.Series() {
			vals := s.Values()
			for i, t := range times {
				if i >= len(vals) || vals[i] != vals[i] { // NaN: not sampled
					continue
				}
				comma()
				b = append(b, `{"name":`...)
				b = strconv.AppendQuote(b, s.Name)
				b = append(b, `,"ph":"C","ts":`...)
				b = strconv.AppendFloat(b, t.Micros(), 'f', 6, 64)
				b = append(b, `,"pid":`...)
				b = strconv.AppendInt(b, metricsPID, 10)
				b = append(b, `,"args":{"v":`...)
				b = appendFloat(b, vals[i], "0")
				b = append(b, "}}"...)
				if len(b) > 1<<16 {
					if err := flush(); err != nil {
						return err
					}
				}
			}
		}
	}

	b = append(b, "]}\n"...)
	return flush()
}
