package obs

import (
	"io"
	"math"
	"strconv"

	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// DefaultMetricsInterval is the probe cadence when none is configured.
const DefaultMetricsInterval = 10 * units.Microsecond

// Series is one sampled time series in columnar form. Samples line up with
// Metrics.Times; a series registered after sampling began is padded with
// NaN for the ticks it missed.
type Series struct {
	Name string
	fn   func() float64
	vals []float64
}

// Values returns the sampled values (NaN = not yet registered at that
// tick). The slice is the series' backing store; callers must not modify
// it.
func (s *Series) Values() []float64 { return s.vals }

// Metrics is a registry of gauges sampled at a fixed simulated-time
// cadence by a self-rescheduling probe event. The probe reschedules only
// while other events remain pending, so an observed run still terminates:
// the probe chain never keeps the event queue alive on its own.
//
// Like Tracer, a nil *Metrics no-ops on every method, and gauge functions
// must only read simulation state, never mutate it.
type Metrics struct {
	eng      *sim.Engine
	interval units.Time
	times    []units.Time
	series   []*Series
	byName   map[string]*Series
	started  bool

	// WallNanos, when set, supplies monotonic wall-clock nanoseconds for
	// the engine.wall_ms_per_sim_s self-profiling gauge. The obs package
	// never reads the host clock itself (detcheck); commands that want
	// wall-clock profiling inject it with their own lint allowance.
	WallNanos func() int64
}

// NewMetrics returns a registry sampling at the given cadence (0 or
// negative picks DefaultMetricsInterval).
func NewMetrics(eng *sim.Engine, interval units.Time) *Metrics {
	if interval <= 0 {
		interval = DefaultMetricsInterval
	}
	return &Metrics{eng: eng, interval: interval, byName: make(map[string]*Series)}
}

// Interval returns the probe cadence.
func (m *Metrics) Interval() units.Time {
	if m == nil {
		return 0
	}
	return m.interval
}

// Gauge registers fn to be sampled each probe tick under name.
// Re-registering a name replaces its function (the existing samples stay).
func (m *Metrics) Gauge(name string, fn func() float64) {
	if m == nil {
		return
	}
	if s := m.byName[name]; s != nil {
		s.fn = fn
		return
	}
	s := &Series{Name: name, fn: fn}
	m.series = append(m.series, s)
	m.byName[name] = s
}

// RatePerSec registers a gauge that reports the per-second derivative of a
// cumulative counter fn between consecutive probe ticks.
func (m *Metrics) RatePerSec(name string, fn func() float64) {
	if m == nil {
		return
	}
	var last float64
	var lastAt units.Time
	primed := false
	eng := m.eng
	m.Gauge(name, func() float64 {
		now := eng.Now()
		v := fn()
		var r float64
		if primed && now > lastAt {
			r = (v - last) / (now - lastAt).Seconds()
		}
		last, lastAt, primed = v, now, true
		return r
	})
}

// ProfileEngine registers the engine self-profiling gauges: cumulative
// events fired and their rate, current and peak heap depth, cancelled-event
// churn, and — when WallNanos is injected — wall-clock milliseconds spent
// per simulated second.
func (m *Metrics) ProfileEngine() {
	if m == nil {
		return
	}
	eng := m.eng
	m.Gauge("engine.events_executed", func() float64 { return float64(eng.Executed) })
	m.RatePerSec("engine.events_per_sim_s", func() float64 { return float64(eng.Executed) })
	m.Gauge("engine.heap_depth", func() float64 { return float64(eng.Pending()) })
	m.Gauge("engine.max_heap_depth", func() float64 { return float64(eng.MaxHeapDepth) })
	m.Gauge("engine.cancelled_drops", func() float64 { return float64(eng.CancelledDrops) })
	if m.WallNanos != nil {
		wall := m.WallNanos
		var lastWall int64
		var lastAt units.Time
		primed := false
		m.Gauge("engine.wall_ms_per_sim_s", func() float64 {
			now := eng.Now()
			w := wall()
			var r float64
			if primed && now > lastAt {
				r = float64(w-lastWall) / 1e6 / (now - lastAt).Seconds()
			}
			lastWall, lastAt, primed = w, now, true
			return r
		})
	}
}

// Start schedules the first probe tick. Idempotent; call after the gauges
// that should see the first sample are registered (late registrations are
// NaN-padded).
func (m *Metrics) Start() {
	if m == nil || m.started {
		return
	}
	m.started = true
	m.eng.AfterComp(m.interval, sim.CompProbe, m.tick)
}

func (m *Metrics) tick() {
	m.times = append(m.times, m.eng.Now())
	for _, s := range m.series {
		for len(s.vals) < len(m.times)-1 {
			s.vals = append(s.vals, math.NaN())
		}
		s.vals = append(s.vals, s.fn())
	}
	// Reschedule only while other live work is pending: with this tick
	// already popped, PendingActive()==0 means everything left is cancelled
	// churn or nothing at all — the probe would be keeping the simulation
	// alive by itself. Stop, so Engine.Run(0) still terminates at the last
	// real event rather than chasing a lingering cancelled timer.
	if m.eng.PendingActive() > 0 {
		m.eng.AfterComp(m.interval, sim.CompProbe, m.tick)
	}
}

// Samples returns the number of probe ticks taken so far.
func (m *Metrics) Samples() int {
	if m == nil {
		return 0
	}
	return len(m.times)
}

// Times returns the tick timestamps. Callers must not modify the slice.
func (m *Metrics) Times() []units.Time {
	if m == nil {
		return nil
	}
	return m.times
}

// Series returns the registered series in registration order. Callers must
// not modify the slice.
func (m *Metrics) Series() []*Series {
	if m == nil {
		return nil
	}
	return m.series
}

// Lookup returns the named series, or nil.
func (m *Metrics) Lookup(name string) *Series {
	if m == nil {
		return nil
	}
	return m.byName[name]
}

// appendFloat renders v for CSV/JSON: NaN becomes empty/null, integers
// print without exponent, everything else in compact 'g' form.
func appendFloat(b []byte, v float64, nan string) []byte {
	if math.IsNaN(v) {
		return append(b, nan...)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// WriteCSV writes the sampled series as CSV: a time_us column followed by
// one column per series in registration order. Not-yet-registered samples
// render as empty cells.
func (m *Metrics) WriteCSV(w io.Writer) error {
	if m == nil {
		return nil
	}
	var b []byte
	b = append(b, "time_us"...)
	for _, s := range m.series {
		b = append(b, ',')
		b = append(b, s.Name...)
	}
	b = append(b, '\n')
	for i, t := range m.times {
		b = strconv.AppendFloat(b, t.Micros(), 'f', 3, 64)
		for _, s := range m.series {
			b = append(b, ',')
			if i < len(s.vals) {
				b = appendFloat(b, s.vals[i], "")
			}
		}
		b = append(b, '\n')
		if len(b) > 1<<16 {
			if _, err := w.Write(b); err != nil {
				return err
			}
			b = b[:0]
		}
	}
	_, err := w.Write(b)
	return err
}

// WriteJSON writes the sampled series as one JSON object with a fixed
// field order: {"interval_us":…,"times_us":[…],"series":[{"name":…,
// "values":[…]},…]}. NaN samples render as null.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		return nil
	}
	var b []byte
	b = append(b, `{"interval_us":`...)
	b = strconv.AppendFloat(b, m.interval.Micros(), 'g', -1, 64)
	b = append(b, `,"times_us":[`...)
	for i, t := range m.times {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendFloat(b, t.Micros(), 'f', 3, 64)
	}
	b = append(b, `],"series":[`...)
	for si, s := range m.series {
		if si > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, s.Name)
		b = append(b, `,"values":[`...)
		for i := range m.times {
			if i > 0 {
				b = append(b, ',')
			}
			if i < len(s.vals) {
				b = appendFloat(b, s.vals[i], "null")
			} else {
				b = append(b, "null"...)
			}
		}
		b = append(b, "]}"...)
		if len(b) > 1<<16 {
			if _, err := w.Write(b); err != nil {
				return err
			}
			b = b[:0]
		}
	}
	b = append(b, "]}\n"...)
	_, err := w.Write(b)
	return err
}
