// Package obs is the observability layer: a typed trace sink for
// packet-lifecycle, fault and congestion-control events (package obs
// timestamps everything with simulated time) plus a time-series metrics
// registry sampled by a deterministic probe scheduler (metrics.go).
//
// The determinism contract: sinks observe, they never mutate simulation
// state, draw randomness, or read the wall clock — so a run with tracing
// attached is bit-identical to the same seed without it. The zero-overhead
// contract: every hook in the hot path is a nil *Tracer / *Metrics check;
// all methods are nil-safe and the disabled path performs no allocation
// (enforced by TestDisabledHooksAllocationFree).
package obs

import (
	"io"
	"strconv"

	"dcpsim/internal/packet"
	"dcpsim/internal/units"
)

// EventType classifies one trace event.
type EventType uint8

// The event taxonomy. Packet-lifecycle events follow one DCP data packet
// through loss and recovery: EvEnqueue (switch egress data queue), EvTrim
// (payload removed, HO packet born), EvHOBounce (receiver turned the HO
// packet around), EvHOReturn (HO packet back at the sender; RetransQ push),
// EvRetransmit (CC-regulated resend), EvDeliver (data arrived at the
// destination NIC). EvTimeout / EvEpochFallback are the coarse-grained
// fallback path (§4.5). The remainder cover drops, ECN/CC signals, PFC
// pause, fault-plan events and flow lifecycle.
const (
	EvFlowStart EventType = iota
	EvEnqueue
	EvECNMark
	EvTrim
	EvDataDrop
	EvAckDrop
	EvHOEnqueue
	EvHODrop
	EvHOBounce
	EvHOReturn
	EvRetransmit
	EvDeliver
	EvTimeout
	EvEpochFallback
	EvCCRate
	EvPause
	EvFault
	EvFlowDone

	// The flight-recorder extension (PR 4): events that disambiguate the
	// causal recovery chain. EvSend is the first (non-retransmitted)
	// transmission of a PSN; EvRQFetch is one RetransQ entry completing its
	// PCIe fetch (Aux = retry epoch of the entry); EvPlace is the DCP
	// receiver accepting a payload and counting it (Aux packs
	// epoch<<32 | counter-after); EvMsgComplete is the per-message counter
	// reaching the message's packet total (Aux = total); EvEMSNAdv is the
	// receiver's cumulative eMSN advancing (Aux = new eMSN).
	EvSend
	EvRQFetch
	EvPlace
	EvMsgComplete
	EvEMSNAdv

	// NumEventTypes bounds the enum (for fixed-size count arrays).
	NumEventTypes
)

func (t EventType) String() string {
	switch t {
	case EvFlowStart:
		return "flow-start"
	case EvEnqueue:
		return "enqueue"
	case EvECNMark:
		return "ecn-mark"
	case EvTrim:
		return "trim"
	case EvDataDrop:
		return "data-drop"
	case EvAckDrop:
		return "ack-drop"
	case EvHOEnqueue:
		return "ho-enqueue"
	case EvHODrop:
		return "ho-drop"
	case EvHOBounce:
		return "ho-bounce"
	case EvHOReturn:
		return "ho-return"
	case EvRetransmit:
		return "retransmit"
	case EvDeliver:
		return "deliver"
	case EvTimeout:
		return "timeout"
	case EvEpochFallback:
		return "epoch-fallback"
	case EvCCRate:
		return "cc-rate"
	case EvPause:
		return "pause"
	case EvFault:
		return "fault"
	case EvFlowDone:
		return "flow-done"
	case EvSend:
		return "send"
	case EvRQFetch:
		return "rq-fetch"
	case EvPlace:
		return "place"
	case EvMsgComplete:
		return "msg-complete"
	case EvEMSNAdv:
		return "emsn-adv"
	default:
		return "event(" + strconv.Itoa(int(t)) + ")"
	}
}

// Event is one trace record. Node/Port locate it in the fabric (Port is a
// switch egress index, -1 at hosts or when not applicable); Aux carries a
// per-type detail: queue depth after an enqueue, RetransQ depth on
// EvHOReturn, retry epoch on EvRetransmit/EvEpochFallback, rate in bits
// per second on EvCCRate, flow bytes on EvFlowStart/EvFlowDone.
type Event struct {
	At   units.Time
	Type EventType
	Node packet.NodeID
	Port int32
	Flow uint64
	PSN  uint32
	MSN  uint32
	Size int32
	Aux  int64
	Note string
}

// DefaultEventLimit caps the in-memory event buffer (~64 MB of events).
// Overflow is counted, never silent: see Tracer.Dropped.
const DefaultEventLimit = 1 << 20

// Sink receives every event the tracer emits, online, in emission order.
// Sinks are bound by the same determinism contract as the tracer itself:
// they observe, they never mutate simulation state, draw randomness, or
// read the wall clock. The event pointer is only valid for the duration of
// the call; a sink that retains the event must copy it.
type Sink interface {
	OnEvent(e *Event)
}

// Tracer buffers trace events in memory and optionally streams each one as
// a JSON line while the simulation runs. The zero value is not useful; a
// nil *Tracer is: every method no-ops, so instrumented code holds a nil
// pointer when tracing is off.
type Tracer struct {
	events  []Event
	limit   int
	dropped uint64
	jsonl   io.Writer
	buf     []byte
	sinks   []Sink
	// scratch is the per-emit copy handed to sinks: passing a pointer to a
	// tracer-owned field (rather than &e) keeps the Event parameter from
	// escaping, so the disabled-hook path stays allocation-free.
	scratch Event
}

// NewTracer returns an empty tracer with the default event limit.
func NewTracer() *Tracer { return &Tracer{limit: DefaultEventLimit} }

// SetLimit bounds the in-memory buffer to n events; events beyond it are
// counted in Dropped (they still reach the JSONL stream, which has no
// limit).
func (t *Tracer) SetLimit(n int) {
	if t != nil && n > 0 {
		t.limit = n
	}
}

// StreamJSONL makes every subsequent event also write one JSON line to w.
func (t *Tracer) StreamJSONL(w io.Writer) {
	if t != nil {
		t.jsonl = w
	}
}

// Tee attaches an online sink. Sinks see every subsequent event — like the
// JSONL stream, they are not bounded by the in-memory buffer limit, so a
// checker can watch a long run with SetLimit(1) keeping memory flat.
func (t *Tracer) Tee(s Sink) {
	if t != nil && s != nil {
		t.sinks = append(t.sinks, s)
	}
}

// Emit records one event.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if len(t.events) < t.limit {
		t.events = append(t.events, e)
	} else {
		t.dropped++
	}
	if t.jsonl != nil {
		t.buf = appendEventJSON(t.buf[:0], &e)
		t.buf = append(t.buf, '\n')
		t.jsonl.Write(t.buf)
	}
	if len(t.sinks) > 0 {
		t.scratch = e
		for _, s := range t.sinks {
			s.OnEvent(&t.scratch)
		}
	}
}

// Packet records a packet-lifecycle event at a fabric element.
func (t *Tracer) Packet(at units.Time, typ EventType, node packet.NodeID, port int32, p *packet.Packet, aux int64) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, Type: typ, Node: node, Port: port,
		Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: aux})
}

// Flow records a flow-scoped event with no packet in hand (timeouts,
// epoch fallbacks, flow start/done).
func (t *Tracer) Flow(at units.Time, typ EventType, node packet.NodeID, flow uint64, aux int64) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, Type: typ, Node: node, Port: -1, Flow: flow, Aux: aux})
}

// CCRate records a congestion-control rate change (Aux = bits per second).
func (t *Tracer) CCRate(at units.Time, node packet.NodeID, flow uint64, r units.Rate) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, Type: EvCCRate, Node: node, Port: -1, Flow: flow, Aux: int64(r.BitsPerSec())})
}

// Fault records a fault-plan event firing.
func (t *Tracer) Fault(at units.Time, note string) {
	if t == nil {
		return
	}
	t.Emit(Event{At: at, Type: EvFault, Node: -1, Port: -1, Note: note})
}

// Events returns the buffered events in emission order. The slice is the
// tracer's own backing store; callers must not modify it.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events overflowed the buffer limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// WriteJSONL writes every buffered event as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	var buf []byte
	for i := range t.events {
		buf = appendEventJSON(buf[:0], &t.events[i])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// AppendEventJSON renders e as a compact JSON object with a fixed field
// order, byte-stable across runs — the same encoding the JSONL stream
// uses, exported for consumers embedding events in larger documents (the
// flight recorder's autopsy report).
func AppendEventJSON(b []byte, e *Event) []byte { return appendEventJSON(b, e) }

// appendEventJSON renders e as a compact JSON object. Field order is fixed
// so output is byte-stable across runs.
func appendEventJSON(b []byte, e *Event) []byte {
	b = append(b, `{"t_ps":`...)
	b = strconv.AppendInt(b, e.At.Picos(), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Type.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"port":`...)
	b = strconv.AppendInt(b, int64(e.Port), 10)
	b = append(b, `,"flow":`...)
	b = strconv.AppendUint(b, e.Flow, 10)
	b = append(b, `,"psn":`...)
	b = strconv.AppendUint(b, uint64(e.PSN), 10)
	b = append(b, `,"msn":`...)
	b = strconv.AppendUint(b, uint64(e.MSN), 10)
	b = append(b, `,"size":`...)
	b = strconv.AppendInt(b, int64(e.Size), 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendInt(b, e.Aux, 10)
	if e.Note != "" {
		b = append(b, `,"note":`...)
		b = strconv.AppendQuote(b, e.Note)
	}
	return append(b, '}')
}

// TypeCount pairs an event type with its occurrence count.
type TypeCount struct {
	Type EventType
	N    int64
}

// CountByType tallies events per type, returned in EventType order with
// zero-count types omitted — a deterministic summary (no map iteration).
func CountByType(events []Event) []TypeCount {
	var counts [NumEventTypes]int64
	for i := range events {
		if t := events[i].Type; t < NumEventTypes {
			counts[t]++
		}
	}
	var out []TypeCount
	for t := EventType(0); t < NumEventTypes; t++ {
		if counts[t] > 0 {
			out = append(out, TypeCount{Type: t, N: counts[t]})
		}
	}
	return out
}

// RetransChains counts completed trim → HO-bounce/HO-return → retransmit
// sequences per (flow, PSN): the lifecycle signature of DCP's HO-based
// recovery. A switch configured for direct HO return skips the receiver
// bounce, so either notification event advances the chain.
func RetransChains(events []Event) int {
	type key struct {
		flow uint64
		psn  uint32
	}
	stage := make(map[key]uint8)
	n := 0
	for i := range events {
		e := &events[i]
		k := key{e.Flow, e.PSN}
		switch e.Type {
		case EvTrim:
			if stage[k] == 0 {
				stage[k] = 1
			}
		case EvHOBounce, EvHOReturn:
			if stage[k] == 1 {
				stage[k] = 2
			}
		case EvRetransmit:
			if stage[k] == 2 {
				delete(stage, k)
				n++
			}
		}
	}
	return n
}
