package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

func TestNilSinksAreSafe(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	p := &packet.Packet{FlowID: 1, PSN: 2, MSN: 3, Size: 57}
	tr.Emit(Event{Type: EvTrim})
	tr.Packet(0, EvEnqueue, 1, 0, p, 0)
	tr.Flow(0, EvFlowStart, 1, 1, 0)
	tr.CCRate(0, 1, 1, units.Rate(100))
	tr.Fault(0, "x")
	tr.SetLimit(10)
	tr.StreamJSONL(&bytes.Buffer{})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must report empty")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	m.Gauge("x", func() float64 { return 0 })
	m.RatePerSec("y", func() float64 { return 0 })
	m.ProfileEngine()
	m.Start()
	if m.Samples() != 0 || m.Times() != nil || m.Series() != nil || m.Lookup("x") != nil || m.Interval() != 0 {
		t.Fatal("nil metrics must report empty")
	}
	if err := m.WriteCSV(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerLimitAndDropped(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	var jsonl bytes.Buffer
	tr.StreamJSONL(&jsonl)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{At: units.Time(i), Type: EvEnqueue, Flow: uint64(i)})
	}
	if tr.Len() != 2 {
		t.Fatalf("buffered %d events, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped %d events, want 3", tr.Dropped())
	}
	// The JSONL stream has no limit: all 5 events reach it.
	if n := strings.Count(jsonl.String(), "\n"); n != 5 {
		t.Fatalf("JSONL stream has %d lines, want 5", n)
	}
}

func TestWriteJSONLMatchesStream(t *testing.T) {
	build := func(stream *bytes.Buffer) *Tracer {
		tr := NewTracer()
		if stream != nil {
			tr.StreamJSONL(stream)
		}
		tr.Emit(Event{At: 1250, Type: EvTrim, Node: 3, Port: 2, Flow: 9, PSN: 100, MSN: 4, Size: 57, Aux: 4096})
		tr.Emit(Event{At: 2500, Type: EvFault, Node: -1, Port: -1, Note: `linkdown "cross0"`})
		return tr
	}
	var streamed bytes.Buffer
	tr := build(&streamed)
	var batch bytes.Buffer
	if err := build(nil).WriteJSONL(&batch); err != nil {
		t.Fatal(err)
	}
	if streamed.String() != batch.String() {
		t.Fatalf("stream/batch mismatch:\n%s\nvs\n%s", streamed.String(), batch.String())
	}
	want := `{"t_ps":1250,"ev":"trim","node":3,"port":2,"flow":9,"psn":100,"msn":4,"size":57,"aux":4096}` + "\n"
	if got := strings.SplitAfter(batch.String(), "\n")[0]; got != want {
		t.Fatalf("JSONL line:\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(batch.String(), `"note":"linkdown \"cross0\""`) {
		t.Fatalf("note not quoted: %s", batch.String())
	}
	_ = tr
}

func TestEventTypeNamesDistinct(t *testing.T) {
	seen := make(map[string]EventType)
	for ty := EventType(0); ty < NumEventTypes; ty++ {
		name := ty.String()
		if strings.HasPrefix(name, "event(") {
			t.Fatalf("type %d has no name", ty)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("types %d and %d share name %q", prev, ty, name)
		}
		seen[name] = ty
	}
}

func TestCountByType(t *testing.T) {
	events := []Event{
		{Type: EvRetransmit}, {Type: EvTrim}, {Type: EvTrim}, {Type: EvFlowStart},
	}
	got := CountByType(events)
	want := []TypeCount{{EvFlowStart, 1}, {EvTrim, 2}, {EvRetransmit, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRetransChains(t *testing.T) {
	f := func(typ EventType, flow uint64, psn uint32) Event {
		return Event{Type: typ, Flow: flow, PSN: psn}
	}
	cases := []struct {
		name   string
		events []Event
		want   int
	}{
		{"full chain via receiver bounce", []Event{
			f(EvTrim, 1, 10), f(EvHOBounce, 1, 10), f(EvHOReturn, 1, 10), f(EvRetransmit, 1, 10),
		}, 1},
		{"direct HO return (no bounce)", []Event{
			f(EvTrim, 1, 10), f(EvHOReturn, 1, 10), f(EvRetransmit, 1, 10),
		}, 1},
		{"retransmit without trim is not a chain", []Event{
			f(EvRetransmit, 1, 10), f(EvTimeout, 1, 10),
		}, 0},
		{"trim without retransmit is incomplete", []Event{
			f(EvTrim, 1, 10), f(EvHOBounce, 1, 10),
		}, 0},
		{"bounce before trim does not advance", []Event{
			f(EvHOBounce, 1, 10), f(EvRetransmit, 1, 10),
		}, 0},
		{"chains are per (flow, psn)", []Event{
			f(EvTrim, 1, 10), f(EvTrim, 2, 10), f(EvHOBounce, 1, 10), f(EvHOBounce, 2, 10),
			f(EvRetransmit, 2, 10), f(EvRetransmit, 1, 10),
		}, 2},
		{"second trim of same psn starts a new chain", []Event{
			f(EvTrim, 1, 10), f(EvHOBounce, 1, 10), f(EvRetransmit, 1, 10),
			f(EvTrim, 1, 10), f(EvHOBounce, 1, 10), f(EvRetransmit, 1, 10),
		}, 2},
	}
	for _, tc := range cases {
		if got := RetransChains(tc.events); got != tc.want {
			t.Errorf("%s: got %d chains, want %d", tc.name, got, tc.want)
		}
	}
}

func TestMetricsSamplingAndNaNPadding(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMetrics(eng, 10*units.Microsecond)
	ticks := 0
	m.Gauge("ticks", func() float64 { ticks++; return float64(ticks) })
	m.Start()
	m.Start() // idempotent: must not double-schedule
	// Keep the queue busy past three probe ticks, registering a second gauge
	// mid-run; its missed samples must come back NaN-padded.
	eng.At(25*units.Microsecond, func() {
		m.Gauge("late", func() float64 { return 7 })
	})
	eng.At(35*units.Microsecond, func() {})
	eng.Run(0)
	if m.Samples() != 4 {
		t.Fatalf("samples = %d, want 4 (10,20,30,40 µs)", m.Samples())
	}
	if ticks != 4 {
		t.Fatalf("gauge sampled %d times, want 4 (Start must be idempotent)", ticks)
	}
	late := m.Lookup("late").Values()
	if len(late) != 4 || !math.IsNaN(late[0]) || !math.IsNaN(late[1]) || late[2] != 7 || late[3] != 7 {
		t.Fatalf("late series = %v, want [NaN NaN 7 7]", late)
	}
	if got := m.Lookup("ticks").Values(); got[0] != 1 || got[3] != 4 {
		t.Fatalf("ticks series = %v", got)
	}
}

func TestProbeChainTerminates(t *testing.T) {
	// The probe must not keep the event queue alive by itself: once the rest
	// of the simulation drains, an unbounded Run returns instead of sampling
	// forever.
	eng := sim.NewEngine(1)
	m := NewMetrics(eng, units.Microsecond)
	m.Gauge("x", func() float64 { return 1 })
	m.Start()
	eng.At(units.Time(3500)*units.Nanosecond, func() {})
	eng.Run(0)
	if eng.Pending() != 0 {
		t.Fatalf("probe kept %d events pending after drain", eng.Pending())
	}
	// Ticks at 1,2,3 µs run before the 3.5 µs event; the 4 µs tick fires
	// after it, sees nothing pending, and stops rescheduling.
	if m.Samples() != 4 {
		t.Fatalf("samples = %d, want 4", m.Samples())
	}
}

func TestRatePerSec(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMetrics(eng, units.Microsecond)
	var counter float64
	m.RatePerSec("rate", func() float64 { return counter })
	m.Start()
	// 1000 units per microsecond = 1e9 units per second from tick 2 on.
	for i := 1; i <= 3; i++ {
		at := units.Scale(units.Microsecond, float64(i))
		eng.At(at-units.Nanosecond, func() { counter += 1000 })
	}
	eng.Run(0)
	vals := m.Lookup("rate").Values()
	if len(vals) < 3 {
		t.Fatalf("only %d samples", len(vals))
	}
	if vals[0] != 0 {
		t.Fatalf("first sample %v, want 0 (unprimed)", vals[0])
	}
	if math.Abs(vals[1]-1e9) > 1 || math.Abs(vals[2]-1e9) > 1 {
		t.Fatalf("rate samples %v, want ~1e9", vals[1:3])
	}
}

func TestMetricsWriteJSON(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMetrics(eng, units.Microsecond)
	m.Gauge("a", func() float64 { return 2.5 })
	m.Start()
	eng.At(units.Microsecond, func() {
		m.Gauge("b", func() float64 { return 1 })
	})
	eng.At(units.Scale(units.Microsecond, 2.5), func() {})
	eng.Run(0)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"interval_us":1,"times_us":[1.000,2.000,3.000],"series":[` +
		`{"name":"a","values":[2.5,2.5,2.5]},{"name":"b","values":[null,1,1]}]}` + "\n"
	if buf.String() != want {
		t.Fatalf("WriteJSON:\n got %s\nwant %s", buf.String(), want)
	}
}
