package flight_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dcpsim/internal/exp"
	"dcpsim/internal/faults"
	"dcpsim/internal/nic"
	"dcpsim/internal/obs"
	"dcpsim/internal/obs/flight"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/topo"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

func us(f float64) units.Time { return units.Scale(units.Microsecond, f) }

// findViolation returns the first retained violation of the given invariant
// or fails the test.
func findViolation(t *testing.T, r *flight.Report, inv string) *flight.Violation {
	t.Helper()
	for i := range r.Violations {
		if r.Violations[i].Invariant == inv {
			return &r.Violations[i]
		}
	}
	t.Fatalf("no %s violation; report has %d retained violations", inv, len(r.Violations))
	return nil
}

func hasStage(r *flight.Report, name string) *flight.StageLat {
	for i := range r.Stages {
		if r.Stages[i].Name == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// placeAux packs EvPlace's Aux: (epoch << 32) | receiver counter after the
// placement.
func placeAux(epoch, counter int64) int64 { return epoch<<32 | counter }

// TestSyntheticCleanRun drives a hand-written two-packet message through
// the checker: no violations, and the clean-delivery stage is sampled.
func TestSyntheticCleanRun(t *testing.T) {
	c := flight.New(flight.Config{})
	evs := []obs.Event{
		{At: us(0), Type: obs.EvFlowStart, Node: 0, Flow: 1, Aux: 8192},
		{At: us(1), Type: obs.EvSend, Node: 0, Flow: 1, PSN: 0, MSN: 0},
		{At: us(1.1), Type: obs.EvSend, Node: 0, Flow: 1, PSN: 1, MSN: 0},
		{At: us(3), Type: obs.EvDeliver, Node: 1, Flow: 1, PSN: 0, MSN: 0},
		{At: us(3), Type: obs.EvPlace, Node: 1, Flow: 1, PSN: 0, MSN: 0, Aux: placeAux(0, 1)},
		{At: us(3.2), Type: obs.EvDeliver, Node: 1, Flow: 1, PSN: 1, MSN: 0},
		{At: us(3.2), Type: obs.EvPlace, Node: 1, Flow: 1, PSN: 1, MSN: 0, Aux: placeAux(0, 2)},
		{At: us(3.2), Type: obs.EvMsgComplete, Node: 1, Flow: 1, MSN: 0, Aux: 2},
		{At: us(3.2), Type: obs.EvEMSNAdv, Node: 1, Flow: 1, MSN: 1, Aux: 1},
		{At: us(5), Type: obs.EvFlowDone, Node: 0, Flow: 1, Aux: 8192},
	}
	for i := range evs {
		c.OnEvent(&evs[i])
	}
	r := c.Finish()
	if r.TotalViolations != 0 {
		t.Fatalf("clean run reported %d violations: %+v", r.TotalViolations, r.Violations)
	}
	s := hasStage(r, "clean_send_to_deliver")
	if s == nil || s.Count != 2 {
		t.Fatalf("clean stage not sampled twice: %+v", r.Stages)
	}
	if len(r.Flows) != 1 || !r.Flows[0].Done || r.Flows[0].Bytes != 8192 {
		t.Fatalf("flow autopsy wrong: %+v", r.Flows)
	}
}

// TestSyntheticRecoveryChain walks one PSN through the full DCP recovery
// pipeline and checks every stage latency is sampled with the exact
// sim-time deltas.
func TestSyntheticRecoveryChain(t *testing.T) {
	c := flight.New(flight.Config{})
	evs := []obs.Event{
		{At: us(1), Type: obs.EvSend, Node: 0, Flow: 1, PSN: 4, MSN: 0},
		{At: us(2), Type: obs.EvTrim, Node: 2, Flow: 1, PSN: 4, MSN: 0},
		{At: us(3), Type: obs.EvHOBounce, Node: 1, Flow: 1, PSN: 4, MSN: 0},
		{At: us(5), Type: obs.EvHOReturn, Node: 0, Flow: 1, PSN: 4, MSN: 0},
		{At: us(6), Type: obs.EvRQFetch, Node: 0, Flow: 1, PSN: 4, MSN: 0},
		{At: us(7), Type: obs.EvRetransmit, Node: 0, Flow: 1, PSN: 4, MSN: 0, Aux: 0},
		{At: us(9), Type: obs.EvDeliver, Node: 1, Flow: 1, PSN: 4, MSN: 0},
		{At: us(9), Type: obs.EvPlace, Node: 1, Flow: 1, PSN: 4, MSN: 0, Aux: placeAux(0, 1)},
	}
	for i := range evs {
		c.OnEvent(&evs[i])
	}
	r := c.Finish()
	if r.TotalViolations != 0 {
		t.Fatalf("recovery chain flagged: %+v", r.Violations)
	}
	want := map[string]units.Time{
		"loss_to_ho_bounce":      us(1),
		"ho_bounce_to_ho_return": us(2),
		"ho_return_to_rq_fetch":  us(1),
		"rq_fetch_to_retransmit": us(1),
		"retransmit_to_deliver":  us(2),
		"loss_to_recovery":       us(7),
	}
	for name, d := range want {
		s := hasStage(r, name)
		if s == nil {
			t.Fatalf("stage %s not sampled", name)
		}
		// LogHist lower bounds: p50 within the relative error bound, never
		// above the true value.
		if s.Count != 1 || s.P50 > d || s.Max > d {
			t.Fatalf("stage %s: count=%d p50=%v max=%v want <= %v", name, s.Count, s.P50, s.Max, d)
		}
	}
	if hasStage(r, "clean_send_to_deliver") != nil {
		t.Fatal("recovered chain must not count as clean delivery")
	}
	f := r.Flows[0]
	names := flight.CountNames()
	got := map[string]int64{}
	for i, n := range names {
		got[n] = f.Counts[i]
	}
	for _, n := range []string{"sent", "trims", "ho_bounce", "ho_return", "rq_fetch", "retx", "deliver", "place"} {
		if got[n] != 1 {
			t.Fatalf("counter %s = %d, want 1 (%v)", n, got[n], got)
		}
	}
	if f.Recoveries != 1 || f.RecoverMax != us(7) {
		t.Fatalf("recovery aggregate: %+v", f)
	}
}

// TestSyntheticDuplicatePlacement replays a double delivery of one PSN: the
// exactly-once invariant and the counter-vs-set equivalence must both fire,
// each carrying a non-empty causal chain ending in the triggering event.
func TestSyntheticDuplicatePlacement(t *testing.T) {
	c := flight.New(flight.Config{})
	evs := []obs.Event{
		{At: us(1), Type: obs.EvSend, Node: 0, Flow: 9, PSN: 7, MSN: 0},
		{At: us(2), Type: obs.EvDeliver, Node: 1, Flow: 9, PSN: 7, MSN: 0},
		{At: us(2), Type: obs.EvPlace, Node: 1, Flow: 9, PSN: 7, MSN: 0, Aux: placeAux(0, 1)},
		{At: us(2.1), Type: obs.EvDeliver, Node: 1, Flow: 9, PSN: 7, MSN: 0},
		{At: us(2.1), Type: obs.EvPlace, Node: 1, Flow: 9, PSN: 7, MSN: 0, Aux: placeAux(0, 2)},
		{At: us(3), Type: obs.EvMsgComplete, Node: 1, Flow: 9, MSN: 0, Aux: 2},
	}
	for i := range evs {
		c.OnEvent(&evs[i])
	}
	r := c.Finish()
	dup := findViolation(t, r, flight.InvDuplicatePlacement)
	if len(dup.Chain) == 0 {
		t.Fatal("duplicate-placement violation has no causal chain")
	}
	last := dup.Chain[len(dup.Chain)-1]
	if last.Type != obs.EvPlace || last.PSN != 7 {
		t.Fatalf("chain must end with the triggering EvPlace, got %v", last.Type)
	}
	mm := findViolation(t, r, flight.InvCounterSetMismatch)
	if mm.Flow != 9 {
		t.Fatalf("mismatch on wrong flow: %+v", mm)
	}
}

// TestSyntheticOrphanFetch: a RetransQ fetch for a PSN no HO return named.
func TestSyntheticOrphanFetch(t *testing.T) {
	c := flight.New(flight.Config{})
	e := obs.Event{At: us(1), Type: obs.EvRQFetch, Node: 0, Flow: 2, PSN: 3, MSN: 0}
	c.OnEvent(&e)
	findViolation(t, c.Finish(), flight.InvOrphanRQFetch)
}

// TestSyntheticEpochInvariants: stale-epoch retransmission after a fallback
// bump, and a non-advancing fallback.
func TestSyntheticEpochInvariants(t *testing.T) {
	c := flight.New(flight.Config{})
	evs := []obs.Event{
		{At: us(1), Type: obs.EvEpochFallback, Node: 0, Flow: 3, PSN: 0, MSN: 0, Aux: 1},
		{At: us(2), Type: obs.EvRetransmit, Node: 0, Flow: 3, PSN: 5, MSN: 0, Aux: 0},
		{At: us(3), Type: obs.EvEpochFallback, Node: 0, Flow: 3, PSN: 0, MSN: 0, Aux: 1},
	}
	for i := range evs {
		c.OnEvent(&evs[i])
	}
	r := c.Finish()
	st := findViolation(t, r, flight.InvStaleEpochRetrans)
	if len(st.Chain) == 0 || st.Chain[len(st.Chain)-1].Type != obs.EvRetransmit {
		t.Fatalf("stale-epoch chain must end with the retransmit: %+v", st.Chain)
	}
	findViolation(t, r, flight.InvEpochRegression)
}

// TestSyntheticEMSN: a repeated eMSN advance is a regression, but a wrap
// through the 32-bit boundary is legal RFC 1982 sequence progress.
func TestSyntheticEMSN(t *testing.T) {
	c := flight.New(flight.Config{})
	a := obs.Event{At: us(1), Type: obs.EvEMSNAdv, Node: 1, Flow: 4, Aux: 5}
	b := obs.Event{At: us(2), Type: obs.EvEMSNAdv, Node: 1, Flow: 4, Aux: 5}
	c.OnEvent(&a)
	c.OnEvent(&b)
	findViolation(t, c.Finish(), flight.InvEMSNRegression)

	w := flight.New(flight.Config{})
	hi := obs.Event{At: us(1), Type: obs.EvEMSNAdv, Node: 1, Flow: 4, Aux: 0xFFFFFFFF}
	lo := obs.Event{At: us(2), Type: obs.EvEMSNAdv, Node: 1, Flow: 4, Aux: 0}
	w.OnEvent(&hi)
	w.OnEvent(&lo)
	if n := w.Violations(); n != 0 {
		t.Fatalf("eMSN wraparound flagged as regression (%d violations)", n)
	}
}

// TestSyntheticHODropModes: lenient mode counts, strict mode violates.
func TestSyntheticHODropModes(t *testing.T) {
	e := obs.Event{At: us(1), Type: obs.EvHODrop, Node: 2, Flow: 5, PSN: 1, MSN: 0}

	lenient := flight.New(flight.Config{})
	lenient.OnEvent(&e)
	r := lenient.Finish()
	if r.TotalViolations != 0 || r.HODrops != 1 {
		t.Fatalf("lenient: violations=%d hoDrops=%d", r.TotalViolations, r.HODrops)
	}

	strict := flight.New(flight.Config{StrictHO: true})
	strict.OnEvent(&e)
	findViolation(t, strict.Finish(), flight.InvHODrop)
}

// dumbbellSim builds a small checked dumbbell simulation.
func dumbbellSim(seed int64, sch exp.Scheme, hosts, cross int) *exp.Sim {
	return exp.NewSim(seed, sch, func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.HostsPerSwitch = hosts
		c.CrossLinks = cross
		c.Switch = exp.SwitchConfigFor(sch)
		return topo.Dumbbell(eng, c)
	})
}

// attachChecker wires a flat-memory tracer plus checker onto the sim.
func attachChecker(s *exp.Sim, cfg flight.Config) *flight.Checker {
	tr := obs.NewTracer()
	tr.SetLimit(1)
	ck := flight.New(cfg)
	tr.Tee(ck)
	s.Attach(tr, nil)
	return ck
}

// runIncast drives a 4:1 DCP incast through one cross link: enough overload
// to trim heavily and exercise the whole HO → RetransQ → retransmit
// pipeline, fully deterministic under the fixed seed.
func runIncast(t *testing.T) *flight.Checker {
	t.Helper()
	sch := exp.SchemeDCP(false)
	s := exp.NewSim(11, sch, func(eng *sim.Engine) *topo.Network {
		c := topo.DefaultDumbbell()
		c.HostsPerSwitch = 4
		c.CrossLinks = 1
		c.Switch = exp.SwitchConfigFor(sch)
		// Shallow trim threshold: window-limited senders never build the
		// default 1 MB egress queue on this tiny fabric, and the point of
		// this run is to exercise the trim → HO → RetransQ pipeline.
		c.Switch.TrimThreshold = 32 << 10
		return topo.Dumbbell(eng, c)
	})
	ck := attachChecker(s, flight.Config{})
	var flows []*workload.Flow
	for i := 0; i < 4; i++ {
		flows = append(flows, &workload.Flow{
			ID:  uint64(i + 1),
			Src: packet.NodeID(i), Dst: packet.NodeID(4),
			Size: 1 << 20,
		})
	}
	s.ScheduleFlows(flows)
	if left := s.Run(50 * units.Millisecond); left != 0 {
		t.Fatalf("%d incast flows unfinished", left)
	}
	return ck
}

// TestIncastCheckedClean runs the incast under the checker: the recovery
// machinery must be exercised (trims, fetches, retransmissions) and the
// invariants must all hold.
func TestIncastCheckedClean(t *testing.T) {
	ck := runIncast(t)
	r := ck.Finish()
	if r.TotalViolations != 0 {
		var buf bytes.Buffer
		r.WriteText(&buf)
		t.Fatalf("incast run violated invariants:\n%s", buf.String())
	}
	var trims, fetches, retx int64
	names := flight.CountNames()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	for i := range r.Flows {
		trims += r.Flows[i].Counts[idx["trims"]]
		fetches += r.Flows[i].Counts[idx["rq_fetch"]]
		retx += r.Flows[i].Counts[idx["retx"]]
	}
	if trims == 0 || fetches == 0 || retx == 0 {
		t.Fatalf("incast did not exercise recovery: trims=%d fetches=%d retx=%d", trims, fetches, retx)
	}
	if hasStage(r, "loss_to_recovery") == nil {
		t.Fatal("no recovery latency sampled")
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run go test ./internal/obs/flight -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden; run with -update and diff", name)
	}
}

// TestAutopsyGolden pins the full autopsy (JSON and text renderings) of the
// deterministic incast run, byte for byte.
func TestAutopsyGolden(t *testing.T) {
	r := runIncast(t).Finish()
	var j, x bytes.Buffer
	if err := r.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&x); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "autopsy.golden.json", j.Bytes())
	checkGolden(t, "autopsy.golden.txt", x.Bytes())
}

// TestCheckerDetectsDuplicateDelivery is the first mutation self-test: a
// wire-level duplication fault (faults.DupBurst) delivers one data packet
// twice. The bitmap-free receiver double-counts it — exactly the corruption
// the exactly-once invariant exists to catch — so the checker must report
// duplicate-placement and counter-vs-set violations with causal chains.
func TestCheckerDetectsDuplicateDelivery(t *testing.T) {
	sch := exp.SchemeDCP(false)
	s := dumbbellSim(7, sch, 1, 1)
	ck := attachChecker(s, flight.Config{})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 256 << 10}})
	plan := faults.NewPlan(7).DupBurst("host1", 10*units.Microsecond, 1)
	if _, err := s.Net.Inject(plan); err != nil {
		t.Fatal(err)
	}
	s.Run(50 * units.Millisecond)
	r := ck.Finish()
	if r.TotalViolations == 0 {
		t.Fatal("duplicated delivery went unnoticed")
	}
	dup := findViolation(t, r, flight.InvDuplicatePlacement)
	if len(dup.Chain) == 0 {
		t.Fatal("duplicate-placement violation carries no causal chain")
	}
	mm := findViolation(t, r, flight.InvCounterSetMismatch)
	if len(mm.Chain) == 0 {
		t.Fatal("counter-set-mismatch violation carries no causal chain")
	}
}

// staleEpochShim wraps a DCP endpoint and corrupts exactly one
// post-fallback retransmission: its retry epoch is rewound to the previous
// value just before the packet reaches the wire, with a matching trace
// event, modeling a sender whose fallback state update raced its send
// pipeline.
type staleEpochShim struct {
	base.Transport
	env      *base.Env
	node     packet.NodeID
	injected bool
}

func (s *staleEpochShim) Dequeue(now units.Time, dataPaused bool) *packet.Packet {
	p := s.Transport.Dequeue(now, dataPaused)
	if p != nil && !s.injected && p.Kind == packet.KindData && p.Retransmitted && p.SRetryNo > 0 {
		s.injected = true
		p.SRetryNo--
		if s.env.Trace != nil {
			s.env.Trace.Emit(obs.Event{At: now, Type: obs.EvRetransmit, Node: s.node, Port: -1,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: int64(p.SRetryNo)})
		}
	}
	return p
}

// TestCheckerDetectsStaleEpochRetransmit is the second mutation self-test:
// a link outage forces DCP's coarse-timeout fallback (epoch bump), and the
// shim rewinds one resent packet to the stale epoch. The checker must flag
// the stale retransmission with a causal chain.
func TestCheckerDetectsStaleEpochRetransmit(t *testing.T) {
	sch := exp.SchemeDCP(false)
	inner := sch.Factory
	var shims []*staleEpochShim
	sch.Factory = func(n *nic.NIC, env *base.Env) base.Transport {
		sh := &staleEpochShim{Transport: inner(n, env), env: env, node: n.ID()}
		shims = append(shims, sh)
		return sh
	}
	sch.Tweak = func(env *base.Env) { env.DCP.Timeout = 300 * units.Microsecond }
	s := dumbbellSim(7, sch, 1, 1)
	ck := attachChecker(s, flight.Config{})
	s.ScheduleFlows([]*workload.Flow{{ID: 1, Src: 0, Dst: 1, Size: 256 << 10}})
	plan := faults.NewPlan(7).LinkDownFor("cross0", 10*units.Microsecond, 600*units.Microsecond)
	if _, err := s.Net.Inject(plan); err != nil {
		t.Fatal(err)
	}
	if left := s.Run(100 * units.Millisecond); left != 0 {
		t.Fatalf("%d flows unfinished after outage recovery", left)
	}
	mutated := false
	for _, sh := range shims {
		mutated = mutated || sh.injected
	}
	if !mutated {
		t.Fatal("shim never saw a post-fallback retransmission; outage too short?")
	}
	st := findViolation(t, ck.Finish(), flight.InvStaleEpochRetrans)
	if len(st.Chain) == 0 {
		t.Fatal("stale-epoch violation carries no causal chain")
	}
}

// TestRegistryRunsChecked attaches the checker to every simulation built by
// every registered experiment — including the fault-injection families —
// via exp.NewSimHook, and requires a clean bill: zero invariant violations
// anywhere in the registry.
func TestRegistryRunsChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment under the checker; minutes of CPU")
	}
	cfg := exp.Config{Seed: 11, Scale: 0.02}
	type bound struct {
		id string
		ck *flight.Checker
	}
	var checkers []bound
	curID := ""
	exp.NewSimHook = func(s *exp.Sim) {
		ck := attachChecker(s, flight.Config{})
		checkers = append(checkers, bound{curID, ck})
	}
	defer func() { exp.NewSimHook = nil }()
	for _, e := range exp.All() {
		e := e
		curID = e.ID
		t.Run(e.ID, func(t *testing.T) {
			if tables := e.Run(cfg); len(tables) == 0 {
				t.Fatal("no tables")
			}
		})
	}
	var events int64
	for _, b := range checkers {
		events += b.ck.Events()
		if n := b.ck.Violations(); n != 0 {
			var buf bytes.Buffer
			b.ck.Finish().WriteText(&buf)
			t.Errorf("%s: %d invariant violations\n%s", b.id, n, buf.String())
		}
	}
	if len(checkers) == 0 || events == 0 {
		t.Fatalf("hook never observed events (checkers=%d events=%d)", len(checkers), events)
	}
}

// TestCheckedRunBitIdentical verifies the determinism contract: attaching
// the tracer+checker to an experiment must not change a single output cell.
func TestCheckedRunBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments twice")
	}
	cfg := exp.Config{Seed: 11, Scale: 0.02}
	render := func(id string) string {
		e := exp.ByID(id)
		if e == nil {
			t.Fatalf("unknown experiment %s", id)
		}
		var buf bytes.Buffer
		for _, tb := range e.Run(cfg) {
			buf.WriteString(tb.String())
			buf.WriteByte('\n')
		}
		return buf.String()
	}
	for _, id := range []string{"fig10", "ab-b2s", "fault-flap"} {
		plain := render(id)
		exp.NewSimHook = func(s *exp.Sim) { attachChecker(s, flight.Config{}) }
		checked := render(id)
		exp.NewSimHook = nil
		if plain != checked {
			t.Errorf("%s: checked run diverged from unchecked run", id)
		}
	}
	exp.NewSimHook = nil
}
