// Package flight is the flight recorder: an online analysis layer that
// attaches to the obs trace stream (as an obs.Sink) and turns a run's
// events into diagnosis. It does three things at once, in one pass, while
// the simulation runs:
//
//   - reconstructs per-PSN causal recovery chains — first send → trim/drop
//     → HO bounce → HO return → RetransQ fetch → retransmit(s) → delivery
//     → placement — with per-stage sim-time latency breakdowns;
//   - checks the paper's correctness claims as online invariants
//     (exactly-once placement per PSN and epoch, counter-vs-delivered-set
//     equivalence, eMSN monotonicity under RFC 1982 arithmetic, RetransQ
//     fetches only for PSNs named by an HO return, retry-epoch
//     consistency), reporting each violation with the causal chain that
//     led to it;
//   - aggregates everything into a deterministic autopsy report
//     (report.go): per-flow recovery waterfalls, stage-latency
//     percentiles, the violation list.
//
// The checker is bound by the obs determinism contract: it observes and
// never mutates simulation state, so a checked run is bit-identical to an
// unchecked one. All state is per-flow and retired as messages complete,
// keeping memory proportional to in-flight work, not run length.
package flight

import (
	"fmt"

	"dcpsim/internal/obs"
	"dcpsim/internal/stats"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
)

// Config tunes the checker.
type Config struct {
	// StrictHO promotes HO-packet drops from a counted warning to a
	// violation. The default is lenient because the control queue is
	// engineered, not guaranteed, to be lossless: the Table 5 experiments
	// deliberately overload it to measure exactly this drop rate, and DCP
	// recovers via the coarse timeout when it happens.
	StrictHO bool

	// MaxViolations caps retained violations (all are still counted).
	// 0 means DefaultMaxViolations.
	MaxViolations int

	// ChainEvents caps the raw events retained per live chain (longer
	// chains are marked truncated). 0 means DefaultChainEvents.
	ChainEvents int
}

// Defaults for Config zero fields.
const (
	DefaultMaxViolations = 64
	DefaultChainEvents   = 32
)

// Violation is one invariant breach, carrying the causal chain of raw
// events that led to it (ending with the triggering event).
type Violation struct {
	Invariant string
	At        units.Time
	Flow      uint64
	PSN       uint32
	MSN       uint32
	Detail    string
	Chain     []obs.Event
}

// The invariant names reported in violations.
const (
	InvDuplicatePlacement = "duplicate-placement"
	InvCounterSetMismatch = "counter-set-mismatch"
	InvEMSNRegression     = "emsn-regression"
	InvOrphanRQFetch      = "orphan-rq-fetch"
	InvStaleEpochRetrans  = "stale-epoch-retransmit"
	InvEpochRegression    = "epoch-regression"
	InvHODrop             = "ho-drop"
)

// Recovery-stage latency series. Each is a checker-level histogram fed one
// sample per observed stage transition (multi-cycle recoveries contribute
// one sample per cycle).
const (
	latClean         = iota // send → delivery, never lost, never retransmitted
	latLossToBounce         // trim/drop → HO bounce at the receiver
	latBounceToHORet        // HO bounce → HO return at the sender
	latHORetToFetch         // HO return (RetransQ push) → PCIe fetch completion
	latFetchToRetx          // fetch completion → CC-regulated retransmission
	latRetxToDeliver        // retransmission → delivery at the receiver NIC
	latLossToRecover        // first trim/drop → final placement (or delivery)
	numLats
)

// latNames index the latency series for reports.
var latNames = [numLats]string{
	"clean_send_to_deliver",
	"loss_to_ho_bounce",
	"ho_bounce_to_ho_return",
	"ho_return_to_rq_fetch",
	"rq_fetch_to_retransmit",
	"retransmit_to_deliver",
	"loss_to_recovery",
}

// Per-flow waterfall counters.
const (
	cntSent = iota
	cntRetx
	cntTrim
	cntDrop
	cntHOBounce
	cntHOReturn
	cntRQFetch
	cntDeliver
	cntPlace
	cntMsgComplete
	cntTimeout
	cntFallback
	cntHODrop
	numCounts
)

// cntNames index the waterfall counters for reports.
var cntNames = [numCounts]string{
	"sent", "retx", "trims", "drops", "ho_bounce", "ho_return", "rq_fetch",
	"deliver", "place", "msg_complete", "timeouts", "fallbacks", "ho_drops",
}

const unset = units.Time(-1)

// chain is the live causal-recovery record of one PSN.
type chain struct {
	psn uint32
	msn uint32

	sendAt    units.Time
	lossAt    units.Time // first trim or drop
	lastLoss  units.Time
	lastBoun  units.Time
	lastHORet units.Time
	lastFetch units.Time
	lastRetx  units.Time
	deliverAt units.Time
	placeAt   units.Time

	retx  int
	loss  int
	trunc bool
	ev    []obs.Event
}

func newChain(psn, msn uint32) *chain {
	return &chain{psn: psn, msn: msn,
		sendAt: unset, lossAt: unset, lastLoss: unset, lastBoun: unset,
		lastHORet: unset, lastFetch: unset, lastRetx: unset,
		deliverAt: unset, placeAt: unset}
}

// msgState is the receiver-side exactly-once evidence for one message: the
// set of PSNs placed in the current retry epoch, mirrored against the
// receiver's own per-message counter.
type msgState struct {
	epoch  int64
	placed map[uint32]bool
}

// flowState is everything the checker tracks about one flow.
type flowState struct {
	id      uint64
	bytes   int64
	startAt units.Time
	doneAt  units.Time
	started bool
	done    bool

	emsn     int64 // last EvEMSNAdv value
	emsnSeen bool

	msgs      map[uint32]*msgState // receiver placement evidence, per MSN
	epochs    map[uint32]int64     // sender retry epoch per MSN (EvEpochFallback)
	pendingRQ map[uint32]int       // PSN → HO returns not yet matched by a fetch
	chains    map[uint32]*chain    // live chains per PSN
	pending   *chain               // delivered, awaiting the adjacent EvPlace

	counts [numCounts]int64

	recoverN   int64
	recoverSum int64 // picoseconds
	recoverMax int64 // picoseconds
}

// Checker is the online invariant checker and chain reconstructor. Attach
// it with Tracer.Tee; call Finish when the run ends to obtain the report.
type Checker struct {
	cfg Config

	flows map[uint64]*flowState
	order []uint64 // flow IDs in first-seen order

	lat [numLats]stats.LogHist

	events     int64
	hoDrops    int64
	violations []Violation
	violTotal  int64
	finished   bool
}

// New returns a checker with cfg's zero fields defaulted.
func New(cfg Config) *Checker {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	if cfg.ChainEvents <= 0 {
		cfg.ChainEvents = DefaultChainEvents
	}
	return &Checker{cfg: cfg, flows: make(map[uint64]*flowState)}
}

// Violations returns the total number of invariant violations so far
// (including any beyond the retained cap).
func (c *Checker) Violations() int64 { return c.violTotal }

// Events returns the number of trace events observed.
func (c *Checker) Events() int64 { return c.events }

func (c *Checker) flow(id uint64) *flowState {
	f := c.flows[id]
	if f == nil {
		f = &flowState{id: id, startAt: unset, doneAt: unset, emsn: -1,
			msgs:      make(map[uint32]*msgState),
			epochs:    make(map[uint32]int64),
			pendingRQ: make(map[uint32]int),
			chains:    make(map[uint32]*chain),
		}
		c.flows[id] = f
		c.order = append(c.order, id)
	}
	return f
}

func (c *Checker) violate(inv string, e *obs.Event, ch *chain, detail string) {
	c.violTotal++
	if len(c.violations) >= c.cfg.MaxViolations {
		return
	}
	v := Violation{Invariant: inv, At: e.At, Flow: e.Flow, PSN: e.PSN, MSN: e.MSN, Detail: detail}
	if ch != nil {
		v.Chain = append(v.Chain, ch.ev...)
	}
	// The chain always ends with the triggering event.
	v.Chain = append(v.Chain, *e)
	c.violations = append(c.violations, v)
}

// record appends e to the chain's bounded raw-event log.
func (c *Checker) record(ch *chain, e *obs.Event) {
	if len(ch.ev) < c.cfg.ChainEvents {
		ch.ev = append(ch.ev, *e)
	} else {
		ch.trunc = true
	}
}

func (c *Checker) chainFor(f *flowState, e *obs.Event) *chain {
	ch := f.chains[e.PSN]
	if ch == nil {
		ch = newChain(e.PSN, e.MSN)
		f.chains[e.PSN] = ch
	}
	return ch
}

// sample feeds one stage-latency observation (negative deltas cannot occur
// with a monotone simulated clock, but guard anyway).
func (c *Checker) sample(lat int, from, to units.Time) {
	if from >= 0 && to >= from {
		c.lat[lat].Record((to - from).Picos())
	}
}

// retire finalizes a chain: recovery and clean-delivery latencies, per-flow
// recovery aggregates.
func (c *Checker) retire(f *flowState, ch *chain) {
	if ch.lossAt >= 0 {
		end := ch.placeAt
		if end < 0 {
			end = ch.deliverAt
		}
		if end >= ch.lossAt {
			d := (end - ch.lossAt).Picos()
			c.lat[latLossToRecover].Record(d)
			f.recoverN++
			f.recoverSum += d
			if d > f.recoverMax {
				f.recoverMax = d
			}
		}
		return
	}
	if ch.retx == 0 && ch.sendAt >= 0 && ch.deliverAt >= ch.sendAt {
		c.lat[latClean].Record((ch.deliverAt - ch.sendAt).Picos())
	}
}

// flushPending retires a delivered chain that no EvPlace claimed.
func (c *Checker) flushPending(f *flowState) {
	if f.pending != nil {
		ch := f.pending
		f.pending = nil
		c.retire(f, ch)
	}
}

// OnEvent implements obs.Sink.
func (c *Checker) OnEvent(e *obs.Event) {
	c.events++
	switch e.Type {
	case obs.EvEnqueue, obs.EvECNMark, obs.EvCCRate, obs.EvPause, obs.EvFault,
		obs.EvAckDrop:
		// Per-hop, congestion-signal and fabric-scoped events carry no
		// recovery-chain or invariant evidence; skipping them keeps the
		// checker cheap on the hottest event types.
		return
	}
	f := c.flow(e.Flow)
	if f.pending != nil && !(e.Type == obs.EvPlace && e.PSN == f.pending.psn) {
		c.flushPending(f)
	}
	switch e.Type {
	case obs.EvFlowStart:
		f.started = true
		f.startAt = e.At
		f.bytes = e.Aux

	case obs.EvFlowDone:
		f.done = true
		f.doneAt = e.At

	case obs.EvSend:
		f.counts[cntSent]++
		ch := c.chainFor(f, e)
		if ch.sendAt < 0 {
			ch.sendAt = e.At
		}
		c.record(ch, e)

	case obs.EvTrim, obs.EvDataDrop:
		if e.Type == obs.EvTrim {
			f.counts[cntTrim]++
		} else {
			f.counts[cntDrop]++
		}
		ch := c.chainFor(f, e)
		ch.loss++
		ch.lastLoss = e.At
		if ch.lossAt < 0 {
			ch.lossAt = e.At
		}
		c.record(ch, e)

	case obs.EvHOEnqueue:
		if ch := f.chains[e.PSN]; ch != nil {
			c.record(ch, e)
		}

	case obs.EvHODrop:
		f.counts[cntHODrop]++
		c.hoDrops++
		ch := f.chains[e.PSN]
		if c.cfg.StrictHO {
			c.violate(InvHODrop, e, ch, "control-queue HO packet dropped")
		}
		if ch != nil {
			c.record(ch, e)
		}

	case obs.EvHOBounce:
		f.counts[cntHOBounce]++
		ch := c.chainFor(f, e)
		c.sample(latLossToBounce, ch.lastLoss, e.At)
		ch.lastBoun = e.At
		c.record(ch, e)

	case obs.EvHOReturn:
		f.counts[cntHOReturn]++
		f.pendingRQ[e.PSN]++
		ch := c.chainFor(f, e)
		from := ch.lastBoun
		if from < 0 {
			from = ch.lastLoss // direct-return fabrics skip the bounce
		}
		c.sample(latBounceToHORet, from, e.At)
		ch.lastHORet = e.At
		c.record(ch, e)

	case obs.EvRQFetch:
		f.counts[cntRQFetch]++
		ch := f.chains[e.PSN]
		if f.pendingRQ[e.PSN] > 0 {
			f.pendingRQ[e.PSN]--
			if f.pendingRQ[e.PSN] == 0 {
				delete(f.pendingRQ, e.PSN)
			}
		} else {
			c.violate(InvOrphanRQFetch, e, ch,
				"RetransQ fetch for a PSN no HO return pushed")
		}
		if ch == nil {
			ch = c.chainFor(f, e)
		}
		c.sample(latHORetToFetch, ch.lastHORet, e.At)
		ch.lastFetch = e.At
		c.record(ch, e)

	case obs.EvRetransmit:
		f.counts[cntRetx]++
		ch := c.chainFor(f, e)
		ch.retx++
		c.sample(latFetchToRetx, ch.lastFetch, e.At)
		ch.lastRetx = e.At
		// Retry-epoch consistency, sender side: once a coarse-timeout
		// fallback bumped this message's epoch, every retransmission must
		// carry the current epoch — the receiver discards stale ones, so a
		// stale emission is wasted wire time at best and a state bug at
		// worst. Only DCP emits EvEpochFallback, so other transports are
		// naturally exempt. Checked before the event joins the chain: the
		// violation's chain ends with the triggering retransmit.
		if cur, ok := f.epochs[e.MSN]; ok && e.Aux < cur {
			c.violate(InvStaleEpochRetrans, e, ch,
				fmt.Sprintf("retransmit carries epoch %d, current epoch %d", e.Aux, cur))
		}
		c.record(ch, e)

	case obs.EvDeliver:
		f.counts[cntDeliver]++
		ch := f.chains[e.PSN]
		if ch == nil {
			ch = newChain(e.PSN, e.MSN)
		} else {
			delete(f.chains, e.PSN)
		}
		c.sample(latRetxToDeliver, ch.lastRetx, e.At)
		ch.deliverAt = e.At
		c.record(ch, e)
		// Park until the adjacent EvPlace claims it (DCP) or the next flow
		// event flushes it (non-DCP transports, or a discarded duplicate).
		f.pending = ch

	case obs.EvPlace:
		f.counts[cntPlace]++
		var ch *chain
		if f.pending != nil && f.pending.psn == e.PSN {
			ch = f.pending
			f.pending = nil
		} else if ch = f.chains[e.PSN]; ch != nil {
			delete(f.chains, e.PSN)
		}
		c.checkPlace(f, e, ch)
		if ch != nil {
			ch.placeAt = e.At
			c.record(ch, e)
			c.retire(f, ch)
		}

	case obs.EvMsgComplete:
		f.counts[cntMsgComplete]++
		if m := f.msgs[e.MSN]; m != nil {
			if int64(len(m.placed)) != e.Aux {
				c.violate(InvCounterSetMismatch, e, f.chains[e.PSN], fmt.Sprintf(
					"message completed with counter %d but %d distinct PSNs placed",
					e.Aux, len(m.placed)))
			}
			delete(f.msgs, e.MSN)
		}

	case obs.EvEMSNAdv:
		if f.emsnSeen && !base.SeqLess(uint32(f.emsn), uint32(e.Aux)) {
			c.violate(InvEMSNRegression, e, nil, fmt.Sprintf(
				"eMSN moved %d → %d (must be strictly increasing)", f.emsn, e.Aux))
		}
		f.emsn = e.Aux
		f.emsnSeen = true

	case obs.EvTimeout:
		f.counts[cntTimeout]++

	case obs.EvEpochFallback:
		f.counts[cntFallback]++
		// Retry epochs only ever increase (uint8 in the packet header; the
		// trace carries the widened value).
		if old, ok := f.epochs[e.MSN]; ok && e.Aux <= old {
			c.violate(InvEpochRegression, e, nil, fmt.Sprintf(
				"sender epoch moved %d → %d on fallback", old, e.Aux))
		}
		f.epochs[e.MSN] = e.Aux
	}
}

// checkPlace runs the receiver-side placement invariants: the heart of the
// bitmap-free claim. EvPlace's Aux packs (epoch << 32) | counter-after.
func (c *Checker) checkPlace(f *flowState, e *obs.Event, ch *chain) {
	epoch := e.Aux >> 32
	counter := e.Aux & 0xffffffff
	m := f.msgs[e.MSN]
	if m == nil {
		m = &msgState{epoch: epoch, placed: make(map[uint32]bool)}
		f.msgs[e.MSN] = m
	}
	switch {
	case epoch > m.epoch:
		// The receiver reset its count for a new retry epoch; the placed
		// set resets with it.
		m.epoch = epoch
		m.placed = make(map[uint32]bool)
	case epoch < m.epoch:
		c.violate(InvEpochRegression, e, ch, fmt.Sprintf(
			"receiver accepted epoch %d after advancing to %d", epoch, m.epoch))
	}
	if m.placed[e.PSN] {
		c.violate(InvDuplicatePlacement, e, ch, fmt.Sprintf(
			"PSN placed twice in epoch %d (payload double-counted)", epoch))
	}
	m.placed[e.PSN] = true
	if int64(len(m.placed)) != counter {
		c.violate(InvCounterSetMismatch, e, ch, fmt.Sprintf(
			"receiver counter %d, distinct PSNs placed %d", counter, len(m.placed)))
	}
}
