package flight

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"dcpsim/internal/obs"
	"dcpsim/internal/units"
)

// StageLat is one recovery-stage latency series summarized by nearest-rank
// percentiles (log-bucketed; see stats.LogHist for the error bound).
type StageLat struct {
	Name  string
	Count int64
	P50   units.Time
	P90   units.Time
	P99   units.Time
	Max   units.Time
}

// FlowAutopsy is one flow's recovery waterfall.
type FlowAutopsy struct {
	Flow    uint64
	Bytes   int64
	Started bool
	Done    bool
	StartAt units.Time // unset (-1) when the start predates the checker
	DoneAt  units.Time // unset (-1) while the flow is still running

	// Counts holds the waterfall counters in CountNames order.
	Counts [numCounts]int64

	Recoveries  int64 // chains that went through loss and recovered
	RecoverMean units.Time
	RecoverMax  units.Time
}

// CountNames returns the labels for FlowAutopsy.Counts.
func CountNames() [numCounts]string { return cntNames }

// Report is the deterministic autopsy of one checked run.
type Report struct {
	Events          int64
	FlowsSeen       int
	FlowsDone       int
	TotalViolations int64
	HODrops         int64
	StrictHO        bool

	Stages     []StageLat    // non-empty stages, fixed order
	Flows      []FlowAutopsy // sorted by flow ID
	Violations []Violation   // retained, emission order
}

// Finish flushes in-flight chain state and builds the report. Safe to call
// more than once; events observed after the first Finish are still counted
// but no longer feed retired-chain latencies.
func (c *Checker) Finish() *Report {
	if !c.finished {
		c.finished = true
		for _, id := range c.order {
			c.flushPending(c.flows[id])
		}
	}
	r := &Report{
		Events:          c.events,
		FlowsSeen:       len(c.order),
		TotalViolations: c.violTotal,
		HODrops:         c.hoDrops,
		StrictHO:        c.cfg.StrictHO,
		Violations:      c.violations,
	}
	for i := 0; i < numLats; i++ {
		h := &c.lat[i]
		if h.Count() == 0 {
			continue
		}
		r.Stages = append(r.Stages, StageLat{
			Name:  latNames[i],
			Count: h.Count(),
			P50:   units.Time(h.Percentile(50)) * units.Picosecond,
			P90:   units.Time(h.Percentile(90)) * units.Picosecond,
			P99:   units.Time(h.Percentile(99)) * units.Picosecond,
			Max:   units.Time(h.Max()) * units.Picosecond,
		})
	}
	ids := append([]uint64(nil), c.order...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := c.flows[id]
		fa := FlowAutopsy{
			Flow: f.id, Bytes: f.bytes, Started: f.started, Done: f.done,
			StartAt: f.startAt, DoneAt: f.doneAt, Counts: f.counts,
			Recoveries: f.recoverN, RecoverMax: units.Time(f.recoverMax) * units.Picosecond,
		}
		if f.recoverN > 0 {
			fa.RecoverMean = units.Time(f.recoverSum/f.recoverN) * units.Picosecond
		} else {
			fa.RecoverMax = unset
			fa.RecoverMean = unset
		}
		if f.done {
			r.FlowsDone++
		}
		r.Flows = append(r.Flows, fa)
	}
	return r
}

// appendUS renders t as microseconds with fixed precision; unset times
// render as null.
func appendUS(b []byte, t units.Time) []byte {
	if t < 0 {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, t.Micros(), 'f', 3, 64)
}

// WriteJSON writes the report as one JSON object with fixed field order,
// byte-stable across runs of the same seed.
func (r *Report) WriteJSON(w io.Writer) error {
	var b []byte
	b = append(b, `{"events":`...)
	b = strconv.AppendInt(b, r.Events, 10)
	b = append(b, `,"flows_seen":`...)
	b = strconv.AppendInt(b, int64(r.FlowsSeen), 10)
	b = append(b, `,"flows_done":`...)
	b = strconv.AppendInt(b, int64(r.FlowsDone), 10)
	b = append(b, `,"violations":`...)
	b = strconv.AppendInt(b, r.TotalViolations, 10)
	b = append(b, `,"ho_drops":`...)
	b = strconv.AppendInt(b, r.HODrops, 10)
	b = append(b, `,"strict_ho":`...)
	b = strconv.AppendBool(b, r.StrictHO)

	b = append(b, `,"stages":[`...)
	for i, s := range r.Stages {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"stage":`...)
		b = strconv.AppendQuote(b, s.Name)
		b = append(b, `,"count":`...)
		b = strconv.AppendInt(b, s.Count, 10)
		b = append(b, `,"p50_us":`...)
		b = appendUS(b, s.P50)
		b = append(b, `,"p90_us":`...)
		b = appendUS(b, s.P90)
		b = append(b, `,"p99_us":`...)
		b = appendUS(b, s.P99)
		b = append(b, `,"max_us":`...)
		b = appendUS(b, s.Max)
		b = append(b, '}')
	}

	b = append(b, `],"flows":[`...)
	for i := range r.Flows {
		f := &r.Flows[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"flow":`...)
		b = strconv.AppendUint(b, f.Flow, 10)
		b = append(b, `,"bytes":`...)
		b = strconv.AppendInt(b, f.Bytes, 10)
		b = append(b, `,"done":`...)
		b = strconv.AppendBool(b, f.Done)
		b = append(b, `,"start_us":`...)
		b = appendUS(b, f.StartAt)
		b = append(b, `,"done_us":`...)
		b = appendUS(b, f.DoneAt)
		for ci := 0; ci < numCounts; ci++ {
			b = append(b, `,"`...)
			b = append(b, cntNames[ci]...)
			b = append(b, `":`...)
			b = strconv.AppendInt(b, f.Counts[ci], 10)
		}
		b = append(b, `,"recoveries":`...)
		b = strconv.AppendInt(b, f.Recoveries, 10)
		b = append(b, `,"recover_mean_us":`...)
		b = appendUS(b, f.RecoverMean)
		b = append(b, `,"recover_max_us":`...)
		b = appendUS(b, f.RecoverMax)
		b = append(b, '}')
		if len(b) > 1<<16 {
			if _, err := w.Write(b); err != nil {
				return err
			}
			b = b[:0]
		}
	}

	b = append(b, `],"violations":[`...)
	for i := range r.Violations {
		v := &r.Violations[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"invariant":`...)
		b = strconv.AppendQuote(b, v.Invariant)
		b = append(b, `,"at_us":`...)
		b = appendUS(b, v.At)
		b = append(b, `,"flow":`...)
		b = strconv.AppendUint(b, v.Flow, 10)
		b = append(b, `,"psn":`...)
		b = strconv.AppendUint(b, uint64(v.PSN), 10)
		b = append(b, `,"msn":`...)
		b = strconv.AppendUint(b, uint64(v.MSN), 10)
		b = append(b, `,"detail":`...)
		b = strconv.AppendQuote(b, v.Detail)
		b = append(b, `,"chain":[`...)
		for ei := range v.Chain {
			if ei > 0 {
				b = append(b, ',')
			}
			b = obs.AppendEventJSON(b, &v.Chain[ei])
		}
		b = append(b, "]}"...)
		if len(b) > 1<<16 {
			if _, err := w.Write(b); err != nil {
				return err
			}
			b = b[:0]
		}
	}
	b = append(b, "]}\n"...)
	_, err := w.Write(b)
	return err
}

// usOrDash renders t in microseconds for the text report.
func usOrDash(t units.Time) string {
	if t < 0 {
		return "-"
	}
	return strconv.FormatFloat(t.Micros(), 'f', 3, 64)
}

// WriteText writes the human-readable autopsy.
func (r *Report) WriteText(w io.Writer) error {
	hoNote := "counted, not violations (lenient mode)"
	if r.StrictHO {
		hoNote = "violations (strict mode)"
	}
	if _, err := fmt.Fprintf(w,
		"flight autopsy\n"+
			"  events observed       %d\n"+
			"  flows                 %d (%d done)\n"+
			"  invariant violations  %d\n"+
			"  ho drops              %d — %s\n",
		r.Events, r.FlowsSeen, r.FlowsDone, r.TotalViolations, r.HODrops, hoNote); err != nil {
		return err
	}

	if len(r.Stages) > 0 {
		fmt.Fprintf(w, "\nrecovery-stage latencies (us)\n")
		fmt.Fprintf(w, "  %-24s %10s %10s %10s %10s %10s\n",
			"stage", "count", "p50", "p90", "p99", "max")
		for _, s := range r.Stages {
			fmt.Fprintf(w, "  %-24s %10d %10s %10s %10s %10s\n",
				s.Name, s.Count, usOrDash(s.P50), usOrDash(s.P90),
				usOrDash(s.P99), usOrDash(s.Max))
		}
	}

	if len(r.Flows) > 0 {
		fmt.Fprintf(w, "\nper-flow recovery waterfall\n")
		fmt.Fprintf(w, "  %6s %10s %-4s %8s %6s %6s %6s %7s %6s %8s %4s %4s %12s %12s\n",
			"flow", "bytes", "done", "sent", "retx", "trims", "drops",
			"ho_ret", "fetch", "place", "t/o", "fb", "recov_mean", "recov_max")
		for i := range r.Flows {
			f := &r.Flows[i]
			done := "no"
			if f.Done {
				done = "yes"
			}
			fmt.Fprintf(w, "  %6d %10d %-4s %8d %6d %6d %6d %7d %6d %8d %4d %4d %12s %12s\n",
				f.Flow, f.Bytes, done,
				f.Counts[cntSent], f.Counts[cntRetx], f.Counts[cntTrim],
				f.Counts[cntDrop], f.Counts[cntHOReturn], f.Counts[cntRQFetch],
				f.Counts[cntPlace], f.Counts[cntTimeout], f.Counts[cntFallback],
				usOrDash(f.RecoverMean), usOrDash(f.RecoverMax))
		}
	}

	if len(r.Violations) > 0 {
		fmt.Fprintf(w, "\nviolations (showing %d of %d)\n", len(r.Violations), r.TotalViolations)
		for i := range r.Violations {
			v := &r.Violations[i]
			fmt.Fprintf(w, "  [%d] %s flow=%d psn=%d msn=%d at=%sus\n      %s\n      chain:\n",
				i+1, v.Invariant, v.Flow, v.PSN, v.MSN, usOrDash(v.At), v.Detail)
			for ei := range v.Chain {
				e := &v.Chain[ei]
				fmt.Fprintf(w, "        %12sus %-14s node=%d port=%d psn=%d msn=%d size=%d aux=%d\n",
					usOrDash(e.At), e.Type.String(), e.Node, e.Port, e.PSN, e.MSN, e.Size, e.Aux)
			}
		}
	} else {
		fmt.Fprintf(w, "\nno invariant violations\n")
	}
	return nil
}
