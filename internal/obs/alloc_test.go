// The allocation guard is meaningless under the race detector (its
// instrumentation can allocate); CI runs it in a separate non-race step.
//go:build !race

package obs

import (
	"testing"

	"dcpsim/internal/obs/perf"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// TestDisabledHooksAllocationFree pins the zero-overhead contract from the
// package doc: every hook an instrumented component may call on a nil sink
// must allocate nothing, so leaving the hooks compiled into the hot path is
// free when observability is off.
func TestDisabledHooksAllocationFree(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	p := &packet.Packet{FlowID: 7, PSN: 42, MSN: 3, Size: 1500}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{At: 1, Type: EvEnqueue, Node: 2, Port: 0})
		tr.Packet(1, EvTrim, 2, 1, p, 64)
		tr.Flow(1, EvTimeout, 2, 7, 1)
		tr.CCRate(1, 2, 7, units.Rate(100e9))
		tr.Fault(1, "linkdown cross0")
		m.Gauge("g", nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled hook path allocates %.0f bytes-equivalents/op, want 0", allocs)
	}
}

// TestDisabledProfilerAllocationFree extends the zero-overhead contract to
// the dispatch profiler: every method on a nil *perf.Profiler no-ops
// without allocating, matching the nil *Tracer / *Metrics discipline.
func TestDisabledProfilerAllocationFree(t *testing.T) {
	var p *perf.Profiler
	eng := sim.NewEngine(1)
	allocs := testing.AllocsPerRun(1000, func() {
		p.Attach("cell", "scheme", eng)
		p.Phase("simulate")
		p.EndPhases()
		if p.Cells() != 0 {
			t.Fatal("nil profiler attached something")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil profiler path allocates %.0f bytes-equivalents/op, want 0", allocs)
	}
}

// TestEngineProfNoExtraAllocs pins the disabled path inside the dispatch
// loop itself: running the same event pattern with a counts-only Prof
// attached allocates exactly as much as running without one — the
// profiling hook is a nil check plus array increments, never a heap write.
func TestEngineProfNoExtraAllocs(t *testing.T) {
	prof := &sim.Prof{}
	run := func(attach bool) float64 {
		return testing.AllocsPerRun(200, func() {
			eng := sim.NewEngine(1)
			if attach {
				eng.AttachProf(prof)
			}
			for i := 0; i < 16; i++ {
				eng.AtComp(units.Time(i), sim.CompFabric, func() {
					eng.After(1, func() {})
				})
			}
			eng.Run(0)
		})
	}
	without := run(false)
	with := run(true)
	if with > without {
		t.Fatalf("profiled dispatch allocates more (%.1f) than unprofiled (%.1f)", with, without)
	}
}
