// The allocation guard is meaningless under the race detector (its
// instrumentation can allocate); CI runs it in a separate non-race step.
//go:build !race

package obs

import (
	"testing"

	"dcpsim/internal/packet"
	"dcpsim/internal/units"
)

// TestDisabledHooksAllocationFree pins the zero-overhead contract from the
// package doc: every hook an instrumented component may call on a nil sink
// must allocate nothing, so leaving the hooks compiled into the hot path is
// free when observability is off.
func TestDisabledHooksAllocationFree(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	p := &packet.Packet{FlowID: 7, PSN: 42, MSN: 3, Size: 1500}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{At: 1, Type: EvEnqueue, Node: 2, Port: 0})
		tr.Packet(1, EvTrim, 2, 1, p, 64)
		tr.Flow(1, EvTimeout, 2, 7, 1)
		tr.CCRate(1, 2, 7, units.Rate(100e9))
		tr.Fault(1, "linkdown cross0")
		m.Gauge("g", nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled hook path allocates %.0f bytes-equivalents/op, want 0", allocs)
	}
}
