package diff

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcpsim/internal/campaign"
	"dcpsim/internal/stats"
)

// miniDoc mirrors the campaign runner's test campaign: 2 transports × 2
// loss values, one tiny sim per cell, stats + checks + dispatch profile
// on, so checkpoints carry every comparable surface.
const miniDoc = `
name = "mini"
seed = 11
scale = 0.02

[observe]
check = true
stats = true

[[scenario]]
id = "mini"
transports = ["dcp", "cx5"]
size_mb = 1
horizon_ms = 20
seeds = [11]

[scenario.sweep]
loss = [0, 0.01]
`

// perturbedDoc shifts one sweep axis value — the canonical "same campaign,
// one knob turned" comparison the diff engine exists for.
var perturbedDoc = strings.Replace(miniDoc, "loss = [0, 0.01]", "loss = [0, 0.05]", 1)

func runCampaign(t *testing.T, src, dir string) {
	t.Helper()
	doc, diags := campaign.Parse([]byte(src), campaign.FormatTOML)
	if len(diags) > 0 {
		t.Fatalf("parse: %v", diags)
	}
	c, err := campaign.Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(c, []byte(src), campaign.Options{Dir: dir, Workers: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestIdenticalBundles pins the zero-drift contract: two runs of the same
// campaign produce a report that is all-identical and drift-free.
func TestIdenticalBundles(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	runCampaign(t, miniDoc, dirA)
	runCampaign(t, miniDoc, dirB)
	a, err := LoadBundle(dirA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(dirB)
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(a, b, DefaultThresholds())
	if r.Drift() {
		t.Fatalf("identical bundles reported drift: %+v", r.Summary)
	}
	if r.Summary.Identical != 4 {
		t.Fatalf("summary = %+v, want 4 identical", r.Summary)
	}
	for _, u := range r.Units {
		if u.Verdict != Identical {
			t.Errorf("unit %s verdict %s, want identical", u.ID, u.Verdict)
		}
	}
	if len(r.Notes) != 0 {
		t.Errorf("same-doc comparison produced notes: %v", r.Notes)
	}
}

// TestPerturbedBundles is the headline acceptance path: perturbing one
// sweep axis value drifts exactly the cells that sample it, with
// cell-level old→new deltas, and leaves the untouched cells identical.
func TestPerturbedBundles(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	runCampaign(t, miniDoc, dirA)
	runCampaign(t, perturbedDoc, dirB)
	a, err := LoadBundle(dirA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(dirB)
	if err != nil {
		t.Fatal(err)
	}
	r := Compare(a, b, DefaultThresholds())
	if !r.Drift() {
		t.Fatalf("perturbed rerun not flagged: %+v", r.Summary)
	}
	// The loss=0 cells are untouched by the perturbation and must stay
	// byte-identical; the loss-axis cells must drift.
	if r.Summary.Identical == 0 || r.Summary.Drifted == 0 {
		t.Fatalf("summary = %+v, want a mix of identical and drifted units", r.Summary)
	}
	if len(r.Notes) == 0 || !strings.Contains(strings.Join(r.Notes, "\n"), "campaign documents differ") {
		t.Errorf("doc perturbation not noted: %v", r.Notes)
	}
	foundLossCell := false
	for _, u := range r.Units {
		if u.Verdict != Drifted {
			continue
		}
		for _, c := range u.Cells {
			if c.Column == "loss" && c.Old == "0.01" && c.New == "0.05" {
				foundLossCell = true
				if !c.Flagged {
					t.Errorf("loss cell delta not flagged: %+v", c)
				}
			}
		}
	}
	if !foundLossCell {
		t.Error("no cell-level delta for the perturbed loss axis; column labels or row diffing broke")
	}
	// Drift must also be visible in the JSON artifact.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"verdict": "drifted"`) {
		t.Errorf("JSON report missing drifted verdict:\n%s", buf.String())
	}
}

// TestDiffDeterminism pins that comparing the same pair twice renders
// byte-identical text and JSON.
func TestDiffDeterminism(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	runCampaign(t, miniDoc, dirA)
	runCampaign(t, perturbedDoc, dirB)
	render := func() (string, string) {
		a, err := LoadBundle(dirA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := LoadBundle(dirB)
		if err != nil {
			t.Fatal(err)
		}
		r := Compare(a, b, DefaultThresholds())
		var text, js bytes.Buffer
		if err := WriteText(&text, r); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, r); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Errorf("text report not deterministic:\nfirst:\n%s\nsecond:\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Errorf("JSON report not deterministic")
	}
}

// TestMissingUnits pins the Missing verdict on both sides of the union.
func TestMissingUnits(t *testing.T) {
	base := &Bundle{Dir: "A", Man: &campaign.Manifest{Campaign: "m", Units: []campaign.ManifestUnit{
		{ID: "m/c000", Kind: "cell", Digest: "x"},
		{ID: "m/c001", Kind: "cell", Digest: "y"},
	}}, Units: map[string]*campaign.UnitResult{}}
	cur := &Bundle{Dir: "B", Man: &campaign.Manifest{Campaign: "m", Units: []campaign.ManifestUnit{
		{ID: "m/c000", Kind: "cell", Digest: "x"},
		{ID: "m/c002", Kind: "cell", Digest: "z"},
	}}, Units: map[string]*campaign.UnitResult{}}
	r := Compare(base, cur, DefaultThresholds())
	if r.Summary.Missing != 2 || r.Summary.Identical != 1 {
		t.Fatalf("summary = %+v, want 1 identical + 2 missing", r.Summary)
	}
	if !r.Drift() {
		t.Error("missing units must count as drift")
	}
	if got := r.Units[1]; got.ID != "m/c001" || got.Verdict != Missing ||
		!strings.Contains(got.Notes[0], "absent from B") {
		t.Errorf("baseline-only unit: %+v", got)
	}
	if got := r.Units[2]; got.ID != "m/c002" || !strings.Contains(got.Notes[0], "absent from A") {
		t.Errorf("current-only unit: %+v", got)
	}
}

// TestIncomparableUnits covers the remaining lattice corners: kind
// mismatch and an absent checkpoint behind a digest mismatch.
func TestIncomparableUnits(t *testing.T) {
	base := &Bundle{Dir: "A", Man: &campaign.Manifest{Campaign: "m", Units: []campaign.ManifestUnit{
		{ID: "u", Kind: "cell", Digest: "x"},
	}}, Units: map[string]*campaign.UnitResult{}}
	cur := &Bundle{Dir: "B", Man: &campaign.Manifest{Campaign: "m", Units: []campaign.ManifestUnit{
		{ID: "u", Kind: "experiment", Digest: "y"},
	}}, Units: map[string]*campaign.UnitResult{}}
	r := Compare(base, cur, DefaultThresholds())
	if r.Summary.Incomparable != 1 || !strings.Contains(r.Units[0].Notes[0], "kind mismatch") {
		t.Fatalf("kind mismatch: %+v", r.Units[0])
	}

	cur.Man.Units[0].Kind = "cell"
	r = Compare(base, cur, DefaultThresholds())
	if r.Summary.Incomparable != 1 || !strings.Contains(r.Units[0].Notes[0], "checkpoint absent or corrupt") {
		t.Fatalf("absent checkpoints: %+v", r.Units[0])
	}

	// With bench snapshots present, an incomparable unit still reports
	// its event and component deltas from bench.json.
	base.Bench = &campaign.BenchSnapshot{Units: []campaign.BenchUnit{
		{ID: "u", Events: 1000, Comps: []campaign.CompCount{{Comp: "transport", Events: 400}}},
	}}
	cur.Bench = &campaign.BenchSnapshot{Units: []campaign.BenchUnit{
		{ID: "u", Events: 1500, Comps: []campaign.CompCount{{Comp: "transport", Events: 700}}},
	}}
	r = Compare(base, cur, DefaultThresholds())
	u := r.Units[0]
	if u.Verdict != Incomparable {
		t.Fatalf("bench fallback must not upgrade the verdict: %+v", u)
	}
	if u.Events == nil || u.Events.Old != 1000 || u.Events.New != 1500 || !u.Events.Flagged {
		t.Fatalf("bench-snapshot event delta: %+v", u.Events)
	}
	if len(u.Comps) != 1 || u.Comps[0].Comp != "transport" || !u.Comps[0].Flagged {
		t.Fatalf("bench-snapshot comp delta: %+v", u.Comps)
	}
}

// fabUnit builds a checkpoint-shaped result for the synthetic tests.
func fabUnit(id string, events int64, row []string, retrans int64) *campaign.UnitResult {
	return &campaign.UnitResult{
		ID: id, Kind: "cell", Row: row, Events: events,
		Summary: &stats.RunSummary{Sims: 1, Flows: 4, Done: 4, RetransPkts: retrans},
		Comps: []campaign.CompCount{
			{Comp: "transport", Events: uint64(events / 2)},
			{Comp: "fabric", Events: uint64(events / 4)},
		},
	}
}

func synthPair(baseRow, curRow []string, baseEvents, curEvents, baseRetrans, curRetrans int64) (*Bundle, *Bundle) {
	base := &Bundle{Dir: "A", Man: &campaign.Manifest{Campaign: "m", Units: []campaign.ManifestUnit{
		{ID: "m/c000", Kind: "cell", Digest: "x"},
	}}, Units: map[string]*campaign.UnitResult{
		"m/c000": fabUnit("m/c000", baseEvents, baseRow, baseRetrans),
	}}
	cur := &Bundle{Dir: "B", Man: &campaign.Manifest{Campaign: "m", Units: []campaign.ManifestUnit{
		{ID: "m/c000", Kind: "cell", Digest: "y"},
	}}, Units: map[string]*campaign.UnitResult{
		"m/c000": fabUnit("m/c000", curEvents, curRow, curRetrans),
	}}
	return base, cur
}

// TestWithinNoiseVerdict: digests differ but every delta is inside its
// window → within-noise, and no drift.
func TestWithinNoiseVerdict(t *testing.T) {
	row := []string{"c000", "dcp", "1.5", "2.5", "10", "0"}
	curRow := []string{"c000", "dcp", "1.52", "2.5", "10", "0"}   // +1.3% < 5%
	base, cur := synthPair(row, curRow, 10_000, 10_050, 100, 100) // +0.5% < 1%
	r := Compare(base, cur, DefaultThresholds())
	if r.Summary.WithinNoise != 1 || r.Drift() {
		t.Fatalf("summary = %+v, want 1 within-noise and no drift", r.Summary)
	}
	u := r.Units[0]
	if len(u.Cells) != 1 || u.Cells[0].Flagged {
		t.Fatalf("within-noise cell delta must be reported unflagged: %+v", u.Cells)
	}
	if u.Events == nil || u.Events.Flagged {
		t.Fatalf("within-noise event delta must be reported unflagged: %+v", u.Events)
	}
}

// TestDriftVerdicts: each delta family beyond its window flips the unit
// to drifted.
func TestDriftVerdicts(t *testing.T) {
	row := []string{"c000", "dcp", "1.5", "2.5", "10", "0"}

	// Cell drift: goodput −20%.
	base, cur := synthPair(row, []string{"c000", "dcp", "1.2", "2.5", "10", "0"}, 10_000, 10_000, 100, 100)
	r := Compare(base, cur, DefaultThresholds())
	if r.Summary.Drifted != 1 || !r.Units[0].Cells[0].Flagged {
		t.Fatalf("cell drift not flagged: %+v", r.Units[0])
	}

	// Event drift: +20% > 1% window.
	base, cur = synthPair(row, row, 10_000, 12_000, 100, 100)
	r = Compare(base, cur, DefaultThresholds())
	u := r.Units[0]
	if u.Verdict != Drifted || u.Events == nil || !u.Events.Flagged {
		t.Fatalf("event drift not flagged: %+v", u)
	}
	// The fabricated comps scale with events, so the comp matrix must
	// drift too, in perf rendering order (transport before fabric).
	if len(u.Comps) != 2 || u.Comps[0].Comp != "transport" || !u.Comps[0].Flagged {
		t.Fatalf("comp drift not flagged in order: %+v", u.Comps)
	}

	// Stat drift: retransmissions 100 → 200.
	base, cur = synthPair(row, row, 10_000, 10_000, 100, 200)
	r = Compare(base, cur, DefaultThresholds())
	u = r.Units[0]
	if u.Verdict != Drifted {
		t.Fatalf("stat drift verdict = %s: %+v", u.Verdict, u)
	}
	found := false
	for _, s := range u.Stats {
		if s.Metric == "retrans_pkts" && s.Flagged && s.Old == 100 && s.New == 200 {
			found = true
		}
	}
	if !found {
		t.Fatalf("retrans_pkts stat delta missing: %+v", u.Stats)
	}
}

// TestZeroBaselineFlagged pins the RelChange(0, x) tightening: a count
// appearing from zero is drift even though the relative change reads 0.
func TestZeroBaselineFlagged(t *testing.T) {
	row := []string{"c000", "dcp", "1.5", "2.5", "0", "0"}
	curRow := []string{"c000", "dcp", "1.5", "2.5", "40", "0"}
	base, cur := synthPair(row, curRow, 10_000, 10_000, 0, 0)
	r := Compare(base, cur, DefaultThresholds())
	if r.Units[0].Verdict != Drifted || !r.Units[0].Cells[0].Flagged {
		t.Fatalf("zero-baseline cell change not flagged: %+v", r.Units[0])
	}
}

// goldenReport is a handcrafted report exercising every rendering path,
// pinned against testdata so output drift is a reviewed diff.
func goldenReport() *Report {
	r := &Report{
		BaseDir: "runs/base", CurDir: "runs/perturbed",
		Campaign:   "wan",
		Notes:      []string{"campaign documents differ"},
		Thresholds: DefaultThresholds(),
	}
	r.add(UnitDiff{ID: "wan/c000", Kind: "cell", Verdict: Identical})
	r.add(UnitDiff{ID: "wan/c001", Kind: "cell", Verdict: WithinNoise,
		Events: &EventDelta{Old: 10_000, New: 10_020, Rel: 0.002},
		Cells: []CellDelta{
			{Table: "wan", Row: "c001", Column: "goodput_Gbps", Old: "1.5", New: "1.52", Rel: 0.0133},
		},
	})
	r.add(UnitDiff{ID: "wan/c002", Kind: "cell", Verdict: Drifted,
		Events: &EventDelta{Old: 10_000, New: 12_000, Rel: 0.2, Flagged: true},
		Cells: []CellDelta{
			{Table: "wan", Row: "c002", Column: "fct_ms", Old: "2.5", New: "3.9", Rel: 0.56, Flagged: true},
			{Table: "wan", Row: "c002", Column: "transport", Old: "dcp", New: "cx5", Flagged: true},
		},
		Stats: []StatDelta{
			{Metric: "retrans_pkts", Old: 100, New: 250, Rel: 1.5, Flagged: true},
		},
		Comps: []CompDelta{
			{Comp: "transport", Old: 5000, New: 6500, Rel: 0.3, Flagged: true},
		},
	})
	r.add(UnitDiff{ID: "wan/c003", Kind: "cell", Verdict: Missing,
		Notes: []string{"absent from runs/perturbed"}})
	r.add(UnitDiff{ID: "fig10", Kind: "experiment", Verdict: Incomparable,
		Notes: []string{"checkpoint absent or corrupt in runs/base"}})
	return r
}

func checkGolden(t *testing.T, got []byte, name string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate by writing the got bytes to %s): %v\ngot:\n%s", path, err, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

func TestReportGoldenText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, buf.Bytes(), "report.golden.txt")
}

func TestReportGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, buf.Bytes(), "report.golden.json")
}
