// Package diff compares two campaign provenance bundles and reports
// structured drift. A bundle is the directory a dcpcampaign run writes:
// manifest.json (per-unit digests), bench.json (per-unit event counts and
// component matrices), checkpoints/ (digest-validated unit results), plus
// the campaign document itself. The engine aligns units by id, proves
// equality cheaply through the manifest digests, and only deep-compares
// units whose digests differ — producing cell-level table deltas,
// summary-statistic shifts and component-count deltas, each classified
// through the same noise-window arithmetic the bench comparator uses.
//
// Everything here is deterministic: unit order follows the baseline
// manifest (current-only units appended in current order), all floats
// render through one formatter, and no map iteration reaches the output.
package diff

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dcpsim/internal/bench"
	"dcpsim/internal/campaign"
	"dcpsim/internal/obs/perf"
)

// Thresholds are the relative noise windows of the deep comparison, one
// per delta family. A delta is flagged when its |relative change| exceeds
// the window (bench.Classify arithmetic: exactly on the edge is within
// noise).
type Thresholds struct {
	// Stats windows summary metrics, percentile shifts and numeric
	// table cells.
	Stats float64 `json:"stats"`
	// Comps windows per-component event counts.
	Comps float64 `json:"comps"`
	// Events windows a unit's total simulated event count. Tight by
	// default: event counts are deterministic, so any shift is a real
	// behaviour change, but tiny scheduling deltas under perturbation
	// are expected.
	Events float64 `json:"events"`
}

// DefaultThresholds matches the repo's bench comparator spirit: 5%
// windows on noisy aggregates, 1% on deterministic event counts.
func DefaultThresholds() Thresholds {
	return Thresholds{Stats: 0.05, Comps: 0.05, Events: 0.01}
}

// Verdict is one unit's comparison outcome, ordered by severity.
type Verdict int

const (
	// Identical units share a manifest digest: byte-equal results.
	Identical Verdict = iota
	// WithinNoise units differ, but every delta sits inside its window.
	WithinNoise
	// Drifted units have at least one delta beyond its window.
	Drifted
	// Missing units exist in only one bundle.
	Missing
	// Incomparable units cannot be compared: kind mismatch, absent or
	// corrupt checkpoint, or result shapes that do not line up.
	Incomparable
)

func (v Verdict) String() string {
	switch v {
	case Identical:
		return "identical"
	case WithinNoise:
		return "within-noise"
	case Drifted:
		return "drifted"
	case Missing:
		return "missing"
	case Incomparable:
		return "incomparable"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MarshalJSON renders verdicts as their names; the JSON report is meant
// to be read by humans and CI log scrapers, not reimported.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(v.String())), nil
}

// CellDelta is one rendered table cell that changed: old → new with the
// relative change when both sides parse as numbers.
type CellDelta struct {
	Table   string  `json:"table"`
	Row     string  `json:"row"`
	Column  string  `json:"column"`
	Old     string  `json:"old"`
	New     string  `json:"new"`
	Rel     float64 `json:"rel"`
	Flagged bool    `json:"flagged"`
}

// StatDelta is one summary metric that changed (stats.Metric names).
type StatDelta struct {
	Metric  string  `json:"metric"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Rel     float64 `json:"rel"`
	Flagged bool    `json:"flagged"`
}

// CompDelta is one engine component whose dispatched-event count moved.
type CompDelta struct {
	Comp    string  `json:"comp"`
	Old     uint64  `json:"old"`
	New     uint64  `json:"new"`
	Rel     float64 `json:"rel"`
	Flagged bool    `json:"flagged"`
}

// EventDelta classifies a unit's total simulated event count.
type EventDelta struct {
	Old     int64   `json:"old"`
	New     int64   `json:"new"`
	Rel     float64 `json:"rel"`
	Flagged bool    `json:"flagged"`
}

// UnitDiff is one unit's full comparison record. Deltas are only
// populated for non-identical comparable units, and hold every observed
// change (flagged or not) so within-noise drift remains visible.
type UnitDiff struct {
	ID      string      `json:"id"`
	Kind    string      `json:"kind"`
	Verdict Verdict     `json:"verdict"`
	Notes   []string    `json:"notes,omitempty"`
	Events  *EventDelta `json:"events,omitempty"`
	Cells   []CellDelta `json:"cells,omitempty"`
	Stats   []StatDelta `json:"stats,omitempty"`
	Comps   []CompDelta `json:"comps,omitempty"`
}

// Summary counts units per verdict.
type Summary struct {
	Identical    int `json:"identical"`
	WithinNoise  int `json:"within_noise"`
	Drifted      int `json:"drifted"`
	Missing      int `json:"missing"`
	Incomparable int `json:"incomparable"`
}

// Report is the complete diff of two bundles.
type Report struct {
	BaseDir    string     `json:"base_dir"`
	CurDir     string     `json:"cur_dir"`
	Campaign   string     `json:"campaign"`
	Notes      []string   `json:"notes,omitempty"`
	Thresholds Thresholds `json:"thresholds"`
	Units      []UnitDiff `json:"units"`
	Summary    Summary    `json:"summary"`
}

// Drift reports whether the comparison demands attention: any drifted,
// missing or incomparable unit.
func (r *Report) Drift() bool {
	return r.Summary.Drifted+r.Summary.Missing+r.Summary.Incomparable > 0
}

// Bundle is one loaded run directory.
type Bundle struct {
	Dir   string
	Man   *campaign.Manifest
	Bench *campaign.BenchSnapshot
	Doc   *campaign.Doc
	// Units holds the digest-validated checkpoint payloads, keyed by
	// unit id; absent entries mean the checkpoint is missing or corrupt.
	Units map[string]*campaign.UnitResult
}

// LoadBundle reads a completed run directory. The manifest is mandatory
// (it is written last, so its presence certifies completeness); a broken
// bench snapshot or campaign doc degrades the comparison rather than
// failing the load, surfacing as notes on the report.
func LoadBundle(dir string) (*Bundle, error) {
	man, err := campaign.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Dir: dir, Man: man, Units: map[string]*campaign.UnitResult{}}
	b.Bench, _ = campaign.LoadBenchSnapshot(dir)
	b.Doc = loadDoc(dir)
	for _, mu := range man.Units {
		if res, _ := campaign.LoadCheckpoint(dir, mu.ID); res != nil {
			b.Units[mu.ID] = res
		}
	}
	return b, nil
}

// loadDoc best-effort parses the bundled campaign document for scenario
// column labels. A missing or unparseable doc only costs label quality.
func loadDoc(dir string) *campaign.Doc {
	raw, err := os.ReadFile(filepath.Join(dir, "campaign.doc"))
	if err != nil {
		return nil
	}
	format := campaign.FormatTOML
	if bytes.HasPrefix(bytes.TrimSpace(raw), []byte("{")) {
		format = campaign.FormatJSON
	}
	doc, diags := campaign.Parse(raw, format)
	if len(diags) > 0 {
		return nil
	}
	return doc
}

// columnsFor resolves a cell unit's table header from the bundle's own
// campaign document; nil when the doc is unavailable.
func (b *Bundle) columnsFor(unitID string) []string {
	if b.Doc == nil {
		return nil
	}
	scID, _, ok := strings.Cut(unitID, "/")
	if !ok {
		return nil
	}
	for _, sc := range b.Doc.Scenarios {
		if sc.ID == scID {
			return campaign.ScenarioColumns(sc)
		}
	}
	return nil
}

// Compare diffs two loaded bundles under the given thresholds.
func Compare(base, cur *Bundle, th Thresholds) *Report {
	r := &Report{
		BaseDir: base.Dir, CurDir: cur.Dir,
		Campaign: base.Man.Campaign, Thresholds: th,
	}
	r.Notes = bundleNotes(base, cur)

	curUnits := map[string]campaign.ManifestUnit{}
	for _, mu := range cur.Man.Units {
		curUnits[mu.ID] = mu
	}
	baseSeen := map[string]bool{}
	for _, bu := range base.Man.Units {
		baseSeen[bu.ID] = true
		cu, ok := curUnits[bu.ID]
		if !ok {
			r.add(UnitDiff{ID: bu.ID, Kind: bu.Kind, Verdict: Missing,
				Notes: []string{fmt.Sprintf("absent from %s", cur.Dir)}})
			continue
		}
		r.add(compareUnit(base, cur, bu, cu, th))
	}
	for _, cu := range cur.Man.Units {
		if !baseSeen[cu.ID] {
			r.add(UnitDiff{ID: cu.ID, Kind: cu.Kind, Verdict: Missing,
				Notes: []string{fmt.Sprintf("absent from %s", base.Dir)}})
		}
	}
	return r
}

func (r *Report) add(u UnitDiff) {
	r.Units = append(r.Units, u)
	switch u.Verdict {
	case Identical:
		r.Summary.Identical++
	case WithinNoise:
		r.Summary.WithinNoise++
	case Drifted:
		r.Summary.Drifted++
	case Missing:
		r.Summary.Missing++
	case Incomparable:
		r.Summary.Incomparable++
	}
}

// bundleNotes records campaign-level context differences. None of these
// alone constitute drift — diffing a deliberately perturbed document is
// the tool's main use — but the reader must see them.
func bundleNotes(base, cur *Bundle) []string {
	var notes []string
	if base.Man.Campaign != cur.Man.Campaign {
		notes = append(notes, fmt.Sprintf("campaign name differs: %q vs %q", base.Man.Campaign, cur.Man.Campaign))
	}
	if base.Man.DocSHA256 != cur.Man.DocSHA256 {
		notes = append(notes, "campaign documents differ")
	}
	if base.Man.Seed != cur.Man.Seed {
		notes = append(notes, fmt.Sprintf("seed differs: %d vs %d", base.Man.Seed, cur.Man.Seed))
	}
	if base.Man.Scale != cur.Man.Scale {
		notes = append(notes, fmt.Sprintf("scale differs: %s vs %s", fnum(base.Man.Scale), fnum(cur.Man.Scale)))
	}
	if base.Man.GoVersion != cur.Man.GoVersion {
		notes = append(notes, fmt.Sprintf("go version differs: %s vs %s", base.Man.GoVersion, cur.Man.GoVersion))
	}
	return notes
}

// compareUnit deep-compares one unit present in both manifests.
func compareUnit(base, cur *Bundle, bu, cu campaign.ManifestUnit, th Thresholds) UnitDiff {
	d := UnitDiff{ID: bu.ID, Kind: bu.Kind}
	if bu.Kind != cu.Kind {
		d.Verdict = Incomparable
		d.Notes = append(d.Notes, fmt.Sprintf("kind mismatch: %s vs %s", bu.Kind, cu.Kind))
		return d
	}
	if bu.Digest == cu.Digest {
		d.Verdict = Identical
		return d
	}
	br, cr := base.Units[bu.ID], cur.Units[cu.ID]
	if br == nil || cr == nil {
		d.Verdict = Incomparable
		if br == nil {
			d.Notes = append(d.Notes, fmt.Sprintf("checkpoint absent or corrupt in %s", base.Dir))
		}
		if cr == nil {
			d.Notes = append(d.Notes, fmt.Sprintf("checkpoint absent or corrupt in %s", cur.Dir))
		}
		// The bench snapshot carries the unit's event count and component
		// matrix independently of the checkpoint, so even an incomparable
		// unit can still show what moved.
		if bb, cb := benchUnitOf(base, bu.ID), benchUnitOf(cur, cu.ID); bb != nil && cb != nil {
			d.Events = &EventDelta{Old: bb.Events, New: cb.Events}
			d.Events.Rel = bench.RelChange(float64(bb.Events), float64(cb.Events))
			d.Events.Flagged = flagged(float64(bb.Events), float64(cb.Events), d.Events.Rel, th.Events)
			d.Comps = diffCompCounts(bb.Comps, cb.Comps, th)
		}
		return d
	}

	d.Events = &EventDelta{Old: br.Events, New: cr.Events}
	d.Events.Rel = bench.RelChange(float64(br.Events), float64(cr.Events))
	d.Events.Flagged = flagged(float64(br.Events), float64(cr.Events), d.Events.Rel, th.Events)

	d.Cells = append(d.Cells, diffRow(base, br, cr, &d, th)...)
	d.Cells = append(d.Cells, diffTables(br, cr, &d, th)...)
	d.Stats = diffStats(br, cr, &d, th)
	d.Comps = diffComps(br, cr, th)

	switch {
	case len(d.Notes) > 0:
		d.Verdict = Incomparable
	case anyFlagged(&d):
		d.Verdict = Drifted
	default:
		d.Verdict = WithinNoise
	}
	return d
}

func anyFlagged(d *UnitDiff) bool {
	if d.Events != nil && d.Events.Flagged {
		return true
	}
	for _, c := range d.Cells {
		if c.Flagged {
			return true
		}
	}
	for _, s := range d.Stats {
		if s.Flagged {
			return true
		}
	}
	for _, c := range d.Comps {
		if c.Flagged {
			return true
		}
	}
	return false
}

// flagged applies the bench classification to a delta, with one
// tightening: a zero baseline moving to non-zero is always flagged
// (RelChange reports 0 there, which must not read as "no change").
func flagged(old, new, rel, window float64) bool {
	if old == 0 {
		return new != 0
	}
	return bench.Classify(rel, window) != bench.WithinNoise
}

// diffRow compares a scenario cell's pre-formatted result row.
func diffRow(base *Bundle, br, cr *campaign.UnitResult, d *UnitDiff, th Thresholds) []CellDelta {
	if len(br.Row) == 0 && len(cr.Row) == 0 {
		return nil
	}
	if len(br.Row) != len(cr.Row) {
		d.Notes = append(d.Notes, fmt.Sprintf("row shape mismatch: %d vs %d columns", len(br.Row), len(cr.Row)))
		return nil
	}
	cols := base.columnsFor(br.ID)
	scID, _, _ := strings.Cut(br.ID, "/")
	var out []CellDelta
	for i := 1; i < len(br.Row); i++ { // column 0 is the row key
		if br.Row[i] == cr.Row[i] {
			continue
		}
		out = append(out, cellDelta(scID, br.Row[0], columnName(cols, i), br.Row[i], cr.Row[i], th))
	}
	return out
}

// diffTables compares a registry experiment's rendered tables, aligning
// tables by name and rows by their first-column key.
func diffTables(br, cr *campaign.UnitResult, d *UnitDiff, th Thresholds) []CellDelta {
	curByName := map[string]int{}
	for i, t := range cr.Tables {
		curByName[t.Name] = i
	}
	var out []CellDelta
	matched := map[string]bool{}
	for _, bt := range br.Tables {
		ci, ok := curByName[bt.Name]
		if !ok {
			d.Notes = append(d.Notes, fmt.Sprintf("table %q absent from current bundle", bt.Name))
			continue
		}
		matched[bt.Name] = true
		ct := cr.Tables[ci]
		if !equalStrings(bt.Columns, ct.Columns) {
			d.Notes = append(d.Notes, fmt.Sprintf("table %q column mismatch: [%s] vs [%s]",
				bt.Name, strings.Join(bt.Columns, " "), strings.Join(ct.Columns, " ")))
			continue
		}
		curRows := map[string][]string{}
		for _, row := range ct.Rows {
			if len(row) > 0 {
				curRows[row[0]] = row
			}
		}
		seen := map[string]bool{}
		for _, brow := range bt.Rows {
			if len(brow) == 0 {
				continue
			}
			crow, ok := curRows[brow[0]]
			if !ok {
				d.Notes = append(d.Notes, fmt.Sprintf("table %q row %q absent from current bundle", bt.Name, brow[0]))
				continue
			}
			seen[brow[0]] = true
			for i := 1; i < len(brow) && i < len(crow); i++ {
				if brow[i] == crow[i] {
					continue
				}
				out = append(out, cellDelta(bt.Name, brow[0], columnName(bt.Columns, i), brow[i], crow[i], th))
			}
		}
		for _, crow := range ct.Rows {
			if len(crow) > 0 && !seen[crow[0]] {
				d.Notes = append(d.Notes, fmt.Sprintf("table %q row %q absent from baseline bundle", bt.Name, crow[0]))
			}
		}
	}
	for _, ct := range cr.Tables {
		if !matched[ct.Name] {
			d.Notes = append(d.Notes, fmt.Sprintf("table %q absent from baseline bundle", ct.Name))
		}
	}
	return out
}

// cellDelta builds one cell comparison. Numeric pairs are classified
// through the stats window; a non-numeric change is always flagged.
func cellDelta(table, row, col, old, new string, th Thresholds) CellDelta {
	cd := CellDelta{Table: table, Row: row, Column: col, Old: old, New: new}
	ov, oerr := strconv.ParseFloat(old, 64)
	nv, nerr := strconv.ParseFloat(new, 64)
	if oerr != nil || nerr != nil {
		cd.Flagged = true
		return cd
	}
	cd.Rel = bench.RelChange(ov, nv)
	cd.Flagged = flagged(ov, nv, cd.Rel, th.Stats)
	return cd
}

func columnName(cols []string, i int) string {
	if i < len(cols) {
		return cols[i]
	}
	return fmt.Sprintf("col%d", i)
}

// statMetrics is the fixed probe set of summary metrics the diff tracks:
// the workload-shape counters plus the tail-latency percentiles the paper
// cares about.
var statMetrics = []string{
	"flows", "done", "retrans_pkts", "timeouts", "ho_triggers",
	"fct_p50_us", "fct_p99_us", "fct_max_us", "slowdown_p50", "slowdown_p99",
}

// diffStats compares the units' merged RunSummary digests.
func diffStats(br, cr *campaign.UnitResult, d *UnitDiff, th Thresholds) []StatDelta {
	bs, cs := br.Summary, cr.Summary
	if bs == nil && cs == nil {
		return nil
	}
	if (bs == nil) != (cs == nil) {
		d.Notes = append(d.Notes, "statistics present in only one bundle (observe.stats toggled?)")
		return nil
	}
	var out []StatDelta
	for _, name := range statMetrics {
		ov, _ := bs.Metric(name)
		nv, _ := cs.Metric(name)
		if ov == nv {
			continue
		}
		sd := StatDelta{Metric: name, Old: ov, New: nv, Rel: bench.RelChange(ov, nv)}
		sd.Flagged = flagged(ov, nv, sd.Rel, th.Stats)
		out = append(out, sd)
	}
	return out
}

// benchUnitOf finds a unit's slice of a bundle's bench snapshot.
func benchUnitOf(b *Bundle, id string) *campaign.BenchUnit {
	if b.Bench == nil {
		return nil
	}
	for i := range b.Bench.Units {
		if b.Bench.Units[i].ID == id {
			return &b.Bench.Units[i]
		}
	}
	return nil
}

// diffComps compares checkpointed component-count matrices.
func diffComps(br, cr *campaign.UnitResult, th Thresholds) []CompDelta {
	return diffCompCounts(br.Comps, cr.Comps, th)
}

// diffCompCounts compares two component-count matrices in perf report
// order.
func diffCompCounts(bc, cc []campaign.CompCount, th Thresholds) []CompDelta {
	if len(bc) == 0 && len(cc) == 0 {
		return nil
	}
	old := map[string]uint64{}
	for _, c := range bc {
		old[c.Comp] = c.Events
	}
	cur := map[string]uint64{}
	for _, c := range cc {
		cur[c.Comp] = c.Events
	}
	var out []CompDelta
	for _, comp := range perf.CompOrder() {
		name := comp.String()
		ov, nv := old[name], cur[name]
		if ov == nv {
			continue
		}
		cd := CompDelta{Comp: name, Old: ov, New: nv, Rel: bench.RelChange(float64(ov), float64(nv))}
		cd.Flagged = flagged(float64(ov), float64(nv), cd.Rel, th.Comps)
		out = append(out, cd)
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
