package diff

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file renders a Report for humans (text) and machines (JSON). Both
// forms are deterministic byte-for-byte: the text lists only units that
// need reading (non-identical ones), the JSON carries every unit so a
// CI artifact preserves the full comparison.

// WriteText renders the report in reading order: header, campaign-level
// notes, one block per non-identical unit, then the verdict census.
func WriteText(w io.Writer, r *Report) error {
	fmt.Fprintf(w, "bundle diff: %s vs %s\n", r.BaseDir, r.CurDir)
	fmt.Fprintf(w, "campaign %q, thresholds: stats %s, comps %s, events %s\n",
		r.Campaign, pct(r.Thresholds.Stats), pct(r.Thresholds.Comps), pct(r.Thresholds.Events))
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for i := range r.Units {
		u := &r.Units[i]
		if u.Verdict == Identical {
			continue
		}
		fmt.Fprintf(w, "\nunit %s [%s]\n", u.ID, u.Verdict)
		for _, n := range u.Notes {
			fmt.Fprintf(w, "  note: %s\n", n)
		}
		if u.Events != nil && (u.Events.Flagged || u.Events.Old != u.Events.New) {
			fmt.Fprintf(w, "  events: %d -> %d (%s)%s\n", u.Events.Old, u.Events.New,
				pctSigned(u.Events.Rel), mark(u.Events.Flagged))
		}
		for _, c := range u.Cells {
			fmt.Fprintf(w, "  cell %s[%s].%s: %s -> %s (%s)%s\n",
				c.Table, c.Row, c.Column, c.Old, c.New, relString(c), mark(c.Flagged))
		}
		for _, s := range u.Stats {
			fmt.Fprintf(w, "  stat %s: %s -> %s (%s)%s\n",
				s.Metric, fnum(s.Old), fnum(s.New), pctSigned(s.Rel), mark(s.Flagged))
		}
		for _, c := range u.Comps {
			fmt.Fprintf(w, "  comp %s: %d -> %d (%s)%s\n",
				c.Comp, c.Old, c.New, pctSigned(c.Rel), mark(c.Flagged))
		}
	}
	s := r.Summary
	_, err := fmt.Fprintf(w, "\nsummary: %d identical, %d within-noise, %d drifted, %d missing, %d incomparable\n",
		s.Identical, s.WithinNoise, s.Drifted, s.Missing, s.Incomparable)
	return err
}

// WriteJSON renders the full report as indented canonical JSON (struct
// field order, trailing newline), matching the repo's bundle files.
func WriteJSON(w io.Writer, r *Report) error {
	blob, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// mark renders the drift flag the way bench verdicts do.
func mark(flagged bool) string {
	if flagged {
		return "  !"
	}
	return ""
}

// relString renders a cell delta's magnitude: a percentage for numeric
// cells, a fixed tag when either side is text (where Rel is meaningless).
func relString(c CellDelta) string {
	if _, err := strconv.ParseFloat(c.Old, 64); err != nil {
		return "text"
	}
	if _, err := strconv.ParseFloat(c.New, 64); err != nil {
		return "text"
	}
	return pctSigned(c.Rel)
}

func pct(v float64) string { return fnum(v*100) + "%" }

func pctSigned(rel float64) string {
	return fmt.Sprintf("%+.1f%%", rel*100)
}

// fnum formats floats compactly and stably (no exponent drift between
// platforms: strconv's shortest representation is deterministic).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
