package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenRun builds a small, fully hand-determined observed "run": a trace of
// one trimmed packet's lifecycle across two fabric nodes plus a metrics
// registry sampled three times with one late-registered series. Everything
// the exporters can render appears at least once (ports and portless events,
// notes, NaN padding, fractional and integral samples).
func goldenRun() ([]Event, *Metrics) {
	us := func(f float64) units.Time { return units.Scale(units.Microsecond, f) }
	events := []Event{
		{At: us(0.5), Type: EvFlowStart, Node: 0, Port: -1, Flow: 1, Aux: 1 << 20},
		{At: us(1.2), Type: EvEnqueue, Node: 2, Port: 0, Flow: 1, PSN: 0, MSN: 0, Size: 4154, Aux: 4154},
		{At: us(1.3), Type: EvTrim, Node: 2, Port: 1, Flow: 1, PSN: 3, MSN: 0, Size: 4154, Aux: 1 << 20},
		{At: us(1.31), Type: EvHOEnqueue, Node: 2, Port: 1, Flow: 1, PSN: 3, Size: 57, Aux: 57},
		{At: us(2.0), Type: EvHOBounce, Node: 1, Port: -1, Flow: 1, PSN: 3, Size: 57},
		{At: us(2.7), Type: EvHOReturn, Node: 0, Port: -1, Flow: 1, PSN: 3, Size: 57, Aux: 1},
		{At: us(2.9), Type: EvRetransmit, Node: 0, Port: -1, Flow: 1, PSN: 3, Size: 4154, Aux: 1},
		{At: us(3.4), Type: EvDataDrop, Node: 2, Port: 0, Flow: 1, PSN: 9, Size: 4154, Note: "forced-loss"},
		{At: us(4.0), Type: EvFault, Node: -1, Port: -1, Note: "linkdown cross0"},
		{At: us(5.5), Type: EvFlowDone, Node: 0, Port: -1, Flow: 1, Aux: 1 << 20},
	}

	eng := sim.NewEngine(1)
	m := NewMetrics(eng, 2*units.Microsecond)
	depth := 0.0
	m.Gauge("sw2.eg0.dataq_bytes", func() float64 { depth += 4154; return depth })
	m.Gauge("rate_gbps", func() float64 { return 12.25 })
	eng.At(us(3), func() {
		m.Gauge("late_series", func() float64 { return 3 })
	})
	eng.At(us(5), func() {})
	m.Start()
	eng.Run(0)
	return events, m
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden (run with -update after intentional format changes)\n got: %s\nwant: %s",
			name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	events, m := goldenRun()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, m); err != nil {
		t.Fatal(err)
	}
	// The format promises Perfetto-loadable JSON: it must at minimum parse,
	// carry one traceEvents array, and name every node process.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())
}

func TestMetricsCSVGolden(t *testing.T) {
	_, m := goldenRun()
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.csv", buf.Bytes())
}
