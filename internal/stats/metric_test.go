package stats

import "testing"

// TestMetricCounters pins that every advertised counter name resolves and
// returns the matching field.
func TestMetricCounters(t *testing.T) {
	s := &RunSummary{Sims: 1, Flows: 2, Done: 3, Bytes: 4, DataPkts: 5,
		RetransPkts: 6, Timeouts: 7, HOTriggers: 8, Events: 9,
		StateBytes: 10, Steps: 11}
	want := map[string]float64{
		"sims": 1, "flows": 2, "done": 3, "bytes": 4, "data_pkts": 5,
		"retrans_pkts": 6, "timeouts": 7, "ho_triggers": 8, "events": 9,
		"state_bytes": 10, "steps": 11,
	}
	for _, name := range CounterMetrics() {
		v, ok := s.Metric(name)
		if !ok {
			t.Errorf("advertised counter %q does not resolve", name)
			continue
		}
		if v != want[name] {
			t.Errorf("Metric(%q) = %v, want %v", name, v, want[name])
		}
	}
	if len(want) != len(CounterMetrics()) {
		t.Errorf("CounterMetrics lists %d names, test covers %d", len(CounterMetrics()), len(want))
	}
}

// TestMetricPercentiles pins unit scaling: FCT metrics come back in
// microseconds (picos/1e6), slowdown as a plain ratio.
func TestMetricPercentiles(t *testing.T) {
	s := &RunSummary{}
	s.FCT.Record(2_000_000)              // 2 µs in picos
	s.Slowdown.Record(3 * slowdownScale) // slowdown 3.0
	s.StepTime.Record(2_000_000)
	for _, name := range []string{"fct_p50_us", "fct_p99_us", "fct_p99.9_us", "fct_max_us",
		"step_p50_us", "step_p99.9_us", "step_max_us"} {
		v, ok := s.Metric(name)
		if !ok {
			t.Fatalf("Metric(%q) did not resolve", name)
		}
		// Log buckets quantize; the single sample must land near 2 µs.
		if v < 1 || v > 4 {
			t.Errorf("Metric(%q) = %v µs, want ≈2", name, v)
		}
	}
	if v, ok := s.Metric("slowdown_p50"); !ok || v < 1.5 || v > 6 {
		t.Errorf("Metric(slowdown_p50) = %v ok=%v, want ≈3", v, ok)
	}
}

func TestMetricRejectsUnknown(t *testing.T) {
	s := &RunSummary{}
	for _, name := range []string{"", "latency", "fct_p_us", "fct_p0_us",
		"fct_p101_us", "fct_pxx_us", "slowdown_p", "fct_p50", "p50"} {
		if _, ok := s.Metric(name); ok {
			t.Errorf("Metric(%q) resolved, want rejection", name)
		}
	}
}
