package stats

import (
	"fmt"
	"io"
	"strconv"
)

// This file holds the mergeable accumulators the parallel experiment
// engine funnels per-cell results through. The merge contract: every
// accumulator's Merge is commutative and associative, so folding per-cell
// partials in ANY shard order produces the exact same state as feeding one
// accumulator the concatenated sample stream. merge_test.go proves the
// property over random splits; the parallel runner relies on it so a
// workers=8 sweep exports byte-identical statistics to workers=1.

// Merge folds another histogram into h. Merging in any order over any
// sharding of the sample stream equals recording every sample into a
// single histogram: counts and n are sums, min/max are commutative
// extrema.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
}

// slowdownScale fixes the slowdown histogram resolution: slowdowns are
// recorded ×1000, so three decimal places survive the integer histogram.
const slowdownScale = 1000

// RunSummary is a mergeable digest of one or more simulation runs: flow
// and packet counters plus log-bucketed FCT and slowdown distributions.
// The zero value is empty and ready to use; equality (==) compares two
// summaries exactly, which the shard-order tests exploit.
type RunSummary struct {
	// Sims counts simulations folded in.
	Sims int64
	// Flows/Done count registered and completed flows.
	Flows int64
	Done  int64
	// Bytes sums the application bytes of completed flows.
	Bytes int64

	DataPkts    int64
	RetransPkts int64
	Timeouts    int64
	HOTriggers  int64

	// Events counts simulator events executed across the folded engines.
	Events int64

	// StateBytes sums the peak per-flow reliability tracking state across
	// both endpoints of every flow (the bitmap-vs-counter memory cost).
	StateBytes int64
	// Steps counts collective steps folded in.
	Steps int64

	// FCT holds completion times of finished flows in picoseconds.
	FCT LogHist
	// Slowdown holds FCT/IdealFCT of finished flows, scaled by
	// slowdownScale.
	Slowdown LogHist
	// StepTime holds collective step-completion times in picoseconds.
	StepTime LogHist
}

// AddFlow folds one flow record in.
func (s *RunSummary) AddFlow(f *FlowRecord) {
	s.Flows++
	s.DataPkts += f.DataPkts
	s.RetransPkts += f.RetransPkts
	s.Timeouts += f.Timeouts
	s.HOTriggers += f.HOTriggers
	s.StateBytes += f.SendStateBytes + f.RecvStateBytes
	if !f.Done {
		return
	}
	s.Done++
	s.Bytes += f.Size
	s.FCT.Record(f.FCT().Picos())
	s.Slowdown.Record(int64(f.Slowdown() * slowdownScale))
}

// AddCollector folds every flow of a collector in (registration order,
// though order cannot matter: AddFlow commutes).
func (s *RunSummary) AddCollector(c *Collector) {
	s.Sims++
	for _, f := range c.Flows() {
		s.AddFlow(f)
	}
	for _, d := range c.StepTimes() {
		s.Steps++
		s.StepTime.Record(d.Picos())
	}
}

// Merge folds another summary into s. Commutative and associative.
func (s *RunSummary) Merge(o *RunSummary) {
	if o == nil {
		return
	}
	s.Sims += o.Sims
	s.Flows += o.Flows
	s.Done += o.Done
	s.Bytes += o.Bytes
	s.DataPkts += o.DataPkts
	s.RetransPkts += o.RetransPkts
	s.Timeouts += o.Timeouts
	s.HOTriggers += o.HOTriggers
	s.Events += o.Events
	s.StateBytes += o.StateBytes
	s.Steps += o.Steps
	s.FCT.Merge(&o.FCT)
	s.Slowdown.Merge(&o.Slowdown)
	s.StepTime.Merge(&o.StepTime)
}

// RunSummaryCSVHeader is the column row WriteCSVRow's output aligns with.
const RunSummaryCSVHeader = "experiment,sims,flows,done,bytes,data_pkts,retrans_pkts,timeouts,ho_triggers,events,fct_p50_us,fct_p99_us,fct_max_us,slowdown_p50,slowdown_p99,state_bytes,steps,step_p99_us"

// WriteCSVRow writes one label-prefixed CSV row of the summary. Numbers
// are rendered with fixed formats so the row is byte-stable for identical
// summaries.
func (s *RunSummary) WriteCSVRow(w io.Writer, label string) error {
	us := func(picos int64) string {
		return strconv.FormatFloat(float64(picos)/1e6, 'f', 3, 64)
	}
	sd := func(scaled int64) string {
		return strconv.FormatFloat(float64(scaled)/slowdownScale, 'f', 3, 64)
	}
	_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%d,%d,%s\n",
		label, s.Sims, s.Flows, s.Done, s.Bytes,
		s.DataPkts, s.RetransPkts, s.Timeouts, s.HOTriggers, s.Events,
		us(s.FCT.Percentile(50)), us(s.FCT.Percentile(99)), us(s.FCT.Max()),
		sd(s.Slowdown.Percentile(50)), sd(s.Slowdown.Percentile(99)),
		s.StateBytes, s.Steps, us(s.StepTime.Percentile(99)))
	return err
}
