// Package stats collects per-flow results and turns them into the series
// the paper's figures report: FCT slowdown percentiles per flow-size
// bucket, CDFs, job completion times, and counter summaries.
package stats

import (
	"fmt"
	"math"
	"sort"

	"dcpsim/internal/packet"
	"dcpsim/internal/units"
)

// FlowRecord accumulates everything measured about one flow.
type FlowRecord struct {
	ID       uint64
	Src, Dst packet.NodeID
	Size     int64 // application bytes
	Class    string
	Group    int

	Start units.Time
	End   units.Time
	Done  bool

	// IdealFCT is the unloaded completion time used as the slowdown
	// denominator.
	IdealFCT units.Time

	DataPkts    int64 // first-transmission data packets sent
	RetransPkts int64 // retransmitted data packets sent
	Timeouts    int64 // retransmission timeout events
	HOTriggers  int64 // HO packets received back at the sender (DCP)

	// SendStateBytes/RecvStateBytes record the peak per-flow reliability
	// tracking state (bitmaps, counters, retransmission queues) at the two
	// endpoints — the bitmap-vs-counter memory cost the SDR/DCP comparison
	// measures rather than asserts.
	SendStateBytes int64
	RecvStateBytes int64
}

// NoteSendState raises the sender-side tracking-state peak to n bytes.
func (f *FlowRecord) NoteSendState(n int64) {
	if n > f.SendStateBytes {
		f.SendStateBytes = n
	}
}

// NoteRecvState raises the receiver-side tracking-state peak to n bytes.
func (f *FlowRecord) NoteRecvState(n int64) {
	if n > f.RecvStateBytes {
		f.RecvStateBytes = n
	}
}

// FCT returns the flow completion time (valid once Done).
func (f *FlowRecord) FCT() units.Time { return f.End - f.Start }

// Slowdown returns FCT normalized by the ideal FCT.
func (f *FlowRecord) Slowdown() float64 {
	if f.IdealFCT <= 0 {
		return 1
	}
	return float64(f.FCT().Picos()) / float64(f.IdealFCT.Picos())
}

// RetransRatio returns retransmitted packets over total first-transmission
// packets, the Fig. 1 metric.
func (f *FlowRecord) RetransRatio() float64 {
	if f.DataPkts == 0 {
		return 0
	}
	return float64(f.RetransPkts) / float64(f.DataPkts)
}

// Collector owns the flow records of one simulation run.
type Collector struct {
	flows map[uint64]*FlowRecord
	order []uint64
	steps []units.Time

	// OnDone, if set, is invoked when a flow completes (collective
	// schedulers use it to release dependent flows).
	OnDone func(f *FlowRecord)
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{flows: make(map[uint64]*FlowRecord)}
}

// Add registers a flow and returns its record.
func (c *Collector) Add(id uint64, src, dst packet.NodeID, size int64, start units.Time) *FlowRecord {
	f := &FlowRecord{ID: id, Src: src, Dst: dst, Size: size, Start: start}
	c.flows[id] = f
	c.order = append(c.order, id)
	return f
}

// Flow returns the record for id, or nil.
func (c *Collector) Flow(id uint64) *FlowRecord { return c.flows[id] }

// Done marks the flow complete at time t. Repeated calls are ignored.
func (c *Collector) Done(id uint64, t units.Time) {
	f := c.flows[id]
	if f == nil || f.Done {
		return
	}
	f.Done = true
	f.End = t
	if c.OnDone != nil {
		c.OnDone(f)
	}
}

// AddStepTime records the completion time of one collective step (start of
// step to last member flow done) — the tail-latency sample the ML-collective
// family reports at p99/p99.9.
func (c *Collector) AddStepTime(d units.Time) { c.steps = append(c.steps, d) }

// StepTimes returns the recorded collective step durations in order.
func (c *Collector) StepTimes() []units.Time { return c.steps }

// Flows returns all records in registration order.
func (c *Collector) Flows() []*FlowRecord {
	out := make([]*FlowRecord, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.flows[id])
	}
	return out
}

// FinishedFlows returns completed records, optionally filtered by class
// ("" matches all).
func (c *Collector) FinishedFlows(class string) []*FlowRecord {
	var out []*FlowRecord
	for _, id := range c.order {
		f := c.flows[id]
		if f.Done && (class == "" || f.Class == class) {
			out = append(out, f)
		}
	}
	return out
}

// AllDone reports whether every registered flow has completed.
func (c *Collector) AllDone() bool {
	for _, f := range c.flows {
		if !f.Done {
			return false
		}
	}
	return true
}

// CountUnfinished returns the number of incomplete flows.
func (c *Collector) CountUnfinished() int {
	n := 0
	for _, f := range c.flows {
		if !f.Done {
			n++
		}
	}
	return n
}

// Percentile returns the p-th percentile (0..100) of vals using
// nearest-rank on a sorted copy. Returns NaN for empty input.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// SizeBucket is one point of a per-flow-size series (the Fig. 13/15/16
// x-axis).
type SizeBucket struct {
	AvgSizeKB float64
	Count     int
	P50, P95  float64
	P99       float64
	Mean      float64
}

// BucketizeBySize sorts completed flows by size, splits them into n
// equal-count buckets and summarizes metric per bucket. This is how the
// paper's FCT-slowdown-vs-flow-size plots are constructed.
func BucketizeBySize(flows []*FlowRecord, n int, metric func(*FlowRecord) float64) []SizeBucket {
	if len(flows) == 0 || n <= 0 {
		return nil
	}
	s := append([]*FlowRecord(nil), flows...)
	sort.Slice(s, func(i, j int) bool { return s[i].Size < s[j].Size })
	if n > len(s) {
		n = len(s)
	}
	out := make([]SizeBucket, 0, n)
	for b := 0; b < n; b++ {
		lo := b * len(s) / n
		hi := (b + 1) * len(s) / n
		if hi <= lo {
			continue
		}
		var sizeSum float64
		vals := make([]float64, 0, hi-lo)
		for _, f := range s[lo:hi] {
			sizeSum += float64(f.Size)
			vals = append(vals, metric(f))
		}
		out = append(out, SizeBucket{
			AvgSizeKB: sizeSum / float64(hi-lo) / 1000,
			Count:     hi - lo,
			P50:       Percentile(vals, 50),
			P95:       Percentile(vals, 95),
			P99:       Percentile(vals, 99),
			Mean:      Mean(vals),
		})
	}
	return out
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value float64
	Cum   float64
}

// CDF returns up to n evenly spaced points of the empirical CDF of vals.
func CDF(vals []float64, n int) []CDFPoint {
	if len(vals) == 0 {
		return nil
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if n <= 0 || n > len(s) {
		n = len(s)
	}
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		idx := i*len(s)/n - 1
		out = append(out, CDFPoint{Value: s[idx], Cum: float64(idx+1) / float64(len(s))})
	}
	return out
}

// Goodput returns application goodput in Gbps for size bytes delivered over
// d.
func Goodput(size int64, d units.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(size) * 8 / d.Seconds() / 1e9
}

// Table is a printable result table: a name, column headers, and rows.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := "## " + t.Name + "\n"
	line := ""
	for i, c := range t.Columns {
		line += fmt.Sprintf("%-*s  ", widths[i], c)
	}
	out += line + "\n"
	for _, r := range t.Rows {
		line = ""
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			line += fmt.Sprintf("%-*s  ", w, c)
		}
		out += line + "\n"
	}
	return out
}
