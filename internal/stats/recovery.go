package stats

import (
	"dcpsim/internal/units"
)

// GoodputTrace is a fixed-bin time series of delivered bytes, sampled from a
// cumulative counter (e.g. nic.DeliveredBytes). Fault experiments use it to
// measure blackout duration and time-to-recover around an injected fault.
type GoodputTrace struct {
	bin  units.Time
	last int64
	bins []int64
}

// NewGoodputTrace returns a trace with the given bin width.
func NewGoodputTrace(bin units.Time) *GoodputTrace {
	return &GoodputTrace{bin: bin}
}

// Bin returns the bin width.
func (g *GoodputTrace) Bin() units.Time { return g.bin }

// Sample closes the current bin with the delta since the previous sample of
// the cumulative counter. Call it once per bin boundary.
func (g *GoodputTrace) Sample(cum int64) {
	g.bins = append(g.bins, cum-g.last)
	g.last = cum
}

// NumBins returns the number of closed bins.
func (g *GoodputTrace) NumBins() int { return len(g.bins) }

// LastActiveBin returns one past the last bin with any delivery (0 if the
// trace never delivered). Bins beyond it are post-completion idle time.
func (g *GoodputTrace) LastActiveBin() int {
	for i := len(g.bins) - 1; i >= 0; i-- {
		if g.bins[i] > 0 {
			return i + 1
		}
	}
	return 0
}

// Rate returns bin i's goodput in Gbps.
func (g *GoodputTrace) Rate(i int) float64 {
	if i < 0 || i >= len(g.bins) || g.bin <= 0 {
		return 0
	}
	return Goodput(g.bins[i], g.bin)
}

// MeanRate returns the mean goodput in Gbps over bins [from, to).
func (g *GoodputTrace) MeanRate(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(g.bins) {
		to = len(g.bins)
	}
	if to <= from || g.bin <= 0 {
		return 0
	}
	var sum int64
	for _, b := range g.bins[from:to] {
		sum += b
	}
	return Goodput(sum, units.Mul(g.bin, int64(to-from)))
}

// RecoveryReport summarizes how a goodput trace behaved around a fault.
type RecoveryReport struct {
	// PreGbps is the mean goodput over the bins fully before the fault.
	PreGbps float64
	// BlackoutDur is the contiguous span from fault onset during which
	// goodput stayed below lowFrac of PreGbps (0 if the first post-fault
	// bin already cleared it).
	BlackoutDur units.Time
	// RecoverDur is the time from fault onset until goodput first reached
	// highFrac of PreGbps again (time-to-recover).
	RecoverDur units.Time
	// Recovered reports whether the highFrac threshold was reached before
	// the trace ended.
	Recovered bool
	// MinGbps is the lowest per-bin goodput observed after the fault (up to
	// the flow's last active bin).
	MinGbps float64
}

// Recovery measures the fault response of the trace: the blackout below
// lowFrac×pre-fault goodput starting at the fault, and the time to climb
// back to highFrac×pre. Trailing zero bins after the flow finished are not
// counted as blackout, so this variant is for flows that completed.
func (g *GoodputTrace) Recovery(faultAt units.Time, lowFrac, highFrac float64) RecoveryReport {
	return g.recovery(faultAt, lowFrac, highFrac, g.LastActiveBin())
}

// RecoveryUnfinished is Recovery for a flow still incomplete when sampling
// stopped: trailing silence is starvation, so the whole trace counts.
func (g *GoodputTrace) RecoveryUnfinished(faultAt units.Time, lowFrac, highFrac float64) RecoveryReport {
	return g.recovery(faultAt, lowFrac, highFrac, g.NumBins())
}

func (g *GoodputTrace) recovery(faultAt units.Time, lowFrac, highFrac float64, end int) RecoveryReport {
	var rep RecoveryReport
	if g.bin <= 0 || len(g.bins) == 0 {
		return rep
	}
	// Bins [0, preEnd) lie fully before the fault.
	preEnd := int(faultAt.Picos() / g.bin.Picos())
	if preEnd > len(g.bins) {
		preEnd = len(g.bins)
	}
	rep.PreGbps = g.MeanRate(0, preEnd)
	// first full bin after the fault onset
	start := preEnd
	if units.Mul(g.bin, int64(start)) < faultAt {
		start++
	}
	if start >= end {
		// The flow finished before the fault hit; nothing to black out.
		rep.Recovered = true
		return rep
	}
	low := lowFrac * rep.PreGbps
	high := highFrac * rep.PreGbps
	rep.MinGbps = g.Rate(start)
	blackoutEnd := start
	inBlackout := true
	for i := start; i < end; i++ {
		r := g.Rate(i)
		if r < rep.MinGbps {
			rep.MinGbps = r
		}
		if inBlackout {
			if r < low {
				blackoutEnd = i + 1
			} else {
				inBlackout = false
			}
		}
		if !rep.Recovered && r >= high {
			rep.Recovered = true
			rep.RecoverDur = units.Mul(g.bin, int64(i+1)) - faultAt
		}
	}
	rep.BlackoutDur = units.Mul(g.bin, int64(blackoutEnd)) - faultAt
	if rep.BlackoutDur < 0 {
		rep.BlackoutDur = 0
	}
	if !rep.Recovered {
		rep.RecoverDur = units.Mul(g.bin, int64(end)) - faultAt
	}
	return rep
}

// VictimFlows counts flows visibly harmed by a fault: those that hit a
// retransmission timeout or never finished.
func VictimFlows(flows []*FlowRecord) int {
	n := 0
	for _, f := range flows {
		if f.Timeouts > 0 || !f.Done {
			n++
		}
	}
	return n
}
