package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestLogHistJSONRoundTrip: Unmarshal(Marshal(h)) must reproduce the
// exact struct — the campaign checkpoint/resume path depends on it.
func TestLogHistJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h LogHist
	for i := 0; i < 10_000; i++ {
		h.Record(rng.Int63n(1 << 40))
	}
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back LogHist
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip diverged: got n=%d min=%d max=%d, want n=%d min=%d max=%d",
			back.n, back.min, back.max, h.n, h.min, h.max)
	}
	// Byte stability: re-marshaling the round-tripped histogram must give
	// the identical bytes.
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-marshal not byte-stable:\n%s\nvs\n%s", b, b2)
	}
}

// TestLogHistJSONEmpty: the zero histogram round-trips to the zero value.
func TestLogHistJSONEmpty(t *testing.T) {
	var h LogHist
	b, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back LogHist
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != (LogHist{}) {
		t.Fatalf("zero value did not round-trip: %+v", back)
	}
}

// TestRunSummaryJSONRoundTrip: a populated summary must round-trip
// exactly (RunSummary is comparable), and the restored summary must merge
// identically to the original.
func TestRunSummaryJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s RunSummary
	s.Sims, s.Flows, s.Done, s.Bytes = 3, 40, 38, 1<<30
	s.DataPkts, s.RetransPkts, s.Timeouts, s.HOTriggers = 9999, 42, 3, 17
	s.Events = 123456
	s.StateBytes, s.Steps = 4096, 14
	for i := 0; i < 5000; i++ {
		s.FCT.Record(rng.Int63n(1 << 38))
		s.Slowdown.Record(1000 + rng.Int63n(90_000))
	}
	for i := 0; i < 14; i++ {
		s.StepTime.Record(rng.Int63n(1 << 30))
	}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSummary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatal("RunSummary round trip diverged")
	}
	// Merging a round-tripped partial equals merging the original.
	var a1, a2 RunSummary
	a1.Merge(&s)
	a2.Merge(&back)
	if a1 != a2 {
		t.Fatal("merge of round-tripped summary diverged")
	}
}
