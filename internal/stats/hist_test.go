package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestLogHistExactBelowSubBucketRange: values under 2^logHistSubBits map to
// singleton buckets, so every percentile is exact.
func TestLogHistExactBelowSubBucketRange(t *testing.T) {
	var h LogHist
	var exact []float64
	for v := int64(0); v < 1<<logHistSubBits; v++ {
		h.Record(v)
		exact = append(exact, float64(v))
	}
	for _, p := range []float64{0, 1, 25, 50, 75, 99, 100} {
		want := int64(Percentile(exact, p))
		if got := h.Percentile(p); got != want {
			t.Errorf("p%v: got %d want %d", p, got, want)
		}
	}
}

// TestLogHistParityWithExactPercentile pins the satellite requirement: on
// identical samples, every LogHist quantile must sit within the histogram's
// relative quantization error of the exact nearest-rank Percentile, and
// never above it (values quantize to bucket lower bounds).
func TestLogHistParityWithExactPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name string
		gen  func() int64
		n    int
	}{
		{"uniform-ns", func() int64 { return rng.Int63n(2_000_000) }, 5000},
		{"log-uniform", func() int64 { return int64(math.Exp(rng.Float64() * 30)) }, 5000},
		{"heavy-tail", func() int64 {
			v := rng.Int63n(10_000)
			if rng.Intn(100) == 0 {
				v *= 1 << 20
			}
			return v
		}, 5000},
		{"tiny", func() int64 { return rng.Int63n(40) }, 7},
	}
	relErr := math.Pow(2, -logHistSubBits)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h LogHist
			var exact []float64
			for i := 0; i < tc.n; i++ {
				v := tc.gen()
				h.Record(v)
				exact = append(exact, float64(v))
			}
			for p := float64(0); p <= 100; p += 0.5 {
				want := Percentile(exact, p)
				got := float64(h.Percentile(p))
				if got > want {
					t.Fatalf("p%v: histogram %v above exact %v", p, got, want)
				}
				if got < want*(1-relErr)-1 {
					t.Fatalf("p%v: histogram %v below exact %v tolerance %v", p, got, want, relErr)
				}
			}
			if h.Count() != int64(tc.n) {
				t.Fatalf("count %d want %d", h.Count(), tc.n)
			}
			if got, want := h.Percentile(100), Percentile(exact, 100); float64(got) != want {
				t.Fatalf("max: got %d want %v", got, want)
			}
		})
	}
}

// TestLogHistBucketRoundTrip: lowerBoundOf is the left inverse of bucketOf,
// and bucket lower bounds are monotone — the properties Percentile relies
// on.
func TestLogHistBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<62 + 12345, math.MaxInt64}
	for _, v := range vals {
		b := bucketOf(v)
		lo := lowerBoundOf(b)
		if lo > v {
			t.Errorf("bucketOf(%d)=%d has lower bound %d > value", v, b, lo)
		}
		if bucketOf(lo) != b {
			t.Errorf("lowerBoundOf(%d)=%d maps back to bucket %d", b, lo, bucketOf(lo))
		}
	}
	prev := int64(-1)
	for i := 0; i < logHistBuckets; i++ {
		lo := lowerBoundOf(i)
		if lo <= prev {
			t.Fatalf("bucket %d lower bound %d not monotone after %d", i, lo, prev)
		}
		prev = lo
	}
}

func TestLogHistEmptyAndNegative(t *testing.T) {
	var h LogHist
	if h.Percentile(50) != 0 || h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample must clamp to zero: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
}
