package stats

import (
	"strconv"
	"strings"
)

// This file names RunSummary metrics so campaign expectation predicates
// and the bundle diff engine can address them by string. The counter
// names match the RunSummaryCSVHeader columns; percentile names
// generalize the CSV's fixed fct_p50_us/fct_p99_us pair to any percentile
// (fct_p99.9_us is valid), scaled to the same units the CSV reports
// (microseconds for FCT, plain ratio for slowdown).

// CounterMetrics lists the plain-counter metric names, in CSV column
// order.
func CounterMetrics() []string {
	return []string{"sims", "flows", "done", "bytes", "data_pkts",
		"retrans_pkts", "timeouts", "ho_triggers", "events",
		"state_bytes", "steps"}
}

// Metric returns the named summary metric and whether the name is valid.
// Valid names are the counters of CounterMetrics plus fct_pNN_us,
// fct_max_us, step_pNN_us, step_max_us and slowdown_pNN, where NN is a
// percentile in (0, 100].
func (s *RunSummary) Metric(name string) (float64, bool) {
	switch name {
	case "sims":
		return float64(s.Sims), true
	case "flows":
		return float64(s.Flows), true
	case "done":
		return float64(s.Done), true
	case "bytes":
		return float64(s.Bytes), true
	case "data_pkts":
		return float64(s.DataPkts), true
	case "retrans_pkts":
		return float64(s.RetransPkts), true
	case "timeouts":
		return float64(s.Timeouts), true
	case "ho_triggers":
		return float64(s.HOTriggers), true
	case "events":
		return float64(s.Events), true
	case "state_bytes":
		return float64(s.StateBytes), true
	case "steps":
		return float64(s.Steps), true
	case "fct_max_us":
		return float64(s.FCT.Max()) / 1e6, true
	case "step_max_us":
		return float64(s.StepTime.Max()) / 1e6, true
	}
	if p, ok := cutPercentile(name, "fct_p", "_us"); ok {
		return float64(s.FCT.Percentile(p)) / 1e6, true
	}
	if p, ok := cutPercentile(name, "step_p", "_us"); ok {
		return float64(s.StepTime.Percentile(p)) / 1e6, true
	}
	if p, ok := cutPercentile(name, "slowdown_p", ""); ok {
		return float64(s.Slowdown.Percentile(p)) / slowdownScale, true
	}
	return 0, false
}

// cutPercentile extracts the percentile from names like "fct_p99.9_us":
// strip prefix and suffix, parse the rest as a percentile in (0, 100].
func cutPercentile(name, prefix, suffix string) (float64, bool) {
	body, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	if suffix != "" {
		if body, ok = strings.CutSuffix(body, suffix); !ok {
			return 0, false
		}
	}
	p, err := strconv.ParseFloat(body, 64)
	if err != nil || p <= 0 || p > 100 {
		return 0, false
	}
	return p, true
}
