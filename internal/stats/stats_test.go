package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"dcpsim/internal/units"
)

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if Percentile(vals, 50) != 3 {
		t.Fatalf("P50 = %v", Percentile(vals, 50))
	}
	if Percentile(vals, 100) != 5 || Percentile(vals, 1) != 1 {
		t.Fatal("extremes")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty must be NaN")
	}
	// The input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestPercentileQuickBounds(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		pp := float64(p % 101)
		got := Percentile(raw, pp)
		s := append([]float64(nil), raw...)
		sort.Float64s(s)
		return got >= s[0] && got <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean NaN")
	}
}

func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector()
	f := c.Add(1, 0, 1, 1000, 10)
	f.Class = "bg"
	c.Add(2, 0, 1, 2000, 20)
	if c.AllDone() {
		t.Fatal("nothing done yet")
	}
	if c.CountUnfinished() != 2 {
		t.Fatal("unfinished")
	}
	var notified *FlowRecord
	c.OnDone = func(r *FlowRecord) { notified = r }
	c.Done(1, 110)
	if notified == nil || notified.ID != 1 {
		t.Fatal("OnDone hook")
	}
	if f.FCT() != 100 {
		t.Fatalf("fct = %v", f.FCT())
	}
	// Duplicate Done must be ignored.
	c.Done(1, 999)
	if f.End != 110 {
		t.Fatal("duplicate Done changed the record")
	}
	c.Done(3, 50) // unknown flow: no-op
	c.Done(2, 120)
	if !c.AllDone() || c.CountUnfinished() != 0 {
		t.Fatal("done accounting")
	}
	if len(c.Flows()) != 2 {
		t.Fatal("flows order")
	}
	if got := c.FinishedFlows("bg"); len(got) != 1 || got[0].ID != 1 {
		t.Fatal("class filter")
	}
	if got := c.FinishedFlows(""); len(got) != 2 {
		t.Fatal("wildcard filter")
	}
}

func TestSlowdownAndRatios(t *testing.T) {
	f := &FlowRecord{Size: 1000, Start: 0, End: 200, Done: true, IdealFCT: 100}
	if f.Slowdown() != 2 {
		t.Fatal("slowdown")
	}
	f.IdealFCT = 0
	if f.Slowdown() != 1 {
		t.Fatal("degenerate ideal -> 1")
	}
	f.DataPkts = 10
	f.RetransPkts = 5
	if f.RetransRatio() != 0.5 {
		t.Fatal("retrans ratio")
	}
	f.DataPkts = 0
	if f.RetransRatio() != 0 {
		t.Fatal("no data -> 0")
	}
}

func TestBucketizeBySize(t *testing.T) {
	var flows []*FlowRecord
	for i := 1; i <= 100; i++ {
		flows = append(flows, &FlowRecord{
			Size: int64(i * 1000), Done: true,
			Start: 0, End: units.Time(i), IdealFCT: 1,
		})
	}
	b := BucketizeBySize(flows, 10, (*FlowRecord).Slowdown)
	if len(b) != 10 {
		t.Fatalf("%d buckets", len(b))
	}
	// Buckets ordered by size; each has 10 flows.
	for i, bk := range b {
		if bk.Count != 10 {
			t.Fatalf("bucket %d count %d", i, bk.Count)
		}
		if i > 0 && bk.AvgSizeKB <= b[i-1].AvgSizeKB {
			t.Fatal("buckets must ascend in size")
		}
		if bk.P50 > bk.P95 || bk.P95 > bk.P99 {
			t.Fatal("percentile ordering inside bucket")
		}
	}
	if BucketizeBySize(nil, 10, (*FlowRecord).Slowdown) != nil {
		t.Fatal("empty -> nil")
	}
	// More buckets than flows collapses gracefully.
	small := flows[:3]
	if got := BucketizeBySize(small, 10, (*FlowRecord).Slowdown); len(got) != 3 {
		t.Fatalf("small set: %d buckets", len(got))
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	pts := CDF(vals, 4)
	if len(pts) != 4 {
		t.Fatal("points")
	}
	if pts[0].Value != 1 || pts[0].Cum != 0.25 {
		t.Fatalf("first point %+v", pts[0])
	}
	if pts[3].Value != 4 || pts[3].Cum != 1 {
		t.Fatalf("last point %+v", pts[3])
	}
	if CDF(nil, 5) != nil {
		t.Fatal("empty")
	}
	if got := CDF(vals, 0); len(got) != 4 {
		t.Fatal("n<=0 means all points")
	}
}

func TestGoodput(t *testing.T) {
	// 125 MB in 10 ms = 100 Gbps.
	g := Goodput(125_000_000, 10*units.Millisecond)
	if math.Abs(g-100) > 1e-9 {
		t.Fatalf("goodput = %v", g)
	}
	if Goodput(100, 0) != 0 {
		t.Fatal("zero duration")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Name: "demo", Columns: []string{"a", "long_column"}}
	tb.AddRow(1, 2.34567)
	tb.AddRow("xyz", "w")
	out := tb.String()
	if !strings.Contains(out, "## demo") || !strings.Contains(out, "long_column") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "2.346") {
		t.Fatalf("float formatting:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("%d lines", len(lines))
	}
}
