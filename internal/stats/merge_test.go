package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dcpsim/internal/units"
)

// splitPoints turns raw fuzz bytes into shard boundaries over n samples.
func splitPoints(raw []byte, n int) []int {
	cuts := []int{0}
	for _, b := range raw {
		if n == 0 {
			break
		}
		cuts = append(cuts, int(b)%(n+1))
	}
	cuts = append(cuts, n)
	// Boundaries need not be sorted for the property to be interesting —
	// but shards must tile the stream, so sort.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	return cuts
}

// TestLogHistMergeShardOrder is the property the parallel engine rests on:
// sharding a sample stream arbitrarily, accumulating per-shard histograms,
// and merging them in any order equals one histogram fed the whole stream.
func TestLogHistMergeShardOrder(t *testing.T) {
	check := func(seed int64, nSamples uint16, rawCuts []byte, rot uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSamples % 2048)
		vals := make([]int64, n)
		for i := range vals {
			// Mix magnitudes so samples land across bucket rows.
			vals[i] = rng.Int63() >> uint(rng.Intn(63))
		}

		var whole LogHist
		for _, v := range vals {
			whole.Record(v)
		}

		cuts := splitPoints(rawCuts, n)
		var shards []*LogHist
		for i := 1; i < len(cuts); i++ {
			h := &LogHist{}
			for _, v := range vals[cuts[i-1]:cuts[i]] {
				h.Record(v)
			}
			shards = append(shards, h)
		}
		// Merge in a rotated (arbitrary) order.
		var merged LogHist
		for i := range shards {
			merged.Merge(shards[(i+int(rot))%len(shards)])
		}
		return merged == whole
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomFlow builds a plausible flow record from a seeded source.
func randomFlow(rng *rand.Rand, id uint64) *FlowRecord {
	f := &FlowRecord{
		ID:   id,
		Size: 1 + rng.Int63n(64<<20),
	}
	f.Start = units.Time(rng.Int63n(int64(units.Second)))
	f.IdealFCT = units.Time(1 + rng.Int63n(int64(10*units.Millisecond)))
	f.DataPkts = rng.Int63n(1 << 16)
	f.RetransPkts = rng.Int63n(1 << 10)
	f.Timeouts = rng.Int63n(8)
	f.HOTriggers = rng.Int63n(1 << 10)
	f.NoteSendState(rng.Int63n(1 << 12))
	f.NoteRecvState(rng.Int63n(1 << 12))
	if rng.Intn(8) != 0 {
		f.Done = true
		f.End = f.Start + units.Time(1+rng.Int63n(int64(100*units.Millisecond)))
	}
	return f
}

// FuzzRunSummaryMergeShardOrder fuzzes the full summary: any sharding of a
// flow stream, merged in any rotation, equals the single-accumulator
// result — compared with struct equality, so every counter, extremum and
// histogram bucket must match exactly.
func FuzzRunSummaryMergeShardOrder(f *testing.F) {
	f.Add(int64(1), uint16(100), []byte{3, 250, 40}, uint8(1))
	f.Add(int64(42), uint16(999), []byte{}, uint8(0))
	f.Add(int64(-7), uint16(5), []byte{1, 1, 1, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nFlows uint16, rawCuts []byte, rot uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nFlows % 1024)
		flows := make([]*FlowRecord, n)
		for i := range flows {
			flows[i] = randomFlow(rng, uint64(i+1))
		}

		var whole RunSummary
		for _, fl := range flows {
			whole.AddFlow(fl)
		}

		cuts := splitPoints(rawCuts, n)
		var shards []*RunSummary
		for i := 1; i < len(cuts); i++ {
			s := &RunSummary{}
			for _, fl := range flows[cuts[i-1]:cuts[i]] {
				s.AddFlow(fl)
			}
			shards = append(shards, s)
		}
		var merged RunSummary
		for i := range shards {
			merged.Merge(shards[(i+int(rot))%len(shards)])
		}
		if merged != whole {
			t.Fatalf("shard-order merge diverged:\nmerged: %+v\nwhole:  %+v", merged, whole)
		}

		// The exported CSV row must also be byte-identical.
		var a, b strings.Builder
		if err := merged.WriteCSVRow(&a, "x"); err != nil {
			t.Fatal(err)
		}
		if err := whole.WriteCSVRow(&b, "x"); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("CSV rows differ:\n%s%s", a.String(), b.String())
		}
	})
}

// TestRunSummaryPercentilesMatchExact sanity-checks the digest against the
// exact percentile helper within LogHist quantization error.
func TestRunSummaryPercentilesMatchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s RunSummary
	var fcts []float64
	for i := 0; i < 5000; i++ {
		f := randomFlow(rng, uint64(i+1))
		s.AddFlow(f)
		if f.Done {
			fcts = append(fcts, float64(f.FCT().Picos()))
		}
	}
	for _, p := range []float64{50, 95, 99} {
		exact := Percentile(fcts, p)
		approx := float64(s.FCT.Percentile(p))
		if exact <= 0 {
			continue
		}
		if rel := (exact - approx) / exact; rel < 0 || rel > 0.02 {
			t.Fatalf("P%.0f: approx %.0f vs exact %.0f (rel err %.4f)", p, approx, exact, rel)
		}
	}
}
