package stats

import (
	"encoding/json"
	"fmt"
)

// This file gives the mergeable accumulators a byte-stable JSON form so
// the campaign runner can checkpoint per-unit partials to disk and merge
// them back after a resume. The encoding must round-trip exactly: the
// resume contract compares merged CSV bytes, and merge_test.go's equality
// checks compare RunSummary structs with ==, so Unmarshal(Marshal(h))
// must reproduce the identical struct.

// logHistJSON is the wire form of a LogHist: the occupied buckets as
// ascending (index, count) pairs — the counts array is ~3700 entries but
// real histograms occupy a handful of them.
type logHistJSON struct {
	N      int64      `json:"n"`
	Min    int64      `json:"min,omitempty"`
	Max    int64      `json:"max,omitempty"`
	Counts [][2]int64 `json:"counts,omitempty"`
}

// MarshalJSON encodes the histogram as its sparse bucket list, in
// ascending bucket order — byte-stable for a given histogram state.
func (h *LogHist) MarshalJSON() ([]byte, error) {
	out := logHistJSON{N: h.n, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			out.Counts = append(out.Counts, [2]int64{int64(i), int64(c)})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a histogram from its sparse form, replacing any
// prior state.
func (h *LogHist) UnmarshalJSON(data []byte) error {
	var in logHistJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = LogHist{n: in.N, min: in.Min, max: in.Max}
	for _, pair := range in.Counts {
		i, c := pair[0], pair[1]
		if i < 0 || i >= logHistBuckets {
			return fmt.Errorf("stats: LogHist bucket index %d out of range [0,%d)", i, logHistBuckets)
		}
		if c < 0 || c > int64(^uint32(0)) {
			return fmt.Errorf("stats: LogHist bucket count %d out of range", c)
		}
		h.counts[i] = uint32(c)
	}
	return nil
}
