package stats

import (
	"math"
	"math/bits"
)

// logHistSubBits sets LogHist resolution: each power-of-two range is split
// into 2^logHistSubBits linear sub-buckets, bounding the relative
// quantization error of any recorded value to 2^-logHistSubBits (≈1.6%).
const logHistSubBits = 6

// logHistBuckets covers non-negative int64 values: one bucket row per
// significant-bit count (0..63) times the sub-bucket fan-out, plus the
// values below 2^logHistSubBits which are stored exactly.
const logHistBuckets = (64 - logHistSubBits) << logHistSubBits

// LogHist is an HDR-style log-bucketed histogram of non-negative int64
// samples (the flight recorder feeds it stage latencies in picoseconds).
// Record and Percentile are O(1) and O(buckets) respectively, memory is
// fixed (~29 KB), and — unlike the exact Percentile in this package — it
// never retains samples, so it can absorb tens of millions of
// measurements from a long run. Values quantize to their bucket's lower
// bound, so reported quantiles sit within a factor of
// (1 - 2^-logHistSubBits) of the exact nearest-rank answer; values below
// 2^logHistSubBits are exact. The zero value is ready to use.
type LogHist struct {
	counts [logHistBuckets]uint32
	n      int64
	min    int64
	max    int64
}

// bucketOf maps v to its bucket index: values with fewer significant bits
// than the sub-bucket fan-out map identically; larger values use
// (exponent, mantissa-prefix).
func bucketOf(v int64) int {
	u := uint64(v)
	exp := bits.Len64(u) // number of significant bits
	if exp <= logHistSubBits {
		return int(u)
	}
	shift := exp - logHistSubBits - 1
	sub := int(u>>shift) & (1<<logHistSubBits - 1)
	return (exp-logHistSubBits)<<logHistSubBits | sub
}

// lowerBoundOf inverts bucketOf: the smallest value mapping to bucket i.
func lowerBoundOf(i int) int64 {
	row := i >> logHistSubBits
	if row == 0 {
		return int64(i)
	}
	sub := i & (1<<logHistSubBits - 1)
	shift := row - 1
	return int64(1<<logHistSubBits|sub) << shift
}

// Record adds one sample. Negative samples are clamped to zero (stage
// latencies cannot be negative; clamping keeps a corrupt input visible as
// a zero rather than a panic).
func (h *LogHist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.n++
}

// Count returns the number of recorded samples.
func (h *LogHist) Count() int64 { return h.n }

// Min returns the smallest recorded sample (0 when empty).
func (h *LogHist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *LogHist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the nearest-rank p-th percentile (p in [0,100]) with
// the same rank convention as the exact Percentile in this package,
// quantized to its bucket's lower bound; the true maximum is reported
// exactly. Returns 0 when empty.
func (h *LogHist) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.n {
		return h.max
	}
	var seen int64
	for i := range h.counts {
		seen += int64(h.counts[i])
		if seen >= rank {
			return lowerBoundOf(i)
		}
	}
	return h.max
}
