package nic

import (
	"testing"

	"dcpsim/internal/fabric"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// stubTransport is a scripted transport.
type stubTransport struct {
	out      []*packet.Packet
	handled  []*packet.Packet
	dequeues int
}

func (s *stubTransport) Handle(p *packet.Packet) { s.handled = append(s.handled, p) }
func (s *stubTransport) Dequeue(_ units.Time, paused bool) *packet.Packet {
	s.dequeues++
	if paused || len(s.out) == 0 {
		return nil
	}
	p := s.out[0]
	s.out = s.out[1:]
	return p
}

type sinkNode struct{ got []*packet.Packet }

func (s *sinkNode) Receive(p *packet.Packet, _ int) { s.got = append(s.got, p) }
func (s *sinkNode) AddIngress(w *fabric.Wire) int   { return 0 }

func TestNICTransmitsFromTransport(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 0, 100*units.Gbps)
	sink := &sinkNode{}
	n.SetUplink(fabric.Attach(eng, units.Microsecond, sink))
	tr := &stubTransport{}
	n.SetTransport(tr)
	for i := 0; i < 5; i++ {
		tr.out = append(tr.out, packet.DataPacket(1, 0, 1, uint32(i), 0, 1000))
	}
	n.Kick()
	eng.Run(0)
	if len(sink.got) != 5 {
		t.Fatalf("delivered %d/5", len(sink.got))
	}
	if n.Port().TxPackets != 5 {
		t.Fatal("port counter")
	}
}

func TestNICReceiveForwardsToTransport(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 0, 100*units.Gbps)
	tr := &stubTransport{}
	n.SetTransport(tr)
	p := packet.DataPacket(1, 1, 0, 0, 0, 100)
	n.Receive(p, 0)
	if len(tr.handled) != 1 || tr.handled[0] != p {
		t.Fatal("packet not handed to transport")
	}
	if n.RxPackets != 1 {
		t.Fatal("rx counter")
	}
	// Without a transport, receive must not crash.
	n2 := New(eng, 1, 100*units.Gbps)
	n2.Receive(p, 0)
}

func TestKickAtCoalesces(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 0, 100*units.Gbps)
	sink := &sinkNode{}
	n.SetUplink(fabric.Attach(eng, 0, sink))
	tr := &stubTransport{}
	n.SetTransport(tr)

	n.KickAt(10 * units.Microsecond)
	n.KickAt(20 * units.Microsecond) // later: subsumed by the earlier kick
	n.KickAt(5 * units.Microsecond)  // earlier: replaces
	eng.Run(0)
	// The transport should have been pulled at 5µs (and possibly at 10µs
	// from the replaced event being cancelled — it must be cancelled).
	if eng.Now() != 5*units.Microsecond {
		t.Fatalf("last event at %v, want 5us", eng.Now())
	}
	if tr.dequeues == 0 {
		t.Fatal("kick never pulled")
	}
}

func TestKickAtPastKicksNow(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, 0, 100*units.Gbps)
	sink := &sinkNode{}
	n.SetUplink(fabric.Attach(eng, 0, sink))
	tr := &stubTransport{out: []*packet.Packet{packet.DataPacket(1, 0, 1, 0, 0, 10)}}
	n.SetTransport(tr)
	n.KickAt(0) // not in the future: immediate
	if len(tr.out) != 0 {
		t.Fatal("immediate kick should have dequeued")
	}
}

func TestRetransQFIFOAndBatchLimit(t *testing.T) {
	var q RetransQ
	for i := 0; i < 40; i++ {
		q.Push(RetransEntry{PSN: uint32(i)})
	}
	if q.Len() != 40 || q.Pushed != 40 {
		t.Fatal("len/pushed")
	}
	b := q.FetchBatch(100)
	if len(b) != BatchLimit {
		t.Fatalf("batch capped at %d, got %d", BatchLimit, len(b))
	}
	for i, e := range b {
		if e.PSN != uint32(i) {
			t.Fatal("FIFO order violated")
		}
	}
	b2 := q.FetchBatch(10)
	if len(b2) != 10 || b2[0].PSN != 16 {
		t.Fatal("second batch wrong")
	}
	if q.Len() != 14 {
		t.Fatalf("len after fetches = %d", q.Len())
	}
	q.FetchBatch(100)
	if q.Len() != 0 {
		t.Fatal("drain")
	}
	if q.FetchBatch(5) != nil {
		t.Fatal("empty fetch returns nil")
	}
	if q.Fetched != 40 {
		t.Fatalf("fetched counter = %d", q.Fetched)
	}
}

func TestRetransQReusesStorageAfterDrain(t *testing.T) {
	var q RetransQ
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			q.Push(RetransEntry{PSN: uint32(round*8 + i)})
		}
		b := q.FetchBatch(8)
		if len(b) != 8 || b[0].PSN != uint32(round*8) {
			t.Fatal("round mismatch")
		}
	}
}

func TestDefaultPCIe(t *testing.T) {
	if DefaultPCIe().RTT != units.Microsecond {
		t.Fatal("the paper assumes ~1us PCIe RTT (footnote 9)")
	}
}
