// Package nic models the host RNIC: the link-facing port, the pull
// interface transports implement, and the microarchitectural pieces the
// paper's DCP-RNIC adds (PCIe/DMA latency model, the per-QP RetransQ in
// host memory).
package nic

import (
	"dcpsim/internal/fabric"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// Transport is the endpoint logic running on a NIC. The NIC pulls packets
// to transmit (fetch-and-drop style QP scheduling happens inside the
// transport) and pushes arriving packets in.
type Transport interface {
	// Handle processes a packet arriving from the network.
	Handle(p *packet.Packet)
	// Dequeue returns the next packet to put on the wire, or nil if
	// nothing is eligible now. When dataPaused (PFC) only control-plane
	// packets (ACK/CNP/HO) may be returned.
	Dequeue(now units.Time, dataPaused bool) *packet.Packet
}

// NIC is one host's network interface.
type NIC struct {
	eng  *sim.Engine
	id   packet.NodeID
	rate units.Rate
	port *fabric.Port
	tr   Transport

	kickEv *sim.Event
	kickAt units.Time

	// trace, when non-nil, sees data deliveries (EvDeliver). Nil-checked at
	// the call site so the disabled path costs one comparison.
	trace *obs.Tracer

	// RxPackets counts packets delivered to the transport.
	RxPackets int64
	// DeliveredBytes accumulates data payload arriving at this NIC.
	// Duplicate deliveries count twice — it is a raw wire-side observation
	// (the goodput-trace signal fault experiments sample), not exactly-once
	// application goodput.
	DeliveredBytes int64
}

// New creates a NIC for host id with the given line rate.
func New(eng *sim.Engine, id packet.NodeID, rate units.Rate) *NIC {
	return &NIC{eng: eng, id: id, rate: rate}
}

// ID returns the host's node id.
func (n *NIC) ID() packet.NodeID { return n.id }

// Engine returns the simulation engine.
func (n *NIC) Engine() *sim.Engine { return n.eng }

// Rate returns the NIC line rate.
func (n *NIC) Rate() units.Rate { return n.rate }

// SetTransport installs the endpoint logic. Must be called before traffic
// flows.
func (n *NIC) SetTransport(t Transport) { n.tr = t }

// Transport returns the installed endpoint logic.
func (n *NIC) Transport() Transport { return n.tr }

// SetUplink attaches the NIC's egress onto wire (created with
// fabric.Attach toward the first-hop switch or peer NIC).
func (n *NIC) SetUplink(w *fabric.Wire) {
	n.port = fabric.NewPort(n.eng, n.rate, w, &fabric.PullScheduler{Pull: n.pull})
	// The egress tx-completion closure pulls the next packet from the
	// transport — host work, so the profiler books it to the NIC.
	n.port.SetComp(sim.CompNIC)
}

// Port returns the egress port (nil before SetUplink).
func (n *NIC) Port() *fabric.Port { return n.port }

func (n *NIC) pull(dataPaused bool) *packet.Packet {
	if n.tr == nil {
		return nil
	}
	return n.tr.Dequeue(n.eng.Now(), dataPaused)
}

// AddIngress implements fabric.IngressNode; NICs do not track arriving
// wires, but retag them so delivery events (Receive → transport Handle)
// profile as host-side work rather than fabric propagation.
func (n *NIC) AddIngress(w *fabric.Wire) int {
	w.SetDeliverComp(sim.CompNIC)
	return 0
}

// SetTrace attaches (or with nil detaches) the observability trace sink.
func (n *NIC) SetTrace(tr *obs.Tracer) { n.trace = tr }

// Receive implements fabric.Receiver.
func (n *NIC) Receive(p *packet.Packet, _ int) {
	n.RxPackets++
	if p.Kind == packet.KindData {
		n.DeliveredBytes += int64(p.PayloadBytes)
		if n.trace != nil {
			n.trace.Emit(obs.Event{At: n.eng.Now(), Type: obs.EvDeliver, Node: n.id, Port: -1,
				Flow: p.FlowID, PSN: p.PSN, MSN: p.MSN, Size: int32(p.Size), Aux: n.DeliveredBytes})
		}
	}
	if n.tr != nil {
		n.tr.Handle(p)
	}
}

// Kick prompts the egress port to pull work. Transports call it whenever
// new work becomes available (message posted, HO arrived, timer fired).
func (n *NIC) Kick() {
	if n.port != nil {
		n.port.Kick()
	}
}

// KickAt arranges a Kick at absolute time t (used for rate pacing). An
// earlier pending KickAt subsumes a later one.
func (n *NIC) KickAt(t units.Time) {
	if t <= n.eng.Now() {
		n.Kick()
		return
	}
	if n.kickEv != nil && !n.kickEv.Cancelled() && n.kickAt <= t {
		return
	}
	if n.kickEv != nil {
		n.kickEv.Cancel()
	}
	n.kickAt = t
	n.kickEv = n.eng.AtComp(t, sim.CompNIC, func() {
		n.kickEv = nil
		n.Kick()
	})
}

// PCIe models the host interconnect between the RNIC and host memory with
// a fixed round-trip latency, the quantity that dominates the paper's
// retransmission-efficiency analysis (footnote 9: one 1 KB fetch per PCIe
// RTT of 1 µs caps recovery throughput at 4 Gbps).
type PCIe struct {
	RTT units.Time
}

// DefaultPCIe matches the paper's assumption of a ~1 µs PCIe round trip.
func DefaultPCIe() PCIe { return PCIe{RTT: 1 * units.Microsecond} }

// RetransEntry is one HO-derived retransmission record: (MSN, PSN) plus the
// packet's offset within its message (recoverable from PSN, carried here
// for directness).
type RetransEntry struct {
	MSN    uint32
	PSN    uint32
	Offset uint32
	// Epoch records the message's sRetryNo when the entry was pushed;
	// entries from a superseded retry epoch are discarded at fetch time
	// (mirrors the receiver's sRetryNo check, §4.5).
	Epoch uint8
}

// RetransQ is the per-QP retransmission queue DCP-RNIC keeps in host
// memory (§4.3): the Rx path DMA-writes entries; the Tx path fetches
// batches of up to BatchLimit entries per PCIe round trip.
type RetransQ struct {
	entries []RetransEntry
	head    int

	// Pushed and Fetched count entries through the queue.
	Pushed  int64
	Fetched int64
}

// BatchLimit is the maximum entries fetched per scheduling round
// (min(16, len, awin/MTU) in the paper; 16×1KB equals the 16 KB
// round_quota).
const BatchLimit = 16

// Push appends an entry (the Rx-path DMA write).
func (q *RetransQ) Push(e RetransEntry) {
	q.entries = append(q.entries, e)
	q.Pushed++
}

// Len returns queued entries (the QPC-maintained length).
func (q *RetransQ) Len() int { return len(q.entries) - q.head }

// FetchBatch removes and returns up to max entries (bounded by BatchLimit).
func (q *RetransQ) FetchBatch(max int) []RetransEntry {
	if max > BatchLimit {
		max = BatchLimit
	}
	n := q.Len()
	if n == 0 || max <= 0 {
		return nil
	}
	if max > n {
		max = n
	}
	out := q.entries[q.head : q.head+max]
	q.head += max
	q.Fetched += int64(max)
	if q.head == len(q.entries) {
		q.entries = q.entries[:0]
		q.head = 0
	}
	return out
}
