package sim

import (
	"math/rand"
	"sort"
	"testing"

	"dcpsim/internal/units"
)

func TestRunInTimeOrder(t *testing.T) {
	eng := NewEngine(1)
	var got []units.Time
	for _, d := range []units.Time{30, 10, 20, 5, 25} {
		d := d
		eng.After(d, func() { got = append(got, eng.Now()) })
	}
	eng.Run(0)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestTiesBreakByInsertionOrder(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(100, func() { got = append(got, i) })
	}
	eng.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine(1)
	eng.After(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		eng.At(50, func() {})
	})
	eng.Run(0)
}

func TestCancel(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	ev := eng.After(10, func() { fired = true })
	ev.Cancel()
	eng.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() should report true")
	}
	// Cancelling again (and cancelling nil) must be safe.
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel()
	if !nilEv.Cancelled() {
		t.Fatal("nil event must report cancelled")
	}
}

func TestRunUntil(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		eng.At(units.Time(i)*units.Microsecond, func() { count++ })
	}
	eng.Run(5 * units.Microsecond)
	if count != 5 {
		t.Fatalf("ran %d events before deadline, want 5", count)
	}
	if eng.Now() != 5*units.Microsecond {
		t.Fatalf("clock at %v, want 5us", eng.Now())
	}
	eng.Run(0)
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestStop(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		eng.At(units.Time(i), func() {
			count++
			if count == 3 {
				eng.Stop()
			}
		})
	}
	eng.Run(0)
	if count != 3 {
		t.Fatalf("Stop did not halt the loop: ran %d", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	eng := NewEngine(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			eng.After(units.Nanosecond, recurse)
		}
	}
	eng.After(0, recurse)
	eng.Run(0)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if eng.Now() != 99*units.Nanosecond {
		t.Fatalf("clock = %v", eng.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		eng := NewEngine(42)
		rng := eng.Rand()
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(eng.Now()))
			if len(trace) < 200 {
				eng.After(units.Time(rng.Intn(1000)+1), step)
			}
		}
		eng.After(0, step)
		eng.Run(0)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandomizedOrderProperty(t *testing.T) {
	// Schedule events at random times; execution order must equal the
	// sorted order of (time, insertion seq).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		eng := NewEngine(1)
		type key struct {
			at  units.Time
			seq int
		}
		var keys []key
		var got []key
		for i := 0; i < 200; i++ {
			k := key{units.Time(rng.Intn(50)), i}
			keys = append(keys, k)
			k2 := k
			eng.At(k.at, func() { got = append(got, k2) })
		}
		eng.Run(0)
		sort.SliceStable(keys, func(i, j int) bool { return keys[i].at < keys[j].at })
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("trial %d: order mismatch at %d", trial, i)
			}
		}
	}
}

func TestTimerResetAndStop(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	tm := NewTimer(eng, func() { fired++ })
	tm.Reset(10 * units.Microsecond)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	if tm.Deadline() != 10*units.Microsecond {
		t.Fatalf("deadline = %v", tm.Deadline())
	}
	// Re-arm before expiry: only the later deadline fires.
	eng.After(5*units.Microsecond, func() { tm.Reset(20 * units.Microsecond) })
	eng.Run(0)
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if eng.Now() != 25*units.Microsecond {
		t.Fatalf("fired at %v, want 25us", eng.Now())
	}
	if tm.Armed() {
		t.Fatal("timer should be disarmed after firing")
	}
	tm.Stop() // stopping a disarmed timer is a no-op
	if tm.Deadline() != 0 {
		t.Fatal("deadline of unarmed timer should be 0")
	}
}

func TestTimerStopPreventsFire(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	tm := NewTimer(eng, func() { fired = true })
	tm.Reset(10)
	tm.Stop()
	eng.Run(0)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestPendingAndExecuted(t *testing.T) {
	eng := NewEngine(1)
	for i := 0; i < 5; i++ {
		eng.At(units.Time(i), func() {})
	}
	if eng.Pending() != 5 {
		t.Fatalf("pending = %d", eng.Pending())
	}
	eng.Run(0)
	if eng.Pending() != 0 || eng.Executed != 5 {
		t.Fatalf("pending=%d executed=%d", eng.Pending(), eng.Executed)
	}
}

func TestBoundedRunAdvancesClockOnEarlyDrain(t *testing.T) {
	// A bounded run whose queue drains early must still end with
	// Now() == until, so periodic work scheduled relative to the run's end
	// (metrics probes, samplers) sees a consistent clock.
	eng := NewEngine(1)
	eng.At(2*units.Microsecond, func() {})
	eng.Run(10 * units.Microsecond)
	if eng.Now() != 10*units.Microsecond {
		t.Fatalf("clock at %v after early drain, want 10us", eng.Now())
	}
	// An empty bounded run advances too.
	eng.Run(25 * units.Microsecond)
	if eng.Now() != 25*units.Microsecond {
		t.Fatalf("clock at %v after empty run, want 25us", eng.Now())
	}
	// Stop still cuts the advance short: the clock stays at the stopping
	// event.
	eng.At(30*units.Microsecond, func() { eng.Stop() })
	eng.Run(50 * units.Microsecond)
	if eng.Now() != 30*units.Microsecond {
		t.Fatalf("clock at %v after Stop, want 30us", eng.Now())
	}
	// An unbounded run does not advance past its last event.
	eng.At(35*units.Microsecond, func() {})
	eng.Run(0)
	if eng.Now() != 35*units.Microsecond {
		t.Fatalf("clock at %v after unbounded run, want 35us", eng.Now())
	}
}

func TestSelfProfilingCounters(t *testing.T) {
	eng := NewEngine(1)
	for i := 1; i <= 4; i++ {
		eng.At(units.Time(i)*units.Microsecond, func() {})
	}
	cancelled := eng.At(5*units.Microsecond, func() {})
	if eng.PendingActive() != 5 {
		t.Fatalf("PendingActive = %d, want 5", eng.PendingActive())
	}
	cancelled.Cancel()
	cancelled.Cancel() // double-cancel must not double-count
	if eng.PendingActive() != 4 {
		t.Fatalf("PendingActive = %d after cancel, want 4", eng.PendingActive())
	}
	if eng.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5 (cancelled event still queued)", eng.Pending())
	}
	if eng.MaxHeapDepth != 5 {
		t.Fatalf("MaxHeapDepth = %d, want 5", eng.MaxHeapDepth)
	}
	eng.Run(0)
	if eng.CancelledDrops != 1 {
		t.Fatalf("CancelledDrops = %d, want 1", eng.CancelledDrops)
	}
	if eng.Executed != 4 {
		t.Fatalf("Executed = %d, want 4", eng.Executed)
	}
	if eng.MaxHeapDepth != 5 {
		t.Fatalf("MaxHeapDepth moved to %d", eng.MaxHeapDepth)
	}
}
