package sim

import (
	"testing"

	"dcpsim/internal/units"
)

// TestCompInheritance checks the attribution contract: explicitly tagged
// events carry their component, events scheduled from inside a dispatch
// inherit the dispatching event's component, and out-of-dispatch untagged
// scheduling lands in CompOther.
func TestCompInheritance(t *testing.T) {
	eng := NewEngine(1)
	var p Prof
	eng.AttachProf(&p)

	// Untagged before any dispatch → CompOther.
	eng.At(1, func() {})
	// Tagged root that schedules two untagged children: both must inherit.
	eng.AtComp(2, CompFabric, func() {
		eng.After(1, func() {
			// Grandchild inherits transitively.
			eng.After(1, func() {})
		})
		eng.After(2, func() {})
	})
	// Tagged root of a different component, with an explicit override inside.
	eng.AtComp(3, CompNIC, func() {
		eng.AfterComp(1, CompProbe, func() {})
	})
	eng.Run(0)

	want := [NumComps]uint64{}
	want[CompOther] = 1
	want[CompFabric] = 4 // root + 2 children + 1 grandchild
	want[CompNIC] = 1
	want[CompProbe] = 1
	if p.Counts != want {
		t.Fatalf("counts = %v, want %v", p.Counts, want)
	}
	if got := p.Total(); got != 7 {
		t.Fatalf("Total() = %d, want 7", got)
	}
	if eng.Executed != 7 {
		t.Fatalf("Executed = %d, want 7", eng.Executed)
	}
}

// TestProfWallAttribution injects a fake monotonic clock and checks wall
// nanoseconds land on the dispatched event's component.
func TestProfWallAttribution(t *testing.T) {
	eng := NewEngine(1)
	var fake int64
	p := &Prof{Wall: func() int64 { fake += 5; return fake }}
	eng.AttachProf(p)

	eng.AtComp(1, CompCC, func() {})
	eng.AtComp(2, CompCC, func() {})
	eng.AtComp(3, CompFaults, func() {})
	eng.Run(0)

	// Each dispatch reads the clock twice (before/after), so each event
	// books exactly one +5 step.
	if p.WallNs[CompCC] != 10 {
		t.Fatalf("WallNs[CompCC] = %d, want 10", p.WallNs[CompCC])
	}
	if p.WallNs[CompFaults] != 5 {
		t.Fatalf("WallNs[CompFaults] = %d, want 5", p.WallNs[CompFaults])
	}
	if p.Counts[CompCC] != 2 || p.Counts[CompFaults] != 1 {
		t.Fatalf("counts = %v", p.Counts)
	}
}

// TestTimerComp: timers default to CompTimer; owners can retag (the DCQCN
// rate machine and NDP pacer do), and the tag survives Reset cycles.
func TestTimerComp(t *testing.T) {
	eng := NewEngine(1)
	var p Prof
	eng.AttachProf(&p)

	fired := 0
	tm := NewTimer(eng, func() { fired++ })
	tm.Reset(5)
	eng.Run(0)

	cc := NewTimer(eng, func() { fired++ })
	cc.Comp = CompCC
	cc.Reset(5)
	cc.Reset(7) // re-arm: the cancelled first deadline must not fire
	eng.Run(0)

	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if p.Counts[CompTimer] != 1 || p.Counts[CompCC] != 1 {
		t.Fatalf("counts = %v, want one CompTimer and one CompCC", p.Counts)
	}
}

// TestMaxLive: the live high-water mark tracks pending not-cancelled
// events, net of cancellation.
func TestMaxLive(t *testing.T) {
	eng := NewEngine(1)
	a := eng.At(1, func() {})
	eng.At(2, func() {})
	eng.At(3, func() {})
	if eng.MaxLive != 3 {
		t.Fatalf("MaxLive = %d, want 3", eng.MaxLive)
	}
	a.Cancel()
	eng.At(4, func() {})
	// 3 live again after one cancel + one add: high water still 3.
	if eng.MaxLive != 3 {
		t.Fatalf("MaxLive = %d, want 3 after cancel+add", eng.MaxLive)
	}
	eng.Run(0)
	if eng.MaxLive != 3 {
		t.Fatalf("MaxLive = %d after run, want 3", eng.MaxLive)
	}
}

// TestProfDetachedIdentical: attaching a counts-only profiler must not
// change the simulation — same executed count, same clock, same event
// order (spot-checked via a recorded firing sequence).
func TestProfDetachedIdentical(t *testing.T) {
	run := func(p *Prof) (uint64, units.Time, []int) {
		eng := NewEngine(42)
		if p != nil {
			eng.AttachProf(p)
		}
		var order []int
		var chain func(i int)
		chain = func(i int) {
			order = append(order, i)
			if i < 20 {
				d := units.Time(eng.Rand().Intn(5) + 1)
				eng.After(d, func() { chain(i + 1) })
			}
		}
		eng.AtComp(1, CompWorkload, func() { chain(0) })
		end := eng.Run(0)
		return eng.Executed, end, order
	}
	e1, t1, o1 := run(nil)
	var p Prof
	e2, t2, o2 := run(&p)
	if e1 != e2 || t1 != t2 {
		t.Fatalf("profiled run diverged: executed %d vs %d, end %v vs %v", e1, e2, t1, t2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("order diverged at %d", i)
		}
	}
	if p.Total() != e2 {
		t.Fatalf("prof total %d != executed %d", p.Total(), e2)
	}
}

// TestCompString: every named component stringifies, and the fallback is
// stable for out-of-range values.
func TestCompString(t *testing.T) {
	seen := map[string]bool{}
	for c := CompOther; c < NumComps; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("comp %d: bad or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if got := Comp(200).String(); got != "comp(200)" {
		t.Fatalf("fallback = %q", got)
	}
}
