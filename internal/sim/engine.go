// Package sim implements the discrete-event simulation engine: an event
// queue ordered by simulated time, cancellable timers, and a deterministic
// random source. Every experiment in this repository is driven by one
// Engine; ties in event time are broken by insertion order so that a given
// seed always produces the same run.
package sim

import (
	"container/heap"
	"math/rand"
	"strconv"
	"sync/atomic"

	"dcpsim/internal/units"
)

// Comp labels the component whose code a scheduled event runs — the unit
// the dispatch profiler attributes events and wall-time to. Every event
// carries a Comp stamped at scheduling time: the root scheduling sites
// (wire delivery, port serialization, NIC kicks, retransmission timers,
// DCQCN timers, fault plans, metrics probes, flow starts) tag themselves
// explicitly via AtComp/AfterComp or Timer.Comp; everything scheduled from
// inside a dispatched event inherits that event's component, so untagged
// nested scheduling stays causally attributed.
type Comp uint8

// The component taxonomy. CompOther is the zero value: an event scheduled
// outside any dispatch by untagged code (tests, ad-hoc drivers).
const (
	CompOther Comp = iota
	CompWorkload
	CompTransport
	CompFabric
	CompNIC
	CompCC
	CompTimer
	CompFaults
	CompProbe
	NumComps
)

func (c Comp) String() string {
	switch c {
	case CompOther:
		return "other"
	case CompWorkload:
		return "workload"
	case CompTransport:
		return "transport"
	case CompFabric:
		return "fabric"
	case CompNIC:
		return "nic"
	case CompCC:
		return "cc"
	case CompTimer:
		return "timer"
	case CompFaults:
		return "faults"
	case CompProbe:
		return "probe"
	default:
		return "comp(" + strconv.Itoa(int(c)) + ")"
	}
}

// Prof is the engine's dispatch profiler: per-component event counts and,
// when a wall clock is injected, per-component wall-nanosecond totals.
// Attach one with Engine.AttachProf before Run. The two halves have
// different determinism guarantees — Counts depend only on the seed and
// are byte-identical across hosts and runs; WallNs varies by host and is
// only populated when Wall is non-nil.
//
// The engine never reads the host clock itself (the detcheck contract);
// callers that want wall attribution inject Wall with their own lint
// allowance, exactly like obs.Metrics.WallNanos.
type Prof struct {
	// Wall, when non-nil, supplies monotonic wall-clock nanoseconds read
	// around every dispatched event. Nil keeps profiling counts-only and
	// fully deterministic.
	Wall func() int64
	// Counts tallies dispatched events per component.
	Counts [NumComps]uint64
	// WallNs accumulates wall nanoseconds spent inside dispatched events
	// per component (all zero when Wall is nil).
	WallNs [NumComps]int64
}

// Total returns the total dispatched events across all components.
func (p *Prof) Total() uint64 {
	var n uint64
	for _, c := range p.Counts {
		n += c
	}
	return n
}

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        units.Time
	seq       uint64
	fn        func()
	eng       *Engine
	comp      Comp
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	e.fn = nil
	if e.index >= 0 && e.eng != nil {
		e.eng.live--
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e == nil || e.cancelled }

// Time returns the simulated time the event is scheduled for.
func (e *Event) Time() units.Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
//
// Ownership contract: an Engine (and the whole simulation hanging off it —
// topology, transports, collectors, sinks) belongs to exactly one goroutine
// for its entire lifetime. The parallel experiment runner exploits this:
// cells on different workers each own a private Engine, so no
// synchronization exists anywhere on the data path. The package keeps zero
// package-level mutable state for the same reason. Run enforces the
// contract cheaply with an atomic re-entrancy flag — two goroutines (or a
// re-entrant callback) driving the same Engine panic instead of silently
// interleaving event streams.
type Engine struct {
	now     units.Time
	seq     uint64
	events  eventHeap
	live    int // pending events not yet cancelled
	rng     *rand.Rand
	stopped bool
	running atomic.Bool // guards Run against concurrent/re-entrant drivers

	// comp is the component of the event currently being dispatched; events
	// scheduled during dispatch inherit it. Between dispatches it is the
	// last dispatched component, which is irrelevant because the tagged root
	// sites cover all out-of-dispatch scheduling.
	comp Comp
	// prof, when attached, receives per-component dispatch accounting.
	prof *Prof

	// Executed counts events that have fired, for progress reporting.
	Executed uint64
	// CancelledDrops counts cancelled events discarded from the head of the
	// queue: scheduling churn (timer resets, subsumed kicks) the heap paid
	// for without doing work. Engine self-profiling samples it.
	CancelledDrops uint64
	// MaxHeapDepth is the high-water mark of the event queue.
	MaxHeapDepth int
	// MaxLive is the high-water mark of pending not-cancelled events — the
	// heap depth net of cancellation churn.
	MaxLive int
}

// NewEngine returns an engine with its clock at zero and a deterministic
// random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Rand returns the engine's random source. All stochastic choices in a
// simulation must come from here so runs are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute time t, attributed to the component
// currently dispatching (CompOther outside any dispatch). Scheduling in
// the past panics: it would silently reorder causality.
func (e *Engine) At(t units.Time, fn func()) *Event {
	return e.AtComp(t, e.comp, fn)
}

// AtComp schedules fn at absolute time t attributed to component c,
// overriding inheritance. The root scheduling sites (wire delivery, NIC
// kicks, fault plans, probes, flow starts) use this to anchor attribution;
// everything they transitively schedule inherits via At/After.
func (e *Engine) AtComp(t units.Time, c Comp, fn func()) *Event {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, eng: e, comp: c}
	heap.Push(&e.events, ev)
	e.live++
	if len(e.events) > e.MaxHeapDepth {
		e.MaxHeapDepth = len(e.events)
	}
	if e.live > e.MaxLive {
		e.MaxLive = e.live
	}
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn func()) *Event {
	return e.AtComp(e.now+d, e.comp, fn)
}

// AfterComp schedules fn d after the current time attributed to component c.
func (e *Engine) AfterComp(d units.Time, c Comp, fn func()) *Event {
	return e.AtComp(e.now+d, c, fn)
}

// Comp returns the component of the event currently being dispatched.
func (e *Engine) Comp() Comp { return e.comp }

// AttachProf attaches (or, with nil, detaches) a dispatch profiler. The
// disabled path — no profiler attached — costs one nil check per dispatch
// and allocates nothing.
func (e *Engine) AttachProf(p *Prof) { e.prof = p }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue is empty, until the
// clock would pass `until` (if until > 0), or until Stop is called. It
// returns the final clock value. A bounded run (until > 0) always ends
// with Now() == until unless Stop cut it short — including when the queue
// drains before `until`: the clock advances through the empty remainder,
// so callers scheduling relative to a bounded run's end (metrics probes,
// periodic samplers) see a consistent clock. An unbounded run ends at the
// last executed event; Stop leaves the clock at the stopping event.
func (e *Engine) Run(until units.Time) units.Time {
	if !e.running.CompareAndSwap(false, true) {
		panic("sim: concurrent Run on one Engine — an engine is owned by a single goroutine")
	}
	defer e.running.Store(false)
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if ev.cancelled {
			heap.Pop(&e.events)
			e.CancelledDrops++
			continue
		}
		if until > 0 && ev.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		e.live--
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.Executed++
		e.comp = ev.comp
		if p := e.prof; p != nil {
			p.Counts[ev.comp]++
			if p.Wall != nil {
				w0 := p.Wall()
				fn()
				p.WallNs[ev.comp] += p.Wall() - w0
				continue
			}
		}
		fn()
	}
	if !e.stopped && until > 0 && e.now < until {
		e.now = until
	}
	return e.now
}

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// PendingActive returns the number of queued events that can still fire —
// cancelled events awaiting discard are excluded. Periodic self-rescheduling
// work (metrics probes) keys off this so a lingering cancelled timer far in
// the future does not keep it alive.
func (e *Engine) PendingActive() int { return e.live }

// Timer is a restartable one-shot timer, the building block for transport
// retransmission timeouts. The zero value is an unarmed timer; set Fn before
// arming it.
type Timer struct {
	eng *Engine
	ev  *Event
	// Fn runs when the timer expires.
	Fn func()
	// Comp attributes the timer's expiry dispatch; NewTimer defaults it to
	// CompTimer so retransmission timeouts profile as timer work. Owners
	// with a more specific identity (DCQCN rate timers → CompCC, NDP pacer
	// → CompTransport) override it after construction.
	Comp Comp
}

// NewTimer returns a timer bound to the engine, attributed to CompTimer.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, Fn: fn, Comp: CompTimer}
}

// Reset (re)arms the timer to fire d from now, cancelling any earlier
// deadline.
func (t *Timer) Reset(d units.Time) {
	t.Stop()
	t.ev = t.eng.AfterComp(d, t.Comp, func() {
		t.ev = nil
		t.Fn()
	})
}

// Stop disarms the timer if it is armed.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the absolute expiry time; valid only if Armed.
func (t *Timer) Deadline() units.Time {
	if t.ev == nil {
		return 0
	}
	return t.ev.Time()
}
