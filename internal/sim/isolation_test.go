package sim

import (
	"testing"

	"dcpsim/internal/units"
)

// installStochasticLoad schedules a self-rescheduling workload on eng that
// draws a random delay from the engine RNG inside every event and folds
// each (time, draw) pair into *fp (FNV-style). Any cross-engine state
// leakage — a shared RNG, shared sequence counter, shared clock — would
// change either the draws or the event times and thus the fingerprint.
func installStochasticLoad(eng *Engine, horizon units.Time, fp *uint64) {
	*fp = 1469598103934665603
	mix := func(v uint64) {
		*fp ^= v
		*fp *= 1099511628211
	}
	var tick func()
	tick = func() {
		d := eng.Rand().Int63n(int64(units.Microsecond)) + 1
		mix(uint64(eng.Now()))
		mix(uint64(d))
		if eng.Now() < horizon {
			eng.After(units.Time(d), tick)
		}
	}
	eng.After(0, tick)
}

// runSliced drives eng to horizon in bounded slices of step.
func runSliced(eng *Engine, step, horizon units.Time) {
	for eng.Now() < horizon {
		next := eng.Now() + step
		if next > horizon {
			next = horizon
		}
		eng.Run(next)
	}
}

// TestInterleavedEnginesBitIdentical is the shared-state regression guard
// the parallel runner rests on: two engines stepped in alternating bounded
// Run slices must each produce exactly the run they produce when driven
// alone to completion, because engines share no mutable state. If anyone
// introduces package-level state (a global RNG, a shared sequence counter
// feeding event ordering), this test breaks.
func TestInterleavedEnginesBitIdentical(t *testing.T) {
	const horizon = units.Millisecond
	// Solo reference runs, each driven to the horizon in one Run call.
	var soloA, soloB uint64
	ea, eb := NewEngine(7), NewEngine(8)
	installStochasticLoad(ea, horizon, &soloA)
	installStochasticLoad(eb, horizon, &soloB)
	ea.Run(horizon)
	eb.Run(horizon)

	// Interleaved: alternate 20 µs bounded slices between two fresh engines.
	var fpA, fpB uint64
	a, b := NewEngine(7), NewEngine(8)
	installStochasticLoad(a, horizon, &fpA)
	installStochasticLoad(b, horizon, &fpB)
	const step = 20 * units.Microsecond
	for a.Now() < horizon || b.Now() < horizon {
		for _, e := range []*Engine{a, b} {
			if e.Now() < horizon {
				next := e.Now() + step
				if next > horizon {
					next = horizon
				}
				e.Run(next)
			}
		}
	}
	if fpA != soloA {
		t.Fatalf("engine A diverged under interleaving: got %#x, want %#x", fpA, soloA)
	}
	if fpB != soloB {
		t.Fatalf("engine B diverged under interleaving: got %#x, want %#x", fpB, soloB)
	}

	// And slicing alone must not matter either: a third copy driven solo in
	// slices matches the one-shot solo run.
	var fpC uint64
	c := NewEngine(7)
	installStochasticLoad(c, horizon, &fpC)
	runSliced(c, step, horizon)
	if fpC != soloA {
		t.Fatalf("sliced solo run diverged: got %#x, want %#x", fpC, soloA)
	}
}

// TestConcurrentRunPanics asserts the single-goroutine ownership guard: a
// second Run on an engine that is already inside Run panics instead of
// corrupting the event stream.
func TestConcurrentRunPanics(t *testing.T) {
	eng := NewEngine(1)
	var recovered any
	eng.After(units.Microsecond, func() {
		// Re-entrant Run from inside an event is the deterministic stand-in
		// for a second goroutine racing into Run.
		defer func() { recovered = recover() }()
		eng.Run(2 * units.Microsecond)
	})
	eng.Run(0)
	if recovered == nil {
		t.Fatal("re-entrant Run did not panic")
	}
	// The guard must reset: the engine is usable again afterwards.
	fired := false
	eng.After(units.Microsecond, func() { fired = true })
	eng.Run(0)
	if !fired {
		t.Fatal("engine unusable after guard panic")
	}
}
