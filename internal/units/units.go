// Package units defines the base quantities used throughout the simulator:
// simulated time, link rates, and byte sizes.
//
// Time is counted in integer picoseconds. At 100 Gbps a single byte takes
// 80 ps to serialize, so a picosecond clock represents serialization times
// of every packet size at every modeled rate exactly, with no floating-point
// drift. An int64 picosecond clock covers ~106 days of simulated time, far
// beyond any experiment in this repository.
package units

import (
	"fmt"
	"math/bits"
)

// Time is a point in simulated time or a duration, in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Picos returns the raw picosecond count. This is the sanctioned escape
// into unitless arithmetic (serialization formats, checkpoints); prefer
// the floating-point accessors for reporting.
func (t Time) Picos() int64 { return int64(t) }

// Scale returns d scaled by f, rounded toward zero. It is the sanctioned
// way to take a fraction or multiple of a duration without dropping to
// raw integers (unitcheck flags raw conversions).
func Scale(d Time, f float64) Time { return Time(float64(d) * f) }

// Mul returns d times an integer count, exactly. Use it (with Div) where
// float64 rounding in Scale would be unwelcome, e.g. spacing n events
// evenly across an interval.
func Mul(d Time, n int64) Time { return d * Time(n) }

// Div returns d divided by an integer count, truncated toward zero.
func Div(d Time, n int64) Time { return d / Time(n) }

// Nanos returns the time as floating-point nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond || t <= -Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Rate is a link or sending rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// Gigabits returns the rate in Gbps as a float.
func (r Rate) Gigabits() float64 { return float64(r) / float64(Gbps) }

// BytesPerSec returns the rate as floating-point bytes per second.
func (r Rate) BytesPerSec() float64 { return float64(r) / 8 }

// BitsPerSec returns the rate as floating-point bits per second — the
// sanctioned escape into unitless arithmetic for rate algebra.
func (r Rate) BitsPerSec() float64 { return float64(r) }

// ScaleRate returns r scaled by f, rounded toward zero — the sanctioned
// way to express DCQCN-style multiplicative rate updates.
func ScaleRate(r Rate, f float64) Rate { return Rate(float64(r) * f) }

// DivRate returns r divided by an integer count, exactly (truncated
// toward zero) — splitting a link rate across n shares.
func DivRate(r Rate, n int64) Rate { return r / Rate(n) }

func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Byte sizes.
const (
	Byte = 1
	KB   = 1000 * Byte
	MB   = 1000 * KB
	GB   = 1000 * MB
	KiB  = 1024 * Byte
	MiB  = 1024 * KiB
)

// TxTime returns the serialization time of a packet of the given size at the
// given rate: bytes*8 bits divided by rate, rounded up to a whole picosecond
// so that back-to-back packets never overlap.
func TxTime(bytes int, rate Rate) Time {
	if rate <= 0 {
		panic("units: TxTime with non-positive rate")
	}
	if bytes <= 0 {
		return 0
	}
	// t = bits × 1e12 / rate picoseconds, computed exactly in 128 bits
	// (the naive product overflows int64 beyond ~1 MB).
	hi, lo := bits.Mul64(uint64(bytes)*8, uint64(Second))
	q, rem := bits.Div64(hi, lo, uint64(rate))
	if rem != 0 {
		q++ // round up so back-to-back packets never overlap
	}
	return Time(q)
}

// BytesIn returns how many whole bytes the given rate delivers in d.
func BytesIn(d Time, rate Rate) int64 {
	if d <= 0 {
		return 0
	}
	// bytes = rate * d / 8e12. The naive product overflows int64 for
	// millisecond-scale durations at 100 Gbps, so split d into whole and
	// fractional seconds.
	bytesPerSec := int64(rate) / 8
	secs := int64(d) / int64(Second)
	frac := int64(d) % int64(Second)
	// bytesPerSec ≤ 1.25e11 and frac < 1e12: the product can still
	// overflow int64, so the fractional second goes through float64
	// (exact to well under one byte at these magnitudes).
	fracBytes := int64(float64(bytesPerSec) * float64(frac) / 1e12)
	return bytesPerSec*secs + fracBytes
}

// BDP returns the bandwidth-delay product in bytes for rate r and round-trip
// time rtt.
func BDP(r Rate, rtt Time) int {
	return int(BytesIn(rtt, r))
}
