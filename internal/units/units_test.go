package units

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTxTimeExact(t *testing.T) {
	cases := []struct {
		bytes int
		rate  Rate
		want  Time
	}{
		{1, 100 * Gbps, 80 * Picosecond},
		{1000, 100 * Gbps, 80 * Nanosecond},
		{1000, 400 * Gbps, 20 * Nanosecond},
		{1500, 10 * Gbps, 1200 * Nanosecond},
		{57, 100 * Gbps, 4560 * Picosecond},
		{0, 100 * Gbps, 0},
	}
	for _, c := range cases {
		if got := TxTime(c.bytes, c.rate); got != c.want {
			t.Errorf("TxTime(%d, %v) = %v, want %v", c.bytes, c.rate, got, c.want)
		}
	}
}

func TestTxTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps = 8/3 s -> must round up to a whole picosecond.
	got := TxTime(1, 3)
	want := Time(8*int64(Second)/3 + 1)
	if got != want {
		t.Fatalf("TxTime(1, 3bps) = %d, want %d", got, want)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TxTime(1, 0)
}

func TestTxTimeMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return TxTime(x, 100*Gbps) <= TxTime(y, 100*Gbps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesInInvertsTxTime(t *testing.T) {
	// Serializing n bytes then asking how many bytes fit in that time must
	// return at least n-1 (TxTime rounds up, BytesIn truncates).
	f := func(n uint16, rsel uint8) bool {
		rates := []Rate{10 * Gbps, 25 * Gbps, 100 * Gbps, 400 * Gbps}
		r := rates[int(rsel)%len(rates)]
		n64 := int64(n) + 1
		got := BytesIn(TxTime(int(n64), r), r)
		return got >= n64-1 && got <= n64+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesInLargeDurationsNoOverflow(t *testing.T) {
	// The regression behind the cross-DC bug: millisecond-scale durations
	// at 100 Gbps overflowed the naive product.
	cases := []struct {
		d    Time
		r    Rate
		want int64
	}{
		{Millisecond, 100 * Gbps, 12_500_000},
		{10 * Millisecond, 100 * Gbps, 125_000_000},
		{Second, 400 * Gbps, 50_000_000_000},
		{10 * Second, 800 * Gbps, 1_000_000_000_000},
	}
	for _, c := range cases {
		got := BytesIn(c.d, c.r)
		if got != c.want {
			t.Errorf("BytesIn(%v, %v) = %d, want %d", c.d, c.r, got, c.want)
		}
		if got < 0 {
			t.Errorf("BytesIn(%v, %v) overflowed", c.d, c.r)
		}
	}
}

func TestBytesInNonPositive(t *testing.T) {
	if BytesIn(0, 100*Gbps) != 0 || BytesIn(-Second, 100*Gbps) != 0 {
		t.Fatal("non-positive durations must yield 0 bytes")
	}
}

func TestBDP(t *testing.T) {
	// 100 Gbps × 10 µs = 125 KB.
	if got := BDP(100*Gbps, 10*Microsecond); got != 125000 {
		t.Fatalf("BDP = %d, want 125000", got)
	}
	// The paper's Table 3 scenario: 400 Gbps × 10 µs = 500 KB.
	if got := BDP(400*Gbps, 10*Microsecond); got != 500000 {
		t.Fatalf("BDP = %d, want 500000", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		0:                  "0",
		500 * Picosecond:   "500ps",
		80 * Nanosecond:    "80.000ns",
		1500 * Nanosecond:  "1.500us",
		2500 * Microsecond: "2.500ms",
		3 * Second:         "3s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := map[Rate]string{
		100 * Gbps:  "100Gbps",
		2500 * Mbps: "2.50Gbps",
		40 * Mbps:   "40.00Mbps",
		5:           "5bps",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v: got %q want %q", int64(in), got, want)
		}
	}
}

func TestSecondsMicrosNanos(t *testing.T) {
	d := 1500 * Microsecond
	if d.Seconds() != 0.0015 {
		t.Errorf("Seconds() = %v", d.Seconds())
	}
	if d.Micros() != 1500 {
		t.Errorf("Micros() = %v", d.Micros())
	}
	if d.Nanos() != 1.5e6 {
		t.Errorf("Nanos() = %v", d.Nanos())
	}
}

func TestTxTimeAdditive(t *testing.T) {
	// Serializing a+b bytes takes no less than serializing them separately
	// minus rounding, and no more than the sum.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a, b := rng.Intn(9000)+1, rng.Intn(9000)+1
		r := Rate(rng.Intn(40)+1) * 10 * Gbps
		sum := TxTime(a, r) + TxTime(b, r)
		both := TxTime(a+b, r)
		if both > sum {
			t.Fatalf("TxTime(%d+%d) = %v > split %v", a, b, both, sum)
		}
		if sum-both > 2*Picosecond {
			t.Fatalf("rounding drift too large: split %v vs joint %v", sum, both)
		}
	}
}

func TestTxTimeLargeSizesNoOverflow(t *testing.T) {
	// Whole-flow serialization times (the slowdown denominator) must not
	// overflow: 30 MB at 100 Gbps is 2.4 ms.
	got := TxTime(30_000_000, 100*Gbps)
	if got != 2400*Microsecond {
		t.Fatalf("TxTime(30MB, 100G) = %v", got)
	}
	if TxTime(1<<31, 10*Gbps) <= 0 {
		t.Fatal("overflowed")
	}
}
