package faults

import (
	"reflect"
	"strings"
	"testing"

	"dcpsim/internal/units"
)

// TestParseKindRoundTrip: every primitive kind's String() parses back.
func TestParseKindRoundTrip(t *testing.T) {
	for k := LinkDown; k <= LinkDup; k++ {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseKind("nope"); ok {
		t.Error("ParseKind accepted an unknown kind")
	}
}

// TestFromSpecsMatchesBuilders: the declarative compilation of each
// composite kind must produce the identical event schedule as calling the
// builder methods directly with the same seed.
func TestFromSpecsMatchesBuilders(t *testing.T) {
	specs := []Spec{
		{Kind: "link-down-for", Link: "cross0", AtUs: 100, DurUs: 50},
		{Kind: "link-flap", Link: "cross1", AtUs: 200, PeriodUs: 40, Duty: 0.5, Count: 3},
		{Kind: "loss-ramp", Link: "cross0", AtUs: 10, DurUs: 400, Rate: 0.02, Steps: 8},
		{Kind: "switch-loss-ramp", Switch: 1, AtUs: 10, DurUs: 400, Rate: 0.02, Steps: 8},
		{Kind: "loss-bursts", Link: "cross2", AtUs: 0, DurUs: 500, Count: 4, MinPkts: 2, MaxPkts: 9},
		{Kind: "dup-burst", Link: "cross0", AtUs: 77, Count: 5},
		{Kind: "blackout", Switch: 0, AtUs: 300, DurUs: 100},
		{Kind: "pause-storm", Link: "cross3", AtUs: 50, DurUs: 200, Duty: 1},
		{Kind: "switch-loss", Switch: 1, AtUs: 20, Rate: 0.01},
	}
	got, err := FromSpecs(42, specs)
	if err != nil {
		t.Fatal(err)
	}

	u := func(v float64) units.Time { return units.Scale(units.Microsecond, v) }
	want := NewPlan(42).
		LinkDownFor("cross0", u(100), u(50)).
		LinkFlap("cross1", u(200), u(40), 0.5, 3).
		LossRamp("cross0", u(10), u(400), 0.02, 8).
		SwitchLossRamp(1, u(10), u(400), 0.02, 8).
		LossBursts("cross2", 0, u(500), 4, 2, 9).
		DupBurst("cross0", u(77), 5).
		Blackout(0, u(300), u(100)).
		PauseStorm("cross3", u(50), u(200), 0, 1).
		Add(Event{At: u(20), Kind: SwitchLoss, Switch: 1, Rate: 0.01})

	if !reflect.DeepEqual(got.Events(), want.Events()) {
		t.Fatalf("compiled schedule diverged:\ngot  %v\nwant %v", got.Events(), want.Events())
	}
}

// TestFromSpecsDeterministic: equal (seed, specs) compile bit-identically;
// a different seed moves the seeded burst placement.
func TestFromSpecsDeterministic(t *testing.T) {
	specs := []Spec{{Kind: "loss-bursts", Link: "cross0", DurUs: 1000, Count: 6, MinPkts: 1, MaxPkts: 12}}
	a, err := FromSpecs(7, specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSpecs(7, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different schedules")
	}
	c, err := FromSpecs(8, specs)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical burst placement")
	}
}

// TestSpecValidate covers the error diagnostics the campaign linter
// surfaces with line anchors.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: "melt-core", Link: "x"}, "unknown fault kind"},
		{Spec{Kind: "link-down"}, "requires a link"},
		{Spec{Kind: "link-loss", Link: "cross0", Rate: 1.5}, "outside [0,1]"},
		{Spec{Kind: "blackout", AtUs: -1}, "non-negative"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v; want error containing %q", c.spec, err, c.want)
		}
	}
	if err := (Spec{Kind: "pause-storm", Link: "cross0", DurUs: 10, Duty: 1}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestSpecScaled: severity multiplies duration and rate, clamping rates.
func TestSpecScaled(t *testing.T) {
	s := Spec{Kind: "loss-ramp", Link: "l", DurUs: 100, Rate: 0.6}
	d := s.Scaled(2)
	if d.DurUs != 200 || d.Rate != 1 {
		t.Fatalf("Scaled(2) = dur %g rate %g; want 200, 1", d.DurUs, d.Rate)
	}
	if s.Scaled(1) != s {
		t.Fatal("Scaled(1) must be identity")
	}
}
