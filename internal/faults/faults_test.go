package faults_test

import (
	"reflect"
	"strings"
	"testing"

	"dcpsim/internal/faults"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
)

func tinyNet(eng *sim.Engine) *topo.Network {
	cfg := topo.DefaultDumbbell()
	cfg.HostsPerSwitch = 1
	cfg.CrossLinks = 2
	return topo.Dumbbell(eng, cfg)
}

func TestPlanSeedDeterminism(t *testing.T) {
	build := func(seed int64) []faults.Event {
		return faults.NewPlan(seed).
			LossBursts("cross0", 0, units.Millisecond, 5, 2, 10).
			LinkFlap("cross1", units.Microsecond, 10*units.Microsecond, 0.5, 3).
			Events()
	}
	if !reflect.DeepEqual(build(7), build(7)) {
		t.Fatal("same seed produced different plans")
	}
	if reflect.DeepEqual(build(7), build(8)) {
		t.Fatal("different seeds produced identical burst placement")
	}
}

func TestPlanSortedAndHorizon(t *testing.T) {
	p := faults.NewPlan(1).
		Add(faults.Event{At: 30, Kind: faults.LinkUp, Link: "a"}).
		Add(faults.Event{At: 10, Kind: faults.LinkDown, Link: "a"}).
		Add(faults.Event{At: 20, Kind: faults.LinkLoss, Link: "a", Rate: 0.1})
	evs := p.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not sorted: %v", evs)
		}
	}
	if p.Horizon() != 30 {
		t.Fatalf("horizon = %v, want 30", p.Horizon())
	}
}

func TestInjectValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	net := tinyNet(eng)
	if _, err := net.Inject(faults.NewPlan(1).LinkDownFor("nosuch", 0, units.Microsecond)); err == nil || !strings.Contains(err.Error(), "unknown link") {
		t.Fatalf("unknown link not rejected: %v", err)
	}
	if _, err := net.Inject(faults.NewPlan(1).Blackout(99, 0, units.Microsecond)); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad switch index not rejected: %v", err)
	}
	eng.At(units.Microsecond, func() {})
	eng.Run(units.Microsecond)
	if _, err := net.Inject(faults.NewPlan(1).LinkDownFor("cross0", 0, units.Microsecond)); err == nil || !strings.Contains(err.Error(), "past") {
		t.Fatalf("past event not rejected: %v", err)
	}
}

func TestAdminDownDropsSilently(t *testing.T) {
	eng := sim.NewEngine(1)
	net := tinyNet(eng)
	w := net.LinkEnds("cross0")[0].Wire
	w.SetAdminDown(true)
	if !w.AdminDown() {
		t.Fatal("AdminDown not set")
	}
	p := packet.DataPacket(1, 0, 1, 0, 0, 1000)
	w.Deliver(p)
	if w.FaultDrops != 1 || w.Delivered != 0 {
		t.Fatalf("FaultDrops=%d Delivered=%d, want 1/0", w.FaultDrops, w.Delivered)
	}
	w.SetAdminDown(false)
	w.Deliver(p)
	if w.FaultDrops != 1 || w.Delivered != 1 {
		t.Fatalf("after restore FaultDrops=%d Delivered=%d, want 1/1", w.FaultDrops, w.Delivered)
	}
}

func TestBurstAndLossRateDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	net := tinyNet(eng)
	w := net.LinkEnds("cross0")[0].Wire
	p := packet.DataPacket(1, 0, 1, 0, 0, 1000)
	w.InjectBurst(3)
	for i := 0; i < 5; i++ {
		w.Deliver(p)
	}
	if w.FaultDrops != 3 || w.Delivered != 2 {
		t.Fatalf("burst: FaultDrops=%d Delivered=%d, want 3/2", w.FaultDrops, w.Delivered)
	}
	w.SetLossRate(1)
	w.Deliver(p)
	if w.FaultDrops != 4 {
		t.Fatalf("lossRate=1 did not drop (FaultDrops=%d)", w.FaultDrops)
	}
	w.SetLossRate(0)
	w.Deliver(p)
	if w.Delivered != 3 {
		t.Fatalf("lossRate=0 did not deliver (Delivered=%d)", w.Delivered)
	}
}

func TestInjectorAppliesEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	net := tinyNet(eng)
	us := units.Microsecond
	plan := faults.NewPlan(1).
		LinkDownFor("cross0", 1*us, 2*us).
		PauseStorm("cross1", 1*us, 2*us, 0, 1).
		Blackout(0, 1*us, 2*us)
	in, err := net.Inject(plan)
	if err != nil {
		t.Fatal(err)
	}
	ends := net.LinkEnds("cross0")
	eng.Run(2 * us) // mid-fault
	for _, e := range ends {
		if !e.Wire.AdminDown() {
			t.Fatal("cross0 wire not admin-down mid-fault")
		}
		if e.Switch != nil && !e.Switch.EgressAt(e.Egress).LinkDown() {
			t.Fatal("cross0 egress not marked down mid-fault")
		}
	}
	for _, e := range net.LinkEnds("cross1") {
		if src := e.Wire.Src(); src == nil || !src.ForcedPause() {
			t.Fatal("cross1 feeding port not force-paused mid-storm")
		}
	}
	if !net.Switches[0].Blackout() {
		t.Fatal("switch 0 not blacked out mid-fault")
	}
	// A packet arriving at a blacked-out switch vanishes.
	net.Switches[0].Receive(packet.DataPacket(1, 0, 1, 0, 0, 1000), 0)
	if net.Switches[0].Counters.BlackoutDrops != 1 {
		t.Fatalf("BlackoutDrops=%d, want 1", net.Switches[0].Counters.BlackoutDrops)
	}
	eng.Run(4 * us) // past recovery
	for _, e := range ends {
		if e.Wire.AdminDown() {
			t.Fatal("cross0 wire still down after recovery")
		}
	}
	for _, e := range net.LinkEnds("cross1") {
		if e.Wire.Src().ForcedPause() {
			t.Fatal("cross1 port still paused after storm")
		}
	}
	if net.Switches[0].Blackout() {
		t.Fatal("switch 0 still blacked out after reboot")
	}
	if in.Fired != 6 {
		t.Fatalf("Fired=%d, want 6", in.Fired)
	}
}
