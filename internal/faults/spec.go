package faults

import (
	"fmt"

	"dcpsim/internal/units"
)

// This file is the declarative surface of the fault subsystem: a Spec is
// one fault entry as a campaign document states it — kind by name, times
// in microseconds — and FromSpecs compiles a list of them into the same
// seeded Plan the builder methods produce. internal/campaign references
// fault kinds only through this surface, so the campaign DSL can never
// drift from the kinds the injector actually implements.

// ParseKind maps a kind's String() name back to the Kind. It covers the
// primitive event kinds; composite schedule names (link-flap, loss-ramp,
// ...) are handled by FromSpecs directly.
func ParseKind(name string) (Kind, bool) {
	for k := LinkDown; k <= LinkDup; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Spec is one declarative fault entry. Kind names either a primitive
// event kind (link-down, link-up, link-loss, link-burst, switch-loss,
// pause-on, pause-off, switch-down, switch-up, link-dup) or a composite
// schedule (link-down-for, link-flap, loss-ramp, switch-loss-ramp,
// loss-bursts, dup-burst, blackout, pause-storm). Times are given in
// microseconds — the natural magnitude for fault schedules — and are
// converted to typed units on compilation.
type Spec struct {
	Kind string
	// Link names the target link for link-scoped kinds.
	Link string
	// Switch indexes the target switch for switch-scoped kinds.
	Switch int
	// AtUs is the schedule start; DurUs the duration of composite kinds.
	AtUs  float64
	DurUs float64
	// Rate is the loss probability (link-loss, switch-loss, and the peak
	// of the ramps).
	Rate float64
	// Count is the burst length (link-burst, dup-burst), or the number of
	// cycles (link-flap) / bursts (loss-bursts).
	Count int
	// Steps is the ramp step count (0 → builder default).
	Steps int
	// PeriodUs is the cycle period for link-flap and pause-storm.
	PeriodUs float64
	// Duty is the duty cycle for link-flap and pause-storm.
	Duty float64
	// MinPkts/MaxPkts bound the per-burst packet count for loss-bursts.
	MinPkts int
	MaxPkts int
}

// compositeKinds are the schedule-level names FromSpecs accepts on top of
// the primitive Kind names.
var compositeKinds = []string{
	"link-down-for", "link-flap", "loss-ramp", "switch-loss-ramp",
	"loss-bursts", "dup-burst", "blackout", "pause-storm",
}

// KnownSpecKinds lists every kind name a Spec may use: primitives in Kind
// order, then the composite schedules.
func KnownSpecKinds() []string {
	var out []string
	for k := LinkDown; k <= LinkDup; k++ {
		out = append(out, k.String())
	}
	return append(out, compositeKinds...)
}

// linkScoped reports whether the spec kind targets a named link (and so
// requires Spec.Link).
func linkScoped(kind string) bool {
	switch kind {
	case "switch-loss", "switch-down", "switch-up", "switch-loss-ramp", "blackout":
		return false
	}
	return true
}

// Validate checks the spec independent of any network: the kind must be
// known, link-scoped kinds need a link name, and rates must be
// probabilities.
func (s Spec) Validate() error {
	known := false
	if _, ok := ParseKind(s.Kind); ok {
		known = true
	}
	for _, c := range compositeKinds {
		if s.Kind == c {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown fault kind %q (known: %v)", s.Kind, KnownSpecKinds())
	}
	if linkScoped(s.Kind) && s.Link == "" {
		return fmt.Errorf("fault kind %q requires a link name", s.Kind)
	}
	if s.Rate < 0 || s.Rate > 1 {
		return fmt.Errorf("fault rate %g outside [0,1]", s.Rate)
	}
	if s.AtUs < 0 || s.DurUs < 0 || s.PeriodUs < 0 {
		return fmt.Errorf("fault times must be non-negative (at=%g dur=%g period=%g µs)", s.AtUs, s.DurUs, s.PeriodUs)
	}
	return nil
}

// Scaled returns a copy of s with its duration and rate multiplied by
// severity — the declarative twin of the registry fault families'
// severity ladder. Rates clamp to 1.
func (s Spec) Scaled(severity float64) Spec {
	if severity <= 0 || severity == 1 {
		return s
	}
	s.DurUs *= severity
	s.Rate *= severity
	if s.Rate > 1 {
		s.Rate = 1
	}
	return s
}

func us(v float64) units.Time { return units.Scale(units.Microsecond, v) }

// FromSpecs compiles declarative fault specs into a seeded Plan,
// preserving spec order (the plan's own Events() sort handles time
// ordering). All randomness (loss-burst placement) derives from seed, so
// equal (seed, specs) always compile to the identical event schedule.
func FromSpecs(seed int64, specs []Spec) (*Plan, error) {
	p := NewPlan(seed)
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		at, dur, period := us(s.AtUs), us(s.DurUs), us(s.PeriodUs)
		switch s.Kind {
		case "link-down-for":
			p.LinkDownFor(s.Link, at, dur)
		case "link-flap":
			count := s.Count
			if count < 1 {
				count = 1
			}
			p.LinkFlap(s.Link, at, period, s.Duty, count)
		case "loss-ramp":
			p.LossRamp(s.Link, at, dur, s.Rate, s.Steps)
		case "switch-loss-ramp":
			p.SwitchLossRamp(s.Switch, at, dur, s.Rate, s.Steps)
		case "loss-bursts":
			if dur <= 0 {
				return nil, fmt.Errorf("fault %d: loss-bursts requires dur_us > 0", i)
			}
			minP, maxP := s.MinPkts, s.MaxPkts
			if minP < 1 {
				minP = 1
			}
			n := s.Count
			if n < 1 {
				n = 1
			}
			p.LossBursts(s.Link, at, dur, n, minP, maxP)
		case "dup-burst":
			p.DupBurst(s.Link, at, s.Count)
		case "blackout":
			p.Blackout(s.Switch, at, dur)
		case "pause-storm":
			p.PauseStorm(s.Link, at, dur, period, s.Duty)
		default:
			k, _ := ParseKind(s.Kind)
			p.Add(Event{At: at, Kind: k, Link: s.Link, Switch: s.Switch, Rate: s.Rate, Count: s.Count})
		}
	}
	return p, nil
}
