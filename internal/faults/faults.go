// Package faults is the deterministic fault-injection subsystem: a Plan is
// a seeded schedule of typed fault events — link flaps, time-varying link
// BER, correlated loss bursts, degraded (lossy) switches, PFC pause storms
// and whole-switch blackouts — executed against the hooks the fabric
// exposes (Wire admin-down/loss, Port forced pause, Switch blackout and
// egress link-down). Plans are pure data built before the simulation runs;
// every stochastic choice (burst placement) comes from the plan's own
// seeded source, so a given seed reproduces the same fault timeline
// bit-for-bit. topo.Network.Inject wires a Plan onto a built network.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"dcpsim/internal/fabric"
	"dcpsim/internal/obs"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// Kind is the type of one fault event.
type Kind int

// Fault event kinds.
const (
	// LinkDown takes every wire of the named link admin-down and marks the
	// transmitting switch egresses down (flushing their queues; a trimming
	// switch rescues queued DCP data as HO notifications).
	LinkDown Kind = iota
	// LinkUp reverses LinkDown.
	LinkUp
	// LinkLoss sets the named link's wire loss probability to Rate —
	// silent BER-style loss, invisible to switches.
	LinkLoss
	// LinkBurst discards the next Count packets on each wire of the link.
	LinkBurst
	// SwitchLoss sets switch Switch's enforced loss rate to Rate — visible
	// loss: a trimming switch converts the victims into HO notifications.
	SwitchLoss
	// PauseOn forces PFC pause on the ports feeding the named link (a
	// pause storm: the ports act as if the peer keeps them XOFF'd).
	PauseOn
	// PauseOff releases a forced pause.
	PauseOff
	// SwitchDown blacks out switch Switch: its buffer is flushed and all
	// traffic through it vanishes until SwitchUp.
	SwitchDown
	// SwitchUp reboots a blacked-out switch (empty buffers, same routes).
	SwitchUp
	// LinkDup makes each wire of the named link deliver its next Count data
	// packets twice — a duplicating fabric. Transports must reject the
	// copies; the flight recorder's mutation tests use this to prove the
	// exactly-once checker detects double counting.
	LinkDup
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case LinkLoss:
		return "link-loss"
	case LinkBurst:
		return "link-burst"
	case SwitchLoss:
		return "switch-loss"
	case PauseOn:
		return "pause-on"
	case PauseOff:
		return "pause-off"
	case SwitchDown:
		return "switch-down"
	case SwitchUp:
		return "switch-up"
	case LinkDup:
		return "link-dup"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	At   units.Time
	Kind Kind
	// Link names the target link (topo assigns names like "cross0",
	// "host3", "leaf1-spine2") for link-scoped kinds.
	Link string
	// Switch indexes Targets.Switches for switch-scoped kinds.
	Switch int
	// Rate is the loss probability for LinkLoss / SwitchLoss.
	Rate float64
	// Count is the burst length in packets for LinkBurst.
	Count int
}

func (e Event) String() string {
	switch e.Kind {
	case SwitchLoss, SwitchDown, SwitchUp:
		return fmt.Sprintf("%v %s sw=%d rate=%g", e.At, e.Kind, e.Switch, e.Rate)
	default:
		return fmt.Sprintf("%v %s link=%s rate=%g count=%d", e.At, e.Kind, e.Link, e.Rate, e.Count)
	}
}

// Plan is a seeded schedule of fault events.
type Plan struct {
	seed   int64
	rng    *rand.Rand
	events []Event
}

// NewPlan returns an empty plan. All randomness the builder methods use
// (burst placement) derives from seed, so the same seed always yields the
// same event list.
func NewPlan(seed int64) *Plan {
	return &Plan{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Add appends one event and returns the plan for chaining.
func (p *Plan) Add(e Event) *Plan {
	p.events = append(p.events, e)
	return p
}

// Events returns the schedule sorted by time (ties keep insertion order).
func (p *Plan) Events() []Event {
	out := append([]Event(nil), p.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Horizon returns the time of the last event (0 for an empty plan).
func (p *Plan) Horizon() units.Time {
	var h units.Time
	for _, e := range p.events {
		if e.At > h {
			h = e.At
		}
	}
	return h
}

// LinkDownFor schedules one down/up cycle on link: down at `at`, back up
// after dur.
func (p *Plan) LinkDownFor(link string, at, dur units.Time) *Plan {
	p.Add(Event{At: at, Kind: LinkDown, Link: link})
	p.Add(Event{At: at + dur, Kind: LinkUp, Link: link})
	return p
}

// LinkFlap schedules count down/up cycles starting at start: each period
// the link spends duty×period down, then comes back up.
func (p *Plan) LinkFlap(link string, start, period units.Time, duty float64, count int) *Plan {
	if duty <= 0 || duty > 1 {
		duty = 0.5
	}
	down := units.Scale(period, duty)
	for i := 0; i < count; i++ {
		p.LinkDownFor(link, start+units.Mul(period, int64(i)), down)
	}
	return p
}

// LossRamp schedules a triangular BER ramp on link: the wire loss rate
// climbs from 0 to peak over the first half of dur in `steps` increments,
// then back down, ending at 0.
func (p *Plan) LossRamp(link string, start, dur units.Time, peak float64, steps int) *Plan {
	if steps < 2 {
		steps = 2
	}
	half := steps / 2
	for i := 0; i <= steps; i++ {
		at := start + units.Div(units.Mul(dur, int64(i)), int64(steps))
		var r float64
		if i <= half {
			r = peak * float64(i) / float64(half)
		} else {
			r = peak * float64(steps-i) / float64(steps-half)
		}
		p.Add(Event{At: at, Kind: LinkLoss, Link: link, Rate: r})
	}
	return p
}

// SwitchLossRamp is LossRamp's visible-loss twin: it ramps a switch's
// enforced loss rate (trimming switches turn the victims into HO packets).
func (p *Plan) SwitchLossRamp(sw int, start, dur units.Time, peak float64, steps int) *Plan {
	if steps < 2 {
		steps = 2
	}
	half := steps / 2
	for i := 0; i <= steps; i++ {
		at := start + units.Div(units.Mul(dur, int64(i)), int64(steps))
		var r float64
		if i <= half {
			r = peak * float64(i) / float64(half)
		} else {
			r = peak * float64(steps-i) / float64(steps-half)
		}
		p.Add(Event{At: at, Kind: SwitchLoss, Switch: sw, Rate: r})
	}
	return p
}

// LossBursts schedules n correlated drop bursts on link at plan-seeded
// random times within [start, start+dur), each discarding between minPkts
// and maxPkts consecutive packets.
func (p *Plan) LossBursts(link string, start, dur units.Time, n, minPkts, maxPkts int) *Plan {
	if maxPkts < minPkts {
		maxPkts = minPkts
	}
	for i := 0; i < n; i++ {
		at := start + units.Time(p.rng.Int63n(dur.Picos()))*units.Picosecond
		count := minPkts
		if maxPkts > minPkts {
			count += p.rng.Intn(maxPkts - minPkts + 1)
		}
		p.Add(Event{At: at, Kind: LinkBurst, Link: link, Count: count})
	}
	return p
}

// DupBurst schedules a duplication burst on link: each wire of the link
// delivers its next count data packets twice.
func (p *Plan) DupBurst(link string, at units.Time, count int) *Plan {
	return p.Add(Event{At: at, Kind: LinkDup, Link: link, Count: count})
}

// Blackout schedules a switch crash at `at` with reboot after dur.
func (p *Plan) Blackout(sw int, at, dur units.Time) *Plan {
	p.Add(Event{At: at, Kind: SwitchDown, Switch: sw})
	p.Add(Event{At: at + dur, Kind: SwitchUp, Switch: sw})
	return p
}

// PauseStorm schedules a forced-pause storm on link: from start, each
// period the feeding ports spend duty×period XOFF'd, for dur total. A duty
// of 1 holds the pause continuously for the whole storm.
func (p *Plan) PauseStorm(link string, start, dur, period units.Time, duty float64) *Plan {
	if duty >= 1 || period <= 0 || period > dur {
		p.Add(Event{At: start, Kind: PauseOn, Link: link})
		p.Add(Event{At: start + dur, Kind: PauseOff, Link: link})
		return p
	}
	if duty <= 0 {
		duty = 0.5
	}
	on := units.Scale(period, duty)
	for t := units.Time(0); t < dur; t += period {
		off := t + on
		if off > dur {
			off = dur
		}
		p.Add(Event{At: start + t, Kind: PauseOn, Link: link})
		p.Add(Event{At: start + off, Kind: PauseOff, Link: link})
	}
	return p
}

// LinkEnd is one directional endpoint of a named link: the wire carrying
// packets away from this end plus, when a switch transmits onto it, the
// owning switch and egress index (so link-down can flush the port).
type LinkEnd struct {
	Wire   *fabric.Wire
	Switch *fabric.Switch // nil when a host NIC transmits onto the wire
	Egress int            // egress index on Switch; -1 when Switch is nil
}

// Targets names the injectable elements of a built network. Package topo
// fills it in while building topologies.
type Targets struct {
	// Links maps a link name to its directional ends (two for a normal
	// bidirectional link).
	Links map[string][]LinkEnd
	// Switches lists the switches addressable by Event.Switch.
	Switches []*fabric.Switch
	// Trace, when non-nil, records every applied fault event (obs.EvFault)
	// so fault timelines line up with packet-lifecycle traces.
	Trace *obs.Tracer
}

// Injector is a plan bound to a network, with its events scheduled on the
// engine.
type Injector struct {
	eng *sim.Engine
	tgt Targets

	// Fired counts fault events applied so far.
	Fired int
}

// Inject validates the plan against the targets and schedules every event
// on the engine. It must be called before the simulation clock passes the
// plan's first event.
func Inject(eng *sim.Engine, p *Plan, tgt Targets) (*Injector, error) {
	in := &Injector{eng: eng, tgt: tgt}
	for _, ev := range p.Events() {
		ev := ev
		switch ev.Kind {
		case SwitchLoss, SwitchDown, SwitchUp:
			if ev.Switch < 0 || ev.Switch >= len(tgt.Switches) {
				return nil, fmt.Errorf("faults: event %v: switch %d out of range (have %d)", ev, ev.Switch, len(tgt.Switches))
			}
		default:
			if len(tgt.Links[ev.Link]) == 0 {
				return nil, fmt.Errorf("faults: event %v: unknown link %q", ev, ev.Link)
			}
		}
		if ev.At < eng.Now() {
			return nil, fmt.Errorf("faults: event %v is in the past (now %v)", ev, eng.Now())
		}
		eng.AtComp(ev.At, sim.CompFaults, func() { in.apply(ev) })
	}
	return in, nil
}

func (in *Injector) apply(ev Event) {
	in.Fired++
	if in.tgt.Trace != nil {
		var note string
		switch ev.Kind {
		case SwitchLoss, SwitchDown, SwitchUp:
			note = fmt.Sprintf("%s sw%d", ev.Kind, ev.Switch)
		default:
			note = ev.Kind.String() + " " + ev.Link
		}
		in.tgt.Trace.Fault(in.eng.Now(), note)
	}
	switch ev.Kind {
	case LinkDown, LinkUp:
		down := ev.Kind == LinkDown
		for _, end := range in.tgt.Links[ev.Link] {
			end.Wire.SetAdminDown(down)
			if end.Switch != nil {
				end.Switch.SetEgressLinkDown(end.Egress, down)
			}
		}
	case LinkLoss:
		for _, end := range in.tgt.Links[ev.Link] {
			end.Wire.SetLossRate(ev.Rate)
		}
	case LinkBurst:
		for _, end := range in.tgt.Links[ev.Link] {
			end.Wire.InjectBurst(ev.Count)
		}
	case LinkDup:
		for _, end := range in.tgt.Links[ev.Link] {
			end.Wire.InjectDup(ev.Count)
		}
	case SwitchLoss:
		in.tgt.Switches[ev.Switch].SetLossRate(ev.Rate)
	case PauseOn, PauseOff:
		on := ev.Kind == PauseOn
		for _, end := range in.tgt.Links[ev.Link] {
			if src := end.Wire.Src(); src != nil {
				src.SetForcedPause(on)
			}
		}
	case SwitchDown:
		in.tgt.Switches[ev.Switch].SetBlackout(true)
	case SwitchUp:
		in.tgt.Switches[ev.Switch].SetBlackout(false)
	}
}

// WireFaultDrops sums the silent wire-level drops across every targeted
// link (admin-down, BER loss and bursts).
func (in *Injector) WireFaultDrops() uint64 {
	var n uint64
	seen := map[*fabric.Wire]bool{}
	//lint:allow detcheck set-insert plus commutative sum: order-insensitive
	for _, ends := range in.tgt.Links {
		for _, end := range ends {
			if !seen[end.Wire] {
				seen[end.Wire] = true
				n += end.Wire.FaultDrops
			}
		}
	}
	return n
}
