// Package campaign implements the declarative campaign DSL: a TOML (or
// JSON) document names a topology, a transport set, a workload, fault
// plans, sweep axes and an observability spec, and the package validates
// it, compiles it onto the existing pure cell-builders and exp/pool
// worker-pool engine, and executes it headlessly with per-cell
// checkpoints, resume, and a provenance-stamped artifact bundle.
//
// The package deliberately adds no third execution path: registry
// experiments listed in a campaign run through the same exp.RunRegistry
// coordinators as cmd/dcpbench, and declarative scenarios lower onto
// exp.Cell, so every sim a campaign runs carries a deterministic CellKey
// and the merged output is byte-identical at any -workers count.
package campaign

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dcpsim/internal/exp"
	"dcpsim/internal/faults"
	"dcpsim/internal/stats"
)

// Diag is one line-anchored diagnostic from parsing or semantic lint.
type Diag struct {
	Line int
	Msg  string
}

func (d Diag) String() string { return fmt.Sprintf("line %d: %s", d.Line, d.Msg) }

// Format selects the document syntax.
type Format int

const (
	FormatTOML Format = iota
	FormatJSON
)

// FormatForPath picks the format from a file extension (.json → JSON,
// anything else → TOML).
func FormatForPath(path string) Format {
	if strings.HasSuffix(path, ".json") {
		return FormatJSON
	}
	return FormatTOML
}

// Doc is one bound campaign document.
type Doc struct {
	Name  string
	Seed  int64
	Scale float64
	// Experiments lists registry experiment ids to run as-is.
	Experiments []string
	Observe     Observe
	Expect      Expect
	Scenarios   []*Scenario
}

// Observe is the campaign's observability spec.
type Observe struct {
	// Check attaches a flight-recorder invariant checker to every sim.
	Check bool
	// Stats accumulates per-unit RunSummary rows into the bundle CSV.
	Stats bool
	// TraceCells lists CellKeys ("wan/c003/s00") whose full event trace is
	// exported into the bundle; MetricsCells likewise for time-series CSV.
	TraceCells   []string
	MetricsCells []string
	// MetricsIntervalUs is the metrics sampling interval.
	MetricsIntervalUs float64
}

// Expect is the campaign's machine-checked acceptance spec; failures are
// recorded in the manifest and fail the CLI.
type Expect struct {
	// MaxViolations bounds total invariant violations (with observe.check).
	MaxViolations int64
	// RequireDone demands every scheduled flow completes.
	RequireDone bool
	// Cells are [[expect.cell]] predicates over rendered table cells.
	Cells []*CellPredicate
	// Stats are [[expect.stat]] predicates over per-unit RunSummary
	// metrics, including histogram percentiles.
	Stats []*StatPredicate
}

// scalarsDefault reports whether the scalar half of the spec is all
// defaults (the encoder then omits the [expect] header and emits only the
// predicate sections).
func (e Expect) scalarsDefault() bool { return e.MaxViolations == 0 && !e.RequireDone }

// CellPredicate is one [[expect.cell]] assertion: select table cells by
// (unit namespace, optional table-name substring, row key, column) and
// compare their numeric value. Row "" or "*" matches every row.
type CellPredicate struct {
	// Table names the unit namespace the cells live in: a scenario id (its
	// assembled result table) or a registry experiment id (its rendered
	// tables).
	Table string
	// Name, for experiment units only, narrows to tables whose Name
	// contains it (experiments render several tables).
	Name string
	// Row selects rows by their first-column value; empty or "*" selects
	// all rows.
	Row string
	// Column names the asserted column.
	Column string
	// Op is the comparator: lt, le, gt, ge, eq, or within.
	Op string
	// Value is the comparison operand; Tol is the half-width of the
	// "within" band (|cell − Value| ≤ Tol).
	Value float64
	Tol   float64

	line int
}

// StatPredicate is one [[expect.stat]] assertion over a unit's merged
// RunSummary: counters (flows, done, retrans_pkts, …) or histogram
// percentiles (fct_pNN_us, fct_max_us, slowdown_pNN).
type StatPredicate struct {
	// Unit names the unit namespace (experiment or scenario id) whose
	// summaries are asserted; every unit in the namespace is checked.
	Unit   string
	Metric string
	Op     string
	Value  float64
	Tol    float64

	line int
}

// cmpOps lists the comparators a predicate may use, in diagnostic order.
const cmpOps = "lt, le, gt, ge, eq, within"

func validOp(op string) bool {
	switch op {
	case "lt", "le", "gt", "ge", "eq", "within":
		return true
	}
	return false
}

// Axis is one sweep dimension of a scenario; the cell cross product
// enumerates axes in document order, last axis fastest.
type Axis struct {
	Name   string
	Values []float64
}

// Scenario is one declarative sweep: a topology × workload × transport
// set × axis cross product, with optional fault plans per cell.
type Scenario struct {
	ID       string
	Topology string // dumbbell | clos
	// Workload picks the traffic pattern: single-flow | incast | pairs |
	// collective (a ring all-reduce over every host, size_mb per member;
	// step-completion times land in the step_* metrics).
	Workload string

	// Dumbbell shape.
	HostsPerSwitch int
	CrossLinks     int
	// Clos shape.
	Leaves, Spines, HostsPerLeaf int

	Transports []string
	SizeMB     float64
	FanIn      int

	// Seeds lists explicit per-sim seeds; Repeat instead derives Repeat
	// seeds from the campaign seed. Unset → one sim at the campaign seed.
	Seeds  []int64
	Repeat int

	// HorizonMs caps simulated time (0 → run to completion).
	HorizonMs float64

	Axes   []Axis
	Faults []faults.Spec

	line int
}

const (
	defaultSeed       = 42
	defaultScale      = 0.25
	defaultMetricsIvl = 10 // µs
)

func defaultObserve() Observe { return Observe{Stats: true, MetricsIntervalUs: defaultMetricsIvl} }

// knownAxes maps axis name → validator for its values.
var knownAxes = map[string]func(v float64) error{
	"loss": func(v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("loss %g outside [0,1]", v)
		}
		return nil
	},
	"cross_delay_us": func(v float64) error {
		if v < 0 {
			return fmt.Errorf("cross_delay_us %g must be non-negative", v)
		}
		return nil
	},
	"size_mb": func(v float64) error {
		if v <= 0 {
			return fmt.Errorf("size_mb %g must be positive", v)
		}
		return nil
	},
	"fan_in": func(v float64) error {
		if v < 1 || v != float64(int(v)) {
			return fmt.Errorf("fan_in %g must be a positive integer", v)
		}
		return nil
	},
	"severity": func(v float64) error {
		if v <= 0 {
			return fmt.Errorf("severity %g must be positive", v)
		}
		return nil
	},
}

// KnownAxes lists the sweep axis names a scenario may use, sorted.
func KnownAxes() []string {
	out := make([]string, 0, len(knownAxes))
	for k := range knownAxes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Parse parses and binds a campaign document. Syntax errors and semantic
// problems both come back as line-anchored diagnostics; the Doc is nil
// only when the document failed to parse at all, and is safe to Compile
// only when diags is empty.
func Parse(data []byte, format Format) (*Doc, []Diag) {
	var root *node
	var err error
	if format == FormatJSON {
		root, err = parseJSON(data)
	} else {
		root, err = parseTOML(data)
	}
	if err != nil {
		if pe, ok := err.(*parseError); ok {
			return nil, []Diag{{Line: pe.line, Msg: pe.msg}}
		}
		return nil, []Diag{{Line: 1, Msg: err.Error()}}
	}
	b := &binder{}
	doc := b.bindDoc(root)
	b.sweepUnused(root)
	sort.SliceStable(b.diags, func(i, j int) bool { return b.diags[i].Line < b.diags[j].Line })
	return doc, b.diags
}

// binder turns the node tree into a Doc, accumulating diagnostics. Every
// consumed node is marked used; leftovers become "unknown key" diags.
type binder struct {
	diags []Diag
}

func (b *binder) diag(line int, format string, args ...any) {
	b.diags = append(b.diags, Diag{Line: line, Msg: fmt.Sprintf(format, args...)})
}

// val fetches a key of the wanted kind, marking it used. Numeric kinds
// are interchangeable where the caller accepts them via num().
func (b *binder) val(t *node, key string, want valueKind) *node {
	n := t.child(key)
	if n == nil {
		return nil
	}
	n.used = true
	if n.kind != want && !(want == kFloat && n.kind == kInt) {
		b.diag(n.line, "key %q must be a %v, got %v", key, want, n.kind)
		return nil
	}
	return n
}

func (b *binder) str(t *node, key, def string) string {
	if n := b.val(t, key, kString); n != nil {
		return n.str
	}
	return def
}

func (b *binder) i64(t *node, key string, def int64) int64 {
	if n := b.val(t, key, kInt); n != nil {
		return n.i
	}
	return def
}

func (b *binder) f64(t *node, key string, def float64) float64 {
	if n := b.val(t, key, kFloat); n != nil {
		return num(n)
	}
	return def
}

func (b *binder) flag(t *node, key string, def bool) bool {
	if n := b.val(t, key, kBool); n != nil {
		return n.b
	}
	return def
}

func num(n *node) float64 {
	if n.kind == kInt {
		return float64(n.i)
	}
	return n.f
}

func (b *binder) strList(t *node, key string) []string {
	n := b.val(t, key, kArray)
	if n == nil {
		return nil
	}
	var out []string
	for _, it := range n.arr {
		it.used = true
		if it.kind != kString {
			b.diag(it.line, "key %q must list strings, got %v", key, it.kind)
			continue
		}
		out = append(out, it.str)
	}
	return out
}

func (b *binder) i64List(t *node, key string) []int64 {
	n := b.val(t, key, kArray)
	if n == nil {
		return nil
	}
	var out []int64
	for _, it := range n.arr {
		it.used = true
		if it.kind != kInt {
			b.diag(it.line, "key %q must list integers, got %v", key, it.kind)
			continue
		}
		out = append(out, it.i)
	}
	return out
}

func (b *binder) table(t *node, key string) *node {
	n := t.child(key)
	if n == nil {
		return nil
	}
	n.used = true
	if n.kind != kTable {
		b.diag(n.line, "key %q must be a table ([%s] section)", key, key)
		return nil
	}
	return n
}

func (b *binder) tableList(t *node, key string) []*node {
	n := t.child(key)
	if n == nil {
		return nil
	}
	n.used = true
	if n.kind != kArray {
		b.diag(n.line, "key %q must be an array of tables ([[%s]] sections)", key, key)
		return nil
	}
	var out []*node
	for _, it := range n.arr {
		if it.kind != kTable {
			b.diag(it.line, "key %q must be an array of tables", key)
			continue
		}
		it.used = true
		out = append(out, it)
	}
	return out
}

func (b *binder) bindDoc(root *node) *Doc {
	doc := &Doc{
		Seed:    defaultSeed,
		Scale:   defaultScale,
		Observe: defaultObserve(),
	}
	doc.Name = b.str(root, "name", "")
	if doc.Name == "" {
		b.diag(root.line, "campaign needs a name")
	}
	doc.Seed = b.i64(root, "seed", doc.Seed)
	doc.Scale = b.f64(root, "scale", doc.Scale)
	if doc.Scale <= 0 {
		b.diag(root.line, "scale must be positive, got %g", doc.Scale)
	}

	ids := map[string]int{} // id → declaration line, for duplicate-cell-key lint
	if n := root.child("experiments"); n != nil {
		for _, id := range b.strList(root, "experiments") {
			doc.Experiments = append(doc.Experiments, id)
			if exp.ByID(id) == nil {
				b.diag(n.line, "unknown experiment %q (see dcpbench -list)", id)
				continue
			}
			if prev, dup := ids[id]; dup {
				b.diag(n.line, "duplicate cell key namespace %q (first declared line %d)", id, prev)
			}
			ids[id] = n.line
		}
	}

	if t := b.table(root, "observe"); t != nil {
		doc.Observe.Check = b.flag(t, "check", doc.Observe.Check)
		doc.Observe.Stats = b.flag(t, "stats", doc.Observe.Stats)
		doc.Observe.TraceCells = b.strList(t, "trace_cells")
		doc.Observe.MetricsCells = b.strList(t, "metrics_cells")
		doc.Observe.MetricsIntervalUs = b.f64(t, "metrics_interval_us", doc.Observe.MetricsIntervalUs)
		if doc.Observe.MetricsIntervalUs <= 0 {
			b.diag(t.line, "metrics_interval_us must be positive, got %g", doc.Observe.MetricsIntervalUs)
		}
	}
	if t := b.table(root, "expect"); t != nil {
		doc.Expect.MaxViolations = b.i64(t, "max_violations", 0)
		doc.Expect.RequireDone = b.flag(t, "require_done", false)
		if doc.Expect.MaxViolations < 0 {
			b.diag(t.line, "max_violations must be non-negative")
		}
		for _, ct := range b.tableList(t, "cell") {
			doc.Expect.Cells = append(doc.Expect.Cells, b.bindCellPredicate(ct))
		}
		for _, st := range b.tableList(t, "stat") {
			doc.Expect.Stats = append(doc.Expect.Stats, b.bindStatPredicate(st))
		}
	}

	for _, st := range b.tableList(root, "scenario") {
		sc := b.bindScenario(st)
		doc.Scenarios = append(doc.Scenarios, sc)
		if sc.ID == "" {
			continue
		}
		if prev, dup := ids[sc.ID]; dup {
			b.diag(st.line, "duplicate cell key namespace %q (first declared line %d)", sc.ID, prev)
		}
		ids[sc.ID] = st.line
	}

	// Observability cell keys must live inside a declared key namespace.
	for _, set := range [][]string{doc.Observe.TraceCells, doc.Observe.MetricsCells} {
		for _, key := range set {
			prefix := key
			if i := strings.IndexByte(key, '/'); i >= 0 {
				prefix = key[:i]
			}
			if _, ok := ids[prefix]; !ok {
				b.diag(b.listLine(root, "observe"), "observed cell %q names no declared experiment or scenario", key)
			}
		}
	}

	// Predicate selectors likewise: tables and units must be declared, and
	// a scenario's columns are known statically, so a typo'd column is a
	// lint error here rather than a matched-no-cells failure at run time.
	scByID := map[string]*Scenario{}
	for _, sc := range doc.Scenarios {
		scByID[sc.ID] = sc
	}
	for _, p := range doc.Expect.Cells {
		if p.Table == "" {
			continue // already diagnosed
		}
		if _, ok := ids[p.Table]; !ok {
			b.diag(p.line, "expect.cell table %q names no declared experiment or scenario", p.Table)
			continue
		}
		sc := scByID[p.Table]
		if sc == nil {
			continue // experiment tables: columns known only at run time
		}
		if p.Name != "" {
			b.diag(p.line, "expect.cell name only applies to experiment tables, %q is a scenario", p.Table)
		}
		if p.Column != "" {
			cols := scenarioColumns(sc)
			found := false
			for _, c := range cols {
				if c == p.Column {
					found = true
				}
			}
			if !found {
				b.diag(p.line, "expect.cell column %q not in scenario %q table (columns: %s)",
					p.Column, p.Table, strings.Join(cols, ", "))
			}
		}
	}
	for _, p := range doc.Expect.Stats {
		if p.Unit == "" {
			continue
		}
		if _, ok := ids[p.Unit]; !ok {
			b.diag(p.line, "expect.stat unit %q names no declared experiment or scenario", p.Unit)
		}
	}
	return doc
}

// bindCellPredicate binds one [[expect.cell]] table.
func (b *binder) bindCellPredicate(t *node) *CellPredicate {
	p := &CellPredicate{line: t.line}
	p.Table = b.str(t, "table", "")
	if p.Table == "" {
		b.diag(t.line, "expect.cell needs a table (experiment or scenario id)")
	}
	p.Name = b.str(t, "name", "")
	p.Row = b.str(t, "row", "")
	p.Column = b.str(t, "column", "")
	if p.Column == "" {
		b.diag(t.line, "expect.cell needs a column")
	}
	b.bindComparator(t, "expect.cell", &p.Op, &p.Value, &p.Tol)
	return p
}

// bindStatPredicate binds one [[expect.stat]] table.
func (b *binder) bindStatPredicate(t *node) *StatPredicate {
	p := &StatPredicate{line: t.line}
	p.Unit = b.str(t, "unit", "")
	if p.Unit == "" {
		b.diag(t.line, "expect.stat needs a unit (experiment or scenario id)")
	}
	p.Metric = b.str(t, "metric", "")
	if p.Metric == "" {
		b.diag(t.line, "expect.stat needs a metric")
	} else if _, ok := (&stats.RunSummary{}).Metric(p.Metric); !ok {
		b.diag(b.listLine(t, "metric"), "unknown stat metric %q (counters: %s; percentiles: fct_pNN_us, fct_max_us, step_pNN_us, step_max_us, slowdown_pNN)",
			p.Metric, strings.Join(stats.CounterMetrics(), ", "))
	}
	b.bindComparator(t, "expect.stat", &p.Op, &p.Value, &p.Tol)
	return p
}

// bindComparator binds the shared op/value/tol triple of a predicate,
// diagnosing malformed comparators and negative thresholds.
func (b *binder) bindComparator(t *node, section string, op *string, value, tol *float64) {
	*op = b.str(t, "op", "")
	switch {
	case *op == "":
		b.diag(t.line, "%s needs an op (%s)", section, cmpOps)
	case !validOp(*op):
		b.diag(b.listLine(t, "op"), "%s: unknown comparator %q (%s)", section, *op, cmpOps)
	}
	if n := b.val(t, "value", kFloat); n != nil {
		*value = num(n)
	} else if t.child("value") == nil {
		b.diag(t.line, "%s needs a value", section)
	}
	if n := b.val(t, "tol", kFloat); n != nil {
		*tol = num(n)
		if *tol < 0 {
			b.diag(n.line, "%s: tol must be non-negative, got %g", section, *tol)
		}
		if *op != "within" && validOp(*op) {
			b.diag(n.line, "%s: tol only applies to the \"within\" comparator", section)
		}
	} else if *op == "within" && t.child("tol") == nil {
		b.diag(t.line, "%s: comparator \"within\" needs a tol", section)
	}
}

// listLine anchors a diagnostic at a section's declaration line.
func (b *binder) listLine(root *node, key string) int {
	if n := root.child(key); n != nil {
		return n.line
	}
	return root.line
}

func (b *binder) bindScenario(t *node) *Scenario {
	sc := &Scenario{
		Topology:       "dumbbell",
		Workload:       "single-flow",
		HostsPerSwitch: 1,
		CrossLinks:     1,
		Leaves:         2,
		Spines:         1,
		HostsPerLeaf:   1,
		SizeMB:         1,
		line:           t.line,
	}
	sc.ID = b.str(t, "id", "")
	switch {
	case sc.ID == "":
		b.diag(t.line, "scenario needs an id")
	case !validBareKey(sc.ID):
		b.diag(t.line, "scenario id %q must use letters, digits, _, - only", sc.ID)
	}
	sc.Topology = b.str(t, "topology", sc.Topology)
	if sc.Topology != "dumbbell" && sc.Topology != "clos" {
		b.diag(t.line, "unknown topology %q (dumbbell, clos)", sc.Topology)
	}
	sc.Workload = b.str(t, "workload", sc.Workload)
	switch sc.Workload {
	case "single-flow", "incast", "pairs", "collective":
	default:
		b.diag(t.line, "unknown workload %q (single-flow, incast, pairs, collective)", sc.Workload)
	}
	sc.HostsPerSwitch = int(b.i64(t, "hosts_per_switch", int64(sc.HostsPerSwitch)))
	sc.CrossLinks = int(b.i64(t, "cross_links", int64(sc.CrossLinks)))
	sc.Leaves = int(b.i64(t, "leaves", int64(sc.Leaves)))
	sc.Spines = int(b.i64(t, "spines", int64(sc.Spines)))
	sc.HostsPerLeaf = int(b.i64(t, "hosts_per_leaf", int64(sc.HostsPerLeaf)))
	if sc.HostsPerSwitch < 1 || sc.CrossLinks < 1 || sc.Leaves < 1 || sc.Spines < 1 || sc.HostsPerLeaf < 1 {
		b.diag(t.line, "topology dimensions must be at least 1")
	}

	sc.Transports = b.strList(t, "transports")
	if len(sc.Transports) == 0 {
		b.diag(t.line, "scenario needs at least one transport (known: %s)", strings.Join(exp.SchemeNames(), ", "))
	}
	seen := map[string]bool{}
	for _, tr := range sc.Transports {
		if _, ok := exp.SchemeByName(tr); !ok {
			b.diag(b.listLine(t, "transports"), "unknown transport %q (known: %s)", tr, strings.Join(exp.SchemeNames(), ", "))
		}
		if seen[tr] {
			b.diag(b.listLine(t, "transports"), "transport %q listed twice", tr)
		}
		seen[tr] = true
	}

	sc.SizeMB = b.f64(t, "size_mb", sc.SizeMB)
	if sc.SizeMB <= 0 {
		b.diag(t.line, "size_mb must be positive, got %g", sc.SizeMB)
	}
	sc.FanIn = int(b.i64(t, "fan_in", 0))
	sc.Seeds = b.i64List(t, "seeds")
	sc.Repeat = int(b.i64(t, "repeat", 0))
	if sc.Repeat > 0 && len(sc.Seeds) > 0 && sc.Repeat != len(sc.Seeds) {
		b.diag(t.line, "inconsistent seed counts: repeat = %d but %d seeds listed", sc.Repeat, len(sc.Seeds))
	}
	sc.HorizonMs = b.f64(t, "horizon_ms", 0)
	if sc.HorizonMs < 0 {
		b.diag(t.line, "horizon_ms must be non-negative")
	}

	if sw := b.table(t, "sweep"); sw != nil {
		for _, name := range sw.keys {
			vn := sw.child(name)
			vn.used = true
			check, known := knownAxes[name]
			if !known {
				b.diag(vn.line, "unknown sweep axis %q (known: %s)", name, strings.Join(KnownAxes(), ", "))
				continue
			}
			if vn.kind != kArray {
				b.diag(vn.line, "sweep axis %q must be an array of numbers", name)
				continue
			}
			var vals []float64
			for _, it := range vn.arr {
				it.used = true
				if it.kind != kInt && it.kind != kFloat {
					b.diag(it.line, "sweep axis %q must list numbers, got %v", name, it.kind)
					continue
				}
				v := num(it)
				if err := check(v); err != nil {
					b.diag(vn.line, "sweep axis %q: %v", name, err)
				}
				vals = append(vals, v)
			}
			if len(vals) == 0 {
				b.diag(vn.line, "sweep axis %q has no values", name)
				continue
			}
			sc.Axes = append(sc.Axes, Axis{Name: name, Values: vals})
		}
	}

	hasAxis := func(name string) bool {
		for _, a := range sc.Axes {
			if a.Name == name {
				return true
			}
		}
		return false
	}
	if sc.Workload == "incast" && sc.FanIn < 1 && !hasAxis("fan_in") {
		b.diag(t.line, "incast workload needs fan_in (field or sweep axis)")
	}
	if sc.Workload != "incast" && (sc.FanIn > 0 || hasAxis("fan_in")) {
		b.diag(t.line, "fan_in only applies to the incast workload")
	}
	if maxFan := sc.maxFanIn(); maxFan >= sc.hostCount() {
		b.diag(t.line, "fan_in %d needs %d hosts, topology has %d", maxFan, maxFan+1, sc.hostCount())
	}

	for _, ft := range b.tableList(t, "fault") {
		spec := faults.Spec{
			Kind:     b.str(ft, "kind", ""),
			Link:     b.str(ft, "link", ""),
			Switch:   int(b.i64(ft, "switch", 0)),
			AtUs:     b.f64(ft, "at_us", 0),
			DurUs:    b.f64(ft, "dur_us", 0),
			Rate:     b.f64(ft, "rate", 0),
			Count:    int(b.i64(ft, "count", 0)),
			Steps:    int(b.i64(ft, "steps", 0)),
			PeriodUs: b.f64(ft, "period_us", 0),
			Duty:     b.f64(ft, "duty", 0),
			MinPkts:  int(b.i64(ft, "min_pkts", 0)),
			MaxPkts:  int(b.i64(ft, "max_pkts", 0)),
		}
		if err := spec.Validate(); err != nil {
			b.diag(ft.line, "%v", err)
		}
		sc.Faults = append(sc.Faults, spec)
	}
	if hasAxis("severity") && len(sc.Faults) == 0 {
		b.diag(t.line, "severity axis needs at least one [[scenario.fault]]")
	}
	return sc
}

// hostCount returns the number of hosts the scenario's topology builds.
func (sc *Scenario) hostCount() int {
	if sc.Topology == "clos" {
		return sc.Leaves * sc.HostsPerLeaf
	}
	return 2 * sc.HostsPerSwitch
}

// maxFanIn returns the largest fan-in any cell of the scenario uses.
func (sc *Scenario) maxFanIn() int {
	max := sc.FanIn
	for _, a := range sc.Axes {
		if a.Name != "fan_in" {
			continue
		}
		for _, v := range a.Values {
			if int(v) > max {
				max = int(v)
			}
		}
	}
	return max
}

// sweepUnused reports every key the binder never consumed.
func (b *binder) sweepUnused(t *node) {
	for _, k := range t.keys {
		c := t.tab[k]
		if !c.used {
			b.diag(c.line, "unknown key %q", k)
			continue
		}
		switch c.kind {
		case kTable:
			b.sweepUnused(c)
		case kArray:
			for _, e := range c.arr {
				if e.kind == kTable && e.used {
					b.sweepUnused(e)
				}
			}
		}
	}
}

// EncodeTOML renders doc in the canonical form: Parse(EncodeTOML(d))
// rebinds to a Doc equal to d (the round-trip law the golden tests pin).
// Defaults are omitted, so hand-written and re-encoded documents diff
// cleanly.
func EncodeTOML(doc *Doc) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "name = %q\n", doc.Name)
	fmt.Fprintf(&b, "seed = %d\n", doc.Seed)
	fmt.Fprintf(&b, "scale = %s\n", ftoa(doc.Scale))
	if len(doc.Experiments) > 0 {
		fmt.Fprintf(&b, "experiments = %s\n", quoteList(doc.Experiments))
	}
	if o, d := doc.Observe, defaultObserve(); o.Check != d.Check || o.Stats != d.Stats ||
		o.MetricsIntervalUs != d.MetricsIntervalUs || len(o.TraceCells) > 0 || len(o.MetricsCells) > 0 {
		b.WriteString("\n[observe]\n")
		fmt.Fprintf(&b, "check = %v\n", o.Check)
		fmt.Fprintf(&b, "stats = %v\n", o.Stats)
		fmt.Fprintf(&b, "metrics_interval_us = %s\n", ftoa(o.MetricsIntervalUs))
		if len(o.TraceCells) > 0 {
			fmt.Fprintf(&b, "trace_cells = %s\n", quoteList(o.TraceCells))
		}
		if len(o.MetricsCells) > 0 {
			fmt.Fprintf(&b, "metrics_cells = %s\n", quoteList(o.MetricsCells))
		}
	}
	if !doc.Expect.scalarsDefault() {
		b.WriteString("\n[expect]\n")
		fmt.Fprintf(&b, "max_violations = %d\n", doc.Expect.MaxViolations)
		fmt.Fprintf(&b, "require_done = %v\n", doc.Expect.RequireDone)
	}
	for _, p := range doc.Expect.Cells {
		b.WriteString("\n[[expect.cell]]\n")
		fmt.Fprintf(&b, "table = %q\n", p.Table)
		if p.Name != "" {
			fmt.Fprintf(&b, "name = %q\n", p.Name)
		}
		if p.Row != "" {
			fmt.Fprintf(&b, "row = %q\n", p.Row)
		}
		fmt.Fprintf(&b, "column = %q\n", p.Column)
		fmt.Fprintf(&b, "op = %q\n", p.Op)
		fmt.Fprintf(&b, "value = %s\n", ftoa(p.Value))
		if p.Op == "within" {
			fmt.Fprintf(&b, "tol = %s\n", ftoa(p.Tol))
		}
	}
	for _, p := range doc.Expect.Stats {
		b.WriteString("\n[[expect.stat]]\n")
		fmt.Fprintf(&b, "unit = %q\n", p.Unit)
		fmt.Fprintf(&b, "metric = %q\n", p.Metric)
		fmt.Fprintf(&b, "op = %q\n", p.Op)
		fmt.Fprintf(&b, "value = %s\n", ftoa(p.Value))
		if p.Op == "within" {
			fmt.Fprintf(&b, "tol = %s\n", ftoa(p.Tol))
		}
	}
	for _, sc := range doc.Scenarios {
		b.WriteString("\n[[scenario]]\n")
		fmt.Fprintf(&b, "id = %q\n", sc.ID)
		fmt.Fprintf(&b, "topology = %q\n", sc.Topology)
		fmt.Fprintf(&b, "workload = %q\n", sc.Workload)
		if sc.Topology == "clos" {
			fmt.Fprintf(&b, "leaves = %d\n", sc.Leaves)
			fmt.Fprintf(&b, "spines = %d\n", sc.Spines)
			fmt.Fprintf(&b, "hosts_per_leaf = %d\n", sc.HostsPerLeaf)
		} else {
			fmt.Fprintf(&b, "hosts_per_switch = %d\n", sc.HostsPerSwitch)
			fmt.Fprintf(&b, "cross_links = %d\n", sc.CrossLinks)
		}
		fmt.Fprintf(&b, "transports = %s\n", quoteList(sc.Transports))
		fmt.Fprintf(&b, "size_mb = %s\n", ftoa(sc.SizeMB))
		if sc.FanIn > 0 {
			fmt.Fprintf(&b, "fan_in = %d\n", sc.FanIn)
		}
		if len(sc.Seeds) > 0 {
			vals := make([]string, len(sc.Seeds))
			for i, s := range sc.Seeds {
				vals[i] = strconv.FormatInt(s, 10)
			}
			fmt.Fprintf(&b, "seeds = [%s]\n", strings.Join(vals, ", "))
		}
		if sc.Repeat > 0 {
			fmt.Fprintf(&b, "repeat = %d\n", sc.Repeat)
		}
		if sc.HorizonMs > 0 {
			fmt.Fprintf(&b, "horizon_ms = %s\n", ftoa(sc.HorizonMs))
		}
		if len(sc.Axes) > 0 {
			b.WriteString("\n[scenario.sweep]\n")
			for _, a := range sc.Axes {
				vals := make([]string, len(a.Values))
				for i, v := range a.Values {
					vals[i] = ftoa(v)
				}
				fmt.Fprintf(&b, "%s = [%s]\n", a.Name, strings.Join(vals, ", "))
			}
		}
		for _, f := range sc.Faults {
			b.WriteString("\n[[scenario.fault]]\n")
			fmt.Fprintf(&b, "kind = %q\n", f.Kind)
			if f.Link != "" {
				fmt.Fprintf(&b, "link = %q\n", f.Link)
			}
			if f.Switch != 0 {
				fmt.Fprintf(&b, "switch = %d\n", f.Switch)
			}
			writeF := func(key string, v float64) {
				if v != 0 {
					fmt.Fprintf(&b, "%s = %s\n", key, ftoa(v))
				}
			}
			writeI := func(key string, v int) {
				if v != 0 {
					fmt.Fprintf(&b, "%s = %d\n", key, v)
				}
			}
			writeF("at_us", f.AtUs)
			writeF("dur_us", f.DurUs)
			writeF("rate", f.Rate)
			writeI("count", f.Count)
			writeI("steps", f.Steps)
			writeF("period_us", f.PeriodUs)
			writeF("duty", f.Duty)
			writeI("min_pkts", f.MinPkts)
			writeI("max_pkts", f.MaxPkts)
		}
	}
	return []byte(b.String())
}

func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func quoteList(vals []string) string {
	q := make([]string, len(vals))
	for i, v := range vals {
		q[i] = strconv.Quote(v)
	}
	return "[" + strings.Join(q, ", ") + "]"
}
