package campaign

// This file is the document front end of the campaign DSL: a minimal,
// dependency-free TOML-subset parser (the prifi simul.sh idiom — see
// SNIPPETS.md) plus a JSON loader, both producing the same line-anchored
// node tree the schema binder in campaign.go consumes. Line numbers are
// carried on every node so `dcpcampaign -validate` can anchor semantic
// diagnostics ("line 14: unknown transport") to the document.
//
// Supported TOML: comments, [table] and [[array-of-table]] headers with
// dotted paths, bare keys, basic "..." strings with escapes, integers
// (with _ separators), floats, booleans, and (possibly multi-line)
// arrays. Inline tables are rejected with a pointer at the [[section]]
// form. This subset covers the campaign schema exactly; anything outside
// it is a parse error with a line number, never a silent skip.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

type valueKind int

const (
	kTable valueKind = iota
	kArray
	kString
	kInt
	kFloat
	kBool
)

func (k valueKind) String() string {
	switch k {
	case kTable:
		return "table"
	case kArray:
		return "array"
	case kString:
		return "string"
	case kInt:
		return "integer"
	case kFloat:
		return "float"
	case kBool:
		return "boolean"
	}
	return "value"
}

// node is one parsed value. Tables keep their keys in document order —
// the campaign compiler enumerates sweep axes in the order the document
// states them, so order is semantic, not cosmetic.
type node struct {
	kind valueKind
	line int
	used bool // consumed by the binder; unused keys become diagnostics

	keys []string // kTable: insertion order
	tab  map[string]*node
	arr  []*node // kArray

	str string
	i   int64
	f   float64
	b   bool
}

func newTable(line int) *node {
	return &node{kind: kTable, line: line, tab: map[string]*node{}}
}

func (n *node) child(key string) *node { return n.tab[key] }

func (n *node) put(key string, v *node) {
	if _, ok := n.tab[key]; !ok {
		n.keys = append(n.keys, key)
	}
	n.tab[key] = v
}

// parseError is a syntax error with its document line.
type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func perrf(line int, format string, args ...any) error {
	return &parseError{line: line, msg: fmt.Sprintf(format, args...)}
}

// stripComment removes a trailing # comment, respecting quoted strings.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

// bracketDepth returns the net [ ] nesting of s outside strings, used to
// join multi-line arrays.
func bracketDepth(s string) int {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		}
	}
	return depth
}

func validBareKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// parseTOML parses the campaign TOML subset into a node tree.
func parseTOML(data []byte) (*node, error) {
	root := newTable(1)
	cur := root
	lines := strings.Split(string(data), "\n")
	for ln := 0; ln < len(lines); ln++ {
		lineNo := ln + 1
		s := strings.TrimSpace(stripComment(lines[ln]))
		if s == "" {
			continue
		}
		switch {
		case strings.HasPrefix(s, "[["):
			if !strings.HasSuffix(s, "]]") {
				return nil, perrf(lineNo, "malformed [[section]] header")
			}
			path, err := splitPath(s[2:len(s)-2], lineNo)
			if err != nil {
				return nil, err
			}
			parent, err := navigate(root, path[:len(path)-1], lineNo)
			if err != nil {
				return nil, err
			}
			leaf := path[len(path)-1]
			arr := parent.child(leaf)
			if arr == nil {
				arr = &node{kind: kArray, line: lineNo}
				parent.put(leaf, arr)
			} else if arr.kind != kArray {
				return nil, perrf(lineNo, "key %q already defined as a %v", leaf, arr.kind)
			}
			t := newTable(lineNo)
			arr.arr = append(arr.arr, t)
			cur = t
		case strings.HasPrefix(s, "["):
			if !strings.HasSuffix(s, "]") {
				return nil, perrf(lineNo, "malformed [section] header")
			}
			path, err := splitPath(s[1:len(s)-1], lineNo)
			if err != nil {
				return nil, err
			}
			parent, err := navigate(root, path[:len(path)-1], lineNo)
			if err != nil {
				return nil, err
			}
			leaf := path[len(path)-1]
			t := parent.child(leaf)
			if t == nil {
				t = newTable(lineNo)
				parent.put(leaf, t)
			} else if t.kind != kTable {
				return nil, perrf(lineNo, "key %q already defined as a %v", leaf, t.kind)
			}
			cur = t
		default:
			eq := indexTopLevel(s, '=')
			if eq < 0 {
				return nil, perrf(lineNo, "expected key = value")
			}
			key := strings.TrimSpace(s[:eq])
			if !validBareKey(key) {
				return nil, perrf(lineNo, "invalid key %q (bare keys only: letters, digits, _, -)", key)
			}
			val := strings.TrimSpace(s[eq+1:])
			// Join multi-line arrays until brackets balance.
			startLine := lineNo
			for bracketDepth(val) > 0 && ln+1 < len(lines) {
				ln++
				val += " " + strings.TrimSpace(stripComment(lines[ln]))
			}
			if bracketDepth(val) != 0 {
				return nil, perrf(startLine, "unbalanced brackets in value for %q", key)
			}
			if cur.child(key) != nil {
				return nil, perrf(startLine, "duplicate key %q", key)
			}
			v, err := parseValue(val, startLine)
			if err != nil {
				return nil, err
			}
			cur.put(key, v)
		}
	}
	return root, nil
}

// splitPath splits a dotted section path into bare-key segments.
func splitPath(s string, line int) ([]string, error) {
	parts := strings.Split(s, ".")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
		if !validBareKey(parts[i]) {
			return nil, perrf(line, "invalid section path segment %q", p)
		}
	}
	return parts, nil
}

// navigate walks (creating as needed) intermediate tables of a dotted
// header path; a segment naming an array of tables resolves to its last
// element, the standard TOML [[x]] then [x.y] idiom.
func navigate(root *node, path []string, line int) (*node, error) {
	cur := root
	for _, seg := range path {
		next := cur.child(seg)
		if next == nil {
			next = newTable(line)
			cur.put(seg, next)
		}
		if next.kind == kArray {
			if len(next.arr) == 0 || next.arr[len(next.arr)-1].kind != kTable {
				return nil, perrf(line, "cannot extend array %q with a sub-table", seg)
			}
			next = next.arr[len(next.arr)-1]
		}
		if next.kind != kTable {
			return nil, perrf(line, "key %q is a %v, not a table", seg, next.kind)
		}
		cur = next
	}
	return cur, nil
}

// indexTopLevel finds the first c outside quoted strings.
func indexTopLevel(s string, c byte) int {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		default:
			if s[i] == c && !inStr {
				return i
			}
		}
	}
	return -1
}

// parseValue parses one TOML value (string, bool, array, number).
func parseValue(s string, line int) (*node, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, perrf(line, "empty value")
	}
	switch {
	case s[0] == '"':
		str, rest, err := parseString(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, perrf(line, "trailing characters after string: %q", rest)
		}
		return &node{kind: kString, line: line, str: str}, nil
	case s == "true" || s == "false":
		return &node{kind: kBool, line: line, b: s == "true"}, nil
	case s[0] == '[':
		if s[len(s)-1] != ']' {
			return nil, perrf(line, "malformed array")
		}
		items, err := splitItems(s[1:len(s)-1], line)
		if err != nil {
			return nil, err
		}
		arr := &node{kind: kArray, line: line}
		for _, it := range items {
			v, err := parseValue(it, line)
			if err != nil {
				return nil, err
			}
			arr.arr = append(arr.arr, v)
		}
		return arr, nil
	case s[0] == '{':
		return nil, perrf(line, "inline tables are not supported; use a [section] or [[section]]")
	default:
		num := strings.ReplaceAll(s, "_", "")
		if i, err := strconv.ParseInt(num, 10, 64); err == nil {
			return &node{kind: kInt, line: line, i: i}, nil
		}
		if f, err := strconv.ParseFloat(num, 64); err == nil {
			return &node{kind: kFloat, line: line, f: f}, nil
		}
		return nil, perrf(line, "cannot parse value %q", s)
	}
}

// parseString consumes a leading basic string and returns it plus the
// remainder of the input.
func parseString(s string, line int) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", perrf(line, "dangling escape in string")
			}
			i++
			switch s[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", "", perrf(line, "unsupported escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", perrf(line, "unterminated string")
}

// splitItems splits an array body on top-level commas.
func splitItems(s string, line int) ([]string, error) {
	var items []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				items = append(items, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 || inStr {
		return nil, perrf(line, "malformed array")
	}
	items = append(items, s[start:])
	var out []string
	for _, it := range items {
		if strings.TrimSpace(it) != "" {
			out = append(out, it)
		}
	}
	return out, nil
}

// parseJSON parses a JSON campaign document into the same node tree,
// computing line anchors from the decoder's byte offsets so JSON
// documents get the same line-anchored diagnostics TOML ones do.
func parseJSON(data []byte) (*node, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	lineAt := func() int {
		off := dec.InputOffset()
		if off > int64(len(data)) {
			off = int64(len(data))
		}
		return 1 + bytes.Count(data[:off], []byte{'\n'})
	}
	var walkValue func(tok json.Token) (*node, error)
	walkObject := func() (*node, error) {
		t := newTable(lineAt())
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return nil, perrf(lineAt(), "bad JSON: %v", err)
			}
			key, _ := keyTok.(string)
			valTok, err := dec.Token()
			if err != nil {
				return nil, perrf(lineAt(), "bad JSON: %v", err)
			}
			v, err := walkValue(valTok)
			if err != nil {
				return nil, err
			}
			t.put(key, v)
		}
		if _, err := dec.Token(); err != nil { // consume '}'
			return nil, perrf(lineAt(), "bad JSON: %v", err)
		}
		return t, nil
	}
	walkValue = func(tok json.Token) (*node, error) {
		line := lineAt()
		switch v := tok.(type) {
		case json.Delim:
			switch v {
			case '{':
				return walkObject()
			case '[':
				arr := &node{kind: kArray, line: line}
				for dec.More() {
					t, err := dec.Token()
					if err != nil {
						return nil, perrf(lineAt(), "bad JSON: %v", err)
					}
					item, err := walkValue(t)
					if err != nil {
						return nil, err
					}
					arr.arr = append(arr.arr, item)
				}
				if _, err := dec.Token(); err != nil { // consume ']'
					return nil, perrf(lineAt(), "bad JSON: %v", err)
				}
				return arr, nil
			}
			return nil, perrf(line, "unexpected delimiter %v", v)
		case string:
			return &node{kind: kString, line: line, str: v}, nil
		case bool:
			return &node{kind: kBool, line: line, b: v}, nil
		case json.Number:
			if i, err := v.Int64(); err == nil && !strings.ContainsAny(v.String(), ".eE") {
				return &node{kind: kInt, line: line, i: i}, nil
			}
			f, err := v.Float64()
			if err != nil {
				return nil, perrf(line, "cannot parse number %q", v.String())
			}
			return &node{kind: kFloat, line: line, f: f}, nil
		case nil:
			return nil, perrf(line, "null is not a campaign value")
		}
		return nil, perrf(line, "unsupported JSON token %v", tok)
	}
	tok, err := dec.Token()
	if err != nil {
		if err == io.EOF {
			return nil, perrf(1, "empty document")
		}
		return nil, perrf(lineAt(), "bad JSON: %v", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, perrf(lineAt(), "campaign JSON must be an object")
	}
	root, err := walkObject()
	if err != nil {
		return nil, err
	}
	if tok, err := dec.Token(); err != io.EOF {
		return nil, perrf(lineAt(), "trailing content after document: %v", tok)
	}
	return root, nil
}
