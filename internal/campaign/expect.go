package campaign

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file evaluates the [expect] section against a run's merged unit
// results. Every failure string names the predicate's document line and
// the offending unit, so a red campaign points at both the expectation
// that fired and the work item that violated it. Failures are emitted in
// a deterministic order: the violation bound, then require_done in unit
// order, then cell and stat predicates in document order (each walking
// units in unit order), so the manifest's expect_failures list is
// byte-stable across worker counts and resumes.

// evalExpect checks the doc's [expect] section against the merged
// results; each failure is one human-readable string.
func evalExpect(c *Campaign, results []*UnitResult) []string {
	doc := c.Doc
	var fails []string
	if doc.Observe.Check {
		var viol int64
		var parts []string
		for _, r := range results {
			viol += r.Violations
			if r.Violations > 0 {
				parts = append(parts, fmt.Sprintf("%s: %d", r.ID, r.Violations))
			}
		}
		if viol > doc.Expect.MaxViolations {
			msg := fmt.Sprintf("invariant violations %d exceed max_violations %d", viol, doc.Expect.MaxViolations)
			if len(parts) > 0 {
				msg += " (" + strings.Join(parts, ", ") + ")"
			}
			fails = append(fails, msg)
		}
	}
	if doc.Expect.RequireDone {
		for _, r := range results {
			if s := r.Summary; s != nil && s.Done < s.Flows {
				fails = append(fails, fmt.Sprintf("unit %s left %d of %d flows unfinished", r.ID, s.Flows-s.Done, s.Flows))
			}
		}
	}
	for _, p := range doc.Expect.Cells {
		fails = append(fails, p.eval(c, results)...)
	}
	for _, p := range doc.Expect.Stats {
		fails = append(fails, p.eval(c, results)...)
	}
	return fails
}

// holds applies a predicate comparator to an actual value.
func holds(op string, actual, value, tol float64) bool {
	switch op {
	case "lt":
		return actual < value
	case "le":
		return actual <= value
	case "gt":
		return actual > value
	case "ge":
		return actual >= value
	case "eq":
		return actual == value
	case "within":
		return math.Abs(actual-value) <= tol
	}
	return false
}

// opString renders a comparator for failure messages.
func opString(op string, value, tol float64) string {
	if op == "within" {
		return fmt.Sprintf("within %s ±%s", ftoa(value), ftoa(tol))
	}
	return fmt.Sprintf("%s %s", op, ftoa(value))
}

// eval checks one cell predicate against every matching cell. A selector
// that matches nothing is itself a failure — a typo'd row key must not
// pass silently.
func (p *CellPredicate) eval(c *Campaign, results []*UnitResult) []string {
	var fails []string
	matched := 0
	for i, u := range c.Units {
		if u.ExpID != p.Table || results[i] == nil {
			continue
		}
		r := results[i]
		switch u.Kind {
		case UnitCell:
			cols := scenarioColumns(u.sc)
			ci := columnIndex(cols, p.Column)
			if ci < 0 || ci >= len(r.Row) {
				continue
			}
			if !p.rowMatches(r.Row[0]) {
				continue
			}
			matched++
			ref := fmt.Sprintf("%s[%s].%s", p.Table, r.Row[0], p.Column)
			fails = append(fails, p.checkCell(u.ID, ref, r.Row[ci])...)
		case UnitExperiment:
			for _, tbl := range r.Tables {
				if p.Name != "" && !strings.Contains(tbl.Name, p.Name) {
					continue
				}
				ci := columnIndex(tbl.Columns, p.Column)
				if ci < 0 {
					continue
				}
				for _, row := range tbl.Rows {
					if ci >= len(row) || len(row) == 0 || !p.rowMatches(row[0]) {
						continue
					}
					matched++
					ref := fmt.Sprintf("%s[%s].%s", p.Table, row[0], p.Column)
					fails = append(fails, p.checkCell(u.ID, ref, row[ci])...)
				}
			}
		}
	}
	if matched == 0 {
		fails = append(fails, fmt.Sprintf("expect.cell (line %d): selector table=%q row=%q column=%q matched no cells",
			p.line, p.Table, p.Row, p.Column))
	}
	return fails
}

func (p *CellPredicate) rowMatches(key string) bool {
	return p.Row == "" || p.Row == "*" || p.Row == key
}

// checkCell parses one rendered cell and applies the comparator,
// attributing any failure to the owning unit.
func (p *CellPredicate) checkCell(unitID, ref, raw string) []string {
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return []string{fmt.Sprintf("expect.cell (line %d): unit %s cell %s = %q is not numeric",
			p.line, unitID, ref, raw)}
	}
	if !holds(p.Op, v, p.Value, p.Tol) {
		return []string{fmt.Sprintf("expect.cell (line %d): unit %s cell %s = %s violates %s",
			p.line, unitID, ref, raw, opString(p.Op, p.Value, p.Tol))}
	}
	return nil
}

func columnIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// eval checks one stat predicate against every unit in its namespace.
func (p *StatPredicate) eval(c *Campaign, results []*UnitResult) []string {
	var fails []string
	matched := 0
	for i, u := range c.Units {
		if u.ExpID != p.Unit || results[i] == nil || results[i].Summary == nil {
			continue
		}
		matched++
		v, ok := results[i].Summary.Metric(p.Metric)
		if !ok {
			// Unreachable after lint; kept so a stale compiled campaign
			// fails loudly instead of passing vacuously.
			fails = append(fails, fmt.Sprintf("expect.stat (line %d): unknown metric %q", p.line, p.Metric))
			continue
		}
		if !holds(p.Op, v, p.Value, p.Tol) {
			fails = append(fails, fmt.Sprintf("expect.stat (line %d): unit %s %s = %s violates %s",
				p.line, u.ID, p.Metric, ftoa(v), opString(p.Op, p.Value, p.Tol)))
		}
	}
	if matched == 0 {
		fails = append(fails, fmt.Sprintf("expect.stat (line %d): unit %q matched no unit with statistics (observe.stats off?)",
			p.line, p.Unit))
	}
	return fails
}
