package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validDoc is a minimal document that passes lint; the diagnostic cases
// below are mutations of it.
const validDoc = `
name = "t"
seed = 11
scale = 0.02

[[scenario]]
id = "s"
transports = ["dcp"]
`

func parseDiags(t *testing.T, src string) []Diag {
	t.Helper()
	_, diags := Parse([]byte(src), FormatTOML)
	return diags
}

func TestLintClean(t *testing.T) {
	if diags := parseDiags(t, validDoc); len(diags) != 0 {
		t.Fatalf("valid doc produced diagnostics: %v", diags)
	}
}

// TestLintDiagnostics covers one case per semantic lint class. Each case
// must produce a diagnostic containing want; line > 0 additionally pins
// the anchor.
func TestLintDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
		line int
	}{
		{"missing-name", `scale = 0.5`, "campaign needs a name", 0},
		{"bad-scale", "name = \"t\"\nscale = -1.0", "scale must be positive", 0},
		{"unknown-experiment", "name = \"t\"\nexperiments = [\"nope\"]", `unknown experiment "nope"`, 2},
		{"duplicate-experiment", "name = \"t\"\nexperiments = [\"fig10\", \"fig10\"]",
			`duplicate cell key namespace "fig10"`, 2},
		{"scenario-shadows-experiment",
			"name = \"t\"\nexperiments = [\"fig10\"]\n\n[[scenario]]\nid = \"fig10\"\ntransports = [\"dcp\"]",
			`duplicate cell key namespace "fig10"`, 4},
		{"scenario-missing-id", "name = \"t\"\n\n[[scenario]]\ntransports = [\"dcp\"]",
			"scenario needs an id", 3},
		{"scenario-bad-id", "name = \"t\"\n\n[[scenario]]\nid = \"a/b\"\ntransports = [\"dcp\"]",
			"must use letters, digits", 0},
		{"unknown-topology", validDoc + "topology = \"ring\"\n", `unknown topology "ring"`, 0},
		{"unknown-workload", validDoc + "workload = \"storm\"\n", `unknown workload "storm"`, 0},
		{"unknown-transport", "name = \"t\"\n\n[[scenario]]\nid = \"s\"\ntransports = [\"quic\"]",
			`unknown transport "quic"`, 5},
		{"transport-twice", "name = \"t\"\n\n[[scenario]]\nid = \"s\"\ntransports = [\"dcp\", \"dcp\"]",
			`transport "dcp" listed twice`, 0},
		{"no-transports", "name = \"t\"\n\n[[scenario]]\nid = \"s\"",
			"needs at least one transport", 0},
		{"unknown-axis", validDoc + "\n[scenario.sweep]\nmtu = [1500]\n", `unknown sweep axis "mtu"`, 0},
		{"empty-axis", validDoc + "\n[scenario.sweep]\nloss = []\n", `sweep axis "loss" has no values`, 0},
		{"axis-out-of-range", validDoc + "\n[scenario.sweep]\nloss = [1.5]\n", "outside [0,1]", 0},
		{"inconsistent-seeds", validDoc + "seeds = [1, 2]\nrepeat = 3\n",
			"inconsistent seed counts: repeat = 3 but 2 seeds listed", 0},
		{"incast-needs-fanin", validDoc + "workload = \"incast\"\n",
			"incast workload needs fan_in", 0},
		{"fanin-wrong-workload", validDoc + "fan_in = 2\nhosts_per_switch = 4\n",
			"fan_in only applies to the incast workload", 0},
		{"fanin-too-big", validDoc + "workload = \"incast\"\nfan_in = 2\n",
			"fan_in 2 needs 3 hosts, topology has 2", 0},
		{"severity-needs-fault", validDoc + "\n[scenario.sweep]\nseverity = [1, 2]\n",
			"severity axis needs at least one [[scenario.fault]]", 0},
		{"unknown-fault-kind", validDoc + "\n[[scenario.fault]]\nkind = \"gremlin\"\n",
			`unknown fault kind "gremlin"`, 0},
		{"fault-needs-link", validDoc + "\n[[scenario.fault]]\nkind = \"link-flap\"\n",
			"requires a link name", 0},
		{"unknown-key", validDoc + "speed = 9\n", `unknown key "speed"`, 0},
		{"unknown-key-toplevel", "name = \"t\"\ncolor = \"red\"", `unknown key "color"`, 2},
		{"bad-metrics-interval", "name = \"t\"\n\n[observe]\nmetrics_interval_us = 0",
			"metrics_interval_us must be positive", 0},
		{"observed-cell-unbound", "name = \"t\"\nexperiments = [\"fig10\"]\n\n[observe]\ntrace_cells = [\"wan/c000/s00\"]",
			`observed cell "wan/c000/s00" names no declared experiment or scenario`, 0},
		{"negative-expect", "name = \"t\"\n\n[expect]\nmax_violations = -1",
			"max_violations must be non-negative", 0},
		{"cell-unknown-table",
			validDoc + "\n[[expect.cell]]\ntable = \"nope\"\ncolumn = \"fct_ms\"\nop = \"lt\"\nvalue = 5.0",
			`expect.cell table "nope" names no declared experiment or scenario`, 10},
		{"cell-unknown-column",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\ncolumn = \"zzz\"\nop = \"lt\"\nvalue = 5.0",
			`expect.cell column "zzz" not in scenario "s" table (columns: cell, transport, goodput_Gbps, fct_ms, retrans_pkts, unfinished)`, 10},
		{"cell-name-on-scenario",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\nname = \"summary\"\ncolumn = \"fct_ms\"\nop = \"lt\"\nvalue = 5.0",
			"expect.cell name only applies to experiment tables", 10},
		{"cell-missing-column",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\nop = \"lt\"\nvalue = 5.0",
			"expect.cell needs a column", 10},
		{"cell-missing-op",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\ncolumn = \"fct_ms\"\nvalue = 5.0",
			"expect.cell needs an op (lt, le, gt, ge, eq, within)", 10},
		{"cell-unknown-comparator",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\ncolumn = \"fct_ms\"\nop = \"approx\"\nvalue = 5.0",
			`expect.cell: unknown comparator "approx" (lt, le, gt, ge, eq, within)`, 13},
		{"cell-missing-value",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\ncolumn = \"fct_ms\"\nop = \"lt\"",
			"expect.cell needs a value", 10},
		{"cell-negative-tol",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\ncolumn = \"fct_ms\"\nop = \"within\"\nvalue = 5.0\ntol = -0.5",
			"expect.cell: tol must be non-negative, got -0.5", 15},
		{"cell-tol-without-within",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\ncolumn = \"fct_ms\"\nop = \"lt\"\nvalue = 5.0\ntol = 0.5",
			`expect.cell: tol only applies to the "within" comparator`, 0},
		{"cell-within-without-tol",
			validDoc + "\n[[expect.cell]]\ntable = \"s\"\ncolumn = \"fct_ms\"\nop = \"within\"\nvalue = 5.0",
			`expect.cell: comparator "within" needs a tol`, 0},
		{"stat-unknown-unit",
			validDoc + "\n[[expect.stat]]\nunit = \"nope\"\nmetric = \"events\"\nop = \"gt\"\nvalue = 0.0",
			`expect.stat unit "nope" names no declared experiment or scenario`, 10},
		{"stat-unknown-metric",
			validDoc + "\n[[expect.stat]]\nunit = \"s\"\nmetric = \"latency\"\nop = \"lt\"\nvalue = 5.0",
			`unknown stat metric "latency" (counters: sims, flows, done, bytes, data_pkts, retrans_pkts, timeouts, ho_triggers, events, state_bytes, steps; percentiles: fct_pNN_us, fct_max_us, step_pNN_us, step_max_us, slowdown_pNN)`, 12},
		{"stat-bad-percentile",
			validDoc + "\n[[expect.stat]]\nunit = \"s\"\nmetric = \"fct_p0_us\"\nop = \"lt\"\nvalue = 5.0",
			`unknown stat metric "fct_p0_us"`, 0},
		{"wrong-type", "name = 7", `key "name" must be a string, got integer`, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			diags := parseDiags(t, c.src)
			for _, d := range diags {
				if strings.Contains(d.Msg, c.want) {
					if c.line > 0 && d.Line != c.line {
						t.Fatalf("diagnostic %q anchored at line %d, want %d", d.Msg, d.Line, c.line)
					}
					return
				}
			}
			t.Fatalf("no diagnostic containing %q in %v", c.want, diags)
		})
	}
}

func examplePaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "campaigns", "*.toml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example campaigns found: %v", err)
	}
	return paths
}

// TestExamplesValidate pins that every shipped example parses with zero
// diagnostics and compiles to at least one unit.
func TestExamplesValidate(t *testing.T) {
	for _, path := range examplePaths(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		doc, diags := Parse(data, FormatForPath(path))
		if len(diags) > 0 {
			t.Errorf("%s: %v", path, diags)
			continue
		}
		c, err := Compile(doc)
		if err != nil {
			t.Errorf("%s: compile: %v", path, err)
			continue
		}
		if len(c.Units) == 0 {
			t.Errorf("%s: compiled to zero units", path)
		}
	}
}

// TestEncodeTOMLRoundTrip pins the round-trip law on every example:
// Parse(EncodeTOML(d)) rebinds to an equal Doc, and re-encoding is a
// fixpoint (canonical form encodes to itself).
func TestEncodeTOMLRoundTrip(t *testing.T) {
	for _, path := range examplePaths(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		doc, diags := Parse(data, FormatForPath(path))
		if len(diags) > 0 {
			t.Fatalf("%s: %v", path, diags)
		}
		enc1 := EncodeTOML(doc)
		doc2, diags2 := Parse(enc1, FormatTOML)
		if len(diags2) > 0 {
			t.Fatalf("%s: canonical encoding does not re-parse cleanly: %v\n%s", path, diags2, enc1)
		}
		enc2 := EncodeTOML(doc2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%s: canonical encoding is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", path, enc1, enc2)
		}
	}
}

// TestEncodeTOMLPredicates pins the round-trip law on the [[expect.cell]]
// and [[expect.stat]] sections specifically: the canonical encoding
// reproduces every predicate field, re-parses cleanly, and is a fixpoint.
func TestEncodeTOMLPredicates(t *testing.T) {
	src := validDoc + `
[expect]
max_violations = 2
require_done = true

[[expect.cell]]
table = "s"
row = "c000"
column = "fct_ms"
op = "lt"
value = 5.5

[[expect.cell]]
table = "s"
column = "goodput_Gbps"
op = "within"
value = 1.5
tol = 0.25

[[expect.stat]]
unit = "s"
metric = "fct_p99.9_us"
op = "le"
value = 1200
`
	doc, diags := Parse([]byte(src), FormatTOML)
	if len(diags) > 0 {
		t.Fatal(diags)
	}
	enc1 := EncodeTOML(doc)
	for _, want := range []string{
		"[[expect.cell]]", "[[expect.stat]]", `row = "c000"`,
		`op = "within"`, "tol = 0.25", `metric = "fct_p99.9_us"`,
	} {
		if !bytes.Contains(enc1, []byte(want)) {
			t.Errorf("canonical encoding missing %q:\n%s", want, enc1)
		}
	}
	doc2, diags2 := Parse(enc1, FormatTOML)
	if len(diags2) > 0 {
		t.Fatalf("canonical encoding does not re-parse cleanly: %v\n%s", diags2, enc1)
	}
	if len(doc2.Expect.Cells) != 2 || len(doc2.Expect.Stats) != 1 {
		t.Fatalf("predicates lost in round trip: %d cells, %d stats", len(doc2.Expect.Cells), len(doc2.Expect.Stats))
	}
	if enc2 := EncodeTOML(doc2); !bytes.Equal(enc1, enc2) {
		t.Fatalf("canonical encoding is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", enc1, enc2)
	}
}

// TestEncodeTOMLGolden pins the canonical encoding of the wan-sketch
// example byte-for-byte against testdata, so encoder drift is a
// reviewed diff rather than a silent change.
func TestEncodeTOMLGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "campaigns", "wan-sketch.toml"))
	if err != nil {
		t.Fatal(err)
	}
	doc, diags := Parse(data, FormatTOML)
	if len(diags) > 0 {
		t.Fatal(diags)
	}
	got := EncodeTOML(doc)
	goldenPath := filepath.Join("testdata", "wan-sketch.canonical.toml")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate by writing the got bytes): %v\ngot:\n%s", err, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical encoding drifted from %s:\ngot:\n%s\nwant:\n%s", goldenPath, got, want)
	}
}
