package campaign

import (
	"fmt"

	"dcpsim/internal/exp"
	"dcpsim/internal/faults"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/topo"
	"dcpsim/internal/units"
	"dcpsim/internal/workload"
)

// This file lowers a validated Doc onto the experiment engine. A campaign
// compiles to an ordered list of Units — independently executable,
// independently checkpointable work items. Registry experiments become
// coordinator units running the experiment's own cell-builder through the
// shared pool (so their inner CellKeys match a plain dcpbench run
// exactly — the registry/campaign parity guard pins this). Declarative
// scenarios become one unit per cell of the transport × sweep-axis cross
// product, each lowering onto exp.Cell with an explicit cell index, so
// campaign sims live on the same CellKey-ordered deterministic-merge
// contract as everything else.

// UnitKind distinguishes how a unit executes and renders.
type UnitKind string

const (
	UnitExperiment UnitKind = "experiment"
	UnitCell       UnitKind = "cell"
)

// Unit is one checkpointable work item of a compiled campaign.
type Unit struct {
	// ID is the unit's checkpoint identity: the experiment id, or
	// "<scenario>/cNNN" for a scenario cell.
	ID   string
	Kind UnitKind
	Desc string

	// ExpID is the CellKey namespace the unit's sims run under.
	ExpID string

	// Coordinator units fan their own cells into the shared pool and must
	// run on a slot-free goroutine (pool.GoFree); cell units occupy one
	// worker slot (pool.Go).
	Coordinator bool

	exper *exp.Experiment

	sc        *Scenario
	cell      int
	transport string
	axisVals  []float64 // aligned with sc.Axes
}

// Campaign is a compiled campaign: the source doc plus its unit list in
// canonical (checkpoint and merge) order.
type Campaign struct {
	Doc   *Doc
	Units []*Unit
}

// Compile lowers a bound Doc. The doc must have passed Parse with zero
// diagnostics; Compile re-checks only what it depends on to execute.
func Compile(doc *Doc) (*Campaign, error) {
	c := &Campaign{Doc: doc}
	for _, id := range doc.Experiments {
		e := exp.ByID(id)
		if e == nil {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		c.Units = append(c.Units, &Unit{
			ID: e.ID, Kind: UnitExperiment, Desc: e.Desc,
			ExpID: e.ID, Coordinator: true, exper: e,
		})
	}
	for _, sc := range doc.Scenarios {
		combos := 1
		for _, a := range sc.Axes {
			if len(a.Values) == 0 {
				return nil, fmt.Errorf("scenario %q: empty sweep axis %q", sc.ID, a.Name)
			}
			combos *= len(a.Values)
		}
		if len(sc.Transports) == 0 {
			return nil, fmt.Errorf("scenario %q: no transports", sc.ID)
		}
		cell := 0
		for _, tr := range sc.Transports {
			if _, ok := exp.SchemeByName(tr); !ok {
				return nil, fmt.Errorf("scenario %q: unknown transport %q", sc.ID, tr)
			}
			for combo := 0; combo < combos; combo++ {
				vals := make([]float64, len(sc.Axes))
				stride := combos
				for i, a := range sc.Axes {
					stride /= len(a.Values)
					vals[i] = a.Values[(combo/stride)%len(a.Values)]
				}
				c.Units = append(c.Units, &Unit{
					ID:    fmt.Sprintf("%s/c%03d", sc.ID, cell),
					Kind:  UnitCell,
					Desc:  fmt.Sprintf("%s %s %s", sc.ID, sc.Workload, tr),
					ExpID: sc.ID, sc: sc, cell: cell,
					transport: tr, axisVals: vals,
				})
				cell++
			}
		}
	}
	if len(c.Units) == 0 {
		return nil, fmt.Errorf("campaign %q compiles to no work: no experiments or scenarios", doc.Name)
	}
	return c, nil
}

// axis returns the cell's value for the named sweep axis (def if the
// scenario does not sweep it).
func (u *Unit) axis(name string, def float64) float64 {
	for i, a := range u.sc.Axes {
		if a.Name == name {
			return u.axisVals[i]
		}
	}
	return def
}

// seeds resolves the per-sim seed list of a scenario.
func (sc *Scenario) seeds(docSeed int64) []int64 {
	if len(sc.Seeds) > 0 {
		return sc.Seeds
	}
	if sc.Repeat > 0 {
		out := make([]int64, sc.Repeat)
		for i := range out {
			out[i] = docSeed + int64(i)
		}
		return out
	}
	return []int64{docSeed}
}

// ScenarioColumns exposes a scenario table's header to bundle consumers:
// the diff engine in internal/obs/diff labels cell-level deltas with the
// same column names the rendered tables use.
func ScenarioColumns(sc *Scenario) []string { return scenarioColumns(sc) }

// scenarioColumns returns the header of a scenario's result table.
func scenarioColumns(sc *Scenario) []string {
	cols := []string{"cell"}
	for _, a := range sc.Axes {
		cols = append(cols, a.Name)
	}
	return append(cols, "transport", "goodput_Gbps", "fct_ms", "retrans_pkts", "unfinished")
}

// runCell executes one scenario cell under cfg (already labelled with the
// scenario's experiment id and carrying the runner's hook, stats sink and
// pool) and returns the cell's pre-formatted result row. Errors in the
// declarative plan that only a concrete topology can surface (a fault
// naming a link the topology doesn't build) panic with context, matching
// the registry experiments' mustInject idiom; the pool re-raises them on
// the merging goroutine.
func (u *Unit) runCell(cfg exp.Config) []string {
	sc := u.sc
	severity := u.axis("severity", 1)
	sizeMB := u.axis("size_mb", sc.SizeMB)
	size := int64(sizeMB * cfg.Scale * 1e6)
	if size < 64_000 {
		size = 64_000
	}
	horizon := units.Scale(units.Millisecond, sc.HorizonMs)

	var specs []faults.Spec
	for _, f := range sc.Faults {
		specs = append(specs, f.Scaled(severity))
	}

	var goodput, fctMs float64
	var retrans int64
	var done, unfinished int

	exp.Cell(cfg, u.cell, func(sub exp.Config) {
		for _, seed := range sc.seeds(cfg.Seed) {
			simCfg := sub
			simCfg.Seed = seed
			sch, _ := exp.SchemeByName(u.transport)
			s := exp.NewSimCfg(simCfg, sch, func(eng *sim.Engine) *topo.Network {
				return u.buildTopo(eng, sch)
			})
			if sc.Workload == "collective" {
				// One ring all-reduce over every host; RunCoflow records
				// per-step completion times into the collector, which the
				// stats sink folds into the step_* metrics.
				members := make([]packet.NodeID, sc.hostCount())
				for i := range members {
					members[i] = hostID(i)
				}
				s.RunCoflow(workload.RingAllReduce(members, size, 1, 1), 0, nil)
			} else {
				s.ScheduleFlows(u.flows(size))
			}
			if len(specs) > 0 {
				plan, err := faults.FromSpecs(seed, specs)
				if err != nil {
					panic(fmt.Sprintf("campaign unit %s: %v", u.ID, err))
				}
				if _, err := s.Net.Inject(plan); err != nil {
					panic(fmt.Sprintf("campaign unit %s: %v", u.ID, err))
				}
			}
			unfinished += s.Run(horizon)
			for _, rec := range s.Col.Flows() {
				if !rec.Done {
					continue
				}
				done++
				goodput += stats.Goodput(rec.Size, rec.FCT())
				fctMs += rec.FCT().Millis()
				retrans += rec.RetransPkts
			}
			for _, rec := range s.Col.Flows() {
				if !rec.Done {
					retrans += rec.RetransPkts
				}
			}
		}
	})
	if done > 0 {
		goodput /= float64(done)
		fctMs /= float64(done)
	}

	row := []string{fmt.Sprintf("c%03d", u.cell)}
	for _, v := range u.axisVals {
		row = append(row, ftoaCell(v))
	}
	return append(row,
		u.transport,
		ftoaCell(goodput),
		ftoaCell(fctMs),
		fmt.Sprintf("%d", retrans),
		fmt.Sprintf("%d", unfinished),
	)
}

// ftoaCell matches stats.Table.AddRow's float rendering so assembled
// scenario tables format like every other table in the repo.
func ftoaCell(v float64) string { return fmt.Sprintf("%.4g", v) }

// buildTopo constructs the scenario's network with this cell's axis
// values applied.
func (u *Unit) buildTopo(eng *sim.Engine, sch exp.Scheme) *topo.Network {
	sc := u.sc
	swCfg := exp.SwitchConfigFor(sch)
	if loss := u.axis("loss", 0); loss > 0 {
		swCfg.LossRate = loss
	}
	delay := u.axis("cross_delay_us", 0)
	if sc.Topology == "clos" {
		cfg := topo.DefaultClos()
		cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = sc.Leaves, sc.Spines, sc.HostsPerLeaf
		cfg.Switch = swCfg
		if delay > 0 {
			cfg.SpineDelay = units.Scale(units.Microsecond, delay)
		}
		return topo.Clos(eng, cfg)
	}
	cfg := topo.DefaultDumbbell()
	cfg.HostsPerSwitch = sc.HostsPerSwitch
	cfg.CrossLinks = sc.CrossLinks
	cfg.Switch = swCfg
	if delay > 0 {
		d := units.Scale(units.Microsecond, delay)
		cfg.CrossDelays = make([]units.Time, sc.CrossLinks)
		for i := range cfg.CrossDelays {
			cfg.CrossDelays[i] = d
		}
	}
	return topo.Dumbbell(eng, cfg)
}

// flows builds the scenario's workload. Host numbering follows the
// topology builders: dumbbell hosts 0..H-1 sit on switch 1, H..2H-1 on
// switch 2; clos host i lives under leaf i/HostsPerLeaf.
func (u *Unit) flows(size int64) []*workload.Flow {
	sc := u.sc
	hosts := sc.hostCount()
	half := hosts / 2
	var out []*workload.Flow
	switch sc.Workload {
	case "incast":
		fan := int(u.axis("fan_in", float64(sc.FanIn)))
		dst := hosts - 1
		for i := 0; i < fan; i++ {
			out = append(out, &workload.Flow{
				ID: uint64(i + 1), Src: hostID(i), Dst: hostID(dst),
				Size: size, Class: "incast",
			})
		}
	case "pairs":
		for i := 0; i < half; i++ {
			out = append(out, &workload.Flow{
				ID: uint64(i + 1), Src: hostID(i), Dst: hostID(half + i),
				Size: size, Class: "bg",
			})
		}
	default: // single-flow
		out = append(out, &workload.Flow{
			ID: 1, Src: hostID(0), Dst: hostID(half),
			Size: size, Class: "bg",
		})
	}
	return out
}

func hostID(i int) packet.NodeID { return packet.NodeID(i) }
