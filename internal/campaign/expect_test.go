package campaign

import (
	"fmt"
	"strings"
	"testing"

	"dcpsim/internal/stats"
)

// expectDoc extends the runner-test campaign with one cell predicate and
// one stat predicate, both satisfiable by the fabricated results below.
const expectDoc = miniDoc + `
[[expect.cell]]
table = "mini"
row = "*"
column = "retrans_pkts"
op = "le"
value = 100

[[expect.stat]]
unit = "mini"
metric = "retrans_pkts"
op = "lt"
value = 1000
`

// lineOf returns the 1-based line of the nth occurrence of needle.
func lineOf(t *testing.T, src, needle string, nth int) int {
	t.Helper()
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, needle) {
			if nth--; nth == 0 {
				return i + 1
			}
		}
	}
	t.Fatalf("%q not found %d times in doc", needle, nth)
	return 0
}

func compileExpectDoc(t *testing.T, src string) *Campaign {
	t.Helper()
	doc, diags := Parse([]byte(src), FormatTOML)
	if len(diags) > 0 {
		t.Fatalf("expect doc: %v", diags)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fakeCellResults fabricates one plausible rendered row per unit, shaped
// exactly like runCell's output, so predicate evaluation can be tested
// without running simulations.
func fakeCellResults(c *Campaign) []*UnitResult {
	var out []*UnitResult
	for _, u := range c.Units {
		row := []string{fmt.Sprintf("c%03d", u.cell)}
		for _, v := range u.axisVals {
			row = append(row, ftoaCell(v))
		}
		row = append(row, u.transport, "1.5", "2.5", "0", "0")
		out = append(out, &UnitResult{
			ID: u.ID, Kind: string(u.Kind), Row: row,
			Summary: &stats.RunSummary{Sims: 1, Flows: 2, Done: 2, RetransPkts: 5},
		})
	}
	return out
}

func TestEvalExpectPass(t *testing.T) {
	c := compileExpectDoc(t, expectDoc)
	if fails := evalExpect(c, fakeCellResults(c)); len(fails) != 0 {
		t.Fatalf("satisfied predicates produced failures: %v", fails)
	}
}

// TestEvalExpectCellAttribution pins the acceptance shape of a cell
// predicate failure: the message names the predicate's document line, the
// offending unit, the cell reference with its actual value, and the
// comparator — and only the violating units appear.
func TestEvalExpectCellAttribution(t *testing.T) {
	c := compileExpectDoc(t, expectDoc)
	results := fakeCellResults(c)
	cols := scenarioColumns(c.Units[0].sc)
	ci := columnIndex(cols, "retrans_pkts")
	results[2].Row[ci] = "250" // only unit 2 violates le 100
	fails := evalExpect(c, results)
	if len(fails) != 1 {
		t.Fatalf("want exactly one failure, got %v", fails)
	}
	line := lineOf(t, expectDoc, "[[expect.cell]]", 1)
	for _, want := range []string{
		fmt.Sprintf("expect.cell (line %d)", line),
		"unit " + c.Units[2].ID,
		"= 250",
		"violates le 100",
	} {
		if !strings.Contains(fails[0], want) {
			t.Errorf("failure %q missing %q", fails[0], want)
		}
	}
	for i, u := range c.Units {
		if i != 2 && strings.Contains(fails[0], u.ID) {
			t.Errorf("failure %q blames non-violating unit %s", fails[0], u.ID)
		}
	}
}

func TestEvalExpectCellRowSelector(t *testing.T) {
	c := compileExpectDoc(t, expectDoc)
	doc := c.Doc
	doc.Expect.Cells[0].Row = "c001" // pin to one cell
	results := fakeCellResults(c)
	cols := scenarioColumns(c.Units[0].sc)
	ci := columnIndex(cols, "retrans_pkts")
	for i := range results {
		results[i].Row[ci] = "250" // every cell violates ...
	}
	fails := evalExpect(c, results)
	if len(fails) != 1 { // ... but only the selected row is checked
		t.Fatalf("row selector should bound the check to one cell, got %v", fails)
	}
	if !strings.Contains(fails[0], "mini[c001].retrans_pkts") {
		t.Fatalf("failure %q does not reference the selected cell", fails[0])
	}
}

func TestEvalExpectCellMatchedNothing(t *testing.T) {
	c := compileExpectDoc(t, expectDoc)
	c.Doc.Expect.Cells[0].Row = "c999"
	fails := evalExpect(c, fakeCellResults(c))
	if len(fails) != 1 || !strings.Contains(fails[0], "matched no cells") {
		t.Fatalf("typo'd row selector must fail loudly, got %v", fails)
	}
	if !strings.Contains(fails[0], `row="c999"`) {
		t.Fatalf("failure %q does not echo the selector", fails[0])
	}
}

func TestEvalExpectCellNonNumeric(t *testing.T) {
	c := compileExpectDoc(t, expectDoc)
	c.Doc.Expect.Cells[0].Column = "transport" // text column under a numeric comparator
	fails := evalExpect(c, fakeCellResults(c))
	if len(fails) == 0 || !strings.Contains(fails[0], "is not numeric") {
		t.Fatalf("text cell under numeric comparator must fail, got %v", fails)
	}
}

func TestEvalExpectStatAttribution(t *testing.T) {
	c := compileExpectDoc(t, expectDoc)
	results := fakeCellResults(c)
	results[1].Summary.RetransPkts = 5000 // only unit 1 violates lt 1000
	fails := evalExpect(c, results)
	if len(fails) != 1 {
		t.Fatalf("want exactly one failure, got %v", fails)
	}
	line := lineOf(t, expectDoc, "[[expect.stat]]", 1)
	for _, want := range []string{
		fmt.Sprintf("expect.stat (line %d)", line),
		"unit " + c.Units[1].ID,
		"retrans_pkts = 5000",
		"violates lt 1000",
	} {
		if !strings.Contains(fails[0], want) {
			t.Errorf("failure %q missing %q", fails[0], want)
		}
	}
}

func TestEvalExpectStatNoStatistics(t *testing.T) {
	c := compileExpectDoc(t, expectDoc)
	results := fakeCellResults(c)
	for i := range results {
		results[i].Summary = nil // observe.stats effectively off
	}
	fails := evalExpect(c, results)
	if len(fails) != 1 || !strings.Contains(fails[0], "matched no unit with statistics") {
		t.Fatalf("stat predicate without summaries must fail loudly, got %v", fails)
	}
}

// TestEvalExpectViolationAttribution pins the satellite fix: the
// max_violations failure names the offending unit(s) with their counts,
// and stays silent about clean units.
func TestEvalExpectViolationAttribution(t *testing.T) {
	c := compileExpectDoc(t, miniDoc)
	results := fakeCellResults(c)
	results[0].Violations = 3
	results[3].Violations = 1
	fails := evalExpect(c, results)
	if len(fails) != 1 {
		t.Fatalf("want exactly one failure, got %v", fails)
	}
	want := fmt.Sprintf("invariant violations 4 exceed max_violations 0 (%s: 3, %s: 1)",
		c.Units[0].ID, c.Units[3].ID)
	if fails[0] != want {
		t.Fatalf("violation attribution:\ngot  %q\nwant %q", fails[0], want)
	}
}

// TestEvalExpectWithin exercises the tolerance comparator on both sides
// of the band edge.
func TestEvalExpectWithin(t *testing.T) {
	src := miniDoc + `
[[expect.cell]]
table = "mini"
column = "goodput_Gbps"
op = "within"
value = 1.5
tol = 0.25
`
	c := compileExpectDoc(t, src)
	if fails := evalExpect(c, fakeCellResults(c)); len(fails) != 0 {
		t.Fatalf("goodput 1.5 is within 1.5±0.25, got %v", fails)
	}
	results := fakeCellResults(c)
	cols := scenarioColumns(c.Units[0].sc)
	ci := columnIndex(cols, "goodput_Gbps")
	results[0].Row[ci] = "1.76"
	fails := evalExpect(c, results)
	if len(fails) != 1 || !strings.Contains(fails[0], "violates within 1.5 ±0.25") {
		t.Fatalf("1.76 is outside 1.5±0.25, got %v", fails)
	}
}
