package campaign

import (
	"strings"
	"testing"
)

const parserDoc = `# full syntax exercise
name = "parser" # trailing comment
seed = 1_000
scale = 0.5

experiments = [
  "fig10",
  "fig11", # multi-line array with comments
]

[observe]
check = true
trace_cells = ["fig10/c000/s00"]

[[scenario]]
id = "a"
transports = ["dcp"]
size_mb = 2.5

[scenario.sweep]
loss = [0.001, 0.01]

[[scenario.fault]]
kind = "link-flap"
link = "cross0"
at_us = 10

[[scenario]]
id = "b"
transports = ["dcp", "irn"]
`

func TestParseTOMLTree(t *testing.T) {
	root, err := parseTOML([]byte(parserDoc))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.child("name"); got == nil || got.kind != kString || got.str != "parser" {
		t.Fatalf("name = %+v", got)
	}
	if got := root.child("seed"); got == nil || got.kind != kInt || got.i != 1000 {
		t.Fatalf("seed (underscored int) = %+v", got)
	}
	if got := root.child("scale"); got == nil || got.kind != kFloat || got.f != 0.5 {
		t.Fatalf("scale = %+v", got)
	}
	exps := root.child("experiments")
	if exps == nil || exps.kind != kArray || len(exps.arr) != 2 || exps.arr[1].str != "fig11" {
		t.Fatalf("multi-line experiments array = %+v", exps)
	}
	if exps.line != 6 {
		t.Fatalf("experiments anchored at line %d, want 6", exps.line)
	}
	obsT := root.child("observe")
	if obsT == nil || obsT.kind != kTable || obsT.child("check").b != true {
		t.Fatalf("[observe] = %+v", obsT)
	}
	scen := root.child("scenario")
	if scen == nil || scen.kind != kArray || len(scen.arr) != 2 {
		t.Fatalf("[[scenario]] = %+v", scen)
	}
	first := scen.arr[0]
	if first.child("id").str != "a" || first.child("size_mb").f != 2.5 {
		t.Fatalf("scenario a = %+v", first)
	}
	// Dotted headers resolve through the last array element.
	sweep := first.child("sweep")
	if sweep == nil || sweep.kind != kTable || len(sweep.child("loss").arr) != 2 {
		t.Fatalf("[scenario.sweep] = %+v", sweep)
	}
	fault := first.child("fault")
	if fault == nil || fault.kind != kArray || fault.arr[0].child("kind").str != "link-flap" {
		t.Fatalf("[[scenario.fault]] = %+v", fault)
	}
	if scen.arr[1].child("sweep") != nil {
		t.Fatal("sweep leaked into the second scenario")
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		src  string
		line int
		want string
	}{
		{"x = {a = 1}", 1, "inline tables"},
		{"a = 1\na = 2", 2, "duplicate key"},
		{"a = [1, 2", 1, "unbalanced brackets"},
		{"[bad\na = 1", 1, "malformed [section]"},
		{"a b = 1", 1, "invalid key"},
		{"no-eq", 1, "expected key = value"},
		{"a = \"x\" junk", 1, "trailing characters"},
		{"a = \"unterminated", 1, "unterminated string"},
		{"a = what", 1, "cannot parse value"},
		{"k.ey! = 1", 1, "invalid key"},
		{"v = 1\n[v.sub]", 2, "not a table"},
	}
	for _, c := range cases {
		_, err := parseTOML([]byte(c.src))
		if err == nil {
			t.Errorf("parseTOML(%q) succeeded, want error %q", c.src, c.want)
			continue
		}
		pe, ok := err.(*parseError)
		if !ok || pe.line != c.line || !strings.Contains(pe.msg, c.want) {
			t.Errorf("parseTOML(%q) = %v; want line %d containing %q", c.src, err, c.line, c.want)
		}
	}
}

// TestParseJSONEquivalence: the same campaign in TOML and JSON binds to
// identical Docs (modulo line anchors).
func TestParseJSONEquivalence(t *testing.T) {
	tomlSrc := `
name = "eq"
seed = 7
scale = 0.1

[observe]
check = true
stats = true
metrics_interval_us = 10

[[scenario]]
id = "s"
transports = ["dcp", "irn"]
size_mb = 2
seeds = [7, 8]

[scenario.sweep]
loss = [0.001, 0.01]
`
	jsonSrc := `{
  "name": "eq", "seed": 7, "scale": 0.1,
  "observe": {"check": true, "stats": true, "metrics_interval_us": 10},
  "scenario": [{
    "id": "s", "transports": ["dcp", "irn"], "size_mb": 2, "seeds": [7, 8],
    "sweep": {"loss": [0.001, 0.01]}
  }]
}`
	dt, diagsT := Parse([]byte(tomlSrc), FormatTOML)
	dj, diagsJ := Parse([]byte(jsonSrc), FormatJSON)
	if len(diagsT) > 0 || len(diagsJ) > 0 {
		t.Fatalf("diags: toml=%v json=%v", diagsT, diagsJ)
	}
	if !docsEqual(dt, dj) {
		t.Fatalf("TOML and JSON bind differently:\ntoml %s\njson %s", EncodeTOML(dt), EncodeTOML(dj))
	}
}

func TestParseJSONErrors(t *testing.T) {
	for _, src := range []string{``, `[1]`, `{"name": null}`, `{"name": "x"} trailing`} {
		if _, err := parseJSON([]byte(src)); err == nil {
			t.Errorf("parseJSON(%q) succeeded, want error", src)
		}
	}
}

// docsEqual compares two bound documents through the canonical encoder,
// which ignores unexported line anchors by construction.
func docsEqual(a, b *Doc) bool {
	return string(EncodeTOML(a)) == string(EncodeTOML(b))
}
