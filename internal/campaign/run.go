package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dcpsim/internal/exp"
	"dcpsim/internal/exp/pool"
	"dcpsim/internal/obs"
	"dcpsim/internal/obs/flight"
	"dcpsim/internal/sim"
	"dcpsim/internal/stats"
	"dcpsim/internal/units"
)

// This file is the headless campaign runner. Units are submitted to the
// shared worker pool up front and merged strictly in unit order — never
// completion order — so the rendered bundle is byte-identical at any
// worker count. Each merged unit is checkpointed (canonical JSON + its
// SHA-256 digest) into the run directory; a re-run of the same document
// over the same directory skips checkpointed units and, because cached
// results round-trip exactly (the stats JSON codec is equality-exact),
// produces a bundle byte-identical to an uninterrupted run.
//
// Nothing in the bundle reads the wall clock: provenance is content
// hashes, versions and seeds, and the bench snapshot counts simulator
// events, not seconds. That is what makes resumed output reproducible
// byte-for-byte — the one BENCH field dcpbench reports that a campaign
// bundle deliberately omits.

// ErrAborted is returned when Options.AbortAfter stopped the run early;
// the run directory then holds a resumable checkpoint prefix.
var ErrAborted = errors.New("campaign run aborted by abort hook")

// Options configures one campaign execution.
type Options struct {
	// Dir is the run directory (checkpoints + bundle). Empty runs
	// ephemerally: no checkpoints, no bundle files.
	Dir string
	// Workers sizes the worker pool (<=1 → serial).
	Workers int
	// AbortAfter, when > 0, aborts the run after that many freshly
	// executed units have been checkpointed — the test and CI hook that
	// simulates a mid-campaign kill deterministically.
	AbortAfter int
}

// CompCount is one engine component's dispatched-event count, aggregated
// across a unit's cells. Counts come from the sim.Prof dispatch profiler
// (counts-only, no wall clock), so they are deterministic for a given
// seed and safe inside the byte-identical bundle.
type CompCount struct {
	Comp   string `json:"comp"`
	Events uint64 `json:"events"`
}

// UnitResult is everything one unit's execution produced. It is the
// checkpoint payload, so every field must marshal canonically (fixed
// field order, no maps) and round-trip exactly.
type UnitResult struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Tables holds a registry experiment's rendered tables; Row a
	// scenario cell's pre-formatted result row.
	Tables  []*stats.Table    `json:"tables,omitempty"`
	Row     []string          `json:"row,omitempty"`
	Summary *stats.RunSummary `json:"summary,omitempty"`
	Sims    int               `json:"sims"`
	Events  int64             `json:"events"`
	// Comps attributes the unit's dispatched events to engine components
	// (enum order, zero rows omitted).
	Comps []CompCount `json:"comps,omitempty"`
	// CheckEvents/Violations/Autopsy come from the flight-recorder
	// checkers (observe.check).
	CheckEvents  int64    `json:"check_events"`
	Violations   int64    `json:"violations"`
	Autopsy      string   `json:"autopsy,omitempty"`
	TraceFiles   []string `json:"trace_files,omitempty"`
	MetricsFiles []string `json:"metrics_files,omitempty"`
}

// Report summarizes one Run.
type Report struct {
	Name     string
	Results  []*UnitResult
	Digests  []string // aligned with Results
	Cached   int      // units restored from checkpoints
	Executed int      // units freshly run

	Violations     int64
	ExpectFailures []string
	Aborted        bool
}

type unitPayload struct {
	tables []*stats.Table
	row    []string
}

// unitObs owns one unit's observers: invariant checkers on every sim
// when observe.check, plus trace/metrics exporters for the cells the doc
// names. Keys arrive from worker goroutines; everything is merged in
// CellKey order afterwards, so the exports are worker-count independent.
type unitObs struct {
	check    bool
	traces   map[string]bool
	metrics  map[string]bool
	interval units.Time

	mu       sync.Mutex
	keys     []exp.CellKey
	checkers map[exp.CellKey]*flight.Checker
	tracers  map[exp.CellKey]*obs.Tracer
	meters   map[exp.CellKey]*obs.Metrics
	profs    map[exp.CellKey]*sim.Prof
}

func newUnitObs(o Observe) *unitObs {
	u := &unitObs{
		check:    o.Check,
		traces:   map[string]bool{},
		metrics:  map[string]bool{},
		interval: units.Scale(units.Microsecond, o.MetricsIntervalUs),
		checkers: map[exp.CellKey]*flight.Checker{},
		tracers:  map[exp.CellKey]*obs.Tracer{},
		meters:   map[exp.CellKey]*obs.Metrics{},
		profs:    map[exp.CellKey]*sim.Prof{},
	}
	for _, k := range o.TraceCells {
		u.traces[k] = true
	}
	for _, k := range o.MetricsCells {
		u.metrics[k] = true
	}
	return u
}

// hook is installed as Config.Hook: it attaches observing sinks to every
// sim the unit constructs, keyed by the sim's deterministic CellKey.
func (uo *unitObs) hook(key exp.CellKey, s *exp.Sim) {
	ks := key.String()
	var tr *obs.Tracer
	if uo.check || uo.traces[ks] {
		tr = obs.NewTracer()
		if !uo.traces[ks] {
			tr.SetLimit(1) // flat memory: the checker consumes the stream online
		}
	}
	var ck *flight.Checker
	if uo.check {
		ck = flight.New(flight.Config{})
		tr.Tee(ck)
	}
	var m *obs.Metrics
	if uo.metrics[ks] {
		m = obs.NewMetrics(s.Eng, uo.interval)
	}
	if tr != nil || m != nil {
		s.Attach(tr, m)
	}
	// Counts-only dispatch profiler on every cell: deterministic component
	// attribution for the bundle's bench snapshot, no wall clock.
	pr := &sim.Prof{}
	s.Eng.AttachProf(pr)
	uo.mu.Lock()
	defer uo.mu.Unlock()
	uo.keys = append(uo.keys, key)
	uo.profs[key] = pr
	if ck != nil {
		uo.checkers[key] = ck
	}
	if tr != nil && uo.traces[ks] {
		uo.tracers[key] = tr
	}
	if m != nil {
		uo.meters[key] = m
	}
}

func (uo *unitObs) sortedKeys() []exp.CellKey {
	uo.mu.Lock()
	defer uo.mu.Unlock()
	keys := append([]exp.CellKey(nil), uo.keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// pending is one submitted unit awaiting merge.
type pending struct {
	unit *Unit
	fut  *pool.Future[unitPayload]
	acc  *exp.StatsAccumulator
	obs  *unitObs
}

func submitUnit(p *pool.Pool, doc *Doc, u *Unit) *pending {
	acc := exp.NewStatsAccumulator()
	uo := newUnitObs(doc.Observe)
	cfg := exp.Config{Seed: doc.Seed, Scale: doc.Scale}.WithPool(p).WithExperiment(u.ExpID)
	cfg.Stats = acc
	cfg.Hook = uo.hook
	run := func() unitPayload {
		if u.Kind == UnitExperiment {
			return unitPayload{tables: u.exper.Run(cfg)}
		}
		return unitPayload{row: u.runCell(cfg)}
	}
	var fut *pool.Future[unitPayload]
	if u.Coordinator {
		fut = pool.GoFree(p, run)
	} else {
		fut = pool.Go(p, run)
	}
	return &pending{unit: u, fut: fut, acc: acc, obs: uo}
}

// finish waits for the unit and assembles its result, exporting trace
// and metrics files into obsDir (when non-empty). Runs on the merging
// goroutine, strictly in unit order.
func (pd *pending) finish(obsDir string) (*UnitResult, error) {
	payload := pd.fut.Wait()
	u := pd.unit
	res := &UnitResult{
		ID: u.ID, Kind: string(u.Kind),
		Tables: payload.tables, Row: payload.row,
		Summary: pd.acc.Summary(u.ExpID),
	}
	if res.Summary != nil {
		res.Events = res.Summary.Events
	}
	keys := pd.obs.sortedKeys()
	res.Sims = len(keys)
	var totalProf sim.Prof
	var autopsy strings.Builder
	for _, k := range keys {
		if pr := pd.obs.profs[k]; pr != nil {
			for i := range pr.Counts {
				totalProf.Counts[i] += pr.Counts[i]
			}
		}
		if ck := pd.obs.checkers[k]; ck != nil {
			res.CheckEvents += ck.Events()
			res.Violations += ck.Violations()
			if ck.Violations() > 0 {
				fmt.Fprintf(&autopsy, "autopsy %s\n", k)
				if err := ck.Finish().WriteText(&autopsy); err != nil {
					return nil, err
				}
			}
		}
		if tr := pd.obs.tracers[k]; tr != nil {
			rel := filepath.Join("traces", sanitize(k.String())+".jsonl")
			res.TraceFiles = append(res.TraceFiles, rel)
			if obsDir != "" {
				if err := writeFileWith(filepath.Join(obsDir, rel), tr.WriteJSONL); err != nil {
					return nil, err
				}
			}
		}
		if m := pd.obs.meters[k]; m != nil {
			rel := filepath.Join("metrics", sanitize(k.String())+".csv")
			res.MetricsFiles = append(res.MetricsFiles, rel)
			if obsDir != "" {
				if err := writeFileWith(filepath.Join(obsDir, rel), m.WriteCSV); err != nil {
					return nil, err
				}
			}
		}
	}
	res.Autopsy = autopsy.String()
	for c := sim.Comp(0); c < sim.NumComps; c++ {
		if totalProf.Counts[c] > 0 {
			res.Comps = append(res.Comps, CompCount{Comp: c.String(), Events: totalProf.Counts[c]})
		}
	}
	return res, nil
}

func sanitize(id string) string { return strings.ReplaceAll(id, "/", "_") }

func writeFileWith(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var b strings.Builder
	if err := write(&b); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// digestOf is the canonical content hash of a unit result.
func digestOf(res *UnitResult) (string, []byte, error) {
	raw, err := json.Marshal(res)
	if err != nil {
		return "", nil, err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), raw, nil
}

// checkpoint is the on-disk per-unit completion record.
type checkpoint struct {
	Version int             `json:"version"`
	Unit    string          `json:"unit"`
	Digest  string          `json:"digest"`
	Result  json.RawMessage `json:"result"`
}

func checkpointPath(dir, unitID string) string {
	return filepath.Join(dir, "checkpoints", sanitize(unitID)+".json")
}

// loadCheckpoint restores a unit's cached result. A missing, truncated or
// digest-mismatched checkpoint (a real kill can leave one) is treated as
// absent — the unit simply re-executes deterministically.
func loadCheckpoint(dir, unitID string) (*UnitResult, string) {
	raw, err := os.ReadFile(checkpointPath(dir, unitID))
	if err != nil {
		return nil, ""
	}
	var ck checkpoint
	if json.Unmarshal(raw, &ck) != nil || ck.Version != 1 || ck.Unit != unitID {
		return nil, ""
	}
	var res UnitResult
	if json.Unmarshal(ck.Result, &res) != nil {
		return nil, ""
	}
	digest, _, err := digestOf(&res)
	if err != nil || digest != ck.Digest {
		return nil, ""
	}
	return &res, digest
}

// saveCheckpoint writes the record atomically (tmp + rename) so a kill
// mid-write never leaves a checkpoint that passes validation.
func saveCheckpoint(dir, unitID, digest string, raw []byte) error {
	path := checkpointPath(dir, unitID)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(checkpoint{Version: 1, Unit: unitID, Digest: digest, Result: raw}, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// lockFile pins a run directory to one campaign document.
type lockFile struct {
	Format    int     `json:"format"`
	Campaign  string  `json:"campaign"`
	DocSHA256 string  `json:"doc_sha256"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
}

func checkLock(dir string, want lockFile) error {
	path := filepath.Join(dir, "campaign.lock.json")
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		blob, merr := json.MarshalIndent(want, "", " ")
		if merr != nil {
			return merr
		}
		return os.WriteFile(path, append(blob, '\n'), 0o644)
	}
	if err != nil {
		return err
	}
	var got lockFile
	if err := json.Unmarshal(raw, &got); err != nil {
		return fmt.Errorf("unreadable %s: %w", path, err)
	}
	if got != want {
		return fmt.Errorf("run dir %s holds a different campaign (doc %s seed=%d scale=%g); use a fresh -out dir",
			dir, got.DocSHA256[:12], got.Seed, got.Scale)
	}
	return nil
}

// Run executes a compiled campaign. docBytes is the raw source document
// (hashed into the lock file and manifest, copied into the bundle).
func Run(c *Campaign, docBytes []byte, opts Options) (*Report, error) {
	doc := c.Doc
	docSum := sha256.Sum256(docBytes)
	docSHA := hex.EncodeToString(docSum[:])
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		lock := lockFile{Format: 1, Campaign: doc.Name, DocSHA256: docSHA, Seed: doc.Seed, Scale: doc.Scale}
		if err := checkLock(opts.Dir, lock); err != nil {
			return nil, err
		}
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	p := pool.New(workers)

	rep := &Report{
		Name:    doc.Name,
		Results: make([]*UnitResult, len(c.Units)),
		Digests: make([]string, len(c.Units)),
	}
	pendings := make([]*pending, len(c.Units))
	for i, u := range c.Units {
		if opts.Dir != "" {
			if res, digest := loadCheckpoint(opts.Dir, u.ID); res != nil {
				rep.Results[i], rep.Digests[i] = res, digest
				rep.Cached++
				continue
			}
		}
		pendings[i] = submitUnit(p, doc, u)
	}

	for i, u := range c.Units {
		pd := pendings[i]
		if pd == nil {
			continue // cached
		}
		res, err := pd.finish(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("unit %s: %w", u.ID, err)
		}
		digest, raw, err := digestOf(res)
		if err != nil {
			return nil, fmt.Errorf("unit %s: %w", u.ID, err)
		}
		if opts.Dir != "" {
			if err := saveCheckpoint(opts.Dir, u.ID, digest, raw); err != nil {
				return nil, fmt.Errorf("unit %s: %w", u.ID, err)
			}
		}
		rep.Results[i], rep.Digests[i] = res, digest
		rep.Executed++
		if opts.AbortAfter > 0 && rep.Executed >= opts.AbortAfter && i < len(c.Units)-1 {
			rep.Aborted = true
			return rep, ErrAborted
		}
	}

	for _, res := range rep.Results {
		rep.Violations += res.Violations
	}
	rep.ExpectFailures = evalExpect(c, rep.Results)

	if opts.Dir != "" {
		if err := writeBundle(opts.Dir, c, docBytes, docSHA, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// RenderTables renders every unit's tables plus one assembled table per
// scenario — the bundle's tables.txt and dcpbench -campaign's stdout.
func RenderTables(c *Campaign, results []*UnitResult) string {
	var b strings.Builder
	doc := c.Doc
	fmt.Fprintf(&b, "# campaign %s (seed=%d scale=%.2f)\n\n", doc.Name, doc.Seed, doc.Scale)
	byID := map[string]*UnitResult{}
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, u := range c.Units {
		if u.Kind != UnitExperiment {
			continue
		}
		r := byID[u.ID]
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "### %s — %s\n\n", u.ID, u.Desc)
		for _, t := range r.Tables {
			fmt.Fprintln(&b, t.String())
		}
	}
	for _, sc := range doc.Scenarios {
		t := &stats.Table{
			Name:    fmt.Sprintf("Campaign %s: %s on %s", sc.ID, sc.Workload, sc.Topology),
			Columns: scenarioColumns(sc),
		}
		for _, u := range c.Units {
			if u.Kind != UnitCell || u.sc != sc {
				continue
			}
			if r := byID[u.ID]; r != nil {
				t.Rows = append(t.Rows, r.Row)
			}
		}
		fmt.Fprintf(&b, "### %s — campaign scenario (%d cells)\n\n", sc.ID, len(t.Rows))
		fmt.Fprintln(&b, t.String())
	}
	return b.String()
}

// renderStats merges per-unit summaries by experiment id into the same
// sorted CSV exp.StatsAccumulator writes.
func renderStats(c *Campaign, results []*UnitResult) string {
	byExp := map[string]*stats.RunSummary{}
	byID := map[string]*UnitResult{}
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, u := range c.Units {
		r := byID[u.ID]
		if r == nil || r.Summary == nil {
			continue
		}
		cur := byExp[u.ExpID]
		if cur == nil {
			cur = &stats.RunSummary{}
			byExp[u.ExpID] = cur
		}
		cur.Merge(r.Summary)
	}
	ids := make([]string, 0, len(byExp))
	for id := range byExp {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	fmt.Fprintln(&b, stats.RunSummaryCSVHeader)
	var total stats.RunSummary
	for _, id := range ids {
		total.Merge(byExp[id])
		byExp[id].WriteCSVRow(&b, id)
	}
	total.WriteCSVRow(&b, "TOTAL")
	return b.String()
}

// renderChecks writes one verdict line per unit in unit order, autopsies
// inline — the campaign twin of dcpbench -check output.
func renderChecks(c *Campaign, results []*UnitResult) string {
	var b strings.Builder
	byID := map[string]*UnitResult{}
	for _, r := range results {
		byID[r.ID] = r
	}
	for _, u := range c.Units {
		r := byID[u.ID]
		if r == nil {
			continue
		}
		verdict := "ok"
		if r.Violations > 0 {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "check %-12s %-8s sims=%d events=%d violations=%d\n",
			r.ID, verdict, r.Sims, r.CheckEvents, r.Violations)
		b.WriteString(r.Autopsy)
	}
	return b.String()
}

// BenchSnapshot is the deterministic half of a BENCH record: simulated
// events per unit. Wall-clock throughput is deliberately absent — it
// would break resumed-bundle byte-identity — and can be recomputed from
// events/s of any live dcpbench run. Exported (with Manifest) as the
// bundle surface the diff engine in internal/obs/diff loads.
type BenchSnapshot struct {
	Campaign    string      `json:"campaign"`
	Seed        int64       `json:"seed"`
	Scale       float64     `json:"scale"`
	TotalEvents int64       `json:"total_events"`
	TotalSims   int64       `json:"total_sims"`
	Units       []BenchUnit `json:"units"`
}

// BenchUnit is one unit's slice of a BenchSnapshot.
type BenchUnit struct {
	ID     string      `json:"id"`
	Sims   int         `json:"sims"`
	Events int64       `json:"events"`
	Comps  []CompCount `json:"comps,omitempty"`
}

// Manifest is the bundle's provenance record: enough to re-execute and
// re-verify any single unit by id (Recheck does exactly that), and the
// per-unit digest index a bundle diff aligns on.
type Manifest struct {
	Campaign       string         `json:"campaign"`
	DocSHA256      string         `json:"doc_sha256"`
	GoVersion      string         `json:"go_version"`
	BinarySHA256   string         `json:"binary_sha256,omitempty"`
	Seed           int64          `json:"seed"`
	Scale          float64        `json:"scale"`
	Units          []ManifestUnit `json:"units"`
	Violations     int64          `json:"violations"`
	ExpectFailures []string       `json:"expect_failures,omitempty"`
}

// ManifestUnit is one unit's provenance row.
type ManifestUnit struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	Digest     string `json:"sha256"`
	Events     int64  `json:"events"`
	Sims       int    `json:"sims"`
	Violations int64  `json:"violations"`
}

// LoadManifest reads a completed bundle's manifest.json.
func LoadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("no manifest in %s (campaign incomplete?): %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("unreadable manifest in %s: %w", dir, err)
	}
	return &man, nil
}

// LoadBenchSnapshot reads a completed bundle's bench.json.
func LoadBenchSnapshot(dir string) (*BenchSnapshot, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "bench.json"))
	if err != nil {
		return nil, fmt.Errorf("no bench snapshot in %s: %w", dir, err)
	}
	var bs BenchSnapshot
	if err := json.Unmarshal(raw, &bs); err != nil {
		return nil, fmt.Errorf("unreadable bench snapshot in %s: %w", dir, err)
	}
	return &bs, nil
}

// LoadCheckpoint restores unit unitID's checkpointed result from a run
// directory, verifying its recorded digest; a missing, truncated or
// digest-mismatched checkpoint returns (nil, ""). The digest returned is
// the unit's canonical content hash, equal to its Manifest entry.
func LoadCheckpoint(dir, unitID string) (*UnitResult, string) {
	return loadCheckpoint(dir, unitID)
}

// binaryDigest hashes the running executable — recorded so a bundle can
// be tied back to the exact binary that produced it. Best-effort: an
// un-stattable executable just omits the field.
func binaryDigest() string {
	path, err := os.Executable()
	if err != nil {
		return ""
	}
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	//lint:allow iocheck read-only digest descriptor: nothing was written, a Close error cannot lose data
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeBundle(dir string, c *Campaign, docBytes []byte, docSHA string, rep *Report) error {
	if err := os.WriteFile(filepath.Join(dir, "campaign.doc"), docBytes, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "tables.txt"), []byte(RenderTables(c, rep.Results)), 0o644); err != nil {
		return err
	}
	if c.Doc.Observe.Stats {
		if err := os.WriteFile(filepath.Join(dir, "stats.csv"), []byte(renderStats(c, rep.Results)), 0o644); err != nil {
			return err
		}
	}
	if c.Doc.Observe.Check {
		if err := os.WriteFile(filepath.Join(dir, "checks.txt"), []byte(renderChecks(c, rep.Results)), 0o644); err != nil {
			return err
		}
	}

	bench := BenchSnapshot{Campaign: c.Doc.Name, Seed: c.Doc.Seed, Scale: c.Doc.Scale}
	man := Manifest{
		Campaign:       c.Doc.Name,
		DocSHA256:      docSHA,
		GoVersion:      runtime.Version(),
		BinarySHA256:   binaryDigest(),
		Seed:           c.Doc.Seed,
		Scale:          c.Doc.Scale,
		Violations:     rep.Violations,
		ExpectFailures: rep.ExpectFailures,
	}
	for i, u := range c.Units {
		r := rep.Results[i]
		bench.Units = append(bench.Units, BenchUnit{ID: u.ID, Sims: r.Sims, Events: r.Events, Comps: r.Comps})
		bench.TotalEvents += r.Events
		bench.TotalSims += int64(r.Sims)
		man.Units = append(man.Units, ManifestUnit{
			ID: u.ID, Kind: string(u.Kind), Digest: rep.Digests[i],
			Events: r.Events, Sims: r.Sims, Violations: r.Violations,
		})
	}
	if err := writeJSONFile(filepath.Join(dir, "bench.json"), bench); err != nil {
		return err
	}
	return writeJSONFile(filepath.Join(dir, "manifest.json"), man)
}

func writeJSONFile(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// RecheckResult reports one unit's provenance re-verification.
type RecheckResult struct {
	UnitID     string
	Recorded   string
	Recomputed string
	Match      bool
}

// Recheck re-executes a single unit of a completed run serially and
// compares its fresh result digest against the manifest — the "re-verify
// any cell from the bundle alone" half of the provenance contract.
func Recheck(c *Campaign, dir, unitID string) (*RecheckResult, error) {
	man, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	recorded := ""
	for _, mu := range man.Units {
		if mu.ID == unitID {
			recorded = mu.Digest
		}
	}
	if recorded == "" {
		return nil, fmt.Errorf("unit %q not in manifest (units: %d)", unitID, len(man.Units))
	}
	var unit *Unit
	for _, u := range c.Units {
		if u.ID == unitID {
			unit = u
		}
	}
	if unit == nil {
		return nil, fmt.Errorf("unit %q not in compiled campaign", unitID)
	}
	pd := submitUnit(nil, c.Doc, unit) // nil pool → inline serial execution
	res, err := pd.finish("")
	if err != nil {
		return nil, err
	}
	digest, _, err := digestOf(res)
	if err != nil {
		return nil, err
	}
	return &RecheckResult{
		UnitID: unitID, Recorded: recorded, Recomputed: digest,
		Match: digest == recorded,
	}, nil
}
