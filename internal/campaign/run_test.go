package campaign

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"dcpsim/internal/exp"
)

// miniDoc is the runner-test campaign: 2 transports × 2 loss values = 4
// cells, one sim each, with the first cell exporting trace + metrics.
// Small enough that the full resume matrix runs in well under a second.
const miniDoc = `
name = "mini"
seed = 11
scale = 0.02

[observe]
check = true
stats = true
trace_cells = ["mini/c000/s00"]
metrics_cells = ["mini/c000/s00"]

[[scenario]]
id = "mini"
transports = ["dcp", "cx5"]
size_mb = 1
horizon_ms = 20
seeds = [11]

[scenario.sweep]
loss = [0, 0.01]
`

func compileMini(t *testing.T) (*Campaign, []byte) {
	t.Helper()
	data := []byte(miniDoc)
	doc, diags := Parse(data, FormatTOML)
	if len(diags) > 0 {
		t.Fatalf("miniDoc: %v", diags)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Units) != 4 {
		t.Fatalf("miniDoc compiled to %d units, want 4", len(c.Units))
	}
	return c, data
}

// snapshotDir maps every file under dir to its contents, keyed by
// slash-separated relative path.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func assertDirsIdentical(t *testing.T, dirA, dirB string) {
	t.Helper()
	a, b := snapshotDir(t, dirA), snapshotDir(t, dirB)
	for rel, data := range a {
		other, ok := b[rel]
		if !ok {
			t.Errorf("%s present in %s but missing in %s", rel, dirA, dirB)
			continue
		}
		if !bytes.Equal(data, other) {
			t.Errorf("%s differs between runs:\nA:\n%s\nB:\n%s", rel, data, other)
		}
	}
	for rel := range b {
		if _, ok := a[rel]; !ok {
			t.Errorf("%s present in %s but missing in %s", rel, dirB, dirA)
		}
	}
}

// TestWorkerInvariance pins the determinism contract: the same campaign
// produces identical digests and rendered tables at any worker count.
func TestWorkerInvariance(t *testing.T) {
	c, data := compileMini(t)
	rep1, err := Run(c, data, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := Run(c, data, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Digests) != len(rep4.Digests) {
		t.Fatalf("digest counts differ: %d vs %d", len(rep1.Digests), len(rep4.Digests))
	}
	for i := range rep1.Digests {
		if rep1.Digests[i] != rep4.Digests[i] {
			t.Errorf("unit %s digest differs across worker counts: %s vs %s",
				c.Units[i].ID, rep1.Digests[i], rep4.Digests[i])
		}
	}
	if t1, t4 := RenderTables(c, rep1.Results), RenderTables(c, rep4.Results); t1 != t4 {
		t.Errorf("rendered tables differ across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", t1, t4)
	}
}

// TestResumeEquivalence is the headline runner contract: abort a
// campaign after 2 of 4 fresh units, resume it at a different worker
// count, and the finished bundle is byte-identical to an uninterrupted
// run — every checkpoint, table, CSV, trace, metric and manifest byte.
func TestResumeEquivalence(t *testing.T) {
	c, data := compileMini(t)
	dirFull, dirResumed := t.TempDir(), t.TempDir()

	if _, err := Run(c, data, Options{Dir: dirFull, Workers: 4}); err != nil {
		t.Fatal(err)
	}

	rep, err := Run(c, data, Options{Dir: dirResumed, Workers: 4, AbortAfter: 2})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("aborted run: err = %v, want ErrAborted", err)
	}
	if !rep.Aborted || rep.Executed != 2 {
		t.Fatalf("aborted run: Aborted=%v Executed=%d, want true/2", rep.Aborted, rep.Executed)
	}
	cks, err := filepath.Glob(filepath.Join(dirResumed, "checkpoints", "*.json"))
	if err != nil || len(cks) != 2 {
		t.Fatalf("aborted run left %d checkpoints, want 2 (%v)", len(cks), err)
	}
	if _, err := os.Stat(filepath.Join(dirResumed, "manifest.json")); !os.IsNotExist(err) {
		t.Fatalf("aborted run must not write a manifest, stat err = %v", err)
	}

	rep, err = Run(c, data, Options{Dir: dirResumed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached != 2 || rep.Executed != 2 {
		t.Fatalf("resumed run: Cached=%d Executed=%d, want 2/2", rep.Cached, rep.Executed)
	}
	assertDirsIdentical(t, dirFull, dirResumed)
}

// TestCorruptCheckpointReexecutes: a truncated checkpoint (what a real
// kill mid-write could leave without the atomic rename) is treated as
// absent and the unit re-runs to the same digest.
func TestCorruptCheckpointReexecutes(t *testing.T) {
	c, data := compileMini(t)
	dir := t.TempDir()
	rep, err := Run(c, data, Options{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ckPath := checkpointPath(dir, c.Units[1].ID)
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(c, data, Options{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cached != 3 || rep2.Executed != 1 {
		t.Fatalf("after corruption: Cached=%d Executed=%d, want 3/1", rep2.Cached, rep2.Executed)
	}
	if rep2.Digests[1] != rep.Digests[1] {
		t.Fatalf("re-executed unit digest %s != original %s", rep2.Digests[1], rep.Digests[1])
	}
}

// TestLockRejectsForeignDoc: a run dir is pinned to one document; a
// different doc in the same dir is refused instead of mixing results.
func TestLockRejectsForeignDoc(t *testing.T) {
	c, data := compileMini(t)
	dir := t.TempDir()
	if _, err := Run(c, data, Options{Dir: dir, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	other := append([]byte(nil), data...)
	other = append(other, []byte("# edited\n")...)
	if _, err := Run(c, other, Options{Dir: dir, Workers: 1}); err == nil {
		t.Fatal("Run accepted a modified document in a locked run dir")
	}
}

// TestRecheck: the manifest digest of any unit can be re-verified by
// re-executing just that unit from the document.
func TestRecheck(t *testing.T) {
	c, data := compileMini(t)
	dir := t.TempDir()
	if _, err := Run(c, data, Options{Dir: dir, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"mini/c000", "mini/c003"} {
		rc, err := Recheck(c, dir, id)
		if err != nil {
			t.Fatal(err)
		}
		if !rc.Match {
			t.Errorf("recheck %s: recomputed %s != recorded %s", id, rc.Recomputed, rc.Recorded)
		}
	}
	if _, err := Recheck(c, dir, "mini/c099"); err == nil {
		t.Error("Recheck accepted a unit id absent from the manifest")
	}
}

// TestRegistryCampaignParity pins that a campaign listing a registry
// experiment produces exactly what a direct exp run produces — same
// tables, same RunSummary — so the DSL adds no third execution path.
func TestRegistryCampaignParity(t *testing.T) {
	src := `
name = "parity"
seed = 11
scale = 0.02
experiments = ["fig10"]

[observe]
stats = true
`
	doc, diags := Parse([]byte(src), FormatTOML)
	if len(diags) > 0 {
		t.Fatal(diags)
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(c, []byte(src), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(rep.Results))
	}
	res := rep.Results[0]

	e := exp.ByID("fig10")
	if e == nil {
		t.Fatal("registry experiment fig10 missing")
	}
	acc := exp.NewStatsAccumulator()
	cfg := exp.Config{Seed: 11, Scale: 0.02}.WithExperiment("fig10")
	cfg.Stats = acc
	direct := e.Run(cfg)

	if len(res.Tables) != len(direct) {
		t.Fatalf("campaign produced %d tables, direct run %d", len(res.Tables), len(direct))
	}
	for i := range direct {
		if got, want := res.Tables[i].String(), direct[i].String(); got != want {
			t.Errorf("table %d differs:\ncampaign:\n%s\ndirect:\n%s", i, got, want)
		}
	}
	directSum := acc.Summary("fig10")
	if res.Summary == nil || directSum == nil {
		t.Fatalf("missing summaries: campaign=%v direct=%v", res.Summary, directSum)
	}
	if *res.Summary != *directSum {
		t.Errorf("summaries differ:\ncampaign: %+v\ndirect:   %+v", *res.Summary, *directSum)
	}
}

// TestRegistryExampleCoversAll guards the shipped registry campaign
// against drift: it must list exactly the compiled-in experiments, in
// registry order, so "campaign twin of dcpbench -run all" stays true.
func TestRegistryExampleCoversAll(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "campaigns", "registry.toml"))
	if err != nil {
		t.Fatal(err)
	}
	doc, diags := Parse(data, FormatTOML)
	if len(diags) > 0 {
		t.Fatal(diags)
	}
	all := exp.All()
	if len(doc.Experiments) != len(all) {
		t.Fatalf("registry.toml lists %d experiments, registry has %d", len(doc.Experiments), len(all))
	}
	for i, e := range all {
		if doc.Experiments[i] != e.ID {
			t.Errorf("registry.toml[%d] = %q, registry order has %q", i, doc.Experiments[i], e.ID)
		}
	}
}
