package topo

import (
	"testing"

	"dcpsim/internal/fabric"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/units"
)

// pingTransport emits one scripted packet per destination and records
// arrivals.
type pingTransport struct {
	out []*packet.Packet
	got map[packet.NodeID]int
	id  packet.NodeID
}

func (p *pingTransport) Handle(pkt *packet.Packet) {
	if p.got == nil {
		p.got = map[packet.NodeID]int{}
	}
	p.got[pkt.Src]++
}

func (p *pingTransport) Dequeue(_ units.Time, paused bool) *packet.Packet {
	if paused || len(p.out) == 0 {
		return nil
	}
	pkt := p.out[0]
	p.out = p.out[1:]
	return pkt
}

func installPings(net *Network) []*pingTransport {
	trs := make([]*pingTransport, len(net.Hosts))
	for i, h := range net.Hosts {
		tr := &pingTransport{id: h.ID()}
		trs[i] = tr
		h.SetTransport(tr)
	}
	return trs
}

func runFullMesh(t *testing.T, net *Network, trs []*pingTransport) {
	t.Helper()
	for i, tr := range trs {
		for j := range trs {
			if i == j {
				continue
			}
			p := packet.DataPacket(uint64(i*1000+j), net.Hosts[i].ID(), net.Hosts[j].ID(), 0, 0, 100)
			tr.out = append(tr.out, p)
		}
		net.Hosts[i].Kick()
	}
	net.Eng.Run(0)
	for j, tr := range trs {
		for i := range trs {
			if i == j {
				continue
			}
			if tr.got[net.Hosts[i].ID()] != 1 {
				t.Fatalf("host %d did not receive exactly one packet from %d (got %d)",
					j, i, tr.got[net.Hosts[i].ID()])
			}
		}
	}
}

func TestDirectConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	net := Direct(eng, 100*units.Gbps, units.Microsecond)
	if len(net.Hosts) != 2 || len(net.Switches) != 0 {
		t.Fatal("direct shape")
	}
	trs := installPings(net)
	runFullMesh(t, net, trs)
	if net.BaseRTT <= 2*units.Microsecond {
		t.Fatal("BaseRTT must include serialization")
	}
}

func TestDumbbellConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultDumbbell()
	net := Dumbbell(eng, cfg)
	if len(net.Hosts) != 16 || len(net.Switches) != 2 {
		t.Fatal("dumbbell shape")
	}
	trs := installPings(net)
	runFullMesh(t, net, trs)
}

func TestDumbbellCrossRatesAndDelays(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultDumbbell()
	cfg.HostsPerSwitch = 1
	cfg.CrossLinks = 2
	cfg.CrossRates = []units.Rate{100 * units.Gbps, 10 * units.Gbps}
	cfg.CrossDelays = []units.Time{0, 50 * units.Microsecond}
	net := Dumbbell(eng, cfg)
	// BaseRTT uses the worst cross delay.
	if net.BaseRTT < 100*units.Microsecond {
		t.Fatalf("BaseRTT %v must cover the 50us link", net.BaseRTT)
	}
	trs := installPings(net)
	runFullMesh(t, net, trs)
}

func TestClosConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultClos()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 4, 4, 4
	net := Clos(eng, cfg)
	if len(net.Hosts) != 16 || len(net.Switches) != 8 {
		t.Fatal("clos shape")
	}
	trs := installPings(net)
	runFullMesh(t, net, trs)
}

func TestClosECMPConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultClos()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 4, 4, 4
	cfg.Switch.LB = fabric.LBECMP
	net := Clos(eng, cfg)
	trs := installPings(net)
	runFullMesh(t, net, trs)
}

func TestClosLosslessThresholds(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultClos()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 4, 4, 4
	cfg.Switch.Lossless = true
	cfg.Switch.Trimming = false
	net := Clos(eng, cfg)
	for _, sw := range net.Switches {
		c := sw.Config()
		if !c.Lossless {
			t.Fatal("lossless flag lost")
		}
		if c.PFCXoff <= 0 || c.PFCXon <= 0 || c.PFCXon >= c.PFCXoff {
			t.Fatalf("bad PFC thresholds: xoff=%d xon=%d", c.PFCXoff, c.PFCXon)
		}
	}
	trs := installPings(net)
	runFullMesh(t, net, trs)
}

func TestClosIntraRackStaysLocal(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultClos()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 4, 4, 4
	net := Clos(eng, cfg)
	tr := installPings(net)
	// Host 0 -> host 1 share leaf 0: one switch hop only.
	p := packet.DataPacket(1, net.Hosts[0].ID(), net.Hosts[1].ID(), 0, 0, 100)
	tr[0].out = append(tr[0].out, p)
	net.Hosts[0].Kick()
	eng.Run(0)
	if tr[1].got[net.Hosts[0].ID()] != 1 {
		t.Fatal("intra-rack delivery failed")
	}
	if p.Hops != 1 {
		t.Fatalf("intra-rack path took %d switch hops, want 1", p.Hops)
	}
}

func TestClosCrossRackHops(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultClos()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 4, 4, 4
	net := Clos(eng, cfg)
	tr := installPings(net)
	p := packet.DataPacket(1, net.Hosts[0].ID(), net.Hosts[5].ID(), 0, 0, 100)
	tr[0].out = append(tr[0].out, p)
	net.Hosts[0].Kick()
	eng.Run(0)
	if p.Hops != 3 {
		t.Fatalf("cross-rack path took %d switch hops, want 3 (leaf-spine-leaf)", p.Hops)
	}
}

func TestCountersAggregate(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultClos()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 2
	net := Clos(eng, cfg)
	trs := installPings(net)
	runFullMesh(t, net, trs)
	c := net.Counters()
	if c.RxPackets == 0 {
		t.Fatal("aggregate counters empty")
	}
}

func TestBaseRTTScalesWithSpineDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultClos()
	cfg.Leaves, cfg.Spines, cfg.HostsPerLeaf = 2, 2, 2
	near := Clos(eng, cfg).BaseRTT
	cfg2 := cfg
	cfg2.SpineDelay = 500 * units.Microsecond
	far := Clos(sim.NewEngine(1), cfg2).BaseRTT
	if far < near+1900*units.Microsecond {
		t.Fatalf("cross-DC RTT %v vs %v", far, near)
	}
}
