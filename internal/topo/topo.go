// Package topo builds the simulated networks used in the paper's
// evaluation: a direct back-to-back pair (Fig. 8), the 2×8 dumbbell testbed
// with parallel cross links (Figs. 9–12, long-haul), and the two-layer CLOS
// with 16 spines, 16 leaves and 256 hosts (§6.2). It wires NICs, switches,
// routing tables and PFC thresholds.
package topo

import (
	"fmt"

	"dcpsim/internal/fabric"
	"dcpsim/internal/faults"
	"dcpsim/internal/nic"
	"dcpsim/internal/obs"
	"dcpsim/internal/packet"
	"dcpsim/internal/sim"
	"dcpsim/internal/transport/base"
	"dcpsim/internal/units"
)

// Network is a built topology.
type Network struct {
	Eng      *sim.Engine
	Hosts    []*nic.NIC
	Switches []*fabric.Switch

	// BaseRTT is the unloaded round-trip time between the farthest host
	// pair, including per-hop store-and-forward of one MTU-sized packet.
	BaseRTT units.Time
	// HostRate is the NIC line rate.
	HostRate units.Rate

	Transports []base.Transport

	// links names every physical link for fault injection: "host<i>" for
	// host attachments, "cross<i>" for dumbbell cross links,
	// "leaf<l>-spine<s>" for CLOS fabric links, "pair" for a direct pair.
	links     map[string][]faults.LinkEnd
	linkOrder []string

	// trace is the attached observability sink (nil = off); Inject forwards
	// it so fault events land in the same trace as packet events.
	trace *obs.Tracer
}

// addLink registers a named link's directional ends.
func (n *Network) addLink(name string, ends ...faults.LinkEnd) {
	if n.links == nil {
		n.links = make(map[string][]faults.LinkEnd)
	}
	if _, ok := n.links[name]; !ok {
		n.linkOrder = append(n.linkOrder, name)
	}
	n.links[name] = append(n.links[name], ends...)
}

// LinkNames lists the injectable link names in construction order.
func (n *Network) LinkNames() []string {
	return append([]string(nil), n.linkOrder...)
}

// LinkEnds returns the directional ends of a named link (nil if unknown).
func (n *Network) LinkEnds(name string) []faults.LinkEnd { return n.links[name] }

// Inject validates a fault plan against this network and schedules its
// events on the engine.
func (n *Network) Inject(p *faults.Plan) (*faults.Injector, error) {
	return faults.Inject(n.Eng, p, faults.Targets{Links: n.links, Switches: n.Switches, Trace: n.trace})
}

// Observe attaches the observability sinks across the fabric: every switch
// and host NIC gets the tracer, and (when m is non-nil) the registry gains
// per-egress queue-depth gauges, shared-buffer occupancy, fabric-wide trim /
// HO / drop counters with their rates, and a host receive-goodput series.
// Sinks only record — attaching them never changes simulation behaviour.
// Call before the simulation runs so series cover the whole run.
func (n *Network) Observe(tr *obs.Tracer, m *obs.Metrics) {
	n.trace = tr
	for _, h := range n.Hosts {
		h.SetTrace(tr)
	}
	for _, s := range n.Switches {
		s.SetTrace(tr)
	}
	if m == nil {
		return
	}
	for si, s := range n.Switches {
		s := s
		m.Gauge(fmt.Sprintf("sw%d.buf_bytes", si), func() float64 { return float64(s.BufUsed()) })
		for ei := 0; ei < s.NumEgress(); ei++ {
			e := s.EgressAt(ei)
			m.Gauge(fmt.Sprintf("sw%d.eg%d.dataq_bytes", si, ei),
				func() float64 { return float64(e.QueuedDataBytes()) })
			m.Gauge(fmt.Sprintf("sw%d.eg%d.ctrlq_bytes", si, ei),
				func() float64 { return float64(e.QueuedCtrlBytes()) })
		}
	}
	m.Gauge("fabric.trimmed_pkts", func() float64 { return float64(n.Counters().TrimmedPkts) })
	m.RatePerSec("fabric.trim_rate_pps", func() float64 { return float64(n.Counters().TrimmedPkts) })
	m.Gauge("fabric.ho_enqueued", func() float64 { return float64(n.Counters().HOEnqueued) })
	m.RatePerSec("fabric.ho_rate_pps", func() float64 { return float64(n.Counters().HOEnqueued) })
	m.Gauge("fabric.dropped_data", func() float64 { return float64(n.Counters().DroppedData) })
	m.Gauge("fabric.dropped_ho", func() float64 { return float64(n.Counters().DroppedHO) })
	hosts := n.Hosts
	m.RatePerSec("hosts.rx_gbps", func() float64 {
		var b int64
		for _, h := range hosts {
			b += h.DeliveredBytes
		}
		return float64(b) * 8 / 1e9
	})
}

// Install builds one transport endpoint per host.
func (n *Network) Install(f base.Factory, env *base.Env) {
	env.Defaults()
	n.Transports = make([]base.Transport, len(n.Hosts))
	for i, h := range n.Hosts {
		tr := f(h, env)
		n.Transports[i] = tr
		h.SetTransport(tr)
	}
}

// TapAll attaches fn to every port in the network (host NICs and switch
// egresses) — a fabric-wide span port for packet capture and tracing.
func (n *Network) TapAll(fn func(p *packet.Packet)) {
	for _, h := range n.Hosts {
		if h.Port() != nil {
			h.Port().Tap = fn
		}
	}
	for _, s := range n.Switches {
		for i := 0; i < s.NumEgress(); i++ {
			s.EgressAt(i).Port.Tap = fn
		}
	}
}

// Counters sums switch counters across the fabric.
func (n *Network) Counters() fabric.SwitchCounters {
	var c fabric.SwitchCounters
	for _, s := range n.Switches {
		sc := s.Counters
		c.RxPackets += sc.RxPackets
		c.TrimmedPkts += sc.TrimmedPkts
		c.DroppedData += sc.DroppedData
		c.DroppedAck += sc.DroppedAck
		c.DroppedHO += sc.DroppedHO
		c.HOEnqueued += sc.HOEnqueued
		c.ECNMarked += sc.ECNMarked
		c.ForcedLosses += sc.ForcedLosses
		c.PauseOn += sc.PauseOn
		c.BlackoutDrops += sc.BlackoutDrops
		c.LinkDownDrops += sc.LinkDownDrops
		if sc.MaxBufUsed > c.MaxBufUsed {
			c.MaxBufUsed = sc.MaxBufUsed
		}
	}
	return c
}

// pfcThresholds sets XOFF/XON on a lossless switch config given the port
// count and worst-case per-ingress headroom (2×delay×rate in-flight bytes
// after a PAUSE).
func pfcThresholds(cfg *fabric.SwitchConfig, nPorts int, rate units.Rate, maxDelay units.Time) {
	headroom := 2*int(units.BytesIn(maxDelay, rate)) + 2*1600
	avail := cfg.BufferBytes - nPorts*headroom
	xoff := avail / (2 * nPorts)
	if xoff < 50*units.KB {
		xoff = 50 * units.KB
	}
	cfg.PFCXoff = xoff
	cfg.PFCXon = xoff / 2
}

// Direct builds two hosts wired back-to-back (the Fig. 8 perftest setup).
func Direct(eng *sim.Engine, rate units.Rate, delay units.Time) *Network {
	a := nic.New(eng, 0, rate)
	b := nic.New(eng, 1, rate)
	wab := fabric.Attach(eng, delay, b)
	wba := fabric.Attach(eng, delay, a)
	a.SetUplink(wab)
	b.SetUplink(wba)
	rtt := 2*delay + 2*units.TxTime(packet.DefaultMTU+100, rate)
	net := &Network{Eng: eng, Hosts: []*nic.NIC{a, b}, BaseRTT: rtt, HostRate: rate}
	net.addLink("pair",
		faults.LinkEnd{Wire: wab, Egress: -1},
		faults.LinkEnd{Wire: wba, Egress: -1})
	return net
}

// DumbbellConfig parameterizes the 2-switch testbed topology of Fig. 9.
type DumbbellConfig struct {
	HostsPerSwitch int
	CrossLinks     int
	HostRate       units.Rate
	// CrossRates optionally sets per-cross-link rates (Fig. 11's unequal
	// paths); nil means HostRate everywhere.
	CrossRates []units.Rate
	// CrossDelays optionally sets per-cross-link propagation delays (the
	// 10 km long-haul experiment); nil means HostDelay.
	CrossDelays []units.Time
	HostDelay   units.Time
	Switch      fabric.SwitchConfig
}

// DefaultDumbbell mirrors the paper's testbed: 8 FPGAs per switch, 8
// parallel 100 Gbps cross links, 1 µs host links.
func DefaultDumbbell() DumbbellConfig {
	return DumbbellConfig{
		HostsPerSwitch: 8,
		CrossLinks:     8,
		HostRate:       100 * units.Gbps,
		HostDelay:      1 * units.Microsecond,
		Switch:         fabric.DefaultSwitchConfig(),
	}
}

// Dumbbell builds the testbed topology.
func Dumbbell(eng *sim.Engine, cfg DumbbellConfig) *Network {
	h := cfg.HostsPerSwitch
	total := 2 * h
	hosts := make([]*nic.NIC, total)
	for i := range hosts {
		hosts[i] = nic.New(eng, packet.NodeID(i), cfg.HostRate)
	}
	swCfg := cfg.Switch
	maxCross := cfg.HostDelay
	for _, d := range cfg.CrossDelays {
		if d > maxCross {
			maxCross = d
		}
	}
	if swCfg.Lossless && swCfg.PFCXoff == 0 {
		pfcThresholds(&swCfg, h+cfg.CrossLinks, cfg.HostRate, maxCross)
	}
	s1 := fabric.NewSwitch(eng, packet.NodeID(total), swCfg)
	s2 := fabric.NewSwitch(eng, packet.NodeID(total+1), swCfg)
	sws := []*fabric.Switch{s1, s2}

	rtt := 2*(2*cfg.HostDelay+maxCross) + 6*units.TxTime(packet.DefaultMTU+100, cfg.HostRate)
	net := &Network{Eng: eng, Hosts: hosts, Switches: sws, BaseRTT: rtt, HostRate: cfg.HostRate}

	routes1 := make([][]int, total)
	routes2 := make([][]int, total)
	for side, sw := range sws {
		other := sws[1-side]
		routes := routes1
		if side == 1 {
			routes = routes2
		}
		// Host-facing ports.
		for i := 0; i < h; i++ {
			hostIdx := side*h + i
			n := hosts[hostIdx]
			up := fabric.Attach(eng, cfg.HostDelay, sw)
			n.SetUplink(up)
			dw := fabric.Attach(eng, cfg.HostDelay, n)
			down := sw.AddEgress(cfg.HostRate, dw)
			routes[hostIdx] = []int{down}
			net.addLink(fmt.Sprintf("host%d", hostIdx),
				faults.LinkEnd{Wire: up, Egress: -1},
				faults.LinkEnd{Wire: dw, Switch: sw, Egress: down})
		}
		// Cross links toward the other switch.
		for i := 0; i < cfg.CrossLinks; i++ {
			rate := cfg.HostRate
			if i < len(cfg.CrossRates) && cfg.CrossRates[i] > 0 {
				rate = cfg.CrossRates[i]
			}
			delay := cfg.HostDelay
			if i < len(cfg.CrossDelays) && cfg.CrossDelays[i] > 0 {
				delay = cfg.CrossDelays[i]
			}
			cw := fabric.Attach(eng, delay, other)
			up := sw.AddEgress(rate, cw)
			net.addLink(fmt.Sprintf("cross%d", i),
				faults.LinkEnd{Wire: cw, Switch: sw, Egress: up})
			for hostIdx := (1 - side) * h; hostIdx < (2-side)*h; hostIdx++ {
				routes[hostIdx] = append(routes[hostIdx], up)
			}
		}
	}
	s1.SetRoutes(routes1)
	s2.SetRoutes(routes2)
	return net
}

// ClosConfig parameterizes the two-layer CLOS of §6.2.
type ClosConfig struct {
	Spines, Leaves, HostsPerLeaf int
	HostRate                     units.Rate
	LinkRate                     units.Rate // leaf-spine rate
	HostDelay                    units.Time // host-leaf propagation
	SpineDelay                   units.Time // leaf-spine propagation (500 µs / 5 ms cross-DC)
	Switch                       fabric.SwitchConfig
}

// DefaultClos mirrors the paper: 16 spines, 16 leaves, 16 hosts per leaf,
// all links 100 Gbps with 1 µs propagation, 32 MB buffers.
func DefaultClos() ClosConfig {
	return ClosConfig{
		Spines: 16, Leaves: 16, HostsPerLeaf: 16,
		HostRate:   100 * units.Gbps,
		LinkRate:   100 * units.Gbps,
		HostDelay:  1 * units.Microsecond,
		SpineDelay: 1 * units.Microsecond,
		Switch:     fabric.DefaultSwitchConfig(),
	}
}

// Clos builds the CLOS topology. Host i lives under leaf i/HostsPerLeaf.
func Clos(eng *sim.Engine, cfg ClosConfig) *Network {
	nHosts := cfg.Leaves * cfg.HostsPerLeaf
	hosts := make([]*nic.NIC, nHosts)
	for i := range hosts {
		hosts[i] = nic.New(eng, packet.NodeID(i), cfg.HostRate)
	}

	leafCfg := cfg.Switch
	spineCfg := cfg.Switch
	if cfg.Switch.Lossless {
		if leafCfg.PFCXoff == 0 {
			pfcThresholds(&leafCfg, cfg.HostsPerLeaf+cfg.Spines, cfg.LinkRate, cfg.SpineDelay)
		}
		if spineCfg.PFCXoff == 0 {
			pfcThresholds(&spineCfg, cfg.Leaves, cfg.LinkRate, cfg.SpineDelay)
		}
	}

	leaves := make([]*fabric.Switch, cfg.Leaves)
	spines := make([]*fabric.Switch, cfg.Spines)
	for l := range leaves {
		leaves[l] = fabric.NewSwitch(eng, packet.NodeID(nHosts+l), leafCfg)
	}
	for s := range spines {
		spines[s] = fabric.NewSwitch(eng, packet.NodeID(nHosts+cfg.Leaves+s), spineCfg)
	}

	leafRoutes := make([][][]int, cfg.Leaves)
	spineRoutes := make([][][]int, cfg.Spines)
	for l := range leafRoutes {
		leafRoutes[l] = make([][]int, nHosts)
	}
	for s := range spineRoutes {
		spineRoutes[s] = make([][]int, nHosts)
	}

	sws := append(append([]*fabric.Switch{}, leaves...), spines...)
	rtt := 2*(2*cfg.HostDelay+2*cfg.SpineDelay) + 8*units.TxTime(packet.DefaultMTU+100, cfg.HostRate)
	net := &Network{Eng: eng, Hosts: hosts, Switches: sws, BaseRTT: rtt, HostRate: cfg.HostRate}

	// Host <-> leaf links.
	for i, h := range hosts {
		l := i / cfg.HostsPerLeaf
		uw := fabric.Attach(eng, cfg.HostDelay, leaves[l])
		h.SetUplink(uw)
		dw := fabric.Attach(eng, cfg.HostDelay, h)
		down := leaves[l].AddEgress(cfg.HostRate, dw)
		leafRoutes[l][i] = []int{down}
		net.addLink(fmt.Sprintf("host%d", i),
			faults.LinkEnd{Wire: uw, Egress: -1},
			faults.LinkEnd{Wire: dw, Switch: leaves[l], Egress: down})
	}
	// Leaf <-> spine links (full bipartite).
	for l, leaf := range leaves {
		for s, spine := range spines {
			uw := fabric.Attach(eng, cfg.SpineDelay, spine)
			dw := fabric.Attach(eng, cfg.SpineDelay, leaf)
			up := leaf.AddEgress(cfg.LinkRate, uw)
			down := spine.AddEgress(cfg.LinkRate, dw)
			net.addLink(fmt.Sprintf("leaf%d-spine%d", l, s),
				faults.LinkEnd{Wire: uw, Switch: leaf, Egress: up},
				faults.LinkEnd{Wire: dw, Switch: spine, Egress: down})
			// Every spine reaches hosts under leaf l through this down port.
			for i := l * cfg.HostsPerLeaf; i < (l+1)*cfg.HostsPerLeaf; i++ {
				spineRoutes[s][i] = []int{down}
			}
			// Leaf uses every uplink for hosts outside its rack.
			for i := 0; i < nHosts; i++ {
				if i/cfg.HostsPerLeaf != l {
					leafRoutes[l][i] = append(leafRoutes[l][i], up)
				}
			}
		}
	}
	for l, leaf := range leaves {
		leaf.SetRoutes(leafRoutes[l])
	}
	for s, spine := range spines {
		spine.SetRoutes(spineRoutes[s])
	}
	return net
}
