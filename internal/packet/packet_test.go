package packet

import "testing"

func TestDataPacketSizes(t *testing.T) {
	p := DataPacket(1, 2, 3, 10, 1, 1000)
	if p.Size != DataHeaderSize+RETHSize+1000 {
		t.Fatalf("size = %d", p.Size)
	}
	if p.Kind != KindData || p.Tag != TagData {
		t.Fatalf("kind/tag wrong: %v %v", p.Kind, p.Tag)
	}
	if p.PayloadBytes != 1000 || p.PSN != 10 || p.MSN != 1 {
		t.Fatal("fields not carried")
	}
}

func TestTrimMatchesPaperHOSize(t *testing.T) {
	p := DataPacket(1, 2, 3, 10, 1, 1000)
	p.Trim()
	if p.Size != 57 {
		t.Fatalf("HO packet must be 57 bytes (footnote 6), got %d", p.Size)
	}
	if p.Kind != KindHO || p.Tag != TagHO {
		t.Fatalf("trim must retag to HO: %v %v", p.Kind, p.Tag)
	}
	if p.PayloadBytes != 0 || !p.Trimmed {
		t.Fatal("payload must be removed and Trimmed set")
	}
	// Sequencing metadata survives trimming — that is the whole point.
	if p.PSN != 10 || p.MSN != 1 {
		t.Fatal("PSN/MSN must survive trimming")
	}
}

func TestBounceSwapsEndpoints(t *testing.T) {
	p := DataPacket(1, 2, 3, 10, 1, 1000)
	p.SrcQP, p.DstQP = 100, 200
	p.Hops = 3
	p.Trim()
	p.Bounce()
	if p.Src != 3 || p.Dst != 2 {
		t.Fatalf("bounce did not swap src/dst: %d->%d", p.Src, p.Dst)
	}
	if p.SrcQP != 200 || p.DstQP != 100 {
		t.Fatal("bounce did not swap QPNs")
	}
	if !p.Echoed {
		t.Fatal("bounce must mark Echoed")
	}
	if p.Hops != 0 {
		t.Fatal("bounce must reset hop count")
	}
}

func TestAckPacket(t *testing.T) {
	a := AckPacket(7, 3, 2, 55)
	if a.Kind != KindAck || a.Tag != TagAck || a.EPSN != 55 || a.Size != AckSize {
		t.Fatalf("bad ack: %+v", a)
	}
}

func TestIsControl(t *testing.T) {
	d := DataPacket(1, 2, 3, 0, 0, 100)
	if d.IsControl() {
		t.Fatal("data is not control")
	}
	d.Trim()
	if !d.IsControl() {
		t.Fatal("HO packets are control plane")
	}
}

func TestKindAndTagStrings(t *testing.T) {
	if KindData.String() != "DATA" || KindHO.String() != "HO" || Kind(99).String() == "" {
		t.Fatal("kind strings")
	}
	if TagHO.String() != "dcp-ho" || TagNonDCP.String() != "non-dcp" || Tag(9).String() == "" {
		t.Fatal("tag strings")
	}
	p := DataPacket(1, 2, 3, 4, 5, 6)
	if p.String() == "" {
		t.Fatal("packet String empty")
	}
}

func TestDCPTagValues(t *testing.T) {
	// §4.2 tag assignments are load-bearing for switch dispatch.
	if TagNonDCP != 0b00 || TagAck != 0b01 || TagData != 0b10 || TagHO != 0b11 {
		t.Fatal("DCP tag values must match the paper")
	}
}
