// Package packet defines the simulation packet: the unit handed between
// NICs, wires and switches. It carries the union of the header fields used
// by every modeled transport (DCP, GBN, IRN, MP-RDMA, RACK-TLP, TCP-like),
// mirroring the extended RDMA header of the paper's Fig. 4. The on-the-wire
// binary layout of the DCP headers lives in package wire; simulation code
// works with this struct directly.
package packet

import (
	"fmt"

	"dcpsim/internal/units"
)

// NodeID identifies a host or switch in the simulated network.
type NodeID int32

// Kind classifies a packet for switch and endpoint processing.
type Kind uint8

// Packet kinds.
const (
	KindData   Kind = iota // payload-carrying data packet
	KindHO                 // header-only packet produced by trimming (or echoed)
	KindAck                // transport acknowledgment (ACK/SACK/NAK)
	KindCNP                // DCQCN congestion notification packet
	KindPause              // PFC PAUSE frame
	KindResume             // PFC RESUME frame
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindHO:
		return "HO"
	case KindAck:
		return "ACK"
	case KindCNP:
		return "CNP"
	case KindPause:
		return "PAUSE"
	case KindResume:
		return "RESUME"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Tag is the 2-bit DCP tag carried in the IP ToS field (§4.2).
type Tag uint8

// DCP tags.
const (
	TagNonDCP Tag = 0b00 // dropped when over threshold
	TagAck    Tag = 0b01 // DCP ACK: dropped when over threshold
	TagData   Tag = 0b10 // DCP data: trimmed when over threshold
	TagHO     Tag = 0b11 // header-only: enqueued to the control queue
)

func (t Tag) String() string {
	switch t {
	case TagNonDCP:
		return "non-dcp"
	case TagAck:
		return "dcp-ack"
	case TagData:
		return "dcp-data"
	case TagHO:
		return "dcp-ho"
	default:
		return fmt.Sprintf("tag(%02b)", uint8(t))
	}
}

// AckFlavor distinguishes acknowledgment semantics within KindAck.
type AckFlavor uint8

// Ack flavors.
const (
	AckCumulative AckFlavor = iota // plain cumulative ACK (ePSN / eMSN)
	AckSelective                   // IRN SACK: cumulative + out-of-order PSN
	AckNak                         // RoCE NAK sequence error (go-back-N)
	AckPull                        // NDP-style pull: a paced credit for one packet
)

// Header and MTU sizes in bytes. DataHeaderSize follows Fig. 4: Ethernet(14)
// + IP(20) + UDP(8) + BTH(12) + MSN(3) = 57 bytes, which is exactly the HO
// packet size; RETH/SSN extensions ride in the remaining header bytes of the
// paper's full data-packet header.
const (
	DataHeaderSize = 57
	RETHSize       = 16
	SSNSize        = 3
	AckSize        = 60 // Eth+IP+UDP+BTH+AETH(+eMSN)
	HOSize         = DataHeaderSize
	CNPSize        = 57
	PauseSize      = 64
	DefaultMTU     = 1000 // payload bytes per packet, as in the paper (1KB MTU)
)

// Packet is one simulated packet. Fields irrelevant to a given transport are
// left zero. Packets are never shared between flows; switches may mutate
// them (trimming, ECN marking).
type Packet struct {
	ID   uint64 // unique per engine run, for tracing
	Kind Kind
	Tag  Tag

	Src, Dst NodeID
	SrcQP    uint32
	DstQP    uint32
	FlowID   uint64

	// Size is the total on-the-wire size in bytes (headers + payload).
	Size int
	// PayloadBytes counts application payload carried (0 for HO/ACK/CNP).
	PayloadBytes int

	// RDMA sequencing (Fig. 4 extensions).
	PSN      uint32 // packet sequence number within the QP
	MSN      uint32 // message sequence number (posting order in the SQ)
	SSN      uint32 // send sequence number, two-sided ops
	SRetryNo uint8  // sender retry epoch for the MSN-th message (§4.5)
	EMSN     uint32 // expected MSN carried by DCP ACKs
	EPSN     uint32 // cumulative PSN carried by ACK/SACK/NAK
	// AckBytes is the receiver's cumulative received payload count,
	// carried by DCP ACKs so BDP flow control can clock without
	// per-packet acknowledgments (aggregated counting, §4.5).
	AckBytes int64

	// MsgLen is the number of packets of message MSN (carried so the
	// receiver can size its per-message counter; stands in for the RETH
	// length field).
	MsgLen uint32
	// MsgOffset is this packet's index within its message; with the
	// always-present RETH it lets the receiver place any packet directly.
	MsgOffset uint32

	Ack AckFlavor
	// SackPSN is the out-of-order PSN reported by an IRN SACK.
	SackPSN uint32
	// SackBlob is the SDR SACK extension: the receiver's cumulative PSN
	// plus selective-ACK ranges in the 24-bit wrap-safe wire encoding of
	// package transport/sdr. Its length is included in Size.
	SackBlob []byte

	// PathKey perturbs the ECMP hash; multipath transports (MP-RDMA) set
	// it per virtual path, mimicking distinct UDP source ports.
	PathKey uint32

	// ECN marking (CE codepoint) applied by congested switches.
	ECN bool
	// Retransmitted marks retransmissions, for accounting.
	Retransmitted bool
	// Trimmed marks a data packet converted to header-only in the fabric.
	Trimmed bool
	// Echoed marks an HO packet already bounced by the receiver and now
	// travelling back to the sender.
	Echoed bool

	// SentAt is stamped by the sending transport when the packet first
	// leaves the NIC (used for RTT measurements and RACK timestamps).
	SentAt units.Time

	// Hops counts switch traversals, for sanity checks and tracing.
	Hops uint8

	// PauseOn indicates pause state for KindPause/KindResume frames.
	PauseOn bool

	// BufIngress is fabric-internal: while the packet sits in a switch
	// buffer it records the ingress port the packet arrived on, for PFC
	// per-ingress accounting.
	BufIngress int32
}

// IsControl reports whether the packet belongs to the fabric's control
// plane: HO packets travel in the control queue; PFC frames bypass queues.
func (p *Packet) IsControl() bool { return p.Kind == KindHO }

// Trim converts a DCP data packet into a header-only packet in place,
// exactly as the DCP-Switch packet trimming module does: payload removed,
// DCP tag rewritten to 11, size reduced to the 57-byte remaining header.
func (p *Packet) Trim() {
	p.Kind = KindHO
	p.Tag = TagHO
	p.Size = HOSize
	p.PayloadBytes = 0
	p.Trimmed = true
}

// Bounce turns a received HO packet around: source and destination (and QP
// numbers) are swapped so the packet travels back to the sender (§4.1 step 2).
func (p *Packet) Bounce() {
	p.Src, p.Dst = p.Dst, p.Src
	p.SrcQP, p.DstQP = p.DstQP, p.SrcQP
	p.Echoed = true
	p.Hops = 0
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d psn=%d msn=%d size=%d", p.Kind, p.FlowID, p.Src, p.Dst, p.PSN, p.MSN, p.Size)
}

// DataPacket builds a payload-carrying packet with the DCP-style header
// size: 57-byte base header plus RETH (always present for order-tolerant
// one-sided reception) plus payload.
func DataPacket(flow uint64, src, dst NodeID, psn, msn uint32, payload int) *Packet {
	return &Packet{
		Kind:         KindData,
		Tag:          TagData,
		FlowID:       flow,
		Src:          src,
		Dst:          dst,
		PSN:          psn,
		MSN:          msn,
		Size:         DataHeaderSize + RETHSize + payload,
		PayloadBytes: payload,
	}
}

// AckPacket builds a cumulative acknowledgment.
func AckPacket(flow uint64, src, dst NodeID, epsn uint32) *Packet {
	return &Packet{
		Kind:   KindAck,
		Tag:    TagAck,
		FlowID: flow,
		Src:    src,
		Dst:    dst,
		EPSN:   epsn,
		Size:   AckSize,
		Ack:    AckCumulative,
	}
}
