// Package wire implements the on-the-wire binary layout of DCP packets as
// extended RoCEv2 (Fig. 4 of the paper): Ethernet / IPv4 (DCP tag in two ToS
// bits) / UDP / BTH / MSN / optional SSN / optional RETH for data packets,
// and Ethernet / IPv4 / UDP / BTH / AETH (eMSN in the MSN field) for ACKs.
// A header-only (HO) packet is exactly the first 57 bytes of a data packet:
// Ethernet(14) + IPv4(20) + UDP(8) + BTH(12) + MSN(3).
//
// The simulator itself moves packet structs around (package packet); this
// package exists so the header design is executable and testable: every
// field the paper adds has a concrete offset, and encode/decode round-trip
// is property-tested.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Layer sizes in bytes.
const (
	EthernetSize = 14
	IPv4Size     = 20
	UDPSize      = 8
	BTHSize      = 12
	MSNSize      = 3 // 3-byte MSN extension carried by every DCP packet
	SSNSize      = 3 // send sequence number, two-sided ops only
	RETHSize     = 16
	AETHSize     = 4

	// HOSize is the size of a header-only packet: everything up to and
	// including the MSN field (57 bytes, footnote 6 of the paper).
	HOSize = EthernetSize + IPv4Size + UDPSize + BTHSize + MSNSize
)

// RoCEv2UDPPort is the IANA UDP destination port for RoCEv2.
const RoCEv2UDPPort = 4791

// DCPTag is the 2-bit packet class carried in bits 1:0 of the IP ToS field.
type DCPTag uint8

// DCP tag values (§4.2).
const (
	TagNonDCP DCPTag = 0b00
	TagAck    DCPTag = 0b01
	TagData   DCPTag = 0b10
	TagHO     DCPTag = 0b11
)

// ECN codepoints (ToS bits 7:6 in this encoding).
const (
	ECNNotECT uint8 = 0b00
	ECNECT0   uint8 = 0b10
	ECNCE     uint8 = 0b11
)

// OpCode is the BTH opcode. Only the operations DCP extends are modeled.
type OpCode uint8

// BTH opcodes (InfiniBand RC values).
const (
	OpSendFirst        OpCode = 0x00
	OpSendMiddle       OpCode = 0x01
	OpSendLast         OpCode = 0x02
	OpSendOnly         OpCode = 0x04
	OpWriteFirst       OpCode = 0x06
	OpWriteMiddle      OpCode = 0x07
	OpWriteLast        OpCode = 0x08
	OpWriteOnly        OpCode = 0x0A
	OpAcknowledge      OpCode = 0x11
	OpWriteLastWithImm OpCode = 0x09
	OpWriteOnlyWithImm OpCode = 0x0B
)

// IsWrite reports whether the opcode belongs to the RDMA Write family.
func (o OpCode) IsWrite() bool {
	switch o {
	case OpWriteFirst, OpWriteMiddle, OpWriteLast, OpWriteOnly, OpWriteLastWithImm, OpWriteOnlyWithImm:
		return true
	}
	return false
}

// IsSend reports whether the opcode belongs to the Send family.
func (o OpCode) IsSend() bool {
	switch o {
	case OpSendFirst, OpSendMiddle, OpSendLast, OpSendOnly:
		return true
	}
	return false
}

// Ethernet is the L2 header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// EtherTypeIPv4 is the IPv4 ethertype.
const EtherTypeIPv4 = 0x0800

func (h *Ethernet) marshal(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

func (h *Ethernet) unmarshal(b []byte) {
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
}

// IPv4 is a 20-byte IPv4 header (no options). The DCP tag occupies ToS bits
// 1:0 and the ECN codepoint bits 7:6.
type IPv4 struct {
	Tag      DCPTag
	ECN      uint8
	TotalLen uint16
	TTL      uint8
	Protocol uint8
	Src, Dst [4]byte
}

// ProtocolUDP is the IP protocol number for UDP.
const ProtocolUDP = 17

func (h *IPv4) marshal(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = (h.ECN << 6) | uint8(h.Tag&0b11)
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], 0) // identification
	binary.BigEndian.PutUint16(b[6:8], 0) // flags/frag
	b[8] = h.TTL
	b[9] = h.Protocol
	binary.BigEndian.PutUint16(b[10:12], 0) // checksum: computed below
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	binary.BigEndian.PutUint16(b[10:12], ipChecksum(b[:IPv4Size]))
}

func (h *IPv4) unmarshal(b []byte) error {
	if b[0] != 0x45 {
		return fmt.Errorf("wire: unsupported IP version/IHL %#x", b[0])
	}
	h.ECN = b[1] >> 6
	h.Tag = DCPTag(b[1] & 0b11)
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return nil
}

func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// UDP is the 8-byte UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
}

func (h *UDP) marshal(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	binary.BigEndian.PutUint16(b[6:8], 0) // checksum optional over IPv4
}

func (h *UDP) unmarshal(b []byte) {
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
}

// BTH is the 12-byte InfiniBand base transport header. The 24-bit PSN rides
// in the last 3 bytes; DCP additionally stores the sender retry number
// (sRetryNo, §4.5) in the reserved byte at offset 5.
type BTH struct {
	OpCode   OpCode
	DestQP   uint32 // 24 bits
	PSN      uint32 // 24 bits
	AckReq   bool
	SRetryNo uint8 // DCP extension in the reserved byte
}

// BTH byte layout (12 bytes): opcode(1), SE/M/Pad/TVer(1), P_Key(2),
// reserved(1) — DCP reuses it for sRetryNo —, DestQP(3), AckReq|reserved(1),
// PSN(3).
func (h *BTH) marshal(b []byte) {
	b[0] = byte(h.OpCode)
	b[1] = 0                                   // SE/M/Pad/TVer
	binary.BigEndian.PutUint16(b[2:4], 0xffff) // P_Key
	b[4] = h.SRetryNo
	put24at(b, 5, h.DestQP)
	if h.AckReq {
		b[8] = 0x80
	} else {
		b[8] = 0
	}
	put24at(b, 9, h.PSN)
}

func (h *BTH) unmarshal(b []byte) {
	h.OpCode = OpCode(b[0])
	h.SRetryNo = b[4]
	h.DestQP = get24at(b, 5)
	h.AckReq = b[8]&0x80 != 0
	h.PSN = get24at(b, 9)
}

func put24at(b []byte, off int, v uint32) {
	b[off] = byte(v >> 16)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v)
}

func get24at(b []byte, off int) uint32 {
	return uint32(b[off])<<16 | uint32(b[off+1])<<8 | uint32(b[off+2])
}

// RETH is the RDMA extended transport header: remote VA, rkey, DMA length.
// DCP includes it in every packet of a Write message (not just the first) so
// out-of-order packets can be placed directly (§4.4).
type RETH struct {
	VA     uint64
	RKey   uint32
	Length uint32
}

func (h *RETH) marshal(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], h.VA)
	binary.BigEndian.PutUint32(b[8:12], h.RKey)
	binary.BigEndian.PutUint32(b[12:16], h.Length)
}

func (h *RETH) unmarshal(b []byte) {
	h.VA = binary.BigEndian.Uint64(b[0:8])
	h.RKey = binary.BigEndian.Uint32(b[8:12])
	h.Length = binary.BigEndian.Uint32(b[12:16])
}

// AETH is the 4-byte ACK extended transport header.
type AETH struct {
	Syndrome uint8
	MSN      uint32 // 24 bits; DCP carries eMSN here (Fig. 4b)
}

func (h *AETH) marshal(b []byte) {
	b[0] = h.Syndrome
	put24at(b, 1, h.MSN)
}

func (h *AETH) unmarshal(b []byte) {
	h.Syndrome = b[0]
	h.MSN = get24at(b, 1)
}

// DataPacket is the decoded form of a full DCP data packet.
type DataPacket struct {
	Eth     Ethernet
	IP      IPv4
	UDP     UDP
	BTH     BTH
	MSN     uint32 // 24-bit message sequence number (posting order)
	HasSSN  bool   // two-sided operations carry the SSN
	SSN     uint32 // 24 bits
	HasRETH bool   // one-sided operations carry the RETH in every packet
	RETH    RETH
	Payload []byte
}

// errTooShort reports a truncated buffer.
var errTooShort = errors.New("wire: buffer too short")

// HeaderSize returns the encoded header length for this packet's options.
func (p *DataPacket) HeaderSize() int {
	n := HOSize
	if p.HasSSN {
		n += SSNSize
	}
	if p.HasRETH {
		n += RETHSize
	}
	return n
}

// Marshal encodes the packet. The returned slice length is HeaderSize() +
// len(Payload).
func (p *DataPacket) Marshal() []byte {
	total := p.HeaderSize() + len(p.Payload)
	b := make([]byte, total)
	p.Eth.EtherType = EtherTypeIPv4
	p.Eth.marshal(b[0:])
	p.IP.Protocol = ProtocolUDP
	p.IP.TotalLen = uint16(total - EthernetSize)
	p.IP.marshal(b[EthernetSize:])
	p.UDP.DstPort = RoCEv2UDPPort
	p.UDP.Length = uint16(total - EthernetSize - IPv4Size)
	p.UDP.marshal(b[EthernetSize+IPv4Size:])
	off := EthernetSize + IPv4Size + UDPSize
	p.BTH.marshal(b[off:])
	off += BTHSize
	put24at(b, off, p.MSN)
	off += MSNSize
	if p.HasSSN {
		put24at(b, off, p.SSN)
		off += SSNSize
	}
	if p.HasRETH {
		p.RETH.marshal(b[off:])
		off += RETHSize
	}
	copy(b[off:], p.Payload)
	return b
}

// UnmarshalDataPacket decodes a data or header-only packet. Whether SSN and
// RETH are present is inferred from the BTH opcode, exactly as an RNIC
// parser would. A 57-byte buffer decodes as a header-only packet.
func UnmarshalDataPacket(b []byte) (*DataPacket, error) {
	if len(b) < HOSize {
		return nil, errTooShort
	}
	var p DataPacket
	p.Eth.unmarshal(b)
	if err := p.IP.unmarshal(b[EthernetSize:]); err != nil {
		return nil, err
	}
	p.UDP.unmarshal(b[EthernetSize+IPv4Size:])
	off := EthernetSize + IPv4Size + UDPSize
	p.BTH.unmarshal(b[off:])
	off += BTHSize
	p.MSN = get24at(b, off)
	off += MSNSize
	if len(b) == HOSize {
		return &p, nil // header-only packet: extensions were trimmed away
	}
	if p.BTH.OpCode.IsSend() || p.BTH.OpCode == OpWriteLastWithImm || p.BTH.OpCode == OpWriteOnlyWithImm {
		if len(b) < off+SSNSize {
			return nil, errTooShort
		}
		p.HasSSN = true
		p.SSN = get24at(b, off)
		off += SSNSize
	}
	if p.BTH.OpCode.IsWrite() {
		if len(b) < off+RETHSize {
			return nil, errTooShort
		}
		p.HasRETH = true
		p.RETH.unmarshal(b[off:])
		off += RETHSize
	}
	p.Payload = b[off:]
	return &p, nil
}

// IsHO reports whether the decoded packet is header-only (trimmed).
func (p *DataPacket) IsHO() bool { return p.IP.Tag == TagHO }

// TrimToHO returns the first 57 bytes of an encoded data packet with the
// DCP tag rewritten to 11 and the IP length fixed up — the exact switch
// trimming operation of §5 (mirror header, set packet_len, retag, re-enqueue).
func TrimToHO(encoded []byte) ([]byte, error) {
	if len(encoded) < HOSize {
		return nil, errTooShort
	}
	ho := make([]byte, HOSize)
	copy(ho, encoded[:HOSize])
	// Rewrite tag bits in ToS and fix the IP total length + checksum.
	ho[EthernetSize+1] = ho[EthernetSize+1]&^byte(0b11) | byte(TagHO)
	binary.BigEndian.PutUint16(ho[EthernetSize+2:], uint16(HOSize-EthernetSize))
	binary.BigEndian.PutUint16(ho[EthernetSize+10:], 0)
	binary.BigEndian.PutUint16(ho[EthernetSize+10:], ipChecksum(ho[EthernetSize:EthernetSize+IPv4Size]))
	return ho, nil
}

// BounceHO swaps the IP addresses and QPNs of an encoded HO packet in place,
// producing the packet the receiver forwards back to the sender (§4.1 step 2).
// The caller supplies the sender-side QPN (the receiver knows it from its QP
// context; the switch could not, which is why HO packets go to the receiver
// first — §7 "Back-to-sender").
func BounceHO(ho []byte, senderQPN uint32) error {
	if len(ho) < HOSize {
		return errTooShort
	}
	ip := ho[EthernetSize:]
	for i := 0; i < 4; i++ {
		ip[12+i], ip[16+i] = ip[16+i], ip[12+i]
	}
	binary.BigEndian.PutUint16(ip[10:12], 0)
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPv4Size]))
	put24at(ho, EthernetSize+IPv4Size+UDPSize+5, senderQPN)
	return nil
}

// AckPacket is the decoded form of a DCP ACK (Fig. 4b).
type AckPacket struct {
	Eth  Ethernet
	IP   IPv4
	UDP  UDP
	BTH  BTH
	AETH AETH // AETH.MSN carries the eMSN
}

// AckPacketSize is the encoded size of an ACK.
const AckPacketSize = EthernetSize + IPv4Size + UDPSize + BTHSize + AETHSize

// Marshal encodes the ACK.
func (p *AckPacket) Marshal() []byte {
	b := make([]byte, AckPacketSize)
	p.Eth.EtherType = EtherTypeIPv4
	p.Eth.marshal(b)
	p.IP.Protocol = ProtocolUDP
	p.IP.Tag = TagAck
	p.IP.TotalLen = uint16(AckPacketSize - EthernetSize)
	p.IP.marshal(b[EthernetSize:])
	p.UDP.DstPort = RoCEv2UDPPort
	p.UDP.Length = uint16(AckPacketSize - EthernetSize - IPv4Size)
	p.UDP.marshal(b[EthernetSize+IPv4Size:])
	off := EthernetSize + IPv4Size + UDPSize
	p.BTH.OpCode = OpAcknowledge
	p.BTH.marshal(b[off:])
	p.AETH.marshal(b[off+BTHSize:])
	return b
}

// UnmarshalAckPacket decodes an ACK.
func UnmarshalAckPacket(b []byte) (*AckPacket, error) {
	if len(b) < AckPacketSize {
		return nil, errTooShort
	}
	var p AckPacket
	p.Eth.unmarshal(b)
	if err := p.IP.unmarshal(b[EthernetSize:]); err != nil {
		return nil, err
	}
	p.UDP.unmarshal(b[EthernetSize+IPv4Size:])
	off := EthernetSize + IPv4Size + UDPSize
	p.BTH.unmarshal(b[off:])
	p.AETH.unmarshal(b[off+BTHSize:])
	return &p, nil
}
