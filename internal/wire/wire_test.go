package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func samplePacket() *DataPacket {
	return &DataPacket{
		Eth: Ethernet{Dst: [6]byte{1, 2, 3, 4, 5, 6}, Src: [6]byte{7, 8, 9, 10, 11, 12}},
		IP: IPv4{Tag: TagData, ECN: ECNECT0, TTL: 64,
			Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2}},
		UDP:     UDP{SrcPort: 49152},
		BTH:     BTH{OpCode: OpWriteMiddle, DestQP: 0x123456, PSN: 0xABCDEF, SRetryNo: 3},
		MSN:     0x010203,
		HasRETH: true,
		RETH:    RETH{VA: 0xDEADBEEF00, RKey: 42, Length: 1 << 20},
		Payload: []byte("0123456789abcdef"),
	}
}

func TestHOSizeIs57(t *testing.T) {
	// Footnote 6: 14 + 20 + 8 + 12 + 3 = 57 bytes.
	if HOSize != 57 {
		t.Fatalf("HOSize = %d", HOSize)
	}
}

func TestDataRoundTrip(t *testing.T) {
	p := samplePacket()
	enc := p.Marshal()
	if len(enc) != p.HeaderSize()+len(p.Payload) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), p.HeaderSize()+len(p.Payload))
	}
	got, err := UnmarshalDataPacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.BTH != p.BTH || got.MSN != p.MSN || got.RETH != p.RETH {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
	if got.IP.Tag != TagData || got.IP.Src != p.IP.Src || got.IP.Dst != p.IP.Dst {
		t.Fatal("IP fields mismatch")
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestSendCarriesSSN(t *testing.T) {
	p := samplePacket()
	p.BTH.OpCode = OpSendMiddle
	p.HasRETH = false
	p.HasSSN = true
	p.SSN = 0x0A0B0C
	enc := p.Marshal()
	got, err := UnmarshalDataPacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasSSN || got.SSN != p.SSN {
		t.Fatalf("SSN lost: %+v", got)
	}
	if got.HasRETH {
		t.Fatal("Send ops carry no RETH")
	}
}

func TestWriteWithImmCarriesBoth(t *testing.T) {
	p := samplePacket()
	p.BTH.OpCode = OpWriteLastWithImm
	p.HasSSN = true
	p.SSN = 9
	enc := p.Marshal()
	got, err := UnmarshalDataPacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasSSN || !got.HasRETH || got.SSN != 9 || got.RETH != p.RETH {
		t.Fatalf("Write-with-Imm must carry SSN and RETH: %+v", got)
	}
}

func TestTrimToHO(t *testing.T) {
	p := samplePacket()
	enc := p.Marshal()
	ho, err := TrimToHO(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ho) != 57 {
		t.Fatalf("HO is %d bytes, want 57", len(ho))
	}
	got, err := UnmarshalDataPacket(ho)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsHO() || got.IP.Tag != TagHO {
		t.Fatal("trim must retag to 11")
	}
	// The fields DCP-RNIC needs for retransmission must survive.
	if got.BTH.PSN != p.BTH.PSN || got.MSN != p.MSN || got.BTH.DestQP != p.BTH.DestQP {
		t.Fatal("PSN/MSN/QPN must survive trimming")
	}
	if got.BTH.SRetryNo != p.BTH.SRetryNo {
		t.Fatal("sRetryNo must survive trimming")
	}
	// IP total length must describe the trimmed packet.
	if got.IP.TotalLen != uint16(HOSize-EthernetSize) {
		t.Fatalf("IP length not fixed up: %d", got.IP.TotalLen)
	}
	// Checksum must be valid after the rewrite.
	if ipChecksum(ho[EthernetSize:EthernetSize+IPv4Size]) != 0 {
		t.Fatal("IP checksum invalid after trim")
	}
}

func TestTrimTooShort(t *testing.T) {
	if _, err := TrimToHO(make([]byte, 10)); err == nil {
		t.Fatal("expected error")
	}
}

func TestBounceHO(t *testing.T) {
	p := samplePacket()
	enc := p.Marshal()
	ho, _ := TrimToHO(enc)
	if err := BounceHO(ho, 0x654321); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDataPacket(ho)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP.Src != p.IP.Dst || got.IP.Dst != p.IP.Src {
		t.Fatal("bounce must swap IP addresses")
	}
	if got.BTH.DestQP != 0x654321 {
		t.Fatalf("bounce must install sender QPN, got %#x", got.BTH.DestQP)
	}
	if got.BTH.PSN != p.BTH.PSN {
		t.Fatal("PSN must survive the bounce")
	}
	if ipChecksum(ho[EthernetSize:EthernetSize+IPv4Size]) != 0 {
		t.Fatal("IP checksum invalid after bounce")
	}
	if err := BounceHO(make([]byte, 3), 1); err == nil {
		t.Fatal("short bounce should error")
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := &AckPacket{
		IP:   IPv4{TTL: 64, Src: [4]byte{1, 1, 1, 1}, Dst: [4]byte{2, 2, 2, 2}},
		BTH:  BTH{DestQP: 5, PSN: 100},
		AETH: AETH{Syndrome: 0, MSN: 0x00BEEF},
	}
	enc := a.Marshal()
	if len(enc) != AckPacketSize {
		t.Fatalf("ack size %d", len(enc))
	}
	got, err := UnmarshalAckPacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.AETH.MSN != 0x00BEEF {
		t.Fatalf("eMSN lost: %#x", got.AETH.MSN)
	}
	if got.BTH.OpCode != OpAcknowledge {
		t.Fatal("ACK opcode")
	}
	if got.IP.Tag != TagAck {
		t.Fatal("ACK must carry DCP tag 01")
	}
	if _, err := UnmarshalAckPacket(enc[:10]); err == nil {
		t.Fatal("short ack should error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalDataPacket(make([]byte, 20)); err == nil {
		t.Fatal("short buffer must error")
	}
	p := samplePacket()
	enc := p.Marshal()
	enc[EthernetSize] = 0x46 // bad version/IHL
	if _, err := UnmarshalDataPacket(enc); err == nil {
		t.Fatal("bad IP version must error")
	}
	// Write opcode but truncated RETH.
	p2 := samplePacket()
	enc2 := p2.Marshal()
	if _, err := UnmarshalDataPacket(enc2[:HOSize+4]); err == nil {
		t.Fatal("truncated RETH must error")
	}
}

func TestOpCodeFamilies(t *testing.T) {
	writes := []OpCode{OpWriteFirst, OpWriteMiddle, OpWriteLast, OpWriteOnly, OpWriteLastWithImm, OpWriteOnlyWithImm}
	sends := []OpCode{OpSendFirst, OpSendMiddle, OpSendLast, OpSendOnly}
	for _, o := range writes {
		if !o.IsWrite() {
			t.Errorf("%#x should be Write", o)
		}
		if o.IsSend() {
			t.Errorf("%#x should not be Send", o)
		}
	}
	for _, o := range sends {
		if !o.IsSend() || o.IsWrite() {
			t.Errorf("%#x family wrong", o)
		}
	}
	if OpAcknowledge.IsWrite() || OpAcknowledge.IsSend() {
		t.Error("ACK is neither family")
	}
}

func TestIPChecksumVerifies(t *testing.T) {
	p := samplePacket()
	enc := p.Marshal()
	if ipChecksum(enc[EthernetSize:EthernetSize+IPv4Size]) != 0 {
		t.Fatal("checksum of valid header must fold to 0")
	}
	enc[EthernetSize+8] ^= 0xFF // corrupt TTL
	if ipChecksum(enc[EthernetSize:EthernetSize+IPv4Size]) == 0 {
		t.Fatal("corruption must break the checksum")
	}
}

// TestQuickRoundTrip property-tests the header codec across random field
// values.
func TestQuickRoundTrip(t *testing.T) {
	f := func(destQP, psn, msn, ssn uint32, retry uint8, opSel uint8, va uint64, rkey, length uint32, payLen uint16, tag uint8) bool {
		ops := []OpCode{OpWriteFirst, OpWriteMiddle, OpWriteLast, OpWriteOnly, OpSendFirst, OpSendOnly, OpWriteLastWithImm}
		op := ops[int(opSel)%len(ops)]
		p := &DataPacket{
			IP:  IPv4{Tag: DCPTag(tag & 3), TTL: 64},
			BTH: BTH{OpCode: op, DestQP: destQP & 0xFFFFFF, PSN: psn & 0xFFFFFF, SRetryNo: retry},
			MSN: msn & 0xFFFFFF,
		}
		if op.IsSend() || op == OpWriteLastWithImm {
			p.HasSSN = true
			p.SSN = ssn & 0xFFFFFF
		}
		if op.IsWrite() {
			p.HasRETH = true
			p.RETH = RETH{VA: va, RKey: rkey, Length: length}
		}
		p.Payload = make([]byte, int(payLen)%2048)
		got, err := UnmarshalDataPacket(p.Marshal())
		if err != nil {
			return false
		}
		return got.BTH == p.BTH && got.MSN == p.MSN && got.SSN == p.SSN &&
			got.RETH == p.RETH && got.HasSSN == p.HasSSN && got.HasRETH == p.HasRETH &&
			len(got.Payload) == len(p.Payload)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTrimIdempotentFields property-tests that trimming preserves
// exactly the first 57 bytes except the ToS tag and IP length/checksum.
func TestQuickTrimPreservesPrefix(t *testing.T) {
	f := func(psn, msn uint32, pay uint16) bool {
		p := samplePacket()
		p.BTH.PSN = psn & 0xFFFFFF
		p.MSN = msn & 0xFFFFFF
		p.Payload = make([]byte, int(pay)%1500+1)
		enc := p.Marshal()
		ho, err := TrimToHO(enc)
		if err != nil {
			return false
		}
		for i := 0; i < HOSize; i++ {
			switch {
			case i == EthernetSize+1: // ToS (tag rewritten)
			case i == EthernetSize+2, i == EthernetSize+3: // IP length
			case i == EthernetSize+10, i == EthernetSize+11: // checksum
			default:
				if ho[i] != enc[i] {
					return false
				}
			}
		}
		return binary.BigEndian.Uint16(ho[EthernetSize+2:]) == uint16(HOSize-EthernetSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderSize(t *testing.T) {
	p := &DataPacket{}
	if p.HeaderSize() != HOSize {
		t.Fatal("bare header is the HO size")
	}
	p.HasSSN = true
	if p.HeaderSize() != HOSize+SSNSize {
		t.Fatal("SSN adds 3")
	}
	p.HasRETH = true
	if p.HeaderSize() != HOSize+SSNSize+RETHSize {
		t.Fatal("RETH adds 16")
	}
}
