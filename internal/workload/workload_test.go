package workload

import (
	"math"
	"math/rand"
	"testing"

	"dcpsim/internal/packet"
	"dcpsim/internal/units"
)

func TestWebSearchShape(t *testing.T) {
	// The paper's §6.2 description: 60% < 200 KB, 37% in 200 KB–10 MB, 3%
	// above 10 MB.
	d := WebSearch()
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	var small, mid, big int
	var max int64
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		switch {
		case s < 200_000:
			small++
		case s <= 10_000_000:
			mid++
		default:
			big++
		}
		if s > max {
			max = s
		}
	}
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("%s fraction = %.3f, want ≈ %.2f", name, frac, want)
		}
	}
	check("small", small, 0.60)
	check("mid", mid, 0.37)
	check("big", big, 0.03)
	if max > 30_000_000 {
		t.Fatalf("max sample %d exceeds the 30 MB cap", max)
	}
}

func TestSizeDistMeanMatchesSamples(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	empirical := sum / n
	analytic := d.Mean()
	if math.Abs(empirical-analytic)/analytic > 0.03 {
		t.Fatalf("mean mismatch: empirical %.0f vs analytic %.0f", empirical, analytic)
	}
}

func TestNewSizeDistValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for malformed CDF")
		}
	}()
	NewSizeDist([]float64{1}, []float64{1})
}

func hostIDs(n int) []packet.NodeID {
	ids := make([]packet.NodeID, n)
	for i := range ids {
		ids[i] = packet.NodeID(i)
	}
	return ids
}

func TestGeneratePoissonLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hosts := hostIDs(64)
	cfg := PoissonConfig{
		Load: 0.5, Hosts: hosts, HostRate: 100 * units.Gbps,
		Dist: WebSearch(), Count: 5000, Class: "bg", BaseID: 100,
	}
	flows := GeneratePoisson(rng, cfg)
	if len(flows) != 5000 {
		t.Fatal("count")
	}
	var bytes int64
	last := units.Time(0)
	for i, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("src == dst")
		}
		if f.ID != 100+uint64(i) {
			t.Fatal("ids must be sequential from BaseID")
		}
		if f.Start < last {
			t.Fatal("arrivals must be ordered")
		}
		last = f.Start
		bytes += f.Size
	}
	// Offered load over the generation horizon ≈ 0.5 of aggregate.
	horizon := flows[len(flows)-1].Start.Seconds()
	offered := float64(bytes) * 8 / horizon
	agg := float64(64) * 100e9
	if math.Abs(offered/agg-0.5) > 0.08 {
		t.Fatalf("offered load %.3f of aggregate, want ≈ 0.5", offered/agg)
	}
}

func TestGenerateIncastStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	hosts := hostIDs(256)
	flows := GenerateIncast(rng, IncastConfig{
		Load: 0.1, Fanin: 128, FlowSize: 64 << 10,
		Hosts: hosts, HostRate: 100 * units.Gbps, Events: 5,
		Class: "incast", BaseID: 1000,
	})
	if len(flows) != 5*128 {
		t.Fatalf("flows = %d", len(flows))
	}
	byEvent := map[int][]*Flow{}
	for _, f := range flows {
		byEvent[f.Group] = append(byEvent[f.Group], f)
	}
	for g, fs := range byEvent {
		victim := fs[0].Dst
		seen := map[packet.NodeID]bool{}
		for _, f := range fs {
			if f.Dst != victim {
				t.Fatalf("event %d has multiple victims", g)
			}
			if f.Src == victim {
				t.Fatal("victim cannot send to itself")
			}
			if seen[f.Src] {
				t.Fatal("duplicate sender in one event")
			}
			seen[f.Src] = true
			if f.Start != fs[0].Start {
				t.Fatal("incast flows must start simultaneously")
			}
			if f.Size != 64<<10 {
				t.Fatal("flow size")
			}
		}
	}
}

func TestRingAllReduceStructure(t *testing.T) {
	members := hostIDs(16)
	cf := RingAllReduce(members, 320<<20, 3, 500)
	if len(cf.Steps) != 2*(16-1) {
		t.Fatalf("steps = %d, want 30", len(cf.Steps))
	}
	if cf.NumFlows() != 30*16 {
		t.Fatalf("flows = %d", cf.NumFlows())
	}
	slice := int64(320<<20) / 16
	ids := map[uint64]bool{}
	for _, step := range cf.Steps {
		if len(step) != 16 {
			t.Fatal("each step sends from every member")
		}
		for i, f := range step {
			if f.Size != slice {
				t.Fatalf("slice size %d", f.Size)
			}
			if f.Dst != members[(i+1)%16] || f.Src != members[i] {
				t.Fatal("ring neighbor relation broken")
			}
			if ids[f.ID] {
				t.Fatal("duplicate flow id")
			}
			ids[f.ID] = true
			if f.Group != 3 {
				t.Fatal("group tag")
			}
		}
	}
}

func TestAllToAllStructure(t *testing.T) {
	members := hostIDs(16)
	cf := AllToAll(members, 320<<20, 1, 0)
	if len(cf.Steps) != 1 {
		t.Fatal("AllToAll is one concurrent step")
	}
	if cf.NumFlows() != 16*15 {
		t.Fatalf("flows = %d", cf.NumFlows())
	}
	pair := map[[2]packet.NodeID]bool{}
	for _, f := range cf.Steps[0] {
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
		k := [2]packet.NodeID{f.Src, f.Dst}
		if pair[k] {
			t.Fatal("duplicate pair")
		}
		pair[k] = true
	}
}

func TestCollectiveTinyTotal(t *testing.T) {
	// Slices never collapse to zero bytes.
	cf := RingAllReduce(hostIDs(16), 5, 0, 0)
	for _, step := range cf.Steps {
		for _, f := range step {
			if f.Size < 1 {
				t.Fatal("zero-size slice")
			}
		}
	}
}
