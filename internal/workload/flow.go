// Package workload generates the paper's traffic: WebSearch-distributed
// Poisson arrivals, M-to-1 incast, and the AI collectives (Ring-AllReduce,
// AllToAll) modeled as dependent coflows.
package workload

import (
	"dcpsim/internal/packet"
	"dcpsim/internal/units"
)

// Flow is one application message stream between two hosts.
type Flow struct {
	ID       uint64
	Src, Dst packet.NodeID
	Size     int64
	Start    units.Time
	// Class tags the flow for statistics ("bg", "incast", "coll", ...).
	Class string
	// Group identifies the collective group (AI workloads).
	Group int
}
