package workload

import (
	"math/rand"
	"sort"

	"dcpsim/internal/packet"
	"dcpsim/internal/units"
)

// SizeDist is a flow-size distribution described by CDF points with linear
// interpolation between them.
type SizeDist struct {
	sizes []float64
	cum   []float64
}

// NewSizeDist builds a distribution from (size, cumulative-probability)
// pairs; the pairs must be sorted and end at probability 1.
func NewSizeDist(sizes, cum []float64) *SizeDist {
	if len(sizes) != len(cum) || len(sizes) < 2 {
		panic("workload: malformed CDF")
	}
	return &SizeDist{sizes: sizes, cum: cum}
}

// WebSearch returns the DCTCP web-search flow size distribution used by the
// paper (§6.2): 60% of flows below 200 KB, 37% between 200 KB and 10 MB, 3%
// above 10 MB, max 30 MB.
func WebSearch() *SizeDist {
	return NewSizeDist(
		[]float64{1e3, 1e4, 2e4, 3e4, 5e4, 8e4, 2e5, 1e6, 2e6, 5e6, 1e7, 3e7},
		[]float64{0, 0.15, 0.20, 0.30, 0.40, 0.53, 0.60, 0.70, 0.80, 0.90, 0.97, 1.0},
	)
}

// Sample draws a flow size.
func (d *SizeDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i == 0 {
		return int64(d.sizes[0])
	}
	if i >= len(d.cum) {
		return int64(d.sizes[len(d.sizes)-1])
	}
	lo, hi := d.cum[i-1], d.cum[i]
	frac := 0.0
	if hi > lo {
		frac = (u - lo) / (hi - lo)
	}
	return int64(d.sizes[i-1] + frac*(d.sizes[i]-d.sizes[i-1]))
}

// Mean returns the distribution mean in bytes (trapezoidal over the CDF).
func (d *SizeDist) Mean() float64 {
	var m float64
	for i := 1; i < len(d.sizes); i++ {
		m += (d.cum[i] - d.cum[i-1]) * (d.sizes[i] + d.sizes[i-1]) / 2
	}
	return m
}

// PoissonConfig parameterizes an open-loop background workload.
type PoissonConfig struct {
	Load     float64 // fraction of aggregate host bandwidth
	Hosts    []packet.NodeID
	HostRate units.Rate
	Dist     *SizeDist
	Count    int        // number of flows to generate
	Start    units.Time // first possible arrival
	Class    string
	BaseID   uint64
}

// GeneratePoisson pre-draws Count flows with exponential inter-arrivals at
// the aggregate rate implied by Load, with uniformly random distinct
// src/dst pairs.
func GeneratePoisson(rng *rand.Rand, cfg PoissonConfig) []*Flow {
	mean := cfg.Dist.Mean()
	// Aggregate arrival rate (flows/sec): load × Σ host bandwidth / mean size.
	lambda := cfg.Load * float64(len(cfg.Hosts)) * cfg.HostRate.BitsPerSec() / (mean * 8)
	t := float64(cfg.Start.Picos())
	flows := make([]*Flow, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		t += rng.ExpFloat64() / lambda * float64(units.Second)
		src := cfg.Hosts[rng.Intn(len(cfg.Hosts))]
		dst := cfg.Hosts[rng.Intn(len(cfg.Hosts))]
		for dst == src {
			dst = cfg.Hosts[rng.Intn(len(cfg.Hosts))]
		}
		flows = append(flows, &Flow{
			ID:    cfg.BaseID + uint64(i),
			Src:   src,
			Dst:   dst,
			Size:  cfg.Dist.Sample(rng),
			Start: units.Time(t) * units.Picosecond,
			Class: cfg.Class,
		})
	}
	return flows
}

// IncastConfig parameterizes M-to-1 incast events.
type IncastConfig struct {
	Load     float64 // fraction of aggregate bandwidth
	Fanin    int     // senders per event (128 or 255 in the paper)
	FlowSize int64   // bytes per sender
	Hosts    []packet.NodeID
	HostRate units.Rate
	Events   int
	Start    units.Time
	Class    string
	BaseID   uint64
}

// GenerateIncast pre-draws incast events: each event picks a victim and
// Fanin distinct senders that all start a FlowSize flow to it
// simultaneously.
func GenerateIncast(rng *rand.Rand, cfg IncastConfig) []*Flow {
	bytesPerEvent := float64(cfg.Fanin) * float64(cfg.FlowSize)
	lambda := cfg.Load * float64(len(cfg.Hosts)) * cfg.HostRate.BitsPerSec() / (bytesPerEvent * 8)
	t := float64(cfg.Start.Picos())
	var flows []*Flow
	id := cfg.BaseID
	for e := 0; e < cfg.Events; e++ {
		t += rng.ExpFloat64() / lambda * float64(units.Second)
		victim := cfg.Hosts[rng.Intn(len(cfg.Hosts))]
		perm := rng.Perm(len(cfg.Hosts))
		picked := 0
		for _, pi := range perm {
			src := cfg.Hosts[pi]
			if src == victim {
				continue
			}
			flows = append(flows, &Flow{
				ID: id, Src: src, Dst: victim, Size: cfg.FlowSize,
				Start: units.Time(t) * units.Picosecond, Class: cfg.Class, Group: e,
			})
			id++
			picked++
			if picked == cfg.Fanin {
				break
			}
		}
	}
	return flows
}

// Coflow is a dependency-structured set of flows: all flows of step s start
// when every flow of step s-1 has completed (the synchronized collectives
// of §6.1/§6.2).
type Coflow struct {
	Group int
	Steps [][]*Flow
}

// NumFlows returns the total flow count.
func (c *Coflow) NumFlows() int {
	n := 0
	for _, s := range c.Steps {
		n += len(s)
	}
	return n
}

// RingAllReduce models one AllReduce over the group: the total traffic is
// split into len(members) slices and circulated 2×(N−1) steps around the
// ring, each step sending one slice from every member to its successor.
func RingAllReduce(members []packet.NodeID, total int64, group int, baseID uint64) *Coflow {
	n := len(members)
	slice := total / int64(n)
	if slice < 1 {
		slice = 1
	}
	cf := &Coflow{Group: group}
	id := baseID
	for step := 0; step < 2*(n-1); step++ {
		var fs []*Flow
		for i, src := range members {
			fs = append(fs, &Flow{
				ID: id, Src: src, Dst: members[(i+1)%n], Size: slice,
				Class: "coll", Group: group,
			})
			id++
		}
		cf.Steps = append(cf.Steps, fs)
	}
	return cf
}

// AllToAll models one AllToAll over the group: the total traffic is split
// into len(members) slices and every member sends one slice to every other
// member concurrently.
func AllToAll(members []packet.NodeID, total int64, group int, baseID uint64) *Coflow {
	n := len(members)
	slice := total / int64(n)
	if slice < 1 {
		slice = 1
	}
	cf := &Coflow{Group: group}
	var fs []*Flow
	id := baseID
	for _, src := range members {
		for _, dst := range members {
			if src == dst {
				continue
			}
			fs = append(fs, &Flow{
				ID: id, Src: src, Dst: dst, Size: slice,
				Class: "coll", Group: group,
			})
			id++
		}
	}
	cf.Steps = [][]*Flow{fs}
	return cf
}
