// Package aliascheck flags retaining or mutating a *packet.Packet after it
// has been handed to the fabric.
//
// Once a packet is enqueued (Wire.Deliver, a scheduler's Enqueue/pushData/
// pushCtrl, Host.QueueCtrl, Receiver.Receive, Transport.Handle) the fabric
// owns it: switches mutate packets in place (trimming, ECN marking,
// BufIngress accounting), so a caller that keeps writing to the pointer —
// or hands the same pointer out a second time — silently corrupts
// in-flight state. The canonical ordering is mutate-then-enqueue.
//
// The check is intraprocedural and deliberately conservative: after an
// unconditional handoff statement, any later statement in the same block
// (or nested blocks) that writes a field of the packet, calls a method on
// it, passes it to another call, returns it, or stores it somewhere is
// flagged. Reading fields stays legal (the single-threaded engine only
// mutates the packet once a later event fires). Audited exceptions use
// //lint:allow aliascheck <reason>.
package aliascheck

import (
	"go/ast"
	"go/types"

	"dcpsim/internal/lint"
)

// Analyzer is the aliascheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "aliascheck",
	Doc:  "flag use of a *packet.Packet after it has been handed to the fabric (Enqueue/Deliver/Inject/QueueCtrl/...)",
	Run:  run,
}

const packetPath = "dcpsim/internal/packet"

// handoffNames are callee names that transfer packet ownership.
var handoffNames = map[string]bool{
	"Enqueue": true, "Deliver": true, "Inject": true, "QueueCtrl": true,
	"Receive": true, "Handle": true, "pushData": true, "pushCtrl": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		lint.WalkStmtLists(f, func(list []ast.Stmt) {
			checkList(pass, list)
		})
	}
	return nil
}

// checkList scans one statement list: every unconditional handoff makes
// the packet object "hot" for the remaining statements.
func checkList(pass *lint.Pass, list []ast.Stmt) {
	hot := make(map[types.Object]string) // packet object -> handoff callee
	for _, s := range list {
		if len(hot) > 0 {
			checkUse(pass, s, hot)
		}
		if callee, objs := handoff(pass, s); callee != "" {
			for _, o := range objs {
				hot[o] = callee
			}
		}
	}
}

// handoff recognizes an ExprStmt calling a handoff-named function with at
// least one bare *packet.Packet identifier argument, returning the callee
// name and the packet objects handed over.
func handoff(pass *lint.Pass, s ast.Stmt) (string, []types.Object) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return "", nil
	}
	if !handoffNames[name] {
		return "", nil
	}
	var objs []types.Object
	for _, a := range call.Args {
		id, ok := a.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !lint.IsPtrToNamed(obj.Type(), packetPath, "Packet") {
			continue
		}
		objs = append(objs, obj)
	}
	if len(objs) == 0 {
		return "", nil
	}
	return name, objs
}

// checkUse flags order-violating uses of hot packets within stmt.
func checkUse(pass *lint.Pass, stmt ast.Stmt, hot map[types.Object]string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj, root := hotRoot(pass, lhs, hot); obj != nil {
					pass.Reportf(lhs.Pos(), "mutates %s after it was handed to %s; post-enqueue mutation corrupts in-flight state (mutate before enqueueing)", obj.Name(), hot[obj])
					_ = root
				}
				// Reassigning the variable itself retires the old packet.
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						delete(hot, obj)
					}
				}
			}
			for _, rhs := range n.Rhs {
				checkEscape(pass, rhs, hot)
			}
			return false
		case *ast.IncDecStmt:
			if obj, _ := hotRoot(pass, n.X, hot); obj != nil {
				pass.Reportf(n.Pos(), "mutates %s after it was handed to %s; post-enqueue mutation corrupts in-flight state (mutate before enqueueing)", obj.Name(), hot[obj])
			}
			return false
		case *ast.CallExpr:
			// Method call on a hot packet (p.Trim(), p.Bounce(), ...).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if obj := bareHotIdent(pass, sel.X, hot); obj != nil {
					pass.Reportf(n.Pos(), "calls %s.%s after %s was handed to %s; mutate before enqueueing", obj.Name(), sel.Sel.Name, obj.Name(), hot[obj])
				}
			}
			for _, a := range n.Args {
				if obj := bareHotIdent(pass, a, hot); obj != nil {
					pass.Reportf(a.Pos(), "passes %s to another call after it was handed to %s; the fabric owns the packet now", obj.Name(), hot[obj])
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				checkEscape(pass, e, hot)
			}
			return false
		}
		return true
	})
}

// checkEscape flags a bare hot packet identifier escaping through an
// expression (stored, returned, or passed along).
func checkEscape(pass *lint.Pass, e ast.Expr, hot map[types.Object]string) {
	ast.Inspect(e, func(n ast.Node) bool {
		// A method call on a hot packet is not a read even though its
		// receiver is a selector base.
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if obj := bareHotIdent(pass, sel.X, hot); obj != nil {
					pass.Reportf(call.Pos(), "calls %s.%s after %s was handed to %s; mutate before enqueueing", obj.Name(), sel.Sel.Name, obj.Name(), hot[obj])
				}
			}
		}
		// Selector bases are reads (p.Size), which are legal.
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if _, isIdent := sel.X.(*ast.Ident); isIdent {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				if callee, isHot := hot[obj]; isHot && lint.IsPtrToNamed(obj.Type(), packetPath, "Packet") {
					pass.Reportf(id.Pos(), "retains %s after it was handed to %s; the fabric owns the packet now", obj.Name(), callee)
				}
			}
		}
		return true
	})
}

// hotRoot returns the hot packet object an assignment target dereferences
// (p.Field, *p, p.Field[i], ...), or nil.
func hotRoot(pass *lint.Pass, e ast.Expr, hot map[types.Object]string) (types.Object, ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if obj := bareHotIdent(pass, x.X, hot); obj != nil {
				return obj, x
			}
			e = x.X
		case *ast.StarExpr:
			if obj := bareHotIdent(pass, x.X, hot); obj != nil {
				return obj, x
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, nil
		}
	}
}

// bareHotIdent returns the object when e is a bare identifier naming a hot
// *packet.Packet.
func bareHotIdent(pass *lint.Pass, e ast.Expr, hot map[types.Object]string) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, isHot := hot[obj]; !isHot {
		return nil
	}
	return obj
}
