// Package aliasfix is an aliascheck fixture: once a *packet.Packet is
// handed to the fabric, the caller must stop touching it.
package aliasfix

import "dcpsim/internal/packet"

type queue struct{ depth int }

func (q *queue) Enqueue(p *packet.Packet) { q.depth++ }

func mutateAfterHandoff(q *queue, p *packet.Packet) {
	q.Enqueue(p)
	p.ECN = true // want `mutates p after it was handed to Enqueue`
}

func methodAfterHandoff(q *queue, p *packet.Packet) {
	q.Enqueue(p)
	_ = p.String() // want `calls p\.String after p was handed to Enqueue`
}

func doubleHandoff(q1, q2 *queue, p *packet.Packet) {
	q1.Enqueue(p)
	q2.Enqueue(p) // want `passes p to another call`
}

func retainAfterHandoff(q *queue, p *packet.Packet) *packet.Packet {
	q.Enqueue(p)
	return p // want `retains p after it was handed to Enqueue`
}

func storeAfterHandoff(q *queue, inflight map[uint32]*packet.Packet, p *packet.Packet) {
	q.Enqueue(p)
	inflight[p.PSN] = p // want `retains p after it was handed to Enqueue`
}

func mutateThenHandoff(q *queue, p *packet.Packet) {
	p.ECN = true // canonical ordering: mutate first
	p.PSN = 7
	q.Enqueue(p)
}

func readAfterHandoff(q *queue, p *packet.Packet) int {
	q.Enqueue(p)
	return p.Size // field reads stay legal in the single-threaded engine
}

func reassignRetires(q *queue, p *packet.Packet, fresh *packet.Packet) {
	q.Enqueue(p)
	p = fresh
	p.ECN = true // p now names a different packet
	q.Enqueue(p)
}

func allowedLoopback(q *queue, p *packet.Packet) {
	q.Enqueue(p)
	//lint:allow aliascheck loopback path re-stamps the packet before the engine runs
	p.ECN = true
}
