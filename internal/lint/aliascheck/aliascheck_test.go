package aliascheck_test

import (
	"testing"

	"dcpsim/internal/lint/aliascheck"
	"dcpsim/internal/lint/linttest"
)

func TestAliascheck(t *testing.T) {
	linttest.Run(t, aliascheck.Analyzer, "dcpsim/internal/fabric/aliasfix")
}
