// Package seqcheck enforces wraparound-safe sequence-number arithmetic in
// the transport implementations.
//
// PSN/MSN/SSN spaces are uint32 serial numbers. Raw `<`, `>`, `<=`, `>=`
// and `-` on them silently misbehave at the 2^32 wrap boundary — the exact
// class of edge case where RDMA reliability designs break (IRN's and
// Eunomia's hard-won lesson). Transports must use the RFC 1982-style
// helpers in internal/transport/base: SeqLess, SeqGEQ, SeqDiff.
//
// The check is name-driven: an operand is sequence-like when it is a
// uint32 whose expression mentions an identifier containing psn, msn, ssn
// or sack (case-insensitive) or named una. Comparisons with constants
// (`== 0` style guards) and equality tests are exempt — equality is
// wrap-safe. Audited exceptions use //lint:allow seqcheck <reason>.
package seqcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dcpsim/internal/lint"
)

// Analyzer is the seqcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "seqcheck",
	Doc:  "flag raw <, >, <=, >=, - on PSN/SSN/MSN-typed uint32 values in transports; require base.SeqLess/SeqGEQ/SeqDiff",
	Run:  run,
}

const basePath = "dcpsim/internal/transport/base"

func inScope(path string) bool {
	return strings.HasPrefix(path, "dcpsim/internal/transport/") && path != basePath
}

var seqOps = map[token.Token]bool{
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.SUB: true,
}

func run(pass *lint.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || !seqOps[bin.Op] {
				return true
			}
			xt, yt := pass.Info.Types[bin.X], pass.Info.Types[bin.Y]
			if !isUint32(xt.Type) || !isUint32(yt.Type) {
				return true
			}
			// Constant guards (psn == 0 style bounds) are exempt: they are
			// statements about magnitude, not serial order.
			if xt.Value != nil || yt.Value != nil {
				return true
			}
			if !seqNamed(bin.X) && !seqNamed(bin.Y) {
				return true
			}
			if bin.Op == token.SUB {
				pass.Reportf(bin.OpPos, "raw sequence-number subtraction is not wraparound-safe; use base.SeqDiff (RFC 1982 serial arithmetic)")
			} else {
				pass.Reportf(bin.OpPos, "wraparound-unsafe %s on sequence numbers; use base.SeqLess/base.SeqGEQ (RFC 1982 serial arithmetic)", bin.Op)
			}
			return true
		})
	}
	return nil
}

func isUint32(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint32
}

// seqNamed reports whether the expression mentions a sequence-number-like
// identifier.
func seqNamed(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		name := strings.ToLower(id.Name)
		if strings.Contains(name, "psn") || strings.Contains(name, "msn") ||
			strings.Contains(name, "ssn") || strings.Contains(name, "sack") ||
			name == "una" {
			found = true
			return false
		}
		return true
	})
	return found
}
