// Package seqfix is a seqcheck fixture: raw relational/subtraction
// operators on PSN/MSN/SSN-named uint32s must go through the base
// serial-arithmetic helpers.
package seqfix

import "dcpsim/internal/transport/base"

type qp struct {
	una     uint32
	nextPSN uint32
	eMSN    uint32
}

func rawLess(psn, nextPSN uint32) bool {
	return psn < nextPSN // want `use base\.SeqLess`
}

func rawGreater(q *qp, ackPSN uint32) bool {
	return ackPSN > q.una // want `use base\.SeqLess`
}

func rawSub(q *qp, psn uint32) uint32 {
	return psn - q.una // want `use base\.SeqDiff`
}

func rawLEQ(msn, eMSN uint32) bool {
	return msn <= eMSN // want `use base\.SeqLess`
}

func viaHelpers(q *qp, psn uint32) (bool, uint32) {
	if base.SeqLess(psn, q.nextPSN) {
		return true, base.SeqDiff(q.nextPSN, psn)
	}
	return base.SeqGEQ(psn, q.una), 0
}

func equalityIsFine(psn, epsn uint32) bool {
	return psn == epsn || psn != epsn // == and != are wrap-safe
}

func constantBoundIsFine(psn uint32) bool {
	return psn < 4096 // window bound against a constant, not serial order
}

func nonSeqNames(count, limit uint32) bool {
	return count < limit // plain uint32 counters are out of scope
}

func allowedRaw(q *qp, totalPkts uint32) bool {
	//lint:allow seqcheck totalPkts never wraps: flows are bounded well below 2^32
	return q.nextPSN < totalPkts
}
