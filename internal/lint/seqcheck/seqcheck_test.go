package seqcheck_test

import (
	"testing"

	"dcpsim/internal/lint/linttest"
	"dcpsim/internal/lint/seqcheck"
)

func TestSeqcheck(t *testing.T) {
	linttest.Run(t, seqcheck.Analyzer, "dcpsim/internal/transport/seqfix")
}
