package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path the package was checked under.
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. One Loader shares a
// FileSet and a source importer, so dependencies (standard library and
// dcpsim packages alike) are type-checked once and cached.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader backed by the source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load parses the non-test Go files in dir and type-checks them under the
// given import path. Test files are skipped: the determinism contract
// applies to simulation code, and _test packages would need their own
// import graphs.
func (l *Loader) Load(dir, path string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFilesIn returns the sorted non-test Go file names in dir.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns resolves package patterns relative to the enclosing module.
// Supported forms: "./..." (every package in the module), "./dir" and
// "dir" (one directory). Directories named testdata, hidden directories,
// and directories without non-test Go files are skipped.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modpath, err := moduleRoot(cwd)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := packageDirs(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(cwd, dir)
			}
			dirs = append(dirs, dir)
		}
	}
	seen := make(map[string]bool)
	var pkgs []*Package
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modpath
		if rel != "." {
			path = modpath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ModuleRoot resolves the enclosing module's root directory and module
// path from the current working directory — the anchor dcplint uses to
// locate analyzer fixture trees for -selfcheck and to relativize paths.
func ModuleRoot() (root, modpath string, err error) {
	cwd, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	return moduleRoot(cwd)
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func moduleRoot(dir string) (root, modpath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// packageDirs returns every directory under root that holds at least one
// non-test Go file, skipping testdata and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}
